// Package bench holds the figure-regeneration benchmarks: one
// testing.B benchmark per figure of the paper's evaluation section
// (Figures 4-7), driven by the same specs as cmd/flockbench but scaled
// for benchmark time budgets. Each sub-benchmark is one (series, x)
// point; ns/op is the per-operation latency and the Mops metric is the
// aggregate throughput the paper plots.
//
// Run everything:
//
//	go test -bench=. -benchmem -benchtime=50ms .
//
// Worker goroutines are created with b.SetParallelism, so a point with
// "threads" beyond GOMAXPROCS measures the oversubscribed regime, as in
// the right-hand sides of the paper's plots.
//
// Micro-ablations for the core mechanism (compare-and-compare-and-swap,
// log block chaining, update-once stores, descriptor overhead) live in
// internal/core's own benchmarks.
package bench

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"flock/internal/harness"
	"flock/internal/workload"
)

// benchScale shrinks the figure specs so a full -bench=. pass stays in
// minutes: key ranges come down (the shape survives; see EXPERIMENTS.md
// for scale notes) and thread sweeps use three representative points.
func benchScale() harness.Scale {
	sc := harness.DefaultScale()
	sc.LargeKeys = 50_000
	sc.SmallKeys = 5_000
	sc.Threads = []int{1, 4, 16}
	sc.Base = 8
	sc.Over = 24
	sc.Shards = 4
	sc.Duration = 50 * time.Millisecond
	return sc
}

var workerSeq atomic.Uint64

// benchPoint measures one figure point: b.N operations spread over
// spec.Threads parallel workers against a prefilled structure (or a
// prefilled kv.Store for YCSB specs, or a prefilled txn.Store for
// transactional specs).
func benchPoint(b *testing.B, spec harness.Spec) {
	b.Helper()
	if spec.TxnMix != "" {
		benchTxnPoint(b, spec)
		return
	}
	if spec.YCSB != "" {
		benchKVPoint(b, spec)
		return
	}
	s, rt, err := harness.NewInstance(spec)
	if err != nil {
		b.Fatal(err)
	}
	harness.Prefill(s, rt, spec)
	rt.SetStallInjection(spec.StallEvery)
	b.SetParallelism(spec.Threads) // GOMAXPROCS=1 core => exactly Threads workers
	b.ReportAllocs()               // allocs/op is a first-class metric (DESIGN.md S10)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		p := rt.Register()
		defer p.Unregister()
		mix := workload.NewMix(spec.KeyRange, spec.UpdatePct, spec.Alpha,
			spec.HashKeys, spec.Seed+workerSeq.Add(1)*0x9e3779b9)
		for pb.Next() {
			op, k := mix.Next()
			switch op {
			case workload.OpInsert:
				s.Insert(p, k, k)
			case workload.OpDelete:
				s.Delete(p, k)
			default:
				s.Find(p, k)
			}
		}
	})
	b.StopTimer()
	if el := b.Elapsed().Seconds(); el > 0 {
		b.ReportMetric(float64(b.N)/el/1e6, "Mops")
	}
}

// benchKVPoint is benchPoint for the KV/YCSB figures.
func benchKVPoint(b *testing.B, spec harness.Spec) {
	b.Helper()
	st, err := harness.NewKVInstance(spec)
	if err != nil {
		b.Fatal(err)
	}
	harness.PrefillKV(st, spec)
	st.SetStallInjection(spec.StallEvery)
	b.SetParallelism(spec.Threads)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		c := st.Register()
		defer c.Close()
		mix, err := harness.NewYCSBMix(spec, workerSeq.Add(1))
		if err != nil {
			panic(err) // spec already validated by NewKVInstance
		}
		var n uint64
		for pb.Next() {
			op, k := mix.Next()
			harness.ApplyYCSBOp(c, mix, op, k, n)
			n++
		}
	})
	b.StopTimer()
	if el := b.Elapsed().Seconds(); el > 0 {
		b.ReportMetric(float64(b.N)/el/1e6, "Mops")
	}
}

// benchTxnPoint is benchPoint for the transactional figures.
func benchTxnPoint(b *testing.B, spec harness.Spec) {
	b.Helper()
	st, err := harness.NewTxnInstance(spec)
	if err != nil {
		b.Fatal(err)
	}
	harness.PrefillKV(st.KV(), spec)
	st.SetStallInjection(spec.StallEvery)
	b.SetParallelism(spec.Threads)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		c := st.Register()
		defer c.Close()
		mix, err := workload.NewTxnMix(spec.TxnMix, spec.KeyRange, spec.Alpha,
			spec.TxnSize, spec.Seed+workerSeq.Add(1)*0x9e3779b9)
		if err != nil {
			panic(err) // spec already validated by NewTxnInstance
		}
		var vbuf []uint64
		var n uint64
		for pb.Next() {
			op, keys := mix.Next()
			vbuf = harness.ApplyTxnOp(c, op, keys, n, vbuf)
			n++
		}
	})
	b.StopTimer()
	if el := b.Elapsed().Seconds(); el > 0 {
		b.ReportMetric(float64(b.N)/el/1e6, "Mops")
	}
}

// benchFigure expands a figure spec into sub-benchmarks.
func benchFigure(b *testing.B, id string) {
	sc := benchScale()
	fs, ok := harness.Figures()[id]
	if !ok {
		b.Fatalf("unknown figure %s", id)
	}
	for _, x := range fs.Xs(sc) {
		for _, s := range fs.Series {
			spec := fs.SpecFor(sc, s, x)
			b.Run(fmt.Sprintf("x=%s/%s", x, s.Name), func(b *testing.B) {
				benchPoint(b, spec)
			})
		}
	}
}

// One benchmark per figure in the paper's evaluation (DESIGN.md S8).

func Benchmark_Fig4(b *testing.B)  { benchFigure(b, "fig4") }
func Benchmark_Fig5a(b *testing.B) { benchFigure(b, "fig5a") }
func Benchmark_Fig5b(b *testing.B) { benchFigure(b, "fig5b") }
func Benchmark_Fig5c(b *testing.B) { benchFigure(b, "fig5c") }
func Benchmark_Fig5d(b *testing.B) { benchFigure(b, "fig5d") }
func Benchmark_Fig5e(b *testing.B) { benchFigure(b, "fig5e") }
func Benchmark_Fig5f(b *testing.B) { benchFigure(b, "fig5f") }
func Benchmark_Fig5g(b *testing.B) { benchFigure(b, "fig5g") }
func Benchmark_Fig5h(b *testing.B) { benchFigure(b, "fig5h") }
func Benchmark_Fig6a(b *testing.B) { benchFigure(b, "fig6a") }
func Benchmark_Fig6b(b *testing.B) { benchFigure(b, "fig6b") }
func Benchmark_Fig7a(b *testing.B) { benchFigure(b, "fig7a") }
func Benchmark_Fig7b(b *testing.B) { benchFigure(b, "fig7b") }

// Benchmark_ExtStall is the descheduling-injection extension (the
// explicit form of the paper's oversubscription effect; DESIGN.md S3).
func Benchmark_ExtStall(b *testing.B) { benchFigure(b, "ext-stall") }

// Benchmark_ExtAlloc is the allocation ablation (DESIGN.md S10): pooled
// vs GC-fresh vs blocking, with -benchmem/ReportAllocs giving the
// per-operation allocation counts the figure's allocs/op column plots.
func Benchmark_ExtAlloc(b *testing.B) { benchFigure(b, "ext-alloc") }

// The transactional extension figures (DESIGN.md S11): multi-key
// atomic operations via composed lock-free locks, vs the blocking and
// non-atomic ablation arms.

func Benchmark_ExtTxn(b *testing.B)     { benchFigure(b, "ext-txn") }
func Benchmark_ExtTxnKeys(b *testing.B) { benchFigure(b, "ext-txn-keys") }

// The KV-layer YCSB extension figures (DESIGN.md S9).

func Benchmark_ExtYCSBA(b *testing.B)      { benchFigure(b, "ext-ycsb-a") }
func Benchmark_ExtYCSBB(b *testing.B)      { benchFigure(b, "ext-ycsb-b") }
func Benchmark_ExtYCSBC(b *testing.B)      { benchFigure(b, "ext-ycsb-c") }
func Benchmark_ExtYCSBE(b *testing.B)      { benchFigure(b, "ext-ycsb-e") }
func Benchmark_ExtYCSBF(b *testing.B)      { benchFigure(b, "ext-ycsb-f") }
func Benchmark_ExtYCSBShards(b *testing.B) { benchFigure(b, "ext-ycsb-shards") }
