// Package epoch implements epoch-based reclamation (EBR) in the style used
// by the Flock library ("Lock-Free Locks Revisited", PPoPP 2022, §6).
//
// Every operation on a concurrent structure runs inside a guard
// (Enter/Exit). Objects unlinked from a structure are handed to Retire,
// which defers a reclamation callback until every guard that could have
// observed the object has exited. Epochs advance when all active guards
// have caught up with the global epoch.
//
// Two Flock-specific requirements shape the API:
//
//   - Helper epoch lowering. When a process helps a thunk that was started
//     by another process it must take on the minimum of its own epoch and
//     the thunk's birth epoch, so that anything the thunk read when it
//     began stays unreclaimed while the helper replays it. Lower and
//     Restore implement this.
//
//   - Quiescence. A registered process that is between operations announces
//     a sentinel so it never holds back reclamation.
//
// In Go the garbage collector already rules out use-after-free; EBR here
// gates *reuse* (pooled objects, user callbacks) and provides the paper's
// retire semantics. The implementation is nevertheless a complete,
// self-contained EBR manager.
package epoch

import (
	"sync"
	"sync/atomic"

	"flock/internal/obs"
	"flock/internal/obs/trace"
)

// Quiescent is announced by slots that are not inside any guard.
const Quiescent = ^uint64(0)

// advanceEvery controls how many guard entries a slot performs between
// attempts to advance the global epoch and reclaim its retired batches.
const advanceEvery = 64

// Manager coordinates a set of registered slots (one per worker).
type Manager struct {
	global atomic.Uint64

	// slots is a copy-on-write snapshot of all registered slots, so that
	// scans during TryAdvance are lock-free. Registration is rare.
	slots atomic.Pointer[[]*Slot]

	mu      sync.Mutex // serializes Register/Unregister and pin bookkeeping
	orphans []batch    // retired batches from unregistered slots

	// pins holds the live reclamation pins (Pin); minPinned caches the
	// minimum pinned epoch (Quiescent when none) so SafeBefore stays one
	// atomic load on the hot reclaim/reuse paths.
	pins      []*Pin
	minPinned atomic.Uint64
}

// batch is a group of deferred reclamation callbacks retired in one epoch.
type batch struct {
	epoch uint64
	fns   []func()
}

// Slot is a single worker's announcement record plus its local retire lists.
// A Slot must only be used by the goroutine that registered it.
type Slot struct {
	announced atomic.Uint64
	mgr       *Manager
	dead      atomic.Bool

	// Goroutine-local state (no synchronization needed).
	pending []batch
	cur     batch
	entries uint64
	depth   int // nested guard depth

	_ [40]byte // keep hot fields of adjacent slots off one cache line
}

// NewManager returns an empty manager with the global epoch at 2 so that
// "epoch-2" arithmetic never underflows.
func NewManager() *Manager {
	m := &Manager{}
	m.global.Store(2)
	m.minPinned.Store(Quiescent)
	empty := make([]*Slot, 0)
	m.slots.Store(&empty)
	return m
}

// GlobalEpoch returns the current global epoch.
func (m *Manager) GlobalEpoch() uint64 { return m.global.Load() }

// Register adds a new slot for the calling worker. The slot starts
// quiescent.
func (m *Manager) Register() *Slot {
	s := &Slot{mgr: m}
	s.announced.Store(Quiescent)
	m.mu.Lock()
	old := *m.slots.Load()
	next := make([]*Slot, len(old), len(old)+1)
	copy(next, old)
	next = append(next, s)
	m.slots.Store(&next)
	m.mu.Unlock()
	return s
}

// Unregister removes the slot from epoch scans and hands its pending
// retire batches to the manager. The slot must be quiescent.
func (s *Slot) Unregister() {
	if s.depth != 0 {
		panic("epoch: Unregister inside a guard")
	}
	s.flushCur()
	m := s.mgr
	s.dead.Store(true)
	s.announced.Store(Quiescent)
	m.mu.Lock()
	old := *m.slots.Load()
	next := make([]*Slot, 0, len(old))
	for _, o := range old {
		if o != s {
			next = append(next, o)
		}
	}
	m.slots.Store(&next)
	m.orphans = append(m.orphans, s.pending...)
	s.pending = nil
	m.mu.Unlock()
}

// Enter begins a guard: the slot announces the current global epoch.
// Guards nest; only the outermost Enter announces.
func (s *Slot) Enter() {
	if s.depth == 0 {
		// Announce-then-recheck: if the global epoch moved between the
		// load and the store we may announce a stale epoch, which is
		// safe (merely conservative), so a single announcement suffices.
		s.announced.Store(s.mgr.global.Load())
		s.entries++
		if s.entries%advanceEvery == 0 {
			s.mgr.TryAdvance()
			s.reclaim()
		}
	}
	s.depth++
}

// Exit ends a guard. The outermost Exit returns the slot to quiescence.
func (s *Slot) Exit() {
	s.depth--
	if s.depth < 0 {
		panic("epoch: Exit without matching Enter")
	}
	if s.depth == 0 {
		s.announced.Store(Quiescent)
	}
}

// Depth reports the current guard nesting depth (for assertions in tests).
func (s *Slot) Depth() int { return s.depth }

// Announced returns the slot's announced epoch (Quiescent if outside).
func (s *Slot) Announced() uint64 { return s.announced.Load() }

// Lower moves the slot's announcement down to e if e is lower, returning
// the previous announcement so the caller can Restore it. It implements
// the paper's rule that a helper takes on the minimum of its epoch and the
// epoch of the thunk it is helping. Must be called inside a guard.
func (s *Slot) Lower(e uint64) (prev uint64) {
	prev = s.announced.Load()
	if e < prev {
		s.announced.Store(e)
	}
	return prev
}

// Restore resets the announcement after a Lower.
func (s *Slot) Restore(prev uint64) { s.announced.Store(prev) }

// Retire defers fn until every guard active at (or lowered to) the current
// epoch has exited, plus the usual two-epoch grace period. fn may be nil,
// in which case Retire is a no-op (the GC reclaims the object); callers use
// that form purely for its timing semantics in tests and pools.
func (s *Slot) Retire(fn func()) {
	if fn == nil {
		return
	}
	e := s.mgr.global.Load()
	if s.cur.fns != nil && s.cur.epoch != e {
		s.flushCur()
	}
	s.cur.epoch = e
	s.cur.fns = append(s.cur.fns, fn)
	if len(s.cur.fns) >= 32 {
		s.flushCur()
		s.mgr.TryAdvance()
		s.reclaim()
	}
}

func (s *Slot) flushCur() {
	if s.cur.fns != nil {
		s.pending = append(s.pending, s.cur)
		s.cur = batch{}
	}
}

// minAnnounced scans all slots and returns the minimum announced epoch.
func (m *Manager) minAnnounced() uint64 {
	min := Quiescent
	for _, s := range *m.slots.Load() {
		if a := s.announced.Load(); a < min {
			min = a
		}
	}
	return min
}

// TryAdvance bumps the global epoch if every registered slot is either
// quiescent or has caught up with it. Returns whether it advanced.
// Attempts and successes are counted on the shared obs block: advancement
// is a global event with no per-worker owner, and it fires orders of
// magnitude less often than lock events (advanceEvery, batch flushes).
func (m *Manager) TryAdvance() bool {
	track := obs.On()
	if track {
		obs.Global().Inc(obs.EpochAdvanceTries)
	}
	g := m.global.Load()
	for _, s := range *m.slots.Load() {
		if a := s.announced.Load(); a < g {
			return false
		}
	}
	ok := m.global.CompareAndSwap(g, g+1)
	if ok {
		if track {
			obs.Global().Inc(obs.EpochAdvances)
		}
		if trace.On() {
			trace.Global().Emit(trace.EpochAdvance, 0, g+1, 0)
		}
	}
	return ok
}

// SafeBefore returns the epoch bound below which retired objects may be
// reclaimed — or reused. An object retired in epoch r is safe once every
// active guard announced an epoch strictly greater than r: such guards
// entered after the global epoch passed r, hence after the unlink that
// preceded the retire, so they can never have found the object. With no
// active guards, everything retired before the current epoch is safe.
// Live pins (Pin) lower the bound the same way an announced guard would,
// without blocking epoch advancement. Exported so the flock core can
// gate pooled object reuse on the same grace period that gates
// reclamation (its DESIGN.md S10 invariant).
func (m *Manager) SafeBefore() uint64 {
	min := m.minAnnounced()
	if p := m.minPinned.Load(); p < min {
		min = p
	}
	if min == Quiescent {
		return m.global.Load()
	}
	return min
}

// Pin is a long-lived reclamation bound: while it is live, objects
// retired at or after its epoch are neither reclaimed nor reused, yet —
// unlike a held guard — the global epoch keeps advancing, so short-lived
// operations around the pin reclaim their own garbage normally. Pins
// back long readers (kv snapshots) that dip in and out of guards over
// their lifetime: each chunk read is guard-protected on its own, and the
// pin keeps pooled-object reuse from crossing the reader's whole window.
type Pin struct {
	mgr      *Manager
	epoch    uint64
	released bool // guarded by mgr.mu
}

// Pin takes a reclamation pin at the current global epoch. Release it
// exactly once; pins are expected to be rare and long-lived (snapshot
// lifetimes, not operation lifetimes).
func (m *Manager) Pin() *Pin {
	m.mu.Lock()
	p := &Pin{mgr: m, epoch: m.global.Load()}
	m.pins = append(m.pins, p)
	if p.epoch < m.minPinned.Load() {
		m.minPinned.Store(p.epoch)
	}
	m.mu.Unlock()
	return p
}

// Epoch returns the epoch the pin holds the reclamation bound at.
func (p *Pin) Epoch() uint64 { return p.epoch }

// Release drops the pin, letting the reclamation bound advance past its
// epoch. Releasing an already-released pin is a no-op.
func (p *Pin) Release() {
	m := p.mgr
	m.mu.Lock()
	if p.released {
		m.mu.Unlock()
		return
	}
	p.released = true
	next := m.pins[:0]
	min := Quiescent
	for _, q := range m.pins {
		if q == p {
			continue
		}
		next = append(next, q)
		if q.epoch < min {
			min = q.epoch
		}
	}
	if n := len(next); n < len(m.pins) {
		m.pins[n] = nil // drop the released pin's reference
	}
	m.pins = next
	m.minPinned.Store(min)
	m.mu.Unlock()
}

// reclaim runs the slot's ripe batches.
func (s *Slot) reclaim() {
	bound := s.mgr.SafeBefore()
	track := obs.On()
	i := 0
	for ; i < len(s.pending); i++ {
		if s.pending[i].epoch >= bound {
			break
		}
		if track {
			// Reclamation lag: how many epochs a batch waited between
			// retirement and reclamation (bound > epoch for ripe batches).
			obs.Global().Inc(obs.EpochReclaimBatches)
			obs.Global().Add(obs.EpochReclaimLagEpochs, bound-s.pending[i].epoch)
		}
		if trace.On() {
			trace.Global().Emit(trace.EpochReclaim, 0, s.pending[i].epoch, uint64(len(s.pending[i].fns)))
		}
		for _, fn := range s.pending[i].fns {
			fn()
		}
	}
	if i > 0 {
		s.pending = append(s.pending[:0], s.pending[i:]...)
	}
	s.mgr.reclaimOrphans(bound)
}

func (m *Manager) reclaimOrphans(bound uint64) {
	// Opportunistic: if another worker is registering or reclaiming, skip
	// this round rather than serialize the hot path.
	if !m.mu.TryLock() {
		return
	}
	var ripe []batch
	if len(m.orphans) > 0 {
		var keep []batch
		for _, b := range m.orphans {
			if b.epoch < bound {
				ripe = append(ripe, b)
			} else {
				keep = append(keep, b)
			}
		}
		m.orphans = keep
	}
	m.mu.Unlock()
	track := obs.On()
	for _, b := range ripe {
		if track {
			obs.Global().Inc(obs.EpochReclaimBatches)
			obs.Global().Add(obs.EpochReclaimLagEpochs, bound-b.epoch)
		}
		if trace.On() {
			trace.Global().Emit(trace.EpochReclaim, 0, b.epoch, uint64(len(b.fns)))
		}
		for _, fn := range b.fns {
			fn()
		}
	}
}

// Drain force-advances the epoch and reclaims everything that becomes
// safe. It is intended for shutdown and tests; it requires all slots to be
// quiescent to make progress and panics if called from inside a guard.
func (s *Slot) Drain() {
	if s.depth != 0 {
		panic("epoch: Drain inside a guard")
	}
	s.flushCur()
	for i := 0; i < 4; i++ {
		s.mgr.TryAdvance()
		s.reclaim()
		if len(s.pending) == 0 {
			break
		}
	}
}

// PendingRetires reports how many callbacks are queued (tests only).
func (s *Slot) PendingRetires() int {
	n := len(s.cur.fns)
	for _, b := range s.pending {
		n += len(b.fns)
	}
	return n
}
