package epoch

import (
	"sync"
	"sync/atomic"
	"testing"

	"flock/internal/obs"
)

func TestRegisterStartsQuiescent(t *testing.T) {
	m := NewManager()
	s := m.Register()
	if got := s.Announced(); got != Quiescent {
		t.Fatalf("new slot announced %d, want Quiescent", got)
	}
	if s.Depth() != 0 {
		t.Fatalf("new slot depth %d, want 0", s.Depth())
	}
}

func TestEnterAnnouncesGlobal(t *testing.T) {
	m := NewManager()
	s := m.Register()
	s.Enter()
	if got, want := s.Announced(), m.GlobalEpoch(); got != want {
		t.Fatalf("announced %d, want global %d", got, want)
	}
	s.Exit()
	if got := s.Announced(); got != Quiescent {
		t.Fatalf("after Exit announced %d, want Quiescent", got)
	}
}

func TestGuardsNest(t *testing.T) {
	m := NewManager()
	s := m.Register()
	s.Enter()
	e := s.Announced()
	s.Enter()
	s.Enter()
	if s.Depth() != 3 {
		t.Fatalf("depth %d, want 3", s.Depth())
	}
	if s.Announced() != e {
		t.Fatalf("nested Enter changed announcement")
	}
	s.Exit()
	s.Exit()
	if s.Announced() != e {
		t.Fatalf("inner Exit cleared announcement early")
	}
	s.Exit()
	if s.Announced() != Quiescent {
		t.Fatalf("outermost Exit did not quiesce")
	}
}

func TestExitWithoutEnterPanics(t *testing.T) {
	m := NewManager()
	s := m.Register()
	defer func() {
		if recover() == nil {
			t.Fatalf("Exit without Enter did not panic")
		}
	}()
	s.Exit()
}

func TestAdvanceBlockedByLaggingGuard(t *testing.T) {
	m := NewManager()
	a := m.Register()
	b := m.Register()
	a.Enter() // announces current epoch g
	g := m.GlobalEpoch()
	if !m.TryAdvance() {
		t.Fatalf("advance should succeed when all guards are current")
	}
	if m.GlobalEpoch() != g+1 {
		t.Fatalf("global %d, want %d", m.GlobalEpoch(), g+1)
	}
	// a still announces g < g+1, so a second advance must fail.
	if m.TryAdvance() {
		t.Fatalf("advance should be blocked by lagging guard")
	}
	b.Enter() // announces g+1; does not unblock a's lag
	if m.TryAdvance() {
		t.Fatalf("advance should still be blocked")
	}
	a.Exit()
	if !m.TryAdvance() {
		t.Fatalf("advance should succeed once lagging guard exits")
	}
	b.Exit()
}

func TestRetireRunsAfterGracePeriod(t *testing.T) {
	m := NewManager()
	s := m.Register()
	var freed atomic.Int32
	s.Enter()
	s.Retire(func() { freed.Add(1) })
	s.Exit()
	if freed.Load() != 0 {
		t.Fatalf("retire callback ran inside the retiring epoch")
	}
	s.Drain()
	if freed.Load() != 1 {
		t.Fatalf("retire callback did not run after drain: %d", freed.Load())
	}
}

func TestRetireNilIsNoop(t *testing.T) {
	m := NewManager()
	s := m.Register()
	s.Enter()
	s.Retire(nil)
	s.Exit()
	if n := s.PendingRetires(); n != 0 {
		t.Fatalf("nil retire queued %d callbacks", n)
	}
}

func TestRetireBlockedByConcurrentGuard(t *testing.T) {
	m := NewManager()
	s := m.Register()
	holder := m.Register()

	holder.Enter() // pins the current epoch
	s.Enter()
	var freed atomic.Int32
	s.Retire(func() { freed.Add(1) })
	s.Exit()

	// With holder still inside a guard announced at the retire epoch, the
	// callback must not run no matter how hard we try.
	s.flushCur()
	for i := 0; i < 10; i++ {
		m.TryAdvance()
		s.reclaim()
	}
	if freed.Load() != 0 {
		t.Fatalf("retire callback ran while a guard could still hold the object")
	}
	holder.Exit()
	s.Drain()
	if freed.Load() != 1 {
		t.Fatalf("retire callback did not run after guard exit")
	}
}

func TestLowerAndRestore(t *testing.T) {
	m := NewManager()
	s := m.Register()
	// Advance a few epochs first.
	for i := 0; i < 5; i++ {
		m.TryAdvance()
	}
	s.Enter()
	cur := s.Announced()
	prev := s.Lower(2)
	if prev != cur {
		t.Fatalf("Lower returned %d, want previous announcement %d", prev, cur)
	}
	if s.Announced() != 2 {
		t.Fatalf("announced %d after Lower(2)", s.Announced())
	}
	// Lowering to a higher epoch must not raise the announcement.
	p2 := s.Lower(100)
	if s.Announced() != 2 || p2 != 2 {
		t.Fatalf("Lower raised announcement to %d", s.Announced())
	}
	s.Restore(prev)
	if s.Announced() != cur {
		t.Fatalf("Restore did not reinstate announcement")
	}
	s.Exit()
}

func TestLoweredGuardBlocksReclaim(t *testing.T) {
	m := NewManager()
	helper := m.Register()
	s := m.Register()

	birth := m.GlobalEpoch() // descriptor's birth epoch
	for i := 0; i < 4; i++ {
		m.TryAdvance()
	}

	helper.Enter()
	prev := helper.Lower(birth)

	s.Enter()
	var freed atomic.Int32
	s.Retire(func() { freed.Add(1) })
	s.Exit()
	s.flushCur()
	for i := 0; i < 10; i++ {
		m.TryAdvance()
		s.reclaim()
	}
	if freed.Load() != 0 {
		t.Fatalf("lowered helper did not hold back reclamation")
	}
	helper.Restore(prev)
	helper.Exit()
	s.Drain()
	if freed.Load() != 1 {
		t.Fatalf("callback never ran after helper restored")
	}
}

func TestUnregisterHandsOffPending(t *testing.T) {
	m := NewManager()
	s := m.Register()
	other := m.Register()
	var freed atomic.Int32
	s.Enter()
	s.Retire(func() { freed.Add(1) })
	s.Exit()
	s.Unregister()
	if freed.Load() != 0 {
		t.Fatalf("unregister ran callbacks synchronously")
	}
	other.Drain()
	if freed.Load() != 1 {
		t.Fatalf("orphaned retire batch never reclaimed")
	}
}

func TestUnregisterInsideGuardPanics(t *testing.T) {
	m := NewManager()
	s := m.Register()
	s.Enter()
	defer func() {
		if recover() == nil {
			t.Fatalf("Unregister inside guard did not panic")
		}
	}()
	s.Unregister()
}

func TestManyRetiresTriggerAutomaticReclaim(t *testing.T) {
	m := NewManager()
	s := m.Register()
	var freed atomic.Int32
	const n = 10_000
	for i := 0; i < n; i++ {
		s.Enter()
		s.Retire(func() { freed.Add(1) })
		s.Exit()
	}
	if freed.Load() == 0 {
		t.Fatalf("no automatic reclamation after %d retires", n)
	}
	s.Drain()
	if freed.Load() != n {
		t.Fatalf("freed %d of %d after drain", freed.Load(), n)
	}
}

// TestConcurrentStress exercises registration, guards, retirement and
// advancing from many goroutines, and checks the core EBR safety property:
// a callback must never run while any guard that could reference its object
// is active. We model this by recording, for each retired object, the set
// of guard "sessions" overlapping its unlink; the callback asserts all have
// exited.
func TestConcurrentStress(t *testing.T) {
	m := NewManager()
	const workers = 8
	const opsPer = 2_000

	var wg sync.WaitGroup
	var violations atomic.Int32
	var totalFreed atomic.Int64

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			s := m.Register()
			for i := 0; i < opsPer; i++ {
				s.Enter()
				// Retire an object whose callback checks the retiring
				// slot has since exited at least this guard (callbacks
				// only run from reclaim points outside that guard).
				myEpoch := m.GlobalEpoch()
				s.Retire(func() {
					// The batch epoch must be strictly below every
					// currently-announced epoch at reclaim time.
					for _, sl := range *m.slots.Load() {
						if a := sl.announced.Load(); a <= myEpoch && a != Quiescent {
							// a == myEpoch is allowed only if that guard
							// started after the advance; we cannot tell
							// here, so only flag strictly smaller.
							if a < myEpoch {
								violations.Add(1)
							}
						}
					}
					totalFreed.Add(1)
				})
				s.Exit()
			}
			s.Drain()
			s.Unregister()
		}(w)
	}
	wg.Wait()

	// Final drain from a fresh slot to pick up orphans.
	s := m.Register()
	s.Drain()
	if violations.Load() != 0 {
		t.Fatalf("%d reclamation-safety violations", violations.Load())
	}
	if totalFreed.Load() != workers*opsPer {
		t.Fatalf("freed %d of %d", totalFreed.Load(), workers*opsPer)
	}
}

func BenchmarkGuardEnterExit(b *testing.B) {
	m := NewManager()
	s := m.Register()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Enter()
		s.Exit()
	}
}

func BenchmarkRetire(b *testing.B) {
	m := NewManager()
	s := m.Register()
	nop := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Enter()
		s.Retire(nop)
		s.Exit()
	}
	b.StopTimer()
	s.Drain()
}

// TestSafeBeforeBounds pins the exported reuse bound: with no active
// guards it equals the global epoch; with a guard open it equals the
// minimum announcement (including announcements lowered by helpers), so
// objects retired at or after that announcement are never handed out
// for reuse while the guard is open.
func TestSafeBeforeBounds(t *testing.T) {
	m := NewManager()
	if got := m.SafeBefore(); got != m.GlobalEpoch() {
		t.Fatalf("quiescent SafeBefore = %d, want global %d", got, m.GlobalEpoch())
	}
	s := m.Register()
	q := m.Register()
	q.Enter()
	announced := q.Announced()
	// Force the global ahead of the guard's announcement.
	for i := 0; i < 3; i++ {
		s.Enter()
		s.Exit()
		m.TryAdvance()
	}
	if got := m.SafeBefore(); got != announced {
		t.Fatalf("SafeBefore = %d with guard announced at %d", got, announced)
	}
	// A helper lowered below the guard's epoch drags the bound down too.
	prev := q.Lower(announced - 1)
	if got := m.SafeBefore(); got != announced-1 {
		t.Fatalf("SafeBefore = %d with lowered announcement %d", got, announced-1)
	}
	q.Restore(prev)
	q.Exit()
	if got := m.SafeBefore(); got != m.GlobalEpoch() {
		t.Fatalf("SafeBefore = %d after guard exit, want global %d", got, m.GlobalEpoch())
	}
}

// TestMetricsAdvanceAndReclaimCounters pins the obs wiring (DESIGN.md
// S14): TryAdvance traffic lands on the shared global block, and every
// reclaimed batch contributes one batch count plus its epoch lag
// (bound - retirement epoch) to the lag sum.
func TestMetricsAdvanceAndReclaimCounters(t *testing.T) {
	prev := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(prev)

	m := NewManager()
	s := m.Register()
	s0 := obs.Snapshot()

	// A guard that has caught up with the global epoch does not block
	// the first advance, but it lags the bumped epoch and blocks the
	// second — one counted success and one counted failure.
	q := m.Register()
	q.Enter()
	if !m.TryAdvance() {
		t.Fatal("TryAdvance blocked by a caught-up guard")
	}
	if m.TryAdvance() {
		t.Fatal("TryAdvance succeeded under a lagging guard")
	}
	q.Exit()

	// Successful advances, with a retirement riding along.
	reclaimed := 0
	s.Enter()
	s.Retire(func() { reclaimed++ })
	s.Exit()
	for i := 0; i < 4; i++ {
		s.Enter()
		s.Exit()
		if !m.TryAdvance() {
			t.Fatalf("quiescent TryAdvance %d failed", i)
		}
	}
	s.Drain()
	if reclaimed != 1 {
		t.Fatalf("retired callback ran %d times, want 1", reclaimed)
	}

	d := obs.Snapshot().Sub(s0)
	// The slot machinery auto-advances on its own cadence (advanceEvery,
	// batch flushes), so exact counts would pin an internal policy; the
	// invariants are what matter: at least our 5 explicit successes, and
	// strictly more tries than successes (the blocked attempt counted).
	tries, adv := d.Get(obs.EpochAdvanceTries), d.Get(obs.EpochAdvances)
	if adv < 5 {
		t.Errorf("EpochAdvances = %d, want >= 5", adv)
	}
	if tries <= adv {
		t.Errorf("EpochAdvanceTries = %d with %d advances: the blocked attempt was not counted", tries, adv)
	}
	if b := d.Get(obs.EpochReclaimBatches); b == 0 {
		t.Error("reclaimed a batch but EpochReclaimBatches stayed 0")
	}
	// The batch waited at least the two-epoch grace period, so the lag
	// sum must be >= the batch count.
	if lag, b := d.Get(obs.EpochReclaimLagEpochs), d.Get(obs.EpochReclaimBatches); lag < b {
		t.Errorf("lag sum %d < batch count %d: lag not recorded", lag, b)
	}
	q.Unregister()
	s.Unregister()
}

func TestPinHoldsReclaimWithoutBlockingAdvance(t *testing.T) {
	m := NewManager()
	s := m.Register()
	defer s.Unregister()

	pin := m.Pin()
	ran := false
	s.Enter()
	s.Retire(func() { ran = true })
	s.Exit()

	// The pin must not block epoch advancement...
	g0 := m.GlobalEpoch()
	for i := 0; i < 4; i++ {
		if !m.TryAdvance() {
			t.Fatalf("TryAdvance blocked by a pin (global=%d)", m.GlobalEpoch())
		}
	}
	if m.GlobalEpoch() != g0+4 {
		t.Fatalf("global epoch = %d, want %d", m.GlobalEpoch(), g0+4)
	}
	// ...but it must hold the reclamation bound at its epoch.
	if got := m.SafeBefore(); got > pin.Epoch() {
		t.Fatalf("SafeBefore = %d while pinned at %d", got, pin.Epoch())
	}
	s.Drain()
	if ran {
		t.Fatal("retired callback ran while a pin held its epoch")
	}

	pin.Release()
	pin.Release() // double release is a no-op
	s.Drain()
	if !ran {
		t.Fatal("retired callback did not run after the pin was released")
	}
}

func TestPinMinimumAcrossPins(t *testing.T) {
	m := NewManager()
	s := m.Register()
	defer s.Unregister()

	p1 := m.Pin()
	for i := 0; i < 3; i++ {
		m.TryAdvance()
	}
	p2 := m.Pin()
	if p2.Epoch() <= p1.Epoch() {
		t.Fatalf("later pin epoch %d not above earlier %d", p2.Epoch(), p1.Epoch())
	}
	if got := m.SafeBefore(); got > p1.Epoch() {
		t.Fatalf("SafeBefore = %d, want <= oldest pin %d", got, p1.Epoch())
	}
	p1.Release()
	if got := m.SafeBefore(); got > p2.Epoch() {
		t.Fatalf("SafeBefore = %d after oldest release, want <= %d", got, p2.Epoch())
	}
	p2.Release()
	if got := m.SafeBefore(); got != m.GlobalEpoch() {
		t.Fatalf("SafeBefore = %d with no pins or guards, want global %d", got, m.GlobalEpoch())
	}
}
