// Package workload generates the paper's YCSB-style benchmark workloads
// (§8): keys drawn from [1, r] under a zipfian distribution with
// parameter alpha (alpha = 0 is uniform), an operation mix with a given
// update percentage (updates split evenly between inserts and deletes,
// the rest lookups — YCSB A/B shapes), deterministic per-worker streams,
// and the deterministic half-full prefill.
package workload

import (
	"math"
	"sync"
)

// SplitMix64 is a tiny, fast, well-distributed PRNG (Steele et al.); one
// instance per worker gives deterministic, independent streams.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 seeds a generator.
func NewSplitMix64(seed uint64) *SplitMix64 { return &SplitMix64{state: seed} }

// Next returns the next 64-bit value.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (s *SplitMix64) Float64() float64 {
	return float64(s.Next()>>11) / (1 << 53)
}

// Hash64 is the stateless splitmix64 finalizer, used to sparsify keys
// (the paper hashes keys for the arttree so the trie does not benefit
// from dense packing) and for the deterministic prefill coin.
func Hash64(x uint64) uint64 {
	z := x + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Zipf draws ranks from [1, n] with P(rank i) proportional to 1/i^theta,
// using the Gray et al. method as in YCSB. theta = 0 degenerates to the
// uniform distribution (taking a fast path).
type Zipf struct {
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	zeta2 float64
}

// zetaCache memoizes the expensive zeta(n, theta) sums across generators
// (the paper's largest range is 100M; the sum is linear in n).
var zetaCache sync.Map // key: [2]float64{n, theta} -> float64

func zeta(n uint64, theta float64) float64 {
	key := [2]float64{float64(n), theta}
	if v, ok := zetaCache.Load(key); ok {
		return v.(float64)
	}
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	zetaCache.Store(key, sum)
	return sum
}

// NewZipf builds a generator for ranks in [1, n].
func NewZipf(n uint64, theta float64) *Zipf {
	z := &Zipf{n: n, theta: theta}
	if theta == 0 {
		return z
	}
	z.zetan = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1.0 - math.Pow(2.0/float64(n), 1.0-theta)) / (1.0 - z.zeta2/z.zetan)
	return z
}

// Next draws a rank in [1, n].
func (z *Zipf) Next(rng *SplitMix64) uint64 {
	if z.theta == 0 {
		return rng.Next()%z.n + 1
	}
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 1
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 2
	}
	if z.theta == 1 {
		// The harmonic edge: Gray's spread exponent alpha = 1/(1-theta)
		// is +Inf at theta = 1 and eta degenerates to 0, which would
		// evaluate to 1 + n*pow(1, +Inf) = n+1 — out of range — for
		// every draw that reaches this branch. Substitute the theta->1
		// limit of the same continuous inverse CDF: density 1/x over
		// [1, n] has CDF ln(x)/ln(n), so rank = n^u.
		r := uint64(math.Pow(float64(z.n), u))
		if r < 1 {
			r = 1
		}
		if r > z.n {
			r = z.n
		}
		return r
	}
	return 1 + uint64(float64(z.n)*math.Pow(z.eta*u-z.eta+1.0, z.alpha))
}

// Op is one generated operation.
type Op uint8

// Operation kinds, split per the paper: update percentage shared evenly
// between inserts and deletes; the remainder are lookups.
const (
	OpFind Op = iota
	OpInsert
	OpDelete
)

// Mix generates the paper's operation mix over a key range.
type Mix struct {
	zipf      *Zipf
	updatePct int  // 0..100
	hashKeys  bool // sparsify keys (arttree experiments)
	rng       *SplitMix64
}

// NewMix builds a per-worker generator. Each worker passes a distinct
// seed for an independent deterministic stream.
func NewMix(keyRange uint64, updatePct int, alpha float64, hashKeys bool, seed uint64) *Mix {
	return &Mix{
		zipf:      NewZipf(keyRange, alpha),
		updatePct: updatePct,
		hashKeys:  hashKeys,
		rng:       NewSplitMix64(seed),
	}
}

// Next returns the next operation and key.
func (m *Mix) Next() (Op, uint64) {
	r := m.rng.Next()
	k := m.zipf.Next(m.rng)
	if m.hashKeys {
		k = Hash64(k) | 1 // keep nonzero
	}
	if int(r%100) < m.updatePct {
		if (r>>32)&1 == 0 {
			return OpInsert, k
		}
		return OpDelete, k
	}
	return OpFind, k
}

// PrefillKey reports whether key k belongs to the deterministic prefill
// (each key included with probability 1/2, so the structure starts half
// full and the even insert/delete split keeps it stable).
func PrefillKey(k uint64) bool { return Hash64(k^0xabcdef12345678)&1 == 0 }

// PrefillKeyHashed is the prefill decision for hashed-key workloads: the
// same coin, and the actual stored key.
func PrefillKeyHashed(k uint64) (uint64, bool) {
	return Hash64(k) | 1, PrefillKey(k)
}

// Permutation is a deterministic pseudo-random bijection on [1, n],
// used to shuffle prefill insertion order: inserting keys in ascending
// order would degenerate the unbalanced trees into spines, whereas the
// paper's structures are "balanced in expectation due to random
// inserts". It is a 4-round Feistel network over 2k bits (the smallest
// even-bit width covering n) with cycle-walking to stay within range,
// so it needs O(1) memory even for the paper's 100M-key prefills.
type Permutation struct {
	n    uint64
	half uint   // bits per Feistel half
	mask uint64 // half-width mask
	seed uint64
}

// NewPermutation builds a bijection on [1, n].
func NewPermutation(n uint64, seed uint64) *Permutation {
	bits := uint(1)
	for (uint64(1) << (2 * bits)) < n {
		bits++
	}
	return &Permutation{n: n, half: bits, mask: (uint64(1) << bits) - 1, seed: seed}
}

// Apply maps i in [1, n] to a unique key in [1, n].
func (pm *Permutation) Apply(i uint64) uint64 {
	x := i - 1
	for {
		l := x >> pm.half
		r := x & pm.mask
		for round := uint64(0); round < 4; round++ {
			l, r = r, l^(Hash64(r^(pm.seed+round*0x9e3779b97f4a7c15))&pm.mask)
		}
		x = l<<pm.half | r
		if x < pm.n {
			return x + 1
		}
		// Cycle-walk: re-encrypt until the value lands in range.
	}
}
