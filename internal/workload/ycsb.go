package workload

import "fmt"

// YCSBOp is one generated KV operation kind.
type YCSBOp uint8

// YCSB operation kinds: reads map to kv Get, updates to kv Put (blind
// upsert), and read-modify-writes to kv ReadModifyWrite.
const (
	YRead YCSBOp = iota
	YUpdate
	YRMW
)

func (o YCSBOp) String() string {
	switch o {
	case YRead:
		return "read"
	case YUpdate:
		return "update"
	default:
		return "rmw"
	}
}

// ycsbMix is one workload's operation percentages (they sum to 100).
type ycsbMix struct {
	read, update, rmw int
}

// ycsbMixes holds the core YCSB workloads as op-mix specs. A: 50/50
// read/update; B: 95/5 read/update; C: read-only; F: 50/50
// read/read-modify-write. (D and E need latest-distribution and scan
// support and are out of scope here.)
var ycsbMixes = map[string]ycsbMix{
	"a": {read: 50, update: 50},
	"b": {read: 95, update: 5},
	"c": {read: 100},
	"f": {read: 50, rmw: 50},
}

// YCSBWorkloads returns the supported workload names in order.
func YCSBWorkloads() []string { return []string{"a", "b", "c", "f"} }

// YCSB generates one worker's deterministic YCSB operation stream: keys
// drawn zipfian from [1, keyRange] (theta = 0 uniform, per Zipf), ops
// drawn from the named workload's mix. As with Mix, hashKeys sparsifies
// keys through Hash64 for trie-shaped structures.
type YCSB struct {
	zipf     *Zipf
	mix      ycsbMix
	hashKeys bool
	rng      *SplitMix64
}

// NewYCSB builds a per-worker generator for the named workload ("a",
// "b", "c" or "f"); each worker passes a distinct seed.
func NewYCSB(name string, keyRange uint64, theta float64, hashKeys bool, seed uint64) (*YCSB, error) {
	mix, ok := ycsbMixes[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown YCSB workload %q (have %v)", name, YCSBWorkloads())
	}
	return &YCSB{
		zipf:     NewZipf(keyRange, theta),
		mix:      mix,
		hashKeys: hashKeys,
		rng:      NewSplitMix64(seed),
	}, nil
}

// Next returns the next operation and key.
func (y *YCSB) Next() (YCSBOp, uint64) {
	r := y.rng.Next()
	k := y.zipf.Next(y.rng)
	if y.hashKeys {
		k = Hash64(k) | 1 // keep nonzero
	}
	switch c := int(r % 100); {
	case c < y.mix.read:
		return YRead, k
	case c < y.mix.read+y.mix.update:
		return YUpdate, k
	default:
		return YRMW, k
	}
}
