package workload

import "fmt"

// YCSBOp is one generated KV operation kind.
type YCSBOp uint8

// YCSB operation kinds: reads map to kv Get, updates to kv Put (blind
// upsert), read-modify-writes to kv ReadModifyWrite, inserts to kv Put
// of a fresh zipf-drawn key, and scans to kv Scan starting at the drawn
// key (ScanLen supplies the length of each scan).
const (
	YRead YCSBOp = iota
	YUpdate
	YRMW
	YInsert
	YScan
)

func (o YCSBOp) String() string {
	switch o {
	case YRead:
		return "read"
	case YUpdate:
		return "update"
	case YRMW:
		return "rmw"
	case YInsert:
		return "insert"
	default:
		return "scan"
	}
}

// ycsbMix is one workload's operation percentages (they sum to 100).
type ycsbMix struct {
	read, update, rmw, insert, scan int
}

// ycsbMixes holds the core YCSB workloads as op-mix specs. A: 50/50
// read/update; B: 95/5 read/update; C: read-only; E: 95/5 scan/insert
// (short ranges, the scan-heavy workload); F: 50/50
// read/read-modify-write. (D needs a latest distribution and remains
// out of scope.)
var ycsbMixes = map[string]ycsbMix{
	"a": {read: 50, update: 50},
	"b": {read: 95, update: 5},
	"c": {read: 100},
	"e": {scan: 95, insert: 5},
	"f": {read: 50, rmw: 50},
}

// YCSBWorkloads returns the supported workload names in order.
func YCSBWorkloads() []string { return []string{"a", "b", "c", "e", "f"} }

// DefaultScanLen is the default maximum scan length for scan-bearing
// workloads (YCSB-E's standard short-range default).
const DefaultScanLen = 16

// scanLenTheta skews scan lengths toward short scans, YCSB's zipfian
// scanlength distribution (the key skew parameter stays independent).
const scanLenTheta = 0.99

// YCSB generates one worker's deterministic YCSB operation stream: keys
// drawn zipfian from [1, keyRange] (theta = 0 uniform, per Zipf), ops
// drawn from the named workload's mix. As with Mix, hashKeys sparsifies
// keys through Hash64 for trie-shaped structures.
type YCSB struct {
	zipf     *Zipf
	lens     *Zipf // scan lengths in [1, maxScan]; nil until needed
	maxScan  int
	mix      ycsbMix
	hashKeys bool
	rng      *SplitMix64
}

// NewYCSB builds a per-worker generator for the named workload ("a",
// "b", "c", "e" or "f"); each worker passes a distinct seed. Scan
// lengths default to [1, DefaultScanLen]; see SetMaxScanLen.
func NewYCSB(name string, keyRange uint64, theta float64, hashKeys bool, seed uint64) (*YCSB, error) {
	mix, ok := ycsbMixes[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown YCSB workload %q (have %v)", name, YCSBWorkloads())
	}
	return &YCSB{
		zipf:     NewZipf(keyRange, theta),
		maxScan:  DefaultScanLen,
		mix:      mix,
		hashKeys: hashKeys,
		rng:      NewSplitMix64(seed),
	}, nil
}

// HasScans reports whether the workload's mix contains scan operations
// (so callers can refuse structures without ordered-scan support before
// starting the run).
func (y *YCSB) HasScans() bool { return y.mix.scan > 0 }

// SetMaxScanLen bounds the zipf-drawn scan lengths to [1, n] (n < 1
// means DefaultScanLen). Call before drawing; the length distribution
// is built lazily on the first scan op.
func (y *YCSB) SetMaxScanLen(n int) {
	if n < 1 {
		n = DefaultScanLen
	}
	y.maxScan = n
	y.lens = nil
}

// ScanLen draws the next scan's length from the zipfian scanlength
// distribution over [1, max] — skewed toward short scans, degenerating
// to the constant 1 when max is 1. Callers invoke it once per YScan op,
// keeping the stream deterministic.
func (y *YCSB) ScanLen() int {
	if y.lens == nil {
		y.lens = NewZipf(uint64(y.maxScan), scanLenTheta)
	}
	return int(y.lens.Next(y.rng))
}

// Next returns the next operation and key.
func (y *YCSB) Next() (YCSBOp, uint64) {
	r := y.rng.Next()
	k := y.zipf.Next(y.rng)
	if y.hashKeys {
		k = Hash64(k) | 1 // keep nonzero
	}
	m := y.mix
	switch c := int(r % 100); {
	case c < m.read:
		return YRead, k
	case c < m.read+m.update:
		return YUpdate, k
	case c < m.read+m.update+m.rmw:
		return YRMW, k
	case c < m.read+m.update+m.rmw+m.insert:
		return YInsert, k
	default:
		return YScan, k
	}
}
