package workload

import "fmt"

// TxnOp is one generated multi-key transaction kind, mapping onto the
// internal/txn client API.
type TxnOp uint8

// Transaction kinds: reads map to MultiGet, writes to MultiPut,
// transfers to Transfer (first two generated keys), and rmw to a
// generic read-increment-write Txn over the whole key set.
const (
	TxnRead TxnOp = iota
	TxnWrite
	TxnTransfer
	TxnRMW
)

func (o TxnOp) String() string {
	switch o {
	case TxnRead:
		return "read"
	case TxnWrite:
		return "write"
	case TxnTransfer:
		return "transfer"
	default:
		return "rmw"
	}
}

// txnMixSpec is one workload's operation percentages (sum 100).
type txnMixSpec struct {
	read, write, transfer, rmw int
}

// txnMixes holds the transactional workloads. "transfer" is the
// SmallBank-style money-movement mix the conserved-sum figures use;
// "ycsbt" is a YCSB-T-like short-transaction mix (read-mostly with
// multi-key writes, read-modify-writes and some transfers).
var txnMixes = map[string]txnMixSpec{
	"transfer": {read: 40, write: 10, transfer: 50},
	"ycsbt":    {read: 50, write: 25, transfer: 10, rmw: 15},
}

// TxnMixes returns the supported transactional workload names in order.
func TxnMixes() []string { return []string{"transfer", "ycsbt"} }

// TxnMix generates one worker's deterministic stream of multi-key
// transactions: operation kinds drawn from the named mix, key sets of
// the configured size drawn zipfian (distinct within each transaction;
// transfers always use exactly two keys).
type TxnMix struct {
	zipf *Zipf
	mix  txnMixSpec
	size int
	rng  *SplitMix64
	keys []uint64 // reused across Next calls; callers must not retain
}

// NewTxnMix builds a per-worker generator for the named transactional
// workload; size is the number of keys per multi-key transaction
// (values < 1 mean 1; transfers always touch exactly 2 keys and need a
// key range of at least 2).
func NewTxnMix(name string, keyRange uint64, theta float64, size int, seed uint64) (*TxnMix, error) {
	mix, ok := txnMixes[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown txn workload %q (have %v)", name, TxnMixes())
	}
	if size < 1 {
		size = 1
	}
	if max := int(keyRange); size > max {
		size = max
	}
	// Distinct draws are rejection-sampled: asking for most of a large
	// skewed key range turns each transaction into a coupon-collector
	// over the zipf tail (the rarest ranks have vanishing probability),
	// which looks like a hang. Fail fast instead; tiny ranges are
	// exempt (collecting all of a handful of keys is cheap at any skew).
	if keyRange > 32 && uint64(size) > keyRange/2 {
		return nil, fmt.Errorf("workload: txn size %d too large for key range %d (distinct draws degenerate; keep size <= keyRange/2)",
			size, keyRange)
	}
	if keyRange < 2 && mix.transfer > 0 {
		return nil, fmt.Errorf("workload: txn workload %q needs a key range >= 2 for transfers", name)
	}
	buf := size
	if buf < 2 && mix.transfer > 0 {
		buf = 2 // transfers draw 2 keys regardless of size
	}
	return &TxnMix{
		zipf: NewZipf(keyRange, theta),
		mix:  mix,
		size: size,
		rng:  NewSplitMix64(seed),
		keys: make([]uint64, 0, buf),
	}, nil
}

// distinct fills t.keys[:n] with n distinct zipfian keys.
func (t *TxnMix) distinct(n int) []uint64 {
	keys := t.keys[:0]
	for len(keys) < n {
		k := t.zipf.Next(t.rng)
		dup := false
		for _, kk := range keys {
			if kk == k {
				dup = true
				break
			}
		}
		if !dup {
			keys = append(keys, k)
		}
	}
	return keys
}

// Next returns the next transaction kind and its key set. The slice is
// reused by the following Next call; transactional clients copy their
// inputs (see internal/txn), so handing it straight to them is safe,
// but callers must not retain it.
func (t *TxnMix) Next() (TxnOp, []uint64) {
	r := t.rng.Next()
	c := int(r % 100)
	switch {
	case c < t.mix.read:
		return TxnRead, t.distinct(t.size)
	case c < t.mix.read+t.mix.write:
		return TxnWrite, t.distinct(t.size)
	case c < t.mix.read+t.mix.write+t.mix.transfer:
		return TxnTransfer, t.distinct(2)
	default:
		return TxnRMW, t.distinct(t.size)
	}
}
