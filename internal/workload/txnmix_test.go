package workload

import "testing"

func TestTxnMixFractions(t *testing.T) {
	for _, name := range TxnMixes() {
		m, err := NewTxnMix(name, 1000, 0, 4, 7)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		const draws = 200_000
		counts := map[TxnOp]int{}
		for i := 0; i < draws; i++ {
			op, _ := m.Next()
			counts[op]++
		}
		spec := txnMixes[name]
		wants := map[TxnOp]int{
			TxnRead: spec.read, TxnWrite: spec.write,
			TxnTransfer: spec.transfer, TxnRMW: spec.rmw,
		}
		for op, pct := range wants {
			got := float64(counts[op]) / draws * 100
			if diff := got - float64(pct); diff < -1.5 || diff > 1.5 {
				t.Errorf("%s: %v fraction %.2f%%, want ~%d%%", name, op, got, pct)
			}
		}
	}
}

func TestTxnMixDistinctKeys(t *testing.T) {
	// Even under heavy zipfian skew the keys within one transaction
	// must be distinct (a transfer from a key to itself, or a multi-op
	// locking one key twice, is malformed).
	m, err := NewTxnMix("ycsbt", 10, 0.99, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20_000; i++ {
		op, keys := m.Next()
		wantLen := 4
		if op == TxnTransfer {
			wantLen = 2
		}
		if len(keys) != wantLen {
			t.Fatalf("draw %d: %v produced %d keys, want %d", i, op, len(keys), wantLen)
		}
		seen := map[uint64]bool{}
		for _, k := range keys {
			if k < 1 || k > 10 {
				t.Fatalf("draw %d: key %d out of range", i, k)
			}
			if seen[k] {
				t.Fatalf("draw %d: duplicate key %d in %v", i, k, keys)
			}
			seen[k] = true
		}
	}
}

func TestTxnMixDeterministic(t *testing.T) {
	a, _ := NewTxnMix("transfer", 500, 0.75, 3, 42)
	b, _ := NewTxnMix("transfer", 500, 0.75, 3, 42)
	for i := 0; i < 5000; i++ {
		opA, keysA := a.Next()
		opB, keysB := b.Next()
		if opA != opB || len(keysA) != len(keysB) {
			t.Fatalf("draw %d diverged: %v/%v", i, opA, opB)
		}
		for j := range keysA {
			if keysA[j] != keysB[j] {
				t.Fatalf("draw %d key %d diverged: %d vs %d", i, j, keysA[j], keysB[j])
			}
		}
	}
}

func TestTxnMixSizeClamps(t *testing.T) {
	// size is clamped to the key range (distinct draws would otherwise
	// never terminate) and to at least 1.
	m, err := NewTxnMix("ycsbt", 3, 0, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	op, keys := m.Next()
	if op != TxnTransfer && len(keys) != 3 {
		t.Fatalf("size not clamped to key range: %d keys", len(keys))
	}
	if _, err := NewTxnMix("nope", 100, 0, 2, 1); err == nil {
		t.Fatal("unknown mix name accepted")
	}
	if _, err := NewTxnMix("transfer", 1, 0, 1, 1); err == nil {
		t.Fatal("transfer mix accepted a 1-key range")
	}
	// Collecting most of a large skewed range is a coupon-collector
	// hang; it must be rejected, not attempted.
	if _, err := NewTxnMix("ycsbt", 1000, 0.99, 600, 1); err == nil {
		t.Fatal("degenerate size/keyRange combination accepted")
	}
	if _, err := NewTxnMix("ycsbt", 1000, 0.99, 500, 1); err != nil {
		t.Fatalf("size = keyRange/2 rejected: %v", err)
	}
}
