package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMixDeterministic(t *testing.T) {
	a := NewSplitMix64(42)
	b := NewSplitMix64(42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := NewSplitMix64(43)
	same := 0
	a = NewSplitMix64(42)
	for i := 0; i < 1000; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide %d/1000 times", same)
	}
}

func TestSplitMixKnownVector(t *testing.T) {
	// Reference values for splitmix64 with seed 0 (Vigna's reference
	// implementation produces this first output).
	s := NewSplitMix64(0)
	if got := s.Next(); got != 0xe220a8397b1dcdaf {
		t.Fatalf("splitmix64(0) first output = %#x, want 0xe220a8397b1dcdaf", got)
	}
}

func TestFloat64Range(t *testing.T) {
	s := NewSplitMix64(7)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestHash64Avalanche(t *testing.T) {
	// Flipping one input bit should flip ~32 output bits on average.
	totalFlips := 0
	const trials = 64
	for b := 0; b < trials; b++ {
		x := uint64(0x123456789abcdef)
		d := Hash64(x) ^ Hash64(x^(1<<uint(b)))
		totalFlips += popcount(d)
	}
	avg := float64(totalFlips) / trials
	if avg < 24 || avg > 40 {
		t.Fatalf("avalanche average %.1f bits, want ~32", avg)
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestZipfUniformWhenThetaZero(t *testing.T) {
	z := NewZipf(100, 0)
	rng := NewSplitMix64(1)
	counts := make([]int, 101)
	const draws = 200000
	for i := 0; i < draws; i++ {
		k := z.Next(rng)
		if k < 1 || k > 100 {
			t.Fatalf("rank %d out of range", k)
		}
		counts[k]++
	}
	exp := draws / 100
	for k := 1; k <= 100; k++ {
		if counts[k] < exp/2 || counts[k] > exp*2 {
			t.Fatalf("uniform: rank %d count %d far from %d", k, counts[k], exp)
		}
	}
}

func TestZipfSkewMatchesTheory(t *testing.T) {
	// For zipf(theta), P(1)/P(2) = 2^theta. Check empirically at the
	// paper's strongest skew.
	const theta = 0.99
	z := NewZipf(1000, theta)
	rng := NewSplitMix64(99)
	var c1, c2 int
	const draws = 400000
	for i := 0; i < draws; i++ {
		switch z.Next(rng) {
		case 1:
			c1++
		case 2:
			c2++
		}
	}
	ratio := float64(c1) / float64(c2)
	want := math.Pow(2, theta)
	if ratio < want*0.9 || ratio > want*1.1 {
		t.Fatalf("P(1)/P(2) = %.3f, want ~%.3f", ratio, want)
	}
	// Head concentration: rank 1 should dominate.
	if float64(c1)/draws < 0.10 {
		t.Fatalf("rank 1 frequency %.3f too low for theta=0.99", float64(c1)/draws)
	}
}

// TestZipfHarmonicThetaOne pins the theta=1.0 harmonic edge between the
// theta=0 fast path and the generic Gray path: the spread exponent
// alpha = 1/(1-theta) diverges there (and eta degenerates to 0), which
// used to evaluate most draws to n+1 — out of range. The fixed
// generator must stay in [1, n] with the harmonic head ratio
// P(1)/P(2) = 2^theta = 2.
func TestZipfHarmonicThetaOne(t *testing.T) {
	const n = 1000
	z := NewZipf(n, 1.0)
	rng := NewSplitMix64(5)
	var c1, c2, top int
	const draws = 300000
	for i := 0; i < draws; i++ {
		k := z.Next(rng)
		if k < 1 || k > n {
			t.Fatalf("draw %d outside [1, %d] at theta=1.0", k, n)
		}
		switch k {
		case 1:
			c1++
		case 2:
			c2++
		}
		if k <= 10 {
			top++
		}
	}
	if ratio := float64(c1) / float64(c2); ratio < 2*0.85 || ratio > 2*1.15 {
		t.Fatalf("P(1)/P(2) = %.3f at theta=1.0, want ~2", ratio)
	}
	// Head concentration: under the harmonic law the top 10 ranks carry
	// zeta(10)/zeta(1000) ~ 39%% of the mass.
	if share := float64(top) / draws; share < 0.30 || share > 0.50 {
		t.Fatalf("top-10 mass %.3f at theta=1.0, want ~0.39", share)
	}

	// The single-rank degenerate case must be constant at every skew.
	for _, theta := range []float64{0, 0.99, 1.0} {
		z1 := NewZipf(1, theta)
		for i := 0; i < 1000; i++ {
			if k := z1.Next(rng); k != 1 {
				t.Fatalf("n=1 theta=%v drew %d, want 1", theta, k)
			}
		}
	}
}

func TestZipfRanksInRange(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw uint16, thetaRaw uint8) bool {
		n := uint64(nRaw%1000) + 2
		theta := float64(thetaRaw%100) / 100.0
		z := NewZipf(n, theta)
		rng := NewSplitMix64(seed)
		for i := 0; i < 200; i++ {
			k := z.Next(rng)
			if k < 1 || k > n {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMixProportions(t *testing.T) {
	for _, upd := range []int{0, 5, 10, 50, 100} {
		m := NewMix(1000, upd, 0.75, false, 7)
		var ins, del, find int
		const draws = 100000
		for i := 0; i < draws; i++ {
			op, k := m.Next()
			if k < 1 || k > 1000 {
				t.Fatalf("key %d out of range", k)
			}
			switch op {
			case OpInsert:
				ins++
			case OpDelete:
				del++
			default:
				find++
			}
		}
		gotUpd := float64(ins+del) / draws * 100
		if gotUpd < float64(upd)-2 || gotUpd > float64(upd)+2 {
			t.Fatalf("upd=%d%%: measured %.1f%%", upd, gotUpd)
		}
		if upd > 0 {
			bal := float64(ins) / float64(ins+del)
			if bal < 0.45 || bal > 0.55 {
				t.Fatalf("upd=%d%%: insert share %.2f, want ~0.5", upd, bal)
			}
		}
	}
}

func TestMixHashedKeysNonZeroAndSpread(t *testing.T) {
	m := NewMix(1000, 50, 0.99, true, 3)
	seen := map[uint64]bool{}
	for i := 0; i < 5000; i++ {
		_, k := m.Next()
		if k == 0 {
			t.Fatalf("hashed key 0")
		}
		seen[k] = true
	}
	// Hot ranks map to scattered keys, but the number of distinct keys is
	// still bounded by the rank range.
	if len(seen) > 1000 {
		t.Fatalf("more distinct hashed keys (%d) than ranks", len(seen))
	}
	if len(seen) < 100 {
		t.Fatalf("suspiciously few distinct keys: %d", len(seen))
	}
}

func TestPrefillRoughlyHalf(t *testing.T) {
	n := 0
	const r = 100000
	for k := uint64(1); k <= r; k++ {
		if PrefillKey(k) {
			n++
		}
	}
	if n < r*45/100 || n > r*55/100 {
		t.Fatalf("prefill selects %d of %d keys, want ~half", n, r)
	}
	// Deterministic.
	if PrefillKey(12345) != PrefillKey(12345) {
		t.Fatalf("prefill coin not deterministic")
	}
	hk, in := PrefillKeyHashed(77)
	if hk != Hash64(77)|1 || in != PrefillKey(77) {
		t.Fatalf("hashed prefill inconsistent")
	}
}

func TestPermutationIsBijective(t *testing.T) {
	for _, n := range []uint64{1, 2, 7, 100, 1000, 4097} {
		pm := NewPermutation(n, 99)
		seen := make(map[uint64]bool, n)
		for i := uint64(1); i <= n; i++ {
			k := pm.Apply(i)
			if k < 1 || k > n {
				t.Fatalf("n=%d: Apply(%d)=%d out of range", n, i, k)
			}
			if seen[k] {
				t.Fatalf("n=%d: duplicate output %d", n, k)
			}
			seen[k] = true
		}
	}
}

func TestPermutationShuffles(t *testing.T) {
	// The output must not be (close to) the identity or monotone: count
	// ascending adjacent pairs; random order gives ~half.
	const n = 10000
	pm := NewPermutation(n, 5)
	asc := 0
	prev := pm.Apply(1)
	for i := uint64(2); i <= n; i++ {
		k := pm.Apply(i)
		if k > prev {
			asc++
		}
		prev = k
	}
	if asc < n*35/100 || asc > n*65/100 {
		t.Fatalf("%d/%d ascending adjacent pairs; order not shuffled", asc, n)
	}
}

func TestZipfAlphaMonotonicity(t *testing.T) {
	// Higher alpha must put more probability mass on the low ranks: the
	// YCSB driver's skew knob has to actually skew. Measure the mass of
	// the top 1% of ranks across the repo's alpha ladder.
	const n = 1000
	const draws = 200000
	hotMass := func(theta float64) float64 {
		z := NewZipf(n, theta)
		rng := NewSplitMix64(123)
		hot := 0
		for i := 0; i < draws; i++ {
			if z.Next(rng) <= n/100 {
				hot++
			}
		}
		return float64(hot) / draws
	}
	alphas := []float64{0, 0.5, 0.75, 0.9, 0.99}
	prev := -1.0
	for _, a := range alphas {
		m := hotMass(a)
		// Require a strict, noticeable increase at each step (the
		// theoretical gaps are all > 4 percentage points here).
		if m <= prev+0.01 {
			t.Fatalf("alpha %.2f: top-1%% mass %.4f not above previous %.4f", a, m, prev)
		}
		prev = m
	}
	// And uniform really is uniform: top 1% of ranks gets ~1%.
	if m := hotMass(0); m < 0.005 || m > 0.02 {
		t.Fatalf("alpha 0: top-1%% mass %.4f, want ~0.01", m)
	}
}

func TestZipfThetaZeroMatchesUniformFastPath(t *testing.T) {
	// theta = 0 must take the fast path: Next draws exactly
	// rng.Next()%n + 1, consuming one PRNG value per call, so it can be
	// reproduced against an identically seeded generator.
	const n = 777
	z := NewZipf(n, 0)
	rng := NewSplitMix64(9)
	ref := NewSplitMix64(9)
	for i := 0; i < 2000; i++ {
		got := z.Next(rng)
		want := ref.Next()%n + 1
		if got != want {
			t.Fatalf("step %d: fast path draw %d, want %d", i, got, want)
		}
	}
}

func TestZetaCached(t *testing.T) {
	// Building two generators with the same parameters must hit the cache
	// (observable only via timing, so just verify equality of internals).
	a := NewZipf(5000, 0.9)
	b := NewZipf(5000, 0.9)
	if a.zetan != b.zetan || a.eta != b.eta {
		t.Fatalf("zeta cache produced different constants")
	}
}
