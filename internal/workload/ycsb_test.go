package workload

import "testing"

func TestYCSBUnknownWorkloadRejected(t *testing.T) {
	if _, err := NewYCSB("e", 100, 0.99, false, 1); err == nil {
		t.Fatalf("unsupported workload accepted")
	}
	if _, err := NewYCSB("", 100, 0.99, false, 1); err == nil {
		t.Fatalf("empty workload name accepted")
	}
}

func TestYCSBMixProportions(t *testing.T) {
	want := map[string][3]int{ // read, update, rmw percentages
		"a": {50, 50, 0},
		"b": {95, 5, 0},
		"c": {100, 0, 0},
		"f": {50, 0, 50},
	}
	const draws = 100000
	for _, name := range YCSBWorkloads() {
		y, err := NewYCSB(name, 1000, 0.99, false, 11)
		if err != nil {
			t.Fatal(err)
		}
		var got [3]int
		for i := 0; i < draws; i++ {
			op, k := y.Next()
			if k < 1 || k > 1000 {
				t.Fatalf("%s: key %d out of range", name, k)
			}
			got[op]++
		}
		for i, pct := range want[name] {
			share := float64(got[i]) / draws * 100
			if share < float64(pct)-2 || share > float64(pct)+2 {
				t.Fatalf("%s: op %d share %.1f%%, want ~%d%%", name, i, share, pct)
			}
		}
	}
}

func TestYCSBDeterministicPerSeed(t *testing.T) {
	a, _ := NewYCSB("a", 500, 0.9, false, 42)
	b, _ := NewYCSB("a", 500, 0.9, false, 42)
	for i := 0; i < 1000; i++ {
		opA, kA := a.Next()
		opB, kB := b.Next()
		if opA != opB || kA != kB {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestYCSBHashedKeysNonZero(t *testing.T) {
	y, _ := NewYCSB("a", 1000, 0.99, true, 3)
	for i := 0; i < 5000; i++ {
		if _, k := y.Next(); k == 0 {
			t.Fatalf("hashed key 0")
		}
	}
}
