package workload

import "testing"

func TestYCSBUnknownWorkloadRejected(t *testing.T) {
	if _, err := NewYCSB("z", 100, 0.99, false, 1); err == nil {
		t.Fatalf("unsupported workload accepted")
	}
	if _, err := NewYCSB("", 100, 0.99, false, 1); err == nil {
		t.Fatalf("empty workload name accepted")
	}
}

func TestYCSBMixProportions(t *testing.T) {
	want := map[string][5]int{ // read, update, rmw, insert, scan percentages
		"a": {50, 50, 0, 0, 0},
		"b": {95, 5, 0, 0, 0},
		"c": {100, 0, 0, 0, 0},
		"e": {0, 0, 0, 5, 95},
		"f": {50, 0, 50, 0, 0},
	}
	const draws = 100000
	for _, name := range YCSBWorkloads() {
		y, err := NewYCSB(name, 1000, 0.99, false, 11)
		if err != nil {
			t.Fatal(err)
		}
		if y.HasScans() != (want[name][4] > 0) {
			t.Fatalf("%s: HasScans() = %v", name, y.HasScans())
		}
		var got [5]int
		for i := 0; i < draws; i++ {
			op, k := y.Next()
			if k < 1 || k > 1000 {
				t.Fatalf("%s: key %d out of range", name, k)
			}
			got[op]++
		}
		for i, pct := range want[name] {
			share := float64(got[i]) / draws * 100
			if share < float64(pct)-2 || share > float64(pct)+2 {
				t.Fatalf("%s: op %d share %.1f%%, want ~%d%%", name, i, share, pct)
			}
		}
	}
}

// TestYCSBScanLengths pins the scanlength distribution: every draw in
// [1, max], skewed toward short scans, and deterministic per seed.
func TestYCSBScanLengths(t *testing.T) {
	y, err := NewYCSB("e", 1000, 0.99, false, 7)
	if err != nil {
		t.Fatal(err)
	}
	y.SetMaxScanLen(64)
	short, draws := 0, 20000
	for i := 0; i < draws; i++ {
		l := y.ScanLen()
		if l < 1 || l > 64 {
			t.Fatalf("scan length %d outside [1, 64]", l)
		}
		if l <= 8 {
			short++
		}
	}
	// Zipf(0.99) concentrates mass at the head: lengths <= 8 should
	// dominate (uniform would put them at 12.5%).
	if float64(short)/float64(draws) < 0.5 {
		t.Fatalf("scanlength distribution not short-skewed: %d/%d <= 8", short, draws)
	}

	a, _ := NewYCSB("e", 1000, 0.99, false, 42)
	b, _ := NewYCSB("e", 1000, 0.99, false, 42)
	a.SetMaxScanLen(32)
	b.SetMaxScanLen(32)
	for i := 0; i < 500; i++ {
		opA, kA := a.Next()
		opB, kB := b.Next()
		if opA != opB || kA != kB {
			t.Fatalf("same seed diverged at step %d", i)
		}
		if opA == YScan && a.ScanLen() != b.ScanLen() {
			t.Fatalf("scan lengths diverged at step %d", i)
		}
	}
}

// TestYCSBScanLenDegenerate pins the max=1 edge (satellite of the
// theta=1.0 Zipf fix): the length distribution over [1, 1] must return
// exactly 1 forever, for any skew, and values < 1 fall back to the
// default bound.
func TestYCSBScanLenDegenerate(t *testing.T) {
	y, _ := NewYCSB("e", 100, 0, false, 9)
	y.SetMaxScanLen(1)
	for i := 0; i < 5000; i++ {
		if l := y.ScanLen(); l != 1 {
			t.Fatalf("degenerate scan length draw %d, want 1", l)
		}
	}
	y.SetMaxScanLen(0)
	for i := 0; i < 5000; i++ {
		if l := y.ScanLen(); l < 1 || l > DefaultScanLen {
			t.Fatalf("default scan length draw %d outside [1, %d]", l, DefaultScanLen)
		}
	}
}

func TestYCSBDeterministicPerSeed(t *testing.T) {
	a, _ := NewYCSB("a", 500, 0.9, false, 42)
	b, _ := NewYCSB("a", 500, 0.9, false, 42)
	for i := 0; i < 1000; i++ {
		opA, kA := a.Next()
		opB, kB := b.Next()
		if opA != opB || kA != kB {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestYCSBHashedKeysNonZero(t *testing.T) {
	y, _ := NewYCSB("a", 1000, 0.99, true, 3)
	for i := 0; i < 5000; i++ {
		if _, k := y.Next(); k == 0 {
			t.Fatalf("hashed key 0")
		}
	}
}
