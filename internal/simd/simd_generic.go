//go:build !amd64 || flock_noasm

package simd

// HasAsm reports whether this build uses the assembly implementations.
const HasAsm = false

// Variant names the active implementation, for benchmark and
// experiment logs.
func Variant() string { return "generic" }

// Find16 returns the first lane i with keys[i] == b and valid bit i
// set, or -1.
func Find16(keys *[16]byte, b byte, valid uint16) int {
	return Find16Generic(keys, b, valid)
}

// Match16 returns the 16-bit equality mask of keys against b.
func Match16(keys *[16]byte, b byte) uint16 {
	return Match16Generic(keys, b)
}

// Mismatch returns the length of the longest common prefix of a and b.
func Mismatch(a, b []byte) int {
	return MismatchGeneric(a, b)
}
