package simd

import (
	"math/bits"
	"math/rand"
	"testing"
)

// find16Ref is the trivially-correct oracle both the tag-selected and
// the generic implementations are compared against.
func find16Ref(keys *[16]byte, b byte, valid uint16) int {
	for i := 0; i < 16; i++ {
		if valid&(1<<i) != 0 && keys[i] == b {
			return i
		}
	}
	return -1
}

func match16Ref(keys *[16]byte, b byte) uint16 {
	var m uint16
	for i := 0; i < 16; i++ {
		if keys[i] == b {
			m |= 1 << i
		}
	}
	return m
}

func mismatchRef(a, b []byte) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

func checkFind16(t *testing.T, keys *[16]byte, b byte, valid uint16) {
	t.Helper()
	want := find16Ref(keys, b, valid)
	if got := Find16(keys, b, valid); got != want {
		t.Fatalf("Find16(%v, %#x, %#x) = %d, want %d [variant %s]", *keys, b, valid, got, want, Variant())
	}
	if got := Find16Generic(keys, b, valid); got != want {
		t.Fatalf("Find16Generic(%v, %#x, %#x) = %d, want %d", *keys, b, valid, got, want)
	}
	wantM := match16Ref(keys, b)
	if got := Match16(keys, b); got != wantM {
		t.Fatalf("Match16(%v, %#x) = %#x, want %#x [variant %s]", *keys, b, got, wantM, Variant())
	}
	if got := Match16Generic(keys, b); got != wantM {
		t.Fatalf("Match16Generic(%v, %#x) = %#x, want %#x", *keys, b, got, wantM)
	}
}

// TestFind16Positions: the target byte at every one of the 16 lanes,
// under the empty, full, target-excluding and random occupancy masks.
func TestFind16Positions(t *testing.T) {
	t.Logf("variant: %s", Variant())
	rng := rand.New(rand.NewSource(1))
	for pos := 0; pos < 16; pos++ {
		var keys [16]byte
		for i := range keys {
			keys[i] = byte(0x20 + i) // distinct, != target
		}
		keys[pos] = 0xAB
		for _, valid := range []uint16{0, 0xFFFF, ^uint16(1 << pos), 1 << pos, uint16(rng.Intn(1 << 16))} {
			checkFind16(t, &keys, 0xAB, valid)
			checkFind16(t, &keys, 0xCD, valid) // absent byte
			checkFind16(t, &keys, keys[(pos+5)%16], valid)
		}
	}
}

// TestFind16Duplicates: the target byte in every pair of lanes (and in
// all lanes), with masks that knock out subsets of the duplicates —
// Find16 must return the lowest *valid* match, not the lowest match.
func TestFind16Duplicates(t *testing.T) {
	for lo := 0; lo < 16; lo++ {
		for hi := lo + 1; hi < 16; hi++ {
			var keys [16]byte
			for i := range keys {
				keys[i] = 0x11
			}
			keys[lo], keys[hi] = 0x77, 0x77
			for _, valid := range []uint16{0, 0xFFFF, ^uint16(1 << lo), ^uint16(1 << hi), ^(1<<lo | 1<<hi)} {
				checkFind16(t, &keys, 0x77, valid)
				checkFind16(t, &keys, 0x11, valid) // 14 duplicates
				checkFind16(t, &keys, 0x00, valid) // absent
			}
		}
	}
	var all [16]byte
	for i := range all {
		all[i] = 0xFE
	}
	for v := 0; v < 16; v++ {
		checkFind16(t, &all, 0xFE, 1<<v)
		checkFind16(t, &all, 0xFE, ^uint16(1<<v))
	}
}

// TestFind16ZeroBytes: the zero byte is a legal key byte and a likely
// stale-lane filler; make sure it is matched like any other.
func TestFind16ZeroBytes(t *testing.T) {
	var keys [16]byte // all zero
	for _, valid := range []uint16{0, 1, 0x8000, 0xFFFF, 0x00F0} {
		checkFind16(t, &keys, 0, valid)
		checkFind16(t, &keys, 1, valid)
	}
}

// TestFind16Random: randomized cross-check over byte distributions
// skewed to generate collisions.
func TestFind16Random(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 20000; iter++ {
		var keys [16]byte
		for i := range keys {
			keys[i] = byte(rng.Intn(8)) // heavy duplication
		}
		checkFind16(t, &keys, byte(rng.Intn(10)), uint16(rng.Intn(1<<16)))
	}
}

func checkMismatch(t *testing.T, a, b []byte) {
	t.Helper()
	want := mismatchRef(a, b)
	if got := Mismatch(a, b); got != want {
		t.Fatalf("Mismatch(len %d, len %d) = %d, want %d [variant %s]", len(a), len(b), got, want, Variant())
	}
	if got := MismatchGeneric(a, b); got != want {
		t.Fatalf("MismatchGeneric(len %d, len %d) = %d, want %d", len(a), len(b), got, want)
	}
}

// TestMismatchEveryIndex: for lengths spanning the byte, word, SSE2 and
// AVX2 regimes, plant a mismatch at every index (and none), at every
// alignment offset 0..15 into a shared backing array — unaligned tails
// and unaligned starts both covered.
func TestMismatchEveryIndex(t *testing.T) {
	lengths := []int{0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 100, 127, 128, 130}
	for _, n := range lengths {
		for _, off := range []int{0, 1, 5, 15} {
			back1 := make([]byte, off+n)
			back2 := make([]byte, off+n)
			for i := range back1 {
				back1[i] = byte(i * 7)
				back2[i] = byte(i * 7)
			}
			a, b := back1[off:], back2[off:]
			checkMismatch(t, a, b) // identical: full common prefix
			for at := 0; at < n; at++ {
				b[at] ^= 0x80
				checkMismatch(t, a, b)
				checkMismatch(t, b, a)
				b[at] ^= 0x80
			}
		}
	}
}

// TestMismatchUnequalLengths: when one slice is a proper prefix of the
// other the answer is the shorter length, for every split point.
func TestMismatchUnequalLengths(t *testing.T) {
	base := make([]byte, 96)
	for i := range base {
		base[i] = byte(i)
	}
	for cut := 0; cut <= len(base); cut++ {
		checkMismatch(t, base[:cut], base)
		checkMismatch(t, base, base[:cut])
	}
	checkMismatch(t, nil, nil)
	checkMismatch(t, nil, base)
	checkMismatch(t, base, nil)
}

// TestMismatchRandom: randomized differential with random common
// prefix lengths and lengths straddling the vector-width thresholds.
func TestMismatchRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 5000; iter++ {
		n := rng.Intn(200)
		m := rng.Intn(200)
		a := make([]byte, n)
		b := make([]byte, m)
		common := rng.Intn(min(n, m) + 1)
		for i := 0; i < common; i++ {
			c := byte(rng.Intn(256))
			a[i], b[i] = c, c
		}
		for i := common; i < n; i++ {
			a[i] = byte(rng.Intn(256))
		}
		for i := common; i < m; i++ {
			b[i] = byte(rng.Intn(256))
		}
		checkMismatch(t, a, b)
	}
}

// TestMatch16MaskIteration pins the idiom the tree getChild paths use:
// walking all candidate lanes of (Match16 & occ) via m &= m-1 visits
// exactly the reference matches in ascending order.
func TestMatch16MaskIteration(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 2000; iter++ {
		var keys [16]byte
		for i := range keys {
			keys[i] = byte(rng.Intn(4))
		}
		b := byte(rng.Intn(4))
		occ := uint16(rng.Intn(1 << 16))
		var got []int
		for m := Match16(&keys, b) & occ; m != 0; m &= m - 1 {
			got = append(got, bits.TrailingZeros16(m))
		}
		var want []int
		for i := 0; i < 16; i++ {
			if occ&(1<<i) != 0 && keys[i] == b {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("mask iteration visited %v, want %v", got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("mask iteration visited %v, want %v", got, want)
			}
		}
	}
}

func FuzzFind16(f *testing.F) {
	f.Add([]byte("0123456789abcdef"), byte('a'), uint16(0xFFFF))
	f.Add(make([]byte, 16), byte(0), uint16(0))
	f.Fuzz(func(t *testing.T, raw []byte, b byte, valid uint16) {
		var keys [16]byte
		copy(keys[:], raw)
		want := find16Ref(&keys, b, valid)
		if got := Find16(&keys, b, valid); got != want {
			t.Fatalf("Find16 = %d, want %d", got, want)
		}
		if got := Find16Generic(&keys, b, valid); got != want {
			t.Fatalf("Find16Generic = %d, want %d", got, want)
		}
		if got, want := Match16(&keys, b), match16Ref(&keys, b); got != want {
			t.Fatalf("Match16 = %#x, want %#x", got, want)
		}
	})
}

func FuzzMismatch(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte("abc"), []byte("abd"))
	f.Add(make([]byte, 100), make([]byte, 99))
	f.Fuzz(func(t *testing.T, a, b []byte) {
		want := mismatchRef(a, b)
		if got := Mismatch(a, b); got != want {
			t.Fatalf("Mismatch = %d, want %d", got, want)
		}
		if got := MismatchGeneric(a, b); got != want {
			t.Fatalf("MismatchGeneric = %d, want %d", got, want)
		}
	})
}
