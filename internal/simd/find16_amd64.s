//go:build amd64 && !flock_noasm

#include "textflag.h"

// Node16 key search, SSE2. The search byte is broadcast to all 16
// lanes of an XMM register (PUNPCKLBW/PUNPCKLWL/PSHUFL — no SSSE3
// PSHUFB needed), compared against the packed key image in one
// PCMPEQB, and the equality mask extracted with PMOVMSKB.

// func match16Asm(keys *[16]byte, b byte) uint16
TEXT ·match16Asm(SB), NOSPLIT, $0-18
	MOVQ    keys+0(FP), AX
	MOVBLZX b+8(FP), CX
	MOVD    CX, X0
	PUNPCKLBW X0, X0        // b in bytes 0..1
	PUNPCKLWL X0, X0        // b in bytes 0..3
	PSHUFL  $0, X0, X0      // b in all 16 bytes
	MOVOU   (AX), X1
	PCMPEQB X1, X0
	PMOVMSKB X0, BX
	MOVW    BX, ret+16(FP)
	RET

// func find16Asm(keys *[16]byte, b byte, valid uint16) int32
TEXT ·find16Asm(SB), NOSPLIT, $0-20
	MOVQ    keys+0(FP), AX
	MOVBLZX b+8(FP), CX
	MOVWLZX valid+10(FP), DX
	MOVD    CX, X0
	PUNPCKLBW X0, X0
	PUNPCKLWL X0, X0
	PSHUFL  $0, X0, X0
	MOVOU   (AX), X1
	PCMPEQB X1, X0
	PMOVMSKB X0, BX
	ANDL    DX, BX
	JEQ     miss
	BSFL    BX, BX
	MOVL    BX, ret+16(FP)
	RET
miss:
	MOVL    $-1, ret+16(FP)
	RET
