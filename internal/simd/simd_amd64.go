//go:build amd64 && !flock_noasm

package simd

// HasAsm reports whether this build uses the assembly implementations.
const HasAsm = true

// hasAVX2 gates the 32-byte Mismatch loop: it needs the CPU to
// advertise AVX2 and the OS to save the YMM state (OSXSAVE + XCR0).
var hasAVX2 = detectAVX2()

// Variant names the active implementation, for benchmark and
// experiment logs.
func Variant() string {
	if hasAVX2 {
		return "sse2+avx2"
	}
	return "sse2"
}

//go:noescape
func match16Asm(keys *[16]byte, b byte) uint16

//go:noescape
func find16Asm(keys *[16]byte, b byte, valid uint16) int32

//go:noescape
func mismatchSSE2(a, b *byte, n int) int

//go:noescape
func mismatchAVX2(a, b *byte, n int) int

func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)

func xgetbv() (eax, edx uint32)

func detectAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	if c1&osxsave == 0 {
		return false
	}
	if lo, _ := xgetbv(); lo&0x6 != 0x6 { // XMM and YMM state enabled
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return b7&avx2 != 0
}

// Find16 returns the first lane i with keys[i] == b and valid bit i
// set, or -1. One 16-byte vector compare.
func Find16(keys *[16]byte, b byte, valid uint16) int {
	return int(find16Asm(keys, b, valid))
}

// Match16 returns the 16-bit equality mask of keys against b.
func Match16(keys *[16]byte, b byte) uint16 {
	return match16Asm(keys, b)
}

// Mismatch returns the length of the longest common prefix of a and b.
// Short inputs (under one vector width — every in-node prefix compare
// in this repository, since keys are 8 bytes) stay on the inlinable
// word-compare path: the call overhead of non-inlinable assembly costs
// more than the vector saves there. Long inputs take the SSE2 loop,
// and the AVX2 loop from 64 bytes when the host supports it.
func Mismatch(a, b []byte) int {
	n := min(len(a), len(b))
	if n < 16 {
		return MismatchGeneric(a, b)
	}
	if hasAVX2 && n >= 64 {
		return mismatchAVX2(&a[0], &b[0], n)
	}
	return mismatchSSE2(&a[0], &b[0], n)
}
