//go:build amd64 && !flock_noasm

#include "textflag.h"

// Byte-slice mismatch scans. Both functions take raw base pointers and
// the already-computed min length n (the Go wrapper owns the slice
// header handling) and return the index of the first differing byte,
// or n. Equal bytes compare to 0xFF under PCMPEQB/VPCMPEQB, so a
// block matches iff its move-mask is all-ones; on the first block that
// is not, the inverted mask's lowest set bit is the mismatch offset.

// func mismatchSSE2(a, b *byte, n int) int
TEXT ·mismatchSSE2(SB), NOSPLIT, $0-32
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	XORQ AX, AX             // AX = index i
loop16:
	LEAQ 16(AX), DX
	CMPQ DX, CX
	JA   tail8              // fewer than 16 bytes left
	MOVOU (SI)(AX*1), X0
	MOVOU (DI)(AX*1), X1
	PCMPEQB X1, X0
	PMOVMSKB X0, BX
	CMPL BX, $0xFFFF
	JNE  found16
	MOVQ DX, AX
	JMP  loop16
found16:
	NOTL BX
	ANDL $0xFFFF, BX
	BSFL BX, BX
	ADDQ BX, AX
	MOVQ AX, ret+24(FP)
	RET
tail8:
	LEAQ 8(AX), DX
	CMPQ DX, CX
	JA   tail1
	MOVQ (SI)(AX*1), R8
	MOVQ (DI)(AX*1), R9
	XORQ R9, R8
	JNE  found8
	MOVQ DX, AX
	JMP  tail8
found8:
	BSFQ R8, R8
	SHRQ $3, R8             // bit index -> byte index (loads are LE)
	ADDQ R8, AX
	MOVQ AX, ret+24(FP)
	RET
tail1:
	CMPQ AX, CX
	JAE  done
	MOVBLZX (SI)(AX*1), R8
	MOVBLZX (DI)(AX*1), R9
	CMPL R8, R9
	JNE  done
	INCQ AX
	JMP  tail1
done:
	MOVQ AX, ret+24(FP)
	RET

// func mismatchAVX2(a, b *byte, n int) int
// Caller guarantees n >= 64 and AVX2 support.
TEXT ·mismatchAVX2(SB), NOSPLIT, $0-32
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	XORQ AX, AX
loop32:
	LEAQ 32(AX), DX
	CMPQ DX, CX
	JA   vdone
	VMOVDQU (SI)(AX*1), Y0
	VMOVDQU (DI)(AX*1), Y1
	VPCMPEQB Y1, Y0, Y0
	VPMOVMSKB Y0, BX
	CMPL BX, $-1            // all 32 lanes equal?
	JNE  found32
	MOVQ DX, AX
	JMP  loop32
found32:
	NOTL BX
	BSFL BX, BX
	ADDQ BX, AX
	VZEROUPPER
	MOVQ AX, ret+24(FP)
	RET
vdone:
	VZEROUPPER
vtail8:
	LEAQ 8(AX), DX
	CMPQ DX, CX
	JA   vtail1
	MOVQ (SI)(AX*1), R8
	MOVQ (DI)(AX*1), R9
	XORQ R9, R8
	JNE  vfound8
	MOVQ DX, AX
	JMP  vtail8
vfound8:
	BSFQ R8, R8
	SHRQ $3, R8
	ADDQ R8, AX
	MOVQ AX, ret+24(FP)
	RET
vtail1:
	CMPQ AX, CX
	JAE  vret
	MOVBLZX (SI)(AX*1), R8
	MOVBLZX (DI)(AX*1), R9
	CMPL R8, R9
	JNE  vret
	INCQ AX
	JMP  vtail1
vret:
	MOVQ AX, ret+24(FP)
	RET

// func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxArg+0(FP), AX
	MOVL ecxArg+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
