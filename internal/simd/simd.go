// Package simd provides the vectorized node-search primitives used by
// the ART implementations (internal/structures/arttree and
// internal/baseline/olcart): a 16-lane key-byte match and a byte-slice
// mismatch scan. On amd64 the primitives are implemented in assembly
// (SSE2 always; AVX2 for long Mismatch inputs when the CPU and OS
// support it) and selected at build time; everywhere else — and under
// the `flock_noasm` build tag, which forces the portable path on any
// architecture — the pure-Go generic implementations below are used.
// The generic implementations are always compiled and exported so the
// differential tests and benchmarks can compare the two paths under
// either tag configuration.
//
// Conventions: a node's packed key image is a 16-byte array where lane
// i holds the key byte of slot i, plus a uint16 occupancy mask whose
// bit i says lane i is live. Match16 returns the raw 16-bit equality
// mask (callers AND it with their occupancy mask); Find16 folds the
// AND in and returns the first matching lane, -1 if none. Lanes whose
// occupancy bit is clear may hold stale bytes; masking keeps them out.
package simd

import (
	"encoding/binary"
	"math/bits"
)

// Find16Generic is the portable Find16: the first lane i with
// keys[i] == b and valid bit i set, or -1.
func Find16Generic(keys *[16]byte, b byte, valid uint16) int {
	if m := Match16Generic(keys, b) & valid; m != 0 {
		return bits.TrailingZeros16(m)
	}
	return -1
}

// Match16Generic is the portable Match16: bit i of the result is set
// iff keys[i] == b.
func Match16Generic(keys *[16]byte, b byte) uint16 {
	var m uint16
	for i := 0; i < 16; i++ {
		if keys[i] == b {
			m |= 1 << i
		}
	}
	return m
}

// MismatchGeneric is the portable Mismatch: the length of the longest
// common prefix of a and b — the index of the first differing byte, or
// min(len(a), len(b)) when one slice is a prefix of the other. It
// compares 8-byte words (byte order fixed by the little-endian load,
// so the result is endian-independent) and finishes byte-wise.
func MismatchGeneric(a, b []byte) int {
	n := min(len(a), len(b))
	i := 0
	for ; i+8 <= n; i += 8 {
		if x := binary.LittleEndian.Uint64(a[i:]) ^ binary.LittleEndian.Uint64(b[i:]); x != 0 {
			return i + bits.TrailingZeros64(x)>>3
		}
	}
	for ; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
