// Package abtree implements the paper's (a,b)-tree: a leaf-oriented
// B-tree whose nodes hold between A and B entries (A=4, B=16, so a merge
// of two minimal nodes always fits). Concurrency follows the optimistic
// fine-grained try-lock recipe: traversals take no locks; key arrays are
// immutable and nodes are replaced copy-on-write, while child pointers
// are mutable slots so a leaf can be swapped under a single parent lock.
//
// Structural maintenance is preemptive, as in classic B-tree latching: a
// descent that meets a full child splits it (locking grandparent, parent
// and child, in root-to-leaf order) and restarts; a delete descent that
// meets a minimal child borrows from or merges with an adjacent sibling
// first. Both rebuild the parent, so by the time a leaf is modified its
// parent is guaranteed non-full/non-minimal.
package abtree

import (
	"fmt"
	"math"
	"sort"

	flock "flock/internal/core"
	"flock/internal/structures/set"
)

const (
	// A and B are the occupancy bounds: non-root nodes keep their size
	// (children for internals, keys for leaves) in [A, B]. 2*A <= B is
	// required so merges fit.
	A = 4
	B = 16
)

// node is an immutable-shape tree node: keys (and vals for leaves) never
// change after construction; only the children slots of internals are
// mutated in place. An internal with m keys has m+1 children; children[i]
// covers keys in [keys[i-1], keys[i]).
type node struct {
	leaf     bool
	keys     []uint64
	vals     []uint64               // leaves only
	children []flock.Mutable[*node] // internals only
	removed  flock.UpdateOnce[bool]
	lck      flock.Lock
}

func (n *node) size() int {
	if n.leaf {
		return len(n.keys)
	}
	return len(n.children)
}

// Tree is a concurrent (a,b)-tree set.
type Tree struct {
	entry  *node // permanent pseudo-root: entry.children[0] is the real root
	strict bool
}

// New returns an empty tree (the root starts as an empty leaf).
func New(rt *flock.Runtime) *Tree {
	_ = rt
	entry := &node{children: make([]flock.Mutable[*node], 1)}
	entry.children[0].Init(&node{leaf: true})
	return &Tree{entry: entry}
}

// NewStrict returns a tree whose updates take strict locks instead of
// try-locks; in blocking mode this is the stand-in for Srivastava's
// blocking (a,b)-tree in Figure 6 (DESIGN.md S5).
func NewStrict(rt *flock.Runtime) *Tree {
	t := New(rt)
	t.strict = true
	return t
}

// acquire runs f under l with the tree's lock discipline.
func (t *Tree) acquire(p *flock.Proc, l *flock.Lock, f flock.Thunk) bool {
	if t.strict {
		return l.Lock(p, f)
	}
	return l.TryLock(p, f)
}

// route returns the child index k descends to in internal node n.
func route(n *node, k uint64) int {
	return sort.Search(len(n.keys), func(i int) bool { return k < n.keys[i] })
}

func leafFind(n *node, k uint64) (int, bool) {
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= k })
	return i, i < len(n.keys) && n.keys[i] == k
}

// Find reports the value stored under k.
func (t *Tree) Find(p *flock.Proc, k uint64) (uint64, bool) {
	p.Begin()
	defer p.End()
	cur := t.entry.children[0].Load(p)
	for !cur.leaf {
		cur = cur.children[route(cur, k)].Load(p)
	}
	if i, ok := leafFind(cur, k); ok {
		return cur.vals[i], true
	}
	return 0, false
}

// Insert adds (k, v); false if already present.
func (t *Tree) Insert(p *flock.Proc, k, v uint64) bool {
	p.Begin()
	defer p.End()
	for {
		var gp *node
		gpIdx := 0
		par, parIdx := t.entry, 0
		cur := par.children[0].Load(p)
		restart := false
		for {
			if cur.size() == B {
				t.splitChild(p, gp, gpIdx, par, parIdx, cur)
				restart = true
				break
			}
			if cur.leaf {
				break
			}
			i := route(cur, k)
			gp, gpIdx = par, parIdx
			par, parIdx = cur, i
			cur = cur.children[i].Load(p)
		}
		if restart {
			continue
		}
		pos, found := leafFind(cur, k)
		if found {
			return false
		}
		leaf := cur
		ok := t.acquire(p, &par.lck, func(hp *flock.Proc) bool {
			if par.removed.Load(hp) || par.children[parIdx].Load(hp) != leaf {
				return false // validate: leaf arrays are immutable, pointer pins content
			}
			nl := flock.Allocate(hp, func() *node {
				nk := make([]uint64, len(leaf.keys)+1)
				nv := make([]uint64, len(leaf.vals)+1)
				copy(nk, leaf.keys[:pos])
				copy(nv, leaf.vals[:pos])
				nk[pos], nv[pos] = k, v
				copy(nk[pos+1:], leaf.keys[pos:])
				copy(nv[pos+1:], leaf.vals[pos:])
				return &node{leaf: true, keys: nk, vals: nv}
			})
			par.children[parIdx].Store(hp, nl)
			flock.Retire(hp, leaf, nil)
			return true
		})
		if ok {
			return true
		}
	}
}

// Delete removes k; false if absent.
func (t *Tree) Delete(p *flock.Proc, k uint64) bool {
	p.Begin()
	defer p.End()
	for {
		par, parIdx := t.entry, 0
		cur := par.children[0].Load(p)
		restart := false
		for !cur.leaf {
			i := route(cur, k)
			child := cur.children[i].Load(p)
			if child.size() == A {
				t.rebalanceChild(p, par, parIdx, cur, i, child)
				restart = true
				break
			}
			par, parIdx = cur, i
			cur = child
		}
		if restart {
			continue
		}
		pos, found := leafFind(cur, k)
		if !found {
			return false
		}
		leaf := cur
		ok := t.acquire(p, &par.lck, func(hp *flock.Proc) bool {
			if par.removed.Load(hp) || par.children[parIdx].Load(hp) != leaf {
				return false
			}
			nl := flock.Allocate(hp, func() *node {
				nk := make([]uint64, 0, len(leaf.keys)-1)
				nv := make([]uint64, 0, len(leaf.vals)-1)
				nk = append(append(nk, leaf.keys[:pos]...), leaf.keys[pos+1:]...)
				nv = append(append(nv, leaf.vals[:pos]...), leaf.vals[pos+1:]...)
				return &node{leaf: true, keys: nk, vals: nv}
			})
			par.children[parIdx].Store(hp, nl)
			flock.Retire(hp, leaf, nil)
			return true
		})
		if ok {
			return true
		}
	}
}

// Scan implements set.Scanner: an in-order walk of the children whose
// covering interval ([keys[i-1], keys[i])) intersects [lo, hi],
// collecting the qualifying slice of each intersecting leaf. Key arrays
// are immutable and nodes are replaced copy-on-write, so each loaded
// node is a point snapshot of its interval (interval semantics, as in
// leaftree). The body is a single idempotent thunk: logged loads,
// run-local accumulation, no locks taken.
func (t *Tree) Scan(p *flock.Proc, lo, hi uint64, limit int) []set.KV {
	lo, hi = set.ClampScanBounds(lo, hi)
	if limit == 0 {
		return nil
	}
	p.Begin()
	defer p.End()
	var out []set.KV
	var walk func(n *node) bool // false once limit is reached
	walk = func(n *node) bool {
		if n.leaf {
			i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= lo })
			for ; i < len(n.keys) && n.keys[i] <= hi; i++ {
				out = append(out, set.KV{Key: n.keys[i], Value: n.vals[i]})
				if limit > 0 && len(out) >= limit {
					return false
				}
			}
			return true
		}
		clo := uint64(0)
		for i := range n.children {
			chi := uint64(math.MaxUint64)
			if i < len(n.keys) {
				chi = n.keys[i] // child i covers [clo, chi)
			}
			// Intersects iff clo <= hi and lo < chi (chi is exclusive;
			// the last child's chi of MaxUint64 always exceeds the
			// clamped lo).
			if clo <= hi && lo < chi {
				if !walk(n.children[i].Load(p)) {
					return false
				}
			}
			clo = chi
		}
		return true
	}
	walk(t.entry.children[0].Load(p))
	return out
}

// OptimisticFind implements set.OptimisticReader. The descent is a pure
// load chain over immutable key arrays (nodes replaced copy-on-write),
// so at top level Find is already unlogged; this method only asserts
// the top-level contract.
func (t *Tree) OptimisticFind(p *flock.Proc, k uint64) (uint64, bool) {
	if p.InThunk() {
		panic("abtree: OptimisticFind inside a thunk")
	}
	return t.Find(p, k)
}

// OptimisticScan implements set.OptimisticScanner; see OptimisticFind —
// the scan walk is store-free with run-local accumulation.
func (t *Tree) OptimisticScan(p *flock.Proc, lo, hi uint64, limit int) []set.KV {
	if p.InThunk() {
		panic("abtree: OptimisticScan inside a thunk")
	}
	return t.Scan(p, lo, hi, limit)
}

// splitChild splits full node cur (a child of par at parIdx) into two
// halves, pushing the median separator into a rebuilt par. When par is
// the entry pseudo-root, cur is the root and a new root is created
// instead. Best-effort: any validation failure just causes a restart.
func (t *Tree) splitChild(p *flock.Proc, gp *node, gpIdx int, par *node, parIdx int, cur *node) {
	if par == t.entry {
		t.acquire(p, &par.lck, func(hp *flock.Proc) bool {
			if par.children[0].Load(hp) != cur {
				return false
			}
			return t.acquire(hp, &cur.lck, func(hp2 *flock.Proc) bool {
				c1, c2, sep := splitHalves(hp2, cur)
				newRoot := flock.Allocate(hp2, func() *node {
					r := &node{keys: []uint64{sep}, children: make([]flock.Mutable[*node], 2)}
					r.children[0].Init(c1)
					r.children[1].Init(c2)
					return r
				})
				cur.removed.Store(hp2, true)
				par.children[0].Store(hp2, newRoot)
				flock.Retire(hp2, cur, nil)
				return true
			})
		})
		return
	}
	t.acquire(p, &gp.lck, func(hp *flock.Proc) bool {
		if gp.removed.Load(hp) || gp.children[gpIdx].Load(hp) != par {
			return false
		}
		return t.acquire(hp, &par.lck, func(hp2 *flock.Proc) bool {
			if len(par.children) == B { // par grew full meanwhile: split it first
				return false
			}
			if par.children[parIdx].Load(hp2) != cur {
				return false
			}
			return t.acquire(hp2, &cur.lck, func(hp3 *flock.Proc) bool {
				c1, c2, sep := splitHalves(hp3, cur)
				newPar := rebuildReplace2(hp3, par, parIdx, sep, c1, c2)
				par.removed.Store(hp3, true)
				cur.removed.Store(hp3, true)
				gp.children[gpIdx].Store(hp3, newPar)
				flock.Retire(hp3, par, nil)
				flock.Retire(hp3, cur, nil)
				return true
			})
		})
	})
}

// splitHalves builds the two halves of full node cur and returns them
// with the separator key. cur's lock must be held (its child slots are
// loaded here).
func splitHalves(hp *flock.Proc, cur *node) (c1, c2 *node, sep uint64) {
	if cur.leaf {
		mid := len(cur.keys) / 2
		sep = cur.keys[mid]
		c1 = flock.Allocate(hp, func() *node {
			return &node{leaf: true, keys: cur.keys[:mid:mid], vals: cur.vals[:mid:mid]}
		})
		c2 = flock.Allocate(hp, func() *node {
			return &node{leaf: true, keys: cur.keys[mid:], vals: cur.vals[mid:]}
		})
		return c1, c2, sep
	}
	mid := len(cur.children) / 2
	sep = cur.keys[mid-1]
	// Child slot values must be read under cur's lock with committed
	// loads so all helpers build identical halves.
	kids := make([]*node, len(cur.children))
	for i := range cur.children {
		kids[i] = cur.children[i].Load(hp)
	}
	c1 = flock.Allocate(hp, func() *node {
		n := &node{keys: cur.keys[: mid-1 : mid-1], children: make([]flock.Mutable[*node], mid)}
		for i := 0; i < mid; i++ {
			n.children[i].Init(kids[i])
		}
		return n
	})
	c2 = flock.Allocate(hp, func() *node {
		n := &node{keys: cur.keys[mid:], children: make([]flock.Mutable[*node], len(kids)-mid)}
		for i := mid; i < len(kids); i++ {
			n.children[i-mid].Init(kids[i])
		}
		return n
	})
	return c1, c2, sep
}

// rebuildReplace2 returns a copy of internal node par with the child at
// parIdx replaced by c1, c2 and sep inserted between them. par's lock
// must be held.
func rebuildReplace2(hp *flock.Proc, par *node, parIdx int, sep uint64, c1, c2 *node) *node {
	kids := make([]*node, len(par.children))
	for i := range par.children {
		kids[i] = par.children[i].Load(hp)
	}
	return flock.Allocate(hp, func() *node {
		nk := make([]uint64, 0, len(par.keys)+1)
		nk = append(append(append(nk, par.keys[:parIdx]...), sep), par.keys[parIdx:]...)
		n := &node{keys: nk, children: make([]flock.Mutable[*node], len(kids)+1)}
		for i := 0; i < parIdx; i++ {
			n.children[i].Init(kids[i])
		}
		n.children[parIdx].Init(c1)
		n.children[parIdx+1].Init(c2)
		for i := parIdx + 1; i < len(kids); i++ {
			n.children[i+1].Init(kids[i])
		}
		return n
	})
}

// rebalanceChild grows minimal child (at index i of cur) by borrowing
// from or merging with an adjacent sibling, rebuilding cur; par holds
// cur's slot. Best-effort with restart on failure.
func (t *Tree) rebalanceChild(p *flock.Proc, par *node, parIdx int, cur *node, i int, child *node) {
	j := i + 1
	if i > 0 {
		j = i - 1
	}
	lo, hi := i, j
	if lo > hi {
		lo, hi = hi, lo
	}
	t.acquire(p, &par.lck, func(hp *flock.Proc) bool {
		if par.removed.Load(hp) || par.children[parIdx].Load(hp) != cur {
			return false
		}
		return t.acquire(hp, &cur.lck, func(hp2 *flock.Proc) bool {
			if cur.children[i].Load(hp2) != child {
				return false
			}
			sib := cur.children[j].Load(hp2)
			loN, hiN := child, sib
			if lo == j {
				loN, hiN = sib, child
			}
			if child.leaf {
				// Leaves are immutable: no child locks needed.
				t.rebalanceLeaves(hp2, par, parIdx, cur, lo, loN, hiN)
				return true
			}
			// Internal children: lock both (in index order) to freeze
			// their slots while copying.
			return t.acquire(hp2, &loN.lck, func(hp3 *flock.Proc) bool {
				return t.acquire(hp3, &hiN.lck, func(hp4 *flock.Proc) bool {
					t.rebalanceInternals(hp4, par, parIdx, cur, lo, loN, hiN)
					return true
				})
			})
		})
	})
}

// rebalanceLeaves merges or borrows between adjacent leaves loN (index
// lo) and hiN (index lo+1) of cur. All locks (par, cur) held.
func (t *Tree) rebalanceLeaves(hp *flock.Proc, par *node, parIdx int, cur *node, lo int, loN, hiN *node) {
	total := len(loN.keys) + len(hiN.keys)
	if total <= B {
		// Merge the two leaves; drop separator keys[lo].
		merged := flock.Allocate(hp, func() *node {
			nk := make([]uint64, 0, total)
			nv := make([]uint64, 0, total)
			nk = append(append(nk, loN.keys...), hiN.keys...)
			nv = append(append(nv, loN.vals...), hiN.vals...)
			return &node{leaf: true, keys: nk, vals: nv}
		})
		t.replaceMerged(hp, par, parIdx, cur, lo, merged)
		flock.Retire(hp, loN, nil)
		flock.Retire(hp, hiN, nil)
		return
	}
	// Borrow: rebalance the two leaves evenly and update the separator.
	mid := total / 2
	newLo := flock.Allocate(hp, func() *node {
		nk := make([]uint64, 0, mid)
		nv := make([]uint64, 0, mid)
		nk = append(append(nk, loN.keys...), hiN.keys...)[:mid]
		nv = append(append(nv, loN.vals...), hiN.vals...)[:mid]
		return &node{leaf: true, keys: nk, vals: nv}
	})
	newHi := flock.Allocate(hp, func() *node {
		nk := append(append([]uint64{}, loN.keys...), hiN.keys...)[mid:]
		nv := append(append([]uint64{}, loN.vals...), hiN.vals...)[mid:]
		return &node{leaf: true, keys: nk, vals: nv}
	})
	t.replaceBorrowed(hp, par, parIdx, cur, lo, newLo, newHi, newHi.keys[0])
	flock.Retire(hp, loN, nil)
	flock.Retire(hp, hiN, nil)
}

// rebalanceInternals merges or rotates between adjacent internal children
// loN (index lo) and hiN (lo+1) of cur. All locks held (par, cur, loN, hiN).
func (t *Tree) rebalanceInternals(hp *flock.Proc, par *node, parIdx int, cur *node, lo int, loN, hiN *node) {
	sep := cur.keys[lo]
	loKids := loadKids(hp, loN)
	hiKids := loadKids(hp, hiN)
	total := len(loKids) + len(hiKids)
	if total <= B {
		merged := flock.Allocate(hp, func() *node {
			nk := make([]uint64, 0, len(loN.keys)+1+len(hiN.keys))
			nk = append(append(append(nk, loN.keys...), sep), hiN.keys...)
			n := &node{keys: nk, children: make([]flock.Mutable[*node], total)}
			for i, c := range append(append([]*node{}, loKids...), hiKids...) {
				n.children[i].Init(c)
			}
			return n
		})
		t.replaceMerged(hp, par, parIdx, cur, lo, merged)
		loN.removed.Store(hp, true)
		hiN.removed.Store(hp, true)
		flock.Retire(hp, loN, nil)
		flock.Retire(hp, hiN, nil)
		return
	}
	// Rotate: move children across to even out, threading separators.
	allKeys := make([]uint64, 0, len(loN.keys)+1+len(hiN.keys))
	allKeys = append(append(append(allKeys, loN.keys...), sep), hiN.keys...)
	allKids := append(append([]*node{}, loKids...), hiKids...)
	mid := total / 2
	newSep := allKeys[mid-1]
	newLo := flock.Allocate(hp, func() *node {
		n := &node{keys: allKeys[: mid-1 : mid-1], children: make([]flock.Mutable[*node], mid)}
		for i := 0; i < mid; i++ {
			n.children[i].Init(allKids[i])
		}
		return n
	})
	newHi := flock.Allocate(hp, func() *node {
		n := &node{keys: allKeys[mid:], children: make([]flock.Mutable[*node], total-mid)}
		for i := mid; i < total; i++ {
			n.children[i-mid].Init(allKids[i])
		}
		return n
	})
	t.replaceBorrowed(hp, par, parIdx, cur, lo, newLo, newHi, newSep)
	loN.removed.Store(hp, true)
	hiN.removed.Store(hp, true)
	flock.Retire(hp, loN, nil)
	flock.Retire(hp, hiN, nil)
}

func loadKids(hp *flock.Proc, n *node) []*node {
	kids := make([]*node, len(n.children))
	for i := range n.children {
		kids[i] = n.children[i].Load(hp)
	}
	return kids
}

// replaceMerged rebuilds cur with children lo and lo+1 replaced by merged
// and separator keys[lo] dropped, installing it in par (or collapsing the
// root when cur shrinks to a single child).
func (t *Tree) replaceMerged(hp *flock.Proc, par *node, parIdx int, cur *node, lo int, merged *node) {
	if par == t.entry && len(cur.children) == 2 {
		// Root collapse: the merged node becomes the root.
		cur.removed.Store(hp, true)
		par.children[0].Store(hp, merged)
		flock.Retire(hp, cur, nil)
		return
	}
	kids := loadKids(hp, cur)
	newCur := flock.Allocate(hp, func() *node {
		nk := make([]uint64, 0, len(cur.keys)-1)
		nk = append(append(nk, cur.keys[:lo]...), cur.keys[lo+1:]...)
		n := &node{keys: nk, children: make([]flock.Mutable[*node], len(kids)-1)}
		idx := 0
		for i, c := range kids {
			switch i {
			case lo:
				n.children[idx].Init(merged)
				idx++
			case lo + 1:
				// skip: replaced by merged
			default:
				n.children[idx].Init(c)
				idx++
			}
		}
		return n
	})
	cur.removed.Store(hp, true)
	par.children[parIdx].Store(hp, newCur)
	flock.Retire(hp, cur, nil)
}

// replaceBorrowed rebuilds cur with children lo, lo+1 replaced by newLo,
// newHi and separator keys[lo] replaced by newSep.
func (t *Tree) replaceBorrowed(hp *flock.Proc, par *node, parIdx int, cur *node, lo int, newLo, newHi *node, newSep uint64) {
	kids := loadKids(hp, cur)
	newCur := flock.Allocate(hp, func() *node {
		nk := append([]uint64{}, cur.keys...)
		nk[lo] = newSep
		n := &node{keys: nk, children: make([]flock.Mutable[*node], len(kids))}
		for i, c := range kids {
			n.children[i].Init(c)
		}
		n.children[lo].Init(newLo)
		n.children[lo+1].Init(newHi)
		return n
	})
	cur.removed.Store(hp, true)
	par.children[parIdx].Store(hp, newCur)
	flock.Retire(hp, cur, nil)
}

// Keys returns the sorted key snapshot (single-threaded use).
func (t *Tree) Keys(p *flock.Proc) []uint64 {
	var out []uint64
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			out = append(out, n.keys...)
			return
		}
		for i := range n.children {
			walk(n.children[i].Load(p))
		}
	}
	walk(t.entry.children[0].Load(p))
	return out
}

// Height returns the leaf depth (single-threaded use; the tree is always
// of uniform depth).
func (t *Tree) Height(p *flock.Proc) int {
	h := 0
	for n := t.entry.children[0].Load(p); !n.leaf; n = n.children[0].Load(p) {
		h++
	}
	return h
}

// CheckInvariants verifies: key bounds per subtree, node occupancy in
// [A, B] for non-root nodes, uniform leaf depth, sorted keys, and
// children count = keys count + 1 (single-threaded use).
func (t *Tree) CheckInvariants(p *flock.Proc) error {
	root := t.entry.children[0].Load(p)
	leafDepth := -1
	var walk func(n *node, lo, hi uint64, depth int, isRoot bool) error
	walk = func(n *node, lo, hi uint64, depth int, isRoot bool) error {
		for i := 1; i < len(n.keys); i++ {
			if n.keys[i-1] >= n.keys[i] {
				return fmt.Errorf("abtree: unsorted keys at depth %d", depth)
			}
		}
		for _, k := range n.keys {
			if k < lo || k >= hi {
				return fmt.Errorf("abtree: key %d outside [%d,%d)", k, lo, hi)
			}
		}
		if n.leaf {
			if !isRoot && (len(n.keys) < A || len(n.keys) > B) {
				return fmt.Errorf("abtree: leaf occupancy %d outside [%d,%d]", len(n.keys), A, B)
			}
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return fmt.Errorf("abtree: leaf depth %d != %d", depth, leafDepth)
			}
			return nil
		}
		if len(n.children) != len(n.keys)+1 {
			return fmt.Errorf("abtree: %d children for %d keys", len(n.children), len(n.keys))
		}
		minC := A
		if isRoot {
			minC = 2
		}
		if len(n.children) < minC || len(n.children) > B {
			return fmt.Errorf("abtree: internal occupancy %d outside [%d,%d]", len(n.children), minC, B)
		}
		clo := lo
		for i := range n.children {
			chi := hi
			if i < len(n.keys) {
				chi = n.keys[i]
			}
			if err := walk(n.children[i].Load(p), clo, chi, depth+1, false); err != nil {
				return err
			}
			clo = chi
		}
		return nil
	}
	return walk(root, 0, ^uint64(0), 0, true)
}
