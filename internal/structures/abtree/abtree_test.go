package abtree

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	flock "flock/internal/core"
	"flock/internal/structures/set"
	"flock/internal/structures/settest"
)

func factory(rt *flock.Runtime) set.Set { return New(rt) }

func TestSuite(t *testing.T) { settest.Run(t, factory) }

func TestRootLeafGrowsAndSplits(t *testing.T) {
	rt := flock.New()
	p := rt.Register()
	defer p.Unregister()
	tr := New(rt)
	for k := uint64(1); k <= B; k++ {
		if !tr.Insert(p, k, k) {
			t.Fatalf("insert %d", k)
		}
	}
	if h := tr.Height(p); h != 0 {
		t.Fatalf("height %d with %d keys, want 0", h, B)
	}
	if !tr.Insert(p, B+1, B+1) {
		t.Fatalf("overflow insert failed")
	}
	if h := tr.Height(p); h != 1 {
		t.Fatalf("height %d after root split, want 1", h)
	}
	if err := tr.CheckInvariants(p); err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= B+1; k++ {
		if v, ok := tr.Find(p, k); !ok || v != k {
			t.Fatalf("Find(%d)=(%d,%v)", k, v, ok)
		}
	}
}

func TestDeepTreeOccupancyInvariants(t *testing.T) {
	rt := flock.New()
	p := rt.Register()
	defer p.Unregister()
	tr := New(rt)
	const n = 5000
	rng := rand.New(rand.NewSource(5))
	perm := rng.Perm(n)
	for _, i := range perm {
		tr.Insert(p, uint64(i)+1, uint64(i))
	}
	if err := tr.CheckInvariants(p); err != nil {
		t.Fatal(err)
	}
	if h := tr.Height(p); h < 2 {
		t.Fatalf("tree suspiciously shallow: height %d for %d keys", h, n)
	}
	got := tr.Keys(p)
	if len(got) != n {
		t.Fatalf("%d keys, want %d", len(got), n)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("keys not sorted")
	}
}

func TestDeleteDrainsWithMergesAndCollapse(t *testing.T) {
	rt := flock.New()
	p := rt.Register()
	defer p.Unregister()
	tr := New(rt)
	const n = 3000
	for k := uint64(1); k <= n; k++ {
		tr.Insert(p, k, k)
	}
	rng := rand.New(rand.NewSource(6))
	order := rng.Perm(n)
	for idx, i := range order {
		if !tr.Delete(p, uint64(i)+1) {
			t.Fatalf("delete %d failed", i+1)
		}
		if idx%500 == 0 {
			if err := tr.CheckInvariants(p); err != nil {
				t.Fatalf("after %d deletes: %v", idx+1, err)
			}
		}
	}
	if got := tr.Keys(p); len(got) != 0 {
		t.Fatalf("%d residual keys", len(got))
	}
	if h := tr.Height(p); h != 0 {
		t.Fatalf("height %d after drain, want 0 (collapsed to root leaf)", h)
	}
	if err := tr.CheckInvariants(p); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInvariantPreservation(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(17))}
	prop := func(ops []uint16) bool {
		rt := flock.New()
		p := rt.Register()
		defer p.Unregister()
		tr := New(rt)
		for _, o := range ops {
			k := uint64(o%quickKeyRange) + 1
			if o&0x8000 != 0 {
				tr.Insert(p, k, k)
			} else {
				tr.Delete(p, k)
			}
		}
		return tr.CheckInvariants(p) == nil
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

const quickKeyRange = 97 // key range for the quick test

func TestConcurrentStructuralStorm(t *testing.T) {
	for _, mode := range settest.Modes {
		t.Run(mode.Name, func(t *testing.T) {
			rt := flock.New()
			rt.SetBlocking(mode.Blocking)
			tr := New(rt)
			const workers = 8
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					p := rt.Register()
					defer p.Unregister()
					rng := rand.New(rand.NewSource(int64(w)*7 + 11))
					for i := 0; i < 1200; i++ {
						k := uint64(rng.Intn(300) + 1)
						if rng.Intn(2) == 0 {
							tr.Insert(p, k, k)
						} else {
							tr.Delete(p, k)
						}
					}
				}(w)
			}
			wg.Wait()
			p := rt.Register()
			defer p.Unregister()
			if err := tr.CheckInvariants(p); err != nil {
				t.Fatal(err)
			}
		})
	}
}
