// Package dlist implements the sorted doubly-linked list of the paper's
// Algorithm 1, using fine-grained optimistic try-locks: insert locks the
// predecessor; delete locks the predecessor and the victim; neither locks
// the successor (an operation on the successor would need the victim's
// lock, so it cannot run concurrently — §1.1). The two-pointer splice
// (lines 31-32 / 48-49) is exactly the pair of stores that is hard to make
// lock-free by hand and trivial with lock-free locks.
package dlist

import (
	"fmt"
	"math"

	flock "flock/internal/core"
	"flock/internal/structures/set"
)

// link is the paper's struct link.
type link struct {
	k, v    uint64
	next    flock.Mutable[*link]
	prev    flock.Mutable[*link]
	removed flock.UpdateOnce[bool]
	lck     flock.Lock
}

// List is a concurrent sorted doubly-linked list set. Keys must be in
// [1, MaxUint64-1].
type List struct {
	head *link
	tail *link
}

// New returns an empty list.
func New(rt *flock.Runtime) *List {
	_ = rt
	head := &link{k: 0}
	tail := &link{k: math.MaxUint64}
	head.next.Init(tail)
	tail.prev.Init(head)
	return &List{head: head, tail: tail}
}

// findLink returns the first link with key >= k (Algorithm 1, find_link).
func (l *List) findLink(p *flock.Proc, k uint64) *link {
	lnk := l.head.next.Load(p)
	for k > lnk.k {
		lnk = lnk.next.Load(p)
	}
	return lnk
}

// Find returns the value stored under k (Algorithm 1, find).
func (l *List) Find(p *flock.Proc, k uint64) (uint64, bool) {
	p.Begin()
	defer p.End()
	lnk := l.findLink(p, k)
	if lnk.k == k {
		return lnk.v, true
	}
	return 0, false
}

// Insert adds (k, v) before the first link with a larger key
// (Algorithm 1, insert).
func (l *List) Insert(p *flock.Proc, k, v uint64) bool {
	p.Begin()
	defer p.End()
	for {
		next := l.findLink(p, k)
		if next.k == k {
			return false // already there
		}
		prev := next.prev.Load(p)
		if prev.k < k && prev.lck.TryLock(p, func(hp *flock.Proc) bool {
			if prev.removed.Load(hp) || // validate
				prev.next.Load(hp) != next {
				return false
			}
			newl := flock.Allocate(hp, func() *link {
				n := &link{k: k, v: v}
				n.next.Init(next)
				n.prev.Init(prev)
				return n
			})
			prev.next.Store(hp, newl) // splice in
			next.prev.Store(hp, newl)
			return true
		}) {
			return true // success
		}
	}
}

// Delete removes k (Algorithm 1, remove).
func (l *List) Delete(p *flock.Proc, k uint64) bool {
	p.Begin()
	defer p.End()
	for {
		lnk := l.findLink(p, k)
		if lnk.k != k {
			return false // not found
		}
		prev := lnk.prev.Load(p)
		if prev.lck.TryLock(p, func(hp *flock.Proc) bool {
			return lnk.lck.TryLock(hp, func(hp2 *flock.Proc) bool {
				if prev.removed.Load(hp2) || // validate
					prev.next.Load(hp2) != lnk {
					return false
				}
				next := lnk.next.Load(hp2)
				lnk.removed.Store(hp2, true)
				prev.next.Store(hp2, next) // splice out
				next.prev.Store(hp2, prev)
				flock.Retire(hp2, lnk, nil)
				return true
			})
		}) {
			return true // success
		}
	}
}

// Scan implements set.Scanner: a forward traversal of the next chain
// from the first link with key >= lo, skipping removed links. As with
// lazylist, a removed link's next pointer is frozen (any operation on
// its successor needs its lock, whose validation fails once removed), so
// the traversal stays on (at worst slightly stale) list structure and
// the interval-semantics contract of set.Scanner holds. The body is a
// single idempotent thunk: logged loads, run-local accumulation.
func (l *List) Scan(p *flock.Proc, lo, hi uint64, limit int) []set.KV {
	lo, hi = set.ClampScanBounds(lo, hi)
	if limit == 0 {
		return nil
	}
	p.Begin()
	defer p.End()
	var out []set.KV
	curr := l.findLink(p, lo)
	for curr.k <= hi { // the tail sentinel MaxUint64 always exceeds hi
		if !curr.removed.Load(p) {
			out = append(out, set.KV{Key: curr.k, Value: curr.v})
			if limit > 0 && len(out) >= limit {
				break
			}
		}
		curr = curr.next.Load(p)
	}
	return out
}

// Keys returns the forward-traversal key snapshot (single-threaded use).
func (l *List) Keys(p *flock.Proc) []uint64 {
	var out []uint64
	for n := l.head.next.Load(p); n != l.tail; n = n.next.Load(p) {
		out = append(out, n.k)
	}
	return out
}

// CheckInvariants verifies sorted order and that backward traversal
// mirrors forward traversal (single-threaded use).
func (l *List) CheckInvariants(p *flock.Proc) error {
	var fwd []*link
	prevK := uint64(0)
	for n := l.head.next.Load(p); n != l.tail; n = n.next.Load(p) {
		if n.k <= prevK {
			return fmt.Errorf("dlist: forward order violation at %d", n.k)
		}
		prevK = n.k
		fwd = append(fwd, n)
		if len(fwd) > 1<<26 {
			return fmt.Errorf("dlist: forward traversal does not terminate")
		}
	}
	i := len(fwd) - 1
	for n := l.tail.prev.Load(p); n != l.head; n = n.prev.Load(p) {
		if i < 0 {
			return fmt.Errorf("dlist: backward traversal longer than forward")
		}
		if n != fwd[i] {
			return fmt.Errorf("dlist: prev chain diverges at key %d", n.k)
		}
		i--
	}
	if i >= 0 {
		return fmt.Errorf("dlist: backward traversal shorter than forward")
	}
	return nil
}
