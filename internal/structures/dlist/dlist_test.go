package dlist

import (
	"math/rand"
	"sync"
	"testing"

	flock "flock/internal/core"
	"flock/internal/structures/set"
	"flock/internal/structures/settest"
)

func factory(rt *flock.Runtime) set.Set { return New(rt) }

func TestSuite(t *testing.T) { settest.Run(t, factory) }

func TestPrevPointersMirrorNext(t *testing.T) {
	rt := flock.New()
	p := rt.Register()
	defer p.Unregister()
	l := New(rt)
	for _, k := range []uint64{4, 2, 9, 1, 7} {
		l.Insert(p, k, k)
	}
	if err := l.CheckInvariants(p); err != nil {
		t.Fatal(err)
	}
	l.Delete(p, 2)
	l.Delete(p, 9)
	if err := l.CheckInvariants(p); err != nil {
		t.Fatal(err)
	}
	keys := l.Keys(p)
	want := []uint64{1, 4, 7}
	if len(keys) != len(want) {
		t.Fatalf("keys = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v, want %v", keys, want)
		}
	}
}

// TestBidirectionalIntegrityUnderContention runs concurrent updates on a
// hot range in both modes and then checks that the prev chain exactly
// mirrors the next chain — the property that needs lines 48-49 (and 31-32)
// of Algorithm 1 to execute atomically.
func TestBidirectionalIntegrityUnderContention(t *testing.T) {
	for _, mode := range settest.Modes {
		t.Run(mode.Name, func(t *testing.T) {
			rt := flock.New()
			rt.SetBlocking(mode.Blocking)
			l := New(rt)
			const workers = 8
			const opsPer = 1200
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					p := rt.Register()
					defer p.Unregister()
					rng := rand.New(rand.NewSource(int64(w)*37 + 1))
					for i := 0; i < opsPer; i++ {
						k := uint64(rng.Intn(16) + 1)
						if rng.Intn(2) == 0 {
							l.Insert(p, k, uint64(w))
						} else {
							l.Delete(p, k)
						}
					}
				}(w)
			}
			wg.Wait()
			p := rt.Register()
			defer p.Unregister()
			if err := l.CheckInvariants(p); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestInsertAtBothEnds(t *testing.T) {
	rt := flock.New()
	p := rt.Register()
	defer p.Unregister()
	l := New(rt)
	l.Insert(p, 100, 1)
	l.Insert(p, 1, 2)            // new head
	l.Insert(p, ^uint64(0)-1, 3) // new tail
	if err := l.CheckInvariants(p); err != nil {
		t.Fatal(err)
	}
	keys := l.Keys(p)
	if len(keys) != 3 || keys[0] != 1 || keys[2] != ^uint64(0)-1 {
		t.Fatalf("keys = %v", keys)
	}
}

func TestDeleteOnlyElement(t *testing.T) {
	rt := flock.New()
	p := rt.Register()
	defer p.Unregister()
	l := New(rt)
	l.Insert(p, 5, 50)
	if !l.Delete(p, 5) {
		t.Fatalf("delete failed")
	}
	if len(l.Keys(p)) != 0 {
		t.Fatalf("list not empty")
	}
	if err := l.CheckInvariants(p); err != nil {
		t.Fatal(err)
	}
}
