package arttree

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	flock "flock/internal/core"
	"flock/internal/structures/set"
	"flock/internal/structures/settest"
)

func factory(rt *flock.Runtime) set.Set { return New(rt) }

func TestSuite(t *testing.T) { settest.Run(t, factory) }

func TestNodeGrowthThroughAllKinds(t *testing.T) {
	rt := flock.New()
	p := rt.Register()
	defer p.Unregister()
	tr := New(rt)
	// Keys 0x??00...: all branch at the same top byte, forcing one node
	// to grow 4 -> 16 -> 48 -> 256.
	for i := uint64(0); i < 256; i++ {
		k := i<<56 | 1
		if !tr.Insert(p, k, i) {
			t.Fatalf("insert %x", k)
		}
	}
	if err := tr.CheckInvariants(p); err != nil {
		t.Fatal(err)
	}
	root := tr.root.Load(p)
	if root.kind != k256 {
		t.Fatalf("root kind %d, want k256 after 256 branches", root.kind)
	}
	for i := uint64(0); i < 256; i++ {
		k := i<<56 | 1
		if v, ok := tr.Find(p, k); !ok || v != i {
			t.Fatalf("Find(%x) = (%d,%v)", k, v, ok)
		}
	}
}

func TestNodeShrinkThroughAllKinds(t *testing.T) {
	rt := flock.New()
	p := rt.Register()
	defer p.Unregister()
	tr := New(rt)
	for i := uint64(0); i < 256; i++ {
		tr.Insert(p, i<<56|1, i)
	}
	// Delete down through every shrink threshold.
	for i := uint64(2); i < 256; i++ {
		if !tr.Delete(p, i<<56|1) {
			t.Fatalf("delete %x", i<<56|1)
		}
		if i%16 == 0 {
			if err := tr.CheckInvariants(p); err != nil {
				t.Fatalf("after deleting %d: %v", i, err)
			}
		}
	}
	// Two keys remain; the node is a k4.
	root := tr.root.Load(p)
	if root.kind != k4 {
		t.Fatalf("root kind %d, want k4 with 2 children", root.kind)
	}
	// Deleting one of the two compresses the root to a leaf.
	if !tr.Delete(p, 0<<56|1) {
		t.Fatalf("penultimate delete failed")
	}
	root = tr.root.Load(p)
	if root == nil || !root.isLeaf() {
		t.Fatalf("root should be the surviving leaf")
	}
	if !tr.Delete(p, 1<<56|1) {
		t.Fatalf("final delete failed")
	}
	if tr.root.Load(p) != nil {
		t.Fatalf("tree not empty after final delete")
	}
}

func TestPathCompressionSplitAndMerge(t *testing.T) {
	rt := flock.New()
	p := rt.Register()
	defer p.Unregister()
	tr := New(rt)
	// Two keys sharing 6 bytes: deep shared prefix, one Node4.
	a := uint64(0x1122334455660001)
	b := uint64(0x1122334455660002)
	tr.Insert(p, a, 1)
	tr.Insert(p, b, 2)
	if err := tr.CheckInvariants(p); err != nil {
		t.Fatal(err)
	}
	root := tr.root.Load(p)
	if root.isLeaf() || len(root.prefix) != 7 {
		t.Fatalf("expected 7-byte compressed prefix, got %v", root.prefix)
	}
	// A key diverging at byte 2 splits the prefix.
	c := uint64(0x11FF334455660003)
	tr.Insert(p, c, 3)
	if err := tr.CheckInvariants(p); err != nil {
		t.Fatal(err)
	}
	root = tr.root.Load(p)
	if len(root.prefix) != 1 {
		t.Fatalf("expected 1-byte split prefix, got %v", root.prefix)
	}
	for _, kv := range []struct{ k, v uint64 }{{a, 1}, {b, 2}, {c, 3}} {
		if v, ok := tr.Find(p, kv.k); !ok || v != kv.v {
			t.Fatalf("Find(%x) = (%d,%v), want %d", kv.k, v, ok, kv.v)
		}
	}
	// Deleting the diverging key must merge the prefix back.
	if !tr.Delete(p, c) {
		t.Fatalf("delete diverging key")
	}
	if err := tr.CheckInvariants(p); err != nil {
		t.Fatal(err)
	}
	root = tr.root.Load(p)
	if len(root.prefix) != 7 {
		t.Fatalf("prefix not re-merged: %v", root.prefix)
	}
}

func TestSparseHashedKeys(t *testing.T) {
	// The paper sparsifies ART keys by hashing; emulate that profile.
	rt := flock.New()
	p := rt.Register()
	defer p.Unregister()
	tr := New(rt)
	rng := rand.New(rand.NewSource(31))
	keys := map[uint64]uint64{}
	for len(keys) < 2000 {
		k := rng.Uint64()
		if _, dup := keys[k]; dup || k == 0 {
			continue
		}
		keys[k] = uint64(len(keys))
		if !tr.Insert(p, k, keys[k]) {
			t.Fatalf("insert %x", k)
		}
	}
	if err := tr.CheckInvariants(p); err != nil {
		t.Fatal(err)
	}
	for k, v := range keys {
		if got, ok := tr.Find(p, k); !ok || got != v {
			t.Fatalf("Find(%x) = (%d,%v), want %d", k, got, ok, v)
		}
	}
	got := tr.Keys(p)
	if len(got) != len(keys) {
		t.Fatalf("Keys() returned %d, want %d", len(got), len(keys))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("radix order traversal not sorted")
	}
	for k := range keys {
		if !tr.Delete(p, k) {
			t.Fatalf("delete %x", k)
		}
	}
	if tr.root.Load(p) != nil {
		t.Fatalf("tree not empty")
	}
}

func TestDenseSequentialKeys(t *testing.T) {
	// Dense keys exercise deep structure and heavy path compression.
	rt := flock.New()
	p := rt.Register()
	defer p.Unregister()
	tr := New(rt)
	const n = 3000
	for k := uint64(1); k <= n; k++ {
		if !tr.Insert(p, k, k*3) {
			t.Fatalf("insert %d", k)
		}
	}
	if err := tr.CheckInvariants(p); err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= n; k++ {
		if v, ok := tr.Find(p, k); !ok || v != k*3 {
			t.Fatalf("Find(%d)=(%d,%v)", k, v, ok)
		}
	}
	for k := uint64(2); k <= n; k += 2 {
		if !tr.Delete(p, k) {
			t.Fatalf("delete %d", k)
		}
	}
	if err := tr.CheckInvariants(p); err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= n; k++ {
		_, ok := tr.Find(p, k)
		if want := k%2 == 1; ok != want {
			t.Fatalf("Find(%d) present=%v want %v", k, ok, want)
		}
	}
}

func TestConcurrentGrowShrinkStorm(t *testing.T) {
	for _, mode := range settest.Modes {
		t.Run(mode.Name, func(t *testing.T) {
			rt := flock.New()
			rt.SetBlocking(mode.Blocking)
			tr := New(rt)
			const workers = 8
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					p := rt.Register()
					defer p.Unregister()
					rng := rand.New(rand.NewSource(int64(w)*17 + 29))
					for i := 0; i < 1200; i++ {
						// Cluster keys on a shared top byte so node
						// grow/shrink and prefix ops collide.
						k := uint64(rng.Intn(6))<<56 | uint64(rng.Intn(40)+1)
						if rng.Intn(2) == 0 {
							tr.Insert(p, k, k)
						} else {
							tr.Delete(p, k)
						}
					}
				}(w)
			}
			wg.Wait()
			p := rt.Register()
			defer p.Unregister()
			if err := tr.CheckInvariants(p); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFindZeroAlloc pins the vectorized read path's allocation budget in
// both runtime modes: Find on a tree whose root is a full Node16 (the
// packed-key getChild path) must not allocate — the stack copy of the
// packed key image handed to simd.Match16 must not escape.
func TestFindZeroAlloc(t *testing.T) {
	for _, m := range settest.Modes {
		t.Run(m.Name, func(t *testing.T) {
			rt := flock.New()
			rt.SetBlocking(m.Blocking)
			p := rt.Register()
			defer p.Unregister()
			tr := New(rt)
			for b := uint64(0); b < 16; b++ {
				for j := uint64(1); j <= 4; j++ {
					if !tr.Insert(p, b<<56|j, j) {
						t.Fatalf("prefill insert failed")
					}
				}
			}
			var sink uint64
			if n := testing.AllocsPerRun(1000, func() {
				v, ok := tr.Find(p, 9<<56|2)
				if !ok {
					t.Fatal("key missing")
				}
				sink += v
			}); n != 0 {
				t.Errorf("Find: %v allocs/op, want 0", n)
			}
			_ = sink
		})
	}
}
