// Package arttree implements a concurrent Adaptive Radix Tree (ART, Leis
// et al. [37]) over 8-byte big-endian keys, protected by fine-grained
// optimistic try-locks — per the paper, the first lock-free ART when run
// in lock-free mode.
//
// Design notes for concurrency:
//
//   - Node4/Node16 store each (key byte, child) pair in a single
//     Mutable slot, so lock-free readers never see a torn pair. Node48
//     uses an indirection array where index 0 means empty (zero-value
//     friendly) and the child is published before the index. Node256
//     indexes children directly.
//   - Node4/Node16 additionally maintain a packed 16-byte key image +
//     occupancy mask (one Mutable box, so it is updated atomically and
//     idempotently under helping) that readers probe with one vector
//     compare (internal/simd) to find candidate lanes; the slot load
//     that confirms a candidate remains the linearization point. The
//     publication protocol (packed byte before slot on insert, slot
//     before packed byte on remove) makes a packed miss authoritative
//     for absence: see DESIGN.md S15.
//   - Prefixes and leaf contents are immutable: any change of prefix
//     (path compression on delete, prefix split on insert) or node kind
//     (grow/shrink) builds a replacement node under the locks of the
//     parent and the node (and the surviving child, when its slots must
//     be copied), marks the old node removed, and swings the parent slot.
//   - Validation inside critical sections relies on the invariant that a
//     non-removed node is reachable by the same byte path for its whole
//     lifetime: replacements preserve path byte strings.
package arttree

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	flock "flock/internal/core"
	"flock/internal/simd"
)

// Node kinds.
const (
	kLeaf = iota
	k4
	k16
	k48
	k256
)

func capOf(kind uint8) int {
	switch kind {
	case k4:
		return 4
	case k16:
		return 16
	case k48:
		return 48
	default:
		return 256
	}
}

func kindName(kind uint8) string {
	switch kind {
	case kLeaf:
		return "leaf"
	case k4:
		return "node4"
	case k16:
		return "node16"
	case k48:
		return "node48"
	default:
		return "node256"
	}
}

// packed16 is the vector-searchable image of a Node4/Node16: lane i of
// the 16-byte key array holds slots[i]'s key byte, and bit i of occ
// says the lane is live. It lives in a single Mutable box so updates
// go through the logged CAS machinery — helpers replaying a thunk
// cannot tear it or clobber it with stale halves — and a reader's one
// Load yields a mutually consistent (keys, occ) snapshot. Lanes with a
// clear occ bit may hold stale bytes; masking keeps them out.
type packed16 struct {
	lo, hi uint64 // key bytes, lane i at byte i of the little-endian image
	occ    uint16 // lane-occupancy bitmask
}

// keyArray splits the two words into the array form simd.Match16 takes.
func (pk packed16) keyArray() [16]byte {
	var a [16]byte
	binary.LittleEndian.PutUint64(a[0:8], pk.lo)
	binary.LittleEndian.PutUint64(a[8:16], pk.hi)
	return a
}

// with returns pk with lane i holding key byte b and marked live.
func (pk packed16) with(i int, b byte) packed16 {
	sh := uint(i&7) * 8
	if i < 8 {
		pk.lo = pk.lo&^(uint64(0xff)<<sh) | uint64(b)<<sh
	} else {
		pk.hi = pk.hi&^(uint64(0xff)<<sh) | uint64(b)<<sh
	}
	pk.occ |= 1 << uint(i)
	return pk
}

// without returns pk with lane i retracted (the stale byte stays; the
// cleared occ bit is what excludes it from searches).
func (pk packed16) without(i int) packed16 {
	pk.occ &^= 1 << uint(i)
	return pk
}

// slotPair is the atomic (key byte, child) unit for Node4/Node16.
type slotPair struct {
	b     byte
	child *artNode
}

// artNode is a leaf or an inner node; which arrays are used depends on
// kind. prefix, k and v are constants.
type artNode struct {
	kind   uint8
	k, v   uint64 // leaves
	prefix []byte // inner: compressed path bytes

	slots    []flock.Mutable[slotPair] // k4, k16
	pk       flock.Mutable[packed16]   // k4, k16: packed key image over slots
	idx      []flock.Mutable[uint8]    // k48: byte -> child index+1 (0 = empty)
	children []flock.Mutable[*artNode] // k48 (48), k256 (256)

	count   flock.Mutable[int] // inner: number of children
	removed flock.UpdateOnce[bool]
	lck     flock.Lock
}

func (n *artNode) isLeaf() bool { return n.kind == kLeaf }

// Tree is a concurrent ART set. Any uint64 key except 0 is allowed
// (0 is permitted too, in fact; the set package's [1, MaxUint64-2] bound
// is honored by callers for uniformity).
type Tree struct {
	root    flock.Mutable[*artNode]
	rootLck flock.Lock
}

// New returns an empty tree.
func New(rt *flock.Runtime) *Tree {
	_ = rt
	return &Tree{}
}

func keyBytes(k uint64) [8]byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], k)
	return b
}

// commonLen is the length of the longest common prefix of a and b —
// every descent mismatch check and prefix-split computation routes
// through the simd package's Mismatch (vectorized on amd64).
func commonLen(a, b []byte) int { return simd.Mismatch(a, b) }

func newLeaf(k, v uint64) *artNode { return &artNode{kind: kLeaf, k: k, v: v} }

func newInner(kind uint8, prefix []byte) *artNode {
	n := &artNode{kind: kind, prefix: prefix}
	switch kind {
	case k4, k16:
		n.slots = make([]flock.Mutable[slotPair], capOf(kind))
	case k48:
		n.idx = make([]flock.Mutable[uint8], 256)
		n.children = make([]flock.Mutable[*artNode], 48)
	case k256:
		n.children = make([]flock.Mutable[*artNode], 256)
	}
	return n
}

// getChild returns the child for byte b (nil if absent). Works both
// outside locks (direct loads) and inside thunks (committed loads).
func (n *artNode) getChild(p *flock.Proc, b byte) *artNode {
	switch n.kind {
	case k4, k16:
		// One packed load + one vector compare yields the candidate
		// lanes; each candidate is confirmed by its authoritative slot
		// load (stale packed lanes fail the confirm). A packed miss is
		// authoritative for absence: a live slot's lane is always in
		// the mask (publication protocol, DESIGN.md S15).
		pk := n.pk.Load(p)
		keys := pk.keyArray()
		for m := simd.Match16(&keys, b) & pk.occ; m != 0; m &= m - 1 {
			sv := n.slots[bits.TrailingZeros16(m)].Load(p)
			if sv.child != nil && sv.b == b {
				return sv.child
			}
		}
		return nil
	case k48:
		i := n.idx[b].Load(p)
		if i == 0 {
			return nil
		}
		return n.children[i-1].Load(p)
	default:
		return n.children[b].Load(p)
	}
}

// setChild inserts a new (b, c) pair; the caller holds n's lock and has
// verified b is absent and n is not full.
func (n *artNode) setChild(hp *flock.Proc, b byte, c *artNode) {
	switch n.kind {
	case k4, k16:
		pk := n.pk.Load(hp)
		free := ^pk.occ & uint16(1<<len(n.slots)-1)
		if free == 0 {
			panic("arttree: setChild on full " + kindName(n.kind))
		}
		i := bits.TrailingZeros16(free)
		n.pk.Store(hp, pk.with(i, b))                  // publish the packed byte first …
		n.slots[i].Store(hp, slotPair{b: b, child: c}) // … then the authoritative slot
	case k48:
		for i := range n.children {
			if n.children[i].Load(hp) == nil {
				n.children[i].Store(hp, c)     // publish child first
				n.idx[b].Store(hp, uint8(i)+1) // then the index
				return
			}
		}
		panic("arttree: setChild on full " + kindName(n.kind))
	default:
		n.children[b].Store(hp, c)
	}
}

// replaceChild swings the existing slot for byte b to c. Caller holds
// n's lock; b must be present.
func (n *artNode) replaceChild(hp *flock.Proc, b byte, c *artNode) {
	switch n.kind {
	case k4, k16:
		// Slot-only update: the key byte is unchanged, so the packed
		// image needs no maintenance.
		pk := n.pk.Load(hp)
		keys := pk.keyArray()
		for m := simd.Match16(&keys, b) & pk.occ; m != 0; m &= m - 1 {
			i := bits.TrailingZeros16(m)
			sv := n.slots[i].Load(hp)
			if sv.child != nil && sv.b == b {
				n.slots[i].Store(hp, slotPair{b: b, child: c})
				return
			}
		}
		panic("arttree: replaceChild missing byte in " + kindName(n.kind))
	case k48:
		i := n.idx[b].Load(hp)
		n.children[i-1].Store(hp, c)
	default:
		n.children[b].Store(hp, c)
	}
}

// removeChild clears the slot for byte b. Caller holds n's lock.
func (n *artNode) removeChild(hp *flock.Proc, b byte) {
	switch n.kind {
	case k4, k16:
		pk := n.pk.Load(hp)
		keys := pk.keyArray()
		for m := simd.Match16(&keys, b) & pk.occ; m != 0; m &= m - 1 {
			i := bits.TrailingZeros16(m)
			sv := n.slots[i].Load(hp)
			if sv.child != nil && sv.b == b {
				n.slots[i].Store(hp, slotPair{}) // clear the slot first …
				n.pk.Store(hp, pk.without(i))    // … then retract the packed lane
				return
			}
		}
	case k48:
		i := n.idx[b].Load(hp)
		if i != 0 {
			n.idx[b].Store(hp, 0) // unpublish the index first
			n.children[i-1].Store(hp, nil)
		}
	default:
		n.children[b].Store(hp, nil)
	}
}

// pair is a collected (byte, child) entry.
type pair struct {
	b byte
	c *artNode
}

// collectChildren snapshots all present children in byte order. Caller
// holds n's lock; iteration counts are fixed so replays stay aligned.
func (n *artNode) collectChildren(hp *flock.Proc) []pair {
	var out []pair
	switch n.kind {
	case k4, k16:
		for i := range n.slots {
			sv := n.slots[i].Load(hp)
			if sv.child != nil {
				out = append(out, pair{sv.b, sv.child})
			}
		}
		// insertion order is arbitrary: normalize by byte
		for i := 1; i < len(out); i++ {
			for j := i; j > 0 && out[j-1].b > out[j].b; j-- {
				out[j-1], out[j] = out[j], out[j-1]
			}
		}
	case k48:
		for b := 0; b < 256; b++ {
			i := n.idx[b].Load(hp)
			if i != 0 {
				if c := n.children[i-1].Load(hp); c != nil {
					out = append(out, pair{byte(b), c})
				}
			}
		}
	default:
		for b := 0; b < 256; b++ {
			if c := n.children[b].Load(hp); c != nil {
				out = append(out, pair{byte(b), c})
			}
		}
	}
	return out
}

// buildInner constructs a fresh inner node of minimal kind holding pairs.
func buildInner(hp *flock.Proc, prefix []byte, pairs []pair) *artNode {
	kind := uint8(k4)
	switch {
	case len(pairs) > 48:
		kind = k256
	case len(pairs) > 16:
		kind = k48
	case len(pairs) > 4:
		kind = k16
	}
	return flock.Allocate(hp, func() *artNode {
		n := newInner(kind, prefix)
		switch kind {
		case k4, k16:
			var pk packed16
			for i, pr := range pairs {
				n.slots[i].Init(slotPair{b: pr.b, child: pr.c})
				pk = pk.with(i, pr.b)
			}
			n.pk.Init(pk)
		case k48:
			for i, pr := range pairs {
				n.children[i].Init(pr.c)
				n.idx[pr.b].Init(uint8(i) + 1)
			}
		default:
			for _, pr := range pairs {
				n.children[pr.b].Init(pr.c)
			}
		}
		n.count.Init(len(pairs))
		return n
	})
}

// search outcome statuses.
const (
	stLeaf     = iota // cur is a leaf (key may or may not match)
	stNoChild         // branch byte absent in cur (an inner node)
	stEmpty           // tree is empty
	stMismatch        // cur's prefix diverges from the key
)

// path captures the traversal state needed by updates.
type path struct {
	gpar  *artNode // parent of par (nil: par hangs off the root slot)
	gparB byte     // branch byte in gpar leading to par
	par   *artNode // parent of cur (nil: cur hangs off the root slot)
	parB  byte     // branch byte in par leading to cur
	cur   *artNode
	depth int // bytes consumed before cur's prefix
	st    int
}

func (t *Tree) search(p *flock.Proc, kb *[8]byte) path {
	var pa path
	pa.cur = t.root.Load(p)
	if pa.cur == nil {
		pa.st = stEmpty
		return pa
	}
	depth := 0
	for {
		cur := pa.cur
		if cur.isLeaf() {
			pa.st = stLeaf
			pa.depth = depth
			return pa
		}
		if commonLen(cur.prefix, kb[depth:]) != len(cur.prefix) {
			pa.st = stMismatch
			pa.depth = depth
			return pa
		}
		depth += len(cur.prefix)
		b := kb[depth]
		next := cur.getChild(p, b)
		if next == nil {
			pa.st = stNoChild
			pa.depth = depth
			// Reuse parB to carry the missing branch byte's owner: cur.
			pa.gpar, pa.gparB = pa.par, pa.parB
			pa.par, pa.parB = cur, b
			pa.cur = nil
			return pa
		}
		pa.gpar, pa.gparB = pa.par, pa.parB
		pa.par, pa.parB = cur, b
		pa.cur = next
		depth++
	}
}

// Find reports the value stored under k.
func (t *Tree) Find(p *flock.Proc, k uint64) (uint64, bool) {
	p.Begin()
	defer p.End()
	kb := keyBytes(k)
	pa := t.search(p, &kb)
	if pa.st == stLeaf && pa.cur.k == k {
		return pa.cur.v, true
	}
	return 0, false
}

// lockSlotOwner runs f under the lock guarding the slot that holds node
// `n` (its parent's lock, or the tree's root lock), after validating the
// linkage. f runs with the slot still pointing at n and the owner alive.
func (t *Tree) lockSlotOwner(p *flock.Proc, par *artNode, parB byte, n *artNode, f func(hp *flock.Proc, store func(hp2 *flock.Proc, repl *artNode)) bool) bool {
	if par == nil {
		return t.rootLck.TryLock(p, func(hp *flock.Proc) bool {
			if t.root.Load(hp) != n {
				return false
			}
			return f(hp, func(hp2 *flock.Proc, repl *artNode) { t.root.Store(hp2, repl) })
		})
	}
	return par.lck.TryLock(p, func(hp *flock.Proc) bool {
		if par.removed.Load(hp) || par.getChild(hp, parB) != n {
			return false
		}
		return f(hp, func(hp2 *flock.Proc, repl *artNode) { par.replaceChild(hp2, parB, repl) })
	})
}

// Insert adds (k, v); false if already present.
func (t *Tree) Insert(p *flock.Proc, k, v uint64) bool {
	p.Begin()
	defer p.End()
	kb := keyBytes(k)
	for {
		pa := t.search(p, &kb)
		switch pa.st {
		case stEmpty:
			if t.rootLck.TryLock(p, func(hp *flock.Proc) bool {
				if t.root.Load(hp) != nil {
					return false
				}
				t.root.Store(hp, flock.Allocate(hp, func() *artNode { return newLeaf(k, v) }))
				return true
			}) {
				return true
			}

		case stLeaf:
			leaf := pa.cur
			if leaf.k == k {
				return false // already present
			}
			// Split: replace the leaf with a Node4 over the common prefix.
			depth := pa.depth
			if t.lockSlotOwner(p, pa.par, pa.parB, leaf, func(hp *flock.Proc, store func(*flock.Proc, *artNode)) bool {
				okb := keyBytes(leaf.k)
				cp := commonLen(okb[depth:], kb[depth:])
				nl := flock.Allocate(hp, func() *artNode { return newLeaf(k, v) })
				n4 := buildInner(hp, kb[depth:depth+cp],
					sortedPairs(pair{okb[depth+cp], leaf}, pair{kb[depth+cp], nl}))
				store(hp, n4)
				return true
			}) {
				return true
			}

		case stNoChild:
			n, b := pa.par, pa.parB
			if t.lockSlotOwner(p, pa.gpar, pa.gparB, n, func(hp *flock.Proc, store func(*flock.Proc, *artNode)) bool {
				return n.lck.TryLock(hp, func(hp2 *flock.Proc) bool {
					if n.getChild(hp2, b) != nil {
						return false // appeared meanwhile; retry
					}
					cnt := n.count.Load(hp2)
					nl := flock.Allocate(hp2, func() *artNode { return newLeaf(k, v) })
					if cnt < capOf(n.kind) {
						n.setChild(hp2, b, nl)
						n.count.Store(hp2, cnt+1)
						return true
					}
					// Grow to the next kind. The count said full; assert
					// the occupancy agrees before rebuilding wider.
					pairs := n.collectChildren(hp2)
					if len(pairs) != capOf(n.kind) {
						panic(fmt.Sprintf("arttree: growing %s with %d/%d children",
							kindName(n.kind), len(pairs), capOf(n.kind)))
					}
					pairs = append(pairs, pair{b, nl})
					grown := buildInner(hp2, n.prefix, pairs)
					n.removed.Store(hp2, true)
					store(hp2, grown)
					flock.Retire(hp2, n, nil)
					return true
				})
			}) {
				return true
			}

		case stMismatch:
			n := pa.cur
			depth := pa.depth
			if t.lockSlotOwner(p, pa.par, pa.parB, n, func(hp *flock.Proc, store func(*flock.Proc, *artNode)) bool {
				return n.lck.TryLock(hp, func(hp2 *flock.Proc) bool {
					cp := commonLen(n.prefix, kb[depth:])
					// Clone n with the tail of its prefix.
					pairs := n.collectChildren(hp2)
					clone := buildInner(hp2, n.prefix[cp+1:], pairs)
					nl := flock.Allocate(hp2, func() *artNode { return newLeaf(k, v) })
					split := buildInner(hp2, n.prefix[:cp],
						sortedPairs(pair{n.prefix[cp], clone}, pair{kb[depth+cp], nl}))
					n.removed.Store(hp2, true)
					store(hp2, split)
					flock.Retire(hp2, n, nil)
					return true
				})
			}) {
				return true
			}
		}
	}
}

func sortedPairs(a, b pair) []pair {
	if a.b > b.b {
		a, b = b, a
	}
	return []pair{a, b}
}

// shrinkThreshold returns the occupancy at which a node collapses to a
// smaller kind (standard ART hysteresis).
func shrinkThreshold(kind uint8) int {
	switch kind {
	case k16:
		return 3
	case k48:
		return 12
	case k256:
		return 40
	default:
		return 1 // k4 only compresses away at a single child
	}
}

// Delete removes k; false if absent.
func (t *Tree) Delete(p *flock.Proc, k uint64) bool {
	p.Begin()
	defer p.End()
	kb := keyBytes(k)
	for {
		pa := t.search(p, &kb)
		if pa.st != stLeaf || pa.cur.k != k {
			return false
		}
		leaf := pa.cur
		if pa.par == nil {
			// Root is the leaf itself.
			if t.rootLck.TryLock(p, func(hp *flock.Proc) bool {
				if t.root.Load(hp) != leaf {
					return false
				}
				t.root.Store(hp, nil)
				flock.Retire(hp, leaf, nil)
				return true
			}) {
				return true
			}
			continue
		}
		n, b := pa.par, pa.parB
		if t.lockSlotOwner(p, pa.gpar, pa.gparB, n, func(hp *flock.Proc, store func(*flock.Proc, *artNode)) bool {
			return n.lck.TryLock(hp, func(hp2 *flock.Proc) bool {
				if n.getChild(hp2, b) != leaf {
					return false
				}
				cnt := n.count.Load(hp2)
				if cnt > 2 {
					if cnt-1 <= shrinkThreshold(n.kind) {
						// Rebuild as a smaller kind without b.
						pairs := without(n.collectChildren(hp2), b)
						small := buildInner(hp2, n.prefix, pairs)
						n.removed.Store(hp2, true)
						store(hp2, small)
						flock.Retire(hp2, n, nil)
					} else {
						n.removeChild(hp2, b)
						n.count.Store(hp2, cnt-1)
					}
					flock.Retire(hp2, leaf, nil)
					return true
				}
				// cnt == 2: path-compress n away, promoting the sibling.
				pairs := without(n.collectChildren(hp2), b)
				sib := pairs[0]
				if sib.c.isLeaf() {
					n.removed.Store(hp2, true)
					store(hp2, sib.c)
					flock.Retire(hp2, n, nil)
					flock.Retire(hp2, leaf, nil)
					return true
				}
				// Inner sibling: clone it with the merged prefix.
				return sib.c.lck.TryLock(hp2, func(hp3 *flock.Proc) bool {
					merged := make([]byte, 0, len(n.prefix)+1+len(sib.c.prefix))
					merged = append(append(append(merged, n.prefix...), sib.b), sib.c.prefix...)
					clone := buildInner(hp3, merged, sib.c.collectChildren(hp3))
					n.removed.Store(hp3, true)
					sib.c.removed.Store(hp3, true)
					store(hp3, clone)
					flock.Retire(hp3, n, nil)
					flock.Retire(hp3, sib.c, nil)
					flock.Retire(hp3, leaf, nil)
					return true
				})
			})
		}) {
			return true
		}
	}
}

func without(pairs []pair, b byte) []pair {
	out := pairs[:0]
	for _, pr := range pairs {
		if pr.b != b {
			out = append(out, pr)
		}
	}
	return out
}

// Keys returns the sorted key snapshot (single-threaded use).
func (t *Tree) Keys(p *flock.Proc) []uint64 {
	var out []uint64
	var walk func(n *artNode)
	walk = func(n *artNode) {
		if n == nil {
			return
		}
		if n.isLeaf() {
			out = append(out, n.k)
			return
		}
		for _, pr := range t.allChildren(p, n) {
			walk(pr.c)
		}
	}
	walk(t.root.Load(p))
	return out
}

// allChildren is collectChildren without a lock (single-threaded use).
func (t *Tree) allChildren(p *flock.Proc, n *artNode) []pair {
	return n.collectChildren(p)
}

// CheckInvariants verifies, single-threaded: every leaf's key bytes equal
// the path bytes leading to it; counts match occupancy; inner nodes have
// at least 2 children; prefixes fit in the 8-byte budget.
func (t *Tree) CheckInvariants(p *flock.Proc) error {
	var walk func(n *artNode, acc []byte) error
	walk = func(n *artNode, acc []byte) error {
		if n.isLeaf() {
			kb := keyBytes(n.k)
			if commonLen(kb[:], acc) != len(acc) {
				return fmt.Errorf("arttree: leaf %d under path %v", n.k, acc)
			}
			return nil
		}
		acc = append(acc, n.prefix...)
		if len(acc) >= 8 {
			return fmt.Errorf("arttree: path bytes overflow at prefix %v", acc)
		}
		pairs := n.collectChildren(p)
		if got := n.count.Load(p); got != len(pairs) {
			return fmt.Errorf("arttree: count %d != occupancy %d", got, len(pairs))
		}
		if len(pairs) < 2 {
			return fmt.Errorf("arttree: inner node with %d children", len(pairs))
		}
		if len(pairs) > capOf(n.kind) {
			return fmt.Errorf("arttree: occupancy %d over capacity %d", len(pairs), capOf(n.kind))
		}
		if n.kind == k4 || n.kind == k16 {
			// Quiesced, the packed key image must mirror the slots
			// exactly: matching bytes on live lanes, occ == occupancy.
			pk := n.pk.Load(p)
			keys := pk.keyArray()
			var occ uint16
			for i := range n.slots {
				sv := n.slots[i].Load(p)
				if sv.child == nil {
					continue
				}
				occ |= 1 << i
				if pk.occ&(1<<i) == 0 {
					return fmt.Errorf("arttree: %s lane %d live but packed bit clear", kindName(n.kind), i)
				}
				if keys[i] != sv.b {
					return fmt.Errorf("arttree: %s lane %d packed byte %#x != slot byte %#x",
						kindName(n.kind), i, keys[i], sv.b)
				}
			}
			if pk.occ != occ {
				return fmt.Errorf("arttree: %s packed occ %#x != slot occupancy %#x", kindName(n.kind), pk.occ, occ)
			}
		}
		for _, pr := range pairs {
			if err := walk(pr.c, append(acc, pr.b)); err != nil {
				return err
			}
		}
		return nil
	}
	root := t.root.Load(p)
	if root == nil {
		return nil
	}
	return walk(root, nil)
}
