package leaftree

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	flock "flock/internal/core"
	"flock/internal/structures/set"
	"flock/internal/structures/settest"
)

func factory(rt *flock.Runtime) set.Set { return New(rt) }

func TestSuite(t *testing.T) { settest.Run(t, factory) }

func TestSortedTraversal(t *testing.T) {
	rt := flock.New()
	p := rt.Register()
	defer p.Unregister()
	tr := New(rt)
	ks := []uint64{50, 20, 80, 10, 30, 70, 90, 25, 35}
	for _, k := range ks {
		if !tr.Insert(p, k, k*2) {
			t.Fatalf("insert %d", k)
		}
	}
	got := tr.Keys(p)
	want := append([]uint64(nil), ks...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("keys = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("keys = %v, want %v", got, want)
		}
	}
	if err := tr.CheckInvariants(p); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteToEmptyAndRebuild(t *testing.T) {
	rt := flock.New()
	p := rt.Register()
	defer p.Unregister()
	tr := New(rt)
	for k := uint64(1); k <= 20; k++ {
		tr.Insert(p, k, k)
	}
	for k := uint64(1); k <= 20; k++ {
		if !tr.Delete(p, k) {
			t.Fatalf("delete %d", k)
		}
	}
	if n := len(tr.Keys(p)); n != 0 {
		t.Fatalf("tree not empty: %d keys", n)
	}
	if err := tr.CheckInvariants(p); err != nil {
		t.Fatal(err)
	}
	// Sentinel structure must still support inserts.
	for k := uint64(1); k <= 20; k++ {
		if !tr.Insert(p, k, k+1) {
			t.Fatalf("reinsert %d", k)
		}
	}
	if err := tr.CheckInvariants(p); err != nil {
		t.Fatal(err)
	}
}

func TestAscendingInsertDegenerates(t *testing.T) {
	// Unbalanced tree: ascending inserts make a right spine. Checks the
	// structure stays correct (if pathological) — the balanced variants
	// exist for the performance side.
	rt := flock.New()
	p := rt.Register()
	defer p.Unregister()
	tr := New(rt)
	const n = 200
	for k := uint64(1); k <= n; k++ {
		tr.Insert(p, k, k)
	}
	if h := tr.Height(p); h < n/2 {
		t.Logf("height %d for %d ascending inserts (expected linear-ish)", h, n)
	}
	if err := tr.CheckInvariants(p); err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= n; k++ {
		if v, ok := tr.Find(p, k); !ok || v != k {
			t.Fatalf("Find(%d) = (%d,%v)", k, v, ok)
		}
	}
}

func TestStructuralIntegrityUnderContention(t *testing.T) {
	for _, mode := range settest.Modes {
		t.Run(mode.Name, func(t *testing.T) {
			rt := flock.New()
			rt.SetBlocking(mode.Blocking)
			tr := New(rt)
			const workers = 8
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					p := rt.Register()
					defer p.Unregister()
					rng := rand.New(rand.NewSource(int64(w)*71 + 2))
					for i := 0; i < 1500; i++ {
						k := uint64(rng.Intn(24) + 1)
						switch rng.Intn(3) {
						case 0:
							tr.Insert(p, k, k)
						case 1:
							tr.Delete(p, k)
						default:
							tr.Find(p, k)
						}
					}
				}(w)
			}
			wg.Wait()
			p := rt.Register()
			defer p.Unregister()
			if err := tr.CheckInvariants(p); err != nil {
				t.Fatal(err)
			}
		})
	}
}
