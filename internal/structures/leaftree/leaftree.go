// Package leaftree implements the paper's "leaftree": a leaf-oriented
// (external) unbalanced binary search tree with fine-grained optimistic
// try-locks. All keys live in leaves; internal nodes hold routing keys.
// Searches take no locks; an insert locks the leaf's parent and replaces
// the leaf by a three-node subtree; a delete locks the grandparent and
// parent and splices the parent out. The sentinel layout follows Ellen et
// al.: root(inf2){ left=..., right=leaf(inf2) } with an inf1 layer below,
// which guarantees a real leaf always has an internal parent and
// grandparent and that the root is never removed.
package leaftree

import (
	"fmt"
	"math"

	flock "flock/internal/core"
	"flock/internal/structures/set"
)

const (
	inf1 = math.MaxUint64 - 1 // upper sentinel key (no real key reaches it)
	inf2 = math.MaxUint64
)

// node is either an internal router (leaf=false) or a leaf holding a
// key-value pair. All fields except the two child pointers and removed
// are constants.
type node struct {
	k       uint64
	v       uint64
	leaf    bool
	left    flock.Mutable[*node]
	right   flock.Mutable[*node]
	removed flock.UpdateOnce[bool]
	lck     flock.Lock
}

// Tree is a concurrent external BST. Keys must be in [1, MaxUint64-2].
type Tree struct {
	root   *node
	strict bool
}

// New returns an empty tree using try-locks (the paper's preferred mode).
func New(rt *flock.Runtime) *Tree {
	_ = rt
	root := &node{k: inf2}
	root.left.Init(&node{k: inf1, leaf: true})
	root.right.Init(&node{k: inf2, leaf: true})
	return &Tree{root: root}
}

// NewStrict returns a tree whose updates acquire strict locks (wait for
// the holder / help until acquired) instead of try-locks. Used by the
// Figure 4 experiment: with optimistic validation, waiting for a lock is
// usually wasted work because the validation then fails.
func NewStrict(rt *flock.Runtime) *Tree {
	t := New(rt)
	t.strict = true
	return t
}

// acquire runs f under l with the tree's lock discipline.
func (t *Tree) acquire(p *flock.Proc, l *flock.Lock, f flock.Thunk) bool {
	if t.strict {
		return l.Lock(p, f)
	}
	return l.TryLock(p, f)
}

// childOf returns the child pointer k routes to at n (k < n.k goes left).
func childOf(n *node, k uint64) *flock.Mutable[*node] {
	if k < n.k {
		return &n.left
	}
	return &n.right
}

// siblingOf returns the other child pointer.
func siblingOf(n *node, k uint64) *flock.Mutable[*node] {
	if k < n.k {
		return &n.right
	}
	return &n.left
}

// search descends to the leaf k routes to, returning the grandparent,
// parent and leaf. gp is nil only when the leaf hangs directly off the
// root (which can only be a sentinel leaf).
func (t *Tree) search(p *flock.Proc, k uint64) (gp, pp, leaf *node) {
	pp = t.root
	cur := childOf(pp, k).Load(p)
	for !cur.leaf {
		gp = pp
		pp = cur
		cur = childOf(cur, k).Load(p)
	}
	return gp, pp, cur
}

// Find reports the value stored under k.
func (t *Tree) Find(p *flock.Proc, k uint64) (uint64, bool) {
	p.Begin()
	defer p.End()
	_, _, leaf := t.search(p, k)
	if leaf.k == k {
		return leaf.v, true
	}
	return 0, false
}

// Insert adds (k, v); false if already present. The leaf found by the
// search is replaced, under its parent's lock, by an internal node whose
// children are the old leaf and the new one.
func (t *Tree) Insert(p *flock.Proc, k, v uint64) bool {
	p.Begin()
	defer p.End()
	for {
		_, pp, leaf := t.search(p, k)
		if leaf.k == k {
			return false // already there
		}
		ok := t.acquire(p, &pp.lck, func(hp *flock.Proc) bool {
			if pp.removed.Load(hp) || childOf(pp, k).Load(hp) != leaf {
				return false // validate
			}
			newLeaf := flock.Allocate(hp, func() *node {
				return &node{k: k, v: v, leaf: true}
			})
			inner := flock.Allocate(hp, func() *node {
				in := &node{k: maxKey(k, leaf.k)}
				if k < leaf.k {
					in.left.Init(newLeaf)
					in.right.Init(leaf)
				} else {
					in.left.Init(leaf)
					in.right.Init(newLeaf)
				}
				return in
			})
			childOf(pp, k).Store(hp, inner)
			return true
		})
		if ok {
			return true
		}
	}
}

// Delete removes k; false if absent. The parent is spliced out under the
// grandparent's and parent's locks; the leaf's sibling takes the parent's
// place.
func (t *Tree) Delete(p *flock.Proc, k uint64) bool {
	p.Begin()
	defer p.End()
	for {
		gp, pp, leaf := t.search(p, k)
		if leaf.k != k {
			return false // not found
		}
		// A real leaf's parent routes below the inf1 layer, so gp != nil.
		ok := t.acquire(p, &gp.lck, func(hp *flock.Proc) bool {
			if gp.removed.Load(hp) || childOf(gp, k).Load(hp) != pp {
				return false // validate
			}
			return t.acquire(hp, &pp.lck, func(hp2 *flock.Proc) bool {
				if childOf(pp, k).Load(hp2) != leaf {
					return false // validate (pp itself is pinned by gp's lock)
				}
				sibling := siblingOf(pp, k).Load(hp2)
				pp.removed.Store(hp2, true)
				childOf(gp, k).Store(hp2, sibling) // splice out pp and leaf
				flock.Retire(hp2, pp, nil)
				flock.Retire(hp2, leaf, nil)
				return true
			})
		})
		if ok {
			return true
		}
	}
}

// Upsert implements set.Upserter: it stores f(old, present) under k in
// one critical section. When k is present the leaf is replaced (leaf
// values are immutable, so a value update is a pointer swap under the
// parent's lock, validated the same way as Insert); when absent it is a
// plain insert of f(0, false). The old value is read from the immutable
// leaf before locking, so f runs outside the thunk and the validation
// (the parent still points at that exact leaf) pins it.
func (t *Tree) Upsert(p *flock.Proc, k uint64, f func(old uint64, present bool) uint64) (uint64, bool) {
	p.Begin()
	defer p.End()
	for {
		_, pp, leaf := t.search(p, k)
		if leaf.k == k {
			oldv := leaf.v
			newv := f(oldv, true)
			ok := t.acquire(p, &pp.lck, func(hp *flock.Proc) bool {
				if pp.removed.Load(hp) || childOf(pp, k).Load(hp) != leaf {
					return false // validate
				}
				repl := flock.Allocate(hp, func() *node {
					return &node{k: k, v: newv, leaf: true}
				})
				childOf(pp, k).Store(hp, repl)
				flock.Retire(hp, leaf, nil)
				return true
			})
			if ok {
				return oldv, true
			}
			continue
		}
		newv := f(0, false)
		ok := t.acquire(p, &pp.lck, func(hp *flock.Proc) bool {
			if pp.removed.Load(hp) || childOf(pp, k).Load(hp) != leaf {
				return false // validate
			}
			newLeaf := flock.Allocate(hp, func() *node {
				return &node{k: k, v: newv, leaf: true}
			})
			inner := flock.Allocate(hp, func() *node {
				in := &node{k: maxKey(k, leaf.k)}
				if k < leaf.k {
					in.left.Init(newLeaf)
					in.right.Init(leaf)
				} else {
					in.left.Init(leaf)
					in.right.Init(newLeaf)
				}
				return in
			})
			childOf(pp, k).Store(hp, inner)
			return true
		})
		if ok {
			return 0, false
		}
	}
}

// Scan implements set.Scanner: an in-order walk of the subtrees whose
// routing interval intersects [lo, hi], collecting qualifying leaves.
// Leaves and routing keys are immutable and subtrees are replaced
// copy-on-write, so every loaded child pointer pins a subtree that was
// the live one at the instant of the load — each reported pair was
// present at that instant, and a missing in-range key was absent at the
// instant the (then-live) subtree excluding it was loaded (interval
// semantics). The body is a single idempotent thunk: logged loads only,
// run-local accumulation, no locks taken. The inf1/inf2 sentinel leaves
// route above every clamped bound and are never reported.
func (t *Tree) Scan(p *flock.Proc, lo, hi uint64, limit int) []set.KV {
	lo, hi = set.ClampScanBounds(lo, hi)
	if limit == 0 {
		return nil
	}
	p.Begin()
	defer p.End()
	var out []set.KV
	var walk func(n *node) bool // false once limit is reached
	walk = func(n *node) bool {
		if n.leaf {
			if n.k >= lo && n.k <= hi && n.k < inf1 {
				out = append(out, set.KV{Key: n.k, Value: n.v})
				if limit > 0 && len(out) >= limit {
					return false
				}
			}
			return true
		}
		// n.left covers keys < n.k, n.right covers keys >= n.k.
		if lo < n.k && !walk(n.left.Load(p)) {
			return false
		}
		if hi >= n.k {
			return walk(n.right.Load(p))
		}
		return true
	}
	walk(t.root)
	return out
}

// OptimisticFind implements set.OptimisticReader. Find is already an
// unlogged read when called at top level — a pure descent over Mutable
// loads, which commit nothing outside a thunk, with copy-on-write
// subtree replacement pinning every loaded pointer — so the optimistic
// arm is Find itself; this method only asserts the top-level contract.
func (t *Tree) OptimisticFind(p *flock.Proc, k uint64) (uint64, bool) {
	if p.InThunk() {
		panic("leaftree: OptimisticFind inside a thunk")
	}
	return t.Find(p, k)
}

// OptimisticScan implements set.OptimisticScanner; see OptimisticFind —
// the scan walk is store-free with run-local accumulation, so at top
// level it is already unlogged.
func (t *Tree) OptimisticScan(p *flock.Proc, lo, hi uint64, limit int) []set.KV {
	if p.InThunk() {
		panic("leaftree: OptimisticScan inside a thunk")
	}
	return t.Scan(p, lo, hi, limit)
}

func maxKey(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Keys returns the sorted key snapshot (single-threaded use).
func (t *Tree) Keys(p *flock.Proc) []uint64 {
	var out []uint64
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			if n.k < inf1 {
				out = append(out, n.k)
			}
			return
		}
		walk(n.left.Load(p))
		walk(n.right.Load(p))
	}
	walk(t.root)
	return out
}

// Height returns the maximum leaf depth (single-threaded use).
func (t *Tree) Height(p *flock.Proc) int {
	var walk func(n *node) int
	walk = func(n *node) int {
		if n.leaf {
			return 0
		}
		l, r := walk(n.left.Load(p)), walk(n.right.Load(p))
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return walk(t.root)
}

// CheckInvariants verifies the external-BST ordering: within [lo, hi)
// bounds, internal key separates subtrees, and every leaf key respects
// the bounds (single-threaded use).
func (t *Tree) CheckInvariants(p *flock.Proc) error {
	var walk func(n *node, lo, hi uint64) error
	walk = func(n *node, lo, hi uint64) error {
		if n.leaf {
			if n.k < lo || n.k > hi {
				return fmt.Errorf("leaftree: leaf %d outside [%d,%d]", n.k, lo, hi)
			}
			return nil
		}
		if n.k < lo || n.k > hi {
			return fmt.Errorf("leaftree: router %d outside [%d,%d]", n.k, lo, hi)
		}
		if err := walk(n.left.Load(p), lo, n.k-1); err != nil {
			return err
		}
		return walk(n.right.Load(p), n.k, hi)
	}
	return walk(t.root, 0, inf2)
}
