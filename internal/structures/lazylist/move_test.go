package lazylist

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	flock "flock/internal/core"
	"flock/internal/structures/settest"
)

func TestMoveBasics(t *testing.T) {
	rt := flock.New()
	p := rt.Register()
	defer p.Unregister()
	a, b := New(rt), New(rt)
	a.Insert(p, 5, 50)

	if !Move(p, a, b, 5) {
		t.Fatalf("move of present key failed")
	}
	if _, ok := a.Find(p, 5); ok {
		t.Fatalf("key still in src after move")
	}
	if v, ok := b.Find(p, 5); !ok || v != 50 {
		t.Fatalf("key not in dst after move: (%d,%v)", v, ok)
	}
	if Move(p, a, b, 5) {
		t.Fatalf("move of absent key succeeded")
	}
	a.Insert(p, 5, 99)
	if Move(p, a, b, 5) {
		t.Fatalf("move onto occupied dst key succeeded")
	}
	if v, _ := b.Find(p, 5); v != 50 {
		t.Fatalf("occupied dst value clobbered: %d", v)
	}
}

// TestMoveConservation is the headline invariant: tokens shuttled
// between two lists by concurrent movers are never duplicated or lost,
// in either lock mode.
func TestMoveConservation(t *testing.T) {
	for _, mode := range settest.Modes {
		t.Run(mode.Name, func(t *testing.T) {
			rt := flock.New()
			rt.SetBlocking(mode.Blocking)
			a, b := New(rt), New(rt)
			const tokens = 40
			init := rt.Register()
			for k := uint64(1); k <= tokens; k++ {
				a.Insert(init, k, k*7)
			}
			init.Unregister()

			const workers = 8
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					p := rt.Register()
					defer p.Unregister()
					rng := rand.New(rand.NewSource(int64(w)*31 + 5))
					for i := 0; i < 800; i++ {
						k := uint64(rng.Intn(tokens) + 1)
						// Movers run in both directions concurrently;
						// Move's internal (list id, key) lock ordering is
						// what keeps opposite-direction helping chains
						// acyclic (see move.go).
						if rng.Intn(2) == 0 {
							Move(p, a, b, k)
						} else {
							Move(p, b, a, k)
						}
					}
				}(w)
			}
			wg.Wait()

			p := rt.Register()
			defer p.Unregister()
			if err := a.CheckInvariants(p); err != nil {
				t.Fatal(err)
			}
			if err := b.CheckInvariants(p); err != nil {
				t.Fatal(err)
			}
			for k := uint64(1); k <= tokens; k++ {
				va, inA := a.Find(p, k)
				vb, inB := b.Find(p, k)
				if inA == inB {
					t.Fatalf("token %d: inA=%v inB=%v (duplicated or lost)", k, inA, inB)
				}
				v := va
				if inB {
					v = vb
				}
				if v != k*7 {
					t.Fatalf("token %d: value corrupted to %d", k, v)
				}
			}
		})
	}
}

// TestMoveHelpedPastStall verifies a stalled mover cannot strand a token:
// the transfer completes (via helping) while its owner sleeps.
func TestMoveHelpedPastStall(t *testing.T) {
	rt := flock.New()
	a, b := New(rt), New(rt)
	seed := rt.Register()
	a.Insert(seed, 7, 70)
	seed.Unregister()

	var stall atomic.Int32
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		p := rt.Register()
		defer p.Unregister()
		// Hand-rolled stalling move: acquire the same locks Move takes,
		// then sleep inside (first run only).
		sPred, sCurr := a.locate(p, 7)
		dPred, _ := b.locate(p, 7)
		p.Begin()
		sPred.lck.TryLock(p, func(hp *flock.Proc) bool {
			return sCurr.lck.TryLock(hp, func(hp2 *flock.Proc) bool {
				return dPred.lck.TryLock(hp2, func(hp3 *flock.Proc) bool {
					if sPred.removed.Load(hp3) || sPred.next.Load(hp3) != sCurr {
						return false
					}
					sNext := sCurr.next.Load(hp3)
					sCurr.removed.Store(hp3, true)
					sPred.next.Store(hp3, sNext)
					moved := flock.Allocate(hp3, func() *node {
						nn := &node{k: 7, v: 70}
						nn.next.Init(dPred.next.Load(hp3))
						return nn
					})
					dPred.next.Store(hp3, moved)
					if stall.CompareAndSwap(0, 1) {
						close(started)
						<-release
					}
					return true
				})
			})
		})
		p.End()
	}()
	<-started

	// While the mover sleeps holding all three locks, another worker
	// operating on list a must get through (by helping).
	p := rt.Register()
	defer p.Unregister()
	done := make(chan bool, 1)
	go func() {
		q := rt.Register()
		defer q.Unregister()
		done <- q != nil && a.Insert(q, 8, 80)
	}()
	select {
	case ok := <-done:
		if !ok {
			t.Fatalf("insert next to stalled move failed")
		}
	case <-time.After(20 * time.Second):
		t.Fatalf("insert blocked behind stalled move in lock-free mode")
	}
	// The token must have arrived exactly once.
	if _, ok := a.Find(p, 7); ok {
		t.Fatalf("token still in src")
	}
	if v, ok := b.Find(p, 7); !ok || v != 70 {
		t.Fatalf("token not delivered: (%d,%v)", v, ok)
	}
	close(release)
}
