package lazylist

import flock "flock/internal/core"

// Move atomically transfers key k from src to dst: at no instant is k in
// both lists or in neither. It reports false without effect if k is
// absent from src or already present in dst.
//
// This is the operation the paper's introduction singles out ("if one
// needs to atomically move data among structures, lock-free algorithms
// become particularly tricky"): with lock-free locks it is three nested
// try-locks — the source predecessor, the source victim and the
// destination predecessor — and two splices inside the innermost
// critical section. Run in lock-free mode the whole transfer is helped
// to completion if its owner stalls.
//
// Lock-order discipline (essential): lock-free progress requires every
// nested acquisition sequence to descend one global partial order
// (paper, Theorem 4.2) — otherwise two movers running in opposite
// directions between the same lists would help each other's thunks in a
// cycle. Lists carry a global creation id, and Move nests its three
// locks in (list id, key) order, so all movers agree.
func Move(p *flock.Proc, src, dst *List, k uint64) bool {
	if src == dst {
		_, ok := src.Find(p, k)
		return ok // self-move: report presence, no effect
	}
	p.Begin()
	defer p.End()
	for {
		sPred, sCurr := src.locate(p, k)
		if sCurr.k != k {
			return false // not in src
		}
		dPred, dCurr := dst.locate(p, k)
		if dCurr.k == k {
			if dCurr.removed.Load(p) {
				continue // dst occupant is being deleted; re-examine
			}
			return false // already in dst
		}

		// The innermost critical section: all three locks held.
		body := func(hp *flock.Proc) bool {
			if sPred.removed.Load(hp) || sPred.next.Load(hp) != sCurr {
				return false // source neighborhood changed
			}
			if dPred.removed.Load(hp) || dPred.next.Load(hp) != dCurr {
				return false // destination neighborhood changed
			}
			sNext := sCurr.next.Load(hp)
			sCurr.removed.Store(hp, true)
			sPred.next.Store(hp, sNext) // splice out of src
			moved := flock.Allocate(hp, func() *node {
				nn := &node{k: sCurr.k, v: sCurr.v}
				nn.next.Init(dCurr)
				return nn
			})
			dPred.next.Store(hp, moved) // splice into dst
			flock.Retire(hp, sCurr, nil)
			return true
		}

		// Nest the three locks in global (list id, key) order. Within
		// src, sPred precedes sCurr by key; dPred slots before or after
		// the pair depending on list ids.
		var ok bool
		if src.id < dst.id {
			ok = sPred.lck.TryLock(p, func(h1 *flock.Proc) bool {
				return sCurr.lck.TryLock(h1, func(h2 *flock.Proc) bool {
					return dPred.lck.TryLock(h2, body)
				})
			})
		} else {
			ok = dPred.lck.TryLock(p, func(h1 *flock.Proc) bool {
				return sPred.lck.TryLock(h1, func(h2 *flock.Proc) bool {
					return sCurr.lck.TryLock(h2, body)
				})
			})
		}
		if ok {
			return true
		}
	}
}
