package lazylist

import (
	"testing"

	flock "flock/internal/core"
	"flock/internal/structures/set"
	"flock/internal/structures/settest"
)

func factory(rt *flock.Runtime) set.Set { return New(rt) }

func TestSuite(t *testing.T) { settest.Run(t, factory) }

func TestEmptyList(t *testing.T) {
	rt := flock.New()
	p := rt.Register()
	defer p.Unregister()
	l := New(rt)
	if _, ok := l.Find(p, 5); ok {
		t.Fatalf("empty list finds key")
	}
	if l.Delete(p, 5) {
		t.Fatalf("empty list deletes key")
	}
	if len(l.Keys(p)) != 0 {
		t.Fatalf("empty list has keys")
	}
}

func TestSortedOrderMaintained(t *testing.T) {
	rt := flock.New()
	p := rt.Register()
	defer p.Unregister()
	l := New(rt)
	for _, k := range []uint64{5, 1, 9, 3, 7, 2, 8, 4, 6} {
		if !l.Insert(p, k, k*10) {
			t.Fatalf("insert %d failed", k)
		}
	}
	keys := l.Keys(p)
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatalf("keys out of order: %v", keys)
		}
	}
	if err := l.CheckInvariants(p); err != nil {
		t.Fatal(err)
	}
	for _, k := range []uint64{1, 9, 5} {
		if v, ok := l.Find(p, k); !ok || v != k*10 {
			t.Fatalf("Find(%d) = (%d,%v)", k, v, ok)
		}
	}
}

func TestDuplicateInsertRejected(t *testing.T) {
	rt := flock.New()
	p := rt.Register()
	defer p.Unregister()
	l := New(rt)
	if !l.Insert(p, 7, 1) || l.Insert(p, 7, 2) {
		t.Fatalf("duplicate insert accepted")
	}
	if v, _ := l.Find(p, 7); v != 1 {
		t.Fatalf("duplicate insert overwrote value: %d", v)
	}
}

func TestDeleteThenReinsert(t *testing.T) {
	rt := flock.New()
	p := rt.Register()
	defer p.Unregister()
	l := New(rt)
	l.Insert(p, 3, 30)
	if !l.Delete(p, 3) {
		t.Fatalf("delete failed")
	}
	if _, ok := l.Find(p, 3); ok {
		t.Fatalf("key present after delete")
	}
	if !l.Insert(p, 3, 31) {
		t.Fatalf("reinsert failed")
	}
	if v, ok := l.Find(p, 3); !ok || v != 31 {
		t.Fatalf("reinserted value wrong: (%d,%v)", v, ok)
	}
}

func TestBoundaryKeys(t *testing.T) {
	rt := flock.New()
	p := rt.Register()
	defer p.Unregister()
	l := New(rt)
	const maxKey = ^uint64(0) - 1
	if !l.Insert(p, 1, 100) || !l.Insert(p, maxKey, 200) {
		t.Fatalf("boundary inserts failed")
	}
	if v, ok := l.Find(p, maxKey); !ok || v != 200 {
		t.Fatalf("max boundary find (%d,%v)", v, ok)
	}
	if !l.Delete(p, 1) || !l.Delete(p, maxKey) {
		t.Fatalf("boundary deletes failed")
	}
	if err := l.CheckInvariants(p); err != nil {
		t.Fatal(err)
	}
}
