// Package lazylist implements a sorted singly-linked list set with
// fine-grained optimistic try-locks, the paper's "lazylist" (after Heller
// et al. [31]): traversals take no locks; updates lock the predecessor
// (and the victim, for deletes), validate, and apply. Run in lock-free
// mode the list is lock-free via helping; in blocking mode the locks are
// plain TTAS locks.
package lazylist

import (
	"fmt"
	"math"
	"sync/atomic"

	flock "flock/internal/core"
	"flock/internal/structures/set"
)

// node is one link. Key and value are constants (written before
// publication); next and removed are shared mutable locations.
type node struct {
	k, v    uint64
	next    flock.Mutable[*node]
	removed flock.UpdateOnce[bool]
	lck     flock.Lock
}

// List is a concurrent sorted linked-list set. Keys must be in
// [1, MaxUint64-1].
type List struct {
	head *node
	id   uint64 // global creation order; Move nests locks by (id, key)
}

// listIDs hands every list a place in the global lock order used by
// cross-list operations (see Move): helping chains must descend a
// bounded partial order or helping could cycle (paper, Theorem 4.2).
var listIDs atomic.Uint64

// New returns an empty list bound to rt (the runtime is captured only by
// the Procs used to operate on the list; the structure itself is
// mode-agnostic).
func New(rt *flock.Runtime) *List {
	_ = rt
	tail := &node{k: math.MaxUint64}
	head := &node{k: 0}
	head.next.Init(tail)
	return &List{head: head, id: listIDs.Add(1)}
}

// locate returns the first link with key >= k and its predecessor.
// It takes no locks and performs no logging (it runs outside any thunk).
func (l *List) locate(p *flock.Proc, k uint64) (pred, curr *node) {
	pred = l.head
	curr = pred.next.Load(p)
	for curr.k < k {
		pred = curr
		curr = curr.next.Load(p)
	}
	return pred, curr
}

// Find reports the value stored under k.
func (l *List) Find(p *flock.Proc, k uint64) (uint64, bool) {
	p.Begin()
	defer p.End()
	_, curr := l.locate(p, k)
	if curr.k == k && !curr.removed.Load(p) {
		return curr.v, true
	}
	return 0, false
}

// Insert adds (k, v); false if k is already present.
func (l *List) Insert(p *flock.Proc, k, v uint64) bool {
	p.Begin()
	defer p.End()
	for {
		pred, curr := l.locate(p, k)
		if curr.k == k {
			if curr.removed.Load(p) {
				continue // concurrently deleted; re-traverse
			}
			return false
		}
		ok := pred.lck.TryLock(p, func(hp *flock.Proc) bool {
			if pred.removed.Load(hp) || pred.next.Load(hp) != curr {
				return false // validation failed
			}
			n := flock.Allocate(hp, func() *node {
				nn := &node{k: k, v: v}
				nn.next.Init(curr)
				return nn
			})
			pred.next.Store(hp, n) // splice in
			return true
		})
		if ok {
			return true
		}
	}
}

// Delete removes k; false if absent.
func (l *List) Delete(p *flock.Proc, k uint64) bool {
	p.Begin()
	defer p.End()
	for {
		pred, curr := l.locate(p, k)
		if curr.k != k {
			return false
		}
		ok := pred.lck.TryLock(p, func(hp *flock.Proc) bool {
			return curr.lck.TryLock(hp, func(hp2 *flock.Proc) bool {
				if pred.removed.Load(hp2) || pred.next.Load(hp2) != curr {
					return false // validation failed
				}
				next := curr.next.Load(hp2)
				curr.removed.Store(hp2, true)
				pred.next.Store(hp2, next) // splice out
				flock.Retire(hp2, curr, nil)
				return true
			})
		})
		if ok {
			return true
		}
		// Lock was busy or validation failed: someone made progress;
		// re-traverse (the key may now be gone).
	}
}

// Scan implements set.Scanner: an optimistic forward traversal from the
// first node with key >= lo, skipping nodes whose removed flag is set
// (each reported pair was present at the instant its removed flag read
// false). The body is a single idempotent thunk — only logged loads and
// run-local accumulation — so nested inside a composed critical section
// every helper replay collects the identical pairs (DESIGN.md S12).
func (l *List) Scan(p *flock.Proc, lo, hi uint64, limit int) []set.KV {
	lo, hi = set.ClampScanBounds(lo, hi)
	if limit == 0 {
		return nil
	}
	p.Begin()
	defer p.End()
	var out []set.KV
	_, curr := l.locate(p, lo)
	for curr.k <= hi { // the tail sentinel MaxUint64 always exceeds hi
		if !curr.removed.Load(p) {
			out = append(out, set.KV{Key: curr.k, Value: curr.v})
			if limit > 0 && len(out) >= limit {
				break
			}
		}
		curr = curr.next.Load(p)
	}
	return out
}

// OptimisticFind implements set.OptimisticReader. locate takes no locks
// and logs nothing at top level, and the removed flag pins the presence
// instant, so Find is already the unlogged optimistic read; this method
// only asserts the top-level contract.
func (l *List) OptimisticFind(p *flock.Proc, k uint64) (uint64, bool) {
	if p.InThunk() {
		panic("lazylist: OptimisticFind inside a thunk")
	}
	return l.Find(p, k)
}

// OptimisticScan implements set.OptimisticScanner; see OptimisticFind —
// the forward traversal is store-free with run-local accumulation.
func (l *List) OptimisticScan(p *flock.Proc, lo, hi uint64, limit int) []set.KV {
	if p.InThunk() {
		panic("lazylist: OptimisticScan inside a thunk")
	}
	return l.Scan(p, lo, hi, limit)
}

// Keys returns a snapshot of the keys (single-threaded use: tests and
// examples).
func (l *List) Keys(p *flock.Proc) []uint64 {
	var out []uint64
	for n := l.head.next.Load(p); n.k != math.MaxUint64; n = n.next.Load(p) {
		out = append(out, n.k)
	}
	return out
}

// CheckInvariants validates sortedness and sentinel reachability
// (single-threaded use).
func (l *List) CheckInvariants(p *flock.Proc) error {
	prev := l.head
	for n := prev.next.Load(p); ; n = n.next.Load(p) {
		if n.k <= prev.k {
			return fmt.Errorf("lazylist: order violation: %d >= %d", prev.k, n.k)
		}
		if n.k == math.MaxUint64 {
			return nil
		}
		prev = n
	}
}
