package hashtable

import (
	"math/rand"
	"sync"
	"testing"

	flock "flock/internal/core"
	"flock/internal/structures/set"
	"flock/internal/structures/settest"
)

func factory(rt *flock.Runtime) set.Set { return New(rt, 64) }

func TestSuite(t *testing.T) { settest.Run(t, factory) }

func TestSingleBucketDegenerate(t *testing.T) {
	// One bucket: the table degenerates to a sorted list; all collision
	// paths are exercised.
	rt := flock.New()
	p := rt.Register()
	defer p.Unregister()
	tb := New(rt, 1)
	for k := uint64(1); k <= 50; k++ {
		if !tb.Insert(p, k, k) {
			t.Fatalf("insert %d failed", k)
		}
	}
	if tb.Size(p) != 50 {
		t.Fatalf("size = %d", tb.Size(p))
	}
	if err := tb.CheckInvariants(p); err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 50; k += 2 {
		if !tb.Delete(p, k) {
			t.Fatalf("delete %d failed", k)
		}
	}
	if tb.Size(p) != 25 {
		t.Fatalf("size after deletes = %d", tb.Size(p))
	}
	if err := tb.CheckInvariants(p); err != nil {
		t.Fatal(err)
	}
}

func TestBucketRounding(t *testing.T) {
	rt := flock.New()
	for _, want := range []struct{ in, n int }{{1, 1}, {2, 2}, {3, 4}, {63, 64}, {64, 64}, {65, 128}} {
		tb := New(rt, want.in)
		if len(tb.buckets) != want.n {
			t.Fatalf("New(%d) made %d buckets, want %d", want.in, len(tb.buckets), want.n)
		}
	}
}

func TestConcurrentChainIntegrity(t *testing.T) {
	for _, mode := range settest.Modes {
		t.Run(mode.Name, func(t *testing.T) {
			rt := flock.New()
			rt.SetBlocking(mode.Blocking)
			tb := New(rt, 4) // few buckets => heavy chain contention
			const workers = 8
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					p := rt.Register()
					defer p.Unregister()
					rng := rand.New(rand.NewSource(int64(w) + 5))
					for i := 0; i < 1000; i++ {
						k := uint64(rng.Intn(40) + 1)
						if rng.Intn(2) == 0 {
							tb.Insert(p, k, k)
						} else {
							tb.Delete(p, k)
						}
					}
				}(w)
			}
			wg.Wait()
			p := rt.Register()
			defer p.Unregister()
			if err := tb.CheckInvariants(p); err != nil {
				t.Fatal(err)
			}
		})
	}
}
