// Package hashtable implements the paper's separate-chaining hash table:
// an array of buckets, each a short sorted linked list maintained with the
// same fine-grained optimistic try-lock protocol as lazylist. Searches
// take no locks; because chains are short, the fraction of time spent
// inside critical sections is the highest of all the structures, which is
// why the paper observes the largest lock-free overhead here (§8).
package hashtable

import (
	"fmt"
	"sort"
	"sync/atomic"

	flock "flock/internal/core"
	"flock/internal/structures/set"
)

// node is one chain link. The head node of each bucket is a sentinel that
// is never removed. The value is a Mutable (not a plain field) so Upsert
// can replace it in place under the node's lock.
type node struct {
	k       uint64
	v       flock.Mutable[uint64]
	next    flock.Mutable[*node]
	removed flock.UpdateOnce[bool]
	lck     flock.Lock
}

// Table is a concurrent separate-chaining hash set with a fixed bucket
// array (the paper's tables are sized to the key range and not resized).
type Table struct {
	buckets []node
	mask    uint64
}

// New returns a table with at least nBuckets buckets (rounded up to a
// power of two).
func New(rt *flock.Runtime, nBuckets int) *Table {
	_ = rt
	n := 1
	for n < nBuckets {
		n <<= 1
	}
	return &Table{buckets: make([]node, n), mask: uint64(n - 1)}
}

// hash is splitmix64's finalizer: a cheap, well-mixed multiplicative hash.
func hash(k uint64) uint64 {
	z := k + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (t *Table) bucket(k uint64) *node {
	return &t.buckets[hash(k)&t.mask]
}

// locate returns the predecessor and the first node with key >= k in k's
// chain; curr is nil when the chain ends first.
func (t *Table) locate(p *flock.Proc, k uint64) (pred, curr *node) {
	pred = t.bucket(k)
	curr = pred.next.Load(p)
	for curr != nil && curr.k < k {
		pred = curr
		curr = curr.next.Load(p)
	}
	return pred, curr
}

// Find reports the value stored under k.
func (t *Table) Find(p *flock.Proc, k uint64) (uint64, bool) {
	p.Begin()
	defer p.End()
	_, curr := t.locate(p, k)
	if curr != nil && curr.k == k && !curr.removed.Load(p) {
		return curr.v.Load(p), true
	}
	return 0, false
}

// OptimisticFind implements set.OptimisticReader. The chain walk takes
// no locks and logs nothing at top level, and the removed flag plus the
// boxed value pin the presence instant, so Find is already the unlogged
// optimistic read; this method only asserts the top-level contract.
func (t *Table) OptimisticFind(p *flock.Proc, k uint64) (uint64, bool) {
	if p.InThunk() {
		panic("hashtable: OptimisticFind inside a thunk")
	}
	return t.Find(p, k)
}

// Insert adds (k, v); false if already present.
func (t *Table) Insert(p *flock.Proc, k, v uint64) bool {
	p.Begin()
	defer p.End()
	for {
		pred, curr := t.locate(p, k)
		if curr != nil && curr.k == k {
			if curr.removed.Load(p) {
				continue
			}
			return false
		}
		ok := pred.lck.TryLock(p, func(hp *flock.Proc) bool {
			if pred.removed.Load(hp) || pred.next.Load(hp) != curr {
				return false
			}
			n := flock.Allocate(hp, func() *node {
				nn := &node{k: k}
				nn.v.Init(v)
				nn.next.Init(curr)
				return nn
			})
			pred.next.Store(hp, n)
			return true
		})
		if ok {
			return true
		}
	}
}

// Delete removes k; false if absent.
func (t *Table) Delete(p *flock.Proc, k uint64) bool {
	p.Begin()
	defer p.End()
	for {
		pred, curr := t.locate(p, k)
		if curr == nil || curr.k != k {
			return false
		}
		ok := pred.lck.TryLock(p, func(hp *flock.Proc) bool {
			return curr.lck.TryLock(hp, func(hp2 *flock.Proc) bool {
				if pred.removed.Load(hp2) || pred.next.Load(hp2) != curr {
					return false
				}
				next := curr.next.Load(hp2)
				curr.removed.Store(hp2, true)
				pred.next.Store(hp2, next)
				flock.Retire(hp2, curr, nil)
				return true
			})
		})
		if ok {
			return true
		}
	}
}

// Upsert implements set.Upserter: it stores f(old, present) under k in
// one critical section. A present key's value is replaced in place under
// the node's lock (the lock excludes both Delete, which takes it before
// splicing, and other Upserts); an absent key takes Insert's path with
// value f(0, false). The old value is read through the thunk log, so all
// helper runs observe the same value and f (which must be pure) computes
// the same replacement in every run.
func (t *Table) Upsert(p *flock.Proc, k uint64, f func(old uint64, present bool) uint64) (uint64, bool) {
	p.Begin()
	defer p.End()
	for {
		pred, curr := t.locate(p, k)
		if curr != nil && curr.k == k {
			if curr.removed.Load(p) {
				continue
			}
			// prev is written by whichever runs of the thunk execute
			// (owner and helpers); the logged load makes them all store
			// the same value, so the atomic store is idempotent.
			var prev atomic.Uint64
			ok := curr.lck.TryLock(p, func(hp *flock.Proc) bool {
				if curr.removed.Load(hp) {
					return false // deleted under us; revalidate
				}
				old := curr.v.Load(hp)
				curr.v.Store(hp, f(old, true))
				prev.Store(old)
				return true
			})
			if ok {
				return prev.Load(), true
			}
			continue
		}
		newv := f(0, false)
		ok := pred.lck.TryLock(p, func(hp *flock.Proc) bool {
			if pred.removed.Load(hp) || pred.next.Load(hp) != curr {
				return false
			}
			n := flock.Allocate(hp, func() *node {
				nn := &node{k: k}
				nn.v.Init(newv)
				nn.next.Init(curr)
				return nn
			})
			pred.next.Store(hp, n)
			return true
		})
		if ok {
			return 0, false
		}
	}
}

// Scan implements set.Scanner on the unordered table: every chain is
// walked once, in-range live pairs are collected run-locally, and the
// result is sorted by key before the limit is applied (qualifying keys
// are scattered across buckets, so an unordered structure cannot
// early-exit on limit). The body keeps Scanner's thunk contract —
// logged loads only, run-local accumulation, no locks taken — so it can
// run at top level (weak interval consistency) or nested under the KV
// layer's shard locks. The cost is O(buckets + hits·log hits) rather
// than the trees' output-proportional walks; the table exists for
// point-op throughput, and its scan consumers (the snapshot iterator,
// conserved-sum audits) accept the full sweep.
func (t *Table) Scan(p *flock.Proc, lo, hi uint64, limit int) []set.KV {
	lo, hi = set.ClampScanBounds(lo, hi)
	if limit == 0 || lo > hi {
		return nil
	}
	p.Begin()
	defer p.End()
	var out []set.KV
	for i := range t.buckets {
		for c := t.buckets[i].next.Load(p); c != nil; c = c.next.Load(p) {
			if c.k >= lo && c.k <= hi && !c.removed.Load(p) {
				out = append(out, set.KV{Key: c.k, Value: c.v.Load(p)})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Key < out[b].Key })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// OptimisticScan implements set.OptimisticScanner; like OptimisticFind,
// the bucket sweep is store-free with run-local accumulation, so at top
// level it is already unlogged and this method only asserts the
// top-level contract.
func (t *Table) OptimisticScan(p *flock.Proc, lo, hi uint64, limit int) []set.KV {
	if p.InThunk() {
		panic("hashtable: OptimisticScan inside a thunk")
	}
	return t.Scan(p, lo, hi, limit)
}

// Size counts all elements (single-threaded use).
func (t *Table) Size(p *flock.Proc) int {
	n := 0
	for i := range t.buckets {
		for c := t.buckets[i].next.Load(p); c != nil; c = c.next.Load(p) {
			n++
		}
	}
	return n
}

// CheckInvariants verifies per-chain sorted order and that every node
// hashes to its bucket (single-threaded use).
func (t *Table) CheckInvariants(p *flock.Proc) error {
	for i := range t.buckets {
		prev := uint64(0)
		first := true
		for c := t.buckets[i].next.Load(p); c != nil; c = c.next.Load(p) {
			if !first && c.k <= prev {
				return fmt.Errorf("hashtable: bucket %d out of order at key %d", i, c.k)
			}
			first = false
			prev = c.k
			if hash(c.k)&t.mask != uint64(i) {
				return fmt.Errorf("hashtable: key %d in wrong bucket %d", c.k, i)
			}
		}
	}
	return nil
}
