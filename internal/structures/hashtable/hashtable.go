// Package hashtable implements the paper's separate-chaining hash table:
// an array of buckets, each a short sorted linked list maintained with the
// same fine-grained optimistic try-lock protocol as lazylist. Searches
// take no locks; because chains are short, the fraction of time spent
// inside critical sections is the highest of all the structures, which is
// why the paper observes the largest lock-free overhead here (§8).
package hashtable

import (
	"fmt"

	flock "flock/internal/core"
)

// node is one chain link. The head node of each bucket is a sentinel that
// is never removed.
type node struct {
	k, v    uint64
	next    flock.Mutable[*node]
	removed flock.UpdateOnce[bool]
	lck     flock.Lock
}

// Table is a concurrent separate-chaining hash set with a fixed bucket
// array (the paper's tables are sized to the key range and not resized).
type Table struct {
	buckets []node
	mask    uint64
}

// New returns a table with at least nBuckets buckets (rounded up to a
// power of two).
func New(rt *flock.Runtime, nBuckets int) *Table {
	_ = rt
	n := 1
	for n < nBuckets {
		n <<= 1
	}
	return &Table{buckets: make([]node, n), mask: uint64(n - 1)}
}

// hash is splitmix64's finalizer: a cheap, well-mixed multiplicative hash.
func hash(k uint64) uint64 {
	z := k + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (t *Table) bucket(k uint64) *node {
	return &t.buckets[hash(k)&t.mask]
}

// locate returns the predecessor and the first node with key >= k in k's
// chain; curr is nil when the chain ends first.
func (t *Table) locate(p *flock.Proc, k uint64) (pred, curr *node) {
	pred = t.bucket(k)
	curr = pred.next.Load(p)
	for curr != nil && curr.k < k {
		pred = curr
		curr = curr.next.Load(p)
	}
	return pred, curr
}

// Find reports the value stored under k.
func (t *Table) Find(p *flock.Proc, k uint64) (uint64, bool) {
	p.Begin()
	defer p.End()
	_, curr := t.locate(p, k)
	if curr != nil && curr.k == k && !curr.removed.Load(p) {
		return curr.v, true
	}
	return 0, false
}

// Insert adds (k, v); false if already present.
func (t *Table) Insert(p *flock.Proc, k, v uint64) bool {
	p.Begin()
	defer p.End()
	for {
		pred, curr := t.locate(p, k)
		if curr != nil && curr.k == k {
			if curr.removed.Load(p) {
				continue
			}
			return false
		}
		ok := pred.lck.TryLock(p, func(hp *flock.Proc) bool {
			if pred.removed.Load(hp) || pred.next.Load(hp) != curr {
				return false
			}
			n := flock.Allocate(hp, func() *node {
				nn := &node{k: k, v: v}
				nn.next.Init(curr)
				return nn
			})
			pred.next.Store(hp, n)
			return true
		})
		if ok {
			return true
		}
	}
}

// Delete removes k; false if absent.
func (t *Table) Delete(p *flock.Proc, k uint64) bool {
	p.Begin()
	defer p.End()
	for {
		pred, curr := t.locate(p, k)
		if curr == nil || curr.k != k {
			return false
		}
		ok := pred.lck.TryLock(p, func(hp *flock.Proc) bool {
			return curr.lck.TryLock(hp, func(hp2 *flock.Proc) bool {
				if pred.removed.Load(hp2) || pred.next.Load(hp2) != curr {
					return false
				}
				next := curr.next.Load(hp2)
				curr.removed.Store(hp2, true)
				pred.next.Store(hp2, next)
				flock.Retire(hp2, curr, nil)
				return true
			})
		})
		if ok {
			return true
		}
	}
}

// Size counts all elements (single-threaded use).
func (t *Table) Size(p *flock.Proc) int {
	n := 0
	for i := range t.buckets {
		for c := t.buckets[i].next.Load(p); c != nil; c = c.next.Load(p) {
			n++
		}
	}
	return n
}

// CheckInvariants verifies per-chain sorted order and that every node
// hashes to its bucket (single-threaded use).
func (t *Table) CheckInvariants(p *flock.Proc) error {
	for i := range t.buckets {
		prev := uint64(0)
		first := true
		for c := t.buckets[i].next.Load(p); c != nil; c = c.next.Load(p) {
			if !first && c.k <= prev {
				return fmt.Errorf("hashtable: bucket %d out of order at key %d", i, c.k)
			}
			first = false
			prev = c.k
			if hash(c.k)&t.mask != uint64(i) {
				return fmt.Errorf("hashtable: key %d in wrong bucket %d", c.k, i)
			}
		}
	}
	return nil
}
