// Package set defines the common interface implemented by every
// concurrent set in this repository: the paper's workloads are sets of
// 8-byte keys with 8-byte values supporting insert, delete and lookup.
//
// Keys must lie in [1, math.MaxUint64-1]: the extreme values are reserved
// for sentinels by several structures.
package set

import flock "flock/internal/core"

// Set is a concurrent unordered or ordered set with associated values.
// All methods take the calling worker's Proc; implementations that do not
// use the flock runtime (the lock-free baselines) ignore it.
type Set interface {
	// Insert adds (k, v) and reports true, or reports false if k was
	// already present (the value is not updated).
	Insert(p *flock.Proc, k, v uint64) bool
	// Delete removes k and reports whether it was present.
	Delete(p *flock.Proc, k uint64) bool
	// Find returns the value associated with k, if present.
	Find(p *flock.Proc, k uint64) (uint64, bool)
}
