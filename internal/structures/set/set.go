// Package set defines the common interface implemented by every
// concurrent set in this repository: the paper's workloads are sets of
// 8-byte keys with 8-byte values supporting insert, delete and lookup.
//
// Keys must lie in [1, math.MaxUint64-1]: the extreme values are reserved
// for sentinels by several structures.
package set

import flock "flock/internal/core"

// Set is a concurrent unordered or ordered set with associated values.
// All methods take the calling worker's Proc; implementations that do not
// use the flock runtime (the lock-free baselines) ignore it.
type Set interface {
	// Insert adds (k, v) and reports true, or reports false if k was
	// already present (the value is not updated).
	Insert(p *flock.Proc, k, v uint64) bool
	// Delete removes k and reports whether it was present.
	Delete(p *flock.Proc, k uint64) bool
	// Find returns the value associated with k, if present.
	Find(p *flock.Proc, k uint64) (uint64, bool)
}

// Upserter is optionally implemented by sets that can apply an atomic
// upsert inside a single critical section: the key ends up present with
// value f(old, present) in one linearization point, with no transient
// absent window. It backs the KV layer's Put and ReadModifyWrite
// (internal/kv); sets without it fall back to a non-atomic
// delete-then-insert there.
//
// f must be pure: in lock-free mode the enclosing thunk may be re-run
// by helper threads, so f can be evaluated more than once and every
// evaluation must return the same result for the same inputs.
type Upserter interface {
	// Upsert stores f(old, present) under k, inserting if absent, and
	// returns the previous value and whether k was present.
	Upsert(p *flock.Proc, k uint64, f func(old uint64, present bool) uint64) (uint64, bool)
}
