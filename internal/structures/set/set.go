// Package set defines the common interface implemented by every
// concurrent set in this repository: the paper's workloads are sets of
// 8-byte keys with 8-byte values supporting insert, delete and lookup,
// and — for the ordered structures — range scans.
//
// Keys must lie in [1, math.MaxUint64-1]: the extreme values are reserved
// for sentinels by several structures. Scan bounds are deliberately wider
// than the key space: 0 and math.MaxUint64 are open-interval sentinels
// ("from the smallest key" / "to the largest key") that can never name a
// real key, so ClampScanBounds folds them into the reserved-sentinel key
// bounds [1, MaxUint64-1] and no scan can ever observe a structure's
// internal sentinel nodes.
package set

import (
	"math"

	flock "flock/internal/core"
)

// Set is a concurrent unordered or ordered set with associated values.
// All methods take the calling worker's Proc; implementations that do not
// use the flock runtime (the lock-free baselines) ignore it.
type Set interface {
	// Insert adds (k, v) and reports true, or reports false if k was
	// already present (the value is not updated).
	Insert(p *flock.Proc, k, v uint64) bool
	// Delete removes k and reports whether it was present.
	Delete(p *flock.Proc, k uint64) bool
	// Find returns the value associated with k, if present.
	Find(p *flock.Proc, k uint64) (uint64, bool)
}

// KV is one key-value pair returned by a range scan, in key order.
type KV struct {
	Key   uint64
	Value uint64
}

// Scanner is optionally implemented by ordered sets. Scan returns the
// key-value pairs with lo <= key <= hi in strictly ascending key order,
// at most limit of them (limit < 0 means unbounded; limit 0 yields an
// empty result, so callers can pass a computed budget through without
// special-casing exhaustion). The bounds are
// first clamped by ClampScanBounds, so the open-interval sentinels 0 and
// math.MaxUint64 are always safe to pass and reserved sentinel keys are
// never returned.
//
// Consistency contract (interval semantics): a scan runs as a single
// idempotent thunk — a pure traversal over logged loads with run-local
// accumulation — so it may execute at top level (no lock) or nested
// inside a composed critical section (kv.Scan runs it under shard
// locks), and helper replays recompute the identical result. Concurrent
// mutations make a top-level scan weakly consistent rather than an
// atomic snapshot: every returned pair was present at some instant
// during the scan, and every in-range key missing from the result was
// absent at some instant during the scan, but different keys may be
// observed at different instants (lincheck checks exactly this, per
// key, against the scan's invocation window; DESIGN.md S12).
type Scanner interface {
	// Scan collects the pairs in [lo, hi], ascending, up to limit.
	Scan(p *flock.Proc, lo, hi uint64, limit int) []KV
}

// ClampScanBounds folds the open-interval scan sentinels into the key
// space shared by every structure: lo 0 becomes 1 and hi MaxUint64
// becomes MaxUint64-1, so [0, MaxUint64] means "everything" and no
// structure-reserved sentinel key can fall inside the scanned interval.
func ClampScanBounds(lo, hi uint64) (uint64, uint64) {
	if lo == 0 {
		lo = 1
	}
	if hi == math.MaxUint64 {
		hi = math.MaxUint64 - 1
	}
	return lo, hi
}

// OptimisticReader is optionally implemented by sets whose Find is an
// unlogged optimistic read: a pure traversal over plain atomic loads
// with no commit traffic, validated (or inherently safe) against
// concurrent mutation. OptimisticFind must be called at top level
// (outside any thunk) — implementations may panic on nested calls —
// and must be linearizable exactly like Find. The KV layer routes Get
// through it when Options.OptimisticReads is set; settest auto-runs
// differential and linearizability passes against any implementer.
type OptimisticReader interface {
	// OptimisticFind returns the value associated with k, if present,
	// without logging any loads.
	OptimisticFind(p *flock.Proc, k uint64) (uint64, bool)
}

// OptimisticScanner is optionally implemented by ordered sets whose
// Scan can run unlogged: run-local accumulation, no stores, plain
// atomic loads. OptimisticScan has Scan's exact result contract
// (bounds, ascending order, limit semantics, weak interval
// consistency) and the same top-level-only restriction as
// OptimisticFind. The KV layer's optimistic Scan arm wraps it in
// per-shard version validation (internal/kv/scan.go).
type OptimisticScanner interface {
	// OptimisticScan collects the pairs in [lo, hi], ascending, up to
	// limit, without logging any loads.
	OptimisticScan(p *flock.Proc, lo, hi uint64, limit int) []KV
}

// Cursor resumes a range scan over a Scanner in bounded chunks: each
// Next call scans [Pos(), hi] with the chunk size as the limit, then
// advances past the last returned key. Chunked iteration trades the
// single Scan's one-interval consistency for bounded critical sections
// — each chunk is individually consistent under Scanner's interval
// contract, but keys read in different chunks may be observed at
// different instants, and a key that moves across the cursor position
// between chunks can be missed or seen twice at a boundary only if it
// was deleted and reinserted there. The KV snapshot iterator
// (internal/kv) builds on exactly this, repairing the fuzziness with
// its pre-image overlay.
type Cursor struct {
	sc   Scanner
	next uint64 // inclusive lower bound of the next chunk
	hi   uint64 // inclusive upper bound, already clamped
	done bool
}

// NewCursor positions a cursor over [lo, hi] on sc (bounds are clamped
// like Scan's; the open-interval sentinels 0 and MaxUint64 are safe).
func NewCursor(sc Scanner, lo, hi uint64) *Cursor {
	lo, hi = ClampScanBounds(lo, hi)
	return &Cursor{sc: sc, next: lo, hi: hi, done: lo > hi}
}

// Done reports whether the interval is exhausted.
func (c *Cursor) Done() bool { return c.done }

// Pos returns the inclusive lower bound of the next chunk. Callers that
// fetch a chunk out-of-band (an optimistic validated scan, a scan under
// a lock) scan [Pos(), hi] themselves and feed the run to Advance.
func (c *Cursor) Pos() uint64 { return c.next }

// Hi returns the cursor's inclusive (clamped) upper bound.
func (c *Cursor) Hi() uint64 { return c.hi }

// Next returns the next chunk of at most chunk pairs (chunk must be
// positive), or nil once the interval is exhausted.
func (c *Cursor) Next(p *flock.Proc, chunk int) []KV {
	if c.done || chunk <= 0 {
		return nil
	}
	run := c.sc.Scan(p, c.next, c.hi, chunk)
	c.Advance(run, chunk)
	return run
}

// Advance moves the cursor past a chunk of size limit chunk obtained
// from scanning [Pos(), Hi()] — the bookkeeping half of Next, exposed
// for out-of-band chunk fetches. A short run means the interval is
// exhausted (Scan returns everything in range up to the limit).
func (c *Cursor) Advance(run []KV, chunk int) {
	if len(run) < chunk {
		c.done = true
		return
	}
	last := run[len(run)-1].Key
	if last >= c.hi {
		c.done = true
		return
	}
	c.next = last + 1
}

// Upserter is optionally implemented by sets that can apply an atomic
// upsert inside a single critical section: the key ends up present with
// value f(old, present) in one linearization point, with no transient
// absent window. It backs the KV layer's Put and ReadModifyWrite
// (internal/kv); sets without it fall back to a non-atomic
// delete-then-insert there.
//
// f must be pure: in lock-free mode the enclosing thunk may be re-run
// by helper threads, so f can be evaluated more than once and every
// evaluation must return the same result for the same inputs.
type Upserter interface {
	// Upsert stores f(old, present) under k, inserting if absent, and
	// returns the previous value and whether k was present.
	Upsert(p *flock.Proc, k uint64, f func(old uint64, present bool) uint64) (uint64, bool)
}
