// Package settest provides the shared correctness suite run against every
// set implementation in this repository (the seven Flock structures and
// the lock-free baselines), in both lock-free and blocking modes.
//
// The suite covers:
//   - sequential differential testing against a map model,
//   - property-based random programs (testing/quick),
//   - disjoint-partition concurrency (workers own disjoint key sets, so
//     the final state is exactly predictable despite structural
//     interference on shared nodes/parents),
//   - contended stress on a small hot range with residual-state checks,
//   - oversubscribed stress (workers >> GOMAXPROCS).
package settest

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	flock "flock/internal/core"
	"flock/internal/lincheck"
	"flock/internal/structures/set"
)

// Factory builds a fresh set instance bound to rt.
type Factory func(rt *flock.Runtime) set.Set

// Modes lists the runtime modes the suite exercises.
var Modes = []struct {
	Name     string
	Blocking bool
}{
	{"lockfree", false},
	{"blocking", true},
}

// Run executes the full suite against the factory. Structures that
// implement set.Upserter additionally get upsert model and upsert
// linearizability passes; structures that implement set.Scanner (the
// ordered structures) additionally get the scan conformance passes:
// sequential model scans, the sentinel-bounds pin, the limit-0 pin, the
// concurrent-mutation differential against a mutex-protected map, and
// scan linearizability (interval semantics) through lincheck.
// Structures that implement set.OptimisticReader / set.OptimisticScanner
// additionally get the optimistic-read conformance passes: sequential
// differentials of the unlogged arms against the model, a
// concurrent-mutation differential reading exclusively through the
// optimistic arms, and lincheck linearizability of optimistic reads
// racing logged mutators.
func Run(t *testing.T, f Factory) {
	t.Helper()
	probe, _ := newSet(f, false)
	_, upsertable := probe.(set.Upserter)
	_, scannable := probe.(set.Scanner)
	_, optFind := probe.(set.OptimisticReader)
	_, optScan := probe.(set.OptimisticScanner)
	for _, m := range Modes {
		t.Run(m.Name, func(t *testing.T) {
			t.Run("SequentialModel", func(t *testing.T) { sequentialModel(t, f, m.Blocking) })
			t.Run("QuickRandomProgram", func(t *testing.T) { quickRandom(t, f, m.Blocking) })
			t.Run("DisjointPartitions", func(t *testing.T) { disjointPartitions(t, f, m.Blocking) })
			t.Run("ContendedStress", func(t *testing.T) { contendedStress(t, f, m.Blocking) })
			t.Run("Oversubscribed", func(t *testing.T) { oversubscribed(t, f, m.Blocking) })
			t.Run("NodeGrowthSweep", func(t *testing.T) { nodeGrowth(t, f, m.Blocking) })
			t.Run("Linearizable", func(t *testing.T) { linearizable(t, f, m.Blocking, 0) })
			if !m.Blocking {
				// Descheduling injection exercises helping on every
				// code path; only meaningful in lock-free mode.
				t.Run("LinearizableWithStalls", func(t *testing.T) { linearizable(t, f, false, 25) })
			}
			if upsertable {
				t.Run("UpsertModel", func(t *testing.T) { upsertModel(t, f, m.Blocking) })
				t.Run("UpsertLinearizable", func(t *testing.T) { upsertLinearizable(t, f, m.Blocking) })
				t.Run("UpsertCounter", func(t *testing.T) { upsertCounter(t, f, m.Blocking) })
			}
			if scannable {
				t.Run("ScanModel", func(t *testing.T) { scanModel(t, f, m.Blocking) })
				t.Run("ScanSentinelBounds", func(t *testing.T) { scanSentinelBounds(t, f, m.Blocking) })
				t.Run("ScanLimitZero", func(t *testing.T) { scanLimitZero(t, f, m.Blocking) })
				t.Run("CursorEquivalence", func(t *testing.T) { cursorEquivalence(t, f, m.Blocking) })
				t.Run("ScanConcurrentDifferential", func(t *testing.T) { scanConcurrentDifferential(t, f, m.Blocking, false) })
				t.Run("ScanLinearizable", func(t *testing.T) { scanLinearizable(t, f, m.Blocking, false) })
			}
			if optFind {
				t.Run("OptimisticFindModel", func(t *testing.T) { optimisticFindModel(t, f, m.Blocking) })
				t.Run("OptimisticLinearizable", func(t *testing.T) { optimisticLinearizable(t, f, m.Blocking) })
			}
			if optScan {
				t.Run("OptimisticScanModel", func(t *testing.T) { optimisticScanModel(t, f, m.Blocking) })
				t.Run("OptimisticScanDifferential", func(t *testing.T) { scanConcurrentDifferential(t, f, m.Blocking, true) })
				t.Run("OptimisticScanLinearizable", func(t *testing.T) { scanLinearizable(t, f, m.Blocking, true) })
			}
		})
	}
}

func newSet(f Factory, blocking bool) (set.Set, *flock.Runtime) {
	rt := flock.New()
	rt.SetBlocking(blocking)
	return f(rt), rt
}

// sequentialModel drives one worker through a scripted mix and compares
// every return value and lookup against a map.
func sequentialModel(t *testing.T, f Factory, blocking bool) {
	s, rt := newSet(f, blocking)
	p := rt.Register()
	defer p.Unregister()
	model := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(42))

	const ops = 4000
	const keySpace = 200
	for i := 0; i < ops; i++ {
		k := uint64(rng.Intn(keySpace) + 1)
		switch rng.Intn(3) {
		case 0:
			v := rng.Uint64()
			_, had := model[k]
			got := s.Insert(p, k, v)
			if got == had {
				t.Fatalf("op %d: Insert(%d) = %v, model had=%v", i, k, got, had)
			}
			if !had {
				model[k] = v
			}
		case 1:
			_, had := model[k]
			got := s.Delete(p, k)
			if got != had {
				t.Fatalf("op %d: Delete(%d) = %v, model had=%v", i, k, got, had)
			}
			delete(model, k)
		case 2:
			want, had := model[k]
			v, got := s.Find(p, k)
			if got != had || (had && v != want) {
				t.Fatalf("op %d: Find(%d) = (%d,%v), model (%d,%v)", i, k, v, got, want, had)
			}
		}
	}
	// Full sweep at the end.
	for k := uint64(1); k <= keySpace; k++ {
		want, had := model[k]
		v, got := s.Find(p, k)
		if got != had || (had && v != want) {
			t.Fatalf("final sweep: Find(%d) = (%d,%v), model (%d,%v)", k, v, got, want, had)
		}
	}
}

// quickRandom uses testing/quick to generate random op sequences.
func quickRandom(t *testing.T, f Factory, blocking bool) {
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(7))}
	prop := func(ops []uint16) bool {
		if len(ops) > 300 {
			ops = ops[:300]
		}
		s, rt := newSet(f, blocking)
		p := rt.Register()
		defer p.Unregister()
		model := map[uint64]uint64{}
		for _, code := range ops {
			k := uint64(code%37) + 1
			switch (code >> 6) % 3 {
			case 0:
				_, had := model[k]
				if s.Insert(p, k, uint64(code)) == had {
					return false
				}
				if !had {
					model[k] = uint64(code)
				}
			case 1:
				_, had := model[k]
				if s.Delete(p, k) != had {
					return false
				}
				delete(model, k)
			case 2:
				want, had := model[k]
				v, got := s.Find(p, k)
				if got != had || (had && v != want) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// disjointPartitions: workers mutate disjoint key sets concurrently.
// Structural contention (shared parents, splits, merges, helping) is real,
// but each key's final state is exactly determined by its owner's script.
func disjointPartitions(t *testing.T, f Factory, blocking bool) {
	s, rt := newSet(f, blocking)
	const workers = 8
	const keysPer = 120
	const rounds = 4

	finals := make([]map[uint64]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := rt.Register()
			defer p.Unregister()
			rng := rand.New(rand.NewSource(int64(w) * 911))
			model := map[uint64]uint64{}
			// Worker w owns keys w+1, w+1+workers, w+1+2*workers, ...
			key := func(i int) uint64 { return uint64(w + 1 + i*workers) }
			for r := 0; r < rounds; r++ {
				for i := 0; i < keysPer; i++ {
					k := key(rng.Intn(keysPer))
					switch rng.Intn(3) {
					case 0:
						v := rng.Uint64()
						_, had := model[k]
						if s.Insert(p, k, v) == had {
							t.Errorf("w%d: Insert(%d) inconsistent with model", w, k)
							return
						}
						if !had {
							model[k] = v
						}
					case 1:
						_, had := model[k]
						if s.Delete(p, k) != had {
							t.Errorf("w%d: Delete(%d) inconsistent with model", w, k)
							return
						}
						delete(model, k)
					case 2:
						want, had := model[k]
						v, got := s.Find(p, k)
						if got != had || (had && v != want) {
							t.Errorf("w%d: Find(%d)=(%d,%v) model (%d,%v)", w, k, v, got, want, had)
							return
						}
					}
				}
			}
			finals[w] = model
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	p := rt.Register()
	defer p.Unregister()
	for w := 0; w < workers; w++ {
		for i := 0; i < keysPer; i++ {
			k := uint64(w + 1 + i*workers)
			want, had := finals[w][k]
			v, got := s.Find(p, k)
			if got != had || (had && v != want) {
				t.Fatalf("final: key %d (worker %d) = (%d,%v), want (%d,%v)", k, w, v, got, want, had)
			}
		}
	}
}

// contendedStress hammers a tiny hot key range from many workers and then
// verifies the surviving keys are exactly resolvable: every key either
// present with a value some worker wrote, or absent; and single-worker
// re-verification still behaves like a set.
func contendedStress(t *testing.T, f Factory, blocking bool) {
	s, rt := newSet(f, blocking)
	const workers = 8
	const hotKeys = 8
	const opsPer = 1500

	type tally struct{ ins, del [hotKeys + 1]int64 }
	tallies := make([]tally, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := rt.Register()
			defer p.Unregister()
			rng := rand.New(rand.NewSource(int64(w)*131 + 7))
			for i := 0; i < opsPer; i++ {
				k := uint64(rng.Intn(hotKeys) + 1)
				switch rng.Intn(3) {
				case 0:
					if s.Insert(p, k, uint64(w)+1) {
						tallies[w].ins[k]++
					}
				case 1:
					if s.Delete(p, k) {
						tallies[w].del[k]++
					}
				case 2:
					s.Find(p, k)
				}
			}
		}(w)
	}
	wg.Wait()

	// Set algebra: per key, successful inserts - successful deletes must be
	// 0 (absent) or 1 (present) — inserts fail when present, deletes fail
	// when absent, so the difference tracks presence exactly.
	p := rt.Register()
	defer p.Unregister()
	for k := uint64(1); k <= hotKeys; k++ {
		var ins, del int64
		for w := 0; w < workers; w++ {
			ins += tallies[w].ins[k]
			del += tallies[w].del[k]
		}
		diff := ins - del
		_, present := s.Find(p, k)
		switch diff {
		case 0:
			if present {
				t.Fatalf("key %d: ins-del=0 but present", k)
			}
		case 1:
			if !present {
				t.Fatalf("key %d: ins-del=1 but absent", k)
			}
		default:
			t.Fatalf("key %d: ins=%d del=%d (diff %d): set semantics violated", k, ins, del, diff)
		}
	}
	// The structure must still work after the storm.
	if !s.Insert(p, hotKeys+100, 5) {
		t.Fatalf("post-stress insert failed")
	}
	if v, ok := s.Find(p, hotKeys+100); !ok || v != 5 {
		t.Fatalf("post-stress find = (%d,%v)", v, ok)
	}
	if !s.Delete(p, hotKeys+100) {
		t.Fatalf("post-stress delete failed")
	}
}

// linearizable records a contended multi-worker history through the
// lincheck recorder and verifies a legal sequential witness exists —
// the direct form of the paper's correctness claim (Theorems 3.1/4.1
// compose to linearizability of the optimistic lock-based operations).
// stallEvery > 0 additionally forces descheduling inside critical
// sections so that most operations complete via helping.
func linearizable(t *testing.T, f Factory, blocking bool, stallEvery int) {
	s, rt := newSet(f, blocking)
	rt.SetStallInjection(stallEvery)
	const workers = 6
	const keys = 5
	opsPer := 250
	if stallEvery > 0 {
		opsPer = 80 // stalled blocking-free runs are slower; keep CI fast
	}
	rec := lincheck.NewRecorder(s, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := rec.Worker(w)
			p := rt.Register()
			defer p.Unregister()
			rng := rand.New(rand.NewSource(int64(w)*1543 + 11))
			for i := 0; i < opsPer; i++ {
				k := uint64(rng.Intn(keys) + 1)
				switch rng.Intn(3) {
				case 0:
					h.Insert(p, k, uint64(w)*1000+uint64(i))
				case 1:
					h.Delete(p, k)
				default:
					h.Find(p, k)
				}
			}
		}(w)
	}
	wg.Wait()
	hist := rec.History()
	if res := lincheck.Check(hist); !res.Ok {
		t.Fatalf("history of %d ops: %v", len(hist), res)
	}
}

// upsertModel drives one worker through a scripted mix of all four
// operations (including atomic upserts) and compares every return value
// against a map model.
func upsertModel(t *testing.T, f Factory, blocking bool) {
	s, rt := newSet(f, blocking)
	up := s.(set.Upserter)
	p := rt.Register()
	defer p.Unregister()
	model := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(19))

	const ops = 4000
	const keySpace = 150
	for i := 0; i < ops; i++ {
		k := uint64(rng.Intn(keySpace) + 1)
		switch rng.Intn(4) {
		case 0:
			v := rng.Uint64()
			_, had := model[k]
			if s.Insert(p, k, v) == had {
				t.Fatalf("op %d: Insert(%d) inconsistent", i, k)
			}
			if !had {
				model[k] = v
			}
		case 1:
			_, had := model[k]
			if s.Delete(p, k) != had {
				t.Fatalf("op %d: Delete(%d) inconsistent", i, k)
			}
			delete(model, k)
		case 2:
			want, had := model[k]
			v, got := s.Find(p, k)
			if got != had || (had && v != want) {
				t.Fatalf("op %d: Find(%d)=(%d,%v), model (%d,%v)", i, k, v, got, want, had)
			}
		case 3:
			delta := rng.Uint64()%1000 + 1
			want, had := model[k]
			old, present := up.Upsert(p, k, func(o uint64, _ bool) uint64 { return o + delta })
			if present != had || (had && old != want) {
				t.Fatalf("op %d: Upsert(%d)=(%d,%v), model (%d,%v)", i, k, old, present, want, had)
			}
			model[k] = want + delta
		}
	}
	for k := uint64(1); k <= keySpace; k++ {
		want, had := model[k]
		v, got := s.Find(p, k)
		if got != had || (had && v != want) {
			t.Fatalf("final sweep: Find(%d)=(%d,%v), model (%d,%v)", k, v, got, want, had)
		}
	}
}

// upsertLinearizable records contended histories mixing upserts with the
// set operations and checks them with lincheck.
func upsertLinearizable(t *testing.T, f Factory, blocking bool) {
	s, rt := newSet(f, blocking)
	const workers = 6
	const keys = 4
	const opsPer = 200
	rec := lincheck.NewRecorder(s, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := rec.Worker(w)
			p := rt.Register()
			defer p.Unregister()
			rng := rand.New(rand.NewSource(int64(w)*733 + 5))
			for i := 0; i < opsPer; i++ {
				k := uint64(rng.Intn(keys) + 1)
				switch rng.Intn(4) {
				case 0:
					h.Insert(p, k, uint64(w)*10000+uint64(i))
				case 1:
					h.Delete(p, k)
				case 2:
					h.Upsert(p, k, uint64(w)*10000+5000+uint64(i))
				default:
					h.Find(p, k)
				}
			}
		}(w)
	}
	wg.Wait()
	hist := rec.History()
	if res := lincheck.Check(hist); !res.Ok {
		t.Fatalf("history of %d ops: %v", len(hist), res)
	}
}

// upsertCounter is the classic atomicity test: every worker increments a
// few hot keys via Upsert; lost updates would make the final sums fall
// short of the recorded increment counts.
func upsertCounter(t *testing.T, f Factory, blocking bool) {
	s, rt := newSet(f, blocking)
	up := s.(set.Upserter)
	const workers = 8
	const keys = 3
	const opsPer = 800
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := rt.Register()
			defer p.Unregister()
			rng := rand.New(rand.NewSource(int64(w)*389 + 1))
			for i := 0; i < opsPer; i++ {
				k := uint64(rng.Intn(keys) + 1)
				up.Upsert(p, k, func(o uint64, _ bool) uint64 { return o + 1 })
			}
		}(w)
	}
	wg.Wait()
	p := rt.Register()
	defer p.Unregister()
	var total uint64
	for k := uint64(1); k <= keys; k++ {
		v, ok := s.Find(p, k)
		if !ok {
			t.Fatalf("hot key %d absent after increments", k)
		}
		total += v
	}
	if total != workers*opsPer {
		t.Fatalf("lost updates: counted %d increments, want %d", total, workers*opsPer)
	}
}

// expectedScan computes a model's answer to Scan(lo, hi, limit)
// (limit < 0 unbounded, 0 empty).
func expectedScan(model map[uint64]uint64, lo, hi uint64, limit int) []set.KV {
	if limit == 0 {
		return nil
	}
	clo, chi := set.ClampScanBounds(lo, hi)
	var out []set.KV
	for k, v := range model {
		if k >= clo && k <= chi {
			out = append(out, set.KV{Key: k, Value: v})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// scanModel drives one worker through inserts, deletes and scans with
// random bounds and limits, comparing every scan exactly against the
// map model (sequentially a scan must be an exact snapshot).
func scanModel(t *testing.T, f Factory, blocking bool) {
	s, rt := newSet(f, blocking)
	sc := s.(set.Scanner)
	p := rt.Register()
	defer p.Unregister()
	model := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(23))

	const ops = 3000
	const keySpace = 160
	for i := 0; i < ops; i++ {
		switch rng.Intn(5) {
		case 0, 1:
			k := uint64(rng.Intn(keySpace) + 1)
			v := rng.Uint64()
			if _, had := model[k]; !had {
				model[k] = v
			}
			s.Insert(p, k, v)
		case 2:
			k := uint64(rng.Intn(keySpace) + 1)
			s.Delete(p, k)
			delete(model, k)
		default:
			lo := uint64(rng.Intn(keySpace + 1))
			hi := lo + uint64(rng.Intn(keySpace))
			if rng.Intn(8) == 0 {
				lo, hi = 0, math.MaxUint64 // open-interval sentinels
			}
			limit := -1
			if rng.Intn(2) == 0 {
				limit = rng.Intn(12) + 1
			}
			got := sc.Scan(p, lo, hi, limit)
			want := expectedScan(model, lo, hi, limit)
			if len(got) != len(want) {
				t.Fatalf("op %d: Scan(%d,%d,%d) = %d pairs, want %d", i, lo, hi, limit, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("op %d: Scan(%d,%d,%d)[%d] = %v, want %v", i, lo, hi, limit, j, got[j], want[j])
				}
			}
		}
	}
}

// scanSentinelBounds pins the open-interval sentinel contract
// (set.ClampScanBounds): bounds 0 and MaxUint64 mean "everything", keys
// at the extreme ends of the shared key space are reachable, and no
// structure-internal sentinel key ever leaks into a result.
func scanSentinelBounds(t *testing.T, f Factory, blocking bool) {
	s, rt := newSet(f, blocking)
	sc := s.(set.Scanner)
	p := rt.Register()
	defer p.Unregister()
	// MaxUint64-2 is the largest key every structure accepts (leaftree
	// additionally reserves MaxUint64-1 as its inf1 sentinel).
	maxKey := uint64(math.MaxUint64 - 2)
	for _, k := range []uint64{1, 5, maxKey} {
		if !s.Insert(p, k, k+100) {
			t.Fatalf("Insert(%d) failed", k)
		}
	}
	check := func(lo, hi uint64, limit int, want ...uint64) {
		t.Helper()
		got := sc.Scan(p, lo, hi, limit)
		if len(got) != len(want) {
			t.Fatalf("Scan(%d,%d,%d) = %v, want keys %v", lo, hi, limit, got, want)
		}
		for i, kv := range got {
			if kv.Key != want[i] || kv.Value != want[i]+100 {
				t.Fatalf("Scan(%d,%d,%d)[%d] = %v, want key %d", lo, hi, limit, i, kv, want[i])
			}
		}
	}
	check(0, math.MaxUint64, -1, 1, 5, maxKey) // fully open
	check(1, math.MaxUint64-1, -1, 1, 5, maxKey)
	check(0, 4, -1, 1)                   // open below only
	check(6, math.MaxUint64, -1, maxKey) // open above only
	check(maxKey, maxKey, -1, maxKey)
	check(2, 4, -1)
	check(0, math.MaxUint64, 2, 1, 5) // limit truncation
	check(0, 0, -1)                   // hi 0 is not a sentinel: [1, 0] is empty
}

// cursorEquivalence pins set.Cursor's resumption contract: with no
// concurrent mutation, chunked iteration at any chunk size — including
// 1, sizes that straddle the population, and sizes larger than it —
// reassembles exactly the one-shot Scan over the same interval, for
// both full-range sentinels and random sub-intervals, and the cursor
// reports Done with no trailing chunk.
func cursorEquivalence(t *testing.T, f Factory, blocking bool) {
	s, rt := newSet(f, blocking)
	sc := s.(set.Scanner)
	p := rt.Register()
	defer p.Unregister()
	rng := rand.New(rand.NewSource(77))
	model := map[uint64]uint64{}
	const keySpace = 300
	for i := 0; i < 180; i++ {
		k := uint64(rng.Intn(keySpace) + 1)
		v := rng.Uint64()
		if _, had := model[k]; !had && s.Insert(p, k, v) {
			model[k] = v
		}
	}
	intervals := [][2]uint64{
		{0, math.MaxUint64}, // open sentinels
		{1, keySpace},
		{keySpace / 4, keySpace / 2},
		{keySpace + 1, 2 * keySpace}, // empty tail
	}
	for i := 0; i < 4; i++ {
		lo := uint64(rng.Intn(keySpace + 1))
		intervals = append(intervals, [2]uint64{lo, lo + uint64(rng.Intn(keySpace))})
	}
	for _, iv := range intervals {
		want := sc.Scan(p, iv[0], iv[1], -1)
		for _, chunk := range []int{1, 3, 7, len(want), len(want) + 1, 64} {
			if chunk <= 0 {
				continue
			}
			cur := set.NewCursor(sc, iv[0], iv[1])
			var got []set.KV
			for !cur.Done() {
				run := cur.Next(p, chunk)
				if len(run) > chunk {
					t.Fatalf("cursor [%d,%d] chunk %d: run of %d pairs", iv[0], iv[1], chunk, len(run))
				}
				got = append(got, run...)
			}
			if cur.Next(p, chunk) != nil {
				t.Fatalf("cursor [%d,%d] chunk %d: Next after Done returned pairs", iv[0], iv[1], chunk)
			}
			if len(got) != len(want) {
				t.Fatalf("cursor [%d,%d] chunk %d: %d pairs, one-shot scan %d", iv[0], iv[1], chunk, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("cursor [%d,%d] chunk %d: pair %d = %v, want %v", iv[0], iv[1], chunk, j, got[j], want[j])
				}
			}
		}
	}
}

// scanLimitZero pins the limit-0 contract across every Scanner: a
// limit-0 scan returns the empty result — no pairs, no panic — for any
// bounds, including the open-interval sentinels, on both an empty and a
// populated structure. (limit < 0 is the unbounded spelling; 0 used to
// mean unbounded and this pass keeps the migration honest.)
func scanLimitZero(t *testing.T, f Factory, blocking bool) {
	s, rt := newSet(f, blocking)
	sc := s.(set.Scanner)
	p := rt.Register()
	defer p.Unregister()
	bounds := [][2]uint64{
		{0, math.MaxUint64}, // fully open
		{1, 100},
		{0, 50},
		{50, math.MaxUint64},
		{7, 7},
		{10, 3}, // empty interval
	}
	checkEmpty := func(stage string) {
		t.Helper()
		for _, b := range bounds {
			if got := sc.Scan(p, b[0], b[1], 0); len(got) != 0 {
				t.Fatalf("%s: Scan(%d,%d,0) = %v, want empty", stage, b[0], b[1], got)
			}
		}
	}
	checkEmpty("empty structure")
	for k := uint64(1); k <= 64; k++ {
		s.Insert(p, k, k*3)
	}
	checkEmpty("populated structure")
	// limit 0 is not sticky: the same structure still scans normally.
	if got := sc.Scan(p, 0, math.MaxUint64, -1); len(got) != 64 {
		t.Fatalf("unbounded scan after limit-0 scans: %d pairs, want 64", len(got))
	}
	if osc, ok := s.(set.OptimisticScanner); ok {
		for _, b := range bounds {
			if got := osc.OptimisticScan(p, b[0], b[1], 0); len(got) != 0 {
				t.Fatalf("OptimisticScan(%d,%d,0) = %v, want empty", b[0], b[1], got)
			}
		}
	}
}

// scanConcurrentDifferential is the concurrent-mutation differential:
// even keys are stable (inserted once, never touched again), odd keys
// are mutated by their owning workers, and every mutation is mirrored
// into a mutex-protected model map. Scans running throughout must be
// sorted, bounded, limited, exact on stable keys and plausible on
// volatile keys; the final full scan must equal the model exactly.
// With optimistic set, the scanner goroutines read exclusively through
// the structure's unlogged OptimisticScan arm, so the same interval
// guarantees are enforced on the optimistic path under real mutation.
func scanConcurrentDifferential(t *testing.T, f Factory, blocking bool, optimistic bool) {
	s, rt := newSet(f, blocking)
	sc := s.(set.Scanner)
	scan := sc.Scan
	if optimistic {
		scan = s.(set.OptimisticScanner).OptimisticScan
	}
	const workers = 6
	const keySpace = 192 // keys 1..keySpace; even = stable, odd = volatile
	opsPer := 1200
	if testing.Short() {
		opsPer = 300
	}

	var mu sync.Mutex
	model := map[uint64]uint64{}

	{
		p := rt.Register()
		for k := uint64(2); k <= keySpace; k += 2 {
			s.Insert(p, k, k) // stable value: the key itself
			model[k] = k
		}
		p.Unregister()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := rt.Register()
			defer p.Unregister()
			rng := rand.New(rand.NewSource(int64(w)*607 + 13))
			for i := 0; i < opsPer; i++ {
				// Worker w owns odd keys with (k/2) % workers == w.
				k := uint64(2*(w+workers*rng.Intn(keySpace/(2*workers))) + 1)
				if rng.Intn(2) == 0 {
					v := k | uint64(rng.Intn(1<<16)+1)<<32 // low 32 bits name the key
					if s.Insert(p, k, v) {
						mu.Lock()
						model[k] = v
						mu.Unlock()
					}
				} else {
					if s.Delete(p, k) {
						mu.Lock()
						delete(model, k)
						mu.Unlock()
					}
				}
			}
		}(w)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	// Scanners run until the mutators finish, checking the weak
	// (interval-semantics) properties that hold mid-flight.
	var scanErr error
	var scanMu sync.Mutex
	fail := func(format string, args ...any) {
		scanMu.Lock()
		if scanErr == nil {
			scanErr = fmt.Errorf(format, args...)
		}
		scanMu.Unlock()
	}
	var swg sync.WaitGroup
	for g := 0; g < 2; g++ {
		swg.Add(1)
		go func(g int) {
			defer swg.Done()
			p := rt.Register()
			defer p.Unregister()
			rng := rand.New(rand.NewSource(int64(g)*991 + 3))
			for {
				select {
				case <-done:
					return
				default:
				}
				lo := uint64(rng.Intn(keySpace)) + 1
				hi := lo + uint64(rng.Intn(keySpace))
				limit := -1
				if rng.Intn(3) == 0 {
					limit = rng.Intn(24) + 1
				}
				got := scan(p, lo, hi, limit)
				if limit > 0 && len(got) > limit {
					fail("scan over limit: %d > %d", len(got), limit)
					return
				}
				prev := uint64(0)
				for _, kv := range got {
					if kv.Key < lo || kv.Key > hi {
						fail("scan [%d,%d] returned key %d", lo, hi, kv.Key)
						return
					}
					if kv.Key <= prev {
						fail("scan result unsorted at %d", kv.Key)
						return
					}
					prev = kv.Key
					if kv.Key > keySpace {
						fail("scan invented key %d", kv.Key)
						return
					}
					if kv.Key%2 == 0 {
						if kv.Value != kv.Key {
							fail("stable key %d has value %d", kv.Key, kv.Value)
							return
						}
					} else if kv.Value&0xffffffff != kv.Key || kv.Value>>32 == 0 {
						fail("volatile key %d has implausible value %#x", kv.Key, kv.Value)
						return
					}
				}
				// Stable keys are never mutated: every one in the scanned
				// (possibly limit-truncated) interval must appear.
				effHi := hi
				if limit > 0 && len(got) == limit {
					effHi = got[len(got)-1].Key
				}
				seen := map[uint64]bool{}
				for _, kv := range got {
					seen[kv.Key] = true
				}
				for k := lo + (lo % 2); k <= effHi && k <= keySpace; k += 2 {
					if !seen[k] {
						fail("scan [%d,%d] limit %d missed stable key %d", lo, hi, limit, k)
						return
					}
				}
			}
		}(g)
	}
	swg.Wait()
	if scanErr != nil {
		t.Fatal(scanErr)
	}

	// Quiesced: the final full scan must equal the model exactly.
	p := rt.Register()
	defer p.Unregister()
	got := scan(p, 0, math.MaxUint64, -1)
	want := expectedScan(model, 0, math.MaxUint64, -1)
	if len(got) != len(want) {
		t.Fatalf("final scan: %d pairs, model has %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("final scan[%d] = %v, model %v", i, got[i], want[i])
		}
	}
}

// scanLinearizable records contended histories mixing scans with
// inserts and deletes and checks them with lincheck's interval-snapshot
// Scan semantics. With optimistic set, the scan fraction of the history
// runs through the structure's unlogged OptimisticScan arm instead —
// validated optimistic scans must satisfy the same interval semantics.
func scanLinearizable(t *testing.T, f Factory, blocking bool, optimistic bool) {
	s, rt := newSet(f, blocking)
	const workers = 6
	const keys = 6
	opsPer := 200
	if testing.Short() {
		opsPer = 80
	}
	rec := lincheck.NewRecorder(s, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := rec.Worker(w)
			p := rt.Register()
			defer p.Unregister()
			rng := rand.New(rand.NewSource(int64(w)*1201 + 17))
			scan := h.Scan
			if optimistic {
				scan = h.ScanOptimistic
			}
			for i := 0; i < opsPer; i++ {
				k := uint64(rng.Intn(keys) + 1)
				switch rng.Intn(5) {
				case 0:
					h.Insert(p, k, uint64(w)*100000+uint64(i))
				case 1:
					h.Delete(p, k)
				case 2:
					h.Find(p, k)
				case 3:
					lo := uint64(rng.Intn(keys)) + 1
					hi := lo + uint64(rng.Intn(keys))
					limit := -1
					if rng.Intn(3) == 0 {
						limit = rng.Intn(keys) + 1
					}
					scan(p, lo, hi, limit)
				default:
					scan(p, 0, math.MaxUint64, -1)
				}
			}
		}(w)
	}
	wg.Wait()
	hist := rec.History()
	if res := lincheck.Check(hist); !res.Ok {
		t.Fatalf("history of %d ops: %v", len(hist), res)
	}
}

// optimisticFindModel is the sequential differential for the unlogged
// read arm: a scripted mix of inserts, deletes, logged finds and
// optimistic finds, with every optimistic result compared against the
// model AND against the logged Find — sequentially the two arms must be
// indistinguishable.
func optimisticFindModel(t *testing.T, f Factory, blocking bool) {
	s, rt := newSet(f, blocking)
	or := s.(set.OptimisticReader)
	p := rt.Register()
	defer p.Unregister()
	model := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(71))

	const ops = 4000
	const keySpace = 180
	for i := 0; i < ops; i++ {
		k := uint64(rng.Intn(keySpace) + 1)
		switch rng.Intn(4) {
		case 0:
			v := rng.Uint64()
			if _, had := model[k]; !had {
				model[k] = v
			}
			s.Insert(p, k, v)
		case 1:
			s.Delete(p, k)
			delete(model, k)
		case 2:
			want, had := model[k]
			v, got := s.Find(p, k)
			if got != had || (had && v != want) {
				t.Fatalf("op %d: Find(%d)=(%d,%v), model (%d,%v)", i, k, v, got, want, had)
			}
		default:
			want, had := model[k]
			v, got := or.OptimisticFind(p, k)
			if got != had || (had && v != want) {
				t.Fatalf("op %d: OptimisticFind(%d)=(%d,%v), model (%d,%v)", i, k, v, got, want, had)
			}
			lv, lok := s.Find(p, k)
			if got != lok || (got && v != lv) {
				t.Fatalf("op %d: OptimisticFind(%d)=(%d,%v) disagrees with Find (%d,%v)", i, k, v, got, lv, lok)
			}
		}
	}
}

// optimisticScanModel is the sequential differential for the unlogged
// scan arm, mirroring scanModel through OptimisticScan.
func optimisticScanModel(t *testing.T, f Factory, blocking bool) {
	s, rt := newSet(f, blocking)
	osc := s.(set.OptimisticScanner)
	p := rt.Register()
	defer p.Unregister()
	model := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(83))

	const ops = 2500
	const keySpace = 140
	for i := 0; i < ops; i++ {
		switch rng.Intn(5) {
		case 0, 1:
			k := uint64(rng.Intn(keySpace) + 1)
			v := rng.Uint64()
			if _, had := model[k]; !had {
				model[k] = v
			}
			s.Insert(p, k, v)
		case 2:
			k := uint64(rng.Intn(keySpace) + 1)
			s.Delete(p, k)
			delete(model, k)
		default:
			lo := uint64(rng.Intn(keySpace + 1))
			hi := lo + uint64(rng.Intn(keySpace))
			if rng.Intn(8) == 0 {
				lo, hi = 0, math.MaxUint64
			}
			limit := -1
			if rng.Intn(2) == 0 {
				limit = rng.Intn(12) + 1
			}
			got := osc.OptimisticScan(p, lo, hi, limit)
			want := expectedScan(model, lo, hi, limit)
			if len(got) != len(want) {
				t.Fatalf("op %d: OptimisticScan(%d,%d,%d) = %d pairs, want %d", i, lo, hi, limit, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("op %d: OptimisticScan(%d,%d,%d)[%d] = %v, want %v", i, lo, hi, limit, j, got[j], want[j])
				}
			}
		}
	}
}

// optimisticLinearizable records contended histories where half the
// reads go through the unlogged OptimisticFind arm while logged
// inserts, deletes and finds race them, and checks the combined history
// with lincheck: a validated optimistic read must be linearizable
// exactly like a logged one.
func optimisticLinearizable(t *testing.T, f Factory, blocking bool) {
	s, rt := newSet(f, blocking)
	const workers = 6
	const keys = 5
	const opsPer = 250
	rec := lincheck.NewRecorder(s, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := rec.Worker(w)
			p := rt.Register()
			defer p.Unregister()
			rng := rand.New(rand.NewSource(int64(w)*2111 + 29))
			for i := 0; i < opsPer; i++ {
				k := uint64(rng.Intn(keys) + 1)
				switch rng.Intn(4) {
				case 0:
					h.Insert(p, k, uint64(w)*1000+uint64(i))
				case 1:
					h.Delete(p, k)
				case 2:
					h.Find(p, k)
				default:
					h.FindOptimistic(p, k)
				}
			}
		}(w)
	}
	wg.Wait()
	hist := rec.History()
	if res := lincheck.Check(hist); !res.Ok {
		t.Fatalf("history of %d ops: %v", len(hist), res)
	}
}

// nodeGrowth drives dense byte-level fanout so radix structures walk the
// whole node-kind ladder (ART: Node4 -> Node16 -> Node48 -> Node256 on
// the way up, and back down on deletion) while readers race the
// transitions. Keys are branch<<56 | j, so each distinct top byte is a
// distinct child of the root node; workers own disjoint branch sets,
// making the final state exactly predictable. Non-radix structures just
// see a skewed key distribution, which is harmless.
func nodeGrowth(t *testing.T, f Factory, blocking bool) {
	s, rt := newSet(f, blocking)
	branches := 256
	if testing.Short() {
		branches = 72 // still crosses the 48->256 growth threshold
	}
	const workers = 4
	const perBranch = 3
	key := func(b, j int) uint64 { return uint64(b)<<56 | uint64(j) }

	// Phase 1: concurrent inserts across all branches, with a racing
	// reader sweeping the key space while nodes grow underneath it.
	done := make(chan struct{})
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		p := rt.Register()
		defer p.Unregister()
		for {
			select {
			case <-done:
				return
			default:
			}
			for b := 0; b < branches; b++ {
				if v, ok := s.Find(p, key(b, 1)); ok && v != key(b, 1)+1 {
					t.Errorf("reader: key %#x has value %#x", key(b, 1), v)
					return
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := rt.Register()
			defer p.Unregister()
			for b := w; b < branches; b += workers {
				for j := 1; j <= perBranch; j++ {
					if !s.Insert(p, key(b, j), key(b, j)+1) {
						t.Errorf("w%d: Insert(%#x) failed", w, key(b, j))
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(done)
	rwg.Wait()
	if t.Failed() {
		return
	}

	p := rt.Register()
	defer p.Unregister()
	for b := 0; b < branches; b++ {
		for j := 1; j <= perBranch; j++ {
			if v, ok := s.Find(p, key(b, j)); !ok || v != key(b, j)+1 {
				t.Fatalf("after growth: Find(%#x) = (%#x,%v)", key(b, j), v, ok)
			}
		}
	}

	// Phase 2: concurrent deletes of all but two branches walk the
	// shrink ladder back down (256 -> 48 -> 16 -> 4).
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := rt.Register()
			defer p.Unregister()
			for b := w; b < branches; b += workers {
				if b < 2 {
					continue // survivors
				}
				for j := 1; j <= perBranch; j++ {
					if !s.Delete(p, key(b, j)) {
						t.Errorf("w%d: Delete(%#x) failed", w, key(b, j))
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for b := 0; b < branches; b++ {
		for j := 1; j <= perBranch; j++ {
			v, ok := s.Find(p, key(b, j))
			if b < 2 {
				if !ok || v != key(b, j)+1 {
					t.Fatalf("survivor Find(%#x) = (%#x,%v)", key(b, j), v, ok)
				}
			} else if ok {
				t.Fatalf("deleted key %#x still present", key(b, j))
			}
		}
	}
	// The shrunken structure still accepts writes.
	if !s.Insert(p, key(9, 1), 77) {
		t.Fatalf("post-shrink insert failed")
	}
	if !s.Delete(p, key(9, 1)) {
		t.Fatalf("post-shrink delete failed")
	}
}

// oversubscribed runs many more workers than GOMAXPROCS through a mixed
// workload; in lock-free mode preempted critical sections get helped. The
// assertion is the same set-algebra check as contendedStress.
func oversubscribed(t *testing.T, f Factory, blocking bool) {
	s, rt := newSet(f, blocking)
	const workers = 24
	const keys = 32
	const opsPer = 400

	type tally struct{ ins, del [keys + 1]int64 }
	tallies := make([]tally, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := rt.Register()
			defer p.Unregister()
			rng := rand.New(rand.NewSource(int64(w)*977 + 3))
			for i := 0; i < opsPer; i++ {
				k := uint64(rng.Intn(keys) + 1)
				if rng.Intn(2) == 0 {
					if s.Insert(p, k, uint64(w+1)) {
						tallies[w].ins[k]++
					}
				} else {
					if s.Delete(p, k) {
						tallies[w].del[k]++
					}
				}
			}
		}(w)
	}
	wg.Wait()

	p := rt.Register()
	defer p.Unregister()
	for k := uint64(1); k <= keys; k++ {
		var ins, del int64
		for w := 0; w < workers; w++ {
			ins += tallies[w].ins[k]
			del += tallies[w].del[k]
		}
		_, present := s.Find(p, k)
		diff := ins - del
		if diff != 0 && diff != 1 {
			t.Fatalf("key %d: ins=%d del=%d", k, ins, del)
		}
		if (diff == 1) != present {
			t.Fatalf("key %d: diff=%d present=%v", k, diff, present)
		}
	}
}
