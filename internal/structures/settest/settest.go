// Package settest provides the shared correctness suite run against every
// set implementation in this repository (the seven Flock structures and
// the lock-free baselines), in both lock-free and blocking modes.
//
// The suite covers:
//   - sequential differential testing against a map model,
//   - property-based random programs (testing/quick),
//   - disjoint-partition concurrency (workers own disjoint key sets, so
//     the final state is exactly predictable despite structural
//     interference on shared nodes/parents),
//   - contended stress on a small hot range with residual-state checks,
//   - oversubscribed stress (workers >> GOMAXPROCS).
package settest

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	flock "flock/internal/core"
	"flock/internal/lincheck"
	"flock/internal/structures/set"
)

// Factory builds a fresh set instance bound to rt.
type Factory func(rt *flock.Runtime) set.Set

// Modes lists the runtime modes the suite exercises.
var Modes = []struct {
	Name     string
	Blocking bool
}{
	{"lockfree", false},
	{"blocking", true},
}

// Run executes the full suite against the factory. Structures that
// implement set.Upserter additionally get upsert model and upsert
// linearizability passes.
func Run(t *testing.T, f Factory) {
	t.Helper()
	probe, _ := newSet(f, false)
	_, upsertable := probe.(set.Upserter)
	for _, m := range Modes {
		t.Run(m.Name, func(t *testing.T) {
			t.Run("SequentialModel", func(t *testing.T) { sequentialModel(t, f, m.Blocking) })
			t.Run("QuickRandomProgram", func(t *testing.T) { quickRandom(t, f, m.Blocking) })
			t.Run("DisjointPartitions", func(t *testing.T) { disjointPartitions(t, f, m.Blocking) })
			t.Run("ContendedStress", func(t *testing.T) { contendedStress(t, f, m.Blocking) })
			t.Run("Oversubscribed", func(t *testing.T) { oversubscribed(t, f, m.Blocking) })
			t.Run("Linearizable", func(t *testing.T) { linearizable(t, f, m.Blocking, 0) })
			if !m.Blocking {
				// Descheduling injection exercises helping on every
				// code path; only meaningful in lock-free mode.
				t.Run("LinearizableWithStalls", func(t *testing.T) { linearizable(t, f, false, 25) })
			}
			if upsertable {
				t.Run("UpsertModel", func(t *testing.T) { upsertModel(t, f, m.Blocking) })
				t.Run("UpsertLinearizable", func(t *testing.T) { upsertLinearizable(t, f, m.Blocking) })
				t.Run("UpsertCounter", func(t *testing.T) { upsertCounter(t, f, m.Blocking) })
			}
		})
	}
}

func newSet(f Factory, blocking bool) (set.Set, *flock.Runtime) {
	rt := flock.New()
	rt.SetBlocking(blocking)
	return f(rt), rt
}

// sequentialModel drives one worker through a scripted mix and compares
// every return value and lookup against a map.
func sequentialModel(t *testing.T, f Factory, blocking bool) {
	s, rt := newSet(f, blocking)
	p := rt.Register()
	defer p.Unregister()
	model := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(42))

	const ops = 4000
	const keySpace = 200
	for i := 0; i < ops; i++ {
		k := uint64(rng.Intn(keySpace) + 1)
		switch rng.Intn(3) {
		case 0:
			v := rng.Uint64()
			_, had := model[k]
			got := s.Insert(p, k, v)
			if got == had {
				t.Fatalf("op %d: Insert(%d) = %v, model had=%v", i, k, got, had)
			}
			if !had {
				model[k] = v
			}
		case 1:
			_, had := model[k]
			got := s.Delete(p, k)
			if got != had {
				t.Fatalf("op %d: Delete(%d) = %v, model had=%v", i, k, got, had)
			}
			delete(model, k)
		case 2:
			want, had := model[k]
			v, got := s.Find(p, k)
			if got != had || (had && v != want) {
				t.Fatalf("op %d: Find(%d) = (%d,%v), model (%d,%v)", i, k, v, got, want, had)
			}
		}
	}
	// Full sweep at the end.
	for k := uint64(1); k <= keySpace; k++ {
		want, had := model[k]
		v, got := s.Find(p, k)
		if got != had || (had && v != want) {
			t.Fatalf("final sweep: Find(%d) = (%d,%v), model (%d,%v)", k, v, got, want, had)
		}
	}
}

// quickRandom uses testing/quick to generate random op sequences.
func quickRandom(t *testing.T, f Factory, blocking bool) {
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(7))}
	prop := func(ops []uint16) bool {
		if len(ops) > 300 {
			ops = ops[:300]
		}
		s, rt := newSet(f, blocking)
		p := rt.Register()
		defer p.Unregister()
		model := map[uint64]uint64{}
		for _, code := range ops {
			k := uint64(code%37) + 1
			switch (code >> 6) % 3 {
			case 0:
				_, had := model[k]
				if s.Insert(p, k, uint64(code)) == had {
					return false
				}
				if !had {
					model[k] = uint64(code)
				}
			case 1:
				_, had := model[k]
				if s.Delete(p, k) != had {
					return false
				}
				delete(model, k)
			case 2:
				want, had := model[k]
				v, got := s.Find(p, k)
				if got != had || (had && v != want) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// disjointPartitions: workers mutate disjoint key sets concurrently.
// Structural contention (shared parents, splits, merges, helping) is real,
// but each key's final state is exactly determined by its owner's script.
func disjointPartitions(t *testing.T, f Factory, blocking bool) {
	s, rt := newSet(f, blocking)
	const workers = 8
	const keysPer = 120
	const rounds = 4

	finals := make([]map[uint64]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := rt.Register()
			defer p.Unregister()
			rng := rand.New(rand.NewSource(int64(w) * 911))
			model := map[uint64]uint64{}
			// Worker w owns keys w+1, w+1+workers, w+1+2*workers, ...
			key := func(i int) uint64 { return uint64(w + 1 + i*workers) }
			for r := 0; r < rounds; r++ {
				for i := 0; i < keysPer; i++ {
					k := key(rng.Intn(keysPer))
					switch rng.Intn(3) {
					case 0:
						v := rng.Uint64()
						_, had := model[k]
						if s.Insert(p, k, v) == had {
							t.Errorf("w%d: Insert(%d) inconsistent with model", w, k)
							return
						}
						if !had {
							model[k] = v
						}
					case 1:
						_, had := model[k]
						if s.Delete(p, k) != had {
							t.Errorf("w%d: Delete(%d) inconsistent with model", w, k)
							return
						}
						delete(model, k)
					case 2:
						want, had := model[k]
						v, got := s.Find(p, k)
						if got != had || (had && v != want) {
							t.Errorf("w%d: Find(%d)=(%d,%v) model (%d,%v)", w, k, v, got, want, had)
							return
						}
					}
				}
			}
			finals[w] = model
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	p := rt.Register()
	defer p.Unregister()
	for w := 0; w < workers; w++ {
		for i := 0; i < keysPer; i++ {
			k := uint64(w + 1 + i*workers)
			want, had := finals[w][k]
			v, got := s.Find(p, k)
			if got != had || (had && v != want) {
				t.Fatalf("final: key %d (worker %d) = (%d,%v), want (%d,%v)", k, w, v, got, want, had)
			}
		}
	}
}

// contendedStress hammers a tiny hot key range from many workers and then
// verifies the surviving keys are exactly resolvable: every key either
// present with a value some worker wrote, or absent; and single-worker
// re-verification still behaves like a set.
func contendedStress(t *testing.T, f Factory, blocking bool) {
	s, rt := newSet(f, blocking)
	const workers = 8
	const hotKeys = 8
	const opsPer = 1500

	type tally struct{ ins, del [hotKeys + 1]int64 }
	tallies := make([]tally, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := rt.Register()
			defer p.Unregister()
			rng := rand.New(rand.NewSource(int64(w)*131 + 7))
			for i := 0; i < opsPer; i++ {
				k := uint64(rng.Intn(hotKeys) + 1)
				switch rng.Intn(3) {
				case 0:
					if s.Insert(p, k, uint64(w)+1) {
						tallies[w].ins[k]++
					}
				case 1:
					if s.Delete(p, k) {
						tallies[w].del[k]++
					}
				case 2:
					s.Find(p, k)
				}
			}
		}(w)
	}
	wg.Wait()

	// Set algebra: per key, successful inserts - successful deletes must be
	// 0 (absent) or 1 (present) — inserts fail when present, deletes fail
	// when absent, so the difference tracks presence exactly.
	p := rt.Register()
	defer p.Unregister()
	for k := uint64(1); k <= hotKeys; k++ {
		var ins, del int64
		for w := 0; w < workers; w++ {
			ins += tallies[w].ins[k]
			del += tallies[w].del[k]
		}
		diff := ins - del
		_, present := s.Find(p, k)
		switch diff {
		case 0:
			if present {
				t.Fatalf("key %d: ins-del=0 but present", k)
			}
		case 1:
			if !present {
				t.Fatalf("key %d: ins-del=1 but absent", k)
			}
		default:
			t.Fatalf("key %d: ins=%d del=%d (diff %d): set semantics violated", k, ins, del, diff)
		}
	}
	// The structure must still work after the storm.
	if !s.Insert(p, hotKeys+100, 5) {
		t.Fatalf("post-stress insert failed")
	}
	if v, ok := s.Find(p, hotKeys+100); !ok || v != 5 {
		t.Fatalf("post-stress find = (%d,%v)", v, ok)
	}
	if !s.Delete(p, hotKeys+100) {
		t.Fatalf("post-stress delete failed")
	}
}

// linearizable records a contended multi-worker history through the
// lincheck recorder and verifies a legal sequential witness exists —
// the direct form of the paper's correctness claim (Theorems 3.1/4.1
// compose to linearizability of the optimistic lock-based operations).
// stallEvery > 0 additionally forces descheduling inside critical
// sections so that most operations complete via helping.
func linearizable(t *testing.T, f Factory, blocking bool, stallEvery int) {
	s, rt := newSet(f, blocking)
	rt.SetStallInjection(stallEvery)
	const workers = 6
	const keys = 5
	opsPer := 250
	if stallEvery > 0 {
		opsPer = 80 // stalled blocking-free runs are slower; keep CI fast
	}
	rec := lincheck.NewRecorder(s, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := rec.Worker(w)
			p := rt.Register()
			defer p.Unregister()
			rng := rand.New(rand.NewSource(int64(w)*1543 + 11))
			for i := 0; i < opsPer; i++ {
				k := uint64(rng.Intn(keys) + 1)
				switch rng.Intn(3) {
				case 0:
					h.Insert(p, k, uint64(w)*1000+uint64(i))
				case 1:
					h.Delete(p, k)
				default:
					h.Find(p, k)
				}
			}
		}(w)
	}
	wg.Wait()
	hist := rec.History()
	if res := lincheck.Check(hist); !res.Ok {
		t.Fatalf("history of %d ops: %v", len(hist), res)
	}
}

// upsertModel drives one worker through a scripted mix of all four
// operations (including atomic upserts) and compares every return value
// against a map model.
func upsertModel(t *testing.T, f Factory, blocking bool) {
	s, rt := newSet(f, blocking)
	up := s.(set.Upserter)
	p := rt.Register()
	defer p.Unregister()
	model := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(19))

	const ops = 4000
	const keySpace = 150
	for i := 0; i < ops; i++ {
		k := uint64(rng.Intn(keySpace) + 1)
		switch rng.Intn(4) {
		case 0:
			v := rng.Uint64()
			_, had := model[k]
			if s.Insert(p, k, v) == had {
				t.Fatalf("op %d: Insert(%d) inconsistent", i, k)
			}
			if !had {
				model[k] = v
			}
		case 1:
			_, had := model[k]
			if s.Delete(p, k) != had {
				t.Fatalf("op %d: Delete(%d) inconsistent", i, k)
			}
			delete(model, k)
		case 2:
			want, had := model[k]
			v, got := s.Find(p, k)
			if got != had || (had && v != want) {
				t.Fatalf("op %d: Find(%d)=(%d,%v), model (%d,%v)", i, k, v, got, want, had)
			}
		case 3:
			delta := rng.Uint64()%1000 + 1
			want, had := model[k]
			old, present := up.Upsert(p, k, func(o uint64, _ bool) uint64 { return o + delta })
			if present != had || (had && old != want) {
				t.Fatalf("op %d: Upsert(%d)=(%d,%v), model (%d,%v)", i, k, old, present, want, had)
			}
			model[k] = want + delta
		}
	}
	for k := uint64(1); k <= keySpace; k++ {
		want, had := model[k]
		v, got := s.Find(p, k)
		if got != had || (had && v != want) {
			t.Fatalf("final sweep: Find(%d)=(%d,%v), model (%d,%v)", k, v, got, want, had)
		}
	}
}

// upsertLinearizable records contended histories mixing upserts with the
// set operations and checks them with lincheck.
func upsertLinearizable(t *testing.T, f Factory, blocking bool) {
	s, rt := newSet(f, blocking)
	const workers = 6
	const keys = 4
	const opsPer = 200
	rec := lincheck.NewRecorder(s, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := rec.Worker(w)
			p := rt.Register()
			defer p.Unregister()
			rng := rand.New(rand.NewSource(int64(w)*733 + 5))
			for i := 0; i < opsPer; i++ {
				k := uint64(rng.Intn(keys) + 1)
				switch rng.Intn(4) {
				case 0:
					h.Insert(p, k, uint64(w)*10000+uint64(i))
				case 1:
					h.Delete(p, k)
				case 2:
					h.Upsert(p, k, uint64(w)*10000+5000+uint64(i))
				default:
					h.Find(p, k)
				}
			}
		}(w)
	}
	wg.Wait()
	hist := rec.History()
	if res := lincheck.Check(hist); !res.Ok {
		t.Fatalf("history of %d ops: %v", len(hist), res)
	}
}

// upsertCounter is the classic atomicity test: every worker increments a
// few hot keys via Upsert; lost updates would make the final sums fall
// short of the recorded increment counts.
func upsertCounter(t *testing.T, f Factory, blocking bool) {
	s, rt := newSet(f, blocking)
	up := s.(set.Upserter)
	const workers = 8
	const keys = 3
	const opsPer = 800
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := rt.Register()
			defer p.Unregister()
			rng := rand.New(rand.NewSource(int64(w)*389 + 1))
			for i := 0; i < opsPer; i++ {
				k := uint64(rng.Intn(keys) + 1)
				up.Upsert(p, k, func(o uint64, _ bool) uint64 { return o + 1 })
			}
		}(w)
	}
	wg.Wait()
	p := rt.Register()
	defer p.Unregister()
	var total uint64
	for k := uint64(1); k <= keys; k++ {
		v, ok := s.Find(p, k)
		if !ok {
			t.Fatalf("hot key %d absent after increments", k)
		}
		total += v
	}
	if total != workers*opsPer {
		t.Fatalf("lost updates: counted %d increments, want %d", total, workers*opsPer)
	}
}

// oversubscribed runs many more workers than GOMAXPROCS through a mixed
// workload; in lock-free mode preempted critical sections get helped. The
// assertion is the same set-algebra check as contendedStress.
func oversubscribed(t *testing.T, f Factory, blocking bool) {
	s, rt := newSet(f, blocking)
	const workers = 24
	const keys = 32
	const opsPer = 400

	type tally struct{ ins, del [keys + 1]int64 }
	tallies := make([]tally, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := rt.Register()
			defer p.Unregister()
			rng := rand.New(rand.NewSource(int64(w)*977 + 3))
			for i := 0; i < opsPer; i++ {
				k := uint64(rng.Intn(keys) + 1)
				if rng.Intn(2) == 0 {
					if s.Insert(p, k, uint64(w+1)) {
						tallies[w].ins[k]++
					}
				} else {
					if s.Delete(p, k) {
						tallies[w].del[k]++
					}
				}
			}
		}(w)
	}
	wg.Wait()

	p := rt.Register()
	defer p.Unregister()
	for k := uint64(1); k <= keys; k++ {
		var ins, del int64
		for w := 0; w < workers; w++ {
			ins += tallies[w].ins[k]
			del += tallies[w].del[k]
		}
		_, present := s.Find(p, k)
		diff := ins - del
		if diff != 0 && diff != 1 {
			t.Fatalf("key %d: ins=%d del=%d", k, ins, del)
		}
		if (diff == 1) != present {
			t.Fatalf("key %d: diff=%d present=%v", k, diff, present)
		}
	}
}
