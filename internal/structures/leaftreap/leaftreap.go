// Package leaftreap implements the paper's "leaftreap": a leaf-oriented
// binary tree whose leaves hold a block of up to two cachelines of
// key-value pairs (8 pairs), which keeps the tree short. Leaves are
// immutable and replaced copy-on-write under the parent's lock, so plain
// inserts and deletes take exactly one try-lock; a full leaf splits at
// the median into an internal node with two half-leaves, and a leaf that
// empties is spliced out with its parent under the grandparent's lock.
//
// Substitution note (DESIGN.md S6): the paper balances the routing tree
// as a treap; here balance comes from median splits over the workload's
// random key order, which yields the same expected logarithmic height
// without concurrent rotations.
package leaftreap

import (
	"fmt"
	"math"
	"sort"

	flock "flock/internal/core"
	"flock/internal/structures/set"
)

// LeafCap is the number of key-value pairs per leaf block: 8 pairs of
// 8-byte key + 8-byte value = 128 bytes = two cachelines, as in the paper.
const LeafCap = 8

const inf2 = math.MaxUint64

// node is an internal router (leaf=false, routing key k) or an immutable
// leaf block (sorted keys with parallel vals).
type node struct {
	k       uint64
	leaf    bool
	keys    []uint64
	vals    []uint64
	left    flock.Mutable[*node]
	right   flock.Mutable[*node]
	removed flock.UpdateOnce[bool]
	lck     flock.Lock
}

// Tree is a concurrent blocked external tree. Keys must be in
// [1, MaxUint64-1].
type Tree struct {
	root *node
}

// New returns an empty tree: the root sentinel routes every real key to
// an (initially empty) leaf block on its left.
func New(rt *flock.Runtime) *Tree {
	_ = rt
	root := &node{k: inf2}
	root.left.Init(&node{leaf: true})
	root.right.Init(&node{leaf: true})
	return &Tree{root: root}
}

func childOf(n *node, k uint64) *flock.Mutable[*node] {
	if k < n.k {
		return &n.left
	}
	return &n.right
}

func siblingOf(n *node, k uint64) *flock.Mutable[*node] {
	if k < n.k {
		return &n.right
	}
	return &n.left
}

// search descends to the leaf block k routes to.
func (t *Tree) search(p *flock.Proc, k uint64) (gp, pp, leaf *node) {
	pp = t.root
	cur := childOf(pp, k).Load(p)
	for !cur.leaf {
		gp = pp
		pp = cur
		cur = childOf(cur, k).Load(p)
	}
	return gp, pp, cur
}

// find performs binary search within a block.
func blockFind(b *node, k uint64) (int, bool) {
	i := sort.Search(len(b.keys), func(i int) bool { return b.keys[i] >= k })
	return i, i < len(b.keys) && b.keys[i] == k
}

// Find reports the value stored under k.
func (t *Tree) Find(p *flock.Proc, k uint64) (uint64, bool) {
	p.Begin()
	defer p.End()
	_, _, leaf := t.search(p, k)
	if i, ok := blockFind(leaf, k); ok {
		return leaf.vals[i], true
	}
	return 0, false
}

// Insert adds (k, v); false if already present.
func (t *Tree) Insert(p *flock.Proc, k, v uint64) bool {
	p.Begin()
	defer p.End()
	for {
		_, pp, leaf := t.search(p, k)
		pos, found := blockFind(leaf, k)
		if found {
			return false
		}
		ok := pp.lck.TryLock(p, func(hp *flock.Proc) bool {
			if pp.removed.Load(hp) || childOf(pp, k).Load(hp) != leaf {
				return false // validate; leaf blocks are immutable, so
				// pointer equality pins the contents we searched.
			}
			if len(leaf.keys) < LeafCap {
				nl := flock.Allocate(hp, func() *node {
					return insertedBlock(leaf, pos, k, v)
				})
				childOf(pp, k).Store(hp, nl)
				return true
			}
			// Split at the median of the LeafCap+1 merged pairs.
			inner := flock.Allocate(hp, func() *node {
				merged := insertedBlock(leaf, pos, k, v)
				mid := (LeafCap + 1) / 2
				leftB := &node{leaf: true, keys: merged.keys[:mid], vals: merged.vals[:mid]}
				rightB := &node{leaf: true, keys: merged.keys[mid:], vals: merged.vals[mid:]}
				in := &node{k: rightB.keys[0]}
				in.left.Init(leftB)
				in.right.Init(rightB)
				return in
			})
			childOf(pp, k).Store(hp, inner)
			return true
		})
		if ok {
			return true
		}
	}
}

// insertedBlock returns a fresh block equal to b with (k,v) at pos.
func insertedBlock(b *node, pos int, k, v uint64) *node {
	nk := make([]uint64, len(b.keys)+1)
	nv := make([]uint64, len(b.vals)+1)
	copy(nk, b.keys[:pos])
	copy(nv, b.vals[:pos])
	nk[pos], nv[pos] = k, v
	copy(nk[pos+1:], b.keys[pos:])
	copy(nv[pos+1:], b.vals[pos:])
	return &node{leaf: true, keys: nk, vals: nv}
}

// Delete removes k; false if absent.
func (t *Tree) Delete(p *flock.Proc, k uint64) bool {
	p.Begin()
	defer p.End()
	for {
		gp, pp, leaf := t.search(p, k)
		pos, found := blockFind(leaf, k)
		if !found {
			return false
		}
		if len(leaf.keys) > 1 || pp == t.root {
			// Copy-on-write shrink under the parent's lock. (The root's
			// leaf child may become empty; the root is never spliced.)
			ok := pp.lck.TryLock(p, func(hp *flock.Proc) bool {
				if pp.removed.Load(hp) || childOf(pp, k).Load(hp) != leaf {
					return false
				}
				nl := flock.Allocate(hp, func() *node {
					nk := make([]uint64, 0, len(leaf.keys)-1)
					nv := make([]uint64, 0, len(leaf.vals)-1)
					nk = append(append(nk, leaf.keys[:pos]...), leaf.keys[pos+1:]...)
					nv = append(append(nv, leaf.vals[:pos]...), leaf.vals[pos+1:]...)
					return &node{leaf: true, keys: nk, vals: nv}
				})
				childOf(pp, k).Store(hp, nl)
				flock.Retire(hp, leaf, nil)
				return true
			})
			if ok {
				return true
			}
			continue
		}
		// The block would become empty: splice pp out, promoting the
		// sibling, under gp's and pp's locks.
		ok := gp.lck.TryLock(p, func(hp *flock.Proc) bool {
			if gp.removed.Load(hp) || childOf(gp, k).Load(hp) != pp {
				return false
			}
			return pp.lck.TryLock(hp, func(hp2 *flock.Proc) bool {
				if childOf(pp, k).Load(hp2) != leaf {
					return false
				}
				sibling := siblingOf(pp, k).Load(hp2)
				pp.removed.Store(hp2, true)
				childOf(gp, k).Store(hp2, sibling)
				flock.Retire(hp2, pp, nil)
				flock.Retire(hp2, leaf, nil)
				return true
			})
		})
		if ok {
			return true
		}
	}
}

// Scan implements set.Scanner: an in-order walk of the routing tree
// pruned to [lo, hi], collecting the qualifying slice of each
// intersecting leaf block. Blocks are immutable and replaced
// copy-on-write, so each loaded block is a consistent point snapshot of
// its key interval (interval semantics across blocks, as in leaftree).
// The body is a single idempotent thunk: logged loads, run-local
// accumulation. The clamped hi is below the inf2 root sentinel, so the
// root's (always empty) right block is never visited.
func (t *Tree) Scan(p *flock.Proc, lo, hi uint64, limit int) []set.KV {
	lo, hi = set.ClampScanBounds(lo, hi)
	if limit == 0 {
		return nil
	}
	p.Begin()
	defer p.End()
	var out []set.KV
	var walk func(n *node) bool // false once limit is reached
	walk = func(n *node) bool {
		if n.leaf {
			i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= lo })
			for ; i < len(n.keys) && n.keys[i] <= hi; i++ {
				out = append(out, set.KV{Key: n.keys[i], Value: n.vals[i]})
				if limit > 0 && len(out) >= limit {
					return false
				}
			}
			return true
		}
		// n.left covers keys < n.k, n.right covers keys >= n.k.
		if lo < n.k && !walk(n.left.Load(p)) {
			return false
		}
		if hi >= n.k {
			return walk(n.right.Load(p))
		}
		return true
	}
	walk(t.root)
	return out
}

// Keys returns the sorted key snapshot (single-threaded use).
func (t *Tree) Keys(p *flock.Proc) []uint64 {
	var out []uint64
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			out = append(out, n.keys...)
			return
		}
		walk(n.left.Load(p))
		walk(n.right.Load(p))
	}
	walk(t.root.left.Load(p))
	return out
}

// Height returns the maximum leaf depth below the root (single-threaded).
func (t *Tree) Height(p *flock.Proc) int {
	var walk func(n *node) int
	walk = func(n *node) int {
		if n.leaf {
			return 0
		}
		l, r := walk(n.left.Load(p)), walk(n.right.Load(p))
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return walk(t.root.left.Load(p))
}

// CheckInvariants verifies routing bounds, block sort order, block
// capacity, and that only the root's child block may be empty
// (single-threaded use).
func (t *Tree) CheckInvariants(p *flock.Proc) error {
	var walk func(n *node, lo, hi uint64, isRootChild bool) error
	walk = func(n *node, lo, hi uint64, isRootChild bool) error {
		if n.leaf {
			if len(n.keys) > LeafCap {
				return fmt.Errorf("leaftreap: block of %d > cap", len(n.keys))
			}
			if len(n.keys) == 0 && !isRootChild {
				return fmt.Errorf("leaftreap: empty non-root block")
			}
			for i, k := range n.keys {
				if k < lo || k >= hi {
					return fmt.Errorf("leaftreap: key %d outside [%d,%d)", k, lo, hi)
				}
				if i > 0 && n.keys[i-1] >= k {
					return fmt.Errorf("leaftreap: block unsorted at %d", k)
				}
			}
			return nil
		}
		if n.k < lo || n.k >= hi {
			return fmt.Errorf("leaftreap: router %d outside [%d,%d)", n.k, lo, hi)
		}
		if err := walk(n.left.Load(p), lo, n.k, false); err != nil {
			return err
		}
		return walk(n.right.Load(p), n.k, hi, false)
	}
	return walk(t.root.left.Load(p), 0, inf2, true)
}
