package leaftreap

import (
	"math/bits"
	"math/rand"
	"sync"
	"testing"

	flock "flock/internal/core"
	"flock/internal/structures/set"
	"flock/internal/structures/settest"
)

func factory(rt *flock.Runtime) set.Set { return New(rt) }

func TestSuite(t *testing.T) { settest.Run(t, factory) }

func TestBlockSplitOnOverflow(t *testing.T) {
	rt := flock.New()
	p := rt.Register()
	defer p.Unregister()
	tr := New(rt)
	// Fill exactly one block, then overflow it.
	for k := uint64(1); k <= LeafCap; k++ {
		if !tr.Insert(p, k*10, k) {
			t.Fatalf("insert %d", k*10)
		}
	}
	if h := tr.Height(p); h != 0 {
		t.Fatalf("height %d before overflow, want 0 (single block)", h)
	}
	if !tr.Insert(p, 5, 99) {
		t.Fatalf("overflow insert failed")
	}
	if h := tr.Height(p); h != 1 {
		t.Fatalf("height %d after split, want 1", h)
	}
	if err := tr.CheckInvariants(p); err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= LeafCap; k++ {
		if v, ok := tr.Find(p, k*10); !ok || v != k {
			t.Fatalf("Find(%d) = (%d,%v) after split", k*10, v, ok)
		}
	}
	if v, ok := tr.Find(p, 5); !ok || v != 99 {
		t.Fatalf("Find(5) = (%d,%v)", v, ok)
	}
}

func TestExpectedLogHeightRandomInserts(t *testing.T) {
	rt := flock.New()
	p := rt.Register()
	defer p.Unregister()
	tr := New(rt)
	const n = 4096
	rng := rand.New(rand.NewSource(99))
	inserted := 0
	for inserted < n {
		k := uint64(rng.Int63n(1 << 40))
		if k == 0 {
			continue
		}
		if tr.Insert(p, k, k) {
			inserted++
		}
	}
	// ~n/LeafCap blocks; random-order median splits give expected
	// O(log(blocks)) height. Allow a generous constant.
	blocks := n / LeafCap
	bound := 4 * (bits.Len(uint(blocks)) + 1)
	if h := tr.Height(p); h > bound {
		t.Fatalf("height %d exceeds expected-log bound %d for %d random keys", h, bound, n)
	}
	if err := tr.CheckInvariants(p); err != nil {
		t.Fatal(err)
	}
}

func TestDrainToEmptyBlock(t *testing.T) {
	rt := flock.New()
	p := rt.Register()
	defer p.Unregister()
	tr := New(rt)
	keys := []uint64{3, 1, 4, 1, 5, 9, 2, 6, 8, 7, 10, 11, 12, 13, 14, 15, 16, 17}
	seen := map[uint64]bool{}
	for _, k := range keys {
		want := !seen[k]
		if tr.Insert(p, k, k) != want {
			t.Fatalf("insert %d: want %v", k, want)
		}
		seen[k] = true
	}
	for k := range seen {
		if !tr.Delete(p, k) {
			t.Fatalf("delete %d", k)
		}
	}
	if got := tr.Keys(p); len(got) != 0 {
		t.Fatalf("residual keys %v", got)
	}
	if err := tr.CheckInvariants(p); err != nil {
		t.Fatal(err)
	}
	// Reusable after draining.
	if !tr.Insert(p, 42, 1) {
		t.Fatalf("insert after drain failed")
	}
}

func TestSplicePreservesSiblingSubtree(t *testing.T) {
	rt := flock.New()
	p := rt.Register()
	defer p.Unregister()
	tr := New(rt)
	// Build enough structure for multi-level splices.
	for k := uint64(1); k <= 64; k++ {
		tr.Insert(p, k, k)
	}
	// Delete a contiguous range to force repeated splices.
	for k := uint64(1); k <= 32; k++ {
		if !tr.Delete(p, k) {
			t.Fatalf("delete %d", k)
		}
	}
	if err := tr.CheckInvariants(p); err != nil {
		t.Fatal(err)
	}
	for k := uint64(33); k <= 64; k++ {
		if _, ok := tr.Find(p, k); !ok {
			t.Fatalf("surviving key %d lost", k)
		}
	}
}

func TestConcurrentSplitsAndSplices(t *testing.T) {
	for _, mode := range settest.Modes {
		t.Run(mode.Name, func(t *testing.T) {
			rt := flock.New()
			rt.SetBlocking(mode.Blocking)
			tr := New(rt)
			const workers = 8
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					p := rt.Register()
					defer p.Unregister()
					rng := rand.New(rand.NewSource(int64(w)*13 + 3))
					for i := 0; i < 1500; i++ {
						k := uint64(rng.Intn(100) + 1)
						if rng.Intn(2) == 0 {
							tr.Insert(p, k, k)
						} else {
							tr.Delete(p, k)
						}
					}
				}(w)
			}
			wg.Wait()
			p := rt.Register()
			defer p.Unregister()
			if err := tr.CheckInvariants(p); err != nil {
				t.Fatal(err)
			}
		})
	}
}
