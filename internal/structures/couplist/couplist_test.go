package couplist

import (
	"math/rand"
	"sync"
	"testing"

	flock "flock/internal/core"
	"flock/internal/structures/set"
	"flock/internal/structures/settest"
)

func factory(rt *flock.Runtime) set.Set { return New(rt) }

func TestSuite(t *testing.T) { settest.Run(t, factory) }

func TestNoLockLeaksAfterOps(t *testing.T) {
	rt := flock.New()
	p := rt.Register()
	defer p.Unregister()
	l := New(rt)
	for _, k := range []uint64{5, 1, 9, 3, 7} {
		if !l.Insert(p, k, k) {
			t.Fatalf("insert %d", k)
		}
	}
	l.Insert(p, 5, 0) // duplicate path also releases every coupled lock
	l.Delete(p, 3)
	l.Delete(p, 100) // absent path
	if err := l.CheckInvariants(p); err != nil {
		t.Fatal(err)
	}
}

func TestCoupledDescentDeepList(t *testing.T) {
	// A long list: the coupled descent nests hundreds of lock thunks.
	rt := flock.New()
	p := rt.Register()
	defer p.Unregister()
	l := New(rt)
	const n = 600
	for k := uint64(1); k <= n; k++ {
		if !l.Insert(p, k, k) {
			t.Fatalf("insert %d", k)
		}
	}
	// Touch the far end: maximal coupling depth.
	if v, ok := l.Find(p, n); !ok || v != n {
		t.Fatalf("find tail: (%d,%v)", v, ok)
	}
	if !l.Delete(p, n) {
		t.Fatalf("delete tail")
	}
	if !l.Insert(p, n+1, 1) {
		t.Fatalf("insert past tail")
	}
	if err := l.CheckInvariants(p); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentCouplingNoLeaks(t *testing.T) {
	for _, mode := range settest.Modes {
		t.Run(mode.Name, func(t *testing.T) {
			rt := flock.New()
			rt.SetBlocking(mode.Blocking)
			l := New(rt)
			const workers = 8
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					p := rt.Register()
					defer p.Unregister()
					rng := rand.New(rand.NewSource(int64(w)*3 + 7))
					for i := 0; i < 600; i++ {
						k := uint64(rng.Intn(20) + 1)
						if rng.Intn(2) == 0 {
							l.Insert(p, k, k)
						} else {
							l.Delete(p, k)
						}
					}
				}(w)
			}
			wg.Wait()
			p := rt.Register()
			defer p.Unregister()
			if err := l.CheckInvariants(p); err != nil {
				t.Fatal(err)
			}
		})
	}
}
