// Package couplist implements a sorted linked-list set with
// hand-over-hand locking (lock coupling, Bayer & Schkolnick [4]): an
// update descends holding at most two locks, taking the next node's lock
// before releasing the previous one with the early-release Unlock that
// §4 of the paper introduces exactly for this pattern.
//
// Unlike the optimistic lazylist, coupling is pessimistic: holding a
// node's lock pins its successor (a delete needs both the predecessor's
// and the victim's lock), so no validation or restart-on-conflict logic
// is needed — a try-lock failure during descent aborts the whole pass
// and retries from the head. Run in lock-free mode the entire descent is
// a chain of nested thunks that helpers can complete; thunk results
// beyond the boolean travel through a committed Mutable cell, the
// pattern for multi-valued critical sections.
//
// Coupling is the didactic structure here (the paper's measured lists
// are lazylist/dlist): it exists to exercise Unlock under helping in a
// real data structure. Expect it to be slower than lazylist — every hop
// takes a lock.
package couplist

import (
	"fmt"
	"math"

	flock "flock/internal/core"
	"flock/internal/structures/set"
)

type node struct {
	k, v    uint64
	next    flock.Mutable[*node]
	removed flock.UpdateOnce[bool]
	lck     flock.Lock
}

// List is a concurrent sorted linked-list set with coupled locking.
// Keys must be in [1, MaxUint64-1].
type List struct {
	head *node
}

// New returns an empty list.
func New(rt *flock.Runtime) *List {
	_ = rt
	tail := &node{k: math.MaxUint64}
	head := &node{k: 0}
	head.next.Init(tail)
	return &List{head: head}
}

// Outcomes communicated through the committed result cell.
const (
	resApplied  = 1 // inserted / deleted
	resConflict = 2 // duplicate insert / absent delete
)

// Find traverses without locks (reads are optimistic even in coupled
// designs; the removed flag keeps results linearizable).
func (l *List) Find(p *flock.Proc, k uint64) (uint64, bool) {
	p.Begin()
	defer p.End()
	curr := l.head.next.Load(p)
	for curr.k < k {
		curr = curr.next.Load(p)
	}
	if curr.k == k && !curr.removed.Load(p) {
		return curr.v, true
	}
	return 0, false
}

// Insert adds (k, v); false if already present.
func (l *List) Insert(p *flock.Proc, k, v uint64) bool {
	p.Begin()
	defer p.End()
	for {
		res := &flock.Mutable[uint8]{}
		var step func(pred *node) flock.Thunk
		step = func(pred *node) flock.Thunk {
			return func(hp *flock.Proc) bool {
				curr := pred.next.Load(hp)
				if k > curr.k {
					// Couple: take the next lock, then release pred early.
					return curr.lck.TryLock(hp, func(hp2 *flock.Proc) bool {
						pred.lck.Unlock(hp2)
						return step(curr)(hp2)
					})
				}
				if curr.k == k {
					res.Store(hp, resConflict)
					return true
				}
				n := flock.Allocate(hp, func() *node {
					nn := &node{k: k, v: v}
					nn.next.Init(curr)
					return nn
				})
				pred.next.Store(hp, n)
				res.Store(hp, resApplied)
				return true
			}
		}
		if l.head.lck.TryLock(p, step(l.head)) {
			switch res.Load(p) {
			case resApplied:
				return true
			case resConflict:
				return false
			}
		}
		// A lock on the path was busy: restart from the head.
	}
}

// Delete removes k; false if absent.
func (l *List) Delete(p *flock.Proc, k uint64) bool {
	p.Begin()
	defer p.End()
	for {
		res := &flock.Mutable[uint8]{}
		var step func(pred *node) flock.Thunk
		step = func(pred *node) flock.Thunk {
			return func(hp *flock.Proc) bool {
				curr := pred.next.Load(hp)
				if k > curr.k {
					return curr.lck.TryLock(hp, func(hp2 *flock.Proc) bool {
						pred.lck.Unlock(hp2)
						return step(curr)(hp2)
					})
				}
				if curr.k != k {
					res.Store(hp, resConflict)
					return true
				}
				// Holding pred pins curr; lock curr and splice.
				return curr.lck.TryLock(hp, func(hp2 *flock.Proc) bool {
					next := curr.next.Load(hp2)
					curr.removed.Store(hp2, true)
					pred.next.Store(hp2, next)
					flock.Retire(hp2, curr, nil)
					res.Store(hp2, resApplied)
					return true
				})
			}
		}
		if l.head.lck.TryLock(p, step(l.head)) {
			switch res.Load(p) {
			case resApplied:
				return true
			case resConflict:
				return false
			}
		}
	}
}

// Scan implements set.Scanner. Like Find, the scan is optimistic even
// though updates couple locks: writers only ever splice at positions
// they reached by coupling from the head, so a spliced-out node's next
// pointer is frozen and the removed flag makes each reported pair's
// presence instant well defined (interval semantics, DESIGN.md S12).
// The body is a single idempotent thunk: logged loads, run-local
// accumulation, no locks taken.
func (l *List) Scan(p *flock.Proc, lo, hi uint64, limit int) []set.KV {
	lo, hi = set.ClampScanBounds(lo, hi)
	if limit == 0 {
		return nil
	}
	p.Begin()
	defer p.End()
	var out []set.KV
	curr := l.head.next.Load(p)
	for curr.k < lo {
		curr = curr.next.Load(p)
	}
	for curr.k <= hi { // the tail sentinel MaxUint64 always exceeds hi
		if !curr.removed.Load(p) {
			out = append(out, set.KV{Key: curr.k, Value: curr.v})
			if limit > 0 && len(out) >= limit {
				break
			}
		}
		curr = curr.next.Load(p)
	}
	return out
}

// Keys returns a snapshot of the keys (single-threaded use).
func (l *List) Keys(p *flock.Proc) []uint64 {
	var out []uint64
	for n := l.head.next.Load(p); n.k != math.MaxUint64; n = n.next.Load(p) {
		out = append(out, n.k)
	}
	return out
}

// CheckInvariants validates sortedness and that no lock leaked
// (single-threaded use).
func (l *List) CheckInvariants(p *flock.Proc) error {
	prev := l.head
	if l.head.lck.Held() {
		return fmt.Errorf("couplist: head lock leaked")
	}
	for n := prev.next.Load(p); ; n = n.next.Load(p) {
		if n.k <= prev.k {
			return fmt.Errorf("couplist: order violation %d >= %d", prev.k, n.k)
		}
		if n.lck.Held() {
			return fmt.Errorf("couplist: lock leaked at key %d", n.k)
		}
		if n.k == math.MaxUint64 {
			return nil
		}
		prev = n
	}
}
