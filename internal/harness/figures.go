package harness

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"time"
)

// Scale holds the machine- and time-budget-dependent knobs for the
// figure experiments. The paper's runs use 100M/100K key ranges, 3 s
// runs and 144 hardware threads; DefaultScale shrinks the ranges and
// durations so a full figure regenerates in seconds, and sizes the
// thread counts off GOMAXPROCS (on this repository's 1-CPU reference
// box every multi-worker point is oversubscribed, which is the regime
// the paper's headline results are about — see EXPERIMENTS.md).
type Scale struct {
	LargeKeys uint64 // stands in for the paper's 100M out-of-cache range
	SmallKeys uint64 // stands in for the paper's 100K in-cache range
	ListKeys  uint64 // fig7b's 100-key list
	Duration  time.Duration
	Warmup    int
	Repeats   int
	Threads   []int // thread sweep for the *a/*e figures
	Base      int   // the paper's "144 threads" full-subscription point
	Over      int   // the paper's "216 threads" oversubscribed point
	Shards    int   // default kv.Store shard count for the ext-ycsb figures
	Seed      uint64
	// Metrics enables obs runtime-metrics collection for every point of
	// the figure (figures that exist to show the metrics, like ext-help,
	// force it on regardless).
	Metrics bool
}

// DefaultScale returns the scaled-down defaults.
func DefaultScale() Scale {
	p := runtime.GOMAXPROCS(0)
	base := 2 * p
	if base < 4 {
		base = 4
	}
	return Scale{
		LargeKeys: 100_000,
		SmallKeys: 10_000,
		ListKeys:  100,
		Duration:  100 * time.Millisecond,
		Warmup:    0,
		Repeats:   1,
		Threads:   []int{1, 2, 4, 8, 16, 32},
		Base:      base,
		Over:      3 * base,
		Shards:    8,
		Seed:      42,
	}
}

// Series names one line in a figure. Shards applies to the KV (YCSB)
// and transactional figures: 0 means "use Scale.Shards", 1 is the
// unsharded control. NoPool selects the GC-fresh ablation arm (flock
// structures only); NonAtomic selects the per-key no-shard-lock arm of
// the transactional figures.
type Series struct {
	Name      string
	Structure string
	Blocking  bool
	HashKeys  bool
	Shards    int
	NoPool    bool
	NonAtomic bool
	// Optimistic routes KV reads through the version-validated unlogged
	// arm (kv/optimistic.go); only meaningful for YCSB/txn series over
	// structures that implement the optimistic capability interfaces.
	Optimistic bool
	// SnapshotLoop runs the background whole-store snapshot loop beside
	// the measured workload (Spec.SnapshotLoop; ext-snap's "+snap" arms).
	SnapshotLoop bool
}

// Point is one measured figure point, with tail-latency percentiles and
// allocations per operation alongside the paper's throughput metric.
type Point struct {
	Series string
	X      string
	Mops   float64
	Std    float64
	Allocs float64 // heap allocations per operation
	P50    time.Duration
	P95    time.Duration
	P99    time.Duration
	// Optimistic-read counters over the measured runs (zero unless the
	// series set Optimistic; see Stats).
	OptRestarts    uint64
	OptEscalations uint64
	// Per-thread op-count fairness over the measured window (see
	// harness.fairness); always populated.
	FairMaxMin float64
	FairCoV    float64
	// Background snapshot-loop progress: completed whole-store
	// iterations and iterated keys per second (zero unless the series
	// set SnapshotLoop; the ext-snap figure's second payload).
	SnapCycles     uint64
	SnapKeysPerSec float64
	// Metrics carries the obs runtime-metrics summary; nil unless the
	// point was measured with Spec.Metrics (Scale.Metrics or a figure
	// that forces it).
	Metrics *PointMetrics
}

// Figure is a fully measured figure.
type Figure struct {
	ID     string
	Paper  string // what the paper's figure shows
	XLabel string
	Points []Point
}

// FigureSpec describes how to regenerate one paper figure.
type FigureSpec struct {
	ID     string
	Paper  string
	XLabel string
	Series []Series
	// Xs lists the x-axis values; SpecFor builds the measurement spec
	// for a series at an x value.
	Xs      func(sc Scale) []string
	SpecFor func(sc Scale, s Series, x string) Spec
}

// Paper series sets.
var (
	// Figure 5: binary trees. Substitutions per DESIGN.md S4/S5:
	// leaftreap-bl stands in for Bronson/Drachsler (blocking, balanced),
	// leaftreap-lf for Chromatic (lock-free, balanced).
	treeSeries = []Series{
		{Name: "leaftree-bl", Structure: "leaftree", Blocking: true},
		{Name: "leaftree-lf", Structure: "leaftree", Blocking: false},
		{Name: "leaftreap-bl", Structure: "leaftreap", Blocking: true},
		{Name: "leaftreap-lf", Structure: "leaftreap", Blocking: false},
		{Name: "natarajan", Structure: "natarajan"},
		{Name: "ellen", Structure: "ellen"},
	}
	// Figure 4: try vs strict locks on the leaftree.
	fig4Series = []Series{
		{Name: "leaftree-trylock-bl", Structure: "leaftree", Blocking: true},
		{Name: "leaftree-trylock-lf", Structure: "leaftree", Blocking: false},
		{Name: "leaftree-strictlock-bl", Structure: "leaftree-strict", Blocking: true},
		{Name: "leaftree-strictlock-lf", Structure: "leaftree-strict", Blocking: false},
	}
	// Figure 6: other set structures; abtree-strict-bl stands in for
	// srivastava_abtree.
	otherSeries = []Series{
		{Name: "arttree-bl", Structure: "arttree", Blocking: true, HashKeys: true},
		{Name: "arttree-lf", Structure: "arttree", Blocking: false, HashKeys: true},
		// Specialized ART baseline (optimistic lock coupling), the
		// hand-crafted competitor for the two flock arttree series.
		{Name: "olcart", Structure: "olcart", HashKeys: true},
		{Name: "leaftreap-bl", Structure: "leaftreap", Blocking: true},
		{Name: "leaftreap-lf", Structure: "leaftreap", Blocking: false},
		{Name: "hashtable-bl", Structure: "hashtable", Blocking: true},
		{Name: "hashtable-lf", Structure: "hashtable", Blocking: false},
		{Name: "abtree-bl", Structure: "abtree", Blocking: true},
		{Name: "abtree-lf", Structure: "abtree", Blocking: false},
		{Name: "srivastava_abtree", Structure: "abtree-strict", Blocking: true},
	}
	// Figure 7: linked lists.
	listSeries = []Series{
		{Name: "harris_list", Structure: "harris"},
		{Name: "harris_list_opt", Structure: "harris_opt"},
		{Name: "lazylist-bl", Structure: "lazylist", Blocking: true},
		{Name: "lazylist-lf", Structure: "lazylist", Blocking: false},
		{Name: "dlist-bl", Structure: "dlist", Blocking: true},
		{Name: "dlist-lf", Structure: "dlist", Blocking: false},
	}

	// Extension: the KV layer (internal/kv) under YCSB mixes. Blocking
	// vs lock-free on the same sharded store, plus an unsharded control
	// (Shards: 1) showing what sharding itself buys; hashtable-lf adds
	// the structure the paper found cheapest to make lock-free.
	kvSeries = []Series{
		{Name: "kv-leaftree-lf", Structure: "leaftree", Blocking: false},
		{Name: "kv-leaftree-bl", Structure: "leaftree", Blocking: true},
		{Name: "kv-leaftree-opt", Structure: "leaftree", Blocking: false, Optimistic: true},
		{Name: "kv-leaftree-lf-1shard", Structure: "leaftree", Blocking: false, Shards: 1},
		{Name: "kv-hashtable-lf", Structure: "hashtable", Blocking: false},
	}
	// Extension: YCSB-E, the scan-heavy workload, needs ordered
	// structures. Lock-free vs blocking flock scans (restart-free
	// idempotent scan thunks under shard locks) vs the specialized
	// optimistic-lock-coupling ART, whose scans restart on interference
	// — the restart-vs-helping tradeoff of DESIGN.md S12.
	ycsbESeries = []Series{
		{Name: "kv-leaftree-lf", Structure: "leaftree", Blocking: false},
		{Name: "kv-leaftree-bl", Structure: "leaftree", Blocking: true},
		{Name: "kv-leaftree-opt", Structure: "leaftree", Blocking: false, Optimistic: true},
		{Name: "kv-abtree-lf", Structure: "abtree", Blocking: false},
		{Name: "kv-olcart", Structure: "olcart"},
	}
	// The shard sweep compares modes at a fixed oversubscribed thread
	// count while the x axis varies the shard count.
	kvShardSeries = []Series{
		{Name: "kv-leaftree-lf", Structure: "leaftree", Blocking: false},
		{Name: "kv-leaftree-bl", Structure: "leaftree", Blocking: true},
		{Name: "kv-hashtable-lf", Structure: "hashtable", Blocking: false},
	}

	// Extension: the transactional layer (internal/txn, DESIGN.md S11).
	// Three arms per structure: composed lock-free try-locks, the same
	// composition over blocking locks, and the naive per-key non-atomic
	// baseline (which is fast but tears multi-writes — throughput it
	// buys by not being a transaction at all).
	txnSeries = []Series{
		{Name: "txn-leaftree-lf", Structure: "leaftree"},
		{Name: "txn-leaftree-bl", Structure: "leaftree", Blocking: true},
		{Name: "txn-leaftree-na", Structure: "leaftree", NonAtomic: true},
		{Name: "txn-hashtable-lf", Structure: "hashtable"},
		{Name: "txn-hashtable-bl", Structure: "hashtable", Blocking: true},
		{Name: "txn-hashtable-na", Structure: "hashtable", NonAtomic: true},
	}

	alphas  = []string{"0", "0.75", "0.9", "0.99"}
	updates = []string{"0", "5", "10", "50"}
)

func threadsXs(sc Scale) []string {
	var out []string
	for _, t := range sc.Threads {
		out = append(out, fmt.Sprint(t))
	}
	return out
}

// atof and atoi parse x-axis values from the figure spec tables. The
// tables are compile-time data, so a malformed value is a programming
// error: these panic instead of silently yielding 0 (which would turn a
// typo into a nonsense spec that still "runs").
func atof(s string) float64 {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		panic(fmt.Sprintf("harness: malformed numeric x value %q: %v", s, err))
	}
	return f
}

func atoi(s string) int {
	n, err := strconv.Atoi(s)
	if err != nil {
		panic(fmt.Sprintf("harness: malformed integer x value %q: %v", s, err))
	}
	return n
}

// figSpecs builds the full experiment index (DESIGN.md S8).
func figSpecs() []FigureSpec {
	base := func(sc Scale, s Series) Spec {
		return Spec{
			Structure: s.Structure,
			Blocking:  s.Blocking,
			HashKeys:  s.HashKeys,
			NoPool:    s.NoPool,
			Duration:  sc.Duration,
			Seed:      sc.Seed,
		}
	}
	specs := []FigureSpec{
		{
			ID:     "fig4",
			Paper:  "Fig 4: try vs strict lock, 100K keys, 144 threads, 50% updates, zipfian sweep",
			XLabel: "zipfian alpha",
			Series: fig4Series,
			Xs:     func(Scale) []string { return alphas },
			SpecFor: func(sc Scale, s Series, x string) Spec {
				sp := base(sc, s)
				sp.KeyRange, sp.Threads, sp.UpdatePct, sp.Alpha = sc.SmallKeys, sc.Base, 50, atof(x)
				return sp
			},
		},
		{
			ID:     "fig5a",
			Paper:  "Fig 5a: trees, 100M keys, 50% updates, alpha 0.75, thread sweep",
			XLabel: "threads",
			Series: treeSeries,
			Xs:     threadsXs,
			SpecFor: func(sc Scale, s Series, x string) Spec {
				sp := base(sc, s)
				sp.KeyRange, sp.Threads, sp.UpdatePct, sp.Alpha = sc.LargeKeys, atoi(x), 50, 0.75
				return sp
			},
		},
		{
			ID:     "fig5b",
			Paper:  "Fig 5b: trees, 100M keys, 144 threads, alpha 0.75, update sweep",
			XLabel: "update %",
			Series: treeSeries,
			Xs:     func(Scale) []string { return updates },
			SpecFor: func(sc Scale, s Series, x string) Spec {
				sp := base(sc, s)
				sp.KeyRange, sp.Threads, sp.UpdatePct, sp.Alpha = sc.LargeKeys, sc.Base, atoi(x), 0.75
				return sp
			},
		},
		{
			ID:     "fig5c",
			Paper:  "Fig 5c: trees, 100M keys, 144 threads, 50% updates, zipfian sweep",
			XLabel: "zipfian alpha",
			Series: treeSeries,
			Xs:     func(Scale) []string { return alphas },
			SpecFor: func(sc Scale, s Series, x string) Spec {
				sp := base(sc, s)
				sp.KeyRange, sp.Threads, sp.UpdatePct, sp.Alpha = sc.LargeKeys, sc.Base, 50, atof(x)
				return sp
			},
		},
		{
			ID:     "fig5d",
			Paper:  "Fig 5d: trees, 100M keys, 216 threads (oversubscribed), 50% updates, zipfian sweep",
			XLabel: "zipfian alpha",
			Series: treeSeries,
			Xs:     func(Scale) []string { return alphas },
			SpecFor: func(sc Scale, s Series, x string) Spec {
				sp := base(sc, s)
				sp.KeyRange, sp.Threads, sp.UpdatePct, sp.Alpha = sc.LargeKeys, sc.Over, 50, atof(x)
				return sp
			},
		},
		{
			ID:     "fig5e",
			Paper:  "Fig 5e: trees, 100K keys, 50% updates, alpha 0.75, thread sweep",
			XLabel: "threads",
			Series: treeSeries,
			Xs:     threadsXs,
			SpecFor: func(sc Scale, s Series, x string) Spec {
				sp := base(sc, s)
				sp.KeyRange, sp.Threads, sp.UpdatePct, sp.Alpha = sc.SmallKeys, atoi(x), 50, 0.75
				return sp
			},
		},
		{
			ID:     "fig5f",
			Paper:  "Fig 5f: trees, 100K keys, 144 threads, alpha 0.75, update sweep",
			XLabel: "update %",
			Series: treeSeries,
			Xs:     func(Scale) []string { return updates },
			SpecFor: func(sc Scale, s Series, x string) Spec {
				sp := base(sc, s)
				sp.KeyRange, sp.Threads, sp.UpdatePct, sp.Alpha = sc.SmallKeys, sc.Base, atoi(x), 0.75
				return sp
			},
		},
		{
			ID:     "fig5g",
			Paper:  "Fig 5g: trees, 100K keys, 216 threads (oversubscribed), 5% updates, zipfian sweep",
			XLabel: "zipfian alpha",
			Series: treeSeries,
			Xs:     func(Scale) []string { return alphas },
			SpecFor: func(sc Scale, s Series, x string) Spec {
				sp := base(sc, s)
				sp.KeyRange, sp.Threads, sp.UpdatePct, sp.Alpha = sc.SmallKeys, sc.Over, 5, atof(x)
				return sp
			},
		},
		{
			ID:     "fig5h",
			Paper:  "Fig 5h: trees, 216 threads (oversubscribed), 5% updates, alpha 0.75, size sweep",
			XLabel: "key range",
			Series: treeSeries,
			Xs: func(sc Scale) []string {
				var out []string
				for r := uint64(1000); r <= sc.LargeKeys; r *= 10 {
					out = append(out, fmt.Sprint(r))
				}
				return out
			},
			SpecFor: func(sc Scale, s Series, x string) Spec {
				sp := base(sc, s)
				sp.KeyRange, sp.Threads, sp.UpdatePct, sp.Alpha = uint64(atoi(x)), sc.Over, 5, 0.75
				return sp
			},
		},
		{
			ID:     "fig6a",
			Paper:  "Fig 6a: other sets, 100M keys, 50% updates, alpha 0.75, thread sweep",
			XLabel: "threads",
			Series: otherSeries,
			Xs:     threadsXs,
			SpecFor: func(sc Scale, s Series, x string) Spec {
				sp := base(sc, s)
				sp.KeyRange, sp.Threads, sp.UpdatePct, sp.Alpha = sc.LargeKeys, atoi(x), 50, 0.75
				return sp
			},
		},
		{
			ID:     "fig6b",
			Paper:  "Fig 6b: other sets, 100M keys, 216 threads (oversubscribed), 50% updates, zipfian sweep",
			XLabel: "zipfian alpha",
			Series: otherSeries,
			Xs:     func(Scale) []string { return alphas },
			SpecFor: func(sc Scale, s Series, x string) Spec {
				sp := base(sc, s)
				sp.KeyRange, sp.Threads, sp.UpdatePct, sp.Alpha = sc.LargeKeys, sc.Over, 50, atof(x)
				return sp
			},
		},
		{
			ID:     "fig7a",
			Paper:  "Fig 7a: lists, 144 threads, 5% updates, alpha 0.75, size sweep",
			XLabel: "key range",
			Series: listSeries,
			Xs:     func(Scale) []string { return []string{"100", "1000", "10000"} },
			SpecFor: func(sc Scale, s Series, x string) Spec {
				sp := base(sc, s)
				sp.KeyRange, sp.Threads, sp.UpdatePct, sp.Alpha = uint64(atoi(x)), sc.Base, 5, 0.75
				return sp
			},
		},
		{
			ID:     "fig7b",
			Paper:  "Fig 7b: lists, 100 keys, 5% updates, alpha 0.75, thread sweep",
			XLabel: "threads",
			Series: listSeries,
			Xs:     threadsXs,
			SpecFor: func(sc Scale, s Series, x string) Spec {
				sp := base(sc, s)
				sp.KeyRange, sp.Threads, sp.UpdatePct, sp.Alpha = sc.ListKeys, atoi(x), 5, 0.75
				return sp
			},
		},
		{
			// Extension (not a paper figure): the oversubscription
			// phenomenon made explicit. On the paper's 144-core testbed
			// the OS descheduls lock holders naturally; here a holder is
			// forced to yield inside every N-th critical section and the
			// x axis sweeps N (0 = no injection). Lock-free mode should
			// be flat; blocking mode should collapse as N shrinks.
			ID:     "ext-stall",
			Paper:  "Extension: deschedule-injection sweep, oversubscribed, 50% updates, alpha 0.75",
			XLabel: "stall every",
			Series: []Series{
				{Name: "leaftree-bl", Structure: "leaftree", Blocking: true},
				{Name: "leaftree-lf", Structure: "leaftree", Blocking: false},
				{Name: "hashtable-bl", Structure: "hashtable", Blocking: true},
				{Name: "hashtable-lf", Structure: "hashtable", Blocking: false},
			},
			Xs: func(Scale) []string { return []string{"0", "1000", "100", "20"} },
			SpecFor: func(sc Scale, s Series, x string) Spec {
				sp := base(sc, s)
				sp.KeyRange, sp.Threads, sp.UpdatePct, sp.Alpha = sc.SmallKeys, sc.Over, 50, 0.75
				sp.StallEvery = atoi(x)
				return sp
			},
		},
		{
			// Extension (not a paper figure): the §6 memory-management
			// ablation. The paper's thunk machinery is practical only
			// because log/descriptor overhead stays near zero; this
			// figure reads out the allocs/op column for the pooled
			// commit path (default), the GC-fresh path (NoPool — the
			// repository's pre-pooling behaviour) and blocking mode
			// (which never allocates descriptors or log entries), at
			// increasing update rates. Throughput rides along so the
			// pooling win is visible as both fewer allocations and more
			// Mop/s.
			ID:     "ext-alloc",
			Paper:  "Extension: allocations per operation — pooled vs GC-fresh vs blocking, update sweep",
			XLabel: "update %",
			Series: []Series{
				{Name: "leaftree-lf-pooled", Structure: "leaftree"},
				{Name: "leaftree-lf-fresh", Structure: "leaftree", NoPool: true},
				{Name: "leaftree-bl", Structure: "leaftree", Blocking: true},
				{Name: "hashtable-lf-pooled", Structure: "hashtable"},
				{Name: "hashtable-lf-fresh", Structure: "hashtable", NoPool: true},
				{Name: "hashtable-bl", Structure: "hashtable", Blocking: true},
			},
			Xs: func(Scale) []string { return []string{"0", "10", "50"} },
			SpecFor: func(sc Scale, s Series, x string) Spec {
				sp := base(sc, s)
				sp.KeyRange, sp.Threads, sp.UpdatePct, sp.Alpha = sc.SmallKeys, sc.Base, atoi(x), 0.75
				return sp
			},
		},
	}
	// Extension: YCSB mixes against the sharded KV layer (DESIGN.md S9).
	// Thread sweeps for workloads A, B, C and F, plus a shard sweep:
	// these are the figures where the helping win appears as tail
	// latency (p99), not just Mop/s.
	ycsbSpec := func(sc Scale, s Series, ycsb string, threads int, shards int) Spec {
		if shards == 0 {
			shards = sc.Shards
		}
		return Spec{
			Structure:  s.Structure,
			Blocking:   s.Blocking,
			HashKeys:   s.HashKeys,
			Threads:    threads,
			KeyRange:   sc.SmallKeys,
			Alpha:      0.99, // YCSB's default zipfian skew
			Duration:   sc.Duration,
			Seed:       sc.Seed,
			YCSB:       ycsb,
			Shards:     shards,
			Optimistic: s.Optimistic,
		}
	}
	for _, w := range []struct{ name, what string }{
		{"a", "50% read / 50% update"},
		{"b", "95% read / 5% update"},
		{"c", "read-only"},
		{"f", "50% read / 50% read-modify-write"},
	} {
		w := w
		specs = append(specs, FigureSpec{
			ID:     "ext-ycsb-" + w.name,
			Paper:  fmt.Sprintf("Extension: YCSB-%s (%s) on the sharded KV store, zipfian 0.99, thread sweep", w.name, w.what),
			XLabel: "threads",
			Series: kvSeries,
			Xs:     threadsXs,
			SpecFor: func(sc Scale, s Series, x string) Spec {
				return ycsbSpec(sc, s, w.name, atoi(x), s.Shards)
			},
		})
	}
	// YCSB-E sweeps the maximum scan length at full subscription: longer
	// scans mean longer critical sections for the flock arms and more
	// revalidation surface (hence restarts) for the OLC baseline.
	specs = append(specs, FigureSpec{
		ID:     "ext-ycsb-e",
		Paper:  "Extension: YCSB-E (95% scan / 5% insert) on the sharded KV store, zipfian 0.99, scan-length sweep",
		XLabel: "max scan length",
		Series: ycsbESeries,
		Xs:     func(Scale) []string { return []string{"1", "8", "64", "256"} },
		SpecFor: func(sc Scale, s Series, x string) Spec {
			sp := ycsbSpec(sc, s, "e", sc.Base, s.Shards)
			sp.ScanLen = atoi(x)
			return sp
		},
	})
	// Extension: multi-key atomic transactions (DESIGN.md S11). The
	// composability claim measured: blocking vs lock-free composed
	// shard locks vs the non-atomic per-key baseline, under the
	// SmallBank-style transfer mix (thread sweep) and the YCSB-T-like
	// mix (keys-per-transaction sweep — more keys, more shards locked
	// per composed critical section).
	txnSpec := func(sc Scale, s Series, mix string, threads, size int) Spec {
		shards := s.Shards
		if shards == 0 {
			shards = sc.Shards
		}
		return Spec{
			Structure:    s.Structure,
			Blocking:     s.Blocking,
			TxnNonAtomic: s.NonAtomic,
			Threads:      threads,
			KeyRange:     sc.SmallKeys,
			Alpha:        0.99,
			Duration:     sc.Duration,
			Seed:         sc.Seed,
			TxnMix:       mix,
			TxnSize:      size,
			Shards:       shards,
			Optimistic:   s.Optimistic,
		}
	}
	specs = append(specs, FigureSpec{
		ID:     "ext-txn",
		Paper:  "Extension: transfer-mix transactions on the txn layer, zipfian 0.99, thread sweep",
		XLabel: "threads",
		Series: txnSeries,
		Xs:     threadsXs,
		SpecFor: func(sc Scale, s Series, x string) Spec {
			return txnSpec(sc, s, "transfer", atoi(x), 2)
		},
	}, FigureSpec{
		ID:     "ext-txn-keys",
		Paper:  "Extension: YCSB-T-like transactions, zipfian 0.99, keys-per-transaction sweep",
		XLabel: "keys/txn",
		Series: txnSeries,
		Xs:     func(Scale) []string { return []string{"1", "2", "4", "8", "16"} },
		SpecFor: func(sc Scale, s Series, x string) Spec {
			return txnSpec(sc, s, "ycsbt", sc.Base, atoi(x))
		},
	})
	// Extension: the helping machinery made visible (DESIGN.md S14).
	// The x axis is "threads@stall-every" — full subscription and
	// oversubscription, each with no stall injection, mild injection and
	// aggressive injection. With obs metrics forced on, the lock-free
	// arm's helping rate (helps/op in the metrics table, helps over time
	// in the samples series) should rise with both oversubscription and
	// stall frequency, while the blocking arm records no helping at all
	// — the same machinery ext-stall shows as a throughput gap, read out
	// directly as events.
	specs = append(specs, FigureSpec{
		ID:     "ext-help",
		Paper:  "Extension: helping and retry rates under oversubscription and stall injection, 50% updates, alpha 0.75",
		XLabel: "threads@stall-every",
		Series: []Series{
			{Name: "leaftree-lf", Structure: "leaftree", Blocking: false},
			{Name: "leaftree-bl", Structure: "leaftree", Blocking: true},
		},
		Xs: func(sc Scale) []string {
			var out []string
			for _, t := range []int{sc.Base, sc.Over} {
				for _, st := range []string{"0", "200", "20"} {
					out = append(out, fmt.Sprintf("%d@%s", t, st))
				}
			}
			return out
		},
		SpecFor: func(sc Scale, s Series, x string) Spec {
			var threads, stall int
			if _, err := fmt.Sscanf(x, "%d@%d", &threads, &stall); err != nil {
				panic(fmt.Sprintf("harness: malformed ext-help x value %q: %v", x, err))
			}
			sp := base(sc, s)
			sp.KeyRange, sp.Threads, sp.UpdatePct, sp.Alpha = sc.SmallKeys, threads, 50, 0.75
			sp.StallEvery = stall
			sp.Metrics = true // the metrics ARE this figure's payload
			return sp
		},
	})
	// Extension: epoch-consistent whole-store snapshots (DESIGN.md S17).
	// The foreground is the transfer storm of ext-txn; the "+snap" arms
	// additionally run the background snapshot loop. Two readouts per
	// point: Mops (the writers' throughput — compare with the loop-free
	// arm for the slowdown snapshots impose) and SnapKeysPerSec (how
	// fast a consistent whole-store iteration proceeds under the storm),
	// for composed lock-free vs blocking shard locks.
	specs = append(specs, FigureSpec{
		ID:     "ext-snap",
		Paper:  "Extension: whole-store snapshots under a transfer storm — writer slowdown and snapshot scan rate, thread sweep",
		XLabel: "threads",
		Series: []Series{
			{Name: "txn-leaftree-lf", Structure: "leaftree"},
			{Name: "txn-leaftree-lf+snap", Structure: "leaftree", SnapshotLoop: true},
			{Name: "txn-leaftree-bl", Structure: "leaftree", Blocking: true},
			{Name: "txn-leaftree-bl+snap", Structure: "leaftree", Blocking: true, SnapshotLoop: true},
		},
		Xs: threadsXs,
		SpecFor: func(sc Scale, s Series, x string) Spec {
			sp := txnSpec(sc, s, "transfer", atoi(x), 2)
			sp.SnapshotLoop = s.SnapshotLoop
			return sp
		},
	})
	specs = append(specs, FigureSpec{
		ID:     "ext-ycsb-shards",
		Paper:  "Extension: YCSB-A on the KV store, oversubscribed threads, zipfian 0.99, shard sweep",
		XLabel: "shards",
		Series: kvShardSeries,
		Xs:     func(Scale) []string { return []string{"1", "2", "4", "8", "16"} },
		SpecFor: func(sc Scale, s Series, x string) Spec {
			return ycsbSpec(sc, s, "a", sc.Over, atoi(x))
		},
	})
	return specs
}

// Figures returns the experiment index keyed by figure id.
func Figures() map[string]FigureSpec {
	out := map[string]FigureSpec{}
	for _, f := range figSpecs() {
		out[f.ID] = f
	}
	return out
}

// FigureIDs returns the sorted experiment ids.
func FigureIDs() []string {
	var ids []string
	for _, f := range figSpecs() {
		ids = append(ids, f.ID)
	}
	sort.Strings(ids)
	return ids
}

// RunFigure measures every (series, x) point of a figure.
func RunFigure(fs FigureSpec, sc Scale) (Figure, error) {
	fig := Figure{ID: fs.ID, Paper: fs.Paper, XLabel: fs.XLabel}
	for _, x := range fs.Xs(sc) {
		for _, s := range fs.Series {
			spec := fs.SpecFor(sc, s, x)
			spec.Figure = fs.ID
			if sc.Metrics {
				spec.Metrics = true
			}
			st, err := RunStats(spec, sc.Warmup, sc.Repeats)
			if err != nil {
				return fig, err
			}
			fig.Points = append(fig.Points, Point{
				Series: s.Name, X: x, Mops: st.Mops, Std: st.Std,
				Allocs: st.AllocsPerOp,
				P50:    st.P50, P95: st.P95, P99: st.P99,
				OptRestarts: st.OptRestarts, OptEscalations: st.OptEscalations,
				FairMaxMin: st.FairMaxMin, FairCoV: st.FairCoV,
				SnapCycles: st.SnapCycles, SnapKeysPerSec: st.SnapKeysPerSec,
				Metrics: st.PointMetrics(),
			})
		}
	}
	return fig, nil
}
