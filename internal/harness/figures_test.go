package harness

import (
	"math"
	"testing"
	"time"
)

func TestAtofAtoiParse(t *testing.T) {
	if atof("0.75") != 0.75 || atof("0") != 0 {
		t.Fatalf("atof misparses valid spec values")
	}
	if atoi("216") != 216 || atoi("0") != 0 {
		t.Fatalf("atoi misparses valid spec values")
	}
}

// The spec tables are compile-time data: malformed x values are
// programming errors and must panic instead of silently reading as 0
// (a zero thread count or alpha would quietly distort a whole figure).
func TestAtofPanicsOnMalformed(t *testing.T) {
	for _, bad := range []string{"", "abc", "1.2.3", "0.75x"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("atof(%q) did not panic", bad)
				}
			}()
			atof(bad)
		}()
	}
}

func TestAtoiPanicsOnMalformed(t *testing.T) {
	for _, bad := range []string{"", "abc", "3.5", "12 "} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("atoi(%q) did not panic", bad)
				}
			}()
			atoi(bad)
		}()
	}
}

// TestYCSBFigureSeriesShards pins the series/shard wiring of the KV
// figures: the unsharded control really runs one shard and the others
// take the Scale default; the shard sweep takes its count from x.
func TestYCSBFigureSeriesShards(t *testing.T) {
	sc := DefaultScale()
	figs := Figures()
	fa, ok := figs["ext-ycsb-a"]
	if !ok {
		t.Fatal("ext-ycsb-a missing")
	}
	for _, s := range fa.Series {
		spec := fa.SpecFor(sc, s, "4")
		if spec.YCSB != "a" || spec.Threads != 4 {
			t.Fatalf("series %s: bad spec %+v", s.Name, spec)
		}
		wantShards := sc.Shards
		if s.Shards != 0 {
			wantShards = s.Shards
		}
		if spec.Shards != wantShards {
			t.Fatalf("series %s: shards %d, want %d", s.Name, spec.Shards, wantShards)
		}
	}
	control := false
	for _, s := range fa.Series {
		if s.Shards == 1 {
			control = true
		}
	}
	if !control {
		t.Fatal("ext-ycsb-a has no unsharded control series")
	}

	fs, ok := figs["ext-ycsb-shards"]
	if !ok {
		t.Fatal("ext-ycsb-shards missing")
	}
	for _, x := range fs.Xs(sc) {
		spec := fs.SpecFor(sc, fs.Series[0], x)
		if spec.Shards != atoi(x) {
			t.Fatalf("shard sweep x=%s built %d shards", x, spec.Shards)
		}
		if spec.Threads != sc.Over {
			t.Fatalf("shard sweep should run oversubscribed (%d), got %d", sc.Over, spec.Threads)
		}
	}
}

// TestExtAllocFigureWiring pins the allocation-ablation spec: the fresh
// arm really disables pooling on the built runtime, the pooled and
// blocking arms keep it, and a measured point carries the allocs/op
// metric through Result and Stats.
func TestExtAllocFigureWiring(t *testing.T) {
	sc := DefaultScale()
	figs := Figures()
	fa, ok := figs["ext-alloc"]
	if !ok {
		t.Fatal("ext-alloc missing")
	}
	var sawFresh, sawPooled, sawBlocking bool
	for _, s := range fa.Series {
		spec := fa.SpecFor(sc, s, "10")
		if spec.NoPool != s.NoPool || spec.UpdatePct != 10 {
			t.Fatalf("series %s: bad spec %+v", s.Name, spec)
		}
		_, rt, err := NewInstance(spec)
		if err != nil {
			t.Fatalf("series %s: %v", s.Name, err)
		}
		if rt.Pooling() == spec.NoPool {
			t.Fatalf("series %s: runtime pooling=%v with NoPool=%v", s.Name, rt.Pooling(), spec.NoPool)
		}
		switch {
		case s.NoPool:
			sawFresh = true
		case s.Blocking:
			sawBlocking = true
		default:
			sawPooled = true
		}
	}
	if !sawFresh || !sawPooled || !sawBlocking {
		t.Fatalf("ext-alloc must cover pooled, GC-fresh and blocking arms (got %v %v %v)",
			sawPooled, sawFresh, sawBlocking)
	}

	spec := fa.SpecFor(sc, fa.Series[0], "10")
	spec.KeyRange = 256
	spec.Threads = 2
	spec.Duration = 5 * time.Millisecond
	res, err := RunTimed(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 || math.IsNaN(res.AllocsPerOp) || res.AllocsPerOp < 0 {
		t.Fatalf("allocs/op not recorded: ops=%d allocs=%v", res.Ops, res.AllocsPerOp)
	}
	st, err := RunStats(spec, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(st.AllocsPerOp) || st.AllocsPerOp < 0 {
		t.Fatalf("Stats.AllocsPerOp not aggregated: %v", st.AllocsPerOp)
	}
}
