package harness

import (
	"math/rand"
	"testing"
	"time"
)

func TestLatencyBucketRoundTrip(t *testing.T) {
	// latLower must be the smallest value mapping to its bucket, and
	// buckets must tile the range without gaps or overlaps.
	for i := 0; i < latBuckets; i++ {
		lo := latLower(i)
		if latIndex(lo) != i {
			t.Fatalf("bucket %d: latIndex(latLower)=%d", i, latIndex(lo))
		}
		if lo > 0 && latIndex(lo-1) != i-1 {
			t.Fatalf("bucket %d: predecessor of lower bound maps to %d, want %d",
				i, latIndex(lo-1), i-1)
		}
	}
	if latIndex(^uint64(0)) != latBuckets-1 {
		t.Fatalf("max value maps to %d, want last bucket %d", latIndex(^uint64(0)), latBuckets-1)
	}
}

func TestLatencyRelativeError(t *testing.T) {
	// Quantization error is bounded by one sub-bucket: 12.5%.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20000; i++ {
		ns := uint64(rng.Int63())
		lo := latLower(latIndex(ns))
		if lo > ns {
			t.Fatalf("lower bound %d above value %d", lo, ns)
		}
		if ns >= 8 && float64(ns-lo) > float64(ns)*0.125 {
			t.Fatalf("value %d quantized to %d: error > 12.5%%", ns, lo)
		}
	}
}

func TestLatencyQuantiles(t *testing.T) {
	h := NewLatencyHist()
	if h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram quantile nonzero")
	}
	// 1..1000 µs uniformly: p50 ~ 500µs, p99 ~ 990µs (within bucket
	// quantization of 12.5%).
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	check := func(q float64, want time.Duration) {
		got := h.Quantile(q)
		lo := time.Duration(float64(want) * 0.85)
		if got < lo || got > want {
			t.Fatalf("q%.2f = %v, want in [%v, %v]", q, got, lo, want)
		}
	}
	check(0.50, 500*time.Microsecond)
	check(0.95, 950*time.Microsecond)
	check(0.99, 990*time.Microsecond)
	if h.Quantile(0) > time.Microsecond {
		t.Fatalf("q0 = %v, want ~1µs", h.Quantile(0))
	}
	if h.Quantile(1) < 870*time.Microsecond {
		t.Fatalf("q1 = %v, want ~1000µs", h.Quantile(1))
	}
}

func TestLatencyMerge(t *testing.T) {
	a, b := NewLatencyHist(), NewLatencyHist()
	for i := 0; i < 100; i++ {
		a.Record(time.Millisecond)
		b.Record(time.Second)
	}
	a.Merge(b)
	a.Merge(nil)
	if a.Count() != 200 {
		t.Fatalf("merged count %d", a.Count())
	}
	if p := a.Quantile(0.25); p > 2*time.Millisecond {
		t.Fatalf("p25 after merge %v, want ~1ms", p)
	}
	if p := a.Quantile(0.75); p < 800*time.Millisecond {
		t.Fatalf("p75 after merge %v, want ~1s", p)
	}
}
