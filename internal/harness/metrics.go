package harness

// Harness-side surface of the obs runtime-metrics layer (DESIGN.md
// S14): window deltas, the sampled time series, per-thread fairness and
// the per-point summary flockbench renders. The hot-path side (padded
// per-Proc blocks, the enable flag) lives in internal/obs; this file
// only aggregates what measure() snapshotted.

import (
	"math"

	"flock/internal/obs"
)

// MetricSample is one point of a measured window's time series:
// cumulative counter deltas since the window began, at AtMs
// milliseconds from the window start. Consumers diff consecutive
// samples for rates (helps/s, CAS-fails/s over time).
type MetricSample struct {
	AtMs     float64 `json:"t_ms"`
	Helps    uint64  `json:"helps"`
	CASFails uint64  `json:"cas_fails"`
	// Goroutines is the process goroutine count at the sample instant
	// and GCPauseNs the cumulative GC stop-the-world pause time since
	// the window began (runtime.ReadMemStats PauseTotalNs delta) — the
	// two runtime-level signals that distinguish scheduler pressure and
	// collector stalls from lock contention in a window's time series.
	Goroutines int    `json:"goroutines"`
	GCPauseNs  uint64 `json:"gc_pause_ns"`
}

// MetricsWindow is the obs view of one measured window: the counter
// deltas between the window-edge snapshots, the sampled time series,
// and (KV/txn paths) the per-shard routed-op counts for skew.
type MetricsWindow struct {
	Window   obs.Counts
	Samples  []MetricSample
	ShardOps []uint64
}

// PointMetrics is the per-point metrics summary figures and flockbench
// emit: window counters normalized per completed operation, plus pool,
// epoch, transaction and shard-skew derivations. Rendered into the
// `-metrics` table sections, the JSONL "metrics" object and the
// `:metrics` CSV columns.
type PointMetrics struct {
	HelpsPerOp     float64 `json:"helps_per_op"`
	HelpsRecvPerOp float64 `json:"helps_recv_per_op"`
	ReplaysPerOp   float64 `json:"replays_per_op"`
	CASFailsPerOp  float64 `json:"cas_fails_per_op"`
	SpinsPerOp     float64 `json:"spins_per_op"`
	// PoolHitRate is freelist hits over hits+misses (0 when the window
	// allocated nothing through the pools).
	PoolHitRate float64 `json:"pool_hit_rate"`
	// EpochAdvances counts global-epoch advancements; EpochLagEpochs is
	// the mean number of epochs a reclaimed batch waited between
	// retirement and reclamation.
	EpochAdvances  uint64  `json:"epoch_advances"`
	EpochLagEpochs float64 `json:"epoch_lag_epochs"`
	// OptRestartsPerOp/OptEscalationsPerOp are the obs-mirrored
	// optimistic-read rates (the absolute store counters already ride on
	// Point.OptRestarts/OptEscalations).
	OptRestartsPerOp    float64 `json:"opt_restarts_per_op"`
	OptEscalationsPerOp float64 `json:"opt_escalations_per_op"`
	// TxnHelpedPerOp is the fraction of committed transactions that a
	// foreign Proc ran at least part of; TxnDepthHist is the
	// nested-acquire depth histogram (buckets 1, 2, 3, 4, 5-8, 9+).
	// Both zero-valued outside the txn path.
	TxnHelpedPerOp float64  `json:"txn_helped_per_op,omitempty"`
	TxnDepthHist   []uint64 `json:"txn_depth_hist,omitempty"`
	// ShardSkew is max over mean of the per-shard routed-op counts (1.0
	// = perfectly uniform routing); ShardOps is the raw vector. Both
	// empty outside the KV/txn paths.
	ShardSkew float64  `json:"shard_skew,omitempty"`
	ShardOps  []uint64 `json:"shard_ops,omitempty"`
	// Samples is the window's cumulative time series (last repetition).
	Samples []MetricSample `json:"samples,omitempty"`
}

// PointMetrics derives the per-point summary from the aggregated stats;
// nil when the run was not collected with Spec.Metrics.
func (st Stats) PointMetrics() *PointMetrics {
	m := st.Metrics
	if m == nil {
		return nil
	}
	ops := float64(st.Ops)
	if ops == 0 {
		ops = 1 // zero-op windows report absolute counts as rates
	}
	w := m.Window
	pm := &PointMetrics{
		HelpsPerOp:          float64(w.Get(obs.HelpsGiven)) / ops,
		HelpsRecvPerOp:      float64(w.Get(obs.HelpsReceived)) / ops,
		ReplaysPerOp:        float64(w.Get(obs.ThunkReplays)) / ops,
		CASFailsPerOp:       float64(w.Get(obs.InstallCASFails)) / ops,
		SpinsPerOp:          float64(w.Get(obs.StrictSpins)) / ops,
		EpochAdvances:       w.Get(obs.EpochAdvances),
		OptRestartsPerOp:    float64(w.Get(obs.OptRestarts)) / ops,
		OptEscalationsPerOp: float64(w.Get(obs.OptEscalations)) / ops,
		Samples:             m.Samples,
	}
	if hm := w.Get(obs.PoolHits) + w.Get(obs.PoolMisses); hm > 0 {
		pm.PoolHitRate = float64(w.Get(obs.PoolHits)) / float64(hm)
	}
	if b := w.Get(obs.EpochReclaimBatches); b > 0 {
		pm.EpochLagEpochs = float64(w.Get(obs.EpochReclaimLagEpochs)) / float64(b)
	}
	depth := []uint64{
		w.Get(obs.TxnDepth1), w.Get(obs.TxnDepth2), w.Get(obs.TxnDepth3),
		w.Get(obs.TxnDepth4), w.Get(obs.TxnDepth5to8), w.Get(obs.TxnDepth9Plus),
	}
	for _, d := range depth {
		if d > 0 {
			pm.TxnDepthHist = depth
			pm.TxnHelpedPerOp = float64(w.Get(obs.TxnHelped)) / ops
			break
		}
	}
	if len(m.ShardOps) > 1 {
		var sum, max uint64
		for _, n := range m.ShardOps {
			sum += n
			if n > max {
				max = n
			}
		}
		if sum > 0 {
			mean := float64(sum) / float64(len(m.ShardOps))
			pm.ShardSkew = float64(max) / mean
			pm.ShardOps = m.ShardOps
		}
	}
	return pm
}

// fairness computes the per-thread op-count spread: the busiest
// thread's count over the laziest's (the laziest clamped to >= 1 so a
// zero-op thread on a tiny window yields a large finite ratio rather
// than +Inf, which JSON cannot carry), and the coefficient of variation.
func fairness(counts []uint64) (maxMin, cov float64) {
	if len(counts) == 0 {
		return 1, 0
	}
	var sum uint64
	min, max := counts[0], counts[0]
	for _, c := range counts {
		sum += c
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if sum == 0 {
		return 1, 0
	}
	lo := float64(min)
	if lo < 1 {
		lo = 1
	}
	maxMin = float64(max) / lo
	mean := float64(sum) / float64(len(counts))
	var v float64
	for _, c := range counts {
		d := float64(c) - mean
		v += d * d
	}
	cov = math.Sqrt(v/float64(len(counts))) / mean
	return maxMin, cov
}

// subSlices returns cur - old elementwise, saturating at zero and
// tolerating length mismatches (extra cur entries pass through).
func subSlices(cur, old []uint64) []uint64 {
	out := make([]uint64, len(cur))
	for i, c := range cur {
		if i < len(old) && old[i] < c {
			out[i] = c - old[i]
		} else if i >= len(old) {
			out[i] = c
		}
	}
	return out
}

// addSlices returns a + b elementwise, growing to the longer length.
func addSlices(a, b []uint64) []uint64 {
	if len(b) > len(a) {
		a, b = b, a
	}
	out := make([]uint64, len(a))
	copy(out, a)
	for i, v := range b {
		out[i] += v
	}
	return out
}
