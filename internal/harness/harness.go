// Package harness runs the paper's throughput experiments (§8): prefill
// a set structure to half its key range, then hammer it with a mixed
// workload from T worker goroutines for a fixed duration and report
// Mop/s. It also defines the per-figure experiment specs used by
// cmd/flockbench and the repository's benchmarks (see DESIGN.md §4).
package harness

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	flock "flock/internal/core"

	"flock/internal/baseline/ellen"
	"flock/internal/baseline/harris"
	"flock/internal/baseline/natarajan"
	"flock/internal/baseline/olcart"
	"flock/internal/structures/abtree"
	"flock/internal/structures/arttree"
	"flock/internal/structures/couplist"
	"flock/internal/structures/dlist"
	"flock/internal/structures/hashtable"
	"flock/internal/structures/lazylist"
	"flock/internal/structures/leaftreap"
	"flock/internal/structures/leaftree"
	"flock/internal/structures/set"
	"flock/internal/workload"
)

// Factory builds a structure instance sized for keyRange.
type Factory func(rt *flock.Runtime, keyRange uint64) set.Set

// registry maps structure names (as used in figure series and on the
// flockbench command line) to factories.
var registry = map[string]Factory{
	"lazylist":  func(rt *flock.Runtime, _ uint64) set.Set { return lazylist.New(rt) },
	"dlist":     func(rt *flock.Runtime, _ uint64) set.Set { return dlist.New(rt) },
	"hashtable": func(rt *flock.Runtime, r uint64) set.Set { return hashtable.New(rt, int(r)) },
	"leaftree":  func(rt *flock.Runtime, _ uint64) set.Set { return leaftree.New(rt) },
	"leaftree-strict": func(rt *flock.Runtime, _ uint64) set.Set {
		return leaftree.NewStrict(rt)
	},
	"leaftreap": func(rt *flock.Runtime, _ uint64) set.Set { return leaftreap.New(rt) },
	"abtree":    func(rt *flock.Runtime, _ uint64) set.Set { return abtree.New(rt) },
	"abtree-strict": func(rt *flock.Runtime, _ uint64) set.Set {
		return abtree.NewStrict(rt)
	},
	"arttree":    func(rt *flock.Runtime, _ uint64) set.Set { return arttree.New(rt) },
	"couplist":   func(rt *flock.Runtime, _ uint64) set.Set { return couplist.New(rt) },
	"harris":     func(*flock.Runtime, uint64) set.Set { return harris.New(false) },
	"harris_opt": func(*flock.Runtime, uint64) set.Set { return harris.New(true) },
	"natarajan":  func(*flock.Runtime, uint64) set.Set { return natarajan.New() },
	"ellen":      func(*flock.Runtime, uint64) set.Set { return ellen.New() },
	"olcart":     func(*flock.Runtime, uint64) set.Set { return olcart.New() },
}

// Structures returns the sorted registry keys.
func Structures() []string {
	var out []string
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Spec describes one throughput measurement point.
type Spec struct {
	Structure string
	Blocking  bool // lock mode for flock structures (ignored by baselines)
	Threads   int
	KeyRange  uint64
	UpdatePct int
	Alpha     float64
	HashKeys  bool // sparsify keys (the paper does this for arttree)
	Duration  time.Duration
	Seed      uint64
	// StallEvery, when nonzero, injects a descheduling event inside
	// every n-th critical section (flock structures only): the explicit
	// form of the oversubscription phenomenon (DESIGN.md S3).
	StallEvery int
}

// Result is one measured point.
type Result struct {
	Ops     uint64
	Elapsed time.Duration
	Mops    float64
}

// NewInstance builds the named structure on a fresh runtime in the
// requested mode. It returns the runtime for Proc registration.
func NewInstance(spec Spec) (set.Set, *flock.Runtime, error) {
	f, ok := registry[spec.Structure]
	if !ok {
		return nil, nil, fmt.Errorf("harness: unknown structure %q (have %v)", spec.Structure, Structures())
	}
	rt := flock.New()
	rt.SetBlocking(spec.Blocking)
	return f(rt, spec.KeyRange), rt, nil
}

// Prefill inserts the deterministic half of [1, KeyRange] (§8: "prefill
// the data structure with half the keys in the range"), in parallel and
// in pseudo-random order (ascending order would degenerate the
// unbalanced trees; the paper's trees are balanced in expectation from
// random insertion).
func Prefill(s set.Set, rt *flock.Runtime, spec Spec) {
	workers := runtime.GOMAXPROCS(0) * 2
	if workers > 8 {
		workers = 8
	}
	perm := workload.NewPermutation(spec.KeyRange, spec.Seed^0x5eed)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := rt.Register()
			defer p.Unregister()
			for i := uint64(w) + 1; i <= spec.KeyRange; i += uint64(workers) {
				k := perm.Apply(i)
				if spec.HashKeys {
					if hk, in := workload.PrefillKeyHashed(k); in {
						s.Insert(p, hk, hk)
					}
				} else if workload.PrefillKey(k) {
					s.Insert(p, k, k)
				}
			}
		}(w)
	}
	wg.Wait()
}

// RunTimed builds, prefills and measures one spec.
func RunTimed(spec Spec) (Result, error) {
	s, rt, err := NewInstance(spec)
	if err != nil {
		return Result{}, err
	}
	Prefill(s, rt, spec)
	// Injection starts only after prefill so setup stays fast.
	rt.SetStallInjection(spec.StallEvery)

	var stop atomic.Bool
	var total atomic.Uint64
	start := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < spec.Threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := rt.Register()
			defer p.Unregister()
			mix := workload.NewMix(spec.KeyRange, spec.UpdatePct, spec.Alpha,
				spec.HashKeys, spec.Seed+uint64(w)*0x9e3779b9)
			<-start
			var n uint64
			for !stop.Load() {
				op, k := mix.Next()
				switch op {
				case workload.OpInsert:
					s.Insert(p, k, k)
				case workload.OpDelete:
					s.Delete(p, k)
				default:
					s.Find(p, k)
				}
				n++
			}
			total.Add(n)
		}(w)
	}
	t0 := time.Now()
	close(start)
	time.Sleep(spec.Duration)
	stop.Store(true)
	wg.Wait()
	el := time.Since(t0)

	ops := total.Load()
	return Result{
		Ops:     ops,
		Elapsed: el,
		Mops:    float64(ops) / el.Seconds() / 1e6,
	}, nil
}

// RunAveraged performs warmup runs followed by measured repetitions,
// following the paper's methodology (one warmup, average of the rest),
// and returns the mean and standard deviation of Mop/s.
func RunAveraged(spec Spec, warmup, repeats int) (mean, std float64, err error) {
	for i := 0; i < warmup; i++ {
		if _, err = RunTimed(spec); err != nil {
			return 0, 0, err
		}
	}
	if repeats < 1 {
		repeats = 1
	}
	vals := make([]float64, 0, repeats)
	for i := 0; i < repeats; i++ {
		r, err := RunTimed(spec)
		if err != nil {
			return 0, 0, err
		}
		vals = append(vals, r.Mops)
	}
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	for _, v := range vals {
		std += (v - mean) * (v - mean)
	}
	std = math.Sqrt(std / float64(len(vals)))
	return mean, std, nil
}
