// Package harness runs the paper's throughput experiments (§8): prefill
// a set structure to half its key range, then hammer it with a mixed
// workload from T worker goroutines for a fixed duration and report
// Mop/s. It also defines the per-figure experiment specs used by
// cmd/flockbench and the repository's benchmarks (see DESIGN.md S8).
package harness

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	flock "flock/internal/core"
	"flock/internal/obs"
	"flock/internal/obs/trace"

	"flock/internal/baseline/ellen"
	"flock/internal/baseline/harris"
	"flock/internal/baseline/natarajan"
	"flock/internal/baseline/olcart"
	"flock/internal/kv"
	"flock/internal/structures/abtree"
	"flock/internal/structures/arttree"
	"flock/internal/structures/couplist"
	"flock/internal/structures/dlist"
	"flock/internal/structures/hashtable"
	"flock/internal/structures/lazylist"
	"flock/internal/structures/leaftreap"
	"flock/internal/structures/leaftree"
	"flock/internal/structures/set"
	"flock/internal/txn"
	"flock/internal/workload"
)

// Factory builds a structure instance sized for keyRange.
type Factory func(rt *flock.Runtime, keyRange uint64) set.Set

// registry maps structure names (as used in figure series and on the
// flockbench command line) to factories.
var registry = map[string]Factory{
	"lazylist":  func(rt *flock.Runtime, _ uint64) set.Set { return lazylist.New(rt) },
	"dlist":     func(rt *flock.Runtime, _ uint64) set.Set { return dlist.New(rt) },
	"hashtable": func(rt *flock.Runtime, r uint64) set.Set { return hashtable.New(rt, int(r)) },
	"leaftree":  func(rt *flock.Runtime, _ uint64) set.Set { return leaftree.New(rt) },
	"leaftree-strict": func(rt *flock.Runtime, _ uint64) set.Set {
		return leaftree.NewStrict(rt)
	},
	"leaftreap": func(rt *flock.Runtime, _ uint64) set.Set { return leaftreap.New(rt) },
	"abtree":    func(rt *flock.Runtime, _ uint64) set.Set { return abtree.New(rt) },
	"abtree-strict": func(rt *flock.Runtime, _ uint64) set.Set {
		return abtree.NewStrict(rt)
	},
	"arttree":    func(rt *flock.Runtime, _ uint64) set.Set { return arttree.New(rt) },
	"couplist":   func(rt *flock.Runtime, _ uint64) set.Set { return couplist.New(rt) },
	"harris":     func(*flock.Runtime, uint64) set.Set { return harris.New(false) },
	"harris_opt": func(*flock.Runtime, uint64) set.Set { return harris.New(true) },
	"natarajan":  func(*flock.Runtime, uint64) set.Set { return natarajan.New() },
	"ellen":      func(*flock.Runtime, uint64) set.Set { return ellen.New() },
	"olcart":     func(*flock.Runtime, uint64) set.Set { return olcart.New() },
}

// txnCapable lists the registry structures the transactional layer may
// be built over: flock structures whose updates use simply-nested
// try-locks, so their operations are loggable thunk code that replays
// deterministically inside a composed transaction (DESIGN.md S11). The
// non-flock baselines bypass the runtime log entirely (a helper's
// replay would re-apply their writes non-idempotently), and the
// "-strict" variants acquire strict locks, which are not simply nested
// (§4); both would silently corrupt transactional atomicity.
var txnCapable = map[string]bool{
	"lazylist":  true,
	"dlist":     true,
	"hashtable": true,
	"leaftree":  true,
	"leaftreap": true,
	"abtree":    true,
	"arttree":   true,
	"couplist":  true,
}

// TxnCapableStructures returns the sorted names of the structures the
// transactional layer may be built over. internal/txn's conformance
// tests iterate this list, so vouching for a structure here without
// suite coverage fails the build rather than shipping silently.
func TxnCapableStructures() []string {
	var out []string
	for s := range txnCapable {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Structures returns the sorted registry keys.
func Structures() []string {
	var out []string
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Spec describes one throughput measurement point.
type Spec struct {
	Structure string
	Blocking  bool // lock mode for flock structures (ignored by baselines)
	Threads   int
	KeyRange  uint64
	UpdatePct int
	Alpha     float64
	HashKeys  bool // sparsify keys (the paper does this for arttree)
	Duration  time.Duration
	Seed      uint64
	// StallEvery, when nonzero, injects a descheduling event inside
	// every n-th critical section (flock structures only): the explicit
	// form of the oversubscription phenomenon (DESIGN.md S3).
	StallEvery int
	// YCSB, when nonempty ("a", "b", "c", "e" or "f"), selects the KV
	// path: the workload runs Get/Put/ReadModifyWrite/Scan against a
	// kv.Store of Shards shards built over Structure, instead of the
	// paper's insert/delete/find mix against a bare structure.
	YCSB string
	// ScanLen is the maximum scan length for scan-bearing YCSB mixes
	// ("e"); each scan's length is zipf-drawn from [1, ScanLen]. Values
	// < 1 mean workload.DefaultScanLen. Ignored without scans.
	ScanLen int
	// Shards is the kv.Store shard count for the YCSB path (values < 1
	// mean 1, the unsharded control). Ignored when YCSB is empty.
	Shards int
	// NoPool disables the flock core's descriptor/log-block/mbox
	// pooling (the GC-fresh arm of the ext-alloc ablation). Ignored by
	// the non-flock baselines.
	NoPool bool
	// TxnMix, when nonempty ("transfer" or "ycsbt"), selects the
	// transactional path: multi-key atomic operations against a
	// txn.Store of Shards shards built over Structure (DESIGN.md S11).
	// Takes precedence over YCSB.
	TxnMix string
	// TxnSize is the number of keys per multi-key transaction on the
	// transactional path (values < 1 mean 1; transfers always touch 2).
	TxnSize int
	// TxnNonAtomic selects the per-key non-atomic ablation arm of the
	// transactional path (no shard locks; kv batch behaviour). When
	// false the arm follows Blocking: composed blocking locks vs
	// composed lock-free locks.
	TxnNonAtomic bool
	// Optimistic routes the KV path's reads (Get, Scan, MultiGet)
	// through the unlogged version-validated arm
	// (kv.Options.OptimisticReads). Requesting it over a structure
	// without the set.OptimisticReader capability is refused up front,
	// like the Scannable gate. Ignored when YCSB and TxnMix are empty.
	Optimistic bool
	// SnapshotLoop runs a dedicated background goroutine alongside the
	// measured workload that repeatedly takes a whole-store snapshot
	// (kv.Store.Snapshot), iterates it fully and closes it, for the
	// duration of the window (transactional path only). The measured
	// Mops is still the foreground workload's — the snapshot loop's
	// progress is reported separately (Result.SnapCycles/SnapKeys) — so
	// comparing a series with and without the loop reads out the
	// concurrent-writer slowdown snapshots impose, and the loop's key
	// rate reads out snapshot scan throughput under the write storm.
	// Requires a scannable structure; refused up front otherwise.
	SnapshotLoop bool
	// Metrics enables the obs runtime-metrics layer for the measured
	// window: measure() flips the obs flag on around the window (and
	// restores it after), snapshots counters at the window edges, and
	// samples cumulative snapshots at MetricsInterval to produce the
	// time series in Result.Metrics. Off by default — the disabled layer
	// is a cold-bool branch with zero allocations (obs package doc).
	Metrics bool
	// MetricsInterval is the time-series sampling cadence; values <= 0
	// mean Duration/8 (clamped to >= 1ms).
	MetricsInterval time.Duration
	// Trace enables the lock-event flight recorder (internal/obs/trace)
	// for the measured window: measure() flips the trace flag on around
	// the window (restoring it after, like Metrics), opens a fresh
	// collection window with trace.Reset, and attaches the stitched
	// snapshot to Result.Trace. Off by default — the disabled recorder
	// is a cold-bool branch per emission site.
	Trace bool
	// TraceDump, when nonempty (and Trace is set), arms the anomaly
	// dumper: the first sampled operation whose latency exceeds
	// TraceDumpP99Mult times the window's running p99 triggers a one-shot
	// Chrome-trace dump of the recorder's current contents to this path,
	// capturing the events surrounding the outlier while they are still
	// in the rings.
	TraceDump string
	// TraceDumpP99Mult is the anomaly threshold multiple; values <= 0
	// mean 8x.
	TraceDumpP99Mult float64
	// Figure is a label for the figure this spec was derived from
	// (RunFigure sets it); it only feeds the pprof "figure" label on
	// worker goroutines, so CPU profiles attribute samples per series.
	Figure string
}

// modeLabel names the spec's concurrency-control arm for pprof labels.
func (spec Spec) modeLabel() string {
	switch {
	case spec.TxnMix != "" && spec.TxnNonAtomic:
		return "nonatomic"
	case spec.Blocking:
		return "blocking"
	case spec.Optimistic:
		return "optimistic"
	default:
		return "lockfree"
	}
}

// figureLabel is Spec.Figure, or "adhoc" for specs built by hand.
func (spec Spec) figureLabel() string {
	if spec.Figure == "" {
		return "adhoc"
	}
	return spec.Figure
}

// Result is one measured point. Hist is the merged per-operation
// latency histogram (always recorded; log-bucketed, see LatencyHist).
// AllocsPerOp is the heap-allocation count per completed operation over
// the measured window (runtime.MemStats.Mallocs delta / Ops) — the
// metric the pooled commit path is designed to drive to zero.
type Result struct {
	Ops         uint64
	Elapsed     time.Duration
	Mops        float64
	AllocsPerOp float64
	Hist        *LatencyHist
	// OptRestarts counts failed optimistic validation attempts and
	// OptEscalations counts operations that fell back to the locked path
	// after MaxOptimistic failures, both summed from the store's always-on
	// counters over the measured window (KV and txn paths with
	// Spec.Optimistic; zero otherwise). The obs metrics layer mirrors the
	// same events per worker when Spec.Metrics is set (Metrics.Window).
	OptRestarts    uint64
	OptEscalations uint64
	// FairMaxMin and FairCoV summarize the per-thread op-count spread of
	// the window (always computed): the busiest thread's count over the
	// laziest's (clamped to >= 1 op to stay finite on tiny windows), and
	// the coefficient of variation across threads. 1.0 / 0.0 is perfect
	// fairness; helping tends to keep these low where blocking locks let
	// starved threads fall behind.
	FairMaxMin float64
	FairCoV    float64
	// SnapCycles and SnapKeys count the background snapshot loop's
	// completed whole-store iterations and total iterated keys (zero
	// unless Spec.SnapshotLoop; the loop always completes at least one
	// cycle, so a scannable spec reporting 0 cycles is a bug).
	SnapCycles uint64
	SnapKeys   uint64
	// Metrics holds the obs counter deltas, time series and per-shard op
	// counts for the window; nil unless Spec.Metrics was set.
	Metrics *MetricsWindow
	// Trace is the flight-recorder snapshot of the window (stitched
	// time-ordered events plus drop count); nil unless Spec.Trace was
	// set.
	Trace *trace.Trace
}

// P50 returns the median per-op latency (0 on an empty histogram).
func (r Result) P50() time.Duration { return r.Hist.Quantile(0.50) }

// P95 returns the 95th-percentile per-op latency.
func (r Result) P95() time.Duration { return r.Hist.Quantile(0.95) }

// P99 returns the 99th-percentile tail latency — where the paper's
// helping-under-oversubscription win shows up for a serving system.
func (r Result) P99() time.Duration { return r.Hist.Quantile(0.99) }

// NewInstance builds the named structure on a fresh runtime in the
// requested mode. It returns the runtime for Proc registration.
func NewInstance(spec Spec) (set.Set, *flock.Runtime, error) {
	f, ok := registry[spec.Structure]
	if !ok {
		return nil, nil, fmt.Errorf("harness: unknown structure %q (have %v)", spec.Structure, Structures())
	}
	var opts []flock.Option
	if spec.NoPool {
		opts = append(opts, flock.NoPool())
	}
	rt := flock.New(opts...)
	rt.SetBlocking(spec.Blocking)
	return f(rt, spec.KeyRange), rt, nil
}

// forEachPrefillKey runs the shared prefill loop: the deterministic
// half of [1, KeyRange] (§8: "prefill the data structure with half the
// keys in the range"), partitioned across parallel workers by
// permutation striding — pseudo-random insertion order, because
// ascending order would degenerate the unbalanced trees (the paper's
// trees are balanced in expectation from random insertion). setup runs
// once per worker goroutine and returns that worker's insert function
// (called with each prefill key, already hashed under spec.HashKeys)
// and its teardown.
func forEachPrefillKey(spec Spec, setup func() (put func(k uint64), done func())) {
	workers := runtime.GOMAXPROCS(0) * 2
	if workers > 8 {
		workers = 8
	}
	perm := workload.NewPermutation(spec.KeyRange, spec.Seed^0x5eed)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			put, done := setup()
			defer done()
			for i := uint64(w) + 1; i <= spec.KeyRange; i += uint64(workers) {
				k := perm.Apply(i)
				if spec.HashKeys {
					if hk, in := workload.PrefillKeyHashed(k); in {
						put(hk)
					}
				} else if workload.PrefillKey(k) {
					put(k)
				}
			}
		}(w)
	}
	wg.Wait()
}

// Prefill inserts the deterministic half of [1, KeyRange] into a bare
// structure (see forEachPrefillKey).
func Prefill(s set.Set, rt *flock.Runtime, spec Spec) {
	forEachPrefillKey(spec, func() (func(k uint64), func()) {
		p := rt.Register()
		return func(k uint64) { s.Insert(p, k, k) }, p.Unregister
	})
}

// RunTimed builds, prefills and measures one spec: the paper's set mix
// by default, the sharded-KV YCSB path when spec.YCSB is set, and the
// transactional path when spec.TxnMix is set. Every operation's latency
// is recorded into a per-worker log-bucketed histogram; the merged
// histogram rides along in the Result.
func RunTimed(spec Spec) (Result, error) {
	if spec.TxnMix != "" {
		return runTimedTxn(spec)
	}
	if spec.YCSB != "" {
		return runTimedKV(spec)
	}
	s, rt, err := NewInstance(spec)
	if err != nil {
		return Result{}, err
	}
	Prefill(s, rt, spec)
	// Injection starts only after prefill so setup stays fast.
	rt.SetStallInjection(spec.StallEvery)

	return measure(spec, func(w int, begin func(), stop *atomic.Bool, hist *LatencyHist) (uint64, error) {
		p := rt.Register()
		defer p.Unregister()
		mix := workload.NewMix(spec.KeyRange, spec.UpdatePct, spec.Alpha,
			spec.HashKeys, spec.Seed+uint64(w)*0x9e3779b9)
		begin()
		var n uint64
		for !stop.Load() {
			op, k := mix.Next()
			t0 := time.Now()
			switch op {
			case workload.OpInsert:
				s.Insert(p, k, k)
			case workload.OpDelete:
				s.Delete(p, k)
			default:
				s.Find(p, k)
			}
			hist.Record(time.Since(t0))
			n++
		}
		return n, nil
	})
}

// NewKVInstance builds the sharded KV store for a YCSB spec (exported
// for the root benchmarks, which drive their own worker loops). A
// scan-bearing mix (YCSB-E) over a structure without ordered scans
// (set.Scanner) is refused here, before any prefilling.
func NewKVInstance(spec Spec) (*kv.Store, error) {
	f, ok := registry[spec.Structure]
	if !ok {
		return nil, fmt.Errorf("harness: unknown structure %q (have %v)", spec.Structure, Structures())
	}
	probe, err := workload.NewYCSB(spec.YCSB, spec.KeyRange, spec.Alpha, spec.HashKeys, spec.Seed)
	if err != nil {
		return nil, err
	}
	st := kv.New(kv.Factory(f), kv.Options{
		Shards:          spec.Shards,
		Blocking:        spec.Blocking,
		NoPool:          spec.NoPool,
		KeyRange:        spec.KeyRange,
		OptimisticReads: spec.Optimistic,
	})
	if probe.HasScans() && !st.Scannable() {
		return nil, fmt.Errorf("harness: YCSB-%s has scans but structure %q does not implement set.Scanner (ordered structures only)",
			spec.YCSB, spec.Structure)
	}
	if spec.Optimistic && !st.OptimisticReads() {
		return nil, fmt.Errorf("harness: optimistic reads requested but structure %q does not implement set.OptimisticReader",
			spec.Structure)
	}
	if spec.Optimistic && probe.HasScans() && !st.OptimisticScans() {
		return nil, fmt.Errorf("harness: YCSB-%s has scans but structure %q does not implement set.OptimisticScanner",
			spec.YCSB, spec.Structure)
	}
	return st, nil
}

// NewYCSBMix builds one worker's generator for a YCSB spec, with the
// spec's scan-length bound applied — the single constructor both the
// harness driver and the root benchmarks use.
func NewYCSBMix(spec Spec, worker uint64) (*workload.YCSB, error) {
	mix, err := workload.NewYCSB(spec.YCSB, spec.KeyRange, spec.Alpha,
		spec.HashKeys, spec.Seed+worker*0x9e3779b9)
	if err != nil {
		return nil, err
	}
	mix.SetMaxScanLen(spec.ScanLen)
	return mix, nil
}

// ApplyYCSBOp applies one generated KV operation to the client — the
// shared dispatch, mirroring ApplyTxnOp, so the harness driver and the
// root benchmarks can never silently measure different operations for
// the same mix. n is the worker's operation counter (salts write
// values). Unknown kinds panic: a new YCSBOp must be wired here, not
// absorbed as a read.
func ApplyYCSBOp(c *kv.Client, mix *workload.YCSB, op workload.YCSBOp, k, n uint64) {
	switch op {
	case workload.YRead:
		c.Get(k)
	case workload.YUpdate, workload.YInsert:
		c.Put(k, k+n)
	case workload.YRMW:
		c.ReadModifyWrite(k, func(old uint64, _ bool) uint64 { return old + 1 })
	case workload.YScan:
		// YCSB-E semantics: the next ScanLen() records from k upward
		// (an open upper bound plus a limit, not a fixed key interval —
		// the key space is only half dense).
		c.Scan(k, math.MaxUint64, mix.ScanLen())
	default:
		panic(fmt.Sprintf("harness: unhandled YCSBOp %v", op))
	}
}

// PrefillKV loads the deterministic half of [1, KeyRange] into the
// store (same coin and parallel shuffled order as Prefill; see
// forEachPrefillKey).
func PrefillKV(st *kv.Store, spec Spec) {
	forEachPrefillKey(spec, func() (func(k uint64), func()) {
		c := st.Register()
		return func(k uint64) { c.Put(k, k) }, c.Close
	})
}

// runTimedKV measures one YCSB point against a sharded kv.Store.
func runTimedKV(spec Spec) (Result, error) {
	st, err := NewKVInstance(spec)
	if err != nil {
		return Result{}, err
	}
	PrefillKV(st, spec)
	st.SetStallInjection(spec.StallEvery)

	r0, e0 := st.OptimisticStats()
	so0 := st.ShardOps()
	res, err := measure(spec, func(w int, begin func(), stop *atomic.Bool, hist *LatencyHist) (uint64, error) {
		c := st.Register()
		defer c.Close()
		mix, err := NewYCSBMix(spec, uint64(w))
		if err != nil {
			return 0, err
		}
		begin()
		var n uint64
		for !stop.Load() {
			op, k := mix.Next()
			t0 := time.Now()
			ApplyYCSBOp(c, mix, op, k, n)
			hist.Record(time.Since(t0))
			n++
		}
		return n, nil
	})
	if err == nil {
		r1, e1 := st.OptimisticStats()
		res.OptRestarts, res.OptEscalations = r1-r0, e1-e0
		if res.Metrics != nil {
			// Workers closed their clients inside the window (measure waits
			// for them), so the fold-on-Close totals now cover it.
			res.Metrics.ShardOps = subSlices(st.ShardOps(), so0)
		}
	}
	return res, err
}

// NewTxnInstance builds the transactional store for a TxnMix spec
// (exported for the root benchmarks, which drive their own worker
// loops). The mode follows the spec: TxnNonAtomic wins, then Blocking.
func NewTxnInstance(spec Spec) (*txn.Store, error) {
	f, ok := registry[spec.Structure]
	if !ok {
		return nil, fmt.Errorf("harness: unknown structure %q (have %v)", spec.Structure, Structures())
	}
	if !txnCapable[spec.Structure] {
		return nil, fmt.Errorf("harness: structure %q cannot back the txn layer (its operations are not simply-nested flock thunks; use one of %v)",
			spec.Structure, TxnCapableStructures())
	}
	if _, err := workload.NewTxnMix(spec.TxnMix, spec.KeyRange, spec.Alpha, spec.TxnSize, spec.Seed); err != nil {
		return nil, err
	}
	mode := txn.LockFree
	if spec.Blocking {
		mode = txn.Blocking
	}
	if spec.TxnNonAtomic {
		mode = txn.NonAtomic
	}
	return txn.New(kv.Factory(f), txn.Options{
		Shards:          spec.Shards,
		Mode:            mode,
		NoPool:          spec.NoPool,
		KeyRange:        spec.KeyRange,
		OptimisticReads: spec.Optimistic,
	}), nil
}

// txnIncrement is the pure TxnFunc behind the TxnRMW mix operation:
// increment every key in the read set (upserting absent keys at 1).
// Callers outside the package go through ApplyTxnOp, the shared
// dispatch, so this stays unexported.
func txnIncrement(vals []uint64, oks []bool) ([]uint64, bool) {
	out := make([]uint64, len(vals))
	for i := range vals {
		out[i] = vals[i] + 1
	}
	return out, true
}

// ApplyTxnOp applies one generated transaction to the client — the
// single dispatch both the harness driver and the root benchmarks use,
// so the two can never silently measure different operations for the
// same mix. n is the worker's operation counter (salts write values);
// vbuf is a reusable scratch for write values (the client copies its
// inputs) and the possibly-grown scratch is returned. Unknown kinds
// panic: a new TxnOp must be wired here, not absorbed as a read.
func ApplyTxnOp(c *txn.Client, op workload.TxnOp, keys []uint64, n uint64, vbuf []uint64) []uint64 {
	switch op {
	case workload.TxnRead:
		c.MultiGet(keys)
	case workload.TxnWrite:
		vbuf = vbuf[:0]
		for _, k := range keys {
			vbuf = append(vbuf, k+n)
		}
		c.MultiPut(keys, vbuf)
	case workload.TxnTransfer:
		c.Transfer(keys[0], keys[1], 1)
	case workload.TxnRMW:
		c.Txn(keys, keys, txnIncrement)
	default:
		panic(fmt.Sprintf("harness: unhandled TxnOp %v", op))
	}
	return vbuf
}

// runTimedTxn measures one transactional point against a txn.Store.
func runTimedTxn(spec Spec) (Result, error) {
	st, err := NewTxnInstance(spec)
	if err != nil {
		return Result{}, err
	}
	if spec.SnapshotLoop && !st.KV().Scannable() {
		return Result{}, fmt.Errorf("harness: snapshot loop requested but structure %q does not implement set.Scanner (ordered snapshots need ordered scans)",
			spec.Structure)
	}
	PrefillKV(st.KV(), spec)
	st.SetStallInjection(spec.StallEvery)

	// The snapshot loop runs beside the measured workload: snapshot,
	// iterate fully, close, repeat. The stop flag is checked only after
	// a completed cycle so even the shortest window measures at least
	// one whole-store iteration. Worker setup outside the window is
	// microseconds, so counting the loop against Result.Elapsed is fair.
	var snapCycles, snapKeys uint64
	var snapStop atomic.Bool
	var snapWG sync.WaitGroup
	if spec.SnapshotLoop {
		snapWG.Add(1)
		go func() {
			defer snapWG.Done()
			for {
				sn := st.KV().Snapshot()
				sn.Iterate(0, math.MaxUint64, func(_, _ uint64) bool {
					snapKeys++
					return true
				})
				sn.Close()
				snapCycles++
				if snapStop.Load() {
					return
				}
			}
		}()
	}

	r0, e0 := st.KV().OptimisticStats()
	so0 := st.KV().ShardOps()
	res, err := measure(spec, func(w int, begin func(), stop *atomic.Bool, hist *LatencyHist) (uint64, error) {
		c := st.Register()
		defer c.Close()
		mix, err := workload.NewTxnMix(spec.TxnMix, spec.KeyRange, spec.Alpha,
			spec.TxnSize, spec.Seed+uint64(w)*0x9e3779b9)
		if err != nil {
			return 0, err
		}
		var vbuf []uint64 // ApplyTxnOp's write-value scratch
		begin()
		var n uint64
		for !stop.Load() {
			op, keys := mix.Next()
			t0 := time.Now()
			vbuf = ApplyTxnOp(c, op, keys, n, vbuf)
			hist.Record(time.Since(t0))
			n++
		}
		return n, nil
	})
	if spec.SnapshotLoop {
		snapStop.Store(true)
		snapWG.Wait()
		res.SnapCycles, res.SnapKeys = snapCycles, snapKeys
	}
	if err == nil {
		r1, e1 := st.KV().OptimisticStats()
		res.OptRestarts, res.OptEscalations = r1-r0, e1-e0
		if res.Metrics != nil {
			res.Metrics.ShardOps = subSlices(st.KV().ShardOps(), so0)
		}
	}
	return res, err
}

// measure runs spec.Threads workers for spec.Duration and aggregates
// op counts and latency histograms. The worker body must call begin()
// exactly once, after its per-worker setup (registration, generator
// construction — including first-use zeta sums, linear in the key
// range): begin is the start barrier, so setup time is excluded from
// the measured window. A worker that returns without calling begin
// (setup error) releases the barrier on its way out.
func measure(spec Spec, worker func(w int, begin func(), stop *atomic.Bool, hist *LatencyHist) (uint64, error)) (Result, error) {
	var stop atomic.Bool
	var total atomic.Uint64
	hists := make([]*LatencyHist, spec.Threads)
	counts := make([]uint64, spec.Threads) // per-worker op counts (fairness)
	errs := make([]error, spec.Threads)
	start := make(chan struct{})
	// Worker goroutines carry pprof labels so a CPU profile of a figure
	// run attributes samples per series (structure × mode × figure).
	labels := pprof.Labels(
		"structure", spec.Structure,
		"mode", spec.modeLabel(),
		"figure", spec.figureLabel(),
	)
	if spec.Metrics {
		// The obs flag is global; save/restore lets nested or back-to-back
		// runs with different Metrics settings compose.
		prev := obs.Enabled()
		obs.SetEnabled(true)
		defer obs.SetEnabled(prev)
	}
	var dumper *traceDumper
	if spec.Trace {
		// Same save/restore discipline as the obs flag; Reset opens a
		// fresh collection window so the snapshot covers only this run.
		prev := trace.Enabled()
		trace.SetEnabled(true)
		defer trace.SetEnabled(prev)
		trace.Reset()
		if spec.TraceDump != "" {
			dumper = newTraceDumper(spec.TraceDump, spec.TraceDumpP99Mult)
		}
	}
	var ready, wg sync.WaitGroup
	for w := 0; w < spec.Threads; w++ {
		hists[w] = NewLatencyHist()
		if dumper != nil {
			hists[w].SetAnomaly(dumper.observe)
		}
		ready.Add(1)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pprof.Do(context.Background(), labels, func(context.Context) {
				began := false
				begin := func() {
					if !began {
						began = true
						ready.Done()
						<-start
					}
				}
				defer begin()
				n, err := worker(w, begin, &stop, hists[w])
				errs[w] = err
				counts[w] = n // w's slot only; read after wg.Wait
				total.Add(n)
			})
		}(w)
	}
	ready.Wait()
	// Allocation accounting brackets exactly the measured window: worker
	// setup (registration, zipf zeta sums) happened before begin(), and
	// ReadMemStats itself runs outside the window.
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	var s0 obs.Counts
	if spec.Metrics {
		s0 = obs.Snapshot()
	}
	t0 := time.Now()
	close(start)
	var samples []MetricSample
	var samplerStop, samplerDone chan struct{}
	if spec.Metrics {
		samplerStop, samplerDone = make(chan struct{}), make(chan struct{})
		go func() {
			defer close(samplerDone)
			interval := spec.MetricsInterval
			if interval <= 0 {
				interval = spec.Duration / 8
			}
			if interval < time.Millisecond {
				interval = time.Millisecond
			}
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-samplerStop:
					return
				case <-tick.C:
					d := obs.Snapshot().Sub(s0)
					var ms runtime.MemStats
					runtime.ReadMemStats(&ms)
					samples = append(samples, MetricSample{
						AtMs:       time.Since(t0).Seconds() * 1e3,
						Helps:      d.Get(obs.HelpsGiven),
						CASFails:   d.Get(obs.InstallCASFails),
						Goroutines: runtime.NumGoroutine(),
						GCPauseNs:  ms.PauseTotalNs - ms0.PauseTotalNs,
					})
				}
			}
		}()
	}
	time.Sleep(spec.Duration)
	stop.Store(true)
	wg.Wait()
	el := time.Since(t0)
	if spec.Metrics {
		close(samplerStop)
		<-samplerDone
	}
	runtime.ReadMemStats(&ms1)

	merged := NewLatencyHist()
	for _, h := range hists {
		merged.Merge(h)
	}
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	ops := total.Load()
	res := Result{
		Ops:     ops,
		Elapsed: el,
		Mops:    float64(ops) / el.Seconds() / 1e6,
		Hist:    merged,
	}
	res.FairMaxMin, res.FairCoV = fairness(counts)
	if ops > 0 {
		res.AllocsPerOp = float64(ms1.Mallocs-ms0.Mallocs) / float64(ops)
	}
	if spec.Metrics {
		// Final snapshot after wg.Wait: every worker has unregistered, so
		// its block is folded into the retired totals and the delta covers
		// the whole window (plus the workers' post-stop partial ops —
		// symmetric with how Ops counts them).
		d := obs.Snapshot().Sub(s0)
		samples = append(samples, MetricSample{
			AtMs:       el.Seconds() * 1e3,
			Helps:      d.Get(obs.HelpsGiven),
			CASFails:   d.Get(obs.InstallCASFails),
			Goroutines: runtime.NumGoroutine(),
			GCPauseNs:  ms1.PauseTotalNs - ms0.PauseTotalNs,
		})
		res.Metrics = &MetricsWindow{Window: d, Samples: samples}
	}
	if spec.Trace {
		// Snapshot after wg.Wait: exited workers' rings are on the
		// retired list, so the stitched stream covers every worker.
		tr := trace.Snapshot()
		res.Trace = &tr
	}
	return res, nil
}

// Stats summarizes repeated runs of one spec: throughput mean and
// standard deviation, latency percentiles from the histograms merged
// across the measured repetitions, mean allocations per operation, and
// the optimistic-read counters totalled over the measured repetitions
// (Spec.Optimistic KV runs only; zero otherwise).
type Stats struct {
	Mops, Std     float64
	AllocsPerOp   float64
	P50, P95, P99 time.Duration
	// Ops totals completed operations across the measured repetitions
	// (the denominator for the per-op metric rates).
	Ops uint64
	// OptRestarts and OptEscalations total the failed optimistic
	// validation attempts and locked-path fallbacks across the measured
	// repetitions — the restart-storm observability the escalation
	// guard tests rely on.
	OptRestarts    uint64
	OptEscalations uint64
	// FairMaxMin and FairCoV are the per-thread op-count spread, averaged
	// over the measured repetitions (Result doc).
	FairMaxMin float64
	FairCoV    float64
	// SnapCycles totals the background snapshot loop's whole-store
	// iterations across the measured repetitions; SnapKeysPerSec is the
	// loop's mean iterated-key rate (zero unless Spec.SnapshotLoop).
	SnapCycles     uint64
	SnapKeysPerSec float64
	// Metrics aggregates the obs windows of the measured repetitions
	// (counter deltas and shard ops summed; time series from the last
	// repetition); nil unless Spec.Metrics was set.
	Metrics *MetricsWindow
	// Trace is the last measured repetition's flight-recorder snapshot
	// (rings are overwritten across repetitions, so only the final
	// window survives intact); nil unless Spec.Trace was set.
	Trace *trace.Trace
}

// RunStats performs warmup runs followed by measured repetitions,
// following the paper's methodology (one warmup, average of the rest).
func RunStats(spec Spec, warmup, repeats int) (Stats, error) {
	for i := 0; i < warmup; i++ {
		if _, err := RunTimed(spec); err != nil {
			return Stats{}, err
		}
	}
	if repeats < 1 {
		repeats = 1
	}
	vals := make([]float64, 0, repeats)
	merged := NewLatencyHist()
	var allocs float64
	var st Stats
	for i := 0; i < repeats; i++ {
		r, err := RunTimed(spec)
		if err != nil {
			return Stats{}, err
		}
		vals = append(vals, r.Mops)
		allocs += r.AllocsPerOp
		merged.Merge(r.Hist)
		st.Ops += r.Ops
		st.OptRestarts += r.OptRestarts
		st.OptEscalations += r.OptEscalations
		st.FairMaxMin += r.FairMaxMin
		st.FairCoV += r.FairCoV
		st.SnapCycles += r.SnapCycles
		if r.Elapsed > 0 {
			st.SnapKeysPerSec += float64(r.SnapKeys) / r.Elapsed.Seconds()
		}
		if r.Metrics != nil {
			if st.Metrics == nil {
				st.Metrics = &MetricsWindow{}
			}
			st.Metrics.Window = st.Metrics.Window.Add(r.Metrics.Window)
			st.Metrics.ShardOps = addSlices(st.Metrics.ShardOps, r.Metrics.ShardOps)
			st.Metrics.Samples = r.Metrics.Samples // last repetition's series
		}
		if r.Trace != nil {
			st.Trace = r.Trace // last repetition's window
		}
	}
	st.AllocsPerOp = allocs / float64(repeats)
	st.FairMaxMin /= float64(repeats)
	st.FairCoV /= float64(repeats)
	st.SnapKeysPerSec /= float64(repeats)
	for _, v := range vals {
		st.Mops += v
	}
	st.Mops /= float64(len(vals))
	for _, v := range vals {
		st.Std += (v - st.Mops) * (v - st.Mops)
	}
	st.Std = math.Sqrt(st.Std / float64(len(vals)))
	st.P50 = merged.Quantile(0.50)
	st.P95 = merged.Quantile(0.95)
	st.P99 = merged.Quantile(0.99)
	return st, nil
}

// RunAveraged is the throughput-only form of RunStats, kept for callers
// that do not need latency percentiles.
func RunAveraged(spec Spec, warmup, repeats int) (mean, std float64, err error) {
	st, err := RunStats(spec, warmup, repeats)
	if err != nil {
		return 0, 0, err
	}
	return st.Mops, st.Std, nil
}
