package harness

// Anomaly-triggered flight-recorder dumps (DESIGN.md S16). The point of
// a ring-buffer tracer is that it is always a few milliseconds of
// history deep: when a latency outlier happens, the events explaining
// it are still in the rings — but only briefly, before the workload
// overwrites them. The dumper watches the per-op latency stream and
// snapshots the recorder the moment an operation exceeds a multiple of
// the window's running p99, so the dump captures the outlier's
// surroundings rather than whatever the rings hold at window end.

import (
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"flock/internal/obs/trace"
)

// dumpWarmup is the observation count before the dumper arms: the
// running p99 is meaningless until the histogram has some mass, and
// the first operations of a window (cold pools, first-touch pages) are
// legitimately slow.
const dumpWarmup = 2048

// thresholdEvery paces threshold recomputation (a 512-bucket scan);
// power of two so the pacing check is a mask.
const thresholdEvery = 4096

// traceDumper taps every worker's latency stream (LatencyHist.SetAnomaly)
// and fires a one-shot Chrome-trace dump when an operation exceeds mult
// times the running p99. It keeps its own atomic histogram — the
// workers' hists are unsynchronized by design — so the tap is a few
// atomic adds per op and the p99 scan runs only every thresholdEvery
// observations.
type traceDumper struct {
	path      string
	mult      float64
	counts    [latBuckets]atomic.Uint64
	total     atomic.Uint64
	threshold atomic.Uint64 // ns; 0 = not yet armed
	fired     atomic.Bool
}

func newTraceDumper(path string, mult float64) *traceDumper {
	if mult <= 0 {
		mult = 8
	}
	return &traceDumper{path: path, mult: mult}
}

// observe is the per-op tap. Concurrent-safe; allocation-free until the
// one dump fires.
func (d *traceDumper) observe(lat time.Duration) {
	ns := uint64(lat)
	d.counts[latIndex(ns)].Add(1)
	n := d.total.Add(1)
	if n >= dumpWarmup && n%thresholdEvery == 0 {
		d.threshold.Store(uint64(float64(d.p99()) * d.mult))
	}
	if t := d.threshold.Load(); t != 0 && ns > t && d.fired.CompareAndSwap(false, true) {
		// Snapshot from a fresh goroutine: the worker that hit the
		// outlier should not also pay for stitching and JSON encoding.
		go d.dump(ns, t)
	}
}

// p99 computes the 99th percentile of the dumper's own histogram (same
// bucketing as LatencyHist, lower-bound semantics).
func (d *traceDumper) p99() uint64 {
	total := d.total.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(0.99 * float64(total-1))
	var cum uint64
	for i := range d.counts {
		c := d.counts[i].Load()
		cum += c
		if c != 0 && cum > rank {
			return latLower(i)
		}
	}
	return latLower(latBuckets - 1)
}

// dump writes the recorder's current contents as Chrome trace-event
// JSON. Failures are reported on stderr — the dump is diagnostic side
// output; it must never fail the run.
func (d *traceDumper) dump(outlierNs, thresholdNs uint64) {
	tr := trace.Snapshot()
	f, err := os.Create(d.path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "harness: anomaly trace dump: %v\n", err)
		return
	}
	defer f.Close()
	if err := trace.ExportChrome(f, tr); err != nil {
		fmt.Fprintf(os.Stderr, "harness: anomaly trace dump: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr,
		"harness: %.2fms op exceeded %.2fms anomaly threshold; dumped %d trace events to %s\n",
		float64(outlierNs)/1e6, float64(thresholdNs)/1e6, len(tr.Events), d.path)
}

// Fired reports whether the anomaly dump has been written.
func (d *traceDumper) Fired() bool { return d.fired.Load() }
