package harness

import (
	"encoding/json"
	"testing"
	"time"

	"flock/internal/obs"
)

// TestMetricsWindowCollected pins the harness side of DESIGN.md S14: a
// Spec with Metrics on yields a window delta, a non-empty cumulative
// sample series, fairness numbers, and (for the lock-free mode) acquire
// counts that match the committed op count on a flat workload.
func TestMetricsWindowCollected(t *testing.T) {
	spec := Spec{
		Structure: "leaftree", Threads: 4, KeyRange: 512,
		UpdatePct: 50, Alpha: 0.9, Duration: 20 * time.Millisecond,
		Seed: 7, Metrics: true, MetricsInterval: 2 * time.Millisecond,
	}
	res, err := RunTimed(spec)
	if err != nil {
		t.Fatal(err)
	}
	if obs.Enabled() {
		t.Error("measure() leaked the obs flag enabled")
	}
	if res.Metrics == nil {
		t.Fatal("Metrics spec produced no metrics window")
	}
	w := res.Metrics.Window
	acq := w.Get(obs.AcquiresLF)
	if acq == 0 {
		t.Fatal("lock-free window recorded no acquisitions")
	}
	// Completion claims cover every committed descriptor — including
	// locks nested inside a structure operation — while AcquiresLF
	// counts top-level sections only, so claims must dominate acquires.
	// (The exact flat-workload conservation law is pinned by
	// internal/core's metrics tests.)
	if own, recv := w.Get(obs.OwnCompletions), w.Get(obs.HelpsReceived); own+recv < acq {
		t.Errorf("own(%d) + helped(%d) = %d claims < top-level acquires %d", own, recv, own+recv, acq)
	}
	if len(res.Metrics.Samples) == 0 {
		t.Fatal("no time-series samples collected")
	}
	// Samples are cumulative since the window start: monotone, ordered
	// in time, and the final sample is the closing delta.
	var lastT float64
	var lastH, lastC uint64
	for i, s := range res.Metrics.Samples {
		if s.AtMs < lastT {
			t.Fatalf("sample %d goes back in time: %v after %v", i, s.AtMs, lastT)
		}
		if s.Helps < lastH || s.CASFails < lastC {
			t.Fatalf("sample %d not cumulative: helps %d->%d cas %d->%d", i, lastH, s.Helps, lastC, s.CASFails)
		}
		lastT, lastH, lastC = s.AtMs, s.Helps, s.CASFails
	}
	final := res.Metrics.Samples[len(res.Metrics.Samples)-1]
	if final.Helps != w.Get(obs.HelpsGiven) {
		t.Errorf("final sample helps = %d, window = %d", final.Helps, w.Get(obs.HelpsGiven))
	}
	if res.FairMaxMin < 1 {
		t.Errorf("fairness max/min = %v, must be >= 1", res.FairMaxMin)
	}
	if res.FairCoV < 0 {
		t.Errorf("fairness CoV = %v, must be >= 0", res.FairCoV)
	}
}

// TestMetricsOffCollectsNothing: without Spec.Metrics the result must
// carry no window (and fairness still works — it needs no obs counters).
func TestMetricsOffCollectsNothing(t *testing.T) {
	res, err := RunTimed(Spec{
		Structure: "leaftree", Threads: 2, KeyRange: 128,
		UpdatePct: 50, Alpha: 0.9, Duration: 5 * time.Millisecond, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics != nil {
		t.Fatal("metrics window collected without Spec.Metrics")
	}
	if res.FairMaxMin < 1 {
		t.Errorf("fairness max/min = %v, must be >= 1 even without -metrics", res.FairMaxMin)
	}
}

// TestMetricsKVShardOps: a KV run with metrics on reports the measured
// window's per-shard routed-op deltas, and PointMetrics derives a skew
// ratio >= 1 from them.
func TestMetricsKVShardOps(t *testing.T) {
	spec := Spec{
		Structure: "leaftree", Threads: 2, KeyRange: 1 << 10,
		Alpha: 0.99, Duration: 10 * time.Millisecond, Seed: 7,
		YCSB: "a", Shards: 4, Metrics: true,
	}
	st, err := RunStats(spec, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Metrics == nil {
		t.Fatal("no metrics window")
	}
	if len(st.Metrics.ShardOps) != 4 {
		t.Fatalf("ShardOps has %d entries, want 4", len(st.Metrics.ShardOps))
	}
	var sum uint64
	for _, n := range st.Metrics.ShardOps {
		sum += n
	}
	if sum == 0 {
		t.Fatal("window routed no per-shard ops")
	}
	pm := st.PointMetrics()
	if pm == nil {
		t.Fatal("PointMetrics nil despite metrics window")
	}
	if pm.ShardSkew < 1 {
		t.Errorf("shard skew = %v, max/mean must be >= 1", pm.ShardSkew)
	}
}

// TestPointMetricsJSONRoundTrips pins the JSONL surface: the summary
// marshals with the documented snake_case fields and finite values.
func TestPointMetricsJSONRoundTrips(t *testing.T) {
	var st Stats
	st.Ops = 100
	st.Metrics = &MetricsWindow{}
	st.Metrics.Window[obs.HelpsGiven] = 25
	st.Metrics.Window[obs.InstallCASFails] = 50
	st.Metrics.Samples = []MetricSample{{AtMs: 1, Helps: 25, CASFails: 50}}
	b, err := json.Marshal(st.PointMetrics())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m["helps_per_op"] != 0.25 {
		t.Errorf("helps_per_op = %v, want 0.25", m["helps_per_op"])
	}
	if m["cas_fails_per_op"] != 0.5 {
		t.Errorf("cas_fails_per_op = %v, want 0.5", m["cas_fails_per_op"])
	}
	if _, ok := m["samples"]; !ok {
		t.Error("samples missing from JSON")
	}
}

// TestFairnessHelper pins the fairness math, including the clamps that
// keep the JSON finite.
func TestFairnessHelper(t *testing.T) {
	for _, tc := range []struct {
		counts  []uint64
		maxMin  float64
		covZero bool
	}{
		{nil, 1, true},
		{[]uint64{0, 0}, 1, true},
		{[]uint64{100, 100, 100}, 1, true},
		{[]uint64{100, 50}, 2, false},
		{[]uint64{100, 0}, 100, false}, // min clamped to 1, not Inf
	} {
		mm, cov := fairness(tc.counts)
		if mm != tc.maxMin {
			t.Errorf("fairness(%v) max/min = %v, want %v", tc.counts, mm, tc.maxMin)
		}
		if (cov == 0) != tc.covZero {
			t.Errorf("fairness(%v) cov = %v, want zero=%v", tc.counts, cov, tc.covZero)
		}
	}
}

// TestSliceHelpers pins subSlices saturation and addSlices growth.
func TestSliceHelpers(t *testing.T) {
	d := subSlices([]uint64{5, 3, 9}, []uint64{2, 4})
	if d[0] != 3 || d[1] != 0 || d[2] != 9 {
		t.Errorf("subSlices = %v, want [3 0 9]", d)
	}
	s := addSlices([]uint64{1}, []uint64{2, 3})
	if len(s) != 2 || s[0] != 3 || s[1] != 3 {
		t.Errorf("addSlices = %v, want [3 3]", s)
	}
}
