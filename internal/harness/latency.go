package harness

import (
	"math/bits"
	"time"
)

// Latency histogram parameters: 8 sub-buckets per power-of-two octave
// (HDR-histogram style), so the relative quantization error is at most
// 1/8 = 12.5% anywhere on the range, with a fixed 512-counter footprint
// covering 1ns .. ~5 centuries.
const (
	latSubBits = 3 // log2(sub-buckets per octave)
	latSub     = 1 << latSubBits
	latBuckets = (64-latSubBits)*latSub + latSub
)

// LatencyHist is a log-bucketed latency histogram. It is not
// synchronized: each worker records into its own histogram and the
// harness merges them afterwards.
type LatencyHist struct {
	counts [latBuckets]uint64
	total  uint64
	// anomaly, when non-nil, receives every recorded observation (the
	// trace anomaly dumper's tap; see harness.traceDumper). It must be
	// cheap and safe for concurrent calls from other workers' hists.
	anomaly func(time.Duration)
}

// NewLatencyHist returns an empty histogram.
func NewLatencyHist() *LatencyHist { return &LatencyHist{} }

// SetAnomaly installs an observation tap (nil removes it). Call before
// recording begins; the tap is not synchronized with Record.
func (h *LatencyHist) SetAnomaly(f func(time.Duration)) { h.anomaly = f }

// latIndex maps a nanosecond count to its bucket.
func latIndex(ns uint64) int {
	if ns < latSub {
		return int(ns)
	}
	o := bits.Len64(ns) - 1 // octave: o >= latSubBits
	return (o-latSubBits+1)*latSub + int((ns>>(o-latSubBits))&(latSub-1))
}

// latLower is the inverse of latIndex: the smallest nanosecond value in
// bucket i.
func latLower(i int) uint64 {
	if i < latSub {
		return uint64(i)
	}
	o := i/latSub + latSubBits - 1
	return 1<<o | uint64(i%latSub)<<(o-latSubBits)
}

// Record adds one observation.
func (h *LatencyHist) Record(d time.Duration) {
	ns := uint64(d)
	if d < 0 {
		ns = 0
	}
	h.counts[latIndex(ns)]++
	h.total++
	if h.anomaly != nil {
		h.anomaly(time.Duration(ns))
	}
}

// Merge adds o's counts into h.
func (h *LatencyHist) Merge(o *LatencyHist) {
	if o == nil {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
}

// Count returns the number of recorded observations.
func (h *LatencyHist) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.total
}

// Quantile returns the latency at quantile q in [0, 1] (the lower bound
// of the bucket holding the q-th observation, so the value is never
// overstated). It returns 0 on an empty or nil histogram.
func (h *LatencyHist) Quantile(q float64) time.Duration {
	if h == nil || h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.total-1))
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if c != 0 && cum > rank {
			return time.Duration(latLower(i))
		}
	}
	return time.Duration(latLower(latBuckets - 1))
}
