package harness

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"flock/internal/obs/trace"
)

// TestSpecTraceAttachesSnapshot pins the harness plumbing: a run with
// Spec.Trace gets a flight-recorder snapshot covering the window, the
// flag is restored afterwards, and a plain run stays untraced.
func TestSpecTraceAttachesSnapshot(t *testing.T) {
	if trace.Enabled() {
		t.Fatal("tracing unexpectedly enabled at test entry")
	}
	res, err := RunTimed(Spec{
		Structure: "leaftree", Threads: 2, KeyRange: 64,
		Duration: 20 * time.Millisecond, Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("Spec.Trace run returned no trace snapshot")
	}
	if len(res.Trace.Events) == 0 {
		t.Fatal("traced window captured no events")
	}
	if trace.Enabled() {
		t.Error("trace flag not restored after the run")
	}
	plain, err := RunTimed(Spec{
		Structure: "leaftree", Threads: 1, KeyRange: 64,
		Duration: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil {
		t.Error("untraced run attached a trace snapshot")
	}
}

// TestTraceDumperFires pins the anomaly path end to end: a dumper with
// a tiny warmup-free threshold fires exactly once and writes valid
// Chrome trace-event JSON.
func TestTraceDumperFires(t *testing.T) {
	path := filepath.Join(t.TempDir(), "anomaly.json")
	d := newTraceDumper(path, 4)
	// Arm manually (the adaptive path needs thresholdEvery observations;
	// the trigger comparison is what this test pins).
	d.threshold.Store(uint64(time.Millisecond))
	trace.Reset()
	prev := trace.Enabled()
	trace.SetEnabled(true)
	defer trace.SetEnabled(prev)
	trace.Global().Emit(trace.EpochAdvance, 0, 1, 0)

	h := NewLatencyHist()
	h.SetAnomaly(d.observe)
	h.Record(10 * time.Microsecond) // under threshold: no dump
	if d.Fired() {
		t.Fatal("dumper fired below threshold")
	}
	h.Record(5 * time.Millisecond) // outlier
	if !d.Fired() {
		t.Fatal("dumper did not fire on an outlier")
	}
	// The dump is written asynchronously.
	deadline := time.Now().Add(5 * time.Second)
	var raw []byte
	for {
		var err error
		if raw, err = os.ReadFile(path); err == nil && len(raw) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dump file never appeared: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("dump contains no trace events")
	}
	h.Record(5 * time.Millisecond) // second outlier must not re-fire
	if got := d.total.Load(); got != 3 {
		t.Fatalf("dumper observed %d ops, want 3", got)
	}
}

// TestAdaptiveThresholdArms pins the adaptive arming math: after the
// warmup count the threshold tracks mult x the running p99.
func TestAdaptiveThresholdArms(t *testing.T) {
	d := newTraceDumper(filepath.Join(t.TempDir(), "x.json"), 10)
	for i := 0; i < thresholdEvery; i++ {
		d.observe(time.Microsecond)
	}
	th := d.threshold.Load()
	if th == 0 {
		t.Fatal("threshold never armed")
	}
	// p99 of an all-1us stream is the 1us bucket's lower bound; the
	// threshold must be ~10x that (bucket quantization <= 12.5%).
	if th < 8*uint64(time.Microsecond.Nanoseconds()) || th > 12*uint64(time.Microsecond.Nanoseconds()) {
		t.Fatalf("threshold = %dns, want ~10us", th)
	}
	if d.Fired() {
		t.Fatal("uniform stream fired the dumper")
	}
}
