package harness

import (
	"testing"
	"time"
)

// TestEveryStructureRunsBothModes is the cross-cutting integration test:
// every registered structure survives a short mixed workload in both lock
// modes and reports sane numbers.
func TestEveryStructureRunsBothModes(t *testing.T) {
	if testing.Short() {
		t.Skip("covers all structures; slow under -race -short")
	}
	for _, name := range Structures() {
		for _, blocking := range []bool{false, true} {
			spec := Spec{
				Structure: name,
				Blocking:  blocking,
				Threads:   8,
				KeyRange:  512,
				UpdatePct: 50,
				Alpha:     0.9,
				HashKeys:  name == "arttree" || name == "olcart",
				Duration:  30 * time.Millisecond,
				Seed:      7,
			}
			res, err := RunTimed(spec)
			if err != nil {
				t.Fatalf("%s blocking=%v: %v", name, blocking, err)
			}
			if res.Ops == 0 {
				t.Fatalf("%s blocking=%v: zero ops completed", name, blocking)
			}
			if res.Mops <= 0 {
				t.Fatalf("%s blocking=%v: nonpositive Mops", name, blocking)
			}
		}
	}
}

func TestUnknownStructureRejected(t *testing.T) {
	_, err := RunTimed(Spec{Structure: "btree9000", Threads: 1, KeyRange: 8, Duration: time.Millisecond})
	if err == nil {
		t.Fatalf("unknown structure accepted")
	}
	_, err = RunTimed(Spec{Structure: "btree9000", Threads: 1, KeyRange: 8,
		Duration: time.Millisecond, YCSB: "a", Shards: 2})
	if err == nil {
		t.Fatalf("unknown structure accepted on the KV path")
	}
}

func TestUnknownYCSBWorkloadRejected(t *testing.T) {
	_, err := RunTimed(Spec{Structure: "leaftree", Threads: 1, KeyRange: 8,
		Duration: time.Millisecond, YCSB: "zz", Shards: 2})
	if err == nil {
		t.Fatalf("unknown YCSB workload accepted")
	}
}

// TestYCSBKVPath runs a tiny YCSB point end to end: ops complete, the
// latency histogram is populated, and percentiles are ordered.
func TestYCSBKVPath(t *testing.T) {
	for _, ycsb := range []string{"a", "b", "c", "e", "f"} {
		spec := Spec{
			Structure: "leaftree", Threads: 4, KeyRange: 256, Alpha: 0.99,
			Duration: 20 * time.Millisecond, Seed: 5, YCSB: ycsb, Shards: 4,
			ScanLen: 8,
		}
		res, err := RunTimed(spec)
		if err != nil {
			t.Fatalf("ycsb-%s: %v", ycsb, err)
		}
		if res.Ops == 0 {
			t.Fatalf("ycsb-%s: zero ops", ycsb)
		}
		if res.Hist.Count() != res.Ops {
			t.Fatalf("ycsb-%s: %d ops but %d latency samples", ycsb, res.Ops, res.Hist.Count())
		}
		p50, p95, p99 := res.P50(), res.P95(), res.P99()
		if p50 <= 0 || p50 > p95 || p95 > p99 {
			t.Fatalf("ycsb-%s: disordered percentiles p50=%v p95=%v p99=%v", ycsb, p50, p95, p99)
		}
	}
}

// TestScanWorkloadNeedsOrderedStructure: YCSB-E over a structure
// without set.Scanner must be refused up front with an explanatory
// error, not panic mid-run. (The hashtable no longer serves as the
// refusal case: it scans via a sorted bucket sweep now.)
func TestScanWorkloadNeedsOrderedStructure(t *testing.T) {
	_, err := NewKVInstance(Spec{Structure: "arttree", Threads: 1, KeyRange: 64,
		Duration: time.Millisecond, YCSB: "e", Shards: 2})
	if err == nil {
		t.Fatalf("scan-bearing mix over a scanless structure accepted")
	}
	// The scannable structures (and olcart, the baseline arm) must pass
	// the same gate.
	for _, s := range []string{"leaftree", "abtree", "hashtable", "olcart"} {
		if _, err := NewKVInstance(Spec{Structure: s, Threads: 1, KeyRange: 64,
			Duration: time.Millisecond, YCSB: "e", Shards: 2}); err != nil {
			t.Fatalf("%s refused for YCSB-E: %v", s, err)
		}
	}
}

// TestSetPathRecordsLatency checks the paper-mix path fills histograms
// too (every figure now reports percentiles).
func TestSetPathRecordsLatency(t *testing.T) {
	spec := Spec{Structure: "hashtable", Threads: 2, KeyRange: 128,
		UpdatePct: 50, Duration: 15 * time.Millisecond, Seed: 2}
	res, err := RunTimed(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hist.Count() != res.Ops || res.P50() <= 0 {
		t.Fatalf("set path: ops=%d samples=%d p50=%v", res.Ops, res.Hist.Count(), res.P50())
	}
}

// TestKVPrefillHalfFull mirrors TestPrefillHalfFull on the KV path.
func TestKVPrefillHalfFull(t *testing.T) {
	spec := Spec{Structure: "leaftree", KeyRange: 4096, Threads: 1,
		Duration: time.Millisecond, YCSB: "a", Shards: 4}
	st, err := NewKVInstance(spec)
	if err != nil {
		t.Fatal(err)
	}
	PrefillKV(st, spec)
	c := st.Register()
	defer c.Close()
	n := 0
	for k := uint64(1); k <= spec.KeyRange; k++ {
		if _, ok := c.Get(k); ok {
			n++
		}
	}
	if n < 4096*45/100 || n > 4096*55/100 {
		t.Fatalf("KV prefill filled %d of 4096, want ~half", n)
	}
}

func TestPrefillHalfFull(t *testing.T) {
	spec := Spec{Structure: "leaftree", KeyRange: 4096, Threads: 1, Duration: time.Millisecond}
	s, rt, err := NewInstance(spec)
	if err != nil {
		t.Fatal(err)
	}
	Prefill(s, rt, spec)
	p := rt.Register()
	defer p.Unregister()
	n := 0
	for k := uint64(1); k <= spec.KeyRange; k++ {
		if _, ok := s.Find(p, k); ok {
			n++
		}
	}
	if n < 4096*45/100 || n > 4096*55/100 {
		t.Fatalf("prefill filled %d of 4096, want ~half", n)
	}
}

func TestRunAveragedStats(t *testing.T) {
	spec := Spec{
		Structure: "hashtable", Threads: 4, KeyRange: 256,
		UpdatePct: 20, Alpha: 0, Duration: 20 * time.Millisecond, Seed: 1,
	}
	mean, std, err := RunAveraged(spec, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if mean <= 0 {
		t.Fatalf("mean %v", mean)
	}
	if std < 0 {
		t.Fatalf("negative std %v", std)
	}
}

// TestRunTimedTxn measures a miniature transactional point in every
// arm (lock-free, blocking, non-atomic): the full driver path — store
// build, prefill, mix, composed multi-key operations, latency samples.
func TestRunTimedTxn(t *testing.T) {
	for _, arm := range []struct {
		name      string
		blocking  bool
		nonatomic bool
	}{{"lockfree", false, false}, {"blocking", true, false}, {"nonatomic", false, true}} {
		arm := arm
		t.Run(arm.name, func(t *testing.T) {
			res, err := RunTimed(Spec{
				Structure: "leaftree", Blocking: arm.blocking, TxnNonAtomic: arm.nonatomic,
				Threads: 3, KeyRange: 256, Alpha: 0.75, Duration: 15 * time.Millisecond,
				Seed: 7, TxnMix: "transfer", TxnSize: 2, Shards: 2,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops == 0 {
				t.Fatal("zero transactions completed")
			}
			if res.Hist.Count() != res.Ops {
				t.Fatalf("%d ops but %d latency samples", res.Ops, res.Hist.Count())
			}
		})
	}
	if _, err := RunTimed(Spec{
		Structure: "leaftree", Threads: 1, KeyRange: 64, Duration: time.Millisecond,
		TxnMix: "nope", Shards: 1,
	}); err == nil {
		t.Fatal("unknown txn mix accepted")
	}
	// Structures whose operations are not simply-nested flock thunks
	// (baselines, strict-lock variants) must be refused: replaying them
	// inside a composed transaction would silently break atomicity.
	for _, s := range []string{"olcart", "natarajan", "leaftree-strict"} {
		if _, err := NewTxnInstance(Spec{
			Structure: s, Threads: 1, KeyRange: 64, Duration: time.Millisecond,
			TxnMix: "transfer", TxnSize: 2, Shards: 1,
		}); err == nil {
			t.Fatalf("txn layer over %s accepted; it cannot be made atomic", s)
		}
	}
}

// TestOptimisticSpecWiring pins the harness's optimistic-read plumbing:
// the capability gate refuses incapable structures up front, capable
// specs run end to end on the unlogged arm (YCSB and txn paths), and
// RunStats exports the restart/escalation counters — zero for the
// read-only mix, where no shard lock is ever taken, so a nonzero value
// here would mean the before/after delta sampling is broken.
func TestOptimisticSpecWiring(t *testing.T) {
	// leaftreap implements set.Scanner but not the optimistic
	// interfaces: requesting the optimistic arm must fail loudly, not
	// silently fall back to the logged path mid-figure.
	if _, err := NewKVInstance(Spec{Structure: "leaftreap", Threads: 1, KeyRange: 64,
		Duration: time.Millisecond, YCSB: "c", Shards: 2, Optimistic: true}); err == nil {
		t.Fatal("optimistic reads over a non-optimistic structure accepted")
	}
	st, err := RunStats(Spec{
		Structure: "leaftree", Threads: 4, KeyRange: 256, Alpha: 0.99,
		Duration: 15 * time.Millisecond, Seed: 9, YCSB: "c", Shards: 2, Optimistic: true,
	}, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mops <= 0 {
		t.Fatalf("optimistic YCSB-C measured %v Mop/s", st.Mops)
	}
	if st.OptRestarts != 0 || st.OptEscalations != 0 {
		t.Fatalf("read-only optimistic run counted restarts=%d escalations=%d, want 0/0",
			st.OptRestarts, st.OptEscalations)
	}
	// Scan-bearing optimistic mix and the txn read arm both drive the
	// same plumbing through their own instance constructors.
	for _, spec := range []Spec{
		{Structure: "leaftree", Threads: 2, KeyRange: 128, Alpha: 0.99,
			Duration: 10 * time.Millisecond, Seed: 9, YCSB: "e", ScanLen: 8, Shards: 2, Optimistic: true},
		{Structure: "leaftree", Threads: 2, KeyRange: 128, Alpha: 0.75,
			Duration: 10 * time.Millisecond, Seed: 9, TxnMix: "transfer", TxnSize: 2, Shards: 2, Optimistic: true},
	} {
		res, err := RunTimed(spec)
		if err != nil {
			t.Fatalf("optimistic spec %+v: %v", spec, err)
		}
		if res.Ops == 0 || res.Hist.Count() != res.Ops {
			t.Fatalf("optimistic spec ops=%d samples=%d", res.Ops, res.Hist.Count())
		}
	}
}

// TestSnapshotLoopReported pins the ext-snap plumbing: a SnapshotLoop
// spec reports the background loop's progress (at least one completed
// whole-store cycle, even on a tiny window), and requesting the loop
// over a structure without ordered scans is refused up front.
func TestSnapshotLoopReported(t *testing.T) {
	res, err := RunTimed(Spec{Structure: "leaftree", Threads: 2, KeyRange: 256,
		Alpha: 0.75, Duration: 5 * time.Millisecond, Seed: 7,
		TxnMix: "transfer", TxnSize: 2, Shards: 2, SnapshotLoop: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.SnapCycles < 1 || res.SnapKeys == 0 {
		t.Fatalf("snapshot loop reported %d cycles / %d keys, want >= 1 cycle", res.SnapCycles, res.SnapKeys)
	}
	if res.Ops == 0 {
		t.Fatal("foreground workload made no progress under the snapshot loop")
	}
	if _, err := RunTimed(Spec{Structure: "arttree", Threads: 1, KeyRange: 64,
		Duration: time.Millisecond, TxnMix: "transfer", TxnSize: 2, Shards: 2,
		SnapshotLoop: true}); err == nil {
		t.Fatal("snapshot loop over a scanless structure not refused")
	}
}

func TestFigureIndexComplete(t *testing.T) {
	figs := Figures()
	want := []string{"fig4", "fig5a", "fig5b", "fig5c", "fig5d", "fig5e",
		"fig5f", "fig5g", "fig5h", "fig6a", "fig6b", "fig7a", "fig7b", "ext-stall",
		"ext-alloc", "ext-help", "ext-snap", "ext-txn", "ext-txn-keys", "ext-ycsb-a",
		"ext-ycsb-b", "ext-ycsb-c", "ext-ycsb-e", "ext-ycsb-f", "ext-ycsb-shards"}
	if len(figs) != len(want) {
		t.Fatalf("%d figures, want %d", len(figs), len(want))
	}
	for _, id := range want {
		fs, ok := figs[id]
		if !ok {
			t.Fatalf("missing figure %s", id)
		}
		if fs.Paper == "" || fs.XLabel == "" || len(fs.Series) == 0 {
			t.Fatalf("figure %s underspecified", id)
		}
		// Every series must reference a registered structure and every
		// x must produce a buildable spec.
		sc := DefaultScale()
		for _, x := range fs.Xs(sc) {
			for _, s := range fs.Series {
				spec := fs.SpecFor(sc, s, x)
				if _, _, err := NewInstance(spec); err != nil {
					t.Fatalf("figure %s series %s x=%s: %v", id, s.Name, x, err)
				}
				if spec.Threads <= 0 || spec.KeyRange == 0 {
					t.Fatalf("figure %s series %s x=%s: bad spec %+v", id, s.Name, x, spec)
				}
			}
		}
	}
}

// TestRunFigureSmoke regenerates a miniature fig4 end to end.
func TestRunFigureSmoke(t *testing.T) {
	sc := DefaultScale()
	sc.SmallKeys = 128
	sc.Duration = 10 * time.Millisecond
	sc.Base = 4
	fig, err := RunFigure(Figures()["fig4"], sc)
	if err != nil {
		t.Fatal(err)
	}
	wantPoints := len(fig4Series) * len(alphas)
	if len(fig.Points) != wantPoints {
		t.Fatalf("%d points, want %d", len(fig.Points), wantPoints)
	}
	for _, pt := range fig.Points {
		if pt.Mops <= 0 {
			t.Fatalf("point %+v has nonpositive throughput", pt)
		}
	}
}

// TestOversubscriptionHeadline verifies the paper's core performance
// claim in its explicit form: when lock holders get descheduled inside
// critical sections (injected here; produced naturally by the OS on the
// paper's oversubscribed testbed), the lock-free mode far outperforms
// the blocking mode on the same structure, because helpers complete the
// stalled critical sections instead of stranding behind them.
func TestOversubscriptionHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive comparison; skipped under -short")
	}
	mk := func(blocking bool) Spec {
		return Spec{
			Structure:  "leaftree",
			Blocking:   blocking,
			Threads:    24,
			KeyRange:   1024,
			UpdatePct:  50,
			Alpha:      0.75,
			Duration:   150 * time.Millisecond,
			Seed:       3,
			StallEvery: 200,
		}
	}
	lf, _, err := RunAveraged(mk(false), 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	bl, _, err := RunAveraged(mk(true), 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("oversubscribed+stalls leaftree: lock-free %.3f Mops vs blocking %.3f Mops (%.1fx)", lf, bl, lf/bl)
	if lf <= bl {
		t.Fatalf("lock-free mode did not win under descheduling: %.3f vs %.3f Mops", lf, bl)
	}

	// Without injected stalls both modes must be in the same ballpark
	// (the paper's <=11%-overhead side of the story; on one core the
	// logging overhead is fully exposed, so allow up to 2.5x).
	noStall := mk(false)
	noStall.StallEvery = 0
	lf2, _, err := RunAveraged(noStall, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	noStallBl := mk(true)
	noStallBl.StallEvery = 0
	bl2, _, err := RunAveraged(noStallBl, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("no-stall leaftree: lock-free %.3f vs blocking %.3f Mops (ratio %.2fx)", lf2, bl2, lf2/bl2)
	if lf2 < bl2/2.5 {
		t.Fatalf("lock-free overhead out of band: %.3f vs %.3f Mops", lf2, bl2)
	}
}
