package lincheck

import (
	"math"
	"testing"

	"flock/internal/structures/set"
)

// seqOp builds an op with a closed window [t, t+1] at sequential times.
func seqOp(kind Kind, key uint64, ok bool, t int64) Op {
	return Op{Kind: kind, Key: key, Ok: ok, Start: t, End: t + 1}
}

func TestAcceptsSequentialHistory(t *testing.T) {
	h := []Op{
		{Kind: KInsert, Key: 1, Arg: 10, Ok: true, Start: 1, End: 2},
		{Kind: KFind, Key: 1, Ok: true, Val: 10, Start: 3, End: 4},
		{Kind: KDelete, Key: 1, Ok: true, Start: 5, End: 6},
		{Kind: KFind, Key: 1, Ok: false, Start: 7, End: 8},
		{Kind: KDelete, Key: 1, Ok: false, Start: 9, End: 10},
		{Kind: KInsert, Key: 1, Arg: 20, Ok: true, Start: 11, End: 12},
		{Kind: KFind, Key: 1, Ok: true, Val: 20, Start: 13, End: 14},
	}
	if res := Check(h); !res.Ok {
		t.Fatalf("valid history rejected: %v", res)
	}
}

func TestRejectsDoubleSuccessfulInsert(t *testing.T) {
	h := []Op{
		seqOp(KInsert, 1, true, 1),
		seqOp(KInsert, 1, true, 10), // must fail: already present
	}
	if res := Check(h); res.Ok {
		t.Fatalf("double insert accepted")
	}
}

func TestRejectsFindAfterDelete(t *testing.T) {
	h := []Op{
		seqOp(KInsert, 5, true, 1),
		seqOp(KDelete, 5, true, 10),
		{Kind: KFind, Key: 5, Ok: true, Val: 0, Start: 20, End: 21}, // stale read
	}
	if res := Check(h); res.Ok {
		t.Fatalf("stale read accepted")
	}
}

func TestRejectsWrongValue(t *testing.T) {
	h := []Op{
		{Kind: KInsert, Key: 9, Arg: 100, Ok: true, Start: 1, End: 2},
		{Kind: KFind, Key: 9, Ok: true, Val: 999, Start: 3, End: 4},
	}
	if res := Check(h); res.Ok {
		t.Fatalf("wrong value accepted")
	}
}

func TestAcceptsConcurrentEitherOrder(t *testing.T) {
	// Two overlapping operations: a successful insert and a find that
	// missed. Legal (find linearizes first).
	h := []Op{
		{Kind: KInsert, Key: 2, Arg: 7, Ok: true, Start: 1, End: 10},
		{Kind: KFind, Key: 2, Ok: false, Start: 2, End: 9},
	}
	if res := Check(h); !res.Ok {
		t.Fatalf("legal overlapping history rejected: %v", res)
	}
	// And the find may instead have seen it.
	h[1] = Op{Kind: KFind, Key: 2, Ok: true, Val: 7, Start: 2, End: 9}
	if res := Check(h); !res.Ok {
		t.Fatalf("legal overlapping history (other order) rejected: %v", res)
	}
}

func TestRejectsCausalOrderViolation(t *testing.T) {
	// The find completed strictly BEFORE the insert began, yet saw it.
	h := []Op{
		{Kind: KFind, Key: 3, Ok: true, Val: 7, Start: 1, End: 2},
		{Kind: KInsert, Key: 3, Arg: 7, Ok: true, Start: 5, End: 6},
	}
	if res := Check(h); res.Ok {
		t.Fatalf("future read accepted")
	}
}

func TestConcurrentInsertsOneWins(t *testing.T) {
	// Two overlapping inserts on one key: exactly one may succeed.
	h := []Op{
		{Kind: KInsert, Key: 4, Arg: 1, Ok: true, Start: 1, End: 10},
		{Kind: KInsert, Key: 4, Arg: 2, Ok: false, Start: 2, End: 9},
	}
	if res := Check(h); !res.Ok {
		t.Fatalf("legal racing inserts rejected: %v", res)
	}
	h[1].Ok = true
	if res := Check(h); res.Ok {
		t.Fatalf("both racing inserts succeeded and were accepted")
	}
}

func TestKeysCheckedIndependently(t *testing.T) {
	// A violation on key 8 must be pinned to key 8.
	h := []Op{
		seqOp(KInsert, 7, true, 1),
		seqOp(KInsert, 8, true, 3),
		seqOp(KInsert, 8, true, 10), // violation
	}
	res := Check(h)
	if res.Ok {
		t.Fatalf("violation missed")
	}
	if res.BadKey != 8 {
		t.Fatalf("violation attributed to key %d, want 8", res.BadKey)
	}
}

func TestLongHistory(t *testing.T) {
	// Hundreds of ops on one key (beyond any fixed bitmask width); a
	// valid alternating insert/delete run must pass.
	var h []Op
	t0 := int64(0)
	for i := 0; i < 300; i++ {
		kind, ok := KInsert, true
		if i%2 == 1 {
			kind = KDelete
		}
		h = append(h, seqOp(kind, 1, ok, t0))
		t0 += 2
	}
	if res := Check(h); !res.Ok {
		t.Fatalf("valid long history rejected: %v", res)
	}
	// Tampering with the tail must be caught.
	h[299].Ok = false // last delete claims absent right after an insert
	if res := Check(h); res.Ok {
		t.Fatalf("tampered long history accepted")
	}
}

func TestEmptyHistory(t *testing.T) {
	if res := Check(nil); !res.Ok {
		t.Fatalf("empty history rejected")
	}
}

// scanOp builds a KScan op over [lo, hi] with the given result.
func scanOp(lo, hi uint64, limit int, res []set.KV, start, end int64) Op {
	return Op{Kind: KScan, Lo: lo, Hi: hi, Limit: limit, Scan: res, Start: start, End: end}
}

func TestScanSequentialHistory(t *testing.T) {
	h := []Op{
		{Kind: KInsert, Key: 1, Arg: 10, Ok: true, Start: 1, End: 2},
		{Kind: KInsert, Key: 3, Arg: 30, Ok: true, Start: 3, End: 4},
		{Kind: KInsert, Key: 5, Arg: 50, Ok: true, Start: 5, End: 6},
		// Full-range scan via the open-interval sentinels.
		scanOp(0, math.MaxUint64, -1, []set.KV{{Key: 1, Value: 10}, {Key: 3, Value: 30}, {Key: 5, Value: 50}}, 7, 8),
		// Sub-range scan.
		scanOp(2, 4, -1, []set.KV{{Key: 3, Value: 30}}, 9, 10),
		{Kind: KDelete, Key: 3, Ok: true, Start: 11, End: 12},
		// After the delete, 3 must be gone.
		scanOp(1, 5, -1, []set.KV{{Key: 1, Value: 10}, {Key: 5, Value: 50}}, 13, 14),
		// Limit truncation observes nothing past the last returned key:
		// missing 5 is fine here.
		scanOp(0, math.MaxUint64, 1, []set.KV{{Key: 1, Value: 10}}, 15, 16),
	}
	if res := Check(h); !res.Ok {
		t.Fatalf("valid scan history rejected: %v", res)
	}
}

func TestRejectsScanPhantomKey(t *testing.T) {
	h := []Op{
		{Kind: KInsert, Key: 1, Arg: 10, Ok: true, Start: 1, End: 2},
		scanOp(0, math.MaxUint64, -1, []set.KV{{Key: 1, Value: 10}, {Key: 2, Value: 7}}, 3, 4),
	}
	if res := Check(h); res.Ok {
		t.Fatalf("scan reporting a never-inserted key accepted")
	}
}

func TestRejectsScanMissedKey(t *testing.T) {
	// Key 2 was durably present before the scan began and never deleted;
	// the scan's window offers no point at which it was absent.
	h := []Op{
		{Kind: KInsert, Key: 1, Arg: 10, Ok: true, Start: 1, End: 2},
		{Kind: KInsert, Key: 2, Arg: 20, Ok: true, Start: 3, End: 4},
		scanOp(1, 5, -1, []set.KV{{Key: 1, Value: 10}}, 5, 6),
	}
	if res := Check(h); res.Ok {
		t.Fatalf("scan missing a stable in-range key accepted")
	}
	if res := Check(h); res.BadKey != 2 {
		t.Fatalf("miss attributed to key %d, want 2", Check(h).BadKey)
	}
}

func TestRejectsScanStaleValue(t *testing.T) {
	h := []Op{
		{Kind: KInsert, Key: 1, Arg: 10, Ok: true, Start: 1, End: 2},
		{Kind: KUpsert, Key: 1, Arg: 20, Ok: true, Val: 10, Start: 3, End: 4},
		scanOp(1, 5, -1, []set.KV{{Key: 1, Value: 10}}, 5, 6), // stale value
	}
	if res := Check(h); res.Ok {
		t.Fatalf("scan reporting a stale value accepted")
	}
}

func TestScanIntervalSemantics(t *testing.T) {
	// A delete of key 1 and an insert of key 3 both overlap the scan's
	// window. Interval semantics let the scan observe key 1 before the
	// delete and key 3 after the insert — per-key points, no single
	// atomic snapshot required.
	h := []Op{
		{Kind: KInsert, Key: 1, Arg: 10, Ok: true, Start: 1, End: 2},
		{Kind: KDelete, Key: 1, Ok: true, Start: 5, End: 20},
		{Kind: KInsert, Key: 3, Arg: 30, Ok: true, Start: 5, End: 20},
		scanOp(1, 5, -1, []set.KV{{Key: 1, Value: 10}, {Key: 3, Value: 30}}, 6, 19),
	}
	if res := Check(h); !res.Ok {
		t.Fatalf("interval-consistent scan rejected: %v", res)
	}
	// Either key may equally have been observed on the other side.
	h[3].Scan = nil
	if res := Check(h); !res.Ok {
		t.Fatalf("interval-consistent empty scan rejected: %v", res)
	}
}

func TestRejectsStructurallyInvalidScan(t *testing.T) {
	cases := []struct {
		name string
		op   Op
	}{
		{"unsorted", scanOp(1, 5, -1, []set.KV{{Key: 3, Value: 30}, {Key: 1, Value: 10}}, 5, 6)},
		{"out-of-bounds", scanOp(2, 5, -1, []set.KV{{Key: 1, Value: 10}}, 5, 6)},
		{"over-limit", scanOp(1, 5, 1, []set.KV{{Key: 1, Value: 10}, {Key: 3, Value: 30}}, 5, 6)},
		{"duplicate", scanOp(1, 5, -1, []set.KV{{Key: 1, Value: 10}, {Key: 1, Value: 10}}, 5, 6)},
	}
	for _, tc := range cases {
		h := []Op{
			{Kind: KInsert, Key: 1, Arg: 10, Ok: true, Start: 1, End: 2},
			{Kind: KInsert, Key: 3, Arg: 30, Ok: true, Start: 3, End: 4},
			tc.op,
		}
		res := Check(h)
		if res.Ok {
			t.Fatalf("%s scan accepted", tc.name)
		}
		if res.Reason == "" {
			t.Fatalf("%s scan rejected without a structural reason: %v", tc.name, res)
		}
	}
}

func TestRejectsScanLimitSkippedKey(t *testing.T) {
	// A limit-2 scan returning keys 1 and 3 claims key 2 was absent
	// (it lies below the truncation point); with 2 durably present the
	// history is illegal.
	h := []Op{
		{Kind: KInsert, Key: 1, Arg: 10, Ok: true, Start: 1, End: 2},
		{Kind: KInsert, Key: 2, Arg: 20, Ok: true, Start: 3, End: 4},
		{Kind: KInsert, Key: 3, Arg: 30, Ok: true, Start: 5, End: 6},
		scanOp(1, 5, 2, []set.KV{{Key: 1, Value: 10}, {Key: 3, Value: 30}}, 7, 8),
	}
	if res := Check(h); res.Ok {
		t.Fatalf("limit-truncated scan that skipped a present key accepted")
	}
}

func TestUpsertSequentialHistory(t *testing.T) {
	h := []Op{
		{Kind: KUpsert, Key: 1, Arg: 10, Ok: false, Start: 1, End: 2},         // insert 10
		{Kind: KUpsert, Key: 1, Arg: 30, Ok: true, Val: 10, Start: 3, End: 4}, // saw 10, wrote 30
		{Kind: KFind, Key: 1, Ok: true, Val: 30, Start: 5, End: 6},
		{Kind: KPut, Key: 1, Arg: 40, Ok: true, Start: 7, End: 8},              // blind overwrite
		{Kind: KUpsert, Key: 1, Arg: 50, Ok: true, Val: 40, Start: 9, End: 10}, // saw the put's value
		{Kind: KDelete, Key: 1, Ok: true, Start: 11, End: 12},
		{Kind: KPut, Key: 1, Arg: 5, Ok: false, Start: 13, End: 14}, // reinsert after delete
		{Kind: KFind, Key: 1, Ok: true, Val: 5, Start: 15, End: 16},
	}
	if res := Check(h); !res.Ok {
		t.Fatalf("valid upsert history rejected: %v", res)
	}
}

func TestRejectsUpsertWrongPriorValue(t *testing.T) {
	h := []Op{
		{Kind: KUpsert, Key: 1, Arg: 10, Ok: false, Start: 1, End: 2},
		{Kind: KUpsert, Key: 1, Arg: 30, Ok: true, Val: 99, Start: 3, End: 4}, // claims it saw 99
	}
	if res := Check(h); res.Ok {
		t.Fatalf("upsert with impossible prior value accepted")
	}
}

func TestRejectsUpsertWrongPresence(t *testing.T) {
	h := []Op{
		{Kind: KPut, Key: 1, Arg: 10, Ok: true, Start: 1, End: 2}, // claims present on empty set
	}
	if res := Check(h); res.Ok {
		t.Fatalf("put observing presence on an empty set accepted")
	}
	h = []Op{
		{Kind: KInsert, Key: 1, Arg: 10, Ok: true, Start: 1, End: 2},
		{Kind: KUpsert, Key: 1, Arg: 20, Ok: false, Start: 3, End: 4}, // claims absent
	}
	if res := Check(h); res.Ok {
		t.Fatalf("upsert observing absence on a present key accepted")
	}
}

func TestConcurrentUpsertFindEitherOrder(t *testing.T) {
	// An upsert overlapping a find: the find may see the old or new value.
	base := []Op{
		{Kind: KInsert, Key: 1, Arg: 10, Ok: true, Start: 1, End: 2},
		{Kind: KUpsert, Key: 1, Arg: 20, Ok: true, Val: 10, Start: 3, End: 6},
	}
	for _, seen := range []uint64{10, 20} {
		h := append(append([]Op{}, base...),
			Op{Kind: KFind, Key: 1, Ok: true, Val: seen, Start: 4, End: 5})
		if res := Check(h); !res.Ok {
			t.Fatalf("overlapping find seeing %d rejected: %v", seen, res)
		}
	}
	h := append(append([]Op{}, base...),
		Op{Kind: KFind, Key: 1, Ok: true, Val: 77, Start: 4, End: 5})
	if res := Check(h); res.Ok {
		t.Fatalf("overlapping find seeing impossible value accepted")
	}
}
