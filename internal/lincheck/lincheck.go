// Package lincheck is a linearizability checker for set histories,
// used to validate the repository's concurrent structures end to end:
// operations are recorded with invocation/response timestamps from a
// global atomic counter, and the checker searches for a legal sequential
// witness (Wing & Gong's algorithm with memoization).
//
// Set semantics decompose per key: insert/delete/find on different keys
// operate on independent sub-objects, so a history is linearizable iff
// each per-key sub-history is linearizable against a single-cell model
// (present?, value). That keeps the search space tiny even for long
// recorded histories.
package lincheck

import (
	"fmt"
	"sort"
	"sync/atomic"

	flock "flock/internal/core"
	"flock/internal/structures/set"
)

// Kind is the operation type of a recorded event.
type Kind uint8

// Operation kinds. The two upsert kinds serve the KV layer
// (internal/kv): KUpsert is an atomic upsert that also observed the
// prior state (Ok = was present, Val = prior value, Arg = value
// written) — the shape of both native Upsert and ReadModifyWrite; KPut
// is a blind upsert that observed only prior presence (Ok), as returned
// by kv's Put. KScan is a range-scan observation (set.Scanner): its
// result rides in Op.Scan and is checked against interval snapshots —
// see Check.
const (
	KInsert Kind = iota
	KDelete
	KFind
	KUpsert
	KPut
	KScan
)

func (k Kind) String() string {
	switch k {
	case KInsert:
		return "insert"
	case KDelete:
		return "delete"
	case KUpsert:
		return "upsert"
	case KPut:
		return "put"
	case KScan:
		return "scan"
	default:
		return "find"
	}
}

// Op is one completed operation with its observation window: Start is
// taken just before the call, End just after, from one global counter,
// so End_a < Start_b proves a completed before b began. A KScan op uses
// Lo/Hi/Limit/Scan instead of the single-key fields.
type Op struct {
	Kind   Kind
	Key    uint64
	Arg    uint64 // inserted value
	Ok     bool   // returned presence/success
	Val    uint64 // value returned by find
	Start  int64
	End    int64
	Worker int

	Lo, Hi uint64   // KScan: requested bounds (sentinels allowed)
	Limit  int      // KScan: requested limit (< 0 unbounded, 0 empty)
	Scan   []set.KV // KScan: the returned pairs
}

// Recorder wraps a set.Set and records every completed operation.
// Each worker must use its own slot (WorkerHandle) so recording is
// contention-free; timestamps come from one shared atomic counter.
type Recorder struct {
	s     set.Set
	clock atomic.Int64
	hists []([]Op)
}

// NewRecorder wraps s for nWorkers recording workers.
func NewRecorder(s set.Set, nWorkers int) *Recorder {
	return &Recorder{s: s, hists: make([][]Op, nWorkers)}
}

// Handle is one worker's recording facade over the wrapped set.
type Handle struct {
	r *Recorder
	w int
}

// Worker returns worker w's handle.
func (r *Recorder) Worker(w int) *Handle { return &Handle{r: r, w: w} }

// Insert records an insert.
func (h *Handle) Insert(p *flock.Proc, k, v uint64) bool {
	start := h.r.clock.Add(1)
	ok := h.r.s.Insert(p, k, v)
	end := h.r.clock.Add(1)
	h.r.hists[h.w] = append(h.r.hists[h.w], Op{
		Kind: KInsert, Key: k, Arg: v, Ok: ok, Start: start, End: end, Worker: h.w,
	})
	return ok
}

// Delete records a delete.
func (h *Handle) Delete(p *flock.Proc, k uint64) bool {
	start := h.r.clock.Add(1)
	ok := h.r.s.Delete(p, k)
	end := h.r.clock.Add(1)
	h.r.hists[h.w] = append(h.r.hists[h.w], Op{
		Kind: KDelete, Key: k, Ok: ok, Start: start, End: end, Worker: h.w,
	})
	return ok
}

// Upsert records a native atomic upsert storing v; it panics if the
// wrapped set does not implement set.Upserter.
func (h *Handle) Upsert(p *flock.Proc, k, v uint64) (uint64, bool) {
	up, ok := h.r.s.(set.Upserter)
	if !ok {
		panic("lincheck: wrapped set does not implement set.Upserter")
	}
	start := h.r.clock.Add(1)
	old, present := up.Upsert(p, k, func(uint64, bool) uint64 { return v })
	end := h.r.clock.Add(1)
	h.r.hists[h.w] = append(h.r.hists[h.w], Op{
		Kind: KUpsert, Key: k, Arg: v, Ok: present, Val: old, Start: start, End: end, Worker: h.w,
	})
	return old, present
}

// Scan records a range-scan observation; it panics if the wrapped set
// does not implement set.Scanner.
func (h *Handle) Scan(p *flock.Proc, lo, hi uint64, limit int) []set.KV {
	sc, ok := h.r.s.(set.Scanner)
	if !ok {
		panic("lincheck: wrapped set does not implement set.Scanner")
	}
	start := h.r.clock.Add(1)
	res := sc.Scan(p, lo, hi, limit)
	end := h.r.clock.Add(1)
	h.r.hists[h.w] = append(h.r.hists[h.w], Op{
		Kind: KScan, Lo: lo, Hi: hi, Limit: limit, Scan: res,
		Start: start, End: end, Worker: h.w,
	})
	return res
}

// FindOptimistic records a find performed through the structure's
// unlogged optimistic read path; it panics if the wrapped set does not
// implement set.OptimisticReader. The observation is recorded as an
// ordinary KFind and checked identically: the capability contract
// requires a top-level OptimisticFind to be linearizable, exactly like
// Find. Rejected (invalid-version) attempts never reach a Handle — the
// read arms retry internally and only the validated or escalated result
// returns — so by construction only committed observations are
// recorded (see TestOptimisticRejectedReadsNotReported).
func (h *Handle) FindOptimistic(p *flock.Proc, k uint64) (uint64, bool) {
	or, implements := h.r.s.(set.OptimisticReader)
	if !implements {
		panic("lincheck: wrapped set does not implement set.OptimisticReader")
	}
	start := h.r.clock.Add(1)
	v, ok := or.OptimisticFind(p, k)
	end := h.r.clock.Add(1)
	h.r.hists[h.w] = append(h.r.hists[h.w], Op{
		Kind: KFind, Key: k, Ok: ok, Val: v, Start: start, End: end, Worker: h.w,
	})
	return v, ok
}

// ScanOptimistic records a range scan through the structure's unlogged
// optimistic path; it panics if the wrapped set does not implement
// set.OptimisticScanner. Recorded as an ordinary KScan and held to the
// same interval-snapshot semantics as Scan.
func (h *Handle) ScanOptimistic(p *flock.Proc, lo, hi uint64, limit int) []set.KV {
	osc, implements := h.r.s.(set.OptimisticScanner)
	if !implements {
		panic("lincheck: wrapped set does not implement set.OptimisticScanner")
	}
	start := h.r.clock.Add(1)
	res := osc.OptimisticScan(p, lo, hi, limit)
	end := h.r.clock.Add(1)
	h.r.hists[h.w] = append(h.r.hists[h.w], Op{
		Kind: KScan, Lo: lo, Hi: hi, Limit: limit, Scan: res,
		Start: start, End: end, Worker: h.w,
	})
	return res
}

// Find records a find.
func (h *Handle) Find(p *flock.Proc, k uint64) (uint64, bool) {
	start := h.r.clock.Add(1)
	v, ok := h.r.s.Find(p, k)
	end := h.r.clock.Add(1)
	h.r.hists[h.w] = append(h.r.hists[h.w], Op{
		Kind: KFind, Key: k, Ok: ok, Val: v, Start: start, End: end, Worker: h.w,
	})
	return v, ok
}

// History returns all recorded operations (call after workers finish).
func (r *Recorder) History() []Op {
	var all []Op
	for _, h := range r.hists {
		all = append(all, h...)
	}
	return all
}

// cell is the per-key sequential model: a single optional value.
type cell struct {
	present bool
	val     uint64
}

// step applies op to the model; reports whether the recorded result is
// legal from this state, and the successor state.
func (c cell) step(op Op) (cell, bool) {
	switch op.Kind {
	case KInsert:
		if op.Ok {
			if c.present {
				return c, false
			}
			return cell{present: true, val: op.Arg}, true
		}
		return c, c.present
	case KDelete:
		if op.Ok {
			if !c.present {
				return c, false
			}
			return cell{}, true
		}
		return c, !c.present
	case KUpsert:
		// Observed prior presence (Ok) and prior value (Val); wrote Arg.
		if op.Ok != c.present || (op.Ok && c.val != op.Val) {
			return c, false
		}
		return cell{present: true, val: op.Arg}, true
	case KPut:
		// Observed only prior presence (Ok); wrote Arg.
		if op.Ok != c.present {
			return c, false
		}
		return cell{present: true, val: op.Arg}, true
	default: // KFind
		if op.Ok {
			return c, c.present && c.val == op.Val
		}
		return c, !c.present
	}
}

// CheckResult reports the verdict and, on failure, the offending key
// (or, for a structurally invalid scan result, a Reason).
type CheckResult struct {
	Ok       bool
	BadKey   uint64
	BadCount int    // ops on the failing key
	Reason   string // non-empty for structural scan violations
}

func (cr CheckResult) String() string {
	if cr.Ok {
		return "linearizable"
	}
	if cr.Reason != "" {
		return "NOT linearizable: " + cr.Reason
	}
	return fmt.Sprintf("NOT linearizable: key %d (%d ops)", cr.BadKey, cr.BadCount)
}

// Check verifies the history is linearizable with respect to set
// semantics starting from the empty set.
//
// KScan operations are checked against interval snapshots, the
// consistency contract of set.Scanner: a scan's result must be sorted,
// in bounds and within its limit (structural checks), and then each
// per-key observation it makes — key k reported with value v, or an
// in-range key missing from the result — must hold at some
// linearization point inside the scan's own invocation window, chosen
// independently per key. That is exactly the per-key decomposition the
// checker already uses, so each scan expands into one synthesized find
// observation per key of the scanned interval (keys past the
// limit-truncation point claim nothing). A scan that would only be
// explicable by an atomic multi-key snapshot is deliberately not
// required — no structure here provides one (DESIGN.md S12).
func Check(history []Op) CheckResult {
	perKey := map[uint64][]Op{}
	var scans []Op
	for _, op := range history {
		if op.Kind == KScan {
			scans = append(scans, op)
			continue
		}
		perKey[op.Key] = append(perKey[op.Key], op)
	}
	if len(scans) > 0 {
		// The observable key universe: every key any operation or scan
		// result touched. A never-touched key is trivially absent and
		// adds no constraint.
		keys := map[uint64]bool{}
		for k := range perKey {
			keys[k] = true
		}
		for _, s := range scans {
			for _, kv := range s.Scan {
				keys[kv.Key] = true
			}
		}
		for _, s := range scans {
			lo, hi := set.ClampScanBounds(s.Lo, s.Hi)
			prev := uint64(0) // real keys are >= 1
			for _, kv := range s.Scan {
				if kv.Key < lo || kv.Key > hi {
					return CheckResult{Reason: fmt.Sprintf("scan [%d,%d] returned out-of-bounds key %d", s.Lo, s.Hi, kv.Key)}
				}
				if kv.Key <= prev {
					return CheckResult{Reason: fmt.Sprintf("scan result not strictly ascending at key %d", kv.Key)}
				}
				prev = kv.Key
			}
			if s.Limit > 0 && len(s.Scan) > s.Limit {
				return CheckResult{Reason: fmt.Sprintf("scan returned %d pairs over limit %d", len(s.Scan), s.Limit)}
			}
			// Limit 0 pins the empty result (set.Scanner's contract) and
			// observes nothing: no key was ever reached.
			if s.Limit == 0 {
				if len(s.Scan) != 0 {
					return CheckResult{Reason: fmt.Sprintf("limit-0 scan returned %d pairs, want none", len(s.Scan))}
				}
				continue
			}
			// A limit-truncated scan observes nothing past its last
			// returned key: those keys were simply never reached.
			effHi := hi
			if s.Limit > 0 && len(s.Scan) == s.Limit {
				effHi = s.Scan[len(s.Scan)-1].Key
			}
			res := map[uint64]uint64{}
			for _, kv := range s.Scan {
				res[kv.Key] = kv.Value
			}
			for k := range keys {
				if k < lo || k > effHi {
					continue
				}
				v, ok := res[k]
				perKey[k] = append(perKey[k], Op{
					Kind: KFind, Key: k, Ok: ok, Val: v,
					Start: s.Start, End: s.End, Worker: s.Worker,
				})
			}
		}
	}
	for k, ops := range perKey {
		if !checkKey(ops) {
			return CheckResult{Ok: false, BadKey: k, BadCount: len(ops)}
		}
	}
	return CheckResult{Ok: true}
}

// bitset is an arbitrary-width done-set over the ops of one key. The
// reachable done-sets of Wing-Gong search are "order ideals" of the
// precedence order, so with w workers (plus any stalled operations) only
// a modest number of distinct sets arise and memoization over the bitset
// is effective regardless of history length.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) get(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

func (b bitset) with(i int) bitset {
	nb := make(bitset, len(b))
	copy(nb, b)
	nb[i/64] |= 1 << (i % 64)
	return nb
}

func (b bitset) key() string {
	buf := make([]byte, 0, len(b)*8)
	for _, w := range b {
		for s := 0; s < 64; s += 8 {
			buf = append(buf, byte(w>>s))
		}
	}
	return string(buf)
}

// checkKey runs Wing-Gong DFS with memoization over one key's ops. The
// done-set is an arbitrary-width bitset: a stalled operation can overlap
// hundreds of later ones (its window covers them all), so a fixed 64-op
// window is not enough.
func checkKey(ops []Op) bool {
	sort.Slice(ops, func(i, j int) bool { return ops[i].Start < ops[j].Start })
	n := len(ops)
	if n == 0 {
		return true
	}
	type memoKey struct {
		done string
		c    cell
	}
	seen := map[memoKey]bool{}
	var dfs func(done bitset, nDone int, c cell) bool
	dfs = func(done bitset, nDone int, c cell) bool {
		if nDone == n {
			return true
		}
		mk := memoKey{done.key(), c}
		if seen[mk] {
			return false
		}
		seen[mk] = true
		// Only ops invoked before every pending response may linearize
		// next; and since ops are Start-sorted, once Start exceeds
		// minEnd no later op qualifies either.
		minEnd := int64(1) << 62
		for i := 0; i < n; i++ {
			if !done.get(i) && ops[i].End < minEnd {
				minEnd = ops[i].End
			}
		}
		for i := 0; i < n; i++ {
			if done.get(i) {
				continue
			}
			if ops[i].Start > minEnd {
				break
			}
			if next, ok := c.step(ops[i]); ok {
				if dfs(done.with(i), nDone+1, next) {
					return true
				}
			}
		}
		return false
	}
	return dfs(newBitset(n), 0, cell{})
}
