package lincheck

import (
	"math"
	"testing"

	"flock/internal/structures/set"
)

// TestOptimisticRejectedReadsNotReported is the optimistic-read
// recording contract (DESIGN.md S13): an optimistic attempt whose
// version validation failed observed a possibly-torn state, its result
// is discarded, and only the validated (or escalated) retry reaches the
// history. Each case synthesizes the same torn attempt twice — once
// correctly unreported (the history must pass) and once wrongly
// reported as a completed operation (the checker must flag it) — so a
// recording-layer bug that leaks rejected observations cannot pass.
func TestOptimisticRejectedReadsNotReported(t *testing.T) {
	// Ground truth: key 1 holds 10 over [1,2]..[5,6], then is deleted.
	base := []Op{
		{Kind: KInsert, Key: 1, Arg: 10, Ok: true, Start: 1, End: 2},
		{Kind: KDelete, Key: 1, Ok: true, Start: 5, End: 6},
	}
	cases := []struct {
		name string
		// torn is the rejected attempt's observation; valid is the
		// validated retry that is always reported.
		torn, valid Op
	}{
		{
			name: "stale find after delete",
			// The attempt read (present, 10) but its window lies
			// entirely after the delete: impossible at any
			// linearization point, which is why validation rejected it.
			torn:  Op{Kind: KFind, Key: 1, Ok: true, Val: 10, Start: 8, End: 9},
			valid: Op{Kind: KFind, Key: 1, Ok: false, Start: 10, End: 11},
		},
		{
			name: "torn value never stored",
			// The attempt caught a value mid-update that no committed
			// state ever held.
			torn:  Op{Kind: KFind, Key: 1, Ok: true, Val: 999, Start: 3, End: 4},
			valid: Op{Kind: KFind, Key: 1, Ok: true, Val: 10, Start: 3, End: 4},
		},
		{
			name: "phantom scan pair",
			// The attempt's scan reported a pair after the delete;
			// the validated retry sees the empty range.
			torn: Op{Kind: KScan, Lo: 0, Hi: math.MaxUint64, Limit: -1,
				Scan: []set.KV{{Key: 1, Value: 10}}, Start: 8, End: 9},
			valid: Op{Kind: KScan, Lo: 0, Hi: math.MaxUint64, Limit: -1,
				Scan: nil, Start: 10, End: 11},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clean := append(append([]Op(nil), base...), tc.valid)
			if res := Check(clean); !res.Ok {
				t.Fatalf("history without the rejected attempt must pass, got %v", res)
			}
			leaked := append(clean, tc.torn)
			if res := Check(leaked); res.Ok {
				t.Fatalf("leaked rejected observation accepted: %+v", tc.torn)
			}
		})
	}
}

// TestScanLimitZero pins the checker's side of the limit-0 contract:
// Scan(lo, hi, 0) must return no pairs and observes nothing (it
// constrains no key, even one whose state changes inside the window).
func TestScanLimitZero(t *testing.T) {
	h := []Op{
		{Kind: KInsert, Key: 1, Arg: 10, Ok: true, Start: 1, End: 2},
		{Kind: KScan, Lo: 0, Hi: math.MaxUint64, Limit: 0, Scan: nil, Start: 3, End: 4},
	}
	if res := Check(h); !res.Ok {
		t.Fatalf("empty limit-0 scan rejected: %v", res)
	}
	h[1].Scan = []set.KV{{Key: 1, Value: 10}}
	if res := Check(h); res.Ok {
		t.Fatal("limit-0 scan returning pairs accepted")
	}
}
