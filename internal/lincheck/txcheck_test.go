package lincheck

import "testing"

// Shorthands for building TxOp histories.
func robs(kvs ...uint64) []KVObs { // key, val, key, val, ... all present
	var out []KVObs
	for i := 0; i+1 < len(kvs); i += 2 {
		out = append(out, KVObs{Key: kvs[i], Val: kvs[i+1], Ok: true})
	}
	return out
}

func absent(keys ...uint64) []KVObs {
	var out []KVObs
	for _, k := range keys {
		out = append(out, KVObs{Key: k})
	}
	return out
}

func writes(kvs ...uint64) []KVObs { return robs(kvs...) }

// TestCheckTxTable drives the transactional checker through hand-built
// histories for every multi-key operation kind.
func TestCheckTxTable(t *testing.T) {
	// setup writes a=10, b=0 before anything else (window [1,2]).
	setup := TxOp{Writes: writes(1, 10, 2, 0), Start: 1, End: 2}

	cases := []struct {
		name string
		hist []TxOp
		ok   bool
	}{
		{"empty", nil, true},
		{
			"multiput then consistent multiget",
			[]TxOp{
				{Writes: writes(1, 7, 2, 8), Start: 1, End: 2},
				{Reads: robs(1, 7, 2, 8), Start: 3, End: 4},
			},
			true,
		},
		{
			"torn multiput observed",
			// The atomicity violation of record: MultiPut(a=1, b=1)
			// completed, then a snapshot saw a written but b absent.
			[]TxOp{
				{Writes: writes(1, 1, 2, 1), Start: 1, End: 4},
				{Reads: append(robs(1, 1), absent(2)...), Start: 5, End: 6},
			},
			false,
		},
		{
			"overlapping multiput may order either way",
			// The snapshot overlaps the put, so both orders are legal
			// witnesses; seeing neither write is fine.
			[]TxOp{
				{Writes: writes(1, 1, 2, 1), Start: 1, End: 6},
				{Reads: absent(1, 2), Start: 2, End: 3},
			},
			true,
		},
		{
			"transfer conserves the snapshot",
			[]TxOp{
				setup,
				{Reads: robs(1, 10, 2, 0), Writes: writes(1, 4, 2, 6), Start: 3, End: 4},
				{Reads: robs(1, 4, 2, 6), Start: 5, End: 6},
			},
			true,
		},
		{
			"torn transfer: debit visible, credit missing",
			[]TxOp{
				setup,
				{Reads: robs(1, 10, 2, 0), Writes: writes(1, 4, 2, 6), Start: 3, End: 4},
				{Reads: robs(1, 4, 2, 0), Start: 5, End: 6},
			},
			false,
		},
		{
			"transfer read must match the state it debits",
			// The transfer claims it observed a=9, but only a=10 ever
			// existed before it.
			[]TxOp{
				setup,
				{Reads: robs(1, 9, 2, 0), Writes: writes(1, 3, 2, 6), Start: 3, End: 4},
			},
			false,
		},
		{
			"failed multicas explained by a mismatch",
			[]TxOp{
				setup,
				{Reads: robs(1, 999, 2, 0), FailedCAS: true, Start: 3, End: 4},
			},
			true,
		},
		{
			"failed multicas with nothing to explain it",
			// Both expectations match the only reachable state, so the
			// reported failure is impossible.
			[]TxOp{
				setup,
				{Reads: robs(1, 10, 2, 0), FailedCAS: true, Start: 3, End: 4},
			},
			false,
		},
		{
			"successful multicas is a read-guarded write",
			[]TxOp{
				setup,
				{Reads: robs(1, 10), Writes: writes(1, 20), Start: 3, End: 4},
				{Reads: robs(1, 20, 2, 0), Start: 5, End: 6},
			},
			true,
		},
		{
			"concurrent transfers serialize in some order",
			// Two overlapping transfers of 3 and 4 out of a=10 into
			// b=0; a final snapshot sees the sum conserved.
			[]TxOp{
				setup,
				{Reads: robs(1, 10, 2, 0), Writes: writes(1, 7, 2, 3), Start: 3, End: 8},
				{Reads: robs(1, 7, 2, 3), Writes: writes(1, 3, 2, 7), Start: 4, End: 9},
				{Reads: robs(1, 3, 2, 7), Start: 10, End: 11},
			},
			true,
		},
		{
			"sum violated even though each key once held its value",
			// a=7 was real (after transfer 1) and b=7 was real (after
			// transfer 2), but no single point had both.
			[]TxOp{
				setup,
				{Reads: robs(1, 10, 2, 0), Writes: writes(1, 7, 2, 3), Start: 3, End: 8},
				{Reads: robs(1, 7, 2, 3), Writes: writes(1, 3, 2, 7), Start: 4, End: 9},
				{Reads: robs(1, 7, 2, 7), Start: 10, End: 11},
			},
			false,
		},
		{
			"real-time order is enforced across transactions",
			// The snapshot finished before the put began, so it cannot
			// be serialized after it.
			[]TxOp{
				{Reads: robs(1, 5), Start: 1, End: 2},
				{Writes: writes(1, 5), Start: 3, End: 4},
			},
			false,
		},
		{
			"duplicate write keys: last write in the set wins",
			[]TxOp{
				{Writes: []KVObs{{Key: 1, Val: 1}, {Key: 1, Val: 2}}, Start: 1, End: 2},
				{Reads: robs(1, 2), Start: 3, End: 4},
			},
			true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := CheckTx(tc.hist)
			if res.Ok != tc.ok {
				t.Fatalf("CheckTx = %v, want ok=%v", res, tc.ok)
			}
		})
	}
}

// TestCheckTxSnapshotObservation models a whole-store snapshot the way
// txntest records one: a single read-only transaction observing every
// key in the universe, absent keys included. The snapshot must
// correspond to one serialization point — a mixed state (one
// transfer's debit without its credit) or a phantom key (present in
// the snapshot but absent at every reachable state) has no witness.
func TestCheckTxSnapshotObservation(t *testing.T) {
	// a=10, b=0 seeded; one transfer of 4 from a to b overlaps the
	// snapshots. Key 3 is never written.
	base := []TxOp{
		{Writes: writes(1, 10, 2, 0), Start: 1, End: 2},
		{Reads: robs(1, 10, 2, 0), Writes: writes(1, 6, 2, 4), Start: 3, End: 8},
	}
	snap := func(obs ...KVObs) []TxOp {
		return append(append([]TxOp(nil), base...), TxOp{Reads: obs, Start: 4, End: 9})
	}
	pre := append(robs(1, 10, 2, 0), absent(3)...)
	post := append(robs(1, 6, 2, 4), absent(3)...)
	torn := append(robs(1, 6, 2, 0), absent(3)...)
	phantom := append(robs(1, 10, 2, 0), robs(3, 77)...)
	if res := CheckTx(snap(pre...)); !res.Ok {
		t.Fatalf("pre-transfer snapshot rejected: %v", res)
	}
	if res := CheckTx(snap(post...)); !res.Ok {
		t.Fatalf("post-transfer snapshot rejected: %v", res)
	}
	if res := CheckTx(snap(torn...)); res.Ok {
		t.Fatal("snapshot observing a torn transfer (debit without credit) accepted")
	}
	if res := CheckTx(snap(phantom...)); res.Ok {
		t.Fatal("snapshot observing a phantom key accepted")
	}
}

// TestCheckTxUndoRestoresState exercises the DFS backtracking: a
// history whose first serialization guess must fail and be undone
// before the witness is found.
func TestCheckTxUndoRestoresState(t *testing.T) {
	// Two overlapping writers of key 1 and a later read that pins the
	// surviving value: the checker must try (and undo) the wrong order.
	hist := []TxOp{
		{Writes: writes(1, 100), Start: 1, End: 10},
		{Writes: writes(1, 200), Start: 2, End: 11},
		{Reads: robs(1, 100), Start: 12, End: 13},
	}
	if res := CheckTx(hist); !res.Ok {
		t.Fatalf("order requiring backtracking rejected: %v", res)
	}
}
