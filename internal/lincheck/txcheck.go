package lincheck

import (
	"encoding/binary"
	"sort"
)

// This file extends the checker to multi-key transactional histories
// (internal/txn): a TxOp is one completed multi-key operation —
// MultiGet, MultiPut, MultiCAS, Transfer, or a generic Txn — whose
// reads and writes must all take effect at a single serialization
// point. Set histories decompose per key (lincheck.Check); transactions
// are exactly the histories that do NOT decompose, so CheckTx runs
// Wing-Gong over whole-map states instead. Histories should stay modest
// (hundreds of transactions over a small key set): the memoized search
// is exponential in the worst case, but real recorded histories from
// txntest's workloads check in milliseconds.

// KVObs is one key's observation (read) or effect (write) within a
// transaction.
type KVObs struct {
	Key uint64
	Val uint64
	// Ok is the observed presence for reads; writes ignore it (every
	// write in this API is an upsert).
	Ok bool
}

// TxOp is one completed multi-key operation with its observation
// window (Start/End from the same global-counter discipline as Op).
//
// A committed transaction (FailedCAS=false) is legal at a
// serialization point iff every Reads entry matches the state there;
// its Writes then apply. A failed MultiCAS (FailedCAS=true) is legal
// iff at least one Reads entry does NOT match the state — Reads then
// holds the expected values the operation compared against — and it
// changes nothing. Aborted generic transactions are recorded the same
// way only when their abort condition is a pure all-reads-match
// predicate; otherwise record them as read-only committed ops
// (Writes=nil) so their observed reads are still checked.
type TxOp struct {
	Reads     []KVObs
	Writes    []KVObs
	FailedCAS bool
	Start     int64
	End       int64
	Worker    int
}

// txStep reports whether tx is legal from state, and applies its writes
// in place when it is (the caller owns state's mutability).
func txStep(state map[uint64]cell, tx TxOp) bool {
	if tx.FailedCAS {
		for _, r := range tx.Reads {
			c := state[r.Key]
			if !c.present || c.val != r.Val {
				return true // a mismatch exists: the failure is explained
			}
		}
		return false // everything matched; the CAS could not have failed
	}
	for _, r := range tx.Reads {
		c := state[r.Key]
		if c.present != r.Ok || (r.Ok && c.val != r.Val) {
			return false
		}
	}
	for _, w := range tx.Writes {
		state[w.Key] = cell{present: true, val: w.Val}
	}
	return true
}

// CheckTx verifies that the transactional history has a legal
// sequential witness starting from the empty map: an order consistent
// with the real-time windows in which every committed transaction's
// reads and writes are mutually atomic. A torn multi-write — a snapshot
// that observed part of another transaction's write set — has no
// witness and is rejected.
func CheckTx(history []TxOp) CheckResult {
	ops := append([]TxOp(nil), history...)
	sort.Slice(ops, func(i, j int) bool { return ops[i].Start < ops[j].Start })
	n := len(ops)
	if n == 0 {
		return CheckResult{Ok: true}
	}
	// Key universe, for state serialization.
	keySet := map[uint64]bool{}
	for _, op := range ops {
		for _, r := range op.Reads {
			keySet[r.Key] = true
		}
		for _, w := range op.Writes {
			keySet[w.Key] = true
		}
	}
	keys := make([]uint64, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	state := map[uint64]cell{}
	serial := func(done bitset) string {
		buf := make([]byte, 0, len(done)*8+len(keys)*9)
		var w [8]byte
		for _, word := range done {
			binary.LittleEndian.PutUint64(w[:], word)
			buf = append(buf, w[:]...)
		}
		// The reachable states are a function of the done-set for a
		// fixed history, but including the state keeps the memo sound
		// if that ever ceases to hold (and it is cheap at these sizes).
		for _, k := range keys {
			c := state[k]
			if c.present {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
			binary.LittleEndian.PutUint64(w[:], c.val)
			buf = append(buf, w[:]...)
		}
		return string(buf)
	}

	seen := map[string]bool{}
	var dfs func(done bitset, nDone int) bool
	dfs = func(done bitset, nDone int) bool {
		if nDone == n {
			return true
		}
		mk := serial(done)
		if seen[mk] {
			return false
		}
		seen[mk] = true
		// Real-time pruning, as in checkKey: only transactions invoked
		// before every pending response may serialize next.
		minEnd := int64(1) << 62
		for i := 0; i < n; i++ {
			if !done.get(i) && ops[i].End < minEnd {
				minEnd = ops[i].End
			}
		}
		for i := 0; i < n; i++ {
			if done.get(i) {
				continue
			}
			if ops[i].Start > minEnd {
				break
			}
			tx := ops[i]
			writes := tx.Writes
			if tx.FailedCAS {
				writes = nil // failed CAS ops never apply their writes
			}
			// Save displaced cells for undo.
			prev := make([]cell, len(writes))
			had := make([]bool, len(writes))
			for j, w := range writes {
				prev[j], had[j] = state[w.Key]
			}
			if txStep(state, tx) {
				if dfs(done.with(i), nDone+1) {
					return true
				}
				// Undo in reverse so duplicate write keys restore the
				// oldest displaced cell last.
				for j := len(writes) - 1; j >= 0; j-- {
					if had[j] {
						state[writes[j].Key] = prev[j]
					} else {
						delete(state, writes[j].Key)
					}
				}
			}
		}
		return false
	}
	if dfs(newBitset(n), 0) {
		return CheckResult{Ok: true}
	}
	// Report the smallest key involved, for debuggability.
	bad := keys[0]
	count := 0
	for _, op := range ops {
		for _, r := range op.Reads {
			if r.Key == bad {
				count++
				break
			}
		}
	}
	return CheckResult{Ok: false, BadKey: bad, BadCount: count}
}
