package flock

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// These tests pin the property internal/txn is built on: TryLock
// acquisitions on several locks of one Runtime compose when nested in a
// fixed (sorted) order inside one thunk, and the composed critical
// section stays atomic under helping, stall injection and
// oversubscription. The counters live in Mutables so all reads and
// writes go through the log; results escape through idempotent atomic
// stores, per the determinism rules.

// multiAcquire nests TryLock calls on locks[idx[0]], locks[idx[1]], ...
// (idx must be in a globally consistent order) and runs body innermost.
// It reports whether the whole chain was acquired.
func multiAcquire(p *Proc, locks []Lock, idx []int, body func(hp *Proc)) bool {
	var nest func(hp *Proc, i int) bool
	nest = func(hp *Proc, i int) bool {
		if i == len(idx) {
			body(hp)
			return true
		}
		return locks[idx[i]].TryLock(hp, func(hp2 *Proc) bool {
			return nest(hp2, i+1)
		})
	}
	return nest(p, 0)
}

// TestNestedOrderedAcquisitionAtomic runs composed two-lock transfers
// against whole-set snapshot readers: every snapshot (itself a composed
// all-lock acquisition) must observe the conserved sum.
func TestNestedOrderedAcquisitionAtomic(t *testing.T) {
	for _, blocking := range []bool{false, true} {
		name := "lockfree"
		if blocking {
			name = "blocking"
		}
		t.Run(name, func(t *testing.T) {
			rt := New()
			rt.SetBlocking(blocking)
			const nCells = 6
			const initial = uint64(1000)
			locks := make([]Lock, nCells)
			cells := make([]Mutable[uint64], nCells)
			{
				p := rt.Register()
				for i := range cells {
					cells[i].Init(initial)
				}
				p.Unregister()
			}
			if !blocking {
				rt.SetStallInjection(25)
			}

			const workers = 8
			const opsPer = 300
			var snapshots atomic.Uint64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					p := rt.Register()
					defer p.Unregister()
					rng := rand.New(rand.NewSource(int64(w)*271 + 1))
					for i := 0; i < opsPer; i++ {
						if rng.Intn(4) == 0 {
							// Snapshot: acquire every lock in order, sum.
							all := make([]int, nCells)
							for j := range all {
								all[j] = j
							}
							var sum atomic.Uint64
							for {
								p.Begin()
								ok := multiAcquire(p, locks, all, func(hp *Proc) {
									s := uint64(0)
									for j := range cells {
										s += cells[j].Load(hp)
									}
									sum.Store(s) // same in every run: loads are logged
								})
								p.End()
								if ok {
									break
								}
							}
							if got := sum.Load(); got != nCells*initial {
								t.Errorf("snapshot sum %d, want %d (torn composed transfer)", got, nCells*initial)
								return
							}
							snapshots.Add(1)
							continue
						}
						// Transfer between two distinct cells, locks in
						// ascending index order.
						a, b := rng.Intn(nCells), rng.Intn(nCells)
						if a == b {
							continue
						}
						lo, hi := a, b
						if lo > hi {
							lo, hi = hi, lo
						}
						amt := uint64(rng.Intn(5) + 1)
						for {
							p.Begin()
							ok := multiAcquire(p, locks, []int{lo, hi}, func(hp *Proc) {
								va := cells[a].Load(hp)
								if va < amt {
									return // logged decision: every run agrees
								}
								vb := cells[b].Load(hp)
								cells[a].Store(hp, va-amt)
								cells[b].Store(hp, vb+amt)
							})
							p.End()
							if ok {
								break
							}
						}
					}
				}(w)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			if snapshots.Load() == 0 {
				t.Fatal("no snapshots taken; the invariant was never checked")
			}
			p := rt.Register()
			defer p.Unregister()
			var sum uint64
			for j := range cells {
				sum += cells[j].Load(p)
			}
			if sum != nCells*initial {
				t.Fatalf("final sum %d, want %d", sum, nCells*initial)
			}
		})
	}
}

// TestStallInjectionCountsOncePerComposedSection pins fairness of the
// deschedule injection across modes: a composed acquisition nesting N
// locks must tick the stall counter once per operation — at the
// outermost level — in blocking mode just as in lock-free mode, so the
// ext-txn stall figures compare equal fault-injection rates.
func TestStallInjectionCountsOncePerComposedSection(t *testing.T) {
	for _, blocking := range []bool{false, true} {
		name := "lockfree"
		if blocking {
			name = "blocking"
		}
		t.Run(name, func(t *testing.T) {
			rt := New()
			rt.SetBlocking(blocking)
			rt.SetStallInjection(1 << 30) // count ticks, never actually yield
			locks := make([]Lock, 3)
			p := rt.Register()
			defer p.Unregister()
			const ops = 10
			for i := 0; i < ops; i++ {
				p.Begin()
				ok := multiAcquire(p, locks, []int{0, 1, 2}, func(*Proc) {})
				p.End()
				if !ok {
					t.Fatal("uncontended composed acquisition failed")
				}
			}
			if got := p.stalls; got != ops {
				t.Fatalf("%d stall ticks for %d 3-lock operations, want %d (one per outermost acquisition)",
					got, ops, ops)
			}
		})
	}
}

// TestNestedAcquisitionHelpedToCompletion pins the helping contract the
// transactional layer relies on: when the owner of a composed two-lock
// critical section is parked mid-acquisition, another Proc that
// try-locks the outer lock completes the owner's entire nested thunk —
// both cell writes — before reporting failure.
func TestNestedAcquisitionHelpedToCompletion(t *testing.T) {
	rt := New()
	locks := make([]Lock, 2)
	var a, b Mutable[uint64]
	setup := rt.Register()
	a.Init(1)
	b.Init(1)
	setup.Unregister()

	owner := rt.Register()
	defer owner.Unregister()
	helper := rt.Register()
	defer helper.Unregister()

	release := make(chan struct{})
	published := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		owner.Begin()
		defer owner.End()
		locks[0].TryLock(owner, func(hp *Proc) bool {
			return locks[1].TryLock(hp, func(hp2 *Proc) bool {
				// First run only: the commit points below are logged, so
				// a helper's replay performs the same writes.
				if hp2 == owner {
					close(published)
					<-release // park while holding both locks
				}
				a.Store(hp2, 2)
				b.Store(hp2, 2)
				return true
			})
		})
	}()
	<-published

	// The owner is parked inside the innermost thunk. A TryLock on the
	// OUTER lock must help the whole composed section to completion.
	helper.Begin()
	got := locks[0].TryLock(helper, func(*Proc) bool { return true })
	helper.End()
	if got {
		t.Fatal("helper acquired a lock the owner still holds")
	}
	va := a.b.Load().v
	vb := b.b.Load().v
	if va != 2 || vb != 2 {
		t.Fatalf("after helping, cells = (%d,%d), want (2,2): nested thunk not completed", va, vb)
	}
	close(release)
	<-done
}
