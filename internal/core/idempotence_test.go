package flock

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// replayConcurrently builds one descriptor for f and runs it from k procs
// at once — the exact situation helping creates — returning each run's
// result. This is the test harness for Definition 1 (idempotence): after
// it returns, f must appear to have executed exactly once.
func replayConcurrently(rt *Runtime, k int, f Thunk) []bool {
	owner := rt.Register()
	defer owner.Unregister()
	d := owner.newDescriptor(f)

	results := make([]bool, k)
	var start, wg sync.WaitGroup
	start.Add(1)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := rt.Register()
			defer p.Unregister()
			start.Wait()
			p.Begin()
			results[i] = p.run(d)
			p.End()
		}(i)
	}
	start.Done()
	wg.Wait()
	return results
}

func TestCounterIncrementsOnceUnderReplay(t *testing.T) {
	for _, k := range []int{1, 2, 4, 8, 16} {
		rt := New()
		var c Mutable[uint64]
		c.Init(0)
		f := func(p *Proc) bool {
			v := c.Load(p)
			c.Store(p, v+1)
			return true
		}
		replayConcurrently(rt, k, f)
		probe := rt.Register()
		if got := c.Load(probe); got != 1 {
			t.Fatalf("k=%d: counter = %d after concurrent replays, want 1", k, got)
		}
		probe.Unregister()
	}
}

func TestSequentialReplayHasNoFurtherEffect(t *testing.T) {
	rt := New()
	p := rt.Register()
	q := rt.Register()
	defer p.Unregister()
	defer q.Unregister()

	var c Mutable[uint64]
	c.Init(10)
	d := p.newDescriptor(func(hp *Proc) bool {
		v := c.Load(hp)
		c.Store(hp, v*2)
		return v == 10
	})
	r1 := p.run(d)
	// Interfering operation between runs.
	c.Store(p, 999)
	r2 := q.run(d)
	r3 := p.run(d)
	if !r1 || !r2 || !r3 {
		t.Fatalf("replays returned different results: %v %v %v", r1, r2, r3)
	}
	if got := c.Load(p); got != 999 {
		t.Fatalf("replay re-applied effects: %d, want 999", got)
	}
}

func TestAllRunsReturnSameValue(t *testing.T) {
	rt := New()
	var c Mutable[uint64]
	c.Init(7)
	results := replayConcurrently(rt, 8, func(p *Proc) bool {
		return c.Load(p)%2 == 1
	})
	for i, r := range results {
		if r != results[0] {
			t.Fatalf("run %d returned %v, run 0 returned %v", i, r, results[0])
		}
	}
}

func TestAllocateAgreesAcrossRuns(t *testing.T) {
	rt := New()
	type obj struct{ tag uint64 }
	var slot Mutable[*obj]
	var mkCalls atomic.Int64
	f := func(p *Proc) bool {
		o := Allocate(p, func() *obj {
			mkCalls.Add(1)
			return &obj{tag: 1}
		})
		slot.Store(p, o)
		return true
	}
	replayConcurrently(rt, 8, f)
	probe := rt.Register()
	defer probe.Unregister()
	got := slot.Load(probe)
	if got == nil || got.tag != 1 {
		t.Fatalf("allocated object lost: %+v", got)
	}
	if mkCalls.Load() < 1 {
		t.Fatalf("constructor never ran")
	}
	// Several constructors may run (losers are discarded), but the
	// externally visible object is unique: re-running the descriptor
	// once more must still yield the same pointer.
	d := probe.newDescriptor(f)
	_ = d // separate descriptor would allocate separately; instead check stability:
	if slot.Load(probe) != got {
		t.Fatalf("allocation not stable")
	}
}

func TestRetireFiresExactlyOnce(t *testing.T) {
	for _, k := range []int{1, 2, 8} {
		rt := New()
		var freed atomic.Int64
		victim := new(int)
		f := func(p *Proc) bool {
			Retire(p, victim, func(*int) { freed.Add(1) })
			return true
		}
		replayConcurrently(rt, k, f)
		probe := rt.Register()
		probe.Drain()
		probe.Unregister()
		if got := freed.Load(); got != 1 {
			t.Fatalf("k=%d: retire callback ran %d times, want 1", k, got)
		}
	}
}

func TestCommitAgreesOnNondeterminism(t *testing.T) {
	// Each run proposes a different value; the committed value must be
	// adopted by every run, and the stored result must equal it.
	rt := New()
	var out Mutable[uint64]
	var next atomic.Uint64
	f := func(p *Proc) bool {
		proposal := next.Add(1) * 1000 // differs per run: nondeterministic
		v, _ := CommitValue(p, proposal)
		out.Store(p, v)
		return true
	}
	replayConcurrently(rt, 8, f)
	probe := rt.Register()
	defer probe.Unregister()
	got := out.Load(probe)
	if got == 0 || got%1000 != 0 {
		t.Fatalf("committed nondeterministic value corrupt: %d", got)
	}
}

// --- Property test: random straight-line programs over mutables ---

type vmInstr struct {
	Op      uint8
	Target  uint8
	Operand uint8
}

const vmCells = 4

// runProgram executes a deterministic straight-line program against cells,
// following the thunk determinism rules. Returns a checksum.
func runProgram(p *Proc, prog []vmInstr, cells *[vmCells]Mutable[uint64]) bool {
	var acc uint64
	for _, in := range prog {
		t := int(in.Target) % vmCells
		switch in.Op % 5 {
		case 0: // load-accumulate
			acc += cells[t].Load(p)
		case 1: // store derived value
			cells[t].Store(p, acc+uint64(in.Operand))
		case 2: // CAM with constant expectation
			cells[t].CAM(p, uint64(in.Operand), acc+1)
		case 3: // allocate and fold in
			o := Allocate(p, func() *uint64 { v := uint64(in.Operand); return &v })
			acc += *o
		case 4: // conditional on committed state
			if cells[t].Load(p)&1 == 0 {
				cells[t].Store(p, acc)
			} else {
				acc++
			}
		}
	}
	return acc&1 == 0
}

func TestQuickIdempotentReplayEquivalence(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 60,
		Rand:     rand.New(rand.NewSource(12345)),
	}
	property := func(prog []vmInstr, seeds [vmCells]uint8) bool {
		if len(prog) > 40 {
			prog = prog[:40]
		}
		// Spec: one run, single-threaded.
		specRT := New()
		var spec [vmCells]Mutable[uint64]
		for i := range spec {
			spec[i].Init(uint64(seeds[i]))
		}
		sp := specRT.Register()
		sd := sp.newDescriptor(func(p *Proc) bool { return runProgram(p, prog, &spec) })
		specRet := sp.run(sd)
		specVals := [vmCells]uint64{}
		for i := range spec {
			specVals[i] = spec[i].Load(sp)
		}
		sp.Unregister()

		// Replay: same program, fresh state, 6 concurrent runs.
		rt := New()
		var cells [vmCells]Mutable[uint64]
		for i := range cells {
			cells[i].Init(uint64(seeds[i]))
		}
		results := replayConcurrently(rt, 6, func(p *Proc) bool {
			return runProgram(p, prog, &cells)
		})
		probe := rt.Register()
		defer probe.Unregister()
		for i := range cells {
			if cells[i].Load(probe) != specVals[i] {
				t.Logf("cell %d: replay=%d spec=%d", i, cells[i].Load(probe), specVals[i])
				return false
			}
		}
		for _, r := range results {
			if r != specRet {
				t.Logf("return mismatch: %v vs spec %v", r, specRet)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestLongThunkManyBlocks(t *testing.T) {
	// A thunk committing far more entries than one block holds, replayed
	// concurrently: exercises idempotent log growth under contention.
	rt := New()
	const steps = logBlockLen*10 + 3
	var cells [8]Mutable[uint64]
	f := func(p *Proc) bool {
		var acc uint64
		for i := 0; i < steps; i++ {
			c := &cells[i%len(cells)]
			acc += c.Load(p)
			c.Store(p, acc+uint64(i))
		}
		return true
	}
	replayConcurrently(rt, 8, f)

	// Spec run on fresh cells.
	spec := New()
	var specCells [8]Mutable[uint64]
	sp := spec.Register()
	defer sp.Unregister()
	sd := sp.newDescriptor(func(p *Proc) bool {
		var acc uint64
		for i := 0; i < steps; i++ {
			c := &specCells[i%len(specCells)]
			acc += c.Load(p)
			c.Store(p, acc+uint64(i))
		}
		return true
	})
	sp.run(sd)

	probe := rt.Register()
	defer probe.Unregister()
	for i := range cells {
		if got, want := cells[i].Load(probe), specCells[i].Load(sp); got != want {
			t.Fatalf("cell %d: %d, want %d", i, got, want)
		}
	}
}
