package flock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestTryLockRunsThunkAndReturnsResult(t *testing.T) {
	for _, blocking := range []bool{false, true} {
		rt := New()
		rt.SetBlocking(blocking)
		p := rt.Register()
		var l Lock
		ran := false
		ok := l.TryLock(p, func(hp *Proc) bool { ran = true; return true })
		if !ok || !ran {
			t.Fatalf("blocking=%v: TryLock=(%v), ran=%v", blocking, ok, ran)
		}
		if l.Held() {
			t.Fatalf("blocking=%v: lock still held after TryLock returned", blocking)
		}
		// Thunk returning false propagates false but still releases.
		ok = l.TryLock(p, func(hp *Proc) bool { return false })
		if ok {
			t.Fatalf("blocking=%v: TryLock true for false thunk", blocking)
		}
		if l.Held() {
			t.Fatalf("blocking=%v: lock leaked after false thunk", blocking)
		}
		p.Unregister()
	}
}

func TestStrictLockRunsThunk(t *testing.T) {
	for _, blocking := range []bool{false, true} {
		rt := New()
		rt.SetBlocking(blocking)
		p := rt.Register()
		var l Lock
		got := l.Lock(p, func(hp *Proc) bool { return true })
		if !got {
			t.Fatalf("blocking=%v: strict Lock lost thunk result", blocking)
		}
		if l.Held() {
			t.Fatalf("blocking=%v: strict Lock leaked", blocking)
		}
		p.Unregister()
	}
}

// TestHelpingCompletesStalledCriticalSection is the core lock-free-locks
// property: a thread that finds the lock taken completes the holder's
// critical section instead of waiting. The holder's first run stalls
// *after* its stores, on a branch guarded by an uncommitted (test-local)
// CAS so that the helper does not stall too; the helper must finish the
// work and release the lock while the holder is still asleep.
func TestHelpingCompletesStalledCriticalSection(t *testing.T) {
	rt := New()
	var l Lock
	var x Mutable[uint64]
	var stall atomic.Int32
	release := make(chan struct{})
	holderDone := make(chan bool, 1)

	thunk := func(hp *Proc) bool {
		v := x.Load(hp)
		x.Store(hp, v+41)
		if stall.CompareAndSwap(0, 1) {
			<-release // only the first run (the "crashed" holder) parks here
		}
		return true
	}

	go func() {
		p := rt.Register()
		defer p.Unregister()
		p.Begin()
		holderDone <- l.TryLock(p, thunk)
		p.End()
	}()

	// Wait until the holder has installed its descriptor and stalled.
	for stall.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	helper := rt.Register()
	defer helper.Unregister()
	helper.Begin()
	got := l.TryLock(helper, func(hp *Proc) bool { return true })
	helper.End()
	if got {
		t.Fatalf("helper's TryLock succeeded while lock was held")
	}
	// Helping must have completed the stalled critical section...
	if v := x.Load(helper); v != 41 {
		t.Fatalf("helper did not complete stalled thunk: x=%d, want 41", v)
	}
	// ...and released the lock, so a fresh acquisition now succeeds, all
	// while the original holder is still asleep.
	helper.Begin()
	ok := l.TryLock(helper, func(hp *Proc) bool {
		v := x.Load(hp)
		x.Store(hp, v+1)
		return true
	})
	helper.End()
	if !ok {
		t.Fatalf("lock not released by helping")
	}
	if v := x.Load(helper); v != 42 {
		t.Fatalf("x=%d, want 42", v)
	}

	close(release)
	if !<-holderDone {
		t.Fatalf("stalled holder's TryLock reported failure for its own completed acquisition")
	}
	// The holder waking up and replaying must not double-apply.
	if v := x.Load(helper); v != 42 {
		t.Fatalf("holder replay double-applied: x=%d, want 42", v)
	}
}

func TestBlockingModeWaitsForHolder(t *testing.T) {
	// Sanity check of the contrast case: in blocking mode nobody helps; a
	// TryLock against a held lock fails and the work is NOT done.
	rt := New(Blocking())
	var l Lock
	var x Mutable[uint64]
	entered := make(chan struct{})
	release := make(chan struct{})
	done := make(chan bool, 1)

	go func() {
		p := rt.Register()
		defer p.Unregister()
		done <- l.TryLock(p, func(hp *Proc) bool {
			x.Store(hp, 7)
			close(entered)
			<-release
			return true
		})
	}()
	<-entered

	q := rt.Register()
	defer q.Unregister()
	if l.TryLock(q, func(hp *Proc) bool { return true }) {
		t.Fatalf("blocking TryLock succeeded while held")
	}
	if !l.Held() {
		t.Fatalf("blocking lock not held while holder inside")
	}
	close(release)
	if !<-done {
		t.Fatalf("holder failed")
	}
	if l.Held() {
		t.Fatalf("blocking lock leaked")
	}
	if got := x.Load(q); got != 7 {
		t.Fatalf("holder's store lost: %d", got)
	}
}

func TestMutualExclusionCounter(t *testing.T) {
	// N workers × M increments through strict locks must total N*M in
	// both modes: the critical sections compose atomically.
	for _, blocking := range []bool{false, true} {
		rt := New()
		rt.SetBlocking(blocking)
		var l Lock
		var c Mutable[uint64]
		const workers = 8
		const per = 500
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				p := rt.Register()
				defer p.Unregister()
				for i := 0; i < per; i++ {
					p.Begin()
					l.Lock(p, func(hp *Proc) bool {
						v := c.Load(hp)
						c.Store(hp, v+1)
						return true
					})
					p.End()
				}
			}()
		}
		wg.Wait()
		probe := rt.Register()
		if got := c.Load(probe); got != workers*per {
			t.Fatalf("blocking=%v: counter=%d, want %d", blocking, got, workers*per)
		}
		probe.Unregister()
	}
}

func TestTryLockRetryLoopCounter(t *testing.T) {
	// Same as above but with the idiomatic try-lock retry loop the data
	// structures use.
	for _, blocking := range []bool{false, true} {
		rt := New()
		rt.SetBlocking(blocking)
		var l Lock
		var c Mutable[uint64]
		const workers = 6
		const per = 300
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				p := rt.Register()
				defer p.Unregister()
				for i := 0; i < per; i++ {
					for {
						p.Begin()
						ok := l.TryLock(p, func(hp *Proc) bool {
							v := c.Load(hp)
							c.Store(hp, v+1)
							return true
						})
						p.End()
						if ok {
							break
						}
					}
				}
			}()
		}
		wg.Wait()
		probe := rt.Register()
		if got := c.Load(probe); got != workers*per {
			t.Fatalf("blocking=%v: counter=%d, want %d", blocking, got, workers*per)
		}
		probe.Unregister()
	}
}

func TestNestedLocksBankTransfer(t *testing.T) {
	// Classic composability test: transfers between accounts, each guarded
	// by its own lock, taken nested in a fixed order. The total balance is
	// invariant; lock-free mode must preserve it under helping.
	for _, blocking := range []bool{false, true} {
		rt := New()
		rt.SetBlocking(blocking)
		const nAccounts = 4
		const workers = 6
		const per = 400
		var locks [nAccounts]Lock
		var bal [nAccounts]Mutable[uint64]
		for i := range bal {
			bal[i].Init(1000)
		}

		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				p := rt.Register()
				defer p.Unregister()
				rng := uint64(w)*97 + 13
				for i := 0; i < per; i++ {
					rng = rng*6364136223846793005 + 1442695040888963407
					a := int(rng>>33) % nAccounts
					b := int(rng>>13) % nAccounts
					if a == b {
						continue
					}
					lo, hi := a, b
					if lo > hi {
						lo, hi = hi, lo
					}
					from, to := a, b
					for {
						p.Begin()
						ok := locks[lo].TryLock(p, func(hp *Proc) bool {
							return locks[hi].TryLock(hp, func(hp2 *Proc) bool {
								f := bal[from].Load(hp2)
								if f == 0 {
									return true // nothing to move, still done
								}
								tv := bal[to].Load(hp2)
								bal[from].Store(hp2, f-1)
								bal[to].Store(hp2, tv+1)
								return true
							})
						})
						p.End()
						if ok {
							break
						}
					}
				}
			}(w)
		}
		wg.Wait()

		probe := rt.Register()
		var total uint64
		for i := range bal {
			total += bal[i].Load(probe)
		}
		probe.Unregister()
		if total != nAccounts*1000 {
			t.Fatalf("blocking=%v: total=%d, want %d", blocking, total, nAccounts*1000)
		}
	}
}

func TestUnlockEarlyRelease(t *testing.T) {
	rt := New()
	p := rt.Register()
	defer p.Unregister()
	var l Lock
	ok := l.TryLock(p, func(hp *Proc) bool {
		if !l.Held() {
			t.Errorf("lock not held inside thunk")
		}
		l.Unlock(hp)
		if l.Held() {
			t.Errorf("lock still held after early Unlock")
		}
		return true
	})
	if !ok {
		t.Fatalf("TryLock failed")
	}
	if l.Held() {
		t.Fatalf("lock held after scope end")
	}
}

func TestHandOverHandTraversal(t *testing.T) {
	// Lock coupling over a small chain: take the next lock inside the
	// current one, then release the current early.
	rt := New()
	p := rt.Register()
	defer p.Unregister()
	const n = 5
	var locks [n]Lock
	var visited [n]Mutable[bool]

	var step func(i int) Thunk
	step = func(i int) Thunk {
		return func(hp *Proc) bool {
			visited[i].Store(hp, true)
			if i+1 == n {
				return true
			}
			ok := locks[i+1].TryLock(hp, step(i+1))
			locks[i].Unlock(hp)
			return ok
		}
	}
	if !locks[0].TryLock(p, step(0)) {
		t.Fatalf("hand-over-hand traversal failed")
	}
	for i := 0; i < n; i++ {
		if !visited[i].Load(p) {
			t.Fatalf("node %d not visited", i)
		}
		if locks[i].Held() {
			t.Fatalf("lock %d leaked", i)
		}
	}
}

func TestTryLockContentionOnlyOneWins(t *testing.T) {
	// Many workers race a single TryLock (no retry): at least one must
	// win per round, and the protected counter must equal the number of
	// successful acquisitions.
	rt := New()
	var l Lock
	var c Mutable[uint64]
	var wins atomic.Uint64
	const workers = 8
	const rounds = 300

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := rt.Register()
			defer p.Unregister()
			for i := 0; i < rounds; i++ {
				p.Begin()
				if l.TryLock(p, func(hp *Proc) bool {
					v := c.Load(hp)
					c.Store(hp, v+1)
					return true
				}) {
					wins.Add(1)
				}
				p.End()
			}
		}()
	}
	wg.Wait()
	probe := rt.Register()
	defer probe.Unregister()
	if got := c.Load(probe); got != wins.Load() {
		t.Fatalf("counter=%d but %d successful acquisitions", got, wins.Load())
	}
	if wins.Load() == 0 {
		t.Fatalf("no acquisition ever succeeded")
	}
}

func TestLockFreeProgressUnderPermanentStall(t *testing.T) {
	// A holder stalls forever (simulating a crashed process). In
	// lock-free mode every other worker keeps completing operations on
	// the same lock. This is the paper's core progress claim.
	rt := New()
	var l Lock
	var c Mutable[uint64]
	var stall atomic.Int32
	never := make(chan struct{}) // never closed: holder sleeps forever

	go func() {
		p := rt.Register()
		p.Begin()
		l.TryLock(p, func(hp *Proc) bool {
			v := c.Load(hp)
			c.Store(hp, v+1)
			if stall.CompareAndSwap(0, 1) {
				<-never
			}
			return true
		})
		// unreachable
	}()
	for stall.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	const workers = 4
	const per = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := rt.Register()
			defer p.Unregister()
			for i := 0; i < per; i++ {
				for {
					p.Begin()
					ok := l.TryLock(p, func(hp *Proc) bool {
						v := c.Load(hp)
						c.Store(hp, v+1)
						return true
					})
					p.End()
					if ok {
						break
					}
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("workers made no progress with a permanently stalled holder")
	}
	probe := rt.Register()
	defer probe.Unregister()
	if got := c.Load(probe); got != workers*per+1 {
		t.Fatalf("counter=%d, want %d", got, workers*per+1)
	}
}

func TestStallInjectionPreservesCorrectness(t *testing.T) {
	// With aggressive injection, counters must still be exact in both
	// modes: stalls change scheduling, never effects.
	for _, blocking := range []bool{false, true} {
		rt := New()
		rt.SetBlocking(blocking)
		rt.SetStallInjection(40)
		var l Lock
		var c Mutable[uint64]
		const workers = 4
		const per = 100
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				p := rt.Register()
				defer p.Unregister()
				for i := 0; i < per; i++ {
					for {
						p.Begin()
						ok := l.TryLock(p, func(hp *Proc) bool {
							v := c.Load(hp)
							c.Store(hp, v+1)
							return true
						})
						p.End()
						if ok {
							break
						}
					}
				}
			}()
		}
		wg.Wait()
		probe := rt.Register()
		if got := c.Load(probe); got != workers*per {
			t.Fatalf("blocking=%v: counter=%d, want %d", blocking, got, workers*per)
		}
		probe.Unregister()
	}
}

func TestModeFlagReflectedByRuntime(t *testing.T) {
	rt := New()
	if rt.Blocking() {
		t.Fatalf("default mode should be lock-free")
	}
	rt.SetBlocking(true)
	if !rt.Blocking() {
		t.Fatalf("SetBlocking(true) not visible")
	}
	rt2 := New(Blocking())
	if !rt2.Blocking() {
		t.Fatalf("Blocking() option ignored")
	}
}

func TestHeldSnapshot(t *testing.T) {
	rt := New()
	p := rt.Register()
	defer p.Unregister()
	var l Lock
	if l.Held() {
		t.Fatalf("zero-value lock reports held")
	}
	l.TryLock(p, func(hp *Proc) bool {
		if !l.Held() {
			t.Errorf("Held false inside critical section")
		}
		return true
	})
	if l.Held() {
		t.Fatalf("Held true after release")
	}
}
