package flock

import (
	"sync"
	"testing"
)

// enterFakeThunk installs a fresh standalone log on the Proc so tests can
// exercise commit without going through a Lock. Returns the log head and a
// function restoring the previous state.
func enterFakeThunk(p *Proc) (*logBlock, func()) {
	oblk, oidx := p.blk, p.idx
	head := &logBlock{}
	p.blk, p.idx = head, 0
	return head, func() { p.blk, p.idx = oblk, oidx }
}

// enterExistingLog points the Proc at an existing log head (as a helper
// replaying the same thunk would).
func enterExistingLog(p *Proc, head *logBlock) func() {
	oblk, oidx := p.blk, p.idx
	p.blk, p.idx = head, 0
	return func() { p.blk, p.idx = oblk, oidx }
}

func TestCommitPassthroughOutsideThunk(t *testing.T) {
	rt := New()
	p := rt.Register()
	defer p.Unregister()
	v, first := p.Commit(42)
	if v != 42 || !first {
		t.Fatalf("Commit outside thunk = (%v, %v), want (42, true)", v, first)
	}
	if p.InThunk() {
		t.Fatalf("InThunk true outside thunk")
	}
}

func TestCommitFirstWins(t *testing.T) {
	rt := New()
	p := rt.Register()
	q := rt.Register()
	defer p.Unregister()
	defer q.Unregister()

	head, exitP := enterFakeThunk(p)
	v, first := p.Commit("p-value")
	if v != "p-value" || !first {
		t.Fatalf("first commit = (%v,%v)", v, first)
	}
	exitP()

	exitQ := enterExistingLog(q, head)
	v2, first2 := q.Commit("q-value")
	exitQ()
	if first2 {
		t.Fatalf("replaying commit claims to be first")
	}
	if v2 != "p-value" {
		t.Fatalf("replaying commit got %v, want p-value", v2)
	}
}

func TestCommitPositionsAdvanceIndependently(t *testing.T) {
	rt := New()
	p := rt.Register()
	defer p.Unregister()

	_, exit := enterFakeThunk(p)
	for i := 0; i < 5; i++ {
		v, first := p.Commit(i)
		if v != i || !first {
			t.Fatalf("commit %d = (%v,%v)", i, v, first)
		}
	}
	exit()
}

func TestLogGrowsAcrossBlocks(t *testing.T) {
	rt := New()
	p := rt.Register()
	q := rt.Register()
	defer p.Unregister()
	defer q.Unregister()

	const n = logBlockLen*3 + 2
	head, exitP := enterFakeThunk(p)
	for i := 0; i < n; i++ {
		if v, _ := p.Commit(i); v != i {
			t.Fatalf("commit %d returned %v", i, v)
		}
	}
	exitP()

	// A replay over the same chain must see every committed value.
	exitQ := enterExistingLog(q, head)
	for i := 0; i < n; i++ {
		v, first := q.Commit(-1)
		if first {
			t.Fatalf("replay commit %d claims first", i)
		}
		if v != i {
			t.Fatalf("replay commit %d = %v", i, v)
		}
	}
	exitQ()
}

func TestLogGrowthIsIdempotent(t *testing.T) {
	// Two procs racing past the end of a block must adopt the same next
	// block and therefore agree on all values committed there.
	rt := New()
	const workers = 4
	const n = logBlockLen * 8

	head := &logBlock{}
	var wg sync.WaitGroup
	results := make([][]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := rt.Register()
			defer p.Unregister()
			exit := enterExistingLog(p, head)
			vals := make([]int, n)
			for i := 0; i < n; i++ {
				v, _ := p.Commit(w*1000 + i)
				vals[i] = v.(int)
			}
			exit()
			results[w] = vals
		}(w)
	}
	wg.Wait()

	for w := 1; w < workers; w++ {
		for i := 0; i < n; i++ {
			if results[w][i] != results[0][i] {
				t.Fatalf("worker %d position %d saw %d, worker 0 saw %d",
					w, i, results[w][i], results[0][i])
			}
		}
	}
}

func TestCommitValueTyped(t *testing.T) {
	rt := New()
	p := rt.Register()
	defer p.Unregister()
	_, exit := enterFakeThunk(p)
	defer exit()
	v, first := CommitValue(p, uint64(7))
	if v != 7 || !first {
		t.Fatalf("CommitValue = (%v,%v)", v, first)
	}
}

func TestCommitNilValue(t *testing.T) {
	rt := New()
	p := rt.Register()
	q := rt.Register()
	defer p.Unregister()
	defer q.Unregister()

	head, exitP := enterFakeThunk(p)
	var nilPtr *int
	v, first := p.Commit(nilPtr)
	if !first || v.(*int) != nil {
		t.Fatalf("committing nil pointer = (%v,%v)", v, first)
	}
	exitP()

	exitQ := enterExistingLog(q, head)
	v2, first2 := q.Commit(new(int))
	exitQ()
	if first2 {
		t.Fatalf("replay of nil commit claims first")
	}
	if v2.(*int) != nil {
		t.Fatalf("replay of nil commit returned %v", v2)
	}
}

func TestNoCCASOptionStillCorrect(t *testing.T) {
	rt := New(NoCCAS())
	p := rt.Register()
	q := rt.Register()
	defer p.Unregister()
	defer q.Unregister()

	head, exitP := enterFakeThunk(p)
	p.Commit("x")
	exitP()
	exitQ := enterExistingLog(q, head)
	v, first := q.Commit("y")
	exitQ()
	if first || v != "x" {
		t.Fatalf("NoCCAS replay = (%v,%v)", v, first)
	}
}
