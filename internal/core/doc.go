// Package flock implements lock-free locks: fine-grained try-locks whose
// critical sections are executed idempotently, so that any thread that
// finds a lock taken can help complete the held critical section instead
// of waiting. It is a Go implementation of the Flock library from
// "Lock-Free Locks Revisited" (Ben-David, Blelloch, Wei; PPoPP 2022).
//
// # Programming model
//
// Workers obtain a Proc from a Runtime and pass it to every operation:
//
//	rt := flock.New()
//	p := rt.Register()        // one per worker goroutine
//	defer p.Unregister()
//
// Shared locations that are mutated inside locks are declared as
// Mutable[V] (or UpdateOnce[V] for locations written at most once after
// initialization). Critical sections are thunks passed to Lock.TryLock:
//
//	ok := lck.TryLock(p, func(hp *flock.Proc) bool {
//	    if node.removed.Load(hp) || node.next.Load(hp) != succ {
//	        return false // validation failed; caller retries
//	    }
//	    node.next.Store(hp, newNode)
//	    return true
//	})
//
// In lock-free mode (the default) TryLock installs a descriptor holding
// the thunk and a shared log; any thread that later finds the lock taken
// re-runs the thunk from the descriptor, with every load, allocation and
// retirement committed to the log so that all runs observe identical
// values and all but the first effect of each step are discarded (§3 of
// the paper). In blocking mode the same lock is an ordinary TTAS
// test-and-set lock and no logging occurs; the mode is selected at runtime
// with Runtime.SetBlocking.
//
// # Determinism rules for thunks
//
// A thunk may be executed concurrently by several helpers, so its control
// flow must be a pure function of committed values:
//
//   - Read shared mutable state only through Mutable/UpdateOnce Load (or
//     through the Proc.Commit escape hatch for anything non-deterministic,
//     e.g. random numbers).
//   - Use the *Proc argument passed to the thunk, never a captured outer
//     Proc: helpers run the thunk with their own Proc.
//   - Capture by value: copy loop variables and locals into the closure
//     before TryLock; do not mutate captured variables afterwards (the
//     paper's "[=]" rule).
//   - Allocate and free memory only with Allocate and Retire.
//   - Acquire nested locks in one consistent global partial order (the
//     paper's Theorem 4.2 assumption). This is stronger than classic
//     deadlock avoidance: a cycle of lock orders makes helpers help each
//     other's thunks in a loop (unbounded recursion), not merely block.
//     See lazylist.Move for the cross-structure ordering pattern.
//
// The seven data structures under internal/structures are written in
// exactly this style and serve as larger examples.
//
// # Memory management
//
// The hot commit path is allocation-free (§6 of the paper, DESIGN.md
// S10): committed pointers (boxes, descriptors, Allocate results) land
// directly in log slots — no wrapper entries, no interface boxing —
// with booleans and nil encoded as sentinel addresses, and descriptors,
// spill log blocks and value boxes are recycled through per-Proc
// freelists gated by the epoch manager's grace periods. Wrap every
// operation in Proc.Begin/End: the guards both protect Retire'd memory
// and delay pooled reuse while a helper might still replay a log that
// references the object. NoPool restores the GC-fresh behaviour (used
// by the ext-alloc ablation).
package flock
