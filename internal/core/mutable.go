package flock

import "sync/atomic"

// mbox is the immutable heap box holding one version of a mutable value.
// Every Store/CAM installs a fresh box, so a box address can never recur
// in a location while a log or helper still references it: box identity is
// ABA-free by construction. This plays the role of the paper's version
// tags (§6 "ABA") with the Go garbage collector guaranteeing uniqueness.
type mbox[V comparable] struct {
	v V
}

// Mutable is a shared location that may be mutated inside locks, with the
// interface of the paper's mutable<V> (Algorithm 2): Load, Store and CAM.
// Inside a thunk, loads commit the observed box to the thunk's shared log
// so all helpers agree; stores and CAMs turn into a single CAS against the
// committed box, of which exactly one run's attempt can succeed. Outside
// any thunk (including all of blocking mode) the operations compile down
// to plain atomic loads and stores with no logging.
//
// The zero value holds the zero value of V.
type Mutable[V comparable] struct {
	b atomic.Pointer[mbox[V]]
}

// Init sets an initial value without synchronization requirements beyond
// publication of the enclosing object. It must not race with other
// accesses (use it in constructors, before the location is shared).
func (m *Mutable[V]) Init(v V) { m.b.Store(&mbox[V]{v: v}) }

// loadBox reads the current box and, inside a thunk, commits it so all
// runs observe the same box (and therefore the same value).
func (m *Mutable[V]) loadBox(p *Proc) *mbox[V] {
	bx := m.b.Load()
	if p.blk == nil {
		return bx
	}
	c, _ := p.commit(bx)
	return c.(*mbox[V])
}

// Load returns the current value (Algorithm 2, load).
func (m *Mutable[V]) Load(p *Proc) V {
	bx := m.loadBox(p)
	if bx == nil {
		var zero V
		return zero
	}
	return bx.v
}

// Store writes v (Algorithm 2, store). Inside a thunk it first performs a
// logged load, then a CAS from the committed old box, so only the first
// run's store takes effect. Stores must not race with other Stores or
// CAMs on the same location (they are protected by the enclosing lock).
func (m *Mutable[V]) Store(p *Proc, v V) {
	if p.blk == nil {
		m.b.Store(&mbox[V]{v: v})
		return
	}
	old := m.loadBox(p)
	if p.rt.avoidCAS && m.b.Load() != old {
		return // someone already moved it past old; our CAS would fail
	}
	m.b.CompareAndSwap(old, &mbox[V]{v: v})
}

// CAM is a compare-and-modify: if the current value equals old, replace it
// with new; it deliberately returns nothing, since different runs of the
// same thunk could observe different CAS outcomes (Algorithm 2, CAM).
func (m *Mutable[V]) CAM(p *Proc, old, new V) {
	bx := m.loadBox(p)
	var cur V
	if bx != nil {
		cur = bx.v
	}
	if cur != old {
		return
	}
	if p.blk != nil && p.rt.avoidCAS && m.b.Load() != bx {
		return
	}
	m.b.CompareAndSwap(bx, &mbox[V]{v: new})
}

// UpdateOnce is a shared location with an initial value that is updated at
// most once (the paper's "update-once locations", §6): reads may happen
// before or after the update. Such locations are naturally ABA-free, so a
// store is a plain write (every run writes the same value) and a load
// commits the value itself rather than a box.
//
// The zero value holds the zero value of V.
type UpdateOnce[V comparable] struct {
	b atomic.Pointer[mbox[V]]
}

// Init sets the initial value; same contract as Mutable.Init.
func (u *UpdateOnce[V]) Init(v V) { u.b.Store(&mbox[V]{v: v}) }

// Load returns the current value, committing it when inside a thunk.
func (u *UpdateOnce[V]) Load(p *Proc) V {
	var v V
	if bx := u.b.Load(); bx != nil {
		v = bx.v
	}
	if p.blk == nil {
		return v
	}
	c, _ := p.commit(v)
	return c.(V)
}

// Store performs the (at most one) update. All runs of a thunk write the
// same value, so a plain write is idempotent here.
func (u *UpdateOnce[V]) Store(p *Proc, v V) {
	_ = p
	u.b.Store(&mbox[V]{v: v})
}
