package flock

import "sync/atomic"

// mbox is the immutable-while-installed heap box holding one version of
// a mutable value. Every Store/CAM installs a box that is not referenced
// by any location or log, so a box address can never recur in a location
// while a log or helper still references it: box identity is ABA-free.
// This plays the role of the paper's version tags (§6 "ABA"). With
// pooling enabled the uniqueness window is enforced by epoch grace
// periods — a box CASed out of a location rejoins the freelist only
// after every operation that could have committed it has finished
// (DESIGN.md S10); with NoPool it is enforced by the garbage collector
// as before (S1).
type mbox[V comparable] struct {
	v V
}

// Mutable is a shared location that may be mutated inside locks, with the
// interface of the paper's mutable<V> (Algorithm 2): Load, Store and CAM.
// Inside a thunk, loads commit the observed box pointer directly to the
// thunk's shared log (no wrapper, no interface box) so all helpers
// agree; stores and CAMs turn into a single CAS against the committed
// box, of which exactly one run's attempt can succeed. Outside any thunk
// (including all of blocking mode) the operations compile down to plain
// atomic loads and stores with no logging.
//
// The zero value holds the zero value of V.
type Mutable[V comparable] struct {
	b atomic.Pointer[mbox[V]]
}

// Init sets an initial value without synchronization requirements beyond
// publication of the enclosing object. It must not race with other
// accesses (use it in constructors, before the location is shared).
func (m *Mutable[V]) Init(v V) { m.b.Store(&mbox[V]{v: v}) }

// loadBox reads the current box and, inside a thunk, commits it so all
// runs observe the same box (and therefore the same value).
func (m *Mutable[V]) loadBox(p *Proc) *mbox[V] {
	bx := m.b.Load()
	if p.blk == nil {
		return bx
	}
	c, _ := commitPtr(p, bx)
	return c
}

// Load returns the current value (Algorithm 2, load).
func (m *Mutable[V]) Load(p *Proc) V {
	bx := m.loadBox(p)
	if bx == nil {
		var zero V
		return zero
	}
	return bx.v
}

// Store writes v (Algorithm 2, store). Inside a thunk it first performs a
// logged load, then a CAS from the committed old box, so only the first
// run's store takes effect. Stores must not race with other Stores or
// CAMs on the same location (they are protected by the enclosing lock).
// The replaced box is recycled after its epoch grace period; a box that
// lost the install CAS was never published and is recycled immediately.
func (m *Mutable[V]) Store(p *Proc, v V) {
	if p.blk == nil {
		old := m.b.Load()
		m.b.Store(allocBox(p, v))
		retireBox(p, old)
		return
	}
	old := m.loadBox(p)
	if p.rt.avoidCAS && m.b.Load() != old {
		return // someone already moved it past old; our CAS would fail
	}
	nb := allocBox(p, v)
	if m.b.CompareAndSwap(old, nb) {
		retireBox(p, old)
	} else {
		freeBox(p, nb)
	}
}

// CAM is a compare-and-modify: if the current value equals old, replace it
// with new; it deliberately returns nothing, since different runs of the
// same thunk could observe different CAS outcomes (Algorithm 2, CAM).
func (m *Mutable[V]) CAM(p *Proc, old, new V) { m.camx(p, old, new) }

// camx is CAM plus a report of whether this call's own CAS physically
// installed the new box — information CAM cannot expose to thunk code
// (different runs would disagree) but which the lock implementation
// needs for exactly-once descriptor retirement.
func (m *Mutable[V]) camx(p *Proc, old, new V) bool {
	bx := m.loadBox(p)
	var cur V
	if bx != nil {
		cur = bx.v
	}
	if cur != old {
		return false
	}
	if p.blk != nil && p.rt.avoidCAS && m.b.Load() != bx {
		return false
	}
	nb := allocBox(p, new)
	if m.b.CompareAndSwap(bx, nb) {
		retireBox(p, bx)
		return true
	}
	freeBox(p, nb)
	return false
}

// UpdateOnce is a shared location with an initial value that is updated at
// most once (the paper's "update-once locations", §6): reads may happen
// before or after the update. Such locations are naturally ABA-free, so a
// store is a plain write (every run writes the same value) and a load
// commits the value itself rather than a box.
//
// UpdateOnce deliberately stays on the general (boxed) commit path and
// never pools its boxes: its Store is a racy idempotent plain write, so
// no single run can claim the unique unlink needed for pooled reuse.
//
// The zero value holds the zero value of V.
type UpdateOnce[V comparable] struct {
	b atomic.Pointer[mbox[V]]
}

// Init sets the initial value; same contract as Mutable.Init.
func (u *UpdateOnce[V]) Init(v V) { u.b.Store(&mbox[V]{v: v}) }

// Load returns the current value, committing it when inside a thunk.
func (u *UpdateOnce[V]) Load(p *Proc) V {
	var v V
	if bx := u.b.Load(); bx != nil {
		v = bx.v
	}
	if p.blk == nil {
		return v
	}
	c, _ := p.commit(v)
	return c.(V)
}

// Store performs the (at most one) update. All runs of a thunk write the
// same value, so a plain write is idempotent here.
func (u *UpdateOnce[V]) Store(p *Proc, v V) {
	_ = p
	u.b.Store(&mbox[V]{v: v})
}
