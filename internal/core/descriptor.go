package flock

import "sync/atomic"

// Thunk is the paper's thunk: a critical section taking no arguments
// beyond the executing Proc and returning a boolean (typically: did the
// protected operation succeed, or should the caller retry). A Thunk must
// follow the determinism rules in the package documentation.
type Thunk func(*Proc) bool

// descriptor carries everything a helper needs to complete a critical
// section: the thunk, its shared log, a done flag, and the epoch at which
// the owning operation was running (helpers lower themselves to it, §6).
// The first log block is embedded so descriptor creation is a single
// allocation. Descriptors are allocated fresh per acquisition and never
// reused: a straggling helper that re-runs a completed descriptor replays
// against a full log and fresh-box CASes, so every one of its effects is
// discarded (see DESIGN.md S7).
type descriptor struct {
	thunk Thunk
	birth uint64
	done  atomic.Uint32 // update-once boolean
	first logBlock
}

// newDescriptor creates (idempotently, when nested inside another thunk)
// the descriptor for a lock acquisition.
func (p *Proc) newDescriptor(f Thunk) *descriptor {
	d := &descriptor{thunk: f, birth: p.currentEpoch()}
	if p.blk == nil {
		return d
	}
	c, _ := p.commit(d)
	return c.(*descriptor)
}

func (p *Proc) currentEpoch() uint64 {
	if e := p.slot.Announced(); e != ^uint64(0) {
		return e
	}
	return p.rt.epochs.GlobalEpoch()
}

// loadDone reads the descriptor's done flag with update-once semantics:
// committed inside thunks so all helpers agree.
func (d *descriptor) loadDone(p *Proc) bool {
	v := d.done.Load() != 0
	if p.blk == nil {
		return v
	}
	c, _ := p.commit(v)
	return c.(bool)
}

// run executes the descriptor's thunk under its shared log (Algorithm 2,
// run): it installs the descriptor's log, runs the thunk from position 0,
// and restores the previous log and position, so nested thunks and
// helping compose. While running, the Proc announces the minimum of its
// epoch and the descriptor's birth epoch so that memory the thunk
// committed references to stays unreclaimed for stragglers (§6).
func (p *Proc) run(d *descriptor) bool {
	oblk, oidx := p.blk, p.idx
	prev := p.slot.Lower(d.birth)
	p.blk, p.idx = &d.first, 0
	res := d.thunk(p)
	p.blk, p.idx = oblk, oidx
	p.slot.Restore(prev)
	return res
}
