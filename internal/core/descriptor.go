package flock

import "sync/atomic"

// Thunk is the paper's thunk: a critical section taking no arguments
// beyond the executing Proc and returning a boolean (typically: did the
// protected operation succeed, or should the caller retry). A Thunk must
// follow the determinism rules in the package documentation.
type Thunk func(*Proc) bool

// descriptor carries everything a helper needs to complete a critical
// section: the thunk, its shared log, a done flag, and the epoch at which
// the owning operation was running (helpers lower themselves to it, §6).
// The first log block is embedded so descriptor creation is a single
// allocation — or none: descriptors come from the per-Proc freelist and
// are recycled after an epoch grace period once a later acquisition
// unlinks them from the lock word. A straggling helper that re-runs a
// completed (but not yet recycled) descriptor replays against a full log
// and already-installed boxes, so every one of its effects is discarded;
// its epoch announcement is what delays the recycling (DESIGN.md S7 and
// S10).
type descriptor struct {
	thunk Thunk
	birth uint64
	done  atomic.Uint32 // update-once boolean
	// owner is the id of the Proc whose acquisition this descriptor
	// represents; finisher is claimed (CAS from zero) by exactly one run
	// when metrics are enabled, giving the obs layer exact helping
	// attribution: claimer == owner is an own-completion, anything else
	// is a help given, and losing the claim is a replay. Both are scrub
	// state only — correctness never reads them.
	owner    uint64
	finisher atomic.Uint64
	first    logBlock
}

// newDescriptor creates (idempotently, when nested inside another thunk)
// the descriptor for a lock acquisition. The descriptor pointer itself
// is committed directly into the log slot — no wrapper allocation — and
// a descriptor whose commit lost to another run was never published, so
// it returns to the freelist immediately.
func (p *Proc) newDescriptor(f Thunk) *descriptor {
	d := p.allocDescriptor()
	d.thunk = f
	d.birth = p.currentEpoch()
	d.owner = p.id
	if p.blk == nil {
		return d
	}
	c, first := commitPtr(p, d)
	if !first {
		p.releaseDescriptor(d)
	}
	return c
}

func (p *Proc) currentEpoch() uint64 {
	if e := p.slot.Announced(); e != ^uint64(0) {
		return e
	}
	return p.rt.epochs.GlobalEpoch()
}

// loadDone reads the descriptor's done flag with update-once semantics:
// committed inside thunks (via the boolean sentinel encoding, no
// allocation) so all helpers agree.
func (d *descriptor) loadDone(p *Proc) bool {
	v := d.done.Load() != 0
	c, _ := p.commitBool(v)
	return c
}

// run executes the descriptor's thunk under its shared log (Algorithm 2,
// run): it installs the descriptor's log, runs the thunk from position 0,
// and restores the previous log and position, so nested thunks and
// helping compose. While running, the Proc announces the minimum of its
// epoch and the descriptor's birth epoch so that memory the thunk
// committed references to stays unreclaimed — and unrecycled — for
// stragglers (§6, DESIGN.md S10).
func (p *Proc) run(d *descriptor) bool {
	oblk, oidx := p.blk, p.idx
	prev := p.slot.Lower(d.birth)
	p.blk, p.idx = &d.first, 0
	res := d.thunk(p)
	p.blk, p.idx = oblk, oidx
	p.slot.Restore(prev)
	return res
}
