package flock

import (
	"sync"
	"sync/atomic"
	"testing"
)

// Targeted tests for paths the main suites reach rarely.

func TestRetireDirectModeWithCallback(t *testing.T) {
	rt := New()
	p := rt.Register()
	defer p.Unregister()
	var freed atomic.Int32
	obj := new(int)
	// Outside any thunk: Retire defers through the epoch manager only.
	p.Begin()
	Retire(p, obj, func(*int) { freed.Add(1) })
	p.End()
	if freed.Load() != 0 {
		t.Fatalf("retire ran before grace period")
	}
	p.Drain()
	if freed.Load() != 1 {
		t.Fatalf("retire callback ran %d times", freed.Load())
	}
}

func TestRetireNilCallbackBothModes(t *testing.T) {
	rt := New()
	p := rt.Register()
	defer p.Unregister()
	obj := new(int)
	// Direct mode, nil callback: pure no-op.
	Retire(p, obj, nil)
	// Thunk mode, nil callback: still commits (so replays stay aligned)
	// but schedules nothing.
	var l Lock
	ok := l.TryLock(p, func(hp *Proc) bool {
		Retire(hp, obj, nil)
		return true
	})
	if !ok {
		t.Fatalf("tryLock failed")
	}
	p.Drain()
}

func TestUnlockBlockingMode(t *testing.T) {
	rt := New(Blocking())
	p := rt.Register()
	defer p.Unregister()
	var l Lock
	ok := l.TryLock(p, func(hp *Proc) bool {
		l.Unlock(hp) // early release under blocking locks: plain store
		if l.Held() {
			t.Errorf("blocking lock still held after early Unlock")
		}
		// Another worker can take it immediately.
		q := rt.Register()
		defer q.Unregister()
		if !l.TryLock(q, func(*Proc) bool { return true }) {
			t.Errorf("blocking lock not reacquirable after early Unlock")
		}
		return true
	})
	if !ok {
		t.Fatalf("tryLock failed")
	}
}

func TestBlockingStrictLockContended(t *testing.T) {
	// Exercises the TTAS spin/yield path: a strict blocking lock must
	// eventually acquire past an active holder churn.
	rt := New(Blocking())
	var l Lock
	var c Mutable[uint64]
	const workers = 6
	const per = 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := rt.Register()
			defer p.Unregister()
			for i := 0; i < per; i++ {
				l.Lock(p, func(hp *Proc) bool {
					v := c.Load(hp)
					c.Store(hp, v+1)
					return true
				})
			}
		}()
	}
	wg.Wait()
	p := rt.Register()
	defer p.Unregister()
	if got := c.Load(p); got != workers*per {
		t.Fatalf("blocking strict counter = %d, want %d", got, workers*per)
	}
}

func TestRuntimeAccessors(t *testing.T) {
	rt := New()
	p := rt.Register()
	defer p.Unregister()
	if p.Runtime() != rt {
		t.Fatalf("Proc.Runtime mismatch")
	}
	if rt.Epochs() == nil {
		t.Fatalf("Epochs accessor nil")
	}
	if g := rt.Epochs().GlobalEpoch(); g == 0 {
		t.Fatalf("implausible global epoch %d", g)
	}
}

func TestStallInjectionDisabledIsFree(t *testing.T) {
	rt := New()
	rt.SetStallInjection(0)
	p := rt.Register()
	defer p.Unregister()
	var l Lock
	for i := 0; i < 100; i++ {
		if !l.TryLock(p, func(*Proc) bool { return true }) {
			t.Fatalf("uncontended tryLock failed at %d", i)
		}
	}
}

func TestBlockingTryLockFailsFastWhenHeld(t *testing.T) {
	rt := New(Blocking())
	var l Lock
	entered := make(chan struct{})
	release := make(chan struct{})
	go func() {
		p := rt.Register()
		defer p.Unregister()
		l.TryLock(p, func(*Proc) bool {
			close(entered)
			<-release
			return true
		})
	}()
	<-entered
	q := rt.Register()
	defer q.Unregister()
	for i := 0; i < 50; i++ {
		if l.TryLock(q, func(*Proc) bool { return true }) {
			t.Fatalf("blocking tryLock acquired a held lock")
		}
	}
	close(release)
}

func TestMutableCAMDirectZeroValue(t *testing.T) {
	// Direct-mode CAM from the zero (nil-box) state.
	rt := New()
	p := rt.Register()
	defer p.Unregister()
	var m Mutable[int]
	m.CAM(p, 0, 5) // expected matches the zero value
	if got := m.Load(p); got != 5 {
		t.Fatalf("CAM from zero state: %d", got)
	}
	var m2 Mutable[int]
	m2.CAM(p, 3, 5) // expectation mismatch against zero state
	if got := m2.Load(p); got != 0 {
		t.Fatalf("mismatched zero-state CAM applied: %d", got)
	}
}
