package flock

import (
	"sync"
	"sync/atomic"
	"testing"

	"flock/internal/obs"
)

// TestVersionBumpsOnAcquireRelease pins the seqlock contract in both
// modes: a readable lock reports a version, a full critical section
// advances it, and the advance invalidates a prior ReadVersion.
func TestVersionBumpsOnAcquireRelease(t *testing.T) {
	for _, blocking := range []bool{false, true} {
		rt := New()
		rt.SetBlocking(blocking)
		p := rt.Register()
		var l Lock
		var m Mutable[int]

		p.Begin()
		v0, ok := l.ReadVersion()
		p.End()
		if !ok {
			t.Fatalf("blocking=%v: unlocked lock not readable", blocking)
		}
		l.Lock(p, func(hp *Proc) bool { m.Store(hp, 1); return true })
		p.Begin()
		v1, ok := l.ReadVersion()
		valid := l.Validate(v0)
		p.End()
		if !ok {
			t.Fatalf("blocking=%v: released lock not readable", blocking)
		}
		if v1 <= v0 {
			t.Fatalf("blocking=%v: version did not advance across a critical section: %d -> %d", blocking, v0, v1)
		}
		if valid {
			t.Fatalf("blocking=%v: stale version %d validated after a critical section", blocking, v0)
		}
		if !l.Validate(v1) {
			t.Fatalf("blocking=%v: fresh version %d failed to validate", blocking, v1)
		}
		p.Unregister()
	}
}

// TestReadVersionRefusesHeldLock pins that a held lock is unreadable:
// ReadVersion must return ok=false while a critical section is running,
// in both modes.
func TestReadVersionRefusesHeldLock(t *testing.T) {
	for _, blocking := range []bool{false, true} {
		rt := New()
		rt.SetBlocking(blocking)
		p := rt.Register()
		var l Lock
		inCS := make(chan struct{})
		release := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			hp := rt.Register()
			defer hp.Unregister()
			l.Lock(hp, func(q *Proc) bool {
				// Signal only on the first run (a replaying helper must
				// not re-close the channel; no helper exists in this
				// test, but the thunk contract stands). Outside a thunk
				// (blocking mode) Commit is a pass-through with
				// first=true.
				if _, first := q.Commit(0); first {
					close(inCS)
					<-release
				}
				return true
			})
		}()
		<-inCS
		p.Begin()
		_, ok := l.ReadVersion()
		p.End()
		if ok {
			t.Errorf("blocking=%v: held lock reported readable", blocking)
		}
		close(release)
		wg.Wait()
		p.Unregister()
	}
}

// TestOptimisticReadValidatesAndEscalates drives the combinator through
// its three outcomes: clean validation (no counter movement), restart
// then success, and escalation to the logged path after MaxOptimistic
// failures.
func TestOptimisticReadValidatesAndEscalates(t *testing.T) {
	// Restart/escalation counts live in the obs layer now (per-Proc
	// blocks, gated); enable collection for the duration of the test and
	// read p's own block, which no other goroutine writes.
	prev := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(prev)

	rt := New(MaxOptimistic(3))
	p := rt.Register()
	defer p.Unregister()
	var l Lock
	var m Mutable[uint64]
	l.Lock(p, func(hp *Proc) bool { m.Store(hp, 42); return true })

	// Clean run: no contention, value observed, counters untouched.
	var got uint64
	ok := rt.OptimisticRead(p, &l, func(hp *Proc) bool {
		got = m.Load(hp)
		return true
	})
	r0, e0 := p.Obs().Load(obs.OptRestarts), p.Obs().Load(obs.OptEscalations)
	if !ok || got != 42 {
		t.Fatalf("clean optimistic read = (%v, %d), want (true, 42)", ok, got)
	}
	if r0 != 0 || e0 != 0 {
		t.Fatalf("clean read moved counters: restarts=%d escalations=%d", r0, e0)
	}

	// Every attempt dirtied: a writer bumps the version inside fn, so
	// all MaxOptimistic attempts fail validation and the read escalates.
	// The escalated run holds the lock, so the bump-inside-fn cannot
	// happen there and the logged read completes.
	w := rt.Register()
	defer w.Unregister()
	reads := 0
	ok = rt.OptimisticRead(p, &l, func(hp *Proc) bool {
		reads++
		got = m.Load(hp)
		if !hp.InThunk() {
			l.Lock(w, func(q *Proc) bool { m.Store(q, m.Load(q)+1); return true })
		}
		return true
	})
	r1, e1 := p.Obs().Load(obs.OptRestarts), p.Obs().Load(obs.OptEscalations)
	if !ok {
		t.Fatal("escalated optimistic read failed")
	}
	if e1 != 1 {
		t.Fatalf("escalations = %d, want 1", e1)
	}
	if r1 != 3 {
		t.Fatalf("restarts = %d, want MaxOptimistic=3", r1)
	}
	if reads != 4 {
		t.Fatalf("fn ran %d times, want 3 optimistic + 1 escalated", reads)
	}
	p.Begin()
	want := m.Load(p)
	p.End()
	if got != want {
		t.Fatalf("escalated read observed %d, want the final value %d", got, want)
	}
}

// TestOptimisticReadNestedFallsBack pins that the combinator never runs
// the unlogged arm from inside a thunk: a nested call goes straight to
// the logged path (counters untouched) and still returns fn's result.
func TestOptimisticReadNestedFallsBack(t *testing.T) {
	prev := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(prev)

	rt := New()
	p := rt.Register()
	defer p.Unregister()
	var outer, inner Lock
	var m Mutable[uint64]
	inner.Lock(p, func(hp *Proc) bool { m.Store(hp, 7); return true })

	var got uint64
	ok := outer.Lock(p, func(hp *Proc) bool {
		return rt.OptimisticRead(hp, &inner, func(q *Proc) bool {
			if !q.InThunk() {
				t.Error("nested OptimisticRead ran fn outside the log")
			}
			got = m.Load(q)
			return true
		})
	})
	if !ok || got != 7 {
		t.Fatalf("nested OptimisticRead = (%v, %d), want (true, 7)", ok, got)
	}
	if r, e := p.Obs().Load(obs.OptRestarts), p.Obs().Load(obs.OptEscalations); r != 0 || e != 0 {
		t.Fatalf("nested fallback moved counters: restarts=%d escalations=%d", r, e)
	}
}

// TestOptimisticReadConcurrent races optimistic readers against writers
// incrementing two mutables that the lock keeps equal. Every validated
// read must observe them equal — a torn (unequal) observation that
// survives validation is exactly the bug the seqlock exists to prevent.
func TestOptimisticReadConcurrent(t *testing.T) {
	for _, blocking := range []bool{false, true} {
		rt := New()
		rt.SetBlocking(blocking)
		var l Lock
		var a, b Mutable[uint64]
		const (
			writers = 2
			readers = 4
			perG    = 2000
		)
		var torn atomic.Uint64
		var wg sync.WaitGroup
		for i := 0; i < writers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				p := rt.Register()
				defer p.Unregister()
				for n := 0; n < perG; n++ {
					l.Lock(p, func(hp *Proc) bool {
						v := a.Load(hp) + 1
						a.Store(hp, v)
						b.Store(hp, v)
						return true
					})
				}
			}()
		}
		for i := 0; i < readers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				p := rt.Register()
				defer p.Unregister()
				var x, y uint64
				for n := 0; n < perG; n++ {
					rt.OptimisticRead(p, &l, func(hp *Proc) bool {
						x = a.Load(hp)
						y = b.Load(hp)
						return true
					})
					if x != y {
						torn.Add(1)
					}
				}
			}()
		}
		wg.Wait()
		if torn.Load() != 0 {
			t.Fatalf("blocking=%v: %d torn reads survived validation", blocking, torn.Load())
		}
	}
}

// TestBlockingEarlyUnlockNoDoubleRelease pins the blocking-mode
// hand-over-hand contract (couplist's pattern): a critical section that
// releases its lock early via Unlock must not have the lock released
// again at scope exit — a second release would force-unlock whoever
// acquired in between, breaking mutual exclusion, and would flip the
// seqlock version to odd on a free lock, permanently blinding
// ReadVersion.
func TestBlockingEarlyUnlockNoDoubleRelease(t *testing.T) {
	rt := New()
	rt.SetBlocking(true)
	p := rt.Register()
	defer p.Unregister()
	var l Lock

	acquired := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	ok := l.TryLock(p, func(hp *Proc) bool {
		l.Unlock(hp)
		// While our scope is still open, another goroutine takes the
		// freed lock and parks inside it.
		go func() {
			defer close(done)
			q := rt.Register()
			defer q.Unregister()
			l.Lock(q, func(*Proc) bool {
				close(acquired)
				<-release
				return true
			})
		}()
		<-acquired
		return true
	})
	if !ok {
		t.Fatal("outer TryLock failed on a free lock")
	}
	// The outer scope has exited; the lock must still be held by the
	// goroutine, and unreadable.
	if !l.Held() {
		t.Fatal("scope exit force-released a lock held by another thread")
	}
	if _, readable := l.ReadVersion(); readable {
		t.Fatal("ReadVersion validated a held lock after early unlock")
	}
	close(release)
	<-done
	if _, readable := l.ReadVersion(); !readable {
		t.Fatal("version parity corrupt after early-unlock cycle: free lock unreadable")
	}
}
