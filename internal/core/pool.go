package flock

import (
	"flock/internal/obs"
	"flock/internal/obs/trace"
)

// Per-Proc object pools (§6 of the paper, DESIGN.md S10).
//
// The commit path allocates three kinds of objects per operation in a
// GC-naive port: descriptors (one per lock acquisition, with the first
// log block embedded), spill logBlocks (one per 7 logged steps past the
// first block) and mboxes (one per Store/CAM). All three are recycled
// here through per-Proc freelists instead of being dropped to the
// garbage collector.
//
// Reuse is gated by the epoch manager's grace period: an object CASed
// out of its location at global epoch e may be handed back to a
// freelist only once every in-flight operation announces an epoch
// strictly greater than e (epoch.Manager.SafeBefore). Helpers lower
// their announcement to the birth epoch of the descriptor they replay
// (descriptor.run), so a straggler that can still load a recycled
// address from a log always holds an announcement that blocks its
// recycling — the same ABA-freedom S1 used to buy from GC uniqueness,
// now bought from grace periods (DESIGN.md S10).
//
// Objects that lost their publication CAS (a descriptor or mbox whose
// commit lost to another run, a spill block whose link CAS lost) were
// never visible to any other thread and are recycled immediately, with
// no grace period.

// maxPoolFree caps each freelist. Pooled objects still reference
// whatever they pointed at when unlinked (a pooled box pins its old
// value until reused), so deep freelists mean deep GC mark work;
// overflow is dropped to the GC instead.
const maxPoolFree = 64

// reuseDrainEvery is how many guard entries (or saturated defers) pass
// between drain attempts. reusePendingCap bounds the pending list: on an
// oversubscribed machine a preempted worker can pin an old epoch for a
// whole scheduler quantum, stretching grace periods to milliseconds
// while retires arrive at memory speed — without a cap the pending list
// (and its GC mark cost) would grow by the thousands. Overflow is
// dropped to the garbage collector, which is always a correct fallback
// (it is exactly the NoPool arm's behaviour).
const (
	reuseDrainEvery = 16
	reusePendingCap = 256
)

// poolKey values identify the object type of a pooled entry. A key is a
// typed nil pointer boxed in an interface: comparing keys compares the
// type words, and boxing a pointer allocates nothing.
type poolKey = any

func boxKey[V comparable]() poolKey { return (*mbox[V])(nil) }

var descriptorKey poolKey = (*descriptor)(nil)

// typedPool is one freelist, keyed by object type. Procs hold a small
// linear-scanned slice of these: the number of distinct Mutable value
// types in a program is a handful, so a scan beats hashing.
type typedPool struct {
	key  poolKey
	free []any
}

// reusable is an object waiting out its grace period before rejoining a
// freelist. epoch is the global epoch at which it was unlinked.
type reusable struct {
	key   poolKey
	obj   any
	epoch uint64
}

// poolGet pops a reusable object of the keyed type, or returns nil.
func (p *Proc) poolGet(key poolKey) any {
	for i := range p.pools {
		tp := &p.pools[i]
		if tp.key == key {
			n := len(tp.free)
			if n == 0 {
				return nil
			}
			o := tp.free[n-1]
			tp.free[n-1] = nil
			tp.free = tp.free[:n-1]
			return o
		}
	}
	return nil
}

// poolPut pushes an object onto the keyed freelist (dropping it when the
// list is at capacity).
func (p *Proc) poolPut(key poolKey, obj any) {
	for i := range p.pools {
		tp := &p.pools[i]
		if tp.key == key {
			if len(tp.free) < maxPoolFree {
				tp.free = append(tp.free, obj)
			} else {
				p.metrics.Inc(obs.PoolSpills)
				p.traceEmit(trace.PoolSpill, 0, 0, 0)
			}
			return
		}
	}
	p.pools = append(p.pools, typedPool{key: key, free: append(make([]any, 0, 16), obj)})
}

// deferReuse parks obj until the epoch grace period passes. Must be
// called by the (unique) thread whose CAS unlinked obj from its
// location, so each address is parked at most once per lifetime. When
// the pending list is saturated (grace periods outpaced by the retire
// rate), the object is dropped to the GC instead — correct, just not
// recycled.
func (p *Proc) deferReuse(key poolKey, obj any) {
	if len(p.pending) >= reusePendingCap {
		// Saturated: drop to the GC. The Begin cadence (reuseTickDrain)
		// keeps attempting drains, so the list unsticks as soon as the
		// epoch moves again.
		p.metrics.Inc(obs.PoolSpills)
		p.traceEmit(trace.PoolSpill, 0, 0, 0)
		return
	}
	p.pending = append(p.pending, reusable{key: key, obj: obj, epoch: p.rt.epochs.GlobalEpoch()})
}

// drainReuse moves every ripe pending entry onto its freelist. An entry
// parked at epoch e is ripe once SafeBefore() > e: every operation (or
// helper lowered to a thunk birth epoch) that could still reference the
// address has finished. Entries are appended in epoch order, so the ripe
// ones form a prefix.
func (p *Proc) drainReuse() {
	if len(p.pending) == 0 {
		return
	}
	bound := p.rt.epochs.SafeBefore()
	if p.pending[0].epoch >= bound {
		// Nothing is ripe at the current epoch. Guard entries advance the
		// epoch on their own cadence, but a worker running top-level
		// operations outside guards would otherwise never see progress
		// and its pending list would grow without bound.
		p.rt.epochs.TryAdvance()
		bound = p.rt.epochs.SafeBefore()
	}
	i := 0
	for ; i < len(p.pending); i++ {
		r := p.pending[i]
		if r.epoch >= bound {
			break
		}
		p.recycle(r)
	}
	if i > 0 {
		n := copy(p.pending, p.pending[i:])
		for j := n; j < len(p.pending); j++ {
			p.pending[j] = reusable{}
		}
		p.pending = p.pending[:n]
	}
}

// reuseTickDrain is the per-guard-entry cadence hook called from Begin.
func (p *Proc) reuseTickDrain() {
	if len(p.pending) == 0 {
		return
	}
	p.reuseTick++
	if p.reuseTick%reuseDrainEvery == 0 {
		p.drainReuse()
	}
}

// recycle cleans one ripe object and returns it to its freelist.
func (p *Proc) recycle(r reusable) {
	if r.key == descriptorKey {
		p.scrubDescriptor(r.obj.(*descriptor))
		return
	}
	p.poolPut(r.key, r.obj)
}

// scrubDescriptor resets a retired descriptor past its grace period:
// the spill chain is harvested into the block freelist, the embedded
// first block and flags are cleared, and the thunk reference is dropped
// (it may pin arbitrary captured state). Plain stores are safe here —
// by the S10 invariant nothing can still observe the descriptor.
func (p *Proc) scrubDescriptor(d *descriptor) {
	for b := d.first.next.Load(); b != nil; {
		nb := b.next.Load()
		p.freeBlock(b)
		b = nb
	}
	d.first.next.Store(nil)
	d.first.resetPlain()
	d.thunk = nil
	d.birth = 0
	d.owner = 0
	d.finisher.Store(0)
	d.done.Store(0)
	if len(p.dfree) < maxPoolFree {
		p.dfree = append(p.dfree, d)
	} else {
		p.metrics.Inc(obs.PoolSpills)
		p.traceEmit(trace.PoolSpill, 0, 0, 0)
	}
}

// allocDescriptor pops a clean descriptor or allocates a fresh one.
func (p *Proc) allocDescriptor() *descriptor {
	if p.rt.pooling {
		if n := len(p.dfree); n > 0 {
			d := p.dfree[n-1]
			p.dfree[n-1] = nil
			p.dfree = p.dfree[:n-1]
			p.metrics.Inc(obs.PoolHits)
			return d
		}
	}
	p.metrics.Inc(obs.PoolMisses)
	return &descriptor{}
}

// releaseDescriptor returns a descriptor that was never published (its
// commit lost to another run) straight to the freelist.
func (p *Proc) releaseDescriptor(d *descriptor) {
	if !p.rt.pooling {
		return
	}
	d.thunk = nil
	d.birth = 0
	if len(p.dfree) < maxPoolFree {
		p.dfree = append(p.dfree, d)
	}
}

// retireDescriptor parks a descriptor that was just unlinked from a lock
// word (the acquisition CAS that replaced it succeeded in the calling
// run). Reuse waits out the grace period so stragglers replaying it
// stay safe (DESIGN.md S7/S10).
func (p *Proc) retireDescriptor(d *descriptor) {
	if d == nil || !p.rt.pooling {
		return
	}
	p.deferReuse(descriptorKey, d)
}

// allocBlock pops a clean spill block or allocates a fresh one.
func (p *Proc) allocBlock() *logBlock {
	if p.rt.pooling {
		if n := len(p.bfree); n > 0 {
			b := p.bfree[n-1]
			p.bfree[n-1] = nil
			p.bfree = p.bfree[:n-1]
			p.metrics.Inc(obs.PoolHits)
			return b
		}
	}
	p.metrics.Inc(obs.PoolMisses)
	return &logBlock{}
}

// freeBlock returns a block to the freelist. Callers either lost the
// link CAS (block never published, still clean) or are scrubbing a
// descriptor past its grace period; both make plain resets safe.
func (p *Proc) freeBlock(b *logBlock) {
	if !p.rt.pooling {
		return
	}
	b.next.Store(nil)
	b.resetPlain()
	if len(p.bfree) < maxPoolFree {
		p.bfree = append(p.bfree, b)
	} else {
		p.metrics.Inc(obs.PoolSpills)
		p.traceEmit(trace.PoolSpill, 0, 0, 0)
	}
}

// allocBox pops (or allocates) an mbox and sets its value.
func allocBox[V comparable](p *Proc, v V) *mbox[V] {
	if p.rt.pooling {
		if o := p.poolGet(boxKey[V]()); o != nil {
			bx := o.(*mbox[V])
			bx.v = v
			p.metrics.Inc(obs.PoolHits)
			return bx
		}
	}
	p.metrics.Inc(obs.PoolMisses)
	return &mbox[V]{v: v}
}

// freeBox returns a box that was never published (its install CAS lost)
// straight to the freelist.
func freeBox[V comparable](p *Proc, b *mbox[V]) {
	if b == nil || !p.rt.pooling {
		return
	}
	var zero V
	b.v = zero
	p.poolPut(boxKey[V](), b)
}

// retireBox parks a box that was just CASed out of its location; it
// rejoins the freelist after the grace period. The shared blocking-mode
// lock sentinels are never recycled.
func retireBox[V comparable](p *Proc, b *mbox[V]) {
	if b == nil || !p.rt.pooling {
		return
	}
	if any(b) == any(blockedBox) || any(b) == any(unblockedBox) {
		return
	}
	p.deferReuse(boxKey[V](), b)
}

// PoolStats reports the current freelist and pending-reuse sizes (tests
// and diagnostics only).
func (p *Proc) PoolStats() (descriptors, blocks, boxes, pending int) {
	descriptors = len(p.dfree)
	blocks = len(p.bfree)
	for i := range p.pools {
		boxes += len(p.pools[i].free)
	}
	return descriptors, blocks, boxes, len(p.pending)
}
