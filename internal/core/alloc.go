package flock

// Allocate constructs an object idempotently inside a thunk (Algorithm 2,
// allocate): every run calls mk, the first to commit wins, and all runs
// return the winner's object; losers' objects are dropped (the paper's
// sysFree becomes garbage collection). The winning pointer is committed
// directly into the log slot, so the commit itself allocates nothing.
// mk must have no side effects other than building the object. Outside a
// thunk it is just mk().
func Allocate[T any](p *Proc, mk func() *T) *T {
	obj := mk()
	if p.blk == nil {
		return obj
	}
	c, _ := commitPtr(p, obj)
	return c
}

// Retire schedules obj for reclamation once no concurrent operation can
// still reference it (Algorithm 2, retire, backed by the epoch manager of
// §6). Inside a thunk the runs of the thunk compete for ownership through
// the log so the object is retired exactly once. free may be nil, in which
// case reclamation is left entirely to the garbage collector and Retire
// only provides the idempotence bookkeeping; a non-nil free runs after the
// grace period (e.g. to return the object to a pool or update statistics).
func Retire[T any](p *Proc, obj *T, free func(*T)) {
	if p.blk == nil {
		if free != nil {
			f := free
			o := obj
			p.slot.Retire(func() { f(o) })
		}
		return
	}
	// All runs must commit (to stay position-synchronized) even when
	// there is nothing to do afterwards; the boolean sentinel encoding
	// keeps this allocation-free.
	_, first := p.commitBool(true)
	if first && free != nil {
		f := free
		o := obj
		p.slot.Retire(func() { f(o) })
	}
}
