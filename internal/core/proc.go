package flock

import (
	"runtime"
	"sync/atomic"

	"flock/internal/epoch"
	"flock/internal/obs"
	"flock/internal/obs/trace"
)

// Runtime owns the global state shared by all Procs: the epoch-based
// memory manager and the mode flag. A program typically creates one
// Runtime per concurrent structure family (or one overall).
type Runtime struct {
	epochs   *epoch.Manager
	blocking atomic.Bool
	avoidCAS bool
	// pooling, when true (the default), recycles descriptors, spill log
	// blocks and mboxes through per-Proc freelists gated by epoch grace
	// periods (DESIGN.md S10) instead of allocating fresh objects on
	// every operation. Disabled by NoPool for the ext-alloc ablation.
	pooling bool
	// stallEvery, when nonzero, makes every stallEvery-th successful
	// top-level lock acquisition yield the processor while holding the
	// lock — an injected descheduling event (the phenomenon behind the
	// paper's oversubscription results, which OS quanta on a large
	// machine produce naturally). 0 disables injection.
	stallEvery atomic.Uint32
	// maxOptimistic bounds optimistic read attempts before escalating to
	// the logged path (optimistic.go). Restart/escalation counts live in
	// the obs metrics layer (per-Proc blocks), not on the Runtime.
	maxOptimistic int
}

// Option configures a Runtime.
type Option func(*Runtime)

// Blocking starts the runtime in blocking (traditional test-and-set lock)
// mode instead of lock-free mode.
func Blocking() Option { return func(rt *Runtime) { rt.blocking.Store(true) } }

// NoCCAS disables the compare-and-compare-and-swap optimization (§6); used
// by the ablation benchmarks.
func NoCCAS() Option { return func(rt *Runtime) { rt.avoidCAS = false } }

// NoPool disables descriptor/log-block/mbox pooling: every operation
// allocates fresh objects and drops replaced ones to the garbage
// collector. This is the repository's pre-pooling behaviour, kept as the
// "GC-fresh" arm of the ext-alloc ablation.
func NoPool() Option { return func(rt *Runtime) { rt.pooling = false } }

// New creates a Runtime. The default mode is lock-free with the
// compare-and-compare-and-swap optimization and object pooling enabled.
func New(opts ...Option) *Runtime {
	rt := &Runtime{epochs: epoch.NewManager(), avoidCAS: true, pooling: true, maxOptimistic: 3}
	for _, o := range opts {
		o(rt)
	}
	return rt
}

// Blocking reports whether locks currently run in blocking mode.
func (rt *Runtime) Blocking() bool { return rt.blocking.Load() }

// SetBlocking switches between blocking and lock-free mode. It must not be
// called while operations are in flight: a thunk's helpers must all agree
// on the mode, and the flag is deliberately not committed to logs.
func (rt *Runtime) SetBlocking(v bool) { rt.blocking.Store(v) }

// Pooling reports whether object pooling is enabled.
func (rt *Runtime) Pooling() bool { return rt.pooling }

// Epochs exposes the runtime's epoch manager (used by tests and by
// structures that manage auxiliary memory).
func (rt *Runtime) Epochs() *epoch.Manager { return rt.epochs }

// SetStallInjection makes every n-th successful top-level lock
// acquisition yield the processor while inside the critical section,
// simulating a thread descheduled partway through an update (§8, the
// oversubscription experiments). n <= 0 disables injection (negative
// values are clamped rather than wrapping to a huge uint32 period). In
// lock-free mode other threads help the stalled critical section to
// completion; in blocking mode they must wait for the stalled goroutine
// to be rescheduled — which is the contrast the injection exposes.
func (rt *Runtime) SetStallInjection(n int) {
	if n < 0 {
		n = 0
	}
	rt.stallEvery.Store(uint32(n))
}

// Proc is the per-worker execution context: the paper's "process". It
// carries the current thunk log and position, the worker's epoch slot, a
// private RNG, and the per-worker object freelists (DESIGN.md S10). A
// Proc must only be used by one goroutine at a time.
type Proc struct {
	rt     *Runtime
	blk    *logBlock // current log block; nil outside thunks
	idx    int       // next position within blk
	slot   *epoch.Slot
	rng    uint64
	stalls uint32 // acquisitions since the last injected stall
	// id is the Proc's registration ordinal (nonzero); descriptors stamp
	// it as their owner so completion claims can tell "I finished my own
	// thunk" from "I helped someone else's" (obs metrics).
	id uint64
	// metrics is the Proc's private obs counter block: cache-padded,
	// written only by this worker, summed by obs.Snapshot.
	metrics *obs.Block
	// tring is the Proc's flight-recorder ring (DESIGN.md S16),
	// allocated lazily on the first traced event so Procs registered
	// while tracing is off carry no ring at all.
	tring *trace.Ring
	// bdepth is the blocking-mode critical-section nesting depth. In
	// lock-free mode "top level" is p.blk == nil, but blocking mode has
	// no log, so nested blocking acquisitions (composed transactions)
	// need their own depth gate — otherwise stall injection would fire
	// at every nesting level in blocking mode but only once per
	// operation in lock-free mode, biasing the ext-txn comparisons.
	bdepth int
	// bheld is the blocking-mode held-lock stack. Blocking critical
	// sections never migrate (no helping), so the acquiring goroutine's
	// Proc can match an early-release Unlock with its acquisition and
	// skip the scope-exit release — without this, hand-over-hand
	// patterns (couplist) would double-release: the scope exit would
	// force-unlock whoever acquired after the early Unlock, and bump
	// the seqlock version to odd while the lock is free (lock.go).
	bheld []blockHeld

	// Object pools (see pool.go). dfree/bfree hold clean descriptors and
	// spill blocks; pools holds per-type mbox freelists; pending holds
	// objects waiting out their epoch grace period.
	dfree     []*descriptor
	bfree     []*logBlock
	pools     []typedPool
	pending   []reusable
	reuseTick uint64

	_ [32]byte // discourage false sharing between adjacent Procs
}

// procSeq distinguishes Procs across all Runtimes: it seeds every
// worker's private backoff-jitter stream (a shared constant seed would
// make all workers back off in lockstep, defeating the jitter) and,
// being nonzero, doubles as the Proc id that descriptor completion
// claims are attributed to.
var procSeq atomic.Uint64

// seedRNG turns a registration ordinal into a well-mixed splitmix64
// state.
func seedRNG(n uint64) uint64 {
	z := n * 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Register creates a Proc for the calling worker goroutine.
func (rt *Runtime) Register() *Proc {
	seq := procSeq.Add(1)
	return &Proc{
		rt:      rt,
		slot:    rt.epochs.Register(),
		rng:     seedRNG(seq),
		id:      seq,
		metrics: obs.NewBlock(),
	}
}

// Unregister releases the Proc's epoch slot and folds its metrics block
// into the obs retired totals (so snapshots taken after a worker exits
// still see its events). Pending retirements are handed to the manager;
// objects awaiting pooled reuse are dropped to the garbage collector
// (their grace periods may not have elapsed, so they cannot join
// another Proc's freelist).
func (p *Proc) Unregister() {
	p.slot.Drain()
	p.slot.Unregister()
	p.pending = nil
	p.metrics.Release()
	if p.tring != nil {
		p.tring.Release()
		p.tring = nil
	}
}

// Obs returns the Proc's metrics block, for layers above core (kv, txn)
// that attribute their own events to the worker.
func (p *Proc) Obs() *obs.Block { return p.metrics }

// traceEmit records one flight-recorder event attributed to this Proc.
// The disabled path is one cold bool load and a branch (the slow path
// is kept out of line so this wrapper inlines into call sites).
func (p *Proc) traceEmit(k trace.Kind, lock, a, b uint64) {
	if !trace.On() {
		return
	}
	p.traceEmitSlow(k, lock, a, b)
}

//go:noinline
func (p *Proc) traceEmitSlow(k trace.Kind, lock, a, b uint64) {
	r := p.tring
	if r == nil {
		r = trace.NewRing(p.id)
		p.tring = r
	}
	r.Emit(k, lock, a, b)
}

// Trace records a flight-recorder event on the Proc's ring, for layers
// above core (kv, txn) that trace their own spans. A no-op while
// tracing is disabled.
func (p *Proc) Trace(k trace.Kind, lock, a, b uint64) { p.traceEmit(k, lock, a, b) }

// TraceAt is Trace with a caller-supplied timestamp (trace.Now), for
// span recorders that already read the clock to compute a duration.
func (p *Proc) TraceAt(k trace.Kind, ts int64, lock, a, b uint64) {
	if !trace.On() {
		return
	}
	p.traceAtSlow(k, ts, lock, a, b)
}

//go:noinline
func (p *Proc) traceAtSlow(k trace.Kind, ts int64, lock, a, b uint64) {
	r := p.tring
	if r == nil {
		r = trace.NewRing(p.id)
		p.tring = r
	}
	r.EmitAt(k, ts, lock, a, b)
}

// ID returns the Proc's registration ordinal — the id trace events and
// completion claims attribute work to.
func (p *Proc) ID() uint64 { return p.id }

// Begin enters an epoch guard. Every data structure operation must run
// between Begin and End so that memory retired by concurrent operations
// stays valid while this worker might still reference it. Guards nest.
// Begin also paces the pooled-reuse drain (pool.go).
func (p *Proc) Begin() {
	p.slot.Enter()
	p.reuseTickDrain()
}

// End exits the epoch guard opened by Begin.
func (p *Proc) End() { p.slot.Exit() }

// Runtime returns the Proc's runtime.
func (p *Proc) Runtime() *Runtime { return p.rt }

// Drain forces epoch advancement and runs ripe retirement callbacks,
// including moving ripe pooled objects to their freelists; for tests and
// shutdown paths. Must be called outside any guard.
func (p *Proc) Drain() {
	p.slot.Drain()
	p.drainReuse()
}

// maybeStall yields the processor (several times, approximating losing a
// scheduling quantum) on every stallEvery-th call, while the caller holds
// a lock. Only invoked from top-level acquisitions; it performs no
// logged operations, so replays of the surrounding code stay aligned.
func (p *Proc) maybeStall() {
	n := p.rt.stallEvery.Load()
	if n == 0 {
		return
	}
	p.stalls++
	if p.stalls >= n {
		p.stalls = 0
		p.traceEmit(trace.Stall, 0, 0, 0)
		for i := 0; i < 8; i++ {
			runtime.Gosched()
		}
	}
}

// Jitter draws from the Proc's private splitmix64 stream, for backoff
// jitter in layers that retry composed acquisitions (internal/kv/engine).
// Like rand64 it must never be used inside thunks (it is not committed).
func (p *Proc) Jitter() uint64 { return p.rand64() }

// rand64 is a splitmix64 step over the Proc's private state; used for
// backoff jitter. Never used inside thunks (it is not committed).
func (p *Proc) rand64() uint64 {
	p.rng += 0x9e3779b97f4a7c15
	z := p.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
