package flock

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// TestDeepNestingChain takes five locks in a strict chain inside one
// top-level tryLock and verifies all protected effects apply exactly
// once under concurrent replay pressure.
func TestDeepNestingChain(t *testing.T) {
	rt := New()
	const depth = 5
	var locks [depth]Lock
	var cells [depth]Mutable[uint64]

	var chain func(i int) Thunk
	chain = func(i int) Thunk {
		return func(hp *Proc) bool {
			v := cells[i].Load(hp)
			cells[i].Store(hp, v+1)
			if i+1 == depth {
				return true
			}
			return locks[i+1].TryLock(hp, chain(i+1))
		}
	}

	const workers = 6
	const per = 150
	var succ atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := rt.Register()
			defer p.Unregister()
			for i := 0; i < per; i++ {
				for {
					p.Begin()
					ok := locks[0].TryLock(p, chain(0))
					p.End()
					if ok {
						succ.Add(1)
						break
					}
				}
			}
		}()
	}
	wg.Wait()

	probe := rt.Register()
	defer probe.Unregister()
	want := succ.Load()
	if want != workers*per {
		t.Fatalf("successes %d, want %d", want, workers*per)
	}
	for i := 0; i < depth; i++ {
		if got := cells[i].Load(probe); got != want {
			t.Fatalf("cell %d = %d, want %d (effects not exactly-once at depth %d)", i, got, want, i)
		}
	}
}

// TestNestedTryLockFailurePropagates: a failed inner try-lock makes the
// outer thunk return false without applying later effects, consistently
// across all runs.
func TestNestedTryLockFailurePropagates(t *testing.T) {
	rt := New()
	var outer, inner Lock
	var applied Mutable[uint64]

	// Hold the inner lock via a stalled acquisition.
	var stall atomic.Int32
	release := make(chan struct{})
	go func() {
		p := rt.Register()
		p.Begin()
		inner.TryLock(p, func(hp *Proc) bool {
			if stall.CompareAndSwap(0, 1) {
				<-release
			}
			return true
		})
		p.End()
	}()
	for stall.Load() == 0 {
	}

	p := rt.Register()
	defer p.Unregister()
	p.Begin()
	got := outer.TryLock(p, func(hp *Proc) bool {
		if !inner.TryLock(hp, func(*Proc) bool { return true }) {
			return false // inner busy: whole composite fails
		}
		v := applied.Load(hp)
		applied.Store(hp, v+1)
		return true
	})
	p.End()
	close(release)
	// The outer acquisition itself succeeded or helped; the composite
	// result must be false while inner was held... unless the helper
	// finished the inner holder first, in which case true is also
	// correct. Either way `applied` must match the returned result.
	probe := applied.Load(p)
	if got && probe != 1 {
		t.Fatalf("outer reported success but applied=%d", probe)
	}
	if !got && probe != 0 {
		t.Fatalf("outer reported failure but applied=%d", probe)
	}
}

// TestUnlockAllowsImmediateReacquire: early release inside a thunk makes
// the lock available to others before the thunk finishes.
func TestUnlockAllowsImmediateReacquire(t *testing.T) {
	rt := New()
	p := rt.Register()
	defer p.Unregister()
	q := rt.Register()
	defer q.Unregister()

	var l Lock
	reacquired := false
	ok := l.TryLock(p, func(hp *Proc) bool {
		l.Unlock(hp)
		// Another proc can now take the lock even though this thunk is
		// still running.
		reacquired = l.TryLock(q, func(*Proc) bool { return true })
		return true
	})
	if !ok || !reacquired {
		t.Fatalf("ok=%v reacquired=%v", ok, reacquired)
	}
}

// TestMutableStructValues exercises Mutable with a multi-field
// comparable struct (the lockState pattern user code can replicate).
func TestMutableStructValues(t *testing.T) {
	type pairT struct {
		A uint64
		B *int
	}
	rt := New()
	p := rt.Register()
	defer p.Unregister()
	var m Mutable[pairT]
	b1, b2 := new(int), new(int)
	m.Store(p, pairT{1, b1})
	if got := m.Load(p); got != (pairT{1, b1}) {
		t.Fatalf("struct round-trip: %+v", got)
	}
	m.CAM(p, pairT{1, b1}, pairT{2, b2})
	if got := m.Load(p); got != (pairT{2, b2}) {
		t.Fatalf("struct CAM: %+v", got)
	}
	m.CAM(p, pairT{1, b1}, pairT{3, nil}) // stale expected
	if got := m.Load(p); got != (pairT{2, b2}) {
		t.Fatalf("stale struct CAM applied: %+v", got)
	}
}

// TestQuickNestedCounterEquivalence: random nesting shapes (a sequence
// of lock indices, possibly repeating non-adjacent) applied through
// nested try-locks must increment each guarded counter exactly once per
// success, across modes.
func TestQuickNestedCounterEquivalence(t *testing.T) {
	prop := func(seq []uint8, blocking bool) bool {
		if len(seq) == 0 {
			return true
		}
		if len(seq) > 4 {
			seq = seq[:4]
		}
		// Map to strictly increasing lock indices to respect ordering.
		rt := New()
		rt.SetBlocking(blocking)
		var locks [4]Lock
		var cells [4]Mutable[uint64]
		var build func(i int) Thunk
		build = func(i int) Thunk {
			return func(hp *Proc) bool {
				v := cells[i].Load(hp)
				cells[i].Store(hp, v+1)
				if i+1 >= len(seq) {
					return true
				}
				return locks[i+1].TryLock(hp, build(i+1))
			}
		}
		p := rt.Register()
		defer p.Unregister()
		p.Begin()
		ok := locks[0].TryLock(p, build(0))
		p.End()
		if !ok {
			return false // uncontended: must succeed
		}
		for i := 0; i < len(seq); i++ {
			if cells[i].Load(p) != 1 {
				return false
			}
		}
		for i := len(seq); i < 4; i++ {
			if cells[i].Load(p) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestEpochGuardNestingAcrossOps: Begin/End nest correctly when a user
// operation calls another operation (guard depth bookkeeping).
func TestEpochGuardNestingAcrossOps(t *testing.T) {
	rt := New()
	p := rt.Register()
	defer p.Unregister()
	p.Begin()
	p.Begin()
	var l Lock
	ok := l.TryLock(p, func(hp *Proc) bool { return true })
	p.End()
	p.End()
	if !ok {
		t.Fatalf("nested-guard tryLock failed")
	}
}

// TestRetireCallbackOrderingAcrossHelpers: when k helpers race a thunk
// that retires two objects, both callbacks run exactly once.
func TestRetireCallbackOrderingAcrossHelpers(t *testing.T) {
	rt := New()
	var freedA, freedB atomic.Int64
	a, b := new(int), new(int)
	f := func(p *Proc) bool {
		Retire(p, a, func(*int) { freedA.Add(1) })
		Retire(p, b, func(*int) { freedB.Add(1) })
		return true
	}
	replayConcurrently(rt, 8, f)
	probe := rt.Register()
	probe.Drain()
	probe.Unregister()
	// Drain from a second slot to pick up winners registered elsewhere.
	probe2 := rt.Register()
	probe2.Drain()
	probe2.Unregister()
	if freedA.Load() != 1 || freedB.Load() != 1 {
		t.Fatalf("retire callbacks ran (%d,%d) times, want (1,1)", freedA.Load(), freedB.Load())
	}
}

// TestConcurrentRuntimesAreIsolated: two runtimes (e.g. two structure
// families) do not interfere: mode flags, epochs and stalls are
// per-runtime.
func TestConcurrentRuntimesAreIsolated(t *testing.T) {
	rtA := New()
	rtB := New(Blocking())
	if rtA.Blocking() || !rtB.Blocking() {
		t.Fatalf("mode flags shared between runtimes")
	}
	pA := rtA.Register()
	pB := rtB.Register()
	defer pA.Unregister()
	defer pB.Unregister()
	var lA, lB Lock
	var cA, cB Mutable[uint64]
	okA := lA.TryLock(pA, func(hp *Proc) bool { cA.Store(hp, 1); return true })
	okB := lB.TryLock(pB, func(hp *Proc) bool { cB.Store(hp, 2); return true })
	if !okA || !okB || cA.Load(pA) != 1 || cB.Load(pB) != 2 {
		t.Fatalf("cross-runtime interference")
	}
}
