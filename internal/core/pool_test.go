package flock

import "testing"

// Tests for the S10 invariant: a pooled object unlinked at epoch e may
// rejoin a freelist only once every guard (or helper lowered to a thunk
// birth) from epoch <= e has finished. While such a guard is open the
// object must sit in the pending list, not the pool.

func drainHard(p *Proc) {
	for i := 0; i < 6; i++ {
		p.Drain()
	}
}

func TestBoxReuseWaitsForGuards(t *testing.T) {
	rt := New()
	p := rt.Register()
	q := rt.Register()
	defer p.Unregister()
	defer q.Unregister()

	var m Mutable[int]
	m.Init(1)

	q.Begin() // q can still hold the old box
	m.Store(p, 2)
	drainHard(p)
	if _, _, boxes, pending := p.PoolStats(); boxes != 0 || pending == 0 {
		t.Fatalf("box recycled under an open guard: boxes=%d pending=%d", boxes, pending)
	}
	q.End()
	drainHard(p)
	if _, _, boxes, pending := p.PoolStats(); boxes == 0 || pending != 0 {
		t.Fatalf("box not recycled after guard exit: boxes=%d pending=%d", boxes, pending)
	}
}

func TestDescriptorReuseWaitsForGuards(t *testing.T) {
	rt := New()
	p := rt.Register()
	q := rt.Register()
	defer p.Unregister()
	defer q.Unregister()

	var l Lock
	ok := l.TryLock(p, func(*Proc) bool { return true })
	if !ok {
		t.Fatal("first acquisition failed")
	}
	q.Begin() // q could be a straggler about to replay the old descriptor
	if !l.TryLock(p, func(*Proc) bool { return true }) {
		t.Fatal("second acquisition failed")
	}
	drainHard(p)
	if dfree, _, _, _ := p.PoolStats(); dfree != 0 {
		t.Fatalf("descriptor recycled under an open guard: dfree=%d", dfree)
	}
	q.End()
	drainHard(p)
	if dfree, _, _, _ := p.PoolStats(); dfree == 0 {
		t.Fatalf("descriptor not recycled after guard exit")
	}
}

// TestPooledValuesStayCorrect hammers a counter through recycled boxes
// and descriptors and checks nothing leaks across reuse: the committed
// total must match exactly (a double-recycle or premature reuse would
// corrupt it).
func TestPooledValuesStayCorrect(t *testing.T) {
	rt := New()
	p := rt.Register()
	defer p.Unregister()
	var l Lock
	var c Mutable[uint64]
	const n = 5000
	f := func(hp *Proc) bool {
		v := c.Load(hp)
		c.Store(hp, v+1)
		return true
	}
	for i := 0; i < n; i++ {
		p.Begin()
		if !l.TryLock(p, f) {
			t.Fatalf("uncontended tryLock %d failed", i)
		}
		p.End()
	}
	if got := c.Load(p); got != n {
		t.Fatalf("counter %d, want %d (reuse corrupted state)", got, n)
	}
	d, b, bx, pend := p.PoolStats()
	if d == 0 && bx == 0 && pend == 0 {
		t.Fatalf("pools never engaged: dfree=%d bfree=%d boxes=%d pending=%d", d, b, bx, pend)
	}
}

// TestNoPoolRuntimeNeverPools pins the GC-fresh ablation arm: with
// NoPool, nothing is parked and nothing is recycled.
func TestNoPoolRuntimeNeverPools(t *testing.T) {
	rt := New(NoPool())
	if rt.Pooling() {
		t.Fatal("NoPool runtime reports pooling enabled")
	}
	p := rt.Register()
	defer p.Unregister()
	var l Lock
	var c Mutable[uint64]
	f := func(hp *Proc) bool {
		v := c.Load(hp)
		c.Store(hp, v+1)
		return true
	}
	for i := 0; i < 500; i++ {
		p.Begin()
		l.TryLock(p, f)
		p.End()
	}
	drainHard(p)
	if d, b, bx, pend := p.PoolStats(); d != 0 || b != 0 || bx != 0 || pend != 0 {
		t.Fatalf("NoPool runtime pooled objects: dfree=%d bfree=%d boxes=%d pending=%d", d, b, bx, pend)
	}
}

// TestSpillBlocksRecycled: a thunk long enough to spill past the
// embedded block feeds the block freelist once its descriptor is
// scrubbed.
func TestSpillBlocksRecycled(t *testing.T) {
	rt := New()
	p := rt.Register()
	defer p.Unregister()
	var l Lock
	var cells [4]Mutable[uint64]
	f := func(hp *Proc) bool {
		for s := 0; s < logBlockLen*3; s++ {
			c := &cells[s%len(cells)]
			c.Store(hp, c.Load(hp)+1)
		}
		return true
	}
	for i := 0; i < 3; i++ {
		p.Begin()
		if !l.TryLock(p, f) {
			t.Fatalf("tryLock %d failed", i)
		}
		p.End()
		drainHard(p)
	}
	if _, bfree, _, _ := p.PoolStats(); bfree == 0 {
		t.Fatal("spill blocks never recycled")
	}
}

// TestProcRNGSeedsDiffer: every registered Proc must get its own
// backoff-jitter stream (a shared constant seed would synchronize
// the backoff of all workers).
func TestProcRNGSeedsDiffer(t *testing.T) {
	rt := New()
	p := rt.Register()
	q := rt.Register()
	r := New().Register()
	defer p.Unregister()
	defer q.Unregister()
	defer r.Unregister()
	a, b, c := p.rand64(), q.rand64(), r.rand64()
	if a == b || a == c || b == c {
		t.Fatalf("procs share a jitter stream: %x %x %x", a, b, c)
	}
	// And the streams must stay distinct, not just the first draw.
	for i := 0; i < 8; i++ {
		if p.rand64() == q.rand64() {
			t.Fatalf("jitter streams collide at step %d", i)
		}
	}
}

// TestStallInjectionClampsNegatives: a negative n must disable
// injection rather than wrapping uint32(n) to a huge period.
func TestStallInjectionClampsNegatives(t *testing.T) {
	rt := New()
	rt.SetStallInjection(-5)
	if got := rt.stallEvery.Load(); got != 0 {
		t.Fatalf("SetStallInjection(-5) stored %d, want 0", got)
	}
	rt.SetStallInjection(7)
	if got := rt.stallEvery.Load(); got != 7 {
		t.Fatalf("SetStallInjection(7) stored %d", got)
	}
	rt.SetStallInjection(-1)
	if got := rt.stallEvery.Load(); got != 0 {
		t.Fatalf("SetStallInjection(-1) stored %d, want 0", got)
	}
}
