package flock

import (
	"sync/atomic"
	"unsafe"
)

// logBlockLen is the number of entries per log block (the Flock default).
// When a run of a thunk exhausts a block, the next block is linked in
// idempotently: the first run to need it CASes a fresh block into next and
// every other run adopts the winner.
const logBlockLen = 7

// logSlot is one log position: a raw pointer word that is CAS'd from nil
// exactly once and immutable afterwards. The committed pointer is stored
// *directly* — no wrapper entry, no interface box — which is what makes
// the hot commit path (boxes, descriptors, Allocate results, booleans)
// allocation-free. nil pointers and booleans are encoded with the
// sentinel addresses below.
//
// The slow path (Proc.Commit / CommitValue of arbitrary values, and
// UpdateOnce loads) stores a *logEntry wrapper instead. The two
// encodings never mix at one position: every run of a thunk executes the
// same operation at the same log position (the determinism rules in the
// package documentation), so the call site that committed a slot is also
// the only call site that ever decodes it.
type logSlot struct {
	v unsafe.Pointer
}

func (s *logSlot) load() unsafe.Pointer { return atomic.LoadPointer(&s.v) }
func (s *logSlot) cas(p unsafe.Pointer) bool {
	return atomic.CompareAndSwapPointer(&s.v, nil, p)
}

// resetPlain clears the slot without atomics. Only legal once the
// enclosing log is past its epoch grace period (no run can observe it).
func (s *logSlot) resetPlain() { s.v = nil }

// Sentinel addresses for values that have no heap pointer of their own.
// They are addresses of private statics, so no user pointer can collide
// with them.
var sentinelBytes [3]byte

var (
	committedNil   = unsafe.Pointer(&sentinelBytes[0]) // a committed nil pointer
	committedFalse = unsafe.Pointer(&sentinelBytes[1]) // a committed false
	committedTrue  = unsafe.Pointer(&sentinelBytes[2]) // a committed true
)

// logBlock is a fixed-size chunk of a thunk's shared log.
type logBlock struct {
	entries [logBlockLen]logSlot
	next    atomic.Pointer[logBlock]
}

// resetPlain clears all entries (same grace-period contract as
// logSlot.resetPlain).
func (b *logBlock) resetPlain() {
	for i := range b.entries {
		b.entries[i].resetPlain()
	}
}

// commitRaw implements the paper's commitValue (Algorithm 2, line 31)
// over raw pointers: it attempts to record v at the Proc's current log
// position and returns the pointer actually committed there together
// with whether this call was the first to commit. The caller must be
// inside a thunk (p.blk != nil). v may be nil, which is encoded as the
// committedNil sentinel so the slot still flips away from the
// uncommitted state.
//
// The read-before-CAS fast path is the compare-and-compare-and-swap
// optimization from §6: under heavy helping most slots are already
// committed and the CAS (and its cache-line invalidation) can be
// skipped.
func (p *Proc) commitRaw(v unsafe.Pointer) (unsafe.Pointer, bool) {
	blk := p.blk
	if p.idx == logBlockLen {
		blk = p.advanceBlock(blk)
	}
	slot := &blk.entries[p.idx]
	p.idx++
	if p.rt.avoidCAS {
		if e := slot.load(); e != nil {
			return decodeRaw(e), false
		}
	}
	enc := v
	if enc == nil {
		enc = committedNil
	}
	if slot.cas(enc) {
		return v, true
	}
	return decodeRaw(slot.load()), false
}

func decodeRaw(e unsafe.Pointer) unsafe.Pointer {
	if e == committedNil {
		return nil
	}
	return e
}

// commitPtr is the typed pointer-committing fast path: the committed
// pointer lands in the log slot directly, so replays allocate nothing.
// Outside any thunk it is a pass-through.
func commitPtr[T any](p *Proc, v *T) (*T, bool) {
	if p.blk == nil {
		return v, true
	}
	c, first := p.commitRaw(unsafe.Pointer(v))
	return (*T)(c), first
}

// commitBool commits a boolean via the sentinel encoding — no
// allocation, no interface box. Outside any thunk it is a pass-through.
func (p *Proc) commitBool(v bool) (bool, bool) {
	if p.blk == nil {
		return v, true
	}
	enc := committedFalse
	if v {
		enc = committedTrue
	}
	c, first := p.commitRaw(enc)
	if first {
		return v, true
	}
	return c == committedTrue, false
}

// logEntry boxes one committed value for the general (non-pointer)
// commit path. The pointer-to-entry in a log slot is CAS'd from nil
// exactly once; the entry itself is immutable afterwards.
type logEntry struct {
	val any
}

// commit is the general commitValue for arbitrary values: Proc.Commit,
// CommitValue and UpdateOnce loads. It boxes the value in a logEntry
// (one allocation when this run is the one that commits; under the
// default compare-and-compare-and-swap mode, replays of an
// already-committed slot allocate nothing thanks to the read-first
// check). Hot-path callers (Mutable, descriptors, Allocate, Retire) use
// commitPtr/commitBool instead. Outside any thunk it is a pass-through.
func (p *Proc) commit(v any) (any, bool) {
	blk := p.blk
	if blk == nil {
		return v, true
	}
	if p.idx == logBlockLen {
		blk = p.advanceBlock(blk)
	}
	slot := &blk.entries[p.idx]
	p.idx++
	if p.rt.avoidCAS {
		if e := slot.load(); e != nil {
			return (*logEntry)(e).val, false
		}
	}
	mine := &logEntry{val: v}
	if slot.cas(unsafe.Pointer(mine)) {
		return v, true
	}
	return (*logEntry)(slot.load()).val, false
}

// advanceBlock moves the Proc's cursor to the next log block, creating
// it idempotently if this run is the first to need it. Spill blocks come
// from the Proc's freelist; a block that loses the linking CAS was never
// published and goes straight back.
func (p *Proc) advanceBlock(blk *logBlock) *logBlock {
	next := blk.next.Load()
	if next == nil {
		nb := p.allocBlock()
		if blk.next.CompareAndSwap(nil, nb) {
			next = nb
		} else {
			p.freeBlock(nb)
			next = blk.next.Load()
		}
	}
	p.blk = next
	p.idx = 0
	return next
}

// CommitPtr is the typed pointer commit for user code whose runs must
// agree on a pointer read from an unlogged location (the KV layer's
// snapshot registry is the motivating case): the pointer lands in the
// log slot directly — no logEntry box — so first runs and replays both
// allocate nothing. It returns the committed pointer and whether the
// caller was first. Outside a thunk it returns (v, true).
func CommitPtr[T any](p *Proc, v *T) (*T, bool) { return commitPtr(p, v) }

// Commit exposes commitValue for user code that must agree on a
// non-deterministic value across helpers (the paper's example is a value
// derived from processor noise; a practical one is a random level or
// priority). It returns the committed value and whether the caller was
// first. Outside a thunk it returns (v, true).
func (p *Proc) Commit(v any) (any, bool) { return p.commit(v) }

// CommitValue is a typed convenience wrapper around Proc.Commit.
func CommitValue[V any](p *Proc, v V) (V, bool) {
	c, first := p.commit(v)
	return c.(V), first
}

// InThunk reports whether the Proc is currently executing inside a
// descriptor's thunk (i.e. whether loggable operations are being
// committed). Exposed for assertions and tests, and used by optimistic
// unlogged read arms (optimistic.go, internal/kv) to fall back to the
// logged path when invoked from composed (nested) operations.
func (p *Proc) InThunk() bool { return p.blk != nil }
