package flock

import "sync/atomic"

// logBlockLen is the number of entries per log block (the Flock default).
// When a run of a thunk exhausts a block, the next block is linked in
// idempotently: the first run to need it CASes a fresh block into next and
// every other run adopts the winner.
const logBlockLen = 7

// logEntry is one committed value. The pointer-to-entry in a log slot is
// CAS'd from nil exactly once; the entry itself is immutable afterwards,
// which is what lets helpers read committed values without synchronization
// beyond the initial CAS.
type logEntry struct {
	val any
}

// logBlock is a fixed-size chunk of a thunk's shared log.
type logBlock struct {
	entries [logBlockLen]atomic.Pointer[logEntry]
	next    atomic.Pointer[logBlock]
}

// commit implements the paper's commitValue (Algorithm 2, line 31). It
// attempts to record v at the Proc's current log position and returns the
// value actually committed there together with whether this call was the
// first to commit. Outside any thunk (no installed log) it is a
// pass-through.
//
// The read-before-CAS fast path is the compare-and-compare-and-swap
// optimization from §6: under heavy helping most slots are already
// committed and the CAS (and its cache-line invalidation) can be skipped.
func (p *Proc) commit(v any) (any, bool) {
	blk := p.blk
	if blk == nil {
		return v, true
	}
	if p.idx == logBlockLen {
		blk = p.advanceBlock(blk)
	}
	slot := &blk.entries[p.idx]
	p.idx++
	if p.rt.avoidCAS {
		if e := slot.Load(); e != nil {
			return e.val, false
		}
	}
	mine := &logEntry{val: v}
	if slot.CompareAndSwap(nil, mine) {
		return v, true
	}
	return slot.Load().val, false
}

// advanceBlock moves the Proc's cursor to the next log block, creating it
// idempotently if this run is the first to need it.
func (p *Proc) advanceBlock(blk *logBlock) *logBlock {
	next := blk.next.Load()
	if next == nil {
		nb := &logBlock{}
		if blk.next.CompareAndSwap(nil, nb) {
			next = nb
		} else {
			next = blk.next.Load()
		}
	}
	p.blk = next
	p.idx = 0
	return next
}

// Commit exposes commitValue for user code that must agree on a
// non-deterministic value across helpers (the paper's example is a value
// derived from processor noise; a practical one is a random level or
// priority). It returns the committed value and whether the caller was
// first. Outside a thunk it returns (v, true).
func (p *Proc) Commit(v any) (any, bool) { return p.commit(v) }

// CommitValue is a typed convenience wrapper around Proc.Commit.
func CommitValue[V any](p *Proc, v V) (V, bool) {
	c, first := p.commit(v)
	return c.(V), first
}

// InThunk reports whether the Proc is currently executing inside a
// descriptor's thunk (i.e. whether loggable operations are being
// committed). Exposed for assertions and tests.
func (p *Proc) InThunk() bool { return p.blk != nil }
