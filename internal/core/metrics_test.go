package flock

// Conservation tests for the obs attribution counters (DESIGN.md S14).
// The single-claim finisher CAS makes completion attribution exact, so
// over a flat (top-level, non-nested) lock-free workload the counters
// must balance to the op count — not approximately, exactly. Run under
// -race in CI, with stall injection forcing real helping traffic.

import (
	"sync"
	"sync/atomic"
	"testing"

	"flock/internal/obs"
)

// TestMetricsHelpingConservation pins the attribution laws on a flat
// TryLock workload with injected descheduling:
//
//	AcquiresLF                     == committed acquisitions
//	OwnCompletions + HelpsReceived == committed acquisitions
//	HelpsGiven                     == HelpsReceived
//
// Every committed top-level critical section is claimed by exactly one
// run (the finisher CAS): by its owner (OwnCompletions) or by a helper
// (one HelpsGiven on the helper, one HelpsReceived on the owner). A
// violation means double-claimed or unclaimed thunks — exactly the
// accounting the single-claim CAS exists to make exact.
func TestMetricsHelpingConservation(t *testing.T) {
	prev := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(prev)

	rt := New()
	rt.SetStallInjection(16) // yield inside every 16th held critical section
	const (
		goroutines = 4
		perG       = 3000
	)
	var (
		committed atomic.Uint64
		m         Mutable[uint64]
		l         Lock
		wg        sync.WaitGroup
	)
	s0 := obs.Snapshot()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := rt.Register()
			defer p.Unregister()
			for n := 0; n < perG; n++ {
				p.Begin()
				ok := l.TryLock(p, func(hp *Proc) bool {
					m.Store(hp, m.Load(hp)+1)
					return true
				})
				p.End()
				if ok {
					committed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	d := obs.Snapshot().Sub(s0)

	ops := committed.Load()
	if got := d.Get(obs.AcquiresLF); got != ops {
		t.Errorf("AcquiresLF = %d, want committed count %d", got, ops)
	}
	own, recv, given := d.Get(obs.OwnCompletions), d.Get(obs.HelpsReceived), d.Get(obs.HelpsGiven)
	if own+recv != ops {
		t.Errorf("OwnCompletions(%d) + HelpsReceived(%d) = %d, want committed count %d",
			own, recv, own+recv, ops)
	}
	if given != recv {
		t.Errorf("HelpsGiven = %d, HelpsReceived = %d; every given help must be received exactly once", given, recv)
	}
	// Sanity on the final value: one increment per committed section.
	p := rt.Register()
	defer p.Unregister()
	p.Begin()
	final := m.Load(p)
	p.End()
	if final != ops {
		t.Errorf("mutable holds %d after %d committed increments", final, ops)
	}
	t.Logf("ops=%d own=%d helped=%d replays=%d casfails=%d",
		ops, own, recv, d.Get(obs.ThunkReplays), d.Get(obs.InstallCASFails))
}

// TestMetricsBlockingRecordsNoHelping pins the other arm of ext-help's
// story: blocking mode has no helping machinery, so an identical
// contended workload must record blocking acquisitions and zero
// lock-free events.
func TestMetricsBlockingRecordsNoHelping(t *testing.T) {
	prev := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(prev)

	rt := New(Blocking())
	rt.SetStallInjection(16)
	const (
		goroutines = 4
		perG       = 1000
	)
	var (
		committed atomic.Uint64
		m         Mutable[uint64]
		l         Lock
		wg        sync.WaitGroup
	)
	s0 := obs.Snapshot()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := rt.Register()
			defer p.Unregister()
			for n := 0; n < perG; n++ {
				p.Begin()
				if l.TryLock(p, func(hp *Proc) bool { m.Store(hp, m.Load(hp)+1); return true }) {
					committed.Add(1)
				}
				p.End()
			}
		}()
	}
	wg.Wait()
	d := obs.Snapshot().Sub(s0)
	if got := d.Get(obs.AcquiresBlocking); got != committed.Load() {
		t.Errorf("AcquiresBlocking = %d, want committed count %d", got, committed.Load())
	}
	for _, k := range []obs.Counter{obs.AcquiresLF, obs.HelpsGiven, obs.HelpsReceived, obs.ThunkReplays} {
		if got := d.Get(k); got != 0 {
			t.Errorf("blocking run moved lock-free counter %v: %d", k, got)
		}
	}
}

// TestMetricsStrictLockConservation runs the same laws through the
// strict Lock path (spin-then-help acquisition), which also records
// StrictSpins. Lock always succeeds, so committed == goroutines*perG.
func TestMetricsStrictLockConservation(t *testing.T) {
	prev := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(prev)

	rt := New()
	rt.SetStallInjection(16)
	const (
		goroutines = 4
		perG       = 2000
	)
	var (
		m  Mutable[uint64]
		l  Lock
		wg sync.WaitGroup
	)
	s0 := obs.Snapshot()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := rt.Register()
			defer p.Unregister()
			for n := 0; n < perG; n++ {
				p.Begin()
				l.Lock(p, func(hp *Proc) bool {
					m.Store(hp, m.Load(hp)+1)
					return true
				})
				p.End()
			}
		}()
	}
	wg.Wait()
	d := obs.Snapshot().Sub(s0)
	const ops = uint64(goroutines * perG)
	if got := d.Get(obs.AcquiresLF); got != ops {
		t.Errorf("AcquiresLF = %d, want %d (strict Lock always completes)", got, ops)
	}
	own, recv, given := d.Get(obs.OwnCompletions), d.Get(obs.HelpsReceived), d.Get(obs.HelpsGiven)
	if own+recv != ops {
		t.Errorf("OwnCompletions(%d) + HelpsReceived(%d) = %d, want %d", own, recv, own+recv, ops)
	}
	if given != recv {
		t.Errorf("HelpsGiven = %d, HelpsReceived = %d", given, recv)
	}
}
