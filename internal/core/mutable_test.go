package flock

import (
	"sync"
	"testing"
)

func TestMutableZeroValue(t *testing.T) {
	rt := New()
	p := rt.Register()
	defer p.Unregister()
	var m Mutable[uint64]
	if got := m.Load(p); got != 0 {
		t.Fatalf("zero Mutable loads %d", got)
	}
	var mp Mutable[*int]
	if got := mp.Load(p); got != nil {
		t.Fatalf("zero pointer Mutable loads %v", got)
	}
}

func TestMutableInitAndDirectOps(t *testing.T) {
	rt := New()
	p := rt.Register()
	defer p.Unregister()
	var m Mutable[int]
	m.Init(10)
	if got := m.Load(p); got != 10 {
		t.Fatalf("after Init, Load = %d", got)
	}
	m.Store(p, 20)
	if got := m.Load(p); got != 20 {
		t.Fatalf("after Store, Load = %d", got)
	}
	m.CAM(p, 20, 30)
	if got := m.Load(p); got != 30 {
		t.Fatalf("after matching CAM, Load = %d", got)
	}
	m.CAM(p, 999, 40) // mismatched expectation: no effect
	if got := m.Load(p); got != 30 {
		t.Fatalf("mismatched CAM changed value to %d", got)
	}
}

func TestMutableLoadCommitsInsideThunk(t *testing.T) {
	rt := New()
	p := rt.Register()
	q := rt.Register()
	defer p.Unregister()
	defer q.Unregister()

	var m Mutable[int]
	m.Init(1)

	head, exitP := enterFakeThunk(p)
	got1 := m.Load(p)
	exitP()

	// Mutate the location between the two "runs".
	m.Store(q, 2)

	// A replay must observe the committed value, not the current one.
	exitQ := enterExistingLog(q, head)
	got2 := m.Load(q)
	exitQ()
	if got1 != 1 || got2 != 1 {
		t.Fatalf("committed load: run1=%d run2=%d, want 1,1", got1, got2)
	}
}

func TestMutableStoreAppliesOnceAcrossRuns(t *testing.T) {
	rt := New()
	p := rt.Register()
	q := rt.Register()
	defer p.Unregister()
	defer q.Unregister()

	var m Mutable[int]
	m.Init(5)

	// Run 1 performs load+store of 6.
	head, exitP := enterFakeThunk(p)
	v := m.Load(p)
	m.Store(p, v+1)
	exitP()
	if got := m.Load(p); got != 6 {
		t.Fatalf("after run1, value = %d", got)
	}

	// An unrelated operation moves the value on.
	m.Store(p, 100)

	// Run 2 replays the same thunk; its store must NOT clobber 100,
	// because the committed old box is long gone.
	exitQ := enterExistingLog(q, head)
	v2 := m.Load(q)
	m.Store(q, v2+1)
	exitQ()
	if v2 != 5 {
		t.Fatalf("replay loaded %d, want committed 5", v2)
	}
	if got := m.Load(p); got != 100 {
		t.Fatalf("replayed store clobbered value: %d, want 100", got)
	}
}

func TestMutableCAMIdempotentAcrossRuns(t *testing.T) {
	rt := New()
	p := rt.Register()
	q := rt.Register()
	defer p.Unregister()
	defer q.Unregister()

	var m Mutable[int]
	m.Init(1)

	head, exitP := enterFakeThunk(p)
	m.CAM(p, 1, 2)
	exitP()
	if got := m.Load(p); got != 2 {
		t.Fatalf("CAM did not apply: %d", got)
	}

	// Value goes back to 1 through legitimate later operations; the boxed
	// representation makes this safe even though the *value* recurs (the
	// paper requires ABA-freedom; boxes provide it).
	m.Store(p, 1)

	exitQ := enterExistingLog(q, head)
	m.CAM(q, 1, 2) // replay: must have no effect despite value matching
	exitQ()
	if got := m.Load(p); got != 1 {
		t.Fatalf("replayed CAM re-applied despite ABA: got %d, want 1", got)
	}
}

func TestMutableConcurrentLoadStoreLinearizable(t *testing.T) {
	// Direct-mode (no thunk) loads and stores: values seen must always be
	// ones that were stored, and a reader polling must eventually see the
	// final value (publication).
	rt := New()
	var m Mutable[uint64]
	m.Init(0)

	const writers = 4
	const perWriter = 1000
	var wg sync.WaitGroup
	valid := func(v uint64) bool {
		return v == 0 || (v >= 1 && v <= writers*perWriter+writers*1_000_000)
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := rt.Register()
			defer p.Unregister()
			for i := 1; i <= perWriter; i++ {
				m.Store(p, uint64(w*1_000_000+i))
			}
		}(w)
	}
	var stop sync.WaitGroup
	stop.Add(1)
	bad := make(chan uint64, 1)
	done := make(chan struct{})
	go func() {
		defer stop.Done()
		p := rt.Register()
		defer p.Unregister()
		for {
			select {
			case <-done:
				return
			default:
			}
			if v := m.Load(p); !valid(v) {
				select {
				case bad <- v:
				default:
				}
				return
			}
		}
	}()
	wg.Wait()
	close(done)
	stop.Wait()
	select {
	case v := <-bad:
		t.Fatalf("reader observed never-stored value %d", v)
	default:
	}
}

func TestUpdateOnceSemantics(t *testing.T) {
	rt := New()
	p := rt.Register()
	q := rt.Register()
	defer p.Unregister()
	defer q.Unregister()

	var u UpdateOnce[bool]
	if u.Load(p) {
		t.Fatalf("zero UpdateOnce loads true")
	}

	// Inside a thunk: the load commits the value; the store is a plain
	// write that is idempotent because all runs write the same value.
	head, exitP := enterFakeThunk(p)
	before := u.Load(p)
	u.Store(p, true)
	exitP()
	if before {
		t.Fatalf("load before update saw true")
	}
	if !u.Load(p) {
		t.Fatalf("update-once store did not take effect")
	}

	// Replay: load commits the same (old) value; store rewrites true.
	exitQ := enterExistingLog(q, head)
	b2 := u.Load(q)
	u.Store(q, true)
	exitQ()
	if b2 {
		t.Fatalf("replayed load disagreed with committed value")
	}
	if !u.Load(p) {
		t.Fatalf("value lost after replay")
	}
}

func TestUpdateOnceInit(t *testing.T) {
	rt := New()
	p := rt.Register()
	defer p.Unregister()
	var u UpdateOnce[int]
	u.Init(9)
	if got := u.Load(p); got != 9 {
		t.Fatalf("after Init, Load = %d", got)
	}
}

func TestMutablePointerValues(t *testing.T) {
	rt := New()
	p := rt.Register()
	defer p.Unregister()
	type node struct{ k int }
	var m Mutable[*node]
	a, b := &node{1}, &node{2}
	m.Store(p, a)
	if m.Load(p) != a {
		t.Fatalf("pointer store/load mismatch")
	}
	m.CAM(p, a, b)
	if m.Load(p) != b {
		t.Fatalf("pointer CAM failed")
	}
	m.CAM(p, a, nil) // stale expectation
	if m.Load(p) != b {
		t.Fatalf("stale pointer CAM applied")
	}
}
