package flock

import (
	"testing"

	"flock/internal/obs"
)

// Allocation regression pins for the zero-allocation commit path
// (DESIGN.md S10). These use testing.AllocsPerRun over steady-state
// loops (pools warmed first), so a change that reintroduces per-commit
// wrappers, interface boxing, or fresh descriptors/boxes fails loudly
// rather than silently regressing the hot path.

// warm runs f enough times for freelists to fill and slice capacities
// to stabilize.
func warm(n int, f func()) {
	for i := 0; i < n; i++ {
		f()
	}
}

// TestAllocsLockFreeCommittedLoad pins the full lock-free read path: a
// TryLock whose thunk performs one committed load. Steady state must be
// allocation-free (descriptor from the freelist, the box pointer
// committed directly into the log slot, the lock-state boxes recycled).
// The same loop with NoPool must allocate at least 2x as much — the
// acceptance bar for the pooled commit path.
func TestAllocsLockFreeCommittedLoad(t *testing.T) {
	measure := func(opts ...Option) float64 {
		rt := New(opts...)
		p := rt.Register()
		defer p.Unregister()
		var l Lock
		var m Mutable[uint64]
		m.Init(7)
		var sink uint64
		f := func(hp *Proc) bool {
			sink = m.Load(hp)
			return true
		}
		op := func() {
			p.Begin()
			l.TryLock(p, f)
			p.End()
		}
		warm(2000, op)
		_ = sink
		return testing.AllocsPerRun(500, op)
	}
	pooled := measure()
	fresh := measure(NoPool())
	if pooled > 0.5 {
		t.Errorf("lock-free committed load: %v allocs/op pooled, want ~0", pooled)
	}
	if fresh < 1.0 {
		t.Errorf("GC-fresh committed load: %v allocs/op, expected at least 1 (is the ablation arm wired?)", fresh)
	}
	if fresh < 2*pooled {
		t.Errorf("pooling must reduce allocs >=2x: pooled %v vs fresh %v", pooled, fresh)
	}
	t.Logf("committed load: pooled %.3f allocs/op, GC-fresh %.3f allocs/op", pooled, fresh)
}

// TestAllocsBlockingRead pins the blocking-mode read at exactly zero:
// no descriptor, no logging, shared static lock boxes.
func TestAllocsBlockingRead(t *testing.T) {
	rt := New(Blocking())
	p := rt.Register()
	defer p.Unregister()
	var l Lock
	var m Mutable[uint64]
	m.Init(3)
	var sink uint64
	f := func(hp *Proc) bool {
		sink = m.Load(hp)
		return true
	}
	op := func() {
		p.Begin()
		l.TryLock(p, f)
		p.End()
	}
	warm(200, op)
	_ = sink
	if got := testing.AllocsPerRun(500, op); got != 0 {
		t.Errorf("blocking read allocates %v per op, must stay 0", got)
	}
}

// TestAllocsOptimisticRead pins the optimistic read path at exactly
// zero allocations in steady state: the combinator itself allocates
// nothing (no descriptor, no log, no commit traffic) and the hoisted
// closure is reused across ops. This is the acceptance bar for the
// optimistic arm — a read that validates cleanly must cost no more
// than the loads it performs.
func TestAllocsOptimisticRead(t *testing.T) {
	for _, pool := range []bool{true, false} {
		opts := []Option{}
		if !pool {
			opts = append(opts, NoPool())
		}
		rt := New(opts...)
		p := rt.Register()
		defer p.Unregister()
		var l Lock
		var m Mutable[uint64]
		m.Init(9)
		var sink uint64
		f := func(hp *Proc) bool {
			sink = m.Load(hp)
			return true
		}
		op := func() { rt.OptimisticRead(p, &l, f) }
		warm(2000, op)
		_ = sink
		if got := testing.AllocsPerRun(500, op); got != 0 {
			t.Errorf("pooling=%v: optimistic read allocates %v per op, must stay 0", pool, got)
		}
		if r, e := p.Obs().Load(obs.OptRestarts), p.Obs().Load(obs.OptEscalations); r != 0 || e != 0 {
			t.Errorf("pooling=%v: uncontended loop restarted (%d) or escalated (%d)", pool, r, e)
		}
	}
}

// TestAllocsMetricsDisabledIsFree pins the observability bargain's cheap
// half (DESIGN.md S14): with the obs flag off — the default — the
// instrumented lock-free commit path stays allocation-free, identical to
// the pre-instrumentation pin above. Counter sites compile to a load of
// one cold bool and a skipped branch; anything heavier (boxing, deferred
// closures, lazily allocated blocks) would show up here as allocs/op.
func TestAllocsMetricsDisabledIsFree(t *testing.T) {
	if obs.Enabled() {
		t.Fatal("obs metrics unexpectedly enabled at test entry")
	}
	rt := New()
	p := rt.Register()
	defer p.Unregister()
	var l Lock
	var m Mutable[uint64]
	m.Init(7)
	var sink uint64
	f := func(hp *Proc) bool {
		sink = m.Load(hp)
		return true
	}
	op := func() {
		p.Begin()
		l.TryLock(p, f)
		p.End()
	}
	s0 := obs.Snapshot()
	warm(2000, op)
	_ = sink
	if got := testing.AllocsPerRun(500, op); got > 0.5 {
		t.Errorf("metrics-disabled lock-free read: %v allocs/op, want ~0", got)
	}
	if n := obs.Snapshot().Sub(s0).Get(obs.AcquiresLF); n != 0 {
		t.Errorf("disabled counters moved: %d lock-free acquires recorded", n)
	}
}

// TestAllocsMetricsEnabled pins the expensive half: with the obs flag
// ON, the committed lock-free read, the blocking read and the optimistic
// read all still allocate nothing in steady state. Every counter write
// lands in the Proc's preallocated padded block, so enabling collection
// costs atomic adds — never heap traffic.
func TestAllocsMetricsEnabled(t *testing.T) {
	prev := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(prev)

	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"lockfree", nil},
		{"blocking", []Option{Blocking()}},
	} {
		rt := New(tc.opts...)
		p := rt.Register()
		var l Lock
		var m Mutable[uint64]
		m.Init(7)
		var sink uint64
		f := func(hp *Proc) bool {
			sink = m.Load(hp)
			return true
		}
		op := func() {
			p.Begin()
			l.TryLock(p, f)
			p.End()
		}
		warm(2000, op)
		_ = sink
		if got := testing.AllocsPerRun(500, op); got > 0.5 {
			t.Errorf("%s: metrics-enabled read allocates %v per op, want ~0", tc.name, got)
		}
		opt := func() { rt.OptimisticRead(p, &l, f) }
		warm(2000, opt)
		if got := testing.AllocsPerRun(500, opt); got != 0 {
			t.Errorf("%s: metrics-enabled optimistic read allocates %v per op, must stay 0", tc.name, got)
		}
		wantCounter := obs.AcquiresLF
		if len(tc.opts) > 0 {
			wantCounter = obs.AcquiresBlocking
		}
		if p.Obs().Load(wantCounter) == 0 {
			t.Errorf("%s: enabled run recorded no acquisitions — instrumentation not wired?", tc.name)
		}
		p.Unregister()
	}
}

// TestAllocsTryLockInsert pins an insert-shaped critical section: an
// idempotent Allocate of a fresh node, linked in with a Store, with the
// displaced node retired. The node itself is real payload (1 alloc);
// everything the lock-free machinery adds on top must come from the
// pools, and the NoPool arm must cost at least 2x.
func TestAllocsTryLockInsert(t *testing.T) {
	type node struct {
		key  uint64
		next *node
	}
	measure := func(opts ...Option) float64 {
		rt := New(opts...)
		p := rt.Register()
		defer p.Unregister()
		var l Lock
		var head Mutable[*node]
		var k uint64
		f := func(hp *Proc) bool {
			k++
			kk := k
			old := head.Load(hp)
			n := Allocate(hp, func() *node { return &node{key: kk, next: nil} })
			head.Store(hp, n)
			Retire(hp, old, nil)
			return true
		}
		op := func() {
			p.Begin()
			l.TryLock(p, f)
			p.End()
		}
		warm(2000, op)
		return testing.AllocsPerRun(500, op)
	}
	pooled := measure()
	fresh := measure(NoPool())
	// Pooled budget: the node payload plus amortized slack, nothing else.
	if pooled > 1.5 {
		t.Errorf("TryLock insert: %v allocs/op pooled, want ~1 (the node)", pooled)
	}
	if fresh < 2*pooled {
		t.Errorf("pooling must reduce insert allocs >=2x: pooled %v vs fresh %v", pooled, fresh)
	}
	t.Logf("TryLock insert: pooled %.3f allocs/op, GC-fresh %.3f allocs/op", pooled, fresh)
}
