package flock

import (
	"flock/internal/obs"
	"flock/internal/obs/trace"
)

// Optimistic version-validated reads (DESIGN.md S13). The paper's own
// read paths run as optimistic unlocked reads; this file gives flock
// locks the per-lock version counter that makes the same discipline
// available to lock-protected data: a read-only operation runs entirely
// outside the thunk log (plain atomic loads, no descriptor, no commit
// traffic), then checks that no critical section of the guarding lock
// overlapped the read window. On validation failure it restarts, and
// after MaxOptimistic failed attempts it escalates to the ordinary
// logged path under the lock — the restart-bounded escalation protocol
// of the optimistic-lock-coupling baseline (internal/baseline/olcart).
//
// Soundness under helping: every effective store of a critical section
// is performed by some run of its thunk, every run is reached only via
// the lock word's installed descriptor, and a straggling replay of a
// completed thunk can never re-install a store (box-identity CAS from
// the committed box fails once the first run's install landed). So all
// effective stores sit, in the seq-cst order of Go's atomics, between
// the acquire transition and the release transition of the lock word —
// if an optimistic reader observed any such store, its validating
// re-read necessarily sees the lock taken or the version advanced.

// ReadVersion returns the lock's current version and whether the lock
// is readable (not held in either mode). A (version, true) result is
// the opening half of a seqlock-style validation: run the unlogged
// read, then confirm with Validate. On a pooling runtime the caller
// must hold an epoch guard (Proc.Begin/End) across ReadVersion,
// the read and Validate, so the lock-word box cannot be recycled
// mid-inspection.
func (l *Lock) ReadVersion() (uint64, bool) {
	bv := l.bver.Load()
	bx := l.state.b.Load()
	var ls lockState
	if bx != nil {
		ls = bx.v
	}
	if ls.locked || bv&1 == 1 {
		return 0, false
	}
	// The two counters never run concurrently (a runtime is in one mode
	// at a time and both strictly increase), so their sum changes iff
	// either does.
	return ls.ver + bv, true
}

// Validate reports whether the lock is readable and its version still
// equals v: no critical section of this lock overlapped the window
// between the ReadVersion that returned v and this call. Same epoch-
// guard requirement as ReadVersion.
func (l *Lock) Validate(v uint64) bool {
	cur, ok := l.ReadVersion()
	return ok && cur == v
}

// MaxOptimistic sets how many optimistic read attempts OptimisticRead
// (and the KV layer's optimistic arm) makes before escalating to the
// logged path under the lock. Values < 1 are clamped to 1. The default
// is 3, mirroring the olcart baseline's restart bound.
func MaxOptimistic(n int) Option {
	return func(rt *Runtime) {
		if n < 1 {
			n = 1
		}
		rt.maxOptimistic = n
	}
}

// MaxOptimistic returns the runtime's optimistic restart bound.
func (rt *Runtime) MaxOptimistic() int { return rt.maxOptimistic }

// OptimisticRead runs fn as an optimistic unlogged read validated
// against l's version: fn executes at top level (outside any thunk, so
// its Mutable loads are plain atomic loads with no commit traffic) and
// its result is returned iff no critical section of l overlapped the
// read. After MaxOptimistic failed attempts it escalates to l.Lock with
// fn as the logged thunk, which always completes (helping in lock-free
// mode, waiting in blocking mode).
//
// fn must be read-only on shared state and restartable: a failed
// attempt's partial observations are discarded, and fn runs again from
// scratch. Because the escalated run executes fn as a thunk that
// helpers may replay, fn must also publish its outputs idempotently
// (run-local accumulation, atomic publish — the same contract as any
// thunk body; see DESIGN.md S7). Results of rejected attempts must not
// escape: callers consume outputs only after OptimisticRead returns,
// and the final run — validated or escalated — is always the last to
// publish.
//
// Calling OptimisticRead from inside a thunk skips the optimistic arm
// entirely (an unlogged read nested in logged code would desynchronize
// helper replays) and runs the logged path directly.
func (rt *Runtime) OptimisticRead(p *Proc, l *Lock, fn Thunk) bool {
	if p.InThunk() {
		return l.Lock(p, fn)
	}
	p.Begin()
	for i := 0; i < rt.maxOptimistic; i++ {
		if v, ok := l.ReadVersion(); ok {
			res := fn(p)
			if l.Validate(v) {
				p.End()
				return res
			}
		}
		// Restart/escalation counts live in the obs metrics layer
		// (per-Proc blocks, obs.Snapshot to aggregate), replacing the
		// Runtime-global atomics this combinator carried before it.
		p.metrics.Inc(obs.OptRestarts)
		p.traceEmit(trace.OptRestart, lockID(l), 0, 0)
	}
	p.End()
	p.metrics.Inc(obs.OptEscalations)
	p.traceEmit(trace.OptEscalate, lockID(l), 0, 0)
	return l.Lock(p, fn)
}
