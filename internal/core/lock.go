package flock

import (
	"runtime"
	"sync/atomic"
	"unsafe"

	"flock/internal/obs"
	"flock/internal/obs/trace"
)

// lockState is the value held by a lock word: a descriptor pointer, a
// locked bit (the paper packs these into one word by stealing a pointer
// bit; the boxed Mutable gives the same single-CAS atomicity), and a
// version counter bumped on every acquire and release. Embedding the
// version in the lock word makes its transitions atomic with the lock
// transitions — the single install CAS both takes (or releases) the
// lock and advances the version, so an optimistic reader can never
// observe a lock/version combination that did not exist (optimistic.go).
// The zero value is "unlocked, no descriptor, version 0".
type lockState struct {
	d      *descriptor
	locked bool
	ver    uint64
}

// Lock is a lock-free try-lock (Algorithm 3). The zero value is an
// unlocked lock. In lock-free mode a taken lock holds a descriptor that
// any thread may help complete; in blocking mode it degenerates to a
// test-and-test-and-set lock with no logging. The mode is taken from the
// Runtime of the Proc performing each operation.
type Lock struct {
	state Mutable[lockState]
	// bver is the blocking-mode version seqlock. Blocking acquisitions
	// share two static boxes (below), which cannot carry a per-lock
	// version, so blocking mode bumps this separate counter to odd after
	// winning the acquisition CAS and to even before the releasing
	// store. ReadVersion folds bver into the reported version so one
	// validation protocol covers both modes.
	bver atomic.Uint64
}

// lockID names a lock in flight-recorder events: its address, which is
// stable for the lock's lifetime and cheap to obtain. (A recycled
// address can in principle denote two locks within one trace window;
// generations disambiguate critical-section instances regardless.)
func lockID(l *Lock) uint64 { return uint64(uintptr(unsafe.Pointer(l))) }

// blockHeld is one entry of a Proc's blocking-mode held-lock stack:
// the acquired lock, and whether the critical section already released
// it early via Unlock (in which case the scope exit must not release
// it again — another thread may hold it by then).
type blockHeld struct {
	l        *Lock
	released bool
}

// Shared boxes for blocking mode: blocking acquisitions never dereference
// the descriptor, so all blocking locks can share one locked and one
// unlocked box. (An ABA "reacquire across a full lock/unlock cycle" on
// these boxes is harmless: the CAS still only succeeds on an unlocked
// lock, which is the entire TTAS contract.)
var (
	blockedBox   = &mbox[lockState]{v: lockState{locked: true}}
	unblockedBox = &mbox[lockState]{v: lockState{locked: false}}
)

// TryLock attempts to acquire the lock and run thunk f inside it. It
// returns false if the lock was held (after helping the holder finish, in
// lock-free mode) or if f returned false; it returns true only when the
// lock was acquired and f returned true. Locks taken inside f must be
// acquired through nested TryLock calls (the paper's "simply nested"
// discipline keeps the construction lock-free).
func (l *Lock) TryLock(p *Proc, f Thunk) bool {
	p.traceEmit(trace.AcqStart, lockID(l), 0, 0)
	if p.rt.blocking.Load() {
		return l.tryLockBlocking(p, f)
	}
	result := false
	cur := l.state.Load(p)
	if !cur.locked {
		my := p.newDescriptor(f)
		myLS := lockState{d: my, locked: true, ver: cur.ver + 1}
		// camx reports whether our own CAS installed myLS; that run (and
		// only that run) unlinked the previous acquisition's descriptor
		// from the lock word, so it parks cur.d for pooled reuse after
		// the epoch grace period (DESIGN.md S10).
		swapped := l.state.camx(p, cur, myLS)
		if !swapped && obs.On() {
			p.metrics.Inc(obs.InstallCASFails)
		}
		if swapped && cur.d != nil && cur.d != my {
			p.retireDescriptor(cur.d)
		}
		if swapped && p.blk == nil {
			// A top-level physical install always commits (once in the
			// lock word, the descriptor is helped to completion), so
			// this event count equals obs.AcquiresLF, timestamped
			// before the critical section runs.
			p.traceEmit(trace.AcqInstalled, lockID(l), p.id, myLS.ver)
		}
		cur2 := l.state.Load(p)
		// The done check (Algorithm 3, line 20) is essential: our CAM may
		// have succeeded and the descriptor already been helped to
		// completion and replaced, in which case cur2 != myLS but the
		// acquisition did happen and we must return its result.
		if my.loadDone(p) || cur2 == myLS {
			if p.blk == nil {
				p.maybeStall() // injected descheduling while holding the lock
			}
			result = l.runAndUnlock(p, myLS) // run own critical section
			if p.blk == nil && obs.On() {
				p.metrics.Inc(obs.AcquiresLF)
				// runAndUnlock attempted the completion claim, so by here
				// the finisher is resolved: if it is not us, a helper
				// carried our critical section to completion.
				if my.finisher.Load() != p.id {
					p.metrics.Inc(obs.HelpsReceived)
				}
			}
		} else {
			if cur2.locked {
				l.runAndUnlock(p, cur2) // lost the race: help the winner
			}
			// else: the lock was acquired and released between our
			// loads; nothing to help. Either way our tryLock failed.
			if !swapped && p.blk == nil {
				// Top level with a failed install: no other run of this
				// acquisition exists, so my was never published and goes
				// straight back to the freelist.
				p.releaseDescriptor(my)
			}
		}
	} else {
		l.runAndUnlock(p, cur) // help the current holder, then report failure
	}
	return result
}

// Lock is the strict lock variant: it loops, helping any holder, until it
// acquires the lock, then runs f and returns f's result. Strict locks are
// not simply nested (§4), but remain useful for comparison with try-locks
// (Figure 4) and for code that cannot restart.
func (l *Lock) Lock(p *Proc, f Thunk) bool {
	p.traceEmit(trace.AcqStart, lockID(l), 0, 0)
	if p.rt.blocking.Load() {
		return l.lockBlocking(p, f)
	}
	my := p.newDescriptor(f)
	var spins uint64 // helping rounds while waiting (obs.StrictSpins)
	for {
		cur := l.state.Load(p)
		if cur.locked {
			spins++
			l.runAndUnlock(p, cur) // help, then try again
			continue
		}
		// ver is derived from the committed cur, so every run of an
		// enclosing thunk computes the same myLS (replay-deterministic).
		myLS := lockState{d: my, locked: true, ver: cur.ver + 1}
		swapped := l.state.camx(p, cur, myLS)
		if !swapped && obs.On() {
			p.metrics.Inc(obs.InstallCASFails)
		}
		if swapped && cur.d != nil && cur.d != my {
			p.retireDescriptor(cur.d) // see TryLock: exactly-once unlink
		}
		if swapped && p.blk == nil {
			p.traceEmit(trace.AcqInstalled, lockID(l), p.id, myLS.ver)
			if spins > 0 {
				p.traceEmit(trace.SpinEpisode, lockID(l), 0, spins)
			}
		}
		cur2 := l.state.Load(p)
		if my.loadDone(p) || cur2 == myLS {
			if p.blk == nil {
				p.maybeStall()
			}
			res := l.runAndUnlock(p, myLS)
			if p.blk == nil && obs.On() {
				p.metrics.Inc(obs.AcquiresLF)
				p.metrics.Add(obs.StrictSpins, spins)
				if my.finisher.Load() != p.id {
					p.metrics.Inc(obs.HelpsReceived)
				}
			}
			return res
		}
	}
}

// Unlock releases a lock currently held by the running thunk before the
// thunk's scope ends (Algorithm 3, lines 29-31). It enables hand-over-hand
// locking. Behaviour is undefined if the calling thunk's lock acquisition
// does not hold the lock.
func (l *Lock) Unlock(p *Proc) {
	if p.rt.blocking.Load() {
		// Mark the matching acquisition released so its scope exit
		// (tryLockBlocking/lockBlocking) skips the second release.
		for i := len(p.bheld) - 1; i >= 0; i-- {
			if p.bheld[i].l == l && !p.bheld[i].released {
				p.bheld[i].released = true
				break
			}
		}
		l.bver.Add(1) // odd -> even: release precedes the unlocking store
		l.state.b.Store(unblockedBox)
		p.traceEmit(trace.Release, lockID(l), p.id, 0)
		return
	}
	cur := l.state.Load(p)
	owner := uint64(0)
	if cur.d != nil {
		owner = cur.d.owner
	}
	// camx (same CAS CAM performs): only the run whose CAS physically
	// released records the hand-over-hand release event.
	if l.state.camx(p, cur, lockState{d: cur.d, locked: false, ver: cur.ver + 1}) && cur.locked {
		p.traceEmit(trace.Release, lockID(l), owner, cur.ver)
	}
}

// Held reports whether the lock is currently held (a racy snapshot; for
// tests, assertions and monitoring).
func (l *Lock) Held() bool {
	bx := l.state.b.Load()
	return bx != nil && bx.v.locked
}

// runAndUnlock completes the critical section of ls.d (running it for the
// first time, or helping, or harmlessly replaying a finished thunk), sets
// the done flag, and releases the lock if it still holds this descriptor.
func (l *Lock) runAndUnlock(p *Proc, ls lockState) bool {
	tr := trace.On()
	if tr && ls.d.owner != p.id {
		p.traceEmit(trace.HelpBegin, lockID(l), ls.d.owner, ls.ver)
	}
	res := p.run(ls.d)
	if obs.On() || tr {
		// Exactly one run wins the completion claim, making helping
		// attribution exact: claims partition committed thunks into
		// own-completions and helps-given, and every losing run is a
		// replay. The claim precedes the done store so the owner's
		// post-acquisition read of finisher is never racing it. The
		// trace events mirror the obs counters one-for-one (the
		// conservation law internal/core's trace test pins).
		if ls.d.finisher.CompareAndSwap(0, p.id) {
			if ls.d.owner == p.id {
				p.metrics.Inc(obs.OwnCompletions)
			} else {
				p.metrics.Inc(obs.HelpsGiven)
				if tr {
					p.traceEmit(trace.HelpEnd, lockID(l), ls.d.owner, ls.ver)
				}
			}
		} else {
			p.metrics.Inc(obs.ThunkReplays)
			if tr {
				p.traceEmit(trace.Replay, lockID(l), ls.d.owner, ls.ver)
			}
		}
	}
	ls.d.done.Store(1) // update-once: every run stores the same value
	// camx: exactly one run physically releases, and that run (alone)
	// emits the Release event for this generation.
	if l.state.camx(p, ls, lockState{d: ls.d, locked: false, ver: ls.ver + 1}) && tr {
		p.traceEmit(trace.Release, lockID(l), ls.d.owner, ls.ver)
	}
	return res
}

// tryLockBlocking is the traditional mode: a single CAS attempt, no
// descriptor, no logging; the thunk runs directly.
func (l *Lock) tryLockBlocking(p *Proc, f Thunk) bool {
	bx := l.state.b.Load()
	if bx != nil && bx.v.locked {
		return false
	}
	if !l.state.b.CompareAndSwap(bx, blockedBox) {
		p.metrics.Inc(obs.InstallCASFails)
		return false
	}
	l.bver.Add(1) // even -> odd: writes of f follow the acquire bump
	p.bdepth++
	p.bheld = append(p.bheld, blockHeld{l: l})
	if p.bdepth == 1 {
		p.metrics.Inc(obs.AcquiresBlocking) // outermost only, as lock-free
		p.traceEmit(trace.AcqBlocking, lockID(l), p.id, 0)
		p.maybeStall() // outermost acquisition only, as in lock-free mode
	}
	res := f(p)
	released := p.bheld[len(p.bheld)-1].released
	p.bheld = p.bheld[:len(p.bheld)-1]
	p.bdepth--
	if !released {
		l.bver.Add(1) // odd -> even: writes of f precede the release bump
		l.state.b.Store(unblockedBox)
		p.traceEmit(trace.Release, lockID(l), p.id, 0)
	}
	return res
}

// lockBlocking is a TTAS spin lock with yielding backoff. On an
// oversubscribed machine the holder may be descheduled, in which case
// waiters burn their timeslices spinning and yielding — exactly the
// behaviour the paper measures for blocking strict locks.
func (l *Lock) lockBlocking(p *Proc, f Thunk) bool {
	spins := 0
	for {
		bx := l.state.b.Load()
		if bx == nil || !bx.v.locked {
			if l.state.b.CompareAndSwap(bx, blockedBox) {
				l.bver.Add(1) // even -> odd, as in tryLockBlocking
				p.bdepth++
				p.bheld = append(p.bheld, blockHeld{l: l})
				if p.bdepth == 1 {
					p.metrics.Inc(obs.AcquiresBlocking)
					p.metrics.Add(obs.StrictSpins, uint64(spins))
					p.traceEmit(trace.AcqBlocking, lockID(l), p.id, 0)
					if spins > 0 {
						p.traceEmit(trace.SpinEpisode, lockID(l), 0, uint64(spins))
					}
					p.maybeStall() // outermost acquisition only
				}
				res := f(p)
				released := p.bheld[len(p.bheld)-1].released
				p.bheld = p.bheld[:len(p.bheld)-1]
				p.bdepth--
				if !released {
					l.bver.Add(1) // odd -> even
					l.state.b.Store(unblockedBox)
					p.traceEmit(trace.Release, lockID(l), p.id, 0)
				}
				return res
			}
		}
		spins++
		if spins&3 == 0 {
			runtime.Gosched()
		} else {
			for i := uint64(0); i < p.rand64()%64; i++ {
				_ = i
			}
		}
	}
}
