package flock

import (
	"sync"
	"sync/atomic"
	"testing"

	"flock/internal/obs"
	"flock/internal/obs/trace"
)

// Flight-recorder integration pins (DESIGN.md S16). The conservation
// tests run the same contended workloads as metrics_test.go with BOTH
// the obs counters and the trace recorder enabled, then require the
// event stream to agree exactly with the counter deltas — two
// independently-instrumented views of the same helping protocol acting
// as each other's check. Run under -race in CI.

// TestTraceConservationLockFree drives a helped lock-free workload with
// stall injection and asserts the five conservation laws: every
// committed acquisition, help, and replay in the obs delta appears as
// exactly one trace event, with no drops.
func TestTraceConservationLockFree(t *testing.T) {
	prevObs := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(prevObs)
	defer trace.SetRingShift(trace.SetRingShift(17))
	trace.SetEnabled(true)
	defer trace.SetEnabled(false)

	rt := New()
	rt.SetStallInjection(16)
	var l Lock
	var m Mutable[uint64]
	m.Init(0)

	const goroutines = 4
	const perG = 800
	var committed atomic.Uint64

	trace.Reset()
	s0 := obs.Snapshot()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := rt.Register()
			defer p.Unregister()
			f := func(hp *Proc) bool {
				m.Store(hp, m.Load(hp)+1)
				return true
			}
			for i := 0; i < perG; i++ {
				p.Begin()
				if l.TryLock(p, f) {
					committed.Add(1)
				}
				p.End()
			}
		}()
	}
	wg.Wait()

	d := obs.Snapshot().Sub(s0)
	tr := trace.Snapshot()
	if tr.Dropped != 0 {
		t.Fatalf("trace dropped %d records; enlarge the ring, the conservation check needs a complete stream", tr.Dropped)
	}
	a := trace.Analyze(tr)
	if bad := a.ConservationCheck(d); len(bad) != 0 {
		t.Fatalf("trace/obs conservation violated:\n  %v\nobs delta: %v\ntrace totals: installed=%d help_begin=%d help_end=%d replay=%d",
			bad, d.Nonzero(),
			a.Totals[trace.AcqInstalled], a.Totals[trace.HelpBegin],
			a.Totals[trace.HelpEnd], a.Totals[trace.Replay])
	}
	if got := a.Totals[trace.AcqInstalled]; got != committed.Load() {
		t.Fatalf("trace recorded %d installs, workload committed %d", got, committed.Load())
	}
	// Every install must have a matching release in the stream.
	if rel := a.Totals[trace.Release]; rel != a.Totals[trace.AcqInstalled] {
		t.Fatalf("releases (%d) != installs (%d)", rel, a.Totals[trace.AcqInstalled])
	}
	// The workload is contended with injected stalls: the point of the
	// test is cross-checking the helping machinery, so demand it fired.
	if d.Get(obs.HelpsGiven)+d.Get(obs.ThunkReplays) == 0 {
		t.Log("warning: no helping observed; conservation held trivially")
	}
	// Final-value sanity: the trace watched a correct execution.
	p := rt.Register()
	defer p.Unregister()
	p.Begin()
	var got uint64
	l.Lock(p, func(hp *Proc) bool { got = m.Load(hp); return true })
	p.End()
	if got != committed.Load() {
		t.Fatalf("mutable holds %d after %d committed increments", got, committed.Load())
	}
}

// TestTraceConservationBlocking runs the blocking-mode variant: every
// committed acquisition appears as exactly one acq_blocking event and
// no lock-free events leak into the stream.
func TestTraceConservationBlocking(t *testing.T) {
	prevObs := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(prevObs)
	defer trace.SetRingShift(trace.SetRingShift(17))
	trace.SetEnabled(true)
	defer trace.SetEnabled(false)

	rt := New(Blocking())
	var l Lock
	var m Mutable[uint64]
	m.Init(0)

	const goroutines = 4
	const perG = 500
	var committed atomic.Uint64

	trace.Reset()
	s0 := obs.Snapshot()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := rt.Register()
			defer p.Unregister()
			f := func(hp *Proc) bool {
				m.Store(hp, m.Load(hp)+1)
				return true
			}
			for i := 0; i < perG; i++ {
				p.Begin()
				if l.TryLock(p, f) {
					committed.Add(1)
				}
				p.End()
			}
		}()
	}
	wg.Wait()

	d := obs.Snapshot().Sub(s0)
	tr := trace.Snapshot()
	if tr.Dropped != 0 {
		t.Fatalf("trace dropped %d records", tr.Dropped)
	}
	a := trace.Analyze(tr)
	if bad := a.ConservationCheck(d); len(bad) != 0 {
		t.Fatalf("trace/obs conservation violated: %v", bad)
	}
	if got := a.Totals[trace.AcqBlocking]; got != committed.Load() {
		t.Fatalf("trace recorded %d blocking acquisitions, workload committed %d", got, committed.Load())
	}
	for _, k := range []trace.Kind{trace.AcqInstalled, trace.HelpBegin, trace.HelpEnd, trace.Replay} {
		if a.Totals[k] != 0 {
			t.Fatalf("blocking run emitted %d %v events, want 0", a.Totals[k], k)
		}
	}
}

// TestAllocsTraceDisabledIsFree pins the recorder's cheap half: with
// tracing off — the default — the instrumented commit path allocates
// nothing and records nothing. Every emission site is a load of one
// cold bool and a skipped call.
func TestAllocsTraceDisabledIsFree(t *testing.T) {
	if trace.Enabled() {
		t.Fatal("tracing unexpectedly enabled at test entry")
	}
	trace.Reset()
	rt := New()
	p := rt.Register()
	defer p.Unregister()
	var l Lock
	var m Mutable[uint64]
	m.Init(7)
	var sink uint64
	f := func(hp *Proc) bool {
		sink = m.Load(hp)
		return true
	}
	op := func() {
		p.Begin()
		l.TryLock(p, f)
		p.End()
	}
	warm(2000, op)
	_ = sink
	if got := testing.AllocsPerRun(500, op); got > 0.5 {
		t.Errorf("trace-disabled lock-free read: %v allocs/op, want ~0", got)
	}
	if tr := trace.Snapshot(); len(tr.Events) != 0 || tr.Dropped != 0 {
		t.Errorf("disabled recorder captured %d events (%d dropped), want none", len(tr.Events), tr.Dropped)
	}
}

// TestAllocsTraceEnabled pins the expensive half: with tracing ON the
// committed lock-free read stays within one alloc/op in steady state
// (the budget the design allows for the lazily-created per-Proc ring;
// after warm-up the ring exists and emission is pure atomic stores, so
// the observed figure should be 0).
func TestAllocsTraceEnabled(t *testing.T) {
	defer trace.SetRingShift(trace.SetRingShift(12))
	trace.SetEnabled(true)
	defer trace.SetEnabled(false)
	trace.Reset()
	rt := New()
	p := rt.Register()
	defer p.Unregister()
	var l Lock
	var m Mutable[uint64]
	m.Init(7)
	var sink uint64
	f := func(hp *Proc) bool {
		sink = m.Load(hp)
		return true
	}
	op := func() {
		p.Begin()
		l.TryLock(p, f)
		p.End()
	}
	warm(2000, op) // ring allocated on first traced emission in here
	_ = sink
	if got := testing.AllocsPerRun(500, op); got > 1.0 {
		t.Errorf("trace-enabled lock-free read: %v allocs/op, budget is <=1", got)
	}
	if tr := trace.Snapshot(); len(tr.Events) == 0 {
		t.Error("enabled recorder captured no events — emission sites not wired?")
	}
}
