package flock

import (
	"sync/atomic"
	"testing"
)

// Micro-benchmarks and ablations for the core mechanism: the design
// choices §6 of the paper calls out (compare-and-compare-and-swap,
// update-once locations, log growth) plus the two stated sources of
// lock-free overhead (descriptor creation and log commits).

// BenchmarkUncontendedTryLockLF measures the full lock-free acquisition
// path: descriptor allocation + install + logged critical section. The
// gap to the blocking variant below is the paper's "overhead of
// lock-free locks" (§8: descriptor creation + log commits).
func BenchmarkUncontendedTryLockLF(b *testing.B) {
	rt := New()
	p := rt.Register()
	defer p.Unregister()
	var l Lock
	var c Mutable[uint64]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.TryLock(p, func(hp *Proc) bool {
			v := c.Load(hp)
			c.Store(hp, v+1)
			return true
		})
	}
}

func BenchmarkUncontendedTryLockBlocking(b *testing.B) {
	rt := New(Blocking())
	p := rt.Register()
	defer p.Unregister()
	var l Lock
	var c Mutable[uint64]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.TryLock(p, func(hp *Proc) bool {
			v := c.Load(hp)
			c.Store(hp, v+1)
			return true
		})
	}
}

// BenchmarkAblationCCAS isolates §6's compare-and-compare-and-swap: the
// same contended helping workload with the read-before-CAS fast path on
// and off. The paper reports up to 2x under high contention.
func BenchmarkAblationCCAS(b *testing.B) {
	for _, cfg := range []struct {
		name string
		opts []Option
	}{
		{"ccas-on", nil},
		{"ccas-off", []Option{NoCCAS()}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			rt := New(cfg.opts...)
			var l Lock
			var c Mutable[uint64]
			b.SetParallelism(8)
			b.RunParallel(func(pb *testing.PB) {
				p := rt.Register()
				defer p.Unregister()
				for pb.Next() {
					p.Begin()
					l.TryLock(p, func(hp *Proc) bool {
						v := c.Load(hp)
						c.Store(hp, v+1)
						return true
					})
					p.End()
				}
			})
		})
	}
}

// BenchmarkAblationLogLength measures commit cost as thunks grow past
// block boundaries (block length 7): the marginal cost of idempotent log
// growth.
func BenchmarkAblationLogLength(b *testing.B) {
	for _, steps := range []int{3, 7, 21, 70} {
		b.Run("steps="+itoa(steps), func(b *testing.B) {
			rt := New()
			p := rt.Register()
			defer p.Unregister()
			var l Lock
			cells := make([]Mutable[uint64], 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.TryLock(p, func(hp *Proc) bool {
					for s := 0; s < steps; s++ {
						c := &cells[s%len(cells)]
						v := c.Load(hp)
						c.Store(hp, v+1)
					}
					return true
				})
			}
			b.ReportMetric(float64(steps), "logged-ops")
		})
	}
}

// BenchmarkAblationUpdateOnce compares the update-once store (plain
// write) against the general mutable store (logged load + CAS) inside a
// thunk — §6's "update-once locations" optimization.
func BenchmarkAblationUpdateOnce(b *testing.B) {
	b.Run("mutable-store", func(b *testing.B) {
		rt := New()
		p := rt.Register()
		defer p.Unregister()
		var l Lock
		var m Mutable[bool]
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l.TryLock(p, func(hp *Proc) bool {
				m.Store(hp, true)
				return true
			})
		}
	})
	b.Run("update-once-store", func(b *testing.B) {
		rt := New()
		p := rt.Register()
		defer p.Unregister()
		var l Lock
		var u UpdateOnce[bool]
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l.TryLock(p, func(hp *Proc) bool {
				u.Store(hp, true)
				return true
			})
		}
	})
}

// BenchmarkTryVsStrict contends a single lock from parallel workers with
// both acquisition styles (the raw-lock view of Figure 4).
func BenchmarkTryVsStrict(b *testing.B) {
	for _, strict := range []bool{false, true} {
		name := "try"
		if strict {
			name = "strict"
		}
		b.Run(name, func(b *testing.B) {
			rt := New()
			var l Lock
			var c Mutable[uint64]
			b.SetParallelism(8)
			b.RunParallel(func(pb *testing.PB) {
				p := rt.Register()
				defer p.Unregister()
				for pb.Next() {
					p.Begin()
					if strict {
						l.Lock(p, func(hp *Proc) bool {
							v := c.Load(hp)
							c.Store(hp, v+1)
							return true
						})
					} else {
						l.TryLock(p, func(hp *Proc) bool {
							v := c.Load(hp)
							c.Store(hp, v+1)
							return true
						})
					}
					p.End()
				}
			})
		})
	}
}

// BenchmarkAblationPooling isolates the S10 memory management: the same
// guarded lock+store loop with per-Proc pooling on (default) and off
// (the GC-fresh path). At par=1 the pooled arm runs allocation-free;
// heavily oversubscribed arms converge (grace periods stretch across
// scheduler quanta and the pools saturate to the GC fallback), which is
// why the pending list and freelists are capped.
func BenchmarkAblationPooling(b *testing.B) {
	for _, cfg := range []struct {
		name string
		opts []Option
	}{
		{"pooled", nil},
		{"nopool", []Option{NoPool()}},
	} {
		for _, par := range []int{1, 8} {
			b.Run(cfg.name+"/par="+itoa(par), func(b *testing.B) {
				rt := New(cfg.opts...)
				var l Lock
				var c Mutable[uint64]
				b.SetParallelism(par)
				b.ReportAllocs()
				b.RunParallel(func(pb *testing.PB) {
					p := rt.Register()
					defer p.Unregister()
					f := func(hp *Proc) bool {
						v := c.Load(hp)
						c.Store(hp, v+1)
						return true
					}
					for pb.Next() {
						p.Begin()
						l.TryLock(p, f)
						p.End()
					}
				})
			})
		}
	}
}

// BenchmarkHelpingStorm measures throughput when every operation fights
// over one lock with injected stalls, i.e. helping is constant — the
// worst case for the log and the best case for progress.
func BenchmarkHelpingStorm(b *testing.B) {
	rt := New()
	rt.SetStallInjection(64)
	var l Lock
	var c Mutable[uint64]
	var done atomic.Uint64
	b.SetParallelism(16)
	b.RunParallel(func(pb *testing.PB) {
		p := rt.Register()
		defer p.Unregister()
		for pb.Next() {
			p.Begin()
			if l.TryLock(p, func(hp *Proc) bool {
				v := c.Load(hp)
				c.Store(hp, v+1)
				return true
			}) {
				done.Add(1)
			}
			p.End()
		}
	})
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
