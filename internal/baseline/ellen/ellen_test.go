package ellen

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	flock "flock/internal/core"
	"flock/internal/structures/set"
	"flock/internal/structures/settest"
)

func TestSuite(t *testing.T) {
	settest.Run(t, func(rt *flock.Runtime) set.Set { return New() })
}

func TestBasicShape(t *testing.T) {
	tr := New()
	var p *flock.Proc
	if _, ok := tr.Find(p, 9); ok {
		t.Fatalf("empty tree finds key")
	}
	if !tr.Insert(p, 9, 90) || tr.Insert(p, 9, 91) {
		t.Fatalf("insert semantics broken")
	}
	if v, ok := tr.Find(p, 9); !ok || v != 90 {
		t.Fatalf("Find(9)=(%d,%v)", v, ok)
	}
	if !tr.Delete(p, 9) || tr.Delete(p, 9) {
		t.Fatalf("delete semantics broken")
	}
}

func TestRandomizedAgainstModel(t *testing.T) {
	tr := New()
	var p *flock.Proc
	rng := rand.New(rand.NewSource(8))
	model := map[uint64]uint64{}
	for i := 0; i < 4000; i++ {
		k := uint64(rng.Intn(300) + 1)
		switch rng.Intn(3) {
		case 0:
			v := rng.Uint64()
			_, had := model[k]
			if tr.Insert(p, k, v) == had {
				t.Fatalf("insert %d inconsistent", k)
			}
			if !had {
				model[k] = v
			}
		case 1:
			_, had := model[k]
			if tr.Delete(p, k) != had {
				t.Fatalf("delete %d inconsistent", k)
			}
			delete(model, k)
		default:
			want, had := model[k]
			v, ok := tr.Find(p, k)
			if ok != had || (had && v != want) {
				t.Fatalf("find %d inconsistent", k)
			}
		}
	}
	got := tr.Keys(p)
	if len(got) != len(model) {
		t.Fatalf("%d keys vs model %d", len(got), len(model))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("unsorted traversal")
	}
}

func TestHelpingUnderContention(t *testing.T) {
	// All workers fight over two adjacent keys: delete flags/marks and
	// insert helping interleave heavily.
	tr := New()
	const workers = 8
	type tally struct{ ins, del [3]int64 }
	tallies := make([]tally, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var p *flock.Proc
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 3000; i++ {
				k := uint64(rng.Intn(2) + 1)
				if rng.Intn(2) == 0 {
					if tr.Insert(p, k, k) {
						tallies[w].ins[k]++
					}
				} else {
					if tr.Delete(p, k) {
						tallies[w].del[k]++
					}
				}
			}
		}(w)
	}
	wg.Wait()
	var p *flock.Proc
	for k := uint64(1); k <= 2; k++ {
		var ins, del int64
		for w := 0; w < workers; w++ {
			ins += tallies[w].ins[k]
			del += tallies[w].del[k]
		}
		_, present := tr.Find(p, k)
		if diff := ins - del; diff != 0 && diff != 1 {
			t.Fatalf("key %d: ins=%d del=%d", k, ins, del)
		} else if (diff == 1) != present {
			t.Fatalf("key %d: diff=%d present=%v", k, diff, present)
		}
	}
}
