// Package ellen implements the Ellen–Fatourou–Ruppert–van Breugel
// non-blocking external binary search tree [21], a lock-free baseline in
// Figure 5. Updates publish Info records on the nodes they will modify
// (IFLAG/DFLAG/MARK states) and any operation that encounters a non-clean
// node helps it finish — descriptor-based helping in its hand-rolled,
// structure-specific form, which is exactly what lock-free locks
// generalize.
package ellen

import (
	"math"
	"sync/atomic"

	flock "flock/internal/core"
)

const (
	inf1 = math.MaxUint64 - 1
	inf2 = math.MaxUint64
)

// Update states.
const (
	clean = iota
	iflag
	dflag
	mark
)

// upd is an immutable (state, info) pair installed by CAS.
type upd struct {
	state int
	info  any // *iinfo or *dinfo
}

var cleanUpd = &upd{state: clean}

type node struct {
	k, v   uint64
	leaf   bool
	left   atomic.Pointer[node]
	right  atomic.Pointer[node]
	update atomic.Pointer[upd]
}

func newLeaf(k, v uint64) *node {
	n := &node{k: k, v: v, leaf: true}
	n.update.Store(cleanUpd)
	return n
}

func newInternal(k uint64, l, r *node) *node {
	n := &node{k: k}
	n.left.Store(l)
	n.right.Store(r)
	n.update.Store(cleanUpd)
	return n
}

// iinfo describes a pending insert: replace leaf l under p by newInternal.
type iinfo struct {
	p, newInternal, l *node
}

// dinfo describes a pending delete: unlink p and leaf l under gp.
type dinfo struct {
	gp, p, l *node
	pupdate  *upd
}

// Tree is the Ellen et al. BST. Keys must be < inf1.
type Tree struct {
	root *node
}

// New returns an empty tree: root(inf2) over leaves inf1, inf2.
func New() *Tree {
	return &Tree{root: newInternal(inf2, newLeaf(inf1, 0), newLeaf(inf2, 0))}
}

func childPtr(n *node, k uint64) *atomic.Pointer[node] {
	if k < n.k {
		return &n.left
	}
	return &n.right
}

type searchRes struct {
	gp, p, l          *node
	pupdate, gpupdate *upd
}

func (t *Tree) search(k uint64) searchRes {
	var r searchRes
	r.p = t.root
	r.pupdate = r.p.update.Load()
	r.l = childPtr(r.p, k).Load()
	for !r.l.leaf {
		r.gp = r.p
		r.gpupdate = r.pupdate
		r.p = r.l
		r.pupdate = r.p.update.Load()
		r.l = childPtr(r.p, k).Load()
	}
	return r
}

// Find reports the value stored under k.
func (t *Tree) Find(p *flock.Proc, k uint64) (uint64, bool) {
	_ = p
	cur := childPtr(t.root, k).Load()
	for !cur.leaf {
		cur = childPtr(cur, k).Load()
	}
	if cur.k == k {
		return cur.v, true
	}
	return 0, false
}

// Insert adds (k, v); false if already present.
func (t *Tree) Insert(p *flock.Proc, k, v uint64) bool {
	_ = p
	for {
		r := t.search(k)
		if r.l.k == k {
			return false
		}
		if r.pupdate.state != clean {
			t.help(r.pupdate)
			continue
		}
		nl := newLeaf(k, v)
		var inner *node
		if k < r.l.k {
			inner = newInternal(r.l.k, nl, r.l)
		} else {
			inner = newInternal(k, r.l, nl)
		}
		op := &iinfo{p: r.p, newInternal: inner, l: r.l}
		next := &upd{state: iflag, info: op}
		if r.p.update.CompareAndSwap(r.pupdate, next) {
			t.helpInsert(op, next)
			return true
		}
		t.help(r.p.update.Load())
	}
}

func (t *Tree) helpInsert(op *iinfo, flagUpd *upd) {
	t.casChild(op.p, op.l, op.newInternal)
	op.p.update.CompareAndSwap(flagUpd, &upd{state: clean})
}

// Delete removes k; false if absent.
func (t *Tree) Delete(p *flock.Proc, k uint64) bool {
	_ = p
	for {
		r := t.search(k)
		if r.l.k != k {
			return false
		}
		if r.gpupdate.state != clean {
			t.help(r.gpupdate)
			continue
		}
		if r.pupdate.state != clean {
			t.help(r.pupdate)
			continue
		}
		op := &dinfo{gp: r.gp, p: r.p, l: r.l, pupdate: r.pupdate}
		flagU := &upd{state: dflag, info: op}
		if r.gp.update.CompareAndSwap(r.gpupdate, flagU) {
			if t.helpDelete(op, flagU) {
				return true
			}
		} else {
			t.help(r.gp.update.Load())
		}
	}
}

// helpDelete tries to mark the parent; on success the splice completes,
// otherwise the grandparent flag is backtracked.
func (t *Tree) helpDelete(op *dinfo, flagU *upd) bool {
	markU := &upd{state: mark, info: op}
	if op.p.update.CompareAndSwap(op.pupdate, markU) {
		t.helpMarked(op, flagU)
		return true
	}
	cur := op.p.update.Load()
	if cur.state == mark {
		if di, ok := cur.info.(*dinfo); ok && di == op {
			t.helpMarked(op, flagU)
			return true
		}
	}
	t.help(cur)
	op.gp.update.CompareAndSwap(flagU, &upd{state: clean}) // backtrack
	return false
}

func (t *Tree) helpMarked(op *dinfo, flagU *upd) {
	// Promote the sibling of the deleted leaf.
	var sibling *node
	if op.p.left.Load() == op.l {
		sibling = op.p.right.Load()
	} else {
		sibling = op.p.left.Load()
	}
	t.casChild(op.gp, op.p, sibling)
	op.gp.update.CompareAndSwap(flagU, &upd{state: clean})
}

// help dispatches on the state of a non-clean update record.
func (t *Tree) help(u *upd) {
	switch u.state {
	case iflag:
		t.helpInsert(u.info.(*iinfo), u)
	case mark:
		op := u.info.(*dinfo)
		t.helpMarked(op, findFlag(op))
	case dflag:
		t.helpDelete(u.info.(*dinfo), u)
	}
}

// findFlag recovers the dflag update on gp for op (needed when helping a
// marked node encountered without the flag record in hand).
func findFlag(op *dinfo) *upd {
	cur := op.gp.update.Load()
	if cur.state == dflag {
		if di, ok := cur.info.(*dinfo); ok && di == op {
			return cur
		}
	}
	// gp already cleaned or moved on: return a non-matching record; the
	// CASes inside helpMarked will harmlessly fail.
	return cur
}

func (t *Tree) casChild(parent, old, new *node) {
	if parent.left.Load() == old {
		parent.left.CompareAndSwap(old, new)
	} else if parent.right.Load() == old {
		parent.right.CompareAndSwap(old, new)
	}
}

// Keys returns the key snapshot (single-threaded use).
func (t *Tree) Keys(p *flock.Proc) []uint64 {
	var out []uint64
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			if n.k < inf1 {
				out = append(out, n.k)
			}
			return
		}
		walk(n.left.Load())
		walk(n.right.Load())
	}
	walk(t.root)
	return out
}
