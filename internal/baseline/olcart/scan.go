package olcart

import (
	"encoding/binary"

	flock "flock/internal/core"
	"flock/internal/structures/set"
)

// Scan implements set.Scanner with the same OLC recipe the point reads
// use: optimistic subtree walks that validate each node's version
// hand-over-hand and restart from scratch on any interference, bounded
// at maxOptimistic attempts, after which the scan completes
// pessimistically under lock-coupled write locks and cannot restart.
// This is the literature's restart-vs-helping tradeoff in its sharpest
// form — a long scan revalidates every node on its frontier, so a
// steady writer stream can starve the optimistic pass entirely — and is
// exactly the baseline arm the ext-ycsb-e figure compares against the
// flock structures' restart-free scan thunks.
//
// Like the flock scans, a completed scan is weakly consistent across
// nodes (interval semantics): each node's slice of the result is pinned
// by its own version validation, but different nodes validate at
// different instants.
func (t *Tree) Scan(_ *flock.Proc, lo, hi uint64, limit int) []set.KV {
	lo, hi = set.ClampScanBounds(lo, hi)
	if limit == 0 {
		return nil
	}
	for attempt := 0; attempt < maxOptimistic; attempt++ {
		if out, ok := t.scanOpt(lo, hi, limit); ok {
			return out
		}
	}
	return t.scanLocked(lo, hi, limit)
}

// boundsAt returns the smallest and largest keys reachable below the
// path whose first `used` bytes are kb[:used] (pad with 0x00 / 0xff).
func boundsAt(kb *[8]byte, used int) (uint64, uint64) {
	var mnb, mxb [8]byte
	copy(mnb[:], kb[:used])
	copy(mxb[:], kb[:used])
	for i := used; i < 8; i++ {
		mxb[i] = 0xff
	}
	return binary.BigEndian.Uint64(mnb[:]), binary.BigEndian.Uint64(mxb[:])
}

// scanOpt is one optimistic attempt; ok=false means a validation failed
// somewhere and the whole scan restarts (partial results are discarded —
// a node replacement may have moved keys the partial walk already
// passed).
func (t *Tree) scanOpt(lo, hi uint64, limit int) ([]set.KV, bool) {
	var out []set.KV
	var kb [8]byte // path bytes of the current frontier node
	// walk returns (continue, ok): continue=false stops the in-order
	// walk (limit reached); ok=false aborts the attempt.
	var walk func(n *node, depth int) (bool, bool)
	walk = func(n *node, depth int) (bool, bool) {
		vn, alive := n.rLock()
		if !alive {
			return false, false
		}
		copy(kb[depth:], n.prefix)
		d := depth + len(n.prefix)
		pairs := n.collect()
		// The validation pins pairs as n's child set (and n.prefix as
		// its path) at this instant; collect is race-free (atomics) even
		// against a concurrent locked writer, whose version bump then
		// fails this check.
		if !n.ver.validate(vn) {
			return false, false
		}
		for _, pr := range pairs {
			kb[d] = pr.b
			mn, mx := boundsAt(&kb, d+1)
			if mx < lo || mn > hi {
				continue // subtree disjoint from [lo, hi]
			}
			if pr.c.isLeaf() {
				// Leaves are immutable; membership was pinned above.
				if pr.c.k >= lo && pr.c.k <= hi {
					out = append(out, set.KV{Key: pr.c.k, Value: pr.c.v})
					if limit > 0 && len(out) >= limit {
						return false, true
					}
				}
				continue
			}
			cont, ok := walk(pr.c, d+1)
			if !ok {
				return false, false
			}
			if !cont {
				return false, true
			}
		}
		return true, true
	}
	if _, ok := walk(t.root, 0); !ok {
		return nil, false
	}
	return out, true
}

// scanLocked is the pessimistic fallback: the walk holds write locks on
// the whole root-to-frontier path (writers lock strictly top-down, so
// coupling top-down here cannot deadlock), which blocks writers out of
// the scanned subtree but guarantees completion without restarts.
func (t *Tree) scanLocked(lo, hi uint64, limit int) []set.KV {
	var out []set.KV
	var kb [8]byte
	var walk func(n *node, depth int) bool // caller holds n's lock
	walk = func(n *node, depth int) bool {
		copy(kb[depth:], n.prefix)
		d := depth + len(n.prefix)
		for _, pr := range n.collect() {
			kb[d] = pr.b
			mn, mx := boundsAt(&kb, d+1)
			if mx < lo || mn > hi {
				continue
			}
			if pr.c.isLeaf() {
				if pr.c.k >= lo && pr.c.k <= hi {
					out = append(out, set.KV{Key: pr.c.k, Value: pr.c.v})
					if limit > 0 && len(out) >= limit {
						return false
					}
				}
				continue
			}
			// A locked node's children cannot be unlinked (that needs
			// this lock), so the child is safe to lock in turn.
			pr.c.ver.lock()
			cont := walk(pr.c, d+1)
			pr.c.ver.unlock()
			if !cont {
				return false
			}
		}
		return true
	}
	t.root.ver.lock()
	walk(t.root, 0)
	t.root.ver.unlock()
	return out
}
