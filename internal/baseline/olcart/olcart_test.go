package olcart

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	flock "flock/internal/core"
	"flock/internal/structures/set"
	"flock/internal/structures/settest"
)

// TestSuite runs the repository-wide conformance suite: sequential
// differential testing, property-based programs, disjoint partitions,
// contended and oversubscribed stress, and lincheck linearizability
// histories (with and without stall injection), in both runtime modes
// (the modes only affect flock structures; this baseline ignores them).
func TestSuite(t *testing.T) {
	settest.Run(t, func(rt *flock.Runtime) set.Set { return New() })
}

// TestPessimisticReads forces every Find through the lock-coupled
// fallback path by zeroing the optimistic restart budget.
func TestPessimisticReads(t *testing.T) {
	old := maxOptimistic
	maxOptimistic = 0
	defer func() { maxOptimistic = old }()
	settest.Run(t, func(rt *flock.Runtime) set.Set { return New() })
}

func TestSortedKeysAfterMixedOps(t *testing.T) {
	tr := New()
	var p *flock.Proc
	rng := rand.New(rand.NewSource(3))
	model := map[uint64]bool{}
	for i := 0; i < 3000; i++ {
		k := uint64(rng.Intn(400) + 1)
		if rng.Intn(2) == 0 {
			if tr.Insert(p, k, k) != !model[k] {
				t.Fatalf("insert %d inconsistent", k)
			}
			model[k] = true
		} else {
			if tr.Delete(p, k) != model[k] {
				t.Fatalf("delete %d inconsistent", k)
			}
			delete(model, k)
		}
		if i%500 == 0 {
			if err := tr.CheckInvariants(p); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	if err := tr.CheckInvariants(p); err != nil {
		t.Fatal(err)
	}
	got := tr.Keys(p)
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("keys not sorted: %v", got)
	}
	if len(got) != len(model) {
		t.Fatalf("%d keys, model has %d", len(got), len(model))
	}
	for _, k := range got {
		if !model[k] {
			t.Fatalf("stray key %d", k)
		}
	}
}

// TestGrowShrinkLifecycle walks one branch-byte level through every
// node kind (4 -> 16 -> 48 -> 256) and back down, checking invariants
// at each transition boundary.
func TestGrowShrinkLifecycle(t *testing.T) {
	tr := New()
	var p *flock.Proc
	// Keys 0x100..0x1FF share bytes 0..6 except byte 6 = 1, so they all
	// land under one inner node branching on the last byte.
	base := uint64(0x100)
	for n := 1; n <= 256; n++ {
		if !tr.Insert(p, base+uint64(n-1), uint64(n)) {
			t.Fatalf("insert %d failed", n)
		}
		if n == 4 || n == 5 || n == 16 || n == 17 || n == 48 || n == 49 || n == 256 {
			if err := tr.CheckInvariants(p); err != nil {
				t.Fatalf("after %d inserts: %v", n, err)
			}
		}
	}
	for n := 256; n >= 1; n-- {
		if !tr.Delete(p, base+uint64(n-1)) {
			t.Fatalf("delete %d failed", n)
		}
		if n == 41 || n == 13 || n == 4 || n == 2 || n == 1 {
			if err := tr.CheckInvariants(p); err != nil {
				t.Fatalf("after deleting down to %d: %v", n-1, err)
			}
		}
	}
	if got := tr.Keys(p); len(got) != 0 {
		t.Fatalf("%d keys remain", len(got))
	}
}

// TestPrefixSplitAndMerge exercises path compression: keys that share
// long prefixes force splits on insert and merges on delete.
func TestPrefixSplitAndMerge(t *testing.T) {
	tr := New()
	var p *flock.Proc
	keys := []uint64{
		0x0102030405060708,
		0x0102030405060709, // splits the last byte
		0x01020304FF060708, // splits mid-prefix
		0x0102FF0405060708, // splits early
		0x0102030405FF0708,
	}
	for i, k := range keys {
		if !tr.Insert(p, k, k) {
			t.Fatalf("insert #%d failed", i)
		}
		if err := tr.CheckInvariants(p); err != nil {
			t.Fatalf("after insert #%d: %v", i, err)
		}
	}
	for _, k := range keys {
		if v, ok := tr.Find(p, k); !ok || v != k {
			t.Fatalf("Find(%#x) = (%#x,%v)", k, v, ok)
		}
	}
	// Delete in an order that forces sibling promotion of inner nodes.
	for i, k := range keys {
		if !tr.Delete(p, k) {
			t.Fatalf("delete #%d failed", i)
		}
		if err := tr.CheckInvariants(p); err != nil {
			t.Fatalf("after delete #%d: %v", i, err)
		}
	}
	if got := tr.Keys(p); len(got) != 0 {
		t.Fatalf("%d keys remain", len(got))
	}
}

func TestConcurrentDeleteStorm(t *testing.T) {
	// Concurrent deletes of neighboring leaves exercise shrink and
	// path-compression merges under contention.
	tr := New()
	var p *flock.Proc
	const n = 512
	for k := uint64(1); k <= n; k++ {
		tr.Insert(p, k, k)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var p *flock.Proc
			for k := uint64(1 + w); k <= n; k += 8 {
				if !tr.Delete(p, k) {
					t.Errorf("delete %d failed (disjoint keys)", k)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Keys(p); len(got) != 0 {
		t.Fatalf("%d keys remain", len(got))
	}
	if err := tr.CheckInvariants(p); err != nil {
		t.Fatal(err)
	}
	// Tree still functional.
	if !tr.Insert(p, 7, 7) {
		t.Fatalf("post-storm insert failed")
	}
}

// TestFindZeroAlloc pins the vectorized read path's allocation budget:
// Find on a tree whose root is a full Node16 (the packed-key getChild
// path) must not allocate — the stack copy of the packed key image
// handed to simd.Match16 must not escape.
func TestFindZeroAlloc(t *testing.T) {
	tr := New()
	var p *flock.Proc
	for b := uint64(0); b < 16; b++ {
		for j := uint64(1); j <= 4; j++ {
			if !tr.Insert(p, b<<56|j, j) {
				t.Fatalf("prefill insert failed")
			}
		}
	}
	var sink uint64
	if n := testing.AllocsPerRun(1000, func() {
		v, ok := tr.Find(p, 9<<56|2)
		if !ok {
			t.Fatal("key missing")
		}
		sink += v
	}); n != 0 {
		t.Errorf("Find: %v allocs/op, want 0", n)
	}
	_ = sink
}
