package olcart

import (
	"runtime"
	"sync/atomic"
)

// olock is a per-node optimistic version lock (Leis et al., "The ART of
// Practical Synchronization", DaMoN 2016, Appendix A): a single counter
// whose parity encodes the lock state — even = unlocked, odd = locked —
// and whose value is the node's version. Readers take no lock at all:
// they remember the version, read, and validate that the version is
// unchanged; any intervening write (which always bumps the counter by 2
// through a lock/unlock pair) forces a restart. Writers upgrade a
// remembered version to the locked state with a single CAS, which
// atomically validates and acquires.
//
// Obsolescence (a node unlinked by a structural replacement) is tracked
// in the owning node's dead flag rather than a stolen version bit; it is
// set under the node's write lock, so a reader that observed the node
// alive and then validates its version is guaranteed the node was still
// linked at the validation point.
type olock struct {
	v atomic.Uint64
}

// spinLimit bounds busy-waiting on a locked version before yielding the
// processor — on the oversubscribed configurations this repository
// studies, the holder often isn't running.
const spinLimit = 64

// await spins until the lock is unlocked and returns the observed
// (even) version.
func (l *olock) await() uint64 {
	spins := 0
	for {
		v := l.v.Load()
		if v&1 == 0 {
			return v
		}
		spins++
		if spins >= spinLimit {
			runtime.Gosched()
			spins = 0
		}
	}
}

// validate reports whether the version is still exactly v — i.e. no
// writer acquired the lock since v was read.
func (l *olock) validate(v uint64) bool {
	return l.v.Load() == v
}

// upgrade atomically validates version v and acquires the write lock.
func (l *olock) upgrade(v uint64) bool {
	return l.v.CompareAndSwap(v, v+1)
}

// upgradeOr is upgrade, releasing held (an already-acquired lock) on
// failure so callers can lock-couple parent then child without leaking
// the parent lock on a failed child upgrade.
func (l *olock) upgradeOr(v uint64, held *olock) bool {
	if l.v.CompareAndSwap(v, v+1) {
		return true
	}
	held.unlock()
	return false
}

// lock acquires the write lock unconditionally (pessimistic mode).
func (l *olock) lock() {
	for {
		v := l.await()
		if l.v.CompareAndSwap(v, v+1) {
			return
		}
	}
}

// unlock releases the write lock, advancing the version to a fresh even
// value so every optimistic reader concurrent with the critical section
// fails validation.
func (l *olock) unlock() {
	l.v.Add(1)
}
