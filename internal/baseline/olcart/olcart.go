// Package olcart implements a specialized concurrent Adaptive Radix
// Tree synchronized with optimistic lock coupling (Leis et al., "The
// ART of Practical Synchronization", DaMoN 2016) — the standard
// hand-crafted competitor for ART from the literature, serving as the
// specialized baseline for the flock arttree in Figure 6, in the same
// role the Natarajan/Ellen trees play for the binary trees in Figure 5.
//
// Every node carries a version lock (see olock): readers traverse
// without acquiring anything, validating the version of each node
// hand-over-hand before trusting what they read from it, and restart
// from the root when validation fails; writers lock-couple, upgrading
// the versions of the (parent, node) pair only around the structural
// change itself. Reads are restart-bounded: after maxOptimistic failed
// optimistic descents a reader falls back to a pessimistic lock-coupled
// descent that cannot restart, so Find is wait-bounded even under a
// steady stream of writers.
//
// Concurrency-safety choices (this package must be race-detector
// clean, unlike C++ OLC implementations that read torn data and rely
// on validation alone):
//
//   - Node4/Node16 store each (key byte, child) pair as an immutable
//     box behind an atomic pointer, so a reader never sees a torn pair.
//     Node48 publishes the child before the index (and retracts the
//     index before the child); Node256 indexes children directly.
//   - Node4/Node16 additionally maintain a packed 16-byte key image
//     (two atomic words) + occupancy mask that readers probe with one
//     vector compare (internal/simd) to find candidate lanes; the slot
//     load confirming a candidate remains the linearization point.
//     Writers, serialized by the node's version lock, publish a lane's
//     packed byte before its slot on insert and clear the slot before
//     the lane on remove, so a packed miss is authoritative for
//     absence (same protocol as the flock arttree; DESIGN.md S15).
//   - Prefixes and leaves are immutable. Any change of prefix or node
//     kind (grow, shrink, path-compression merge, prefix split) builds
//     a replacement node under the locks of the parent and the node,
//     marks the old node dead, and swings the parent's slot.
//   - The root is a permanent Node256 with an empty prefix that is
//     never replaced, so every mutable slot has a lockable owner.
//
// Keys are 8-byte big-endian uint64s, as everywhere in this repository;
// fixed-width keys mean no key is a prefix of another, so there are no
// in-node prefix leaves and the full compressed path always fits the
// 8-byte budget. Implements set.Set; the *flock.Proc is ignored, as in
// the other specialized baselines.
package olcart

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"runtime"
	"sync/atomic"

	flock "flock/internal/core"
	"flock/internal/simd"
)

// Node kinds.
const (
	kLeaf = iota
	k4
	k16
	k48
	k256
)

func capOf(kind uint8) int {
	switch kind {
	case k4:
		return 4
	case k16:
		return 16
	case k48:
		return 48
	default:
		return 256
	}
}

func kindName(kind uint8) string {
	switch kind {
	case kLeaf:
		return "leaf"
	case k4:
		return "node4"
	case k16:
		return "node16"
	case k48:
		return "node48"
	default:
		return "node256"
	}
}

// slot is the immutable (key byte, child) box used by Node4/Node16.
type slot struct {
	b byte
	c *node
}

// node is a leaf or an inner node; which arrays are in use depends on
// kind. kind, k, v and prefix are immutable; everything shared is
// atomic so optimistic readers are race-free.
type node struct {
	ver    olock
	dead   atomic.Bool // unlinked by a structural replacement
	kind   uint8
	k, v   uint64 // leaf payload
	prefix []byte // inner: compressed path bytes

	slots    []atomic.Pointer[slot] // k4, k16
	idx      []atomic.Int32         // k48: byte -> child index+1 (0 = empty)
	children []atomic.Pointer[node] // k48 (48), k256 (256)
	count    atomic.Int32           // inner: number of children

	// k4/k16 packed key image: lane i's key byte at byte i of the
	// little-endian pkLo/pkHi pair, occupancy bit i in pkOcc (uint16
	// range). Written only under the node's version (write) lock, read
	// by optimistic readers; lanes with a clear occupancy bit may hold
	// stale bytes.
	pkLo, pkHi atomic.Uint64
	pkOcc      atomic.Uint32
}

// pkLoad snapshots the packed image in the array form simd.Match16
// takes. The three loads are not mutually atomic, but the per-lane
// invariant (a live slot's byte and bit are published before the slot
// and retracted after it) makes candidate misses and hits sound; the
// confirming slot load is the linearization point either way.
func (n *node) pkLoad() (keys [16]byte, occ uint16) {
	binary.LittleEndian.PutUint64(keys[0:8], n.pkLo.Load())
	binary.LittleEndian.PutUint64(keys[8:16], n.pkHi.Load())
	return keys, uint16(n.pkOcc.Load())
}

// pkSet publishes lane i's key byte and occupancy bit. Caller holds
// the write lock and stores the slot only after pkSet returns.
func (n *node) pkSet(i int, b byte) {
	w := &n.pkLo
	if i >= 8 {
		w = &n.pkHi
	}
	sh := uint(i&7) * 8
	w.Store(w.Load()&^(uint64(0xff)<<sh) | uint64(b)<<sh)
	n.pkOcc.Store(n.pkOcc.Load() | 1<<uint(i))
}

// pkClear retracts lane i (the stale byte stays; the cleared bit is
// what excludes it). Caller holds the write lock and has already
// cleared the slot.
func (n *node) pkClear(i int) {
	n.pkOcc.Store(n.pkOcc.Load() &^ (1 << uint(i)))
}

func (n *node) isLeaf() bool { return n.kind == kLeaf }

// rLock waits for the node to be unlocked and returns its version;
// reports false if the node has been unlinked (caller must restart).
func (n *node) rLock() (uint64, bool) {
	v := n.ver.await()
	if n.dead.Load() {
		return 0, false
	}
	return v, true
}

// retire marks n unlinked and releases its write lock. The version
// advances, so every optimistic reader of n fails validation.
func (n *node) retire() {
	n.dead.Store(true)
	n.ver.unlock()
}

func newLeaf(k, v uint64) *node { return &node{kind: kLeaf, k: k, v: v} }

func newInner(kind uint8, prefix []byte) *node {
	n := &node{kind: kind, prefix: prefix}
	switch kind {
	case k4, k16:
		n.slots = make([]atomic.Pointer[slot], capOf(kind))
	case k48:
		n.idx = make([]atomic.Int32, 256)
		n.children = make([]atomic.Pointer[node], 48)
	case k256:
		n.children = make([]atomic.Pointer[node], 256)
	}
	return n
}

// getChild returns the child for byte b (nil if absent). Safe to call
// optimistically; the caller validates the node's version afterwards.
func (n *node) getChild(b byte) *node {
	switch n.kind {
	case k4, k16:
		// One vector compare over the packed key image yields the
		// candidate lanes; the authoritative slot load confirms. A
		// packed miss is authoritative for absence (see pkSet/pkClear
		// ordering); optimistic callers additionally validate the
		// node's version afterwards, as before.
		keys, occ := n.pkLoad()
		for m := simd.Match16(&keys, b) & occ; m != 0; m &= m - 1 {
			if sv := n.slots[bits.TrailingZeros16(m)].Load(); sv != nil && sv.b == b {
				return sv.c
			}
		}
		return nil
	case k48:
		i := n.idx[b].Load()
		if i == 0 {
			return nil
		}
		return n.children[i-1].Load()
	default:
		return n.children[b].Load()
	}
}

// addChild inserts a new (b, c) pair; the caller holds n's write lock
// and has verified b is absent and n is not full.
func (n *node) addChild(b byte, c *node) {
	switch n.kind {
	case k4, k16:
		occ := uint16(n.pkOcc.Load())
		free := ^occ & uint16(1<<len(n.slots)-1)
		if free == 0 {
			panic("olcart: addChild on full " + kindName(n.kind))
		}
		i := bits.TrailingZeros16(free)
		n.pkSet(i, b)                       // publish the packed byte first …
		n.slots[i].Store(&slot{b: b, c: c}) // … then the authoritative slot
	case k48:
		for i := range n.children {
			if n.children[i].Load() == nil {
				n.children[i].Store(c)       // publish the child first
				n.idx[b].Store(int32(i) + 1) // then the index
				return
			}
		}
		panic("olcart: addChild on full " + kindName(n.kind))
	default:
		n.children[b].Store(c)
	}
}

// replaceChild swings the existing slot for byte b to c. Caller holds
// n's write lock; b must be present.
func (n *node) replaceChild(b byte, c *node) {
	switch n.kind {
	case k4, k16:
		// Slot-only update: the key byte is unchanged, so the packed
		// image needs no maintenance.
		keys, occ := n.pkLoad()
		for m := simd.Match16(&keys, b) & occ; m != 0; m &= m - 1 {
			i := bits.TrailingZeros16(m)
			if sv := n.slots[i].Load(); sv != nil && sv.b == b {
				n.slots[i].Store(&slot{b: b, c: c})
				return
			}
		}
		panic("olcart: replaceChild missing byte in " + kindName(n.kind))
	case k48:
		n.children[n.idx[b].Load()-1].Store(c)
	default:
		n.children[b].Store(c)
	}
}

// removeChild clears the slot for byte b. Caller holds n's write lock.
func (n *node) removeChild(b byte) {
	switch n.kind {
	case k4, k16:
		keys, occ := n.pkLoad()
		for m := simd.Match16(&keys, b) & occ; m != 0; m &= m - 1 {
			i := bits.TrailingZeros16(m)
			if sv := n.slots[i].Load(); sv != nil && sv.b == b {
				n.slots[i].Store(nil) // clear the slot first …
				n.pkClear(i)          // … then retract the packed lane
				return
			}
		}
	case k48:
		if i := n.idx[b].Load(); i != 0 {
			n.idx[b].Store(0) // retract the index first
			n.children[i-1].Store(nil)
		}
	default:
		n.children[b].Store(nil)
	}
}

// pair is a collected (byte, child) entry.
type pair struct {
	b byte
	c *node
}

// collect snapshots all present children in byte order. Callers either
// hold n's write lock (or have exclusive access), or — on the
// optimistic scan path (scan.go) — run with no lock at all and
// validate n's version afterwards, discarding the result on a
// mismatch. The second regime is why every slot/idx/children read here
// must stay an atomic load: a concurrent locked writer may be mutating
// the arrays mid-collect.
func (n *node) collect() []pair {
	var out []pair
	switch n.kind {
	case k4, k16:
		for i := range n.slots {
			if sv := n.slots[i].Load(); sv != nil {
				out = append(out, pair{sv.b, sv.c})
			}
		}
		// Slot order is insertion order; normalize by byte.
		for i := 1; i < len(out); i++ {
			for j := i; j > 0 && out[j-1].b > out[j].b; j-- {
				out[j-1], out[j] = out[j], out[j-1]
			}
		}
	case k48:
		for b := 0; b < 256; b++ {
			if i := n.idx[b].Load(); i != 0 {
				if c := n.children[i-1].Load(); c != nil {
					out = append(out, pair{byte(b), c})
				}
			}
		}
	default:
		for b := 0; b < 256; b++ {
			if c := n.children[b].Load(); c != nil {
				out = append(out, pair{byte(b), c})
			}
		}
	}
	return out
}

// buildInner constructs a fresh inner node of minimal kind holding
// pairs. The node is private until published by a locked parent store.
func buildInner(prefix []byte, pairs []pair) *node {
	kind := uint8(k4)
	switch {
	case len(pairs) > 48:
		kind = k256
	case len(pairs) > 16:
		kind = k48
	case len(pairs) > 4:
		kind = k16
	}
	n := newInner(kind, prefix)
	switch kind {
	case k4, k16:
		var lo, hi uint64
		var occ uint32
		for i := range pairs {
			n.slots[i].Store(&slot{b: pairs[i].b, c: pairs[i].c})
			sh := uint(i&7) * 8
			if i < 8 {
				lo |= uint64(pairs[i].b) << sh
			} else {
				hi |= uint64(pairs[i].b) << sh
			}
			occ |= 1 << uint(i)
		}
		n.pkLo.Store(lo)
		n.pkHi.Store(hi)
		n.pkOcc.Store(occ)
	case k48:
		for i := range pairs {
			n.children[i].Store(pairs[i].c)
			n.idx[pairs[i].b].Store(int32(i) + 1)
		}
	default:
		for _, pr := range pairs {
			n.children[pr.b].Store(pr.c)
		}
	}
	n.count.Store(int32(len(pairs)))
	return n
}

// Tree is the concurrent OLC ART set.
type Tree struct {
	root *node // permanent Node256, never replaced or retired
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: newInner(k256, nil)}
}

// maxOptimistic bounds the number of optimistic restarts a read takes
// before switching to the pessimistic lock-coupled descent. A variable
// so tests can force the fallback path.
var maxOptimistic = 64

func keyBytes(k uint64) [8]byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], k)
	return b
}

// commonLen is the length of the longest common prefix of a and b —
// every descent mismatch check and prefix-split computation routes
// through the simd package's Mismatch (vectorized on amd64).
func commonLen(a, b []byte) int { return simd.Mismatch(a, b) }

// Find reports the value stored under key. Restart-bounded: after
// maxOptimistic failed optimistic descents it completes pessimistically.
func (t *Tree) Find(_ *flock.Proc, key uint64) (uint64, bool) {
	kb := keyBytes(key)
	for attempt := 0; attempt < maxOptimistic; attempt++ {
		if v, present, ok := t.findOpt(&kb, key); ok {
			return v, present
		}
	}
	return t.findLocked(&kb, key)
}

// findOpt is one optimistic descent; ok=false means a validation
// failed and the caller must restart.
func (t *Tree) findOpt(kb *[8]byte, key uint64) (val uint64, present, ok bool) {
	n := t.root
	vn, alive := n.rLock() // root is never dead
	if !alive {
		return 0, false, false
	}
	depth := 0
	for {
		if commonLen(n.prefix, kb[depth:]) != len(n.prefix) {
			if !n.ver.validate(vn) {
				return 0, false, false
			}
			return 0, false, true
		}
		depth += len(n.prefix)
		next := n.getChild(kb[depth])
		if !n.ver.validate(vn) {
			return 0, false, false
		}
		if next == nil {
			return 0, false, true
		}
		if next.isLeaf() {
			// Leaf contents are immutable; the validation above proved
			// the leaf was n's child while n's version held, which is
			// the linearization point.
			if next.k == key {
				return next.v, true, true
			}
			return 0, false, true
		}
		vnext, alive := next.rLock()
		if !alive || !n.ver.validate(vn) {
			return 0, false, false
		}
		n, vn = next, vnext
		depth++
	}
}

// findLocked is the pessimistic fallback: hand-over-hand write locks,
// no restarts. A locked node cannot be unlinked (unlinking requires
// its parent's lock, which we hold while acquiring the child).
func (t *Tree) findLocked(kb *[8]byte, key uint64) (uint64, bool) {
	n := t.root
	n.ver.lock()
	depth := 0
	for {
		if commonLen(n.prefix, kb[depth:]) != len(n.prefix) {
			n.ver.unlock()
			return 0, false
		}
		depth += len(n.prefix)
		next := n.getChild(kb[depth])
		if next == nil {
			n.ver.unlock()
			return 0, false
		}
		if next.isLeaf() {
			k, v := next.k, next.v
			n.ver.unlock()
			if k == key {
				return v, true
			}
			return 0, false
		}
		next.ver.lock()
		n.ver.unlock()
		n = next
		depth++
	}
}

// Insert adds (key, val); false if already present (value not updated).
func (t *Tree) Insert(_ *flock.Proc, key, val uint64) bool {
	kb := keyBytes(key)
	for attempt := 0; ; attempt++ {
		if attempt > 0 && attempt%spinLimit == 0 {
			runtime.Gosched()
		}
		if inserted, ok := t.insertOpt(&kb, key, val); ok {
			return inserted
		}
	}
}

func (t *Tree) insertOpt(kb *[8]byte, key, val uint64) (inserted, ok bool) {
	var par *node
	var vpar uint64
	var parB byte
	n := t.root
	vn, alive := n.rLock()
	if !alive {
		return false, false
	}
	depth := 0
	for {
		cp := commonLen(n.prefix, kb[depth:])
		if cp != len(n.prefix) {
			// Prefix mismatch: split n's compressed path. The root has
			// an empty prefix, so par is non-nil here.
			if !par.ver.upgrade(vpar) {
				return false, false
			}
			if !n.ver.upgradeOr(vn, &par.ver) {
				return false, false
			}
			clone := buildInner(cloneBytes(n.prefix[cp+1:]), n.collect())
			split := buildInner(cloneBytes(n.prefix[:cp]),
				sortedPairs(pair{n.prefix[cp], clone}, pair{kb[depth+cp], newLeaf(key, val)}))
			par.replaceChild(parB, split)
			n.retire()
			par.ver.unlock()
			return true, true
		}
		depth += len(n.prefix)
		b := kb[depth]
		next := n.getChild(b)
		if !n.ver.validate(vn) {
			return false, false
		}
		if next == nil {
			if int(n.count.Load()) == capOf(n.kind) {
				// Full: grow to the next kind under the parent's lock.
				// The root Node256 is never full with a byte absent.
				if !par.ver.upgrade(vpar) {
					return false, false
				}
				if !n.ver.upgradeOr(vn, &par.ver) {
					return false, false
				}
				// The count said full; assert the occupancy agrees
				// before rebuilding wider.
				kids := n.collect()
				if len(kids) != capOf(n.kind) {
					panic(fmt.Sprintf("olcart: growing %s with %d/%d children",
						kindName(n.kind), len(kids), capOf(n.kind)))
				}
				grown := buildInner(n.prefix, append(kids, pair{b, newLeaf(key, val)}))
				par.replaceChild(parB, grown)
				n.retire()
				par.ver.unlock()
				return true, true
			}
			// Room available: only n's lock is needed. The upgrade
			// CAS revalidates vn, so the absence of b still holds.
			if !n.ver.upgrade(vn) {
				return false, false
			}
			n.addChild(b, newLeaf(key, val))
			n.count.Add(1)
			n.ver.unlock()
			return true, true
		}
		if next.isLeaf() {
			if next.k == key {
				return false, true // present; validated above
			}
			// Two keys collide below b: replace the leaf with a Node4
			// over their common suffix path. Only n's slot changes.
			if !n.ver.upgrade(vn) {
				return false, false
			}
			okb := keyBytes(next.k)
			cp := commonLen(okb[depth+1:], kb[depth+1:])
			n4 := buildInner(cloneBytes(kb[depth+1:depth+1+cp]),
				sortedPairs(pair{okb[depth+1+cp], next}, pair{kb[depth+1+cp], newLeaf(key, val)}))
			n.replaceChild(b, n4)
			n.ver.unlock()
			return true, true
		}
		vnext, alive := next.rLock()
		if !alive || !n.ver.validate(vn) {
			return false, false
		}
		par, vpar, parB = n, vn, b
		n, vn = next, vnext
		depth++
	}
}

// Delete removes key; false if absent.
func (t *Tree) Delete(_ *flock.Proc, key uint64) bool {
	kb := keyBytes(key)
	for attempt := 0; ; attempt++ {
		if attempt > 0 && attempt%spinLimit == 0 {
			runtime.Gosched()
		}
		if deleted, ok := t.deleteOpt(&kb, key); ok {
			return deleted
		}
	}
}

func (t *Tree) deleteOpt(kb *[8]byte, key uint64) (deleted, ok bool) {
	var par *node
	var vpar uint64
	var parB byte
	n := t.root
	vn, alive := n.rLock()
	if !alive {
		return false, false
	}
	depth := 0
	for {
		if commonLen(n.prefix, kb[depth:]) != len(n.prefix) {
			if !n.ver.validate(vn) {
				return false, false
			}
			return false, true
		}
		depth += len(n.prefix)
		b := kb[depth]
		next := n.getChild(b)
		if !n.ver.validate(vn) {
			return false, false
		}
		if next == nil {
			return false, true
		}
		if !next.isLeaf() {
			vnext, alive := next.rLock()
			if !alive || !n.ver.validate(vn) {
				return false, false
			}
			par, vpar, parB = n, vn, b
			n, vn = next, vnext
			depth++
			continue
		}
		if next.k != key {
			return false, true // validated above; leaf is immutable
		}
		rem := int(n.count.Load()) - 1
		if !n.ver.validate(vn) {
			return false, false
		}
		if n == t.root || rem > shrinkThreshold(n.kind) {
			// Plain removal under n's lock alone.
			if !n.ver.upgrade(vn) {
				return false, false
			}
			n.removeChild(b)
			n.count.Add(-1)
			n.ver.unlock()
			return true, true
		}
		if rem >= 2 {
			// Collapse to a smaller kind (standard ART hysteresis).
			if !par.ver.upgrade(vpar) {
				return false, false
			}
			if !n.ver.upgradeOr(vn, &par.ver) {
				return false, false
			}
			small := buildInner(n.prefix, without(n.collect(), b))
			par.replaceChild(parB, small)
			n.retire()
			par.ver.unlock()
			return true, true
		}
		// rem == 1: path-compress n away, promoting the lone sibling.
		if !par.ver.upgrade(vpar) {
			return false, false
		}
		if !n.ver.upgradeOr(vn, &par.ver) {
			return false, false
		}
		sib := without(n.collect(), b)[0]
		if sib.c.isLeaf() {
			par.replaceChild(parB, sib.c)
		} else {
			// Merge n's prefix, the sibling's branch byte and the
			// sibling's prefix into a clone. Locking top-down
			// (par, n, sib.c) matches every other writer, and sib.c
			// cannot be unlinked while we hold n's lock.
			sib.c.ver.lock()
			merged := make([]byte, 0, len(n.prefix)+1+len(sib.c.prefix))
			merged = append(append(append(merged, n.prefix...), sib.b), sib.c.prefix...)
			clone := buildInner(merged, sib.c.collect())
			par.replaceChild(parB, clone)
			sib.c.retire()
		}
		n.retire()
		par.ver.unlock()
		return true, true
	}
}

// shrinkThreshold returns the occupancy at which a node collapses to a
// smaller kind (mirrors the flock arttree's hysteresis).
func shrinkThreshold(kind uint8) int {
	switch kind {
	case k16:
		return 3
	case k48:
		return 12
	case k256:
		return 40
	default:
		return 1 // k4 only compresses away at a single child
	}
}

func sortedPairs(a, b pair) []pair {
	if a.b > b.b {
		a, b = b, a
	}
	return []pair{a, b}
}

func without(pairs []pair, b byte) []pair {
	out := pairs[:0]
	for _, pr := range pairs {
		if pr.b != b {
			out = append(out, pr)
		}
	}
	return out
}

func cloneBytes(b []byte) []byte {
	return append([]byte(nil), b...)
}

// Keys returns the sorted key snapshot (single-threaded use).
func (t *Tree) Keys(_ *flock.Proc) []uint64 {
	var out []uint64
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		if n.isLeaf() {
			out = append(out, n.k)
			return
		}
		for _, pr := range n.collect() {
			walk(pr.c)
		}
	}
	walk(t.root)
	return out
}

// CheckInvariants verifies, single-threaded: every leaf's key bytes
// equal the path bytes leading to it; counts match occupancy; non-root
// inner nodes have at least 2 children; path bytes fit the key width.
func (t *Tree) CheckInvariants(_ *flock.Proc) error {
	var walk func(n *node, acc []byte) error
	walk = func(n *node, acc []byte) error {
		if n.isLeaf() {
			kb := keyBytes(n.k)
			if commonLen(kb[:], acc) != len(acc) {
				return fmt.Errorf("olcart: leaf %d under path %v", n.k, acc)
			}
			return nil
		}
		acc = append(acc, n.prefix...)
		if len(acc) >= 8 {
			return fmt.Errorf("olcart: path bytes overflow at prefix %v", acc)
		}
		pairs := n.collect()
		if got := int(n.count.Load()); got != len(pairs) {
			return fmt.Errorf("olcart: count %d != occupancy %d", got, len(pairs))
		}
		if n != t.root && len(pairs) < 2 {
			return fmt.Errorf("olcart: inner node with %d children", len(pairs))
		}
		if len(pairs) > capOf(n.kind) {
			return fmt.Errorf("olcart: occupancy %d over capacity %d", len(pairs), capOf(n.kind))
		}
		if n.kind == k4 || n.kind == k16 {
			// Quiesced, the packed key image must mirror the slots
			// exactly: matching bytes on live lanes, occ == occupancy.
			keys, pkOcc := n.pkLoad()
			var occ uint16
			for i := range n.slots {
				sv := n.slots[i].Load()
				if sv == nil {
					continue
				}
				occ |= 1 << i
				if pkOcc&(1<<i) == 0 {
					return fmt.Errorf("olcart: %s lane %d live but packed bit clear", kindName(n.kind), i)
				}
				if keys[i] != sv.b {
					return fmt.Errorf("olcart: %s lane %d packed byte %#x != slot byte %#x",
						kindName(n.kind), i, keys[i], sv.b)
				}
			}
			if pkOcc != occ {
				return fmt.Errorf("olcart: %s packed occ %#x != slot occupancy %#x", kindName(n.kind), pkOcc, occ)
			}
		}
		if n.dead.Load() {
			return fmt.Errorf("olcart: reachable dead node")
		}
		for _, pr := range pairs {
			if err := walk(pr.c, append(acc, pr.b)); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t.root, nil)
}
