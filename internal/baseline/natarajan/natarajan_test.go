package natarajan

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	flock "flock/internal/core"
	"flock/internal/structures/set"
	"flock/internal/structures/settest"
)

func TestSuite(t *testing.T) {
	settest.Run(t, func(rt *flock.Runtime) set.Set { return New() })
}

func TestSentinelLayout(t *testing.T) {
	tr := New()
	var p *flock.Proc
	if _, ok := tr.Find(p, 1); ok {
		t.Fatalf("empty tree finds key")
	}
	if got := tr.Keys(p); len(got) != 0 {
		t.Fatalf("empty tree has keys %v", got)
	}
	tr.Insert(p, 5, 50)
	if v, ok := tr.Find(p, 5); !ok || v != 50 {
		t.Fatalf("Find(5) = (%d,%v)", v, ok)
	}
}

func TestSortedKeysAfterMixedOps(t *testing.T) {
	tr := New()
	var p *flock.Proc
	rng := rand.New(rand.NewSource(3))
	model := map[uint64]bool{}
	for i := 0; i < 3000; i++ {
		k := uint64(rng.Intn(400) + 1)
		if rng.Intn(2) == 0 {
			if tr.Insert(p, k, k) != !model[k] {
				t.Fatalf("insert %d inconsistent", k)
			}
			model[k] = true
		} else {
			if tr.Delete(p, k) != model[k] {
				t.Fatalf("delete %d inconsistent", k)
			}
			delete(model, k)
		}
	}
	got := tr.Keys(p)
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("keys not sorted: %v", got)
	}
	if len(got) != len(model) {
		t.Fatalf("%d keys, model has %d", len(got), len(model))
	}
	for _, k := range got {
		if !model[k] {
			t.Fatalf("stray key %d", k)
		}
	}
}

func TestConcurrentDeleteStorm(t *testing.T) {
	// Concurrent deletes of neighboring leaves exercise the tag/flag
	// helping protocol (chains of edge promotions).
	tr := New()
	var p *flock.Proc
	const n = 512
	for k := uint64(1); k <= n; k++ {
		tr.Insert(p, k, k)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var p *flock.Proc
			for k := uint64(1 + w); k <= n; k += 8 {
				if !tr.Delete(p, k) {
					t.Errorf("delete %d failed (disjoint keys)", k)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Keys(p); len(got) != 0 {
		t.Fatalf("%d keys remain", len(got))
	}
	// Tree still functional.
	if !tr.Insert(p, 7, 7) {
		t.Fatalf("post-storm insert failed")
	}
}
