// Package natarajan implements the Natarajan–Mittal lock-free external
// binary search tree [42], one of the lock-free baselines in Figure 5.
// Deletions flag the edge to the victim leaf and tag the sibling edge,
// then swing the ancestor edge over the whole deleted chain; operations
// that encounter a flagged or tagged edge help complete the removal.
//
// Go adaptation: an edge is an immutable boxed (child, flagged, tagged)
// triple replaced whole by CAS (no stolen pointer bits); fresh boxes make
// every CAS ABA-free (DESIGN.md S1).
package natarajan

import (
	"math"
	"sync/atomic"

	flock "flock/internal/core"
)

const (
	inf0 = math.MaxUint64 - 2
	inf1 = math.MaxUint64 - 1
	inf2 = math.MaxUint64
)

// edge is one immutable state of a parent->child link.
type edge struct {
	n       *node
	flagged bool // the leaf under this edge is being deleted
	tagged  bool // this edge is frozen for promotion
}

type node struct {
	k, v  uint64
	leaf  bool
	left  atomic.Pointer[edge]
	right atomic.Pointer[edge]
}

func newLeaf(k, v uint64) *node { return &node{k: k, v: v, leaf: true} }

func newInternal(k uint64, l, r *node) *node {
	n := &node{k: k}
	n.left.Store(&edge{n: l})
	n.right.Store(&edge{n: r})
	return n
}

// Tree is the Natarajan–Mittal BST. Keys must be < inf0.
type Tree struct {
	root *node // R(inf2): left = S(inf1), right = leaf(inf2)
	s    *node // S(inf1): left = leaf(inf0), right = leaf(inf1)
}

// New returns an empty tree with the standard three-sentinel layout.
func New() *Tree {
	s := newInternal(inf1, newLeaf(inf0, 0), newLeaf(inf1, 0))
	r := newInternal(inf2, s, newLeaf(inf2, 0))
	return &Tree{root: r, s: s}
}

func childField(n *node, k uint64) *atomic.Pointer[edge] {
	if k < n.k {
		return &n.left
	}
	return &n.right
}

func siblingField(n *node, k uint64) *atomic.Pointer[edge] {
	if k < n.k {
		return &n.right
	}
	return &n.left
}

// seekRecord captures the last untagged edge (ancestor->successor) and
// the terminal parent/leaf pair on the search path.
type seekRecord struct {
	ancestor, successor, parent, leaf *node
}

func (t *Tree) seek(k uint64) seekRecord {
	r := seekRecord{ancestor: t.root, successor: t.s, parent: t.s}
	curE := t.s.left.Load()
	cur := curE.n
	for !cur.leaf {
		if !curE.tagged {
			r.ancestor = r.parent
			r.successor = cur
		}
		r.parent = cur
		curE = childField(cur, k).Load()
		cur = curE.n
	}
	r.leaf = cur
	return r
}

// Find reports the value stored under k.
func (t *Tree) Find(p *flock.Proc, k uint64) (uint64, bool) {
	_ = p
	cur := t.s.left.Load().n
	for !cur.leaf {
		cur = childField(cur, k).Load().n
	}
	if cur.k == k {
		return cur.v, true
	}
	return 0, false
}

// Insert adds (k, v); false if already present.
func (t *Tree) Insert(p *flock.Proc, k, v uint64) bool {
	_ = p
	for {
		r := t.seek(k)
		if r.leaf.k == k {
			return false
		}
		parField := childField(r.parent, k)
		old := parField.Load()
		if old.n != r.leaf {
			continue // stale; re-seek
		}
		if !old.flagged && !old.tagged {
			nl := newLeaf(k, v)
			var inner *node
			if k < r.leaf.k {
				inner = newInternal(r.leaf.k, nl, r.leaf)
			} else {
				inner = newInternal(k, r.leaf, nl)
			}
			if parField.CompareAndSwap(old, &edge{n: inner}) {
				return true
			}
			old = parField.Load()
		}
		// Help an in-progress deletion touching this edge.
		if old.n == r.leaf && (old.flagged || old.tagged) {
			t.cleanup(k, r)
		}
	}
}

// Delete removes k; false if absent. Injection flags the victim's edge;
// cleanup (possibly helped by others) performs the splice.
func (t *Tree) Delete(p *flock.Proc, k uint64) bool {
	_ = p
	injecting := true
	var leaf *node
	for {
		r := t.seek(k)
		if injecting {
			if r.leaf.k != k {
				return false
			}
			leaf = r.leaf
			parField := childField(r.parent, k)
			old := parField.Load()
			if old.n != leaf {
				continue
			}
			if old.flagged || old.tagged {
				t.cleanup(k, r) // help whoever is there, then retry
				continue
			}
			if parField.CompareAndSwap(old, &edge{n: leaf, flagged: true}) {
				injecting = false
				if t.cleanup(k, r) {
					return true
				}
			}
		} else {
			if r.leaf != leaf {
				return true // someone completed our splice
			}
			if t.cleanup(k, r) {
				return true
			}
		}
	}
}

// cleanup completes the removal of the flagged leaf on k's path: it tags
// the edge to be promoted and swings the ancestor's successor edge over
// the deleted chain. Returns whether this call performed the splice.
func (t *Tree) cleanup(k uint64, r seekRecord) bool {
	ancField := childField(r.ancestor, k)

	childF := childField(r.parent, k)
	promoteF := siblingField(r.parent, k)
	if !childF.Load().flagged {
		// The victim is on the sibling side; promote the k side.
		promoteF = childF
	}
	// Tag the promoted edge so its value is frozen.
	for {
		pe := promoteF.Load()
		if pe.tagged {
			break
		}
		if promoteF.CompareAndSwap(pe, &edge{n: pe.n, flagged: pe.flagged, tagged: true}) {
			break
		}
	}
	pe := promoteF.Load()
	old := ancField.Load()
	if old.n != r.successor || old.flagged || old.tagged {
		return false
	}
	// Preserve a pending flag on the promoted edge (a concurrent delete
	// of the promoted leaf), drop the tag.
	return ancField.CompareAndSwap(old, &edge{n: pe.n, flagged: pe.flagged})
}

// Keys returns the key snapshot (single-threaded use).
func (t *Tree) Keys(p *flock.Proc) []uint64 {
	var out []uint64
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			if n.k < inf0 {
				out = append(out, n.k)
			}
			return
		}
		walk(n.left.Load().n)
		walk(n.right.Load().n)
	}
	walk(t.root)
	return out
}
