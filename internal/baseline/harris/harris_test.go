package harris

import (
	"math/rand"
	"sync"
	"testing"

	flock "flock/internal/core"
	"flock/internal/structures/set"
	"flock/internal/structures/settest"
)

func TestSuiteStandard(t *testing.T) {
	settest.Run(t, func(rt *flock.Runtime) set.Set { return New(false) })
}

func TestSuiteOptimizedFind(t *testing.T) {
	settest.Run(t, func(rt *flock.Runtime) set.Set { return New(true) })
}

func TestMarkedNodesEventuallyUnlinked(t *testing.T) {
	l := New(false)
	var p *flock.Proc // baselines ignore the proc
	for k := uint64(1); k <= 100; k++ {
		l.Insert(p, k, k)
	}
	for k := uint64(1); k <= 100; k += 2 {
		l.Delete(p, k)
	}
	// A full search for a large key walks the whole list, unlinking all
	// marked nodes on the way.
	l.Find(p, 1000)
	n := 0
	for c := l.head.next.Load().next; c != l.tail; c = c.next.Load().next {
		if c.next.Load().marked {
			t.Fatalf("marked node %d still physically linked after full search", c.k)
		}
		n++
	}
	if n != 50 {
		t.Fatalf("%d nodes remain, want 50", n)
	}
}

func TestOptFindDoesNotUnlink(t *testing.T) {
	l := New(true)
	var p *flock.Proc
	for k := uint64(1); k <= 20; k++ {
		l.Insert(p, k, k)
	}
	// Delete without the immediate-unlink fast path firing reliably:
	// mark node 10 manually to simulate a delete stalled before unlink.
	var victim *node
	for c := l.head.next.Load().next; c != l.tail; c = c.next.Load().next {
		if c.k == 10 {
			victim = c
		}
	}
	ref := victim.next.Load()
	victim.next.Store(&nref{next: ref.next, marked: true})

	if _, ok := l.Find(p, 10); ok {
		t.Fatalf("opt find returned a marked node")
	}
	// The marked node must still be physically linked (find didn't help).
	found := false
	for c := l.head.next.Load().next; c != l.tail; c = c.next.Load().next {
		if c == victim {
			found = true
		}
	}
	if !found {
		t.Fatalf("opt find unlinked a marked node")
	}
	// An update (insert) does clean it.
	l.Insert(p, 10, 99)
	for c := l.head.next.Load().next; c != l.tail; c = c.next.Load().next {
		if c == victim {
			t.Fatalf("insert's search did not unlink the marked node")
		}
	}
}

func TestConcurrentLinearizableCounts(t *testing.T) {
	for _, opt := range []bool{false, true} {
		l := New(opt)
		const workers = 8
		const keys = 16
		type tally struct{ ins, del [keys + 1]int64 }
		tallies := make([]tally, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w)*3 + 1))
				var p *flock.Proc
				for i := 0; i < 2000; i++ {
					k := uint64(rng.Intn(keys) + 1)
					if rng.Intn(2) == 0 {
						if l.Insert(p, k, k) {
							tallies[w].ins[k]++
						}
					} else {
						if l.Delete(p, k) {
							tallies[w].del[k]++
						}
					}
				}
			}(w)
		}
		wg.Wait()
		var p *flock.Proc
		for k := uint64(1); k <= keys; k++ {
			var ins, del int64
			for w := 0; w < workers; w++ {
				ins += tallies[w].ins[k]
				del += tallies[w].del[k]
			}
			_, present := l.Find(p, k)
			if diff := ins - del; diff != 0 && diff != 1 {
				t.Fatalf("opt=%v key %d: ins=%d del=%d", opt, k, ins, del)
			} else if (diff == 1) != present {
				t.Fatalf("opt=%v key %d: diff=%d present=%v", opt, k, diff, present)
			}
		}
	}
}
