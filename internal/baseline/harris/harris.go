// Package harris implements Harris's lock-free sorted linked list [29],
// the baseline the paper compares its lists against, plus the optimized
// variant of David et al. [16] in which find operations perform no helping
// (no unlinking of marked nodes), labelled harris_list_opt in Figure 7.
//
// Go adaptation: the original steals a mark bit from the next pointer;
// here next holds an immutable boxed (pointer, marked) pair that is
// replaced whole by CAS. Every successful CAS installs a fresh box, so
// the algorithm's ABA assumptions hold by construction (DESIGN.md S1).
package harris

import (
	"math"
	"sync/atomic"

	flock "flock/internal/core"
)

// nref is one immutable (successor, marked) state of a node's next field.
type nref struct {
	next   *node
	marked bool
}

type node struct {
	k, v uint64
	next atomic.Pointer[nref]
}

// List is Harris's lock-free list. The zero value is not usable; call New.
type List struct {
	head *node
	tail *node
	// optFind disables helping in Find: traversals skip marked nodes
	// without unlinking them (harris_list_opt).
	optFind bool
}

// New returns an empty list. optFind selects the read-only-find variant.
func New(optFind bool) *List {
	tail := &node{k: math.MaxUint64}
	tail.next.Store(&nref{})
	head := &node{k: 0}
	head.next.Store(&nref{next: tail})
	return &List{head: head, tail: tail, optFind: optFind}
}

// search returns adjacent nodes (left, right) with left.k < k <= right.k,
// unlinking any marked nodes in between (Harris's search).
func (l *List) search(k uint64) (left, right *node) {
	for {
		// Phase 1: locate left (last unmarked < k) and right (first
		// unmarked >= k), remembering left's observed next box.
		var leftRef *nref
		t := l.head
		tRef := t.next.Load()
		for {
			if !tRef.marked {
				left = t
				leftRef = tRef
			}
			t = tRef.next
			if t == l.tail {
				break
			}
			tRef = t.next.Load()
			if !(tRef.marked || t.k < k) {
				break
			}
		}
		right = t

		// Phase 2: already adjacent?
		if leftRef.next == right {
			if right != l.tail && right.next.Load().marked {
				continue // right got marked; retry
			}
			return left, right
		}
		// Phase 3: unlink the marked run between left and right.
		if left.next.CompareAndSwap(leftRef, &nref{next: right}) {
			if right != l.tail && right.next.Load().marked {
				continue
			}
			return left, right
		}
	}
}

// Find reports the value stored under k.
func (l *List) Find(p *flock.Proc, k uint64) (uint64, bool) {
	_ = p
	if l.optFind {
		// Read-only traversal: skip marked nodes without unlinking.
		cur := l.head.next.Load().next
		for cur != l.tail && cur.k < k {
			cur = cur.next.Load().next
		}
		if cur != l.tail && cur.k == k && !cur.next.Load().marked {
			return cur.v, true
		}
		return 0, false
	}
	_, right := l.search(k)
	if right != l.tail && right.k == k {
		return right.v, true
	}
	return 0, false
}

// Insert adds (k, v); false if already present.
func (l *List) Insert(p *flock.Proc, k, v uint64) bool {
	_ = p
	n := &node{k: k, v: v}
	for {
		left, right := l.search(k)
		if right != l.tail && right.k == k {
			return false
		}
		n.next.Store(&nref{next: right})
		old := left.next.Load()
		if old.marked || old.next != right {
			continue
		}
		if left.next.CompareAndSwap(old, &nref{next: n}) {
			return true
		}
	}
}

// Delete removes k; false if absent. Two phases: logically delete by
// marking, then physically unlink (or let a later search do it).
func (l *List) Delete(p *flock.Proc, k uint64) bool {
	_ = p
	for {
		left, right := l.search(k)
		if right == l.tail || right.k != k {
			return false
		}
		rRef := right.next.Load()
		if rRef.marked {
			continue // someone else is deleting it; re-search (helps unlink)
		}
		if !right.next.CompareAndSwap(rRef, &nref{next: rRef.next, marked: true}) {
			continue
		}
		// Best-effort immediate unlink.
		old := left.next.Load()
		if !old.marked && old.next == right {
			left.next.CompareAndSwap(old, &nref{next: rRef.next})
		} else {
			l.search(k)
		}
		return true
	}
}

// Keys returns unmarked keys in order (single-threaded use).
func (l *List) Keys(p *flock.Proc) []uint64 {
	_ = p
	var out []uint64
	for n := l.head.next.Load().next; n != l.tail; {
		ref := n.next.Load()
		if !ref.marked {
			out = append(out, n.k)
		}
		n = ref.next
	}
	return out
}
