// Package txn provides multi-key atomic transactions over a sharded
// kv.Store, built by *composing* lock-free locks — the capability the
// paper holds up as the decisive advantage of lock-based lock-free code
// over bespoke lock-free structures (§4): critical sections written as
// idempotent thunks nest, so a multi-lock operation is just a thunk
// that acquires more try-locks inside.
//
// A transaction touching keys on shards {s1 < s2 < ... < sk} acquires
// the per-shard locks (kv.Store.ShardLock) by nesting TryLock calls in
// ascending shard order and runs all of its reads and writes in the
// innermost thunk. The sort order makes lock acquisition conflict-
// serializable and livelock-resistant (no cycle of transactions each
// holding a lower lock while wanting a higher one), and the flock
// runtime makes the whole composition lock-free end to end: a thread
// that finds a shard lock held helps the holder complete its *entire*
// transaction — including the holder's nested acquisitions and
// structure operations on other shards — before retrying its own.
// Within a shard, structure operations keep taking their own fine-
// grained entry locks as further nesting levels, exactly as they do
// outside transactions.
//
// The store must route all shards through one flock.Runtime
// (kv.Options.SharedRuntime, which New sets): helpers of a composed
// thunk need one epoch manager protecting memory retired on any shard,
// and one mode flag all runs agree on.
//
// # Determinism rules for composed thunks
//
// Every rule that applies to a thunk applies to a whole transaction
// body, because the body *is* a thunk:
//
//   - A TxnFunc must be pure: helpers re-run it, and every run must
//     compute the same writes from the same (logged, therefore
//     identical) read values.
//   - Results escape a thunk only through idempotent channels. The
//     implementation publishes read values, insert counts and the
//     commit/abort decision through per-attempt atomic buffers that
//     every run overwrites with the same values.
//   - Key and value slices are defensively copied per operation:
//     a straggling helper may replay a completed transaction after the
//     caller has already reused its buffers, and a replay must see the
//     original, stable inputs (DESIGN.md S7/S11).
//
// Per-shard locking trades intra-shard concurrency for cross-shard
// atomicity; shard count recovers parallelism. The Blocking and
// NonAtomic modes keep the same API as ablation arms: Blocking runs the
// identical composition over test-and-set locks (no helping — a
// descheduled holder stalls every conflicting transaction), and
// NonAtomic issues per-key operations with no shard locks at all (the
// kv batch behaviour: torn multi-writes are observable).
package txn

import (
	"sync/atomic"

	flock "flock/internal/core"
	"flock/internal/kv"
	"flock/internal/kv/engine"
)

// Mode selects a store's concurrency-control arm.
type Mode int

// The three arms of the ext-txn ablation.
const (
	// LockFree composes per-shard lock-free try-locks: atomic,
	// deadlock-free by sort order, helpers complete stalled
	// transactions.
	LockFree Mode = iota
	// Blocking runs the same composed acquisition over blocking
	// test-and-set locks: atomic, but a stalled holder blocks every
	// conflicting transaction for its whole deschedule.
	Blocking
	// NonAtomic applies per-key operations without shard locks — the
	// naive baseline whose multi-key operations can be torn by
	// concurrent transactions.
	NonAtomic
)

func (m Mode) String() string {
	switch m {
	case LockFree:
		return "lockfree"
	case Blocking:
		return "blocking"
	default:
		return "nonatomic"
	}
}

// Options configures a Store.
type Options struct {
	// Shards is the kv shard count; values < 1 mean 1.
	Shards int
	// Mode selects the concurrency-control arm.
	Mode Mode
	// KeyRange is the kv sizing hint (see kv.Options.KeyRange).
	KeyRange uint64
	// NoPool disables the runtime's object pooling (ablation arm).
	NoPool bool
	// OptimisticReads forwards kv.Options.OptimisticReads: read-only
	// MultiGet (and Get) in LockFree mode then runs as an unlogged
	// version-vector-validated read (kv.Client.MultiGet) instead of a
	// read-only locked transaction. The validated read is atomic with
	// respect to committed transactions — the version vector is read
	// before, and validated after, all data loads, and transactions
	// release their ascending-nested shard locks inner-first — so the
	// conserved-sum guarantee against concurrent Transfers is
	// preserved (txn_test).
	OptimisticReads bool
}

// Store is a transactional wrapper around a sharded kv.Store. All
// shards share one runtime. Create per-goroutine handles with Register.
type Store struct {
	kv   *kv.Store
	mode Mode
}

// New builds a transactional store whose shards each hold a fresh
// structure from f (the same factories the harness registry and kv
// use). f must build a flock structure whose updates use simply-nested
// try-locks (leaftree, hashtable, lazylist, ...): transactions run the
// structure's operations inside a composed thunk, so those operations
// must be loggable, deterministically replayable thunk code. Non-flock
// baselines (which ignore the runtime) and strict-lock variants would
// silently break atomicity under helping — the harness refuses them
// (see its txnCapable set).
func New(f kv.Factory, opt Options) *Store {
	st := kv.New(f, kv.Options{
		Shards:          opt.Shards,
		Blocking:        opt.Mode == Blocking,
		NoPool:          opt.NoPool,
		KeyRange:        opt.KeyRange,
		SharedRuntime:   true,
		OptimisticReads: opt.OptimisticReads && opt.Mode == LockFree,
	})
	return &Store{kv: st, mode: opt.Mode}
}

// KV exposes the underlying store (prefill, monitoring, and the
// NonAtomic arm's batch path). Writing through it concurrently with
// transactions forfeits transactional isolation for those writes —
// single-key operations stay individually linearizable, but they do not
// serialize against multi-key transactions.
func (s *Store) KV() *kv.Store { return s.kv }

// Mode returns the store's concurrency-control arm.
func (s *Store) Mode() Mode { return s.mode }

// SetStallInjection forwards deschedule injection to the runtime (see
// flock.Runtime.SetStallInjection). Stalls strike while holding shard
// locks, which is precisely the event the three modes react to
// differently.
func (s *Store) SetStallInjection(n int) { s.kv.SetStallInjection(n) }

// Client is one goroutine's transactional handle. A Client must only be
// used by one goroutine at a time; Close releases it.
type Client struct {
	st  *Store
	kc  *kv.Client
	p   *flock.Proc
	eng *engine.Engine
	// seen is the footprint planner's scratch bitmap. It is reused
	// across operations — safe because it is only touched at top level,
	// never captured by a thunk closure (unlike the per-op key copies
	// and shard lists).
	seen []bool
}

// Register creates a client handle on the store.
func (s *Store) Register() *Client {
	kc := s.kv.Register()
	return &Client{
		st: s, kc: kc, p: kc.SharedProc(),
		eng:  s.kv.Engine(),
		seen: make([]bool, s.kv.NumShards()),
	}
}

// Close releases the client's runtime registration.
func (c *Client) Close() { c.kc.Close() }

// TxnFunc computes a transaction's writes from its reads: vals[i]/oks[i]
// is the value/presence of readKeys[i] at the transaction's
// serialization point. It returns one value per write key and whether
// to commit; on commit=false nothing is written and the transaction
// reports aborted. fn must be pure — in lock-free mode helper threads
// re-run it with the same inputs and every run must return the same
// outputs — and must not retain or mutate its argument slices.
type TxnFunc func(vals []uint64, oks []bool) (writeVals []uint64, commit bool)

// shardIndices maps keys to their shard indices (one hash per key per
// operation; thunk bodies and helper replays reuse the result instead
// of re-hashing). Thin delegate to the engine's footprint planner.
func (c *Client) shardIndices(keys []uint64) []int {
	return c.eng.ShardIndices(keys)
}

// shardsOf returns the sorted, deduplicated union of the precomputed
// shard-index sets — the lock acquisition order. The returned slice is
// fresh (it is captured by thunk closures); the scratch bitmap is not.
func (c *Client) shardsOf(idxSets ...[]int) []int {
	return c.eng.Group(c.seen, idxSets...)
}

// atomically runs the composed critical section through the engine's
// transactional arm (engine.Atomic): retried until the full ascending
// lock chain is acquired once, with jittered backoff between attempts
// and the obs depth/helped counters and TxnSpan trace emitted there.
// mkBody must return a fresh body per attempt, and the body must
// publish its results idempotently (per-attempt atomics): acquisition
// success means body's effects are durably logged, even if the physical
// completion was a helper's.
func (c *Client) atomically(shards []int, mkBody func() func(hp *flock.Proc)) {
	c.eng.Atomic(c.p, shards, mkBody)
}

// Txn runs a generic multi-key transaction: it reads readKeys, applies
// fn, and — if fn commits — upserts writeKeys[i] = writeVals[i], all at
// one serialization point. It returns the read values and presence
// flags observed at that point and whether the transaction committed.
// fn must return exactly len(writeKeys) values when committing.
//
// In NonAtomic mode the reads and writes are per-key operations with no
// mutual atomicity (the ablation baseline).
func (c *Client) Txn(readKeys, writeKeys []uint64, fn TxnFunc) (vals []uint64, oks []bool, committed bool) {
	if c.st.mode == NonAtomic {
		rv, ro := c.kc.GetBatch(readKeys)
		wv, commit := fn(rv, ro)
		if !commit {
			return rv, ro, false
		}
		if len(wv) != len(writeKeys) {
			panic("txn: TxnFunc returned wrong write count")
		}
		c.kc.PutBatch(writeKeys, wv)
		return rv, ro, true
	}
	// Defensive copies: thunk closures capture these, and straggling
	// helpers may replay them after the caller reused its slices. The
	// shard indices are precomputed once beside them so replays do not
	// re-hash every key.
	rk := append([]uint64(nil), readKeys...)
	wk := append([]uint64(nil), writeKeys...)
	rsh := c.shardIndices(rk)
	wsh := c.shardIndices(wk)
	shards := c.shardsOf(rsh, wsh)

	type buf struct {
		vals    []atomic.Uint64
		oks     []atomic.Uint32
		outcome atomic.Uint32 // 1 committed, 2 aborted
	}
	var last *buf
	c.atomically(shards, func() func(hp *flock.Proc) {
		b := &buf{vals: make([]atomic.Uint64, len(rk)), oks: make([]atomic.Uint32, len(rk))}
		last = b
		return func(hp *flock.Proc) {
			// Run-local scratch: every run recomputes identical values
			// from logged loads.
			rv := make([]uint64, len(rk))
			ro := make([]bool, len(rk))
			for i, k := range rk {
				v, ok := c.st.kv.ShardGet(rsh[i], hp, k)
				rv[i], ro[i] = v, ok
			}
			wv, commit := fn(rv, ro)
			for i := range rk {
				b.vals[i].Store(rv[i])
				if ro[i] {
					b.oks[i].Store(1)
				}
			}
			if !commit {
				b.outcome.Store(2)
				return
			}
			if len(wv) != len(wk) {
				panic("txn: TxnFunc returned wrong write count")
			}
			for i, k := range wk {
				c.st.kv.ShardPut(wsh[i], hp, k, wv[i])
			}
			b.outcome.Store(1)
		}
	})
	vals = make([]uint64, len(rk))
	oks = make([]bool, len(rk))
	for i := range rk {
		vals[i] = last.vals[i].Load()
		oks[i] = last.oks[i].Load() == 1
	}
	return vals, oks, last.outcome.Load() == 1
}

// commitTrue is the read-only TxnFunc.
func commitTrue([]uint64, []bool) ([]uint64, bool) { return nil, true }

// MultiGet returns a consistent snapshot of the keys: all values read
// at one serialization point (in atomic modes; in NonAtomic mode it is
// kv's shard-grouped batch read). With Options.OptimisticReads in
// LockFree mode the snapshot is taken by kv's optimistic
// version-vector-validated read instead of a read-only locked
// transaction — same atomicity, no shard locks, no logging on the
// validated path.
func (c *Client) MultiGet(keys []uint64) ([]uint64, []bool) {
	if c.st.mode == NonAtomic {
		return c.kc.GetBatch(keys)
	}
	if c.st.kv.OptimisticReads() {
		return c.kc.MultiGet(keys)
	}
	vals, oks, _ := c.Txn(keys, nil, commitTrue)
	return vals, oks
}

// MultiPut atomically upserts keys[i] -> vals[i] for every i (later
// duplicates win, as in input order) and returns how many keys were
// newly inserted. In NonAtomic mode it is kv's batch put.
func (c *Client) MultiPut(keys, vals []uint64) int {
	if len(keys) != len(vals) {
		panic("txn: MultiPut length mismatch")
	}
	if c.st.mode == NonAtomic {
		return c.kc.PutBatch(keys, vals)
	}
	k2 := append([]uint64(nil), keys...)
	v2 := append([]uint64(nil), vals...)
	ksh := c.shardIndices(k2)
	shards := c.shardsOf(ksh)
	var last *atomic.Uint64
	c.atomically(shards, func() func(hp *flock.Proc) {
		ins := &atomic.Uint64{}
		last = ins
		return func(hp *flock.Proc) {
			// The count is accumulated run-locally and published with a
			// Store (not Add): every run derives the same total from
			// logged upsert reports, so the store is idempotent where
			// an increment would double-count under helping.
			n := uint64(0)
			for i, k := range k2 {
				if c.st.kv.ShardPut(ksh[i], hp, k, v2[i]) {
					n++
				}
			}
			ins.Store(n)
		}
	})
	return int(last.Load())
}

// MultiCAS atomically compares-and-sets a key set: iff every keys[i] is
// present with value expect[i], it writes keys[i] = desired[i] for all
// i and returns true; otherwise it writes nothing and returns false.
func (c *Client) MultiCAS(keys, expect, desired []uint64) bool {
	if len(keys) != len(expect) || len(keys) != len(desired) {
		panic("txn: MultiCAS length mismatch")
	}
	e2 := append([]uint64(nil), expect...)
	d2 := append([]uint64(nil), desired...)
	_, _, committed := c.Txn(keys, keys, func(vals []uint64, oks []bool) ([]uint64, bool) {
		for i := range vals {
			if !oks[i] || vals[i] != e2[i] {
				return nil, false
			}
		}
		return d2, true
	})
	return committed
}

// Transfer atomically moves amount from account a to account b: it
// commits iff a and b are distinct keys, both present, and a's balance
// covers the amount. The conserved-sum invariant over concurrent
// Transfers is the suite's torn-write detector (txntest).
func (c *Client) Transfer(a, b, amount uint64) bool {
	if a == b {
		return false
	}
	_, _, committed := c.Txn([]uint64{a, b}, []uint64{a, b},
		func(vals []uint64, oks []bool) ([]uint64, bool) {
			if !oks[0] || !oks[1] || vals[0] < amount {
				return nil, false
			}
			return []uint64{vals[0] - amount, vals[1] + amount}, true
		})
	return committed
}

// Get is single-key read sugar: a one-key transaction in atomic modes
// (serialized against multi-key transactions), a plain kv read in
// NonAtomic mode.
func (c *Client) Get(k uint64) (uint64, bool) {
	if c.st.mode == NonAtomic {
		return c.kc.Get(k)
	}
	if c.st.kv.OptimisticReads() {
		// kv.Client.Get's optimistic arm validates against the shard
		// lock, so the read serializes against transactions just like
		// the one-key read-only transaction it replaces.
		return c.kc.Get(k)
	}
	vals, oks, _ := c.Txn([]uint64{k}, nil, commitTrue)
	return vals[0], oks[0]
}

// Put is single-key upsert sugar with the same serialization contract
// as Get; it reports whether k was newly inserted.
func (c *Client) Put(k, v uint64) bool {
	if c.st.mode == NonAtomic {
		return c.kc.Put(k, v)
	}
	return c.MultiPut([]uint64{k}, []uint64{v}) == 1
}
