// Package txntest is the conformance suite for txn.Store, mirroring
// kvtest for the KV layer: the transactional layer is verified the same
// way as the stores and structures it composes.
//
// The suite covers, per lock mode (lock-free, blocking) and shard
// count:
//   - sequential differential testing of MultiGet/MultiPut/MultiCAS/
//     Transfer/Txn against a map model,
//   - the conserved-sum invariant: concurrent Transfers over a fixed
//     account pool while concurrent full-pool MultiGet snapshots assert
//     that every snapshot sums to the initial total — the canonical
//     torn-write detector,
//   - transactional linearizability: recorded multi-key histories must
//     have a sequential witness (lincheck.CheckTx); on scannable stores
//     the history additionally interleaves whole-store Snapshot()
//     iterations, each recorded as one read-only transaction over the
//     entire key universe — a snapshot that observed a torn transaction
//     (or a state no serialization point ever held) has no witness,
//   - an oversubscribed pass (workers >> GOMAXPROCS), with deschedule
//     injection in lock-free mode so most transactions complete via
//     helping.
//
// The NonAtomic arm runs only the sequential model (it is correct
// single-threaded by construction); its concurrent torn writes are the
// ablation's point, not a bug, so nothing asserts their absence.
package txntest

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"flock/internal/kv"
	"flock/internal/lincheck"
	"flock/internal/txn"
)

// Modes lists the store arms the suite exercises for atomicity.
var Modes = []txn.Mode{txn.LockFree, txn.Blocking}

// Run executes the full suite against the factory.
func Run(t *testing.T, f kv.Factory) {
	t.Helper()
	for _, mode := range Modes {
		for _, shards := range []int{1, 4} {
			mode, shards := mode, shards
			opt := txn.Options{Shards: shards, Mode: mode, KeyRange: 4096}
			t.Run(fmt.Sprintf("%s/shards=%d", mode, shards), func(t *testing.T) {
				t.Run("SequentialModel", func(t *testing.T) { sequentialModel(t, f, opt) })
				t.Run("ConservedSum", func(t *testing.T) { conservedSum(t, f, opt, 0) })
				t.Run("LinTx", func(t *testing.T) { linTx(t, f, opt, 0) })
				t.Run("Oversubscribed", func(t *testing.T) { oversubscribed(t, f, opt) })
				if mode == txn.LockFree {
					t.Run("ConservedSumWithStalls", func(t *testing.T) { conservedSum(t, f, opt, 20) })
					t.Run("LinTxWithStalls", func(t *testing.T) { linTx(t, f, opt, 20) })
				}
			})
		}
	}
	t.Run("nonatomic/SequentialModel", func(t *testing.T) {
		sequentialModel(t, f, txn.Options{Shards: 4, Mode: txn.NonAtomic, KeyRange: 4096})
	})
}

// sequentialModel drives one client through a scripted mix of every
// transactional operation and compares all return values against a map.
func sequentialModel(t *testing.T, f kv.Factory, opt txn.Options) {
	st := txn.New(f, opt)
	c := st.Register()
	defer c.Close()
	model := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(31))
	const keySpace = 200
	key := func() uint64 { return uint64(rng.Intn(keySpace) + 1) }

	for i := 0; i < 1500; i++ {
		switch rng.Intn(5) {
		case 0: // MultiPut, with occasional in-batch duplicates
			n := rng.Intn(4) + 1
			keys := make([]uint64, n)
			vals := make([]uint64, n)
			for j := range keys {
				keys[j], vals[j] = key(), rng.Uint64()
			}
			wantIns := 0
			seen := map[uint64]bool{}
			for _, k := range keys {
				if _, had := model[k]; !had && !seen[k] {
					wantIns++
				}
				seen[k] = true
			}
			if got := c.MultiPut(keys, vals); got != wantIns {
				t.Fatalf("op %d: MultiPut inserted %d, want %d", i, got, wantIns)
			}
			for j, k := range keys {
				model[k] = vals[j] // input order: later duplicates win
			}
		case 1: // MultiGet
			n := rng.Intn(5) + 1
			keys := make([]uint64, n)
			for j := range keys {
				keys[j] = key()
			}
			vals, oks := c.MultiGet(keys)
			for j, k := range keys {
				want, had := model[k]
				if oks[j] != had || (had && vals[j] != want) {
					t.Fatalf("op %d: MultiGet[%d] key %d = (%d,%v), model (%d,%v)",
						i, j, k, vals[j], oks[j], want, had)
				}
			}
		case 2: // MultiCAS, half with correct expectations
			n := rng.Intn(3) + 1
			keys := make([]uint64, n)
			expect := make([]uint64, n)
			desired := make([]uint64, n)
			for j := range keys {
				keys[j] = key()
				desired[j] = rng.Uint64()
				if v, had := model[keys[j]]; had && rng.Intn(2) == 0 {
					expect[j] = v
				} else {
					expect[j] = rng.Uint64() | 1<<63 // unlikely to match
				}
			}
			// CAS reads all keys at one serialization point, so
			// duplicate keys compare against the same pre-state.
			want := true
			for j, k := range keys {
				v, had := model[k]
				if !had || v != expect[j] {
					want = false
					break
				}
			}
			got := c.MultiCAS(keys, expect, desired)
			if got != want {
				t.Fatalf("op %d: MultiCAS = %v, want %v", i, got, want)
			}
			if got {
				for j, k := range keys {
					model[k] = desired[j]
				}
			}
		case 3: // Transfer
			a, b := key(), key()
			amt := uint64(rng.Intn(50))
			va, hada := model[a]
			vb, hadb := model[b]
			want := a != b && hada && hadb && va >= amt
			if got := c.Transfer(a, b, amt); got != want {
				t.Fatalf("op %d: Transfer(%d,%d,%d) = %v, want %v", i, a, b, amt, got, want)
			}
			if want {
				model[a] = va - amt
				model[b] = vb + amt
			}
		default: // generic Txn: conditional increment of a read set
			n := rng.Intn(3) + 1
			keys := make([]uint64, n)
			for j := range keys {
				keys[j] = key()
			}
			vals, oks, committed := c.Txn(keys, keys, func(vals []uint64, oks []bool) ([]uint64, bool) {
				out := make([]uint64, len(vals))
				for j := range vals {
					out[j] = vals[j] + 1 // upsert: absent becomes 1
				}
				return out, true
			})
			if !committed {
				t.Fatalf("op %d: unconditional Txn did not commit", i)
			}
			// Duplicate keys read one pre-state; later writes win.
			pre := map[uint64]uint64{}
			for j, k := range keys {
				want, had := model[k]
				if oks[j] != had || (had && vals[j] != want) {
					t.Fatalf("op %d: Txn read[%d] key %d = (%d,%v), model (%d,%v)",
						i, j, k, vals[j], oks[j], want, had)
				}
				pre[k] = want
			}
			for _, k := range keys {
				model[k] = pre[k] + 1
			}
		}
	}
	for k := uint64(1); k <= keySpace; k++ {
		want, had := model[k]
		v, ok := c.Get(k)
		if ok != had || (had && v != want) {
			t.Fatalf("final sweep: key %d = (%d,%v), model (%d,%v)", k, v, ok, want, had)
		}
	}
}

// conservedSum is the torn-write detector: a fixed pool of accounts,
// concurrent random Transfers, and concurrent full-pool snapshots that
// must each observe the exact initial total.
func conservedSum(t *testing.T, f kv.Factory, opt txn.Options, stallEvery int) {
	st := txn.New(f, opt)
	const accounts = 12
	const initial = uint64(1000)
	const transferWorkers = 6
	const snapshotWorkers = 2
	const transfers = 400
	const snapshots = 120

	setup := st.Register()
	keys := make([]uint64, accounts)
	vals := make([]uint64, accounts)
	for i := range keys {
		keys[i] = uint64(i + 1)
		vals[i] = initial
	}
	if ins := setup.MultiPut(keys, vals); ins != accounts {
		t.Fatalf("setup inserted %d accounts, want %d", ins, accounts)
	}
	setup.Close()
	st.SetStallInjection(stallEvery)
	const total = accounts * initial

	var wg sync.WaitGroup
	var failed atomic.Bool
	for w := 0; w < transferWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := st.Register()
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(w)*131 + 17))
			for i := 0; i < transfers && !failed.Load(); i++ {
				a := uint64(rng.Intn(accounts) + 1)
				b := uint64(rng.Intn(accounts) + 1)
				c.Transfer(a, b, uint64(rng.Intn(200)+1))
			}
		}(w)
	}
	for w := 0; w < snapshotWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := st.Register()
			defer c.Close()
			for i := 0; i < snapshots && !failed.Load(); i++ {
				vals, oks := c.MultiGet(keys)
				var sum uint64
				for j := range vals {
					if !oks[j] {
						failed.Store(true)
						t.Errorf("snapshot %d: account %d missing", i, keys[j])
						return
					}
					sum += vals[j]
				}
				if sum != total {
					failed.Store(true)
					t.Errorf("snapshot %d: sum %d, want %d (torn transfer observed)", i, sum, total)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	c := st.Register()
	defer c.Close()
	vals2, oks2 := c.MultiGet(keys)
	var sum uint64
	for j := range vals2 {
		if !oks2[j] {
			t.Fatalf("final: account %d missing", keys[j])
		}
		sum += vals2[j]
	}
	if sum != total {
		t.Fatalf("final sum %d, want %d", sum, total)
	}
}

// linTx records a contended multi-worker transactional history and
// verifies a sequential witness exists (lincheck.CheckTx).
func linTx(t *testing.T, f kv.Factory, opt txn.Options, stallEvery int) {
	st := txn.New(f, opt)
	st.SetStallInjection(stallEvery)
	const workers = 5
	const keys = 5
	opsPer := 60
	if stallEvery > 0 {
		opsPer = 30
	}

	var clock atomic.Int64
	hists := make([][]lincheck.TxOp, workers)

	// Snapshot observer: on scannable stores, whole-store Snapshot()
	// iterations run concurrently with the transaction mix and enter the
	// history as read-only transactions over the full key universe
	// (absent keys included, so the snapshot constrains the entire map
	// state at its serialization point). All writers here are
	// transactional — they hold shard locks — which is exactly the class
	// of writers Snapshot() is atomic against.
	var snapHist []lincheck.TxOp
	var snapWG sync.WaitGroup
	workersDone := make(chan struct{})
	if st.KV().Scannable() {
		snapWG.Add(1)
		go func() {
			defer snapWG.Done()
			for i := 0; ; i++ {
				select {
				case <-workersDone:
					if i > 0 {
						return // at least one snapshot overlapped the storm
					}
				default:
				}
				s := clock.Add(1)
				sn := st.KV().Snapshot()
				got := map[uint64]uint64{}
				sn.Iterate(0, math.MaxUint64, func(k, v uint64) bool {
					got[k] = v
					return true
				})
				sn.Close()
				e := clock.Add(1)
				rd := make([]lincheck.KVObs, 0, keys)
				for k := uint64(1); k <= keys; k++ {
					v, ok := got[k]
					rd = append(rd, lincheck.KVObs{Key: k, Val: v, Ok: ok})
				}
				snapHist = append(snapHist, lincheck.TxOp{Reads: rd, Start: s, End: e, Worker: workers})
			}
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := st.Register()
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(w)*977 + 3))
			rec := func(op lincheck.TxOp) { hists[w] = append(hists[w], op) }
			key := func() uint64 { return uint64(rng.Intn(keys) + 1) }
			for i := 0; i < opsPer; i++ {
				switch rng.Intn(4) {
				case 0: // MultiPut of two keys
					ks := []uint64{key(), key()}
					vs := []uint64{uint64(w)<<32 | uint64(i)<<2, uint64(w)<<32 | uint64(i)<<2 | 1}
					s := clock.Add(1)
					c.MultiPut(ks, vs)
					e := clock.Add(1)
					var wr []lincheck.KVObs
					for j := range ks {
						wr = append(wr, lincheck.KVObs{Key: ks[j], Val: vs[j]})
					}
					rec(lincheck.TxOp{Writes: wr, Start: s, End: e, Worker: w})
				case 1: // MultiGet snapshot of three keys
					ks := []uint64{key(), key(), key()}
					s := clock.Add(1)
					vals, oks := c.MultiGet(ks)
					e := clock.Add(1)
					var rd []lincheck.KVObs
					for j := range ks {
						rd = append(rd, lincheck.KVObs{Key: ks[j], Val: vals[j], Ok: oks[j]})
					}
					rec(lincheck.TxOp{Reads: rd, Start: s, End: e, Worker: w})
				case 2: // MultiCAS guessing current values
					ks := []uint64{key()}
					pre, _ := c.MultiGet(ks) // hint only; may be stale by CAS time
					expect := []uint64{pre[0]}
					desired := []uint64{uint64(w)<<32 | uint64(i)<<2 | 2}
					s := clock.Add(1)
					ok := c.MultiCAS(ks, expect, desired)
					e := clock.Add(1)
					if ok {
						rec(lincheck.TxOp{
							Reads:  []lincheck.KVObs{{Key: ks[0], Val: expect[0], Ok: true}},
							Writes: []lincheck.KVObs{{Key: ks[0], Val: desired[0]}},
							Start:  s, End: e, Worker: w,
						})
					} else {
						rec(lincheck.TxOp{
							Reads:     []lincheck.KVObs{{Key: ks[0], Val: expect[0], Ok: true}},
							FailedCAS: true,
							Start:     s, End: e, Worker: w,
						})
					}
				default: // transfer-shaped generic Txn, recording its reads
					a, b := key(), key()
					if a == b {
						continue
					}
					const amt = 1
					s := clock.Add(1)
					vals, oks, committed := c.Txn([]uint64{a, b}, []uint64{a, b},
						func(vals []uint64, oks []bool) ([]uint64, bool) {
							if !oks[0] || !oks[1] || vals[0] < amt {
								return nil, false
							}
							return []uint64{vals[0] - amt, vals[1] + amt}, true
						})
					e := clock.Add(1)
					rd := []lincheck.KVObs{
						{Key: a, Val: vals[0], Ok: oks[0]},
						{Key: b, Val: vals[1], Ok: oks[1]},
					}
					op := lincheck.TxOp{Reads: rd, Start: s, End: e, Worker: w}
					if committed {
						op.Writes = []lincheck.KVObs{
							{Key: a, Val: vals[0] - amt},
							{Key: b, Val: vals[1] + amt},
						}
					}
					rec(op)
				}
			}
		}(w)
	}
	wg.Wait()
	close(workersDone)
	snapWG.Wait()
	var all []lincheck.TxOp
	for _, h := range hists {
		all = append(all, h...)
	}
	all = append(all, snapHist...)
	if res := lincheck.CheckTx(all); !res.Ok {
		t.Fatalf("history of %d transactions (%d snapshots): %v", len(all), len(snapHist), res)
	}
}

// oversubscribed runs many more clients than GOMAXPROCS doing transfers
// over a shared account pool (plus snapshot readers), with deschedule
// injection in lock-free mode, and checks the conserved sum at the end.
func oversubscribed(t *testing.T, f kv.Factory, opt txn.Options) {
	st := txn.New(f, opt)
	const accounts = 8
	const initial = uint64(500)

	setup := st.Register()
	keys := make([]uint64, accounts)
	vals := make([]uint64, accounts)
	for i := range keys {
		keys[i], vals[i] = uint64(i+1), initial
	}
	setup.MultiPut(keys, vals)
	setup.Close()
	if opt.Mode == txn.LockFree {
		st.SetStallInjection(40)
	}

	const workers = 20
	const ops = 120
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := st.Register()
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(w)*59 + 11))
			for i := 0; i < ops; i++ {
				if rng.Intn(5) == 0 {
					c.MultiGet(keys)
					continue
				}
				a := uint64(rng.Intn(accounts) + 1)
				b := uint64(rng.Intn(accounts) + 1)
				c.Transfer(a, b, uint64(rng.Intn(100)+1))
			}
		}(w)
	}
	wg.Wait()

	c := st.Register()
	defer c.Close()
	vals2, oks2 := c.MultiGet(keys)
	var sum uint64
	for j := range vals2 {
		if !oks2[j] {
			t.Fatalf("account %d missing after transfers", keys[j])
		}
		sum += vals2[j]
	}
	if want := accounts * initial; sum != uint64(want) {
		t.Fatalf("sum %d after oversubscribed transfers, want %d", sum, want)
	}
}
