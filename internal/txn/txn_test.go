package txn_test

import (
	"fmt"
	"testing"

	flock "flock/internal/core"
	"flock/internal/harness"
	"flock/internal/kv"
	"flock/internal/obs"
	"flock/internal/structures/abtree"
	"flock/internal/structures/arttree"
	"flock/internal/structures/couplist"
	"flock/internal/structures/dlist"
	"flock/internal/structures/hashtable"
	"flock/internal/structures/lazylist"
	"flock/internal/structures/leaftreap"
	"flock/internal/structures/leaftree"
	"flock/internal/structures/set"
	"flock/internal/txn"
	"flock/internal/txn/txntest"
)

var (
	leaftreeFactory  kv.Factory = func(rt *flock.Runtime, _ uint64) set.Set { return leaftree.New(rt) }
	hashtableFactory kv.Factory = func(rt *flock.Runtime, r uint64) set.Set { return hashtable.New(rt, int(r)) }
)

// harnessFactory mirrors the harness registry's txn-capable factories
// (the registry itself is unexported; these must stay in sync with
// harness.txnCapable, which TestRunTimedTxn's guard test covers from
// the other side).
func harnessFactory(name string) (kv.Factory, error) {
	switch name {
	case "lazylist":
		return func(rt *flock.Runtime, _ uint64) set.Set { return lazylist.New(rt) }, nil
	case "dlist":
		return func(rt *flock.Runtime, _ uint64) set.Set { return dlist.New(rt) }, nil
	case "couplist":
		return func(rt *flock.Runtime, _ uint64) set.Set { return couplist.New(rt) }, nil
	case "leaftreap":
		return func(rt *flock.Runtime, _ uint64) set.Set { return leaftreap.New(rt) }, nil
	case "abtree":
		return func(rt *flock.Runtime, _ uint64) set.Set { return abtree.New(rt) }, nil
	case "arttree":
		return func(rt *flock.Runtime, _ uint64) set.Set { return arttree.New(rt) }, nil
	default:
		return nil, fmt.Errorf("no factory for %q", name)
	}
}

// The conformance suite runs over both native-upsert structures the
// acceptance criteria name; together with the mode × shard matrix
// inside, this is the multi-key atomicity verification.
func TestConformanceLeaftree(t *testing.T)  { txntest.Run(t, leaftreeFactory) }
func TestConformanceHashtable(t *testing.T) { txntest.Run(t, hashtableFactory) }

// Every other structure the harness's txnCapable set vouches for runs
// the same suite: vouching without verification would let a structure
// whose operations do not replay deterministically inside a composed
// thunk (couplist's hand-over-hand early release is the riskiest
// pattern) tear transactions silently. These use kv's delete-then-
// insert upsert fallback, which is atomic here because it runs
// entirely inside the shard-lock thunk.
func TestConformanceOtherCapableStructures(t *testing.T) {
	// Completeness first (cheap, runs even in -short mode): every
	// structure the harness vouches for must be covered by a suite run
	// in this file — here or in the dedicated leaftree/hashtable tests.
	covered := map[string]bool{"leaftree": true, "hashtable": true}
	others := []string{"lazylist", "dlist", "couplist", "leaftreap", "abtree", "arttree"}
	for _, name := range others {
		covered[name] = true
	}
	for _, name := range harness.TxnCapableStructures() {
		if !covered[name] {
			t.Fatalf("harness vouches for %q as txn-capable but no conformance suite covers it", name)
		}
	}
	if testing.Short() {
		// The CI race job runs -short: racing all six suites multiplies
		// its time ~25x while exercising the same protocol code the
		// leaftree/hashtable race passes already cover. The full (non
		// -short) test step still runs them all.
		t.Skip("six extra structure suites skipped in -short mode")
	}
	for _, name := range others {
		name := name
		f, err := harnessFactory(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) { txntest.Run(t, f) })
	}
}

func newStore(mode txn.Mode, shards int) *txn.Store {
	return txn.New(leaftreeFactory, txn.Options{Shards: shards, Mode: mode, KeyRange: 1024})
}

func TestMultiPutDuplicatesLastWins(t *testing.T) {
	for _, mode := range []txn.Mode{txn.LockFree, txn.Blocking, txn.NonAtomic} {
		st := newStore(mode, 4)
		c := st.Register()
		ins := c.MultiPut([]uint64{7, 7, 7}, []uint64{1, 2, 3})
		if ins != 1 {
			t.Errorf("%v: inserted %d, want 1 (duplicates are one key)", mode, ins)
		}
		if v, ok := c.Get(7); !ok || v != 3 {
			t.Errorf("%v: key 7 = (%d,%v), want (3,true): input order must win", mode, v, ok)
		}
		c.Close()
	}
}

func TestMultiCASRequiresPresence(t *testing.T) {
	st := newStore(txn.LockFree, 4)
	c := st.Register()
	defer c.Close()
	if c.MultiCAS([]uint64{5}, []uint64{0}, []uint64{1}) {
		t.Fatal("MultiCAS succeeded on an absent key")
	}
	c.Put(5, 10)
	if c.MultiCAS([]uint64{5}, []uint64{9}, []uint64{1}) {
		t.Fatal("MultiCAS succeeded with a wrong expectation")
	}
	if !c.MultiCAS([]uint64{5}, []uint64{10}, []uint64{11}) {
		t.Fatal("MultiCAS failed with the correct expectation")
	}
	if v, _ := c.Get(5); v != 11 {
		t.Fatalf("key 5 = %d after CAS, want 11", v)
	}
}

func TestTransferRules(t *testing.T) {
	st := newStore(txn.LockFree, 4)
	c := st.Register()
	defer c.Close()
	c.MultiPut([]uint64{1, 2}, []uint64{100, 0})
	if c.Transfer(1, 1, 10) {
		t.Fatal("self-transfer succeeded")
	}
	if c.Transfer(1, 3, 10) {
		t.Fatal("transfer to an absent account succeeded")
	}
	if c.Transfer(1, 2, 101) {
		t.Fatal("overdraft transfer succeeded")
	}
	if !c.Transfer(1, 2, 100) {
		t.Fatal("covered transfer failed")
	}
	va, _ := c.Get(1)
	vb, _ := c.Get(2)
	if va != 0 || vb != 100 {
		t.Fatalf("balances (%d,%d) after transfer, want (0,100)", va, vb)
	}
}

func TestTxnAbortWritesNothing(t *testing.T) {
	st := newStore(txn.LockFree, 4)
	c := st.Register()
	defer c.Close()
	c.Put(1, 5)
	vals, oks, committed := c.Txn([]uint64{1}, []uint64{1, 2},
		func([]uint64, []bool) ([]uint64, bool) { return nil, false })
	if committed {
		t.Fatal("aborting Txn reported committed")
	}
	if !oks[0] || vals[0] != 5 {
		t.Fatalf("aborting Txn observed (%d,%v), want (5,true)", vals[0], oks[0])
	}
	if _, ok := c.Get(2); ok {
		t.Fatal("aborted Txn wrote key 2")
	}
}

func TestSharedRuntimeRequired(t *testing.T) {
	// The txn store must route all shards through one runtime; this is
	// what makes cross-shard helping and reclamation sound.
	st := newStore(txn.LockFree, 4)
	if st.KV().Runtime() == nil {
		t.Fatal("txn store built without a shared runtime")
	}
	// And a per-shard-runtime kv store must refuse SharedProc.
	plain := kv.New(leaftreeFactory, kv.Options{Shards: 2})
	pc := plain.Register()
	defer pc.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("SharedProc on a per-shard-runtime store did not panic")
		}
	}()
	pc.SharedProc()
}

func TestModeString(t *testing.T) {
	if txn.LockFree.String() != "lockfree" || txn.Blocking.String() != "blocking" || txn.NonAtomic.String() != "nonatomic" {
		t.Fatalf("mode names: %v %v %v", txn.LockFree, txn.Blocking, txn.NonAtomic)
	}
}

// TestMetricsTxnDepthAndHelping pins the transactional obs wiring
// (DESIGN.md S14): every committed transaction lands in exactly one
// depth-histogram bucket keyed by its distinct-shard count, and the
// bucket totals equal the commit count.
func TestMetricsTxnDepthAndHelping(t *testing.T) {
	prev := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(prev)

	st := txn.New(leaftreeFactory, txn.Options{Shards: 8, KeyRange: 1 << 10})
	c := st.Register()
	defer c.Close()
	s0 := obs.Snapshot()

	// Single-key writes: depth exactly 1.
	const singles = 50
	for k := uint64(0); k < singles; k++ {
		c.MultiPut([]uint64{k}, []uint64{k})
	}
	// Transfers: 2 keys on 1 or 2 distinct shards.
	const pairs = 30
	for k := uint64(0); k < pairs; k++ {
		c.MultiPut([]uint64{2 * k, 2*k + 1}, []uint64{7, 7})
	}
	d := obs.Snapshot().Sub(s0)
	var total uint64
	for _, b := range []obs.Counter{
		obs.TxnDepth1, obs.TxnDepth2, obs.TxnDepth3, obs.TxnDepth4,
		obs.TxnDepth5to8, obs.TxnDepth9Plus,
	} {
		total += d.Get(b)
	}
	if total != singles+pairs {
		t.Errorf("depth histogram sums to %d, want %d committed transactions", total, singles+pairs)
	}
	if d.Get(obs.TxnDepth1) < singles {
		t.Errorf("TxnDepth1 = %d, want >= %d (every single-key txn)", d.Get(obs.TxnDepth1), singles)
	}
	if d.Get(obs.TxnDepth3) != 0 || d.Get(obs.TxnDepth9Plus) != 0 {
		t.Errorf("2-key transactions filled depth>=3 buckets: d3=%d d9+=%d",
			d.Get(obs.TxnDepth3), d.Get(obs.TxnDepth9Plus))
	}
	// Uncontended single client: nothing should have been helped.
	if h := d.Get(obs.TxnHelped); h != 0 {
		t.Errorf("TxnHelped = %d on an uncontended client, want 0", h)
	}
}
