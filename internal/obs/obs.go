// Package obs is the repository's runtime-metrics layer (DESIGN.md
// S14): cheap event counters for the mechanisms the paper's figures are
// explained by — helping, thunk replays, install-CAS retries, pool
// traffic, epoch reclamation lag — kept out of every hot path's way.
//
// The design is write-local, read-global:
//
//   - Each worker context (a flock.Proc) owns a cache-padded Block and
//     only ever writes its own, so counter updates never contend on a
//     shared cache line.
//   - Aggregation is pull-based: Snapshot() sums all live blocks plus
//     the folded totals of released ones. Nothing is pushed anywhere on
//     the data path; a sampler that wants a time series just calls
//     Snapshot at its own cadence and diffs.
//   - Everything is gated by one package-level flag. Disabled (the
//     default), an instrumented call site costs a single load of a cold
//     bool and a predictable branch, and allocates nothing; there is no
//     per-Runtime configuration to thread through the stack.
//
// Counters count physical events, not logical operations: a thunk that
// is replayed by three helpers performs (and therefore counts) its pool
// allocations three times, because three allocations really happened.
// The one place attribution is made exact is thunk completion: every
// completed critical section is claimed by exactly one run (a CAS on
// the descriptor), so OwnCompletions + HelpsGiven equals the number of
// committed thunks, and HelpsGiven equals HelpsReceived, as long as the
// flag does not flip mid-window (the conservation law pinned by
// internal/core's metrics tests).
package obs

import (
	"sync"
	"sync/atomic"
)

// Counter indexes one event counter within a Block.
type Counter int

// The counter set. Core lock events come first, then pool, epoch,
// optimistic-read and transactional events.
const (
	// AcquiresLF counts successful top-level lock-free acquisitions
	// (TryLock and strict Lock): committed thunks, counted by the owner.
	AcquiresLF Counter = iota
	// AcquiresBlocking counts successful outermost blocking-mode
	// acquisitions.
	AcquiresBlocking
	// HelpsGiven counts thunks this worker completed on behalf of
	// another worker (it won the completion claim on a descriptor it
	// did not create).
	HelpsGiven
	// HelpsReceived counts this worker's own committed thunks that were
	// completed by someone else's run (counted at top level only, where
	// the owner is outside any log and the count cannot be replayed).
	HelpsReceived
	// OwnCompletions counts thunks whose completion claim was won by
	// the worker that created them.
	OwnCompletions
	// ThunkReplays counts runs of a descriptor that lost the completion
	// claim — wasted (but harmless and expected) duplicated execution,
	// the price of helping.
	ThunkReplays
	// InstallCASFails counts failed attempts to install an acquisition
	// into a lock word (the CAS-retry traffic of contended locks).
	InstallCASFails
	// StrictSpins counts waiting iterations inside strict Lock loops:
	// helping rounds in lock-free mode, TTAS spin iterations in
	// blocking mode.
	StrictSpins
	// OptRestarts and OptEscalations are the optimistic-read counters
	// (failed unlogged attempts, and fallbacks to the logged path),
	// migrated here off flock.Runtime.
	OptRestarts
	OptEscalations
	// PoolHits/PoolMisses count freelist allocations vs fresh ones
	// (descriptors, spill log blocks, mboxes); PoolSpills counts
	// objects dropped to the GC because a freelist or the pending list
	// was at capacity.
	PoolHits
	PoolMisses
	PoolSpills
	// EpochAdvanceTries/EpochAdvances count epoch.Manager.TryAdvance
	// calls and the subset that moved the global epoch.
	EpochAdvanceTries
	EpochAdvances
	// EpochReclaimBatches counts reclaimed retire batches, and
	// EpochReclaimLagEpochs sums, over those batches, the number of
	// epochs between retirement and reclamation — their ratio is the
	// mean reclamation lag, the "how long does freed memory wait"
	// figure for the pools.
	EpochReclaimBatches
	EpochReclaimLagEpochs
	// TxnDepth* histogram the number of distinct shard locks acquired
	// per committed transaction (nested-acquire depth).
	TxnDepth1
	TxnDepth2
	TxnDepth3
	TxnDepth4
	TxnDepth5to8
	TxnDepth9Plus
	// TxnHelped counts committed transactions in which at least one run
	// of the composed thunk executed on a worker other than the owner —
	// transactions a helper carried (partly or wholly) to completion.
	TxnHelped

	// NumCounters is the Block size; it must stay last.
	NumCounters
)

// counterNames must match the constant order above.
var counterNames = [NumCounters]string{
	"acquires_lf", "acquires_blocking",
	"helps_given", "helps_received", "own_completions", "thunk_replays",
	"install_cas_fails", "strict_spins",
	"opt_restarts", "opt_escalations",
	"pool_hits", "pool_misses", "pool_spills",
	"epoch_advance_tries", "epoch_advances",
	"epoch_reclaim_batches", "epoch_reclaim_lag_epochs",
	"txn_depth_1", "txn_depth_2", "txn_depth_3", "txn_depth_4",
	"txn_depth_5_8", "txn_depth_9_plus",
	"txn_helped",
}

// String returns the counter's snake_case name (the JSONL field name).
func (c Counter) String() string {
	if c < 0 || c >= NumCounters {
		return "unknown"
	}
	return counterNames[c]
}

// DepthCounter maps a transaction's distinct-shard-lock count to its
// histogram bucket.
func DepthCounter(depth int) Counter {
	switch {
	case depth <= 1:
		return TxnDepth1
	case depth == 2:
		return TxnDepth2
	case depth == 3:
		return TxnDepth3
	case depth == 4:
		return TxnDepth4
	case depth <= 8:
		return TxnDepth5to8
	default:
		return TxnDepth9Plus
	}
}

// enabled is the package-level gate. It is deliberately global rather
// than per-Runtime: the hot-path cost of the disabled layer is one load
// of this cold bool, and a global flag needs no plumbing through every
// constructor in the stack.
var enabled atomic.Bool

// On reports whether metrics collection is enabled. Call sites in hot
// paths gate on it before doing any counting work.
func On() bool { return enabled.Load() }

// Enabled is a readability alias for On (for save/restore callers).
func Enabled() bool { return enabled.Load() }

// SetEnabled flips metrics collection. Flipping it while a measured
// window is open breaks that window's conservation laws (events started
// under one setting complete under the other); samplers enable before
// their window and restore after.
func SetEnabled(v bool) { enabled.Store(v) }

// pad64 rounds the counter array up to a cache-line multiple so two
// Blocks never share a line. Deliberately 1..64 rather than 0..63: a
// zero-length trailing field makes Go grow the struct by a pointer
// anyway (to keep interior pointers off the next object), which would
// break the alignment the pad exists to provide.
const pad64 = 64 - (NumCounters*8)%64

// Block is one worker's counter block. A Block must only be written by
// its owning worker (writes are atomic solely so Snapshot may read them
// concurrently); create one with NewBlock and fold it away with Release
// when the worker unregisters.
type Block struct {
	c [NumCounters]atomic.Uint64
	_ [pad64]byte
}

// Inc adds one to counter k when metrics are enabled.
func (b *Block) Inc(k Counter) {
	if !enabled.Load() {
		return
	}
	b.c[k].Add(1)
}

// Add adds n to counter k when metrics are enabled.
func (b *Block) Add(k Counter, n uint64) {
	if n == 0 || !enabled.Load() {
		return
	}
	b.c[k].Add(n)
}

// Load returns the block's own count for k (tests and diagnostics; use
// Snapshot for aggregates).
func (b *Block) Load(k Counter) uint64 { return b.c[k].Load() }

// registry holds every live Block (copy-on-write, so Snapshot scans
// without locking) plus the folded totals of released ones.
var registry struct {
	mu      sync.Mutex
	blocks  atomic.Pointer[[]*Block]
	retired [NumCounters]atomic.Uint64
}

// NewBlock allocates and registers a fresh Block.
func NewBlock() *Block {
	b := &Block{}
	registry.mu.Lock()
	var old []*Block
	if p := registry.blocks.Load(); p != nil {
		old = *p
	}
	next := make([]*Block, len(old), len(old)+1)
	copy(next, old)
	next = append(next, b)
	registry.blocks.Store(&next)
	registry.mu.Unlock()
	return b
}

// Release folds the block's counts into the retired totals and drops it
// from the registry, so long-lived processes that register and release
// many workers do not grow the block list without bound. The fold
// happens before the unlink, so a concurrent Snapshot can transiently
// double-count a releasing block but never lose its counts (Counts.Sub
// saturates, so a transient overcount cannot underflow a delta). The
// block must not be written after Release.
func (b *Block) Release() {
	registry.mu.Lock()
	for i := range b.c {
		registry.retired[i].Add(b.c[i].Load())
	}
	var old []*Block
	if p := registry.blocks.Load(); p != nil {
		old = *p
	}
	next := make([]*Block, 0, len(old))
	for _, o := range old {
		if o != b {
			next = append(next, o)
		}
	}
	registry.blocks.Store(&next)
	registry.mu.Unlock()
}

// global is the shared block for rare events with no natural per-worker
// owner (epoch advancement, orphan reclamation). Contended in theory,
// but its events fire orders of magnitude less often than lock events.
var global = NewBlock()

// Global returns the shared unattributed block.
func Global() *Block { return global }

// Counts is an aggregated counter vector: what Snapshot returns.
type Counts [NumCounters]uint64

// Get returns the count for k.
func (c Counts) Get(k Counter) uint64 { return c[k] }

// Sub returns c - old elementwise, saturating at zero (a snapshot taken
// while a block was being released can transiently exceed a later one).
func (c Counts) Sub(old Counts) Counts {
	var out Counts
	for i := range c {
		if c[i] > old[i] {
			out[i] = c[i] - old[i]
		}
	}
	return out
}

// Add returns c + o elementwise.
func (c Counts) Add(o Counts) Counts {
	var out Counts
	for i := range c {
		out[i] = c[i] + o[i]
	}
	return out
}

// Snapshot sums the retired totals and every live block. It takes no
// locks and is safe to call at any time from any goroutine; counters
// written while the scan runs land in this snapshot or the next.
func Snapshot() Counts {
	var out Counts
	for i := range out {
		out[i] = registry.retired[i].Load()
	}
	if p := registry.blocks.Load(); p != nil {
		for _, b := range *p {
			for i := range out {
				out[i] += b.c[i].Load()
			}
		}
	}
	return out
}
