package obs

import (
	"sync"
	"testing"
	"unsafe"
)

// withEnabled runs f with the package flag forced on, restoring the
// previous setting after.
func withEnabled(t *testing.T, f func()) {
	t.Helper()
	prev := Enabled()
	SetEnabled(true)
	defer SetEnabled(prev)
	f()
}

// TestBlockCacheLinePadding pins the padding invariant: a Block must be
// a whole number of 64-byte cache lines so adjacent blocks in any
// allocation never share a line (the write-local design's whole point).
func TestBlockCacheLinePadding(t *testing.T) {
	if s := unsafe.Sizeof(Block{}); s%64 != 0 {
		t.Fatalf("Block is %d bytes, not a multiple of the 64-byte cache line", s)
	}
}

// TestDisabledCountersAreNoOps: with the flag off, Inc and Add must not
// move the block (call sites rely on this to make the disabled layer
// free beyond the flag load).
func TestDisabledCountersAreNoOps(t *testing.T) {
	if Enabled() {
		t.Fatal("flag unexpectedly on at test entry")
	}
	b := NewBlock()
	defer b.Release()
	b.Inc(HelpsGiven)
	b.Add(StrictSpins, 17)
	if b.Load(HelpsGiven) != 0 || b.Load(StrictSpins) != 0 {
		t.Fatalf("disabled counters moved: helps=%d spins=%d",
			b.Load(HelpsGiven), b.Load(StrictSpins))
	}
}

// TestSnapshotSumsLiveAndRetired: Snapshot must include both live
// blocks and the folded totals of released ones, and Release must fold
// without losing counts.
func TestSnapshotSumsLiveAndRetired(t *testing.T) {
	withEnabled(t, func() {
		s0 := Snapshot()
		a, b := NewBlock(), NewBlock()
		a.Inc(AcquiresLF)
		a.Add(PoolHits, 4)
		b.Add(AcquiresLF, 2)
		if d := Snapshot().Sub(s0); d.Get(AcquiresLF) != 3 || d.Get(PoolHits) != 4 {
			t.Fatalf("live snapshot delta = %d acquires / %d pool hits, want 3/4",
				d.Get(AcquiresLF), d.Get(PoolHits))
		}
		a.Release() // folds into retired
		if d := Snapshot().Sub(s0); d.Get(AcquiresLF) != 3 || d.Get(PoolHits) != 4 {
			t.Fatalf("post-release delta = %d acquires / %d pool hits, want unchanged 3/4",
				d.Get(AcquiresLF), d.Get(PoolHits))
		}
		b.Release()
		if d := Snapshot().Sub(s0); d.Get(AcquiresLF) != 3 {
			t.Fatalf("all-released delta = %d acquires, want 3", d.Get(AcquiresLF))
		}
	})
}

// TestConcurrentBlocksAndSnapshots races writers (each on its own
// block, per the ownership rule), registrations, releases and snapshot
// readers; the final snapshot delta must equal the total increments.
// Run under -race in CI.
func TestConcurrentBlocksAndSnapshots(t *testing.T) {
	withEnabled(t, func() {
		const (
			workers = 8
			perW    = 5000
		)
		s0 := Snapshot()
		var wgWriters, wgReader sync.WaitGroup
		stop := make(chan struct{})
		wgReader.Add(1)
		go func() { // concurrent wgReader
			defer wgReader.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = Snapshot()
				}
			}
		}()
		for w := 0; w < workers; w++ {
			wgWriters.Add(1)
			go func() {
				defer wgWriters.Done()
				b := NewBlock()
				for i := 0; i < perW; i++ {
					b.Inc(InstallCASFails)
				}
				b.Release()
			}()
		}
		wgWriters.Wait()
		close(stop)
		wgReader.Wait()
		if d := Snapshot().Sub(s0); d.Get(InstallCASFails) != workers*perW {
			t.Fatalf("lost counts: delta = %d, want %d", d.Get(InstallCASFails), workers*perW)
		}
	})
}

// TestCountsSubSaturates pins the saturation contract Sub's callers
// (window deltas racing Release's fold-then-unlink) depend on.
func TestCountsSubSaturates(t *testing.T) {
	var a, b Counts
	a[AcquiresLF], b[AcquiresLF] = 3, 5
	a[HelpsGiven], b[HelpsGiven] = 7, 2
	d := a.Sub(b)
	if d.Get(AcquiresLF) != 0 {
		t.Errorf("Sub underflowed: %d, want saturated 0", d.Get(AcquiresLF))
	}
	if d.Get(HelpsGiven) != 5 {
		t.Errorf("Sub(7-2) = %d, want 5", d.Get(HelpsGiven))
	}
	if s := a.Add(b); s.Get(AcquiresLF) != 8 || s.Get(HelpsGiven) != 9 {
		t.Errorf("Add = %d/%d, want 8/9", s.Get(AcquiresLF), s.Get(HelpsGiven))
	}
}

// TestDepthCounterBuckets pins the histogram bucketing.
func TestDepthCounterBuckets(t *testing.T) {
	cases := map[int]Counter{
		0: TxnDepth1, 1: TxnDepth1, 2: TxnDepth2, 3: TxnDepth3,
		4: TxnDepth4, 5: TxnDepth5to8, 8: TxnDepth5to8,
		9: TxnDepth9Plus, 100: TxnDepth9Plus,
	}
	for depth, want := range cases {
		if got := DepthCounter(depth); got != want {
			t.Errorf("DepthCounter(%d) = %v, want %v", depth, got, want)
		}
	}
}

// TestCounterNamesComplete: every counter has a distinct snake_case
// name (the JSONL/CSV field identity).
func TestCounterNamesComplete(t *testing.T) {
	seen := map[string]bool{}
	for c := Counter(0); c < NumCounters; c++ {
		n := c.String()
		if n == "" || n == "unknown" {
			t.Errorf("counter %d has no name", c)
		}
		if seen[n] {
			t.Errorf("duplicate counter name %q", n)
		}
		seen[n] = true
	}
	if Counter(-1).String() != "unknown" || NumCounters.String() != "unknown" {
		t.Error("out-of-range counters must stringify as unknown")
	}
}
