package obs

import (
	"bytes"
	"sort"
	"strconv"
)

// nameOrder is the counter index permutation that sorts counterNames
// alphabetically, computed once: MarshalJSON walks it so the emitted
// keys are in sorted order regardless of Counter declaration order.
var nameOrder = func() [NumCounters]int {
	var ord [NumCounters]int
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord[:], func(a, b int) bool {
		return counterNames[ord[a]] < counterNames[ord[b]]
	})
	return ord
}()

// MarshalJSON renders the counts as a JSON object with one key per
// counter, keys in sorted order. Hand-rolled rather than a map so the
// byte output is stable across runs and Go versions — JSONL lines
// from -metrics sweeps diff cleanly.
func (c Counts) MarshalJSON() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte('{')
	for i, ci := range nameOrder {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.WriteByte('"')
		buf.WriteString(counterNames[ci])
		buf.WriteString(`":`)
		buf.WriteString(strconv.FormatUint(c[ci], 10))
	}
	buf.WriteByte('}')
	return buf.Bytes(), nil
}

// Nonzero returns the counters with nonzero counts, keyed by name —
// the compact form for logs and /metrics endpoints where most of the
// counter set is idle. (encoding/json sorts map keys, so marshalling
// the result is also byte-stable.)
func (c Counts) Nonzero() map[string]uint64 {
	out := make(map[string]uint64)
	for i, v := range c {
		if v != 0 {
			out[counterNames[i]] = v
		}
	}
	return out
}
