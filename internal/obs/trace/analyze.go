package trace

import (
	"fmt"
	"sort"

	"flock/internal/obs"
)

// ChainLink is one helper's involvement in a critical section: it
// began running the owner's descriptor at TS, stopped at EndTS, and
// either won the completion claim (Finisher: it is the run that
// carried the thunk to completion) or replayed work another run had
// already claimed.
type ChainLink struct {
	Helper   uint64
	TS       int64
	EndTS    int64 // 0 if the helper's end was not captured
	Finisher bool
}

// HelpChain is the reconstructed helping story of one critical-section
// instance, identified by (Lock, Gen): the owner installed it, zero or
// more helpers ran it (owner → helper₁ → helper₂ …, ordered by
// HelpBegin time), and exactly one run — the owner's or a helper's —
// won the completion claim.
type HelpChain struct {
	Lock, Gen, Owner uint64
	InstallTS        int64
	ReleaseTS        int64 // 0 if the release was not captured
	Links            []ChainLink
	// FinishedBy is the Proc whose run won the completion claim, when
	// a HelpEnd exhibited it; 0 means no helper finished it (the owner
	// did, or the finish fell outside the window).
	FinishedBy uint64
}

// LockStats is one lock's contention timeline summary.
type LockStats struct {
	Lock                          uint64
	Acquisitions                  uint64 // lock-free installs
	Blocking                      uint64 // blocking-mode acquisitions
	HelpBegins, HelpEnds, Replays uint64
	SpinEpisodes, SpinIters       uint64
	FirstTS, LastTS               int64
	// HeldNs sums install→release spans that were both captured.
	HeldNs int64
}

// Analysis is the decoded view of a Trace: per-kind totals, helping
// chains, and per-lock contention summaries.
type Analysis struct {
	// Totals counts events by kind.
	Totals [NumKinds]uint64
	// ForeignReplays is the subset of Totals[Replay] where the
	// replaying Proc was not the descriptor's owner (helper runs that
	// lost the completion claim).
	ForeignReplays uint64
	// Chains holds every critical-section instance that attracted at
	// least one helper, ordered by install time.
	Chains []HelpChain
	// Locks summarizes per-lock activity, ordered by first event.
	Locks []LockStats
	// Dropped is carried over from the Trace; when nonzero the chains
	// and conservation laws are best-effort.
	Dropped uint64
}

// chainKey identifies a critical-section instance: lock versions
// advance on every acquire and release, so (lock, generation) never
// repeats.
type chainKey struct{ lock, gen uint64 }

// Analyze reconstructs helping chains and per-lock timelines from a
// stitched trace. Events is assumed time-ordered (as Snapshot returns
// it).
func Analyze(t Trace) *Analysis {
	a := &Analysis{Dropped: t.Dropped}
	chains := make(map[chainKey]*HelpChain)
	locks := make(map[uint64]*LockStats)
	var lockOrder []uint64

	lockOf := func(id uint64) *LockStats {
		ls := locks[id]
		if ls == nil {
			ls = &LockStats{Lock: id}
			locks[id] = ls
			lockOrder = append(lockOrder, id)
		}
		return ls
	}

	for _, ev := range t.Events {
		if ev.Kind < NumKinds {
			a.Totals[ev.Kind]++
		}
		switch ev.Kind {
		case AcqInstalled:
			ls := lockOf(ev.Lock)
			ls.Acquisitions++
			ls.touch(ev.TS)
			chains[chainKey{ev.Lock, ev.B}] = &HelpChain{
				Lock: ev.Lock, Gen: ev.B, Owner: ev.A, InstallTS: ev.TS,
			}
		case AcqBlocking:
			ls := lockOf(ev.Lock)
			ls.Blocking++
			ls.touch(ev.TS)
		case Release:
			ls := lockOf(ev.Lock)
			ls.touch(ev.TS)
			if c := chains[chainKey{ev.Lock, ev.B}]; c != nil && c.ReleaseTS == 0 {
				c.ReleaseTS = ev.TS
				if c.InstallTS != 0 && ev.TS > c.InstallTS {
					ls.HeldNs += ev.TS - c.InstallTS
				}
			}
		case HelpBegin:
			ls := lockOf(ev.Lock)
			ls.HelpBegins++
			ls.touch(ev.TS)
			c := chains[chainKey{ev.Lock, ev.B}]
			if c == nil {
				// The install fell outside the window (or was emitted
				// by a proc whose ring lapped); synthesize the chain
				// from the help event's owner attribution.
				c = &HelpChain{Lock: ev.Lock, Gen: ev.B, Owner: ev.A, InstallTS: ev.TS}
				chains[chainKey{ev.Lock, ev.B}] = c
			}
			c.Links = append(c.Links, ChainLink{Helper: ev.Proc, TS: ev.TS})
		case HelpEnd:
			ls := lockOf(ev.Lock)
			ls.HelpEnds++
			ls.touch(ev.TS)
			if c := chains[chainKey{ev.Lock, ev.B}]; c != nil {
				c.FinishedBy = ev.Proc
				c.closeLink(ev.Proc, ev.TS, true)
			}
		case Replay:
			if ev.Proc != ev.A {
				a.ForeignReplays++
			}
			if ev.Lock != 0 {
				ls := lockOf(ev.Lock)
				ls.Replays++
				ls.touch(ev.TS)
			}
			if c := chains[chainKey{ev.Lock, ev.B}]; c != nil && ev.Proc != ev.A {
				c.closeLink(ev.Proc, ev.TS, false)
			}
		case SpinEpisode:
			ls := lockOf(ev.Lock)
			ls.SpinEpisodes++
			ls.SpinIters += ev.B
			ls.touch(ev.TS)
		}
	}

	for _, c := range chains {
		if len(c.Links) > 0 {
			a.Chains = append(a.Chains, *c)
		}
	}
	sort.Slice(a.Chains, func(i, j int) bool {
		if a.Chains[i].InstallTS != a.Chains[j].InstallTS {
			return a.Chains[i].InstallTS < a.Chains[j].InstallTS
		}
		return a.Chains[i].Gen < a.Chains[j].Gen
	})
	for _, id := range lockOrder {
		a.Locks = append(a.Locks, *locks[id])
	}
	sort.Slice(a.Locks, func(i, j int) bool { return a.Locks[i].FirstTS < a.Locks[j].FirstTS })
	return a
}

func (ls *LockStats) touch(ts int64) {
	if ls.FirstTS == 0 || ts < ls.FirstTS {
		ls.FirstTS = ts
	}
	if ts > ls.LastTS {
		ls.LastTS = ts
	}
}

// closeLink records the end of helper's most recent open involvement.
func (c *HelpChain) closeLink(helper uint64, ts int64, finisher bool) {
	for i := len(c.Links) - 1; i >= 0; i-- {
		if c.Links[i].Helper == helper && c.Links[i].EndTS == 0 {
			c.Links[i].EndTS = ts
			c.Links[i].Finisher = finisher
			return
		}
	}
}

// ConservationCheck cross-checks the trace against an obs counter
// delta taken over the same window (enable both, snapshot counters,
// run, snapshot counters again, Sub). It returns one message per
// violated law; an empty slice means every law held:
//
//	help_end events   == obs.HelpsGiven       (both count finisher-claim
//	                                           wins by non-owners)
//	replay events     == obs.ThunkReplays     (both count lost claims)
//	acq_installed     == obs.AcquiresLF       (both mark committed
//	                                           top-level LF acquisitions)
//	acq_blocking      == obs.AcquiresBlocking
//	help_begin events == help_end + foreign replay events
//	                     (every foreign run either wins the claim or
//	                      replays — a trace-internal law)
//
// The laws are only exact on a lossless window: a nonzero drop count
// makes them best-effort, reported as a violation up front.
func (a *Analysis) ConservationCheck(d obs.Counts) []string {
	var bad []string
	if a.Dropped > 0 {
		bad = append(bad, fmt.Sprintf("trace dropped %d events; conservation laws are not checkable", a.Dropped))
		return bad
	}
	eq := func(law string, got, want uint64) {
		if got != want {
			bad = append(bad, fmt.Sprintf("%s: trace %d != obs %d", law, got, want))
		}
	}
	eq("help_end == helps_given", a.Totals[HelpEnd], d.Get(obs.HelpsGiven))
	eq("replay == thunk_replays", a.Totals[Replay], d.Get(obs.ThunkReplays))
	eq("acq_installed == acquires_lf", a.Totals[AcqInstalled], d.Get(obs.AcquiresLF))
	eq("acq_blocking == acquires_blocking", a.Totals[AcqBlocking], d.Get(obs.AcquiresBlocking))
	if got, want := a.Totals[HelpBegin], a.Totals[HelpEnd]+a.ForeignReplays; got != want {
		bad = append(bad, fmt.Sprintf("help_begin == help_end + foreign replays: %d != %d+%d", got, a.Totals[HelpEnd], a.ForeignReplays))
	}
	return bad
}
