package trace

import (
	"bytes"
	"encoding/json"
	"sort"
	"testing"

	"flock/internal/obs"
)

// TestRingOverwriteAndDrops pins the flight recorder's bounded-memory
// contract: a full ring overwrites oldest-first, Snapshot returns the
// newest capacity-many records, and the overwritten ones are counted —
// not silently lost — in the drop accounting.
func TestRingOverwriteAndDrops(t *testing.T) {
	defer SetRingShift(SetRingShift(4)) // 16-record rings
	Reset()
	r := NewRing(901)
	defer r.Release()
	const n = 40
	for i := 0; i < n; i++ {
		r.Emit(AcqStart, uint64(i), 0, 0)
	}
	tr := Snapshot()
	var mine []Event
	for _, ev := range tr.Events {
		if ev.Proc == 901 {
			mine = append(mine, ev)
		}
	}
	if len(mine) != 16 {
		t.Fatalf("snapshot returned %d events from a 16-slot ring after %d emits, want 16", len(mine), n)
	}
	if tr.Dropped != n-16 {
		t.Fatalf("Dropped = %d, want %d (records overwritten before collection)", tr.Dropped, n-16)
	}
	// The survivors are exactly the newest 16, in emission order.
	for i, ev := range mine {
		if want := uint64(n - 16 + i); ev.Lock != want || ev.Seq != want {
			t.Fatalf("event %d: lock=%d seq=%d, want %d", i, ev.Lock, ev.Seq, want)
		}
	}
	if got := Dropped(); got != n-16 {
		t.Fatalf("Dropped() = %d, want %d", got, n-16)
	}
}

// TestResetOpensFreshWindow pins Reset's windowing: events emitted
// before a Reset neither appear in later snapshots nor count as drops,
// including overwritten ones.
func TestResetOpensFreshWindow(t *testing.T) {
	defer SetRingShift(SetRingShift(4))
	Reset()
	r := NewRing(902)
	defer r.Release()
	for i := 0; i < 100; i++ { // laps the 16-slot ring several times
		r.Emit(AcqStart, 0, 0, 0)
	}
	Reset()
	tr := Snapshot()
	for _, ev := range tr.Events {
		if ev.Proc == 902 {
			t.Fatalf("pre-Reset event leaked into the new window: %+v", ev)
		}
	}
	if tr.Dropped != 0 {
		t.Fatalf("Dropped = %d after Reset, want 0", tr.Dropped)
	}
	r.Emit(Release, 7, 8, 9)
	tr = Snapshot()
	found := false
	for _, ev := range tr.Events {
		if ev.Proc == 902 {
			if found || ev.Kind != Release || ev.Lock != 7 || ev.A != 8 || ev.B != 9 {
				t.Fatalf("unexpected post-Reset event %+v", ev)
			}
			found = true
		}
	}
	if !found || tr.Dropped != 0 {
		t.Fatalf("post-Reset emit: found=%v dropped=%d, want true/0", found, tr.Dropped)
	}
}

// TestSnapshotRejectsTornRecords pins the seq-validation read protocol:
// a record whose sequence word does not match its expected absolute
// index (empty, mid-write, or lapped) is counted dropped, never
// returned torn.
func TestSnapshotRejectsTornRecords(t *testing.T) {
	defer SetRingShift(SetRingShift(4))
	Reset()
	r := NewRing(903)
	defer r.Release()
	for i := 0; i < 8; i++ {
		r.Emit(HelpEnd, uint64(i), 0, 0)
	}
	// Simulate a writer caught mid-slot: seq zeroed (the first store of
	// Emit) but head already claimed.
	r.buf[3].seq.Store(0)
	tr := Snapshot()
	var mine []Event
	for _, ev := range tr.Events {
		if ev.Proc == 903 {
			mine = append(mine, ev)
		}
	}
	if len(mine) != 7 {
		t.Fatalf("got %d events, want 7 (slot 3 invalidated)", len(mine))
	}
	for _, ev := range mine {
		if ev.Seq == 3 {
			t.Fatalf("invalidated record returned: %+v", ev)
		}
	}
	if tr.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", tr.Dropped)
	}
}

// TestSnapshotOrdersAcrossRings pins the stitching order: one stream,
// sorted by timestamp, with each writer's own events in emission order.
func TestSnapshotOrdersAcrossRings(t *testing.T) {
	Reset()
	r1, r2 := NewRing(904), NewRing(905)
	defer r1.Release()
	defer r2.Release()
	for i := 0; i < 50; i++ { // interleave emitters
		r1.Emit(AcqStart, uint64(i), 0, 0)
		r2.Emit(Release, uint64(i), 0, 0)
	}
	tr := Snapshot()
	var evs []Event
	for _, ev := range tr.Events {
		if ev.Proc == 904 || ev.Proc == 905 {
			evs = append(evs, ev)
		}
	}
	if len(evs) != 100 {
		t.Fatalf("got %d events, want 100", len(evs))
	}
	if !sort.SliceIsSorted(evs, func(i, j int) bool { return evs[i].TS < evs[j].TS }) {
		t.Fatal("snapshot events not time-ordered")
	}
	last := map[uint64]uint64{}
	for _, ev := range evs {
		if prev, ok := last[ev.Proc]; ok && ev.Seq <= prev {
			t.Fatalf("proc %d events out of emission order: seq %d after %d", ev.Proc, ev.Seq, prev)
		}
		last[ev.Proc] = ev.Seq
	}
}

// synthetic builds the canonical helped critical section: proc 1
// installs gen 5 on lock 0xA0, proc 2 helps and wins the finisher
// claim, proc 1's own run replays, proc 2 physically releases.
func synthetic() Trace {
	return Trace{Events: []Event{
		{TS: 100, Kind: AcqInstalled, Proc: 1, Lock: 0xA0, A: 1, B: 5},
		{TS: 110, Kind: HelpBegin, Proc: 2, Lock: 0xA0, A: 1, B: 5},
		{TS: 140, Kind: HelpEnd, Proc: 2, Lock: 0xA0, A: 1, B: 5},
		{TS: 145, Kind: Replay, Proc: 1, Lock: 0xA0, A: 1, B: 5},
		{TS: 150, Kind: Release, Proc: 2, Lock: 0xA0, A: 1, B: 5},
	}}
}

// TestAnalyzeReconstructsHelpChain pins the analyzer on a synthetic
// helped critical section, including the conservation cross-check
// against a matching (and then a broken) obs delta.
func TestAnalyzeReconstructsHelpChain(t *testing.T) {
	a := Analyze(synthetic())
	if len(a.Chains) != 1 {
		t.Fatalf("got %d chains, want 1", len(a.Chains))
	}
	c := a.Chains[0]
	if c.Lock != 0xA0 || c.Gen != 5 || c.Owner != 1 {
		t.Fatalf("chain identity = %+v", c)
	}
	if c.InstallTS != 100 || c.ReleaseTS != 150 {
		t.Fatalf("chain window = [%d, %d], want [100, 150]", c.InstallTS, c.ReleaseTS)
	}
	if c.FinishedBy != 2 {
		t.Fatalf("FinishedBy = %d, want helper 2", c.FinishedBy)
	}
	if len(c.Links) != 1 || c.Links[0].Helper != 2 || !c.Links[0].Finisher ||
		c.Links[0].TS != 110 || c.Links[0].EndTS != 140 {
		t.Fatalf("links = %+v", c.Links)
	}
	if len(a.Locks) != 1 || a.Locks[0].Acquisitions != 1 || a.Locks[0].HeldNs != 50 {
		t.Fatalf("lock stats = %+v", a.Locks)
	}
	if a.ForeignReplays != 0 {
		t.Fatalf("ForeignReplays = %d, want 0 (the replay was the owner's own run)", a.ForeignReplays)
	}

	var d obs.Counts
	d[obs.AcquiresLF] = 1
	d[obs.HelpsGiven] = 1
	d[obs.ThunkReplays] = 1
	if bad := a.ConservationCheck(d); len(bad) != 0 {
		t.Fatalf("conservation violated on matching delta: %v", bad)
	}
	d[obs.HelpsGiven] = 2 // now the counters claim a help the trace never saw
	if bad := a.ConservationCheck(d); len(bad) == 0 {
		t.Fatal("conservation check accepted a mismatched obs delta")
	}
}

// TestExportChromeShape pins the exporter's structural contract: valid
// JSON, per-proc thread_name tracks, a cs span on the owner track, a
// help span on the helper track, and a matched s/f flow pair for the
// hand-off.
func TestExportChromeShape(t *testing.T) {
	var buf bytes.Buffer
	if err := ExportChrome(&buf, synthetic()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exporter emitted invalid JSON: %v", err)
	}
	tracks := map[float64]bool{}
	var csTid, helpTid float64 = -1, -1
	var flowS, flowF []map[string]any
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			if ev["name"] == "thread_name" {
				tracks[ev["tid"].(float64)] = true
			}
		case "X":
			switch ev["cat"] {
			case "cs":
				csTid = ev["tid"].(float64)
			case "help":
				helpTid = ev["tid"].(float64)
			}
		case "s":
			flowS = append(flowS, ev)
		case "f":
			flowF = append(flowF, ev)
		}
	}
	if !tracks[1] || !tracks[2] {
		t.Fatalf("missing per-proc thread_name tracks: %v", tracks)
	}
	if csTid != 1 {
		t.Fatalf("cs span on tid %v, want owner track 1", csTid)
	}
	if helpTid != 2 {
		t.Fatalf("help span on tid %v, want helper track 2", helpTid)
	}
	if len(flowS) != 1 || len(flowF) != 1 {
		t.Fatalf("flow events s=%d f=%d, want 1/1", len(flowS), len(flowF))
	}
	if flowS[0]["id"] != flowF[0]["id"] {
		t.Fatalf("flow pair ids differ: %v vs %v", flowS[0]["id"], flowF[0]["id"])
	}
	if flowS[0]["tid"].(float64) != 1 || flowF[0]["tid"].(float64) != 2 {
		t.Fatalf("flow arrow runs %v -> %v, want owner 1 -> helper 2", flowS[0]["tid"], flowF[0]["tid"])
	}
}

// TestEmitAllocs pins the enabled hot path at zero allocations per
// recorded event (the ring is preallocated; Emit is six atomic stores
// and a clock read).
func TestEmitAllocs(t *testing.T) {
	Reset()
	r := NewRing(906)
	defer r.Release()
	if n := testing.AllocsPerRun(1000, func() {
		r.Emit(AcqInstalled, 0xBEEF, 1, 2)
	}); n != 0 {
		t.Fatalf("Ring.Emit allocates %v/op, want 0", n)
	}
}

// TestKindNamesComplete pins that every kind has a name (exporters key
// on them).
func TestKindNamesComplete(t *testing.T) {
	for k := KindNone; k < NumKinds; k++ {
		if k.String() == "" || k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
	}
}
