package trace

import "testing"

// Microbenchmarks for the emission hot path: the clock read, a full
// Emit (clock + six atomic stores + publish), and EmitAt (caller
// supplies the timestamp). EXPERIMENTS.md quotes these alongside the
// end-to-end enabled-overhead measurement.

func BenchmarkNow(b *testing.B) {
	var s int64
	for i := 0; i < b.N; i++ {
		s += Now()
	}
	_ = s
}

func BenchmarkEmit(b *testing.B) {
	r := NewRing(990)
	defer r.Release()
	for i := 0; i < b.N; i++ {
		r.Emit(AcqStart, 1, 2, 3)
	}
}

func BenchmarkEmitAt(b *testing.B) {
	r := NewRing(991)
	defer r.Release()
	for i := 0; i < b.N; i++ {
		r.EmitAt(AcqStart, 123, 1, 2, 3)
	}
}
