package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the Chrome/Perfetto trace-event format
// (the JSON object array ui.perfetto.dev and chrome://tracing load).
// Timestamps and durations are microseconds (fractional allowed).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  uint64         `json:"tid"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	ID   uint64         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON object format's top level.
type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	Metadata        map[string]any `json:"metadata,omitempty"`
}

const chromePid = 1

func usec(ns int64) float64 { return float64(ns) / 1e3 }

func durp(ns int64) *float64 {
	d := usec(ns)
	if d < 0 {
		d = 0
	}
	return &d
}

// ExportChrome writes the trace as Chrome trace-event JSON:
//
//   - one track (thread) per Proc, named via thread_name metadata
//     (proc 0 is the shared Global ring);
//   - critical sections as complete ("X") spans on the owner's track,
//     matched install→release by (lock, generation);
//   - helper runs as "X" spans on the helper's track
//     (help_begin→help_end, or →replay for runs that lost the claim),
//     with a flow arrow ("s" on the owner's track, "f" on the
//     helper's) per help hand-off so Perfetto draws the
//     owner→helper₁→helper₂ chain;
//   - KV operations and transactions as duration spans (their events
//     carry the duration, so the span is placed at completion−dur);
//   - everything else (stalls, restarts, spills, epoch activity…) as
//     thread-scoped instants.
//
// The result loads directly in ui.perfetto.dev or chrome://tracing.
func ExportChrome(w io.Writer, t Trace) error {
	procs := map[uint64]bool{}
	for _, ev := range t.Events {
		procs[ev.Proc] = true
	}

	var out []chromeEvent
	out = append(out, chromeEvent{
		Name: "process_name", Ph: "M", Pid: chromePid,
		Args: map[string]any{"name": "flock"},
	})
	for p := range procs {
		name := fmt.Sprintf("proc %d", p)
		if p == 0 {
			name = "global"
		}
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: chromePid, Tid: p,
			Args: map[string]any{"name": name},
		})
	}

	type ckey struct{ lock, gen uint64 }
	type hkey struct{ proc, lock, gen uint64 }
	installs := map[ckey]Event{}
	helpOpen := map[hkey]Event{}
	flowID := uint64(0)

	instant := func(ev Event, args map[string]any) chromeEvent {
		return chromeEvent{
			Name: ev.Kind.String(), Ph: "i", S: "t",
			Pid: chromePid, Tid: ev.Proc, TS: usec(ev.TS),
			Cat: "lock", Args: args,
		}
	}
	lockArg := func(ev Event) map[string]any {
		return map[string]any{"lock": fmt.Sprintf("%#x", ev.Lock)}
	}

	for _, ev := range t.Events {
		switch ev.Kind {
		case AcqInstalled:
			installs[ckey{ev.Lock, ev.B}] = ev
		case Release:
			k := ckey{ev.Lock, ev.B}
			if inst, ok := installs[k]; ok {
				delete(installs, k)
				out = append(out, chromeEvent{
					Name: fmt.Sprintf("cs %#x", ev.Lock), Ph: "X",
					Pid: chromePid, Tid: inst.A, TS: usec(inst.TS),
					Dur: durp(ev.TS - inst.TS), Cat: "cs",
					Args: map[string]any{
						"lock": fmt.Sprintf("%#x", ev.Lock), "gen": ev.B,
						"owner": inst.A, "released_by": ev.Proc,
					},
				})
			} else {
				out = append(out, instant(ev, lockArg(ev)))
			}
		case HelpBegin:
			helpOpen[hkey{ev.Proc, ev.Lock, ev.B}] = ev
			flowID++
			// Flow arrow: starts inside the owner's critical-section
			// span (helping happens strictly between install and
			// release), ends at the helper's span start.
			out = append(out,
				chromeEvent{
					Name: "help", Ph: "s", ID: flowID, Cat: "help",
					Pid: chromePid, Tid: ev.A, TS: usec(ev.TS),
				},
				chromeEvent{
					Name: "help", Ph: "f", BP: "e", ID: flowID, Cat: "help",
					Pid: chromePid, Tid: ev.Proc, TS: usec(ev.TS),
				})
		case HelpEnd, Replay:
			k := hkey{ev.Proc, ev.Lock, ev.B}
			if begin, ok := helpOpen[k]; ok {
				delete(helpOpen, k)
				out = append(out, chromeEvent{
					Name: fmt.Sprintf("help %#x", ev.Lock), Ph: "X",
					Pid: chromePid, Tid: ev.Proc, TS: usec(begin.TS),
					Dur: durp(ev.TS - begin.TS), Cat: "help",
					Args: map[string]any{
						"lock": fmt.Sprintf("%#x", ev.Lock), "gen": ev.B,
						"owner": ev.A, "finisher": ev.Kind == HelpEnd,
					},
				})
			} else {
				// An owner-side replay (or a help whose begin fell
				// outside the window).
				out = append(out, instant(ev, lockArg(ev)))
			}
		case KVOp:
			args := map[string]any{"op": KVOpName(ev.A)}
			if ev.Lock == ^uint64(0) {
				args["shard"] = "multi"
			} else {
				args["shard"] = ev.Lock
			}
			out = append(out, chromeEvent{
				Name: "kv " + KVOpName(ev.A), Ph: "X",
				Pid: chromePid, Tid: ev.Proc, TS: usec(ev.TS - int64(ev.B)),
				Dur: durp(int64(ev.B)), Cat: "kv", Args: args,
			})
		case TxnSpan:
			out = append(out, chromeEvent{
				Name: "txn", Ph: "X",
				Pid: chromePid, Tid: ev.Proc, TS: usec(ev.TS - int64(ev.B)),
				Dur: durp(int64(ev.B)), Cat: "txn",
				Args: map[string]any{
					"shards":   ev.A & 0xffff,
					"attempts": ev.A >> 16,
				},
			})
		default:
			var args map[string]any
			switch ev.Kind {
			case AcqStart, AcqBlocking, SpinEpisode, OptRestart:
				args = lockArg(ev)
				if ev.Kind == SpinEpisode {
					args["iters"] = ev.B
				}
			case EpochAdvance:
				args = map[string]any{"epoch": ev.A}
			case EpochReclaim:
				args = map[string]any{"epoch": ev.A, "callbacks": ev.B}
			}
			out = append(out, instant(ev, args))
		}
	}
	// Unmatched opens (the window closed mid-flight): surface as
	// instants rather than inventing durations.
	for _, inst := range installs {
		out = append(out, instant(inst, map[string]any{
			"lock": fmt.Sprintf("%#x", inst.Lock), "unreleased": true,
		}))
	}
	for _, begin := range helpOpen {
		out = append(out, instant(begin, map[string]any{
			"lock": fmt.Sprintf("%#x", begin.Lock), "unfinished": true,
		}))
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{
		TraceEvents:     out,
		DisplayTimeUnit: "ns",
		Metadata:        map[string]any{"dropped_records": t.Dropped},
	})
}
