// Package trace is the repository's lock-event flight recorder
// (DESIGN.md S16): a low-overhead, always-bounded record of *when* the
// lock runtime's mechanisms fired, *on which lock*, and *on whose
// behalf* — the causal, time-ordered complement to internal/obs's
// aggregate counters. The obs layer can say "2400 helps happened";
// only a trace can show helper 7 picking up Proc 3's stalled thunk at
// t=1.82ms and carrying it to completion 14µs later.
//
// The design mirrors obs's write-local, read-global discipline:
//
//   - Each worker (flock.Proc) owns one fixed-size ring buffer of
//     compact binary records and is its only writer, so recording is
//     lockless and allocation-free: six atomic word stores plus one
//     monotonic clock read per event. Rings overwrite oldest-first, so
//     memory stays bounded no matter how long tracing stays on.
//   - Everything is gated by one package-level cold atomic.Bool. Off
//     (the default), an instrumented call site costs a single load and
//     a predictable branch — the same bar the obs counters meet.
//   - Aggregation is pull-based: Snapshot() stitches every ring into
//     one time-ordered event stream with exact per-ring drop
//     accounting (records overwritten before collection, plus records
//     invalidated mid-read).
//
// # Record format and the slot-publish protocol
//
// A record is six 64-bit words: a sequence word, a monotonic
// timestamp, a lock id, two kind-specific arguments, and a packed
// kind+proc word. The sequence word holds the record's absolute ring
// index plus one, so zero doubles as the "empty or being written"
// sentinel. A writer claims slot head%N and stores, in order: seq=0,
// the five payload words, seq=head+1. A reader expecting absolute
// index i loads seq (must equal i+1), loads the payload, and re-loads
// seq (must still equal i+1); any overlap with a writer leaves seq
// zero or advanced and the reader counts the record as dropped
// instead of returning a torn one. All six words are Go atomics
// (sequentially consistent), so no fences beyond the seq publish are
// needed and the protocol is race-detector-clean; per-Proc rings have
// one writer, making the check exact. (The shared Global ring is
// multi-writer via an atomic head claim; a reader's seq check can in
// principle be defeated there by a writer stalled for a whole ring
// lap, so its records are best-effort — acceptable for the rare
// global events it carries.)
package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind identifies one lock-runtime event type.
type Kind uint8

// The event kinds. The A and B fields of an Event are kind-specific;
// the per-kind comments document them.
const (
	// KindNone marks an empty or invalid record.
	KindNone Kind = iota
	// AcqStart: a lock acquisition attempt began (both modes).
	// A=0, B=0.
	AcqStart
	// AcqInstalled: a lock-free install CAS succeeded — the critical
	// section is published and helpable. A=owner Proc id, B=the
	// acquisition's lock-word version (the descriptor generation:
	// versions advance on every acquire/release, so (lock, B)
	// identifies this critical-section instance uniquely).
	AcqInstalled
	// AcqBlocking: a blocking-mode acquisition succeeded at the
	// outermost nesting level. A=owner Proc id, B=0.
	AcqBlocking
	// Release: the lock word was physically released by this run
	// (exactly one run's release CAS succeeds per acquisition).
	// A=owner Proc id (0 in blocking mode), B=generation (0 in
	// blocking mode).
	Release
	// HelpBegin: this Proc started running a descriptor owned by
	// another Proc. A=owner Proc id, B=generation.
	HelpBegin
	// HelpEnd: the help completed AND this run won the single-claim
	// finisher CAS — it is the run that carried the owner's critical
	// section to completion (pairs 1:1 with obs.HelpsGiven).
	// A=owner Proc id, B=generation.
	HelpEnd
	// Replay: a run of a descriptor lost the finisher claim — wasted
	// but harmless duplicated execution (pairs 1:1 with
	// obs.ThunkReplays). Emitted for foreign and own replays alike;
	// A=owner Proc id distinguishes them. B=generation.
	Replay
	// SpinEpisode: a strict Lock acquisition that had to wait,
	// emitted once at acquisition. A=0, B=waiting iterations (helping
	// rounds in lock-free mode, TTAS spins in blocking mode).
	SpinEpisode
	// Stall: injected descheduling fired inside a held critical
	// section (Runtime.SetStallInjection). A=0, B=0.
	Stall
	// OptRestart: an optimistic read attempt failed validation.
	// A=0, B=0. Lock is the validated lock (0 for multi-shard
	// version-vector reads).
	OptRestart
	// OptEscalate: an optimistic read gave up and escalated to the
	// logged path. A=0, B=0.
	OptEscalate
	// PoolSpill: a pooled object was dropped to the GC (freelist or
	// pending list at capacity). A=0, B=0.
	PoolSpill
	// EpochAdvance: the global epoch advanced. A=the new epoch, B=0.
	EpochAdvance
	// EpochReclaim: a retire batch was reclaimed. A=the batch's
	// retirement epoch, B=callback count.
	EpochReclaim
	// KVOp: one KV client operation completed (a span: the event is
	// emitted at completion and B carries the duration). Lock=shard
	// index (^0 for multi-shard scatter-gather ops), A=op code (see
	// KVGet...), B=duration in nanoseconds.
	KVOp
	// TxnSpan: one committed multi-shard transaction (a span).
	// Lock=0, A=distinct shard-lock count | attempts<<16,
	// B=duration in nanoseconds.
	TxnSpan

	// NumKinds must stay last.
	NumKinds
)

var kindNames = [NumKinds]string{
	"none", "acq_start", "acq_installed", "acq_blocking", "release",
	"help_begin", "help_end", "replay", "spin_episode", "stall",
	"opt_restart", "opt_escalate", "pool_spill",
	"epoch_advance", "epoch_reclaim", "kv_op", "txn_span",
}

// String returns the kind's snake_case name.
func (k Kind) String() string {
	if k >= NumKinds {
		return "unknown"
	}
	return kindNames[k]
}

// KVOp A-field op codes.
const (
	KVGet uint64 = iota + 1
	KVPut
	KVDelete
	KVRMW
	KVScan
	KVBatch
)

// KVOpName names a KVOp op code (for exporters and tests).
func KVOpName(a uint64) string {
	switch a {
	case KVGet:
		return "get"
	case KVPut:
		return "put"
	case KVDelete:
		return "delete"
	case KVRMW:
		return "rmw"
	case KVScan:
		return "scan"
	case KVBatch:
		return "batch"
	}
	return "op"
}

// enabled is the package-level gate, global for the same reason obs's
// is: the disabled cost is one cold load, and a global flag needs no
// plumbing through every constructor.
var enabled atomic.Bool

// On reports whether the flight recorder is enabled. Hot-path call
// sites gate on it before doing any recording work.
func On() bool { return enabled.Load() }

// Enabled is a readability alias for On (save/restore callers).
func Enabled() bool { return enabled.Load() }

// SetEnabled flips event recording. Events begun under one setting may
// complete under the other (a HelpBegin without its HelpEnd); samplers
// enable before their window, Reset, and restore after.
func SetEnabled(v bool) { enabled.Store(v) }

// base anchors the monotonic clock; Now is a single nanotime-style
// read (time.Since on a monotonic time.Time never touches the wall
// clock).
var base = time.Now()

// Now returns the recorder's monotonic timestamp in nanoseconds since
// an arbitrary process-local epoch.
func Now() int64 { return int64(time.Since(base)) }

// defaultRingShift sizes new rings at 1<<shift records (48 bytes per
// record: 4096 records = 192 KiB per Proc).
const defaultRingShift = 12

// ringShift is the log2 ring size applied to rings created from now
// on; tests shrink it to force overwrite and grow it for lossless
// conservation windows.
var ringShift atomic.Uint32

func init() { ringShift.Store(defaultRingShift) }

// SetRingShift sets the log2 record count of subsequently created
// rings, clamped to [4, 22], and returns the previous value. Existing
// rings keep their size.
func SetRingShift(n int) (prev int) {
	if n < 4 {
		n = 4
	}
	if n > 22 {
		n = 22
	}
	return int(ringShift.Swap(uint32(n)))
}

// record is one ring slot. Every word is atomic so the slot-publish
// protocol above is exact under the race detector; see the package
// comment for the write and read orders.
type record struct {
	seq  atomic.Uint64 // absolute index+1; 0 = empty or mid-write
	ts   atomic.Int64
	lock atomic.Uint64
	a    atomic.Uint64
	b    atomic.Uint64
	meta atomic.Uint64 // Kind<<56 | proc id (low 56 bits)
}

const procMask = (uint64(1) << 56) - 1

// Ring is one writer's event ring. Per-Proc rings must only be
// written by their owning worker; the Global ring accepts any writer.
// Create with NewRing, detach with Release when the worker exits.
type Ring struct {
	buf  []record
	mask uint64
	proc uint64
	// head is the total number of records ever claimed (the next
	// absolute index). Single-writer rings store it plainly; the
	// shared ring claims slots with Add.
	head atomic.Uint64
	// resetHead is the absolute index at the last Reset: records
	// below it are outside the current collection window, for both
	// stitching and drop accounting.
	resetHead atomic.Uint64
	shared    bool
}

// Emit appends one event. For per-Proc rings this must be called only
// by the owning worker; it performs six atomic stores and one clock
// read, and never allocates. The oldest record is overwritten when
// the ring is full (counted by Snapshot's drop accounting).
func (r *Ring) Emit(k Kind, lock, a, b uint64) {
	r.EmitAt(k, Now(), lock, a, b)
}

// EmitAt is Emit with a caller-supplied timestamp (from Now), for
// emission sites that already read the clock — a span recorder that
// computed a duration reuses its end-of-span read instead of paying a
// second one.
func (r *Ring) EmitAt(k Kind, ts int64, lock, a, b uint64) {
	var h uint64
	if r.shared {
		h = r.head.Add(1) - 1
	} else {
		h = r.head.Load()
	}
	rec := &r.buf[h&r.mask]
	rec.seq.Store(0) // invalidate for concurrent readers
	rec.ts.Store(ts)
	rec.lock.Store(lock)
	rec.a.Store(a)
	rec.b.Store(b)
	rec.meta.Store(uint64(k)<<56 | r.proc&procMask)
	rec.seq.Store(h + 1) // publish
	if !r.shared {
		r.head.Store(h + 1)
	}
}

// Written returns the total number of records ever emitted (including
// overwritten ones).
func (r *Ring) Written() uint64 { return r.head.Load() }

// Cap returns the ring's record capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// registry holds every live ring (copy-on-write, so Snapshot scans
// without locking) plus rings released by exited workers, kept so a
// snapshot taken after workers unregister still sees their events.
var registry struct {
	mu      sync.Mutex
	rings   atomic.Pointer[[]*Ring]
	retired []*Ring
	// evicted counts records lost by evicting retired rings past
	// maxRetired (folded into Snapshot's drop count).
	evicted atomic.Uint64
}

// maxRetired bounds the retired-ring list so long-lived processes that
// register and release many workers keep bounded trace memory; the
// oldest retired ring is evicted (its in-window records counted as
// dropped).
const maxRetired = 256

// NewRing allocates and registers a ring attributed to proc (a
// flock.Proc registration ordinal; 0 is reserved for the Global ring).
func NewRing(proc uint64) *Ring {
	shift := ringShift.Load()
	if shift == 0 {
		// Package-level vars (the Global ring) initialize before init()
		// seeds ringShift; 0 is never a legal configured value.
		shift = defaultRingShift
	}
	size := uint64(1) << shift
	r := &Ring{buf: make([]record, size), mask: size - 1, proc: proc}
	registry.mu.Lock()
	var old []*Ring
	if p := registry.rings.Load(); p != nil {
		old = *p
	}
	next := make([]*Ring, len(old), len(old)+1)
	copy(next, old)
	next = append(next, r)
	registry.rings.Store(&next)
	registry.mu.Unlock()
	return r
}

// Release moves the ring from the live list to the retired list, so
// snapshots taken after the worker exits still stitch its events. The
// ring must not be written after Release.
func (r *Ring) Release() {
	registry.mu.Lock()
	var old []*Ring
	if p := registry.rings.Load(); p != nil {
		old = *p
	}
	next := make([]*Ring, 0, len(old))
	for _, o := range old {
		if o != r {
			next = append(next, o)
		}
	}
	registry.rings.Store(&next)
	registry.retired = append(registry.retired, r)
	if len(registry.retired) > maxRetired {
		ev := registry.retired[0]
		registry.retired = append(registry.retired[:0], registry.retired[1:]...)
		if n := ev.head.Load(); n > ev.resetHead.Load() {
			registry.evicted.Add(n - ev.resetHead.Load())
		}
	}
	registry.mu.Unlock()
}

// global is the shared ring for rare events with no owning Proc
// (epoch advancement, orphan reclamation). Multi-writer, best-effort;
// see the package comment.
var global = func() *Ring {
	r := NewRing(0)
	r.shared = true
	return r
}()

// Global returns the shared unattributed ring.
func Global() *Ring { return global }

// Reset opens a new collection window: retired rings are dropped, the
// eviction counter is cleared, and every live ring's current head
// becomes its window base, so subsequent Snapshots return (and count
// drops for) only events emitted after the Reset. Records emitted
// concurrently with Reset land on either side of the boundary.
func Reset() {
	registry.mu.Lock()
	registry.retired = nil
	registry.evicted.Store(0)
	if p := registry.rings.Load(); p != nil {
		for _, r := range *p {
			r.resetHead.Store(r.head.Load())
		}
	}
	registry.mu.Unlock()
}

// Event is one decoded record.
type Event struct {
	// TS is the monotonic timestamp (Now()'s clock).
	TS int64
	// Seq is the record's absolute index within its writer's ring
	// (the sort tiebreak for same-timestamp events of one writer).
	Seq uint64
	// Lock identifies the lock (its address; 0 when the event is not
	// about a particular lock; ^0 for multi-shard KV ops).
	Lock uint64
	// A and B are kind-specific; see the Kind constants.
	A, B uint64
	// Proc is the emitting worker's registration ordinal (0 for the
	// Global ring).
	Proc uint64
	// Kind is the event type.
	Kind Kind
}

// Trace is a stitched snapshot: events from every ring in one
// time-ordered stream, plus exact drop accounting.
type Trace struct {
	// Events is sorted by TS (ties broken by writer then sequence).
	Events []Event
	// Dropped counts records emitted in the window that this snapshot
	// could not return: overwritten before collection, invalidated
	// mid-read by a concurrent writer, or lost to retired-ring
	// eviction. Dropped == 0 means Events is the complete window.
	Dropped uint64
}

// Snapshot stitches every ring (live, retired and Global) into one
// time-ordered event stream. It takes the registry lock only to copy
// the ring lists; record reads are the lock-free seq-validated
// protocol, so writers are never blocked. Events recorded while the
// scan runs land in this snapshot or the next (or count as drops if
// they overwrite unread records mid-scan).
func Snapshot() Trace {
	registry.mu.Lock()
	var rings []*Ring
	if p := registry.rings.Load(); p != nil {
		rings = append(rings, *p...)
	}
	rings = append(rings, registry.retired...)
	dropped := registry.evicted.Load()
	registry.mu.Unlock()

	var out []Event
	for _, r := range rings {
		h := r.head.Load()
		r0 := r.resetHead.Load()
		size := uint64(len(r.buf))
		lo := uint64(0)
		if h > size {
			lo = h - size
		}
		if over := lo; over > r0 {
			dropped += over - r0 // in-window records already overwritten
		}
		if lo < r0 {
			lo = r0
		}
		for i := lo; i < h; i++ {
			rec := &r.buf[i&r.mask]
			s1 := rec.seq.Load()
			if s1 != i+1 {
				dropped++ // overwritten or mid-write
				continue
			}
			ev := Event{
				TS:   rec.ts.Load(),
				Seq:  i,
				Lock: rec.lock.Load(),
				A:    rec.a.Load(),
				B:    rec.b.Load(),
			}
			meta := rec.meta.Load()
			if rec.seq.Load() != s1 {
				dropped++ // torn by a concurrent lap
				continue
			}
			ev.Kind = Kind(meta >> 56)
			ev.Proc = meta & procMask
			out = append(out, ev)
		}
	}
	sortEvents(out)
	return Trace{Events: out, Dropped: dropped}
}

// Dropped estimates the records already lost (overwritten or evicted)
// without materializing a snapshot — the cheap number a live /metrics
// endpoint reports.
func Dropped() uint64 {
	registry.mu.Lock()
	var rings []*Ring
	if p := registry.rings.Load(); p != nil {
		rings = append(rings, *p...)
	}
	rings = append(rings, registry.retired...)
	n := registry.evicted.Load()
	registry.mu.Unlock()
	for _, r := range rings {
		h := r.head.Load()
		if size := uint64(len(r.buf)); h > size {
			if over := h - size; over > r.resetHead.Load() {
				n += over - r.resetHead.Load()
			}
		}
	}
	return n
}

// sortEvents orders by timestamp, breaking ties by writer then
// sequence so one writer's events keep their emission order.
func sortEvents(evs []Event) {
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		return a.Seq < b.Seq
	})
}
