// Package kvtest is the conformance suite for kv.Store, mirroring what
// settest does for the set structures: the KV layer is verified the
// same way as the structures it composes.
//
// The suite covers:
//   - sequential differential testing of all four operations against a
//     map model,
//   - concurrent differential testing against a mutex-guarded map
//     (workers own disjoint key partitions, so per-key comparisons are
//     exact while sharding, routing and structural interference are
//     fully concurrent),
//   - batch-variant differential testing,
//   - contended set-algebra and lost-update (RMW counter) checks,
//     which require atomic upserts and therefore run only on stores
//     with native upsert support,
//   - linearizability of recorded Get/Put/Delete/ReadModifyWrite
//     histories (native upsert only: the fallback's delete-then-insert
//     window is documented as non-atomic),
//   - an oversubscribed pass (workers >> GOMAXPROCS) with deschedule
//     injection in lock-free mode.
package kvtest

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"flock/internal/kv"
	"flock/internal/lincheck"
	"flock/internal/txn"
)

// Modes lists the lock modes the suite exercises.
var Modes = []struct {
	Name     string
	Blocking bool
}{
	{"lockfree", false},
	{"blocking", true},
}

// Run executes the full suite against the factory, across lock modes
// and shard counts (including the unsharded control). When the
// structure implements the optimistic read capability
// (set.OptimisticReader), every configuration is additionally run with
// Options.OptimisticReads — the whole suite must be indistinguishable
// between the logged and optimistic read paths.
func Run(t *testing.T, f kv.Factory) {
	t.Helper()
	optCapable := kv.New(f, kv.Options{Shards: 1, OptimisticReads: true}).OptimisticReads()
	arms := []bool{false}
	if optCapable {
		arms = append(arms, true)
	}
	for _, m := range Modes {
		for _, shards := range []int{1, 4} {
			for _, optimistic := range arms {
				name := fmt.Sprintf("%s/shards=%d", m.Name, shards)
				if optimistic {
					name += "/optimistic"
				}
				opt := kv.Options{Shards: shards, Blocking: m.Blocking, KeyRange: 4096, OptimisticReads: optimistic}
				t.Run(name, func(t *testing.T) {
					t.Run("SequentialModel", func(t *testing.T) { sequentialModel(t, f, opt) })
					t.Run("MutexMapDifferential", func(t *testing.T) { mutexMapDifferential(t, f, opt) })
					t.Run("Batches", func(t *testing.T) { batches(t, f, opt) })
					t.Run("BatchOrdering", func(t *testing.T) { batchOrdering(t, f, opt) })
					t.Run("Oversubscribed", func(t *testing.T) { oversubscribed(t, f, opt) })
					native := kv.New(f, opt).NativeUpsert()
					if native {
						t.Run("ContendedAlgebra", func(t *testing.T) { contendedAlgebra(t, f, opt) })
						t.Run("RMWCounter", func(t *testing.T) { rmwCounter(t, f, opt) })
						t.Run("Linearizable", func(t *testing.T) { linearizable(t, f, opt, 0) })
						if !m.Blocking {
							t.Run("LinearizableWithStalls", func(t *testing.T) { linearizable(t, f, opt, 25) })
						}
					}
				})
			}
		}
		scannable := kv.New(f, kv.Options{Shards: 4}).Scannable()
		if scannable {
			t.Run(m.Name+"/SnapshotConservedSum", func(t *testing.T) { snapshotConservedSum(t, f, m.Blocking) })
			t.Run(m.Name+"/DumpRestoreRoundTrip", func(t *testing.T) {
				dumpRestoreRoundTrip(t, f, kv.Options{Shards: 4, Blocking: m.Blocking, KeyRange: 4096, OptimisticReads: optCapable})
			})
		}
	}
}

// snapshotConservedSum pins the snapshot's atomic-cut guarantee against
// lock-holding writers: with every write going through txn.Transfer —
// which conserves the sum of the two touched accounts — every
// Snapshot's whole-store total must equal the initial funding exactly,
// no matter how the transfer storm interleaves with activation and
// iteration. A torn snapshot (one account read pre-transfer, the other
// post) is exactly what the overlay protocol exists to prevent.
func snapshotConservedSum(t *testing.T, f kv.Factory, blocking bool) {
	mode := txn.LockFree
	if blocking {
		mode = txn.Blocking
	}
	st := txn.New(f, txn.Options{Shards: 4, KeyRange: 8192, Mode: mode, OptimisticReads: true})
	// Enough accounts that an iteration spans several cursor chunks per
	// shard — the snapshot must stay consistent across a long fuzzy
	// iteration, not just a near-atomic single-chunk read.
	const accounts = 1024
	const initBal = 100
	boot := st.Register()
	for k := uint64(1); k <= accounts; k++ {
		boot.Put(k, initBal)
	}
	boot.Close()
	const total = accounts * initBal

	var stop atomic.Bool
	var wg sync.WaitGroup
	const workers = 4
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			c := st.Register()
			defer c.Close()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				a := uint64(rng.Intn(accounts) + 1)
				b := uint64(rng.Intn(accounts) + 1)
				if a == b {
					continue
				}
				c.Transfer(a, b, uint64(rng.Intn(5)+1))
			}
		}(int64(1000 + w))
	}
	defer func() {
		stop.Store(true)
		wg.Wait()
	}()

	for round := 0; round < 3; round++ {
		sn := st.KV().Snapshot()
		var sum uint64
		n := 0
		sn.Iterate(0, math.MaxUint64, func(_, v uint64) bool {
			sum += v
			n++
			if n%32 == 0 {
				runtime.Gosched() // widen the iteration window under the storm
			}
			return true
		})
		if round == 1 {
			// One round also dumps the live snapshot mid-storm and
			// restores it into a fresh store: the restored store's total
			// must be the same conserved sum (the dump is one Iterate
			// pass, so this additionally covers Dump/Restore under
			// concurrent writers).
			var buf bytes.Buffer
			if err := sn.Dump(&buf); err != nil {
				t.Fatalf("round %d: Dump: %v", round, err)
			}
			fresh := kv.New(f, kv.Options{Shards: 3, KeyRange: 8192})
			restored, err := fresh.Restore(&buf)
			if err != nil {
				t.Fatalf("round %d: Restore: %v", round, err)
			}
			if restored != n {
				t.Fatalf("round %d: restored %d records, snapshot iterated %d", round, restored, n)
			}
			fc := fresh.Register()
			var fsum uint64
			for _, kv2 := range fc.Scan(0, math.MaxUint64, -1) {
				fsum += kv2.Value
			}
			fc.Close()
			if fsum != sum {
				t.Fatalf("round %d: restored store total %d, snapshot total %d", round, fsum, sum)
			}
		}
		sn.Close()
		if n != accounts || sum != total {
			t.Fatalf("round %d: snapshot saw %d accounts totalling %d, want %d totalling %d", round, n, sum, accounts, total)
		}
	}
}

// dumpRestoreRoundTrip pins the dump format end to end on a quiesced
// store: Dump then Restore into a fresh store reproduces the exact
// key-value contents (differential full scans), the record count is
// reported faithfully, and a corrupted stream fails the checksum.
func dumpRestoreRoundTrip(t *testing.T, f kv.Factory, opt kv.Options) {
	st := kv.New(f, opt)
	c := st.Register()
	rng := rand.New(rand.NewSource(99))
	model := map[uint64]uint64{}
	for i := 0; i < 700; i++ {
		k := uint64(rng.Intn(4000) + 1)
		v := rng.Uint64()
		c.Put(k, v)
		model[k] = v
	}
	sn := st.Snapshot()
	defer sn.Close()
	var buf bytes.Buffer
	if err := sn.Dump(&buf); err != nil {
		t.Fatalf("Dump: %v", err)
	}
	raw := append([]byte(nil), buf.Bytes()...)

	fresh := kv.New(f, opt)
	n, err := fresh.Restore(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if n != len(model) {
		t.Fatalf("Restore applied %d records, want %d", n, len(model))
	}
	fc := fresh.Register()
	defer fc.Close()
	got := fc.Scan(0, math.MaxUint64, -1)
	want := c.Scan(0, math.MaxUint64, -1)
	c.Close()
	if len(got) != len(want) {
		t.Fatalf("restored scan has %d pairs, original %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("restored pair %d = %v, original %v", i, got[i], want[i])
		}
	}

	// Corruption: flipping one data byte must fail the checksum (or the
	// count, if the flip lands in the trailer).
	bad := append([]byte(nil), raw...)
	bad[len(bad)/2] ^= 0x40
	if _, err := kv.New(f, opt).Restore(bytes.NewReader(bad)); err == nil {
		t.Fatalf("Restore accepted a corrupted stream")
	}
}

// sequentialModel drives one client through a scripted mix of all four
// operations and compares every return value against a map.
func sequentialModel(t *testing.T, f kv.Factory, opt kv.Options) {
	st := kv.New(f, opt)
	c := st.Register()
	defer c.Close()
	model := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(23))

	const ops = 4000
	const keySpace = 300
	for i := 0; i < ops; i++ {
		k := uint64(rng.Intn(keySpace) + 1)
		switch rng.Intn(4) {
		case 0:
			v := rng.Uint64()
			_, had := model[k]
			if ins := c.Put(k, v); ins == had {
				t.Fatalf("op %d: Put(%d) inserted=%v, model had=%v", i, k, ins, had)
			}
			model[k] = v
		case 1:
			_, had := model[k]
			if got := c.Delete(k); got != had {
				t.Fatalf("op %d: Delete(%d)=%v, model had=%v", i, k, got, had)
			}
			delete(model, k)
		case 2:
			want, had := model[k]
			v, got := c.Get(k)
			if got != had || (had && v != want) {
				t.Fatalf("op %d: Get(%d)=(%d,%v), model (%d,%v)", i, k, v, got, want, had)
			}
		case 3:
			delta := rng.Uint64()%1000 + 1
			want, had := model[k]
			old, present := c.ReadModifyWrite(k, func(o uint64, _ bool) uint64 { return o + delta })
			if present != had || (had && old != want) {
				t.Fatalf("op %d: RMW(%d)=(%d,%v), model (%d,%v)", i, k, old, present, want, had)
			}
			model[k] = want + delta
		}
	}
	for k := uint64(1); k <= keySpace; k++ {
		want, had := model[k]
		v, got := c.Get(k)
		if got != had || (had && v != want) {
			t.Fatalf("final sweep: Get(%d)=(%d,%v), model (%d,%v)", k, v, got, want, had)
		}
	}
}

// mutexMapDifferential runs concurrent workers over disjoint key
// partitions against a single mutex-guarded map: each key is touched by
// one worker only, so store and model answers must agree exactly, while
// the store still sees fully concurrent traffic on every shard.
func mutexMapDifferential(t *testing.T, f kv.Factory, opt kv.Options) {
	st := kv.New(f, opt)
	const workers = 8
	const keysPer = 100
	const ops = 500

	var mu sync.Mutex
	model := map[uint64]uint64{}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := st.Register()
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(w)*601 + 13))
			key := func(i int) uint64 { return uint64(w + 1 + i*workers) }
			for i := 0; i < ops; i++ {
				k := key(rng.Intn(keysPer))
				switch rng.Intn(4) {
				case 0:
					v := rng.Uint64()
					mu.Lock()
					_, had := model[k]
					model[k] = v
					mu.Unlock()
					if ins := c.Put(k, v); ins == had {
						t.Errorf("w%d: Put(%d) inserted=%v, model had=%v", w, k, ins, had)
						return
					}
				case 1:
					mu.Lock()
					_, had := model[k]
					delete(model, k)
					mu.Unlock()
					if got := c.Delete(k); got != had {
						t.Errorf("w%d: Delete(%d)=%v, model had=%v", w, k, got, had)
						return
					}
				case 2:
					mu.Lock()
					want, had := model[k]
					mu.Unlock()
					v, got := c.Get(k)
					if got != had || (had && v != want) {
						t.Errorf("w%d: Get(%d)=(%d,%v), model (%d,%v)", w, k, v, got, want, had)
						return
					}
				case 3:
					delta := rng.Uint64()%999 + 1
					mu.Lock()
					want, had := model[k]
					model[k] = want + delta
					mu.Unlock()
					old, present := c.ReadModifyWrite(k, func(o uint64, _ bool) uint64 { return o + delta })
					if present != had || (had && old != want) {
						t.Errorf("w%d: RMW(%d)=(%d,%v), model (%d,%v)", w, k, old, present, want, had)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	c := st.Register()
	defer c.Close()
	for w := 0; w < workers; w++ {
		for i := 0; i < keysPer; i++ {
			k := uint64(w + 1 + i*workers)
			want, had := model[k]
			v, got := c.Get(k)
			if got != had || (had && v != want) {
				t.Fatalf("final: key %d = (%d,%v), want (%d,%v)", k, v, got, want, had)
			}
		}
	}
}

// batches checks the batch variants against a map, with keys scattered
// across shards and some duplicates within a batch (later entries win).
func batches(t *testing.T, f kv.Factory, opt kv.Options) {
	st := kv.New(f, opt)
	c := st.Register()
	defer c.Close()
	model := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(77))

	for round := 0; round < 20; round++ {
		n := rng.Intn(40) + 1
		keys := make([]uint64, n)
		vals := make([]uint64, n)
		for i := range keys {
			keys[i] = uint64(rng.Intn(200) + 1)
			vals[i] = rng.Uint64()
		}

		wantIns := 0
		seen := map[uint64]bool{}
		// Batches visit keys shard-grouped, not in slice order, so with
		// in-batch duplicates only the per-key counts are deterministic:
		// a key is "newly inserted" at most once per batch.
		for _, k := range keys {
			if _, had := model[k]; !had && !seen[k] {
				wantIns++
			}
			seen[k] = true
		}
		gotIns := c.PutBatch(keys, vals)
		if gotIns != wantIns {
			t.Fatalf("round %d: PutBatch inserted %d, want %d", round, gotIns, wantIns)
		}
		// The surviving value per key is whichever duplicate the batch
		// applied last; read it back from the store and require it to be
		// one of that key's batch values, then sync the model to it.
		for _, k := range keys {
			v, ok := c.Get(k)
			if !ok {
				t.Fatalf("round %d: key %d missing after PutBatch", round, k)
			}
			legal := false
			for j, kk := range keys {
				if kk == k && vals[j] == v {
					legal = true
					break
				}
			}
			if !legal {
				t.Fatalf("round %d: key %d holds %d, not a batch value", round, k, v)
			}
			model[k] = v
		}

		getKeys := make([]uint64, 30)
		for i := range getKeys {
			getKeys[i] = uint64(rng.Intn(300) + 1)
		}
		gv, gok := c.GetBatch(getKeys)
		for i, k := range getKeys {
			want, had := model[k]
			if gok[i] != had || (had && gv[i] != want) {
				t.Fatalf("round %d: GetBatch[%d] key %d = (%d,%v), want (%d,%v)",
					round, i, k, gv[i], gok[i], want, had)
			}
		}

		delKeys := make([]uint64, 15)
		wantDel := 0
		seenDel := map[uint64]bool{}
		for i := range delKeys {
			k := uint64(rng.Intn(250) + 1)
			delKeys[i] = k
			if _, had := model[k]; had && !seenDel[k] {
				wantDel++
			}
			seenDel[k] = true
			delete(model, k)
		}
		if gotDel := c.DeleteBatch(delKeys); gotDel != wantDel {
			t.Fatalf("round %d: DeleteBatch removed %d, want %d", round, gotDel, wantDel)
		}
	}
}

// batchOrdering is the result-ordering conformance pass: batches
// execute shard-grouped (not in input order), but their results must
// still line up with the input — GetBatch's vals[i]/oks[i] belong to
// keys[i], duplicate keys in a GetBatch all answer, and duplicate keys
// in a PutBatch resolve to the *input-order-last* value (shard-grouped
// visiting is index-stable within a shard, and this pins that contract).
func batchOrdering(t *testing.T, f kv.Factory, opt kv.Options) {
	st := kv.New(f, opt)
	c := st.Register()
	defer c.Close()

	// Keys deliberately interleaved across shards: consecutive input
	// indices land on different shards, so shard-grouped execution
	// visits them far from input order.
	keys := make([]uint64, 0, 64)
	for i := 0; i < 32; i++ {
		keys = append(keys, uint64(1000+i), uint64(5000+31-i))
	}
	vals := make([]uint64, len(keys))
	for i := range vals {
		vals[i] = uint64(i) * 10
	}
	if ins := c.PutBatch(keys, vals); ins != len(keys) {
		t.Fatalf("PutBatch inserted %d, want %d", ins, len(keys))
	}
	gv, gok := c.GetBatch(keys)
	if len(gv) != len(keys) || len(gok) != len(keys) {
		t.Fatalf("GetBatch lengths %d/%d, want %d", len(gv), len(gok), len(keys))
	}
	for i := range keys {
		if !gok[i] || gv[i] != vals[i] {
			t.Fatalf("GetBatch[%d] (key %d) = (%d,%v), want (%d,true): results misaligned with input order",
				i, keys[i], gv[i], gok[i], vals[i])
		}
	}

	// Duplicates in a PutBatch: every occurrence targets one shard, and
	// the input-order-last value must survive.
	dupKeys := []uint64{77, 1000, 77, 5000, 77}
	dupVals := []uint64{1, 2, 3, 4, 5}
	if ins := c.PutBatch(dupKeys, dupVals); ins != 1 { // only 77 is new
		t.Fatalf("duplicate PutBatch inserted %d, want 1", ins)
	}
	dv, dok := c.GetBatch([]uint64{77, 77})
	if !dok[0] || !dok[1] || dv[0] != 5 || dv[1] != 5 {
		t.Fatalf("duplicate key 77 = (%d,%v)/(%d,%v), want (5,true) twice (input-order-last write wins)",
			dv[0], dok[0], dv[1], dok[1])
	}

	// Duplicates in GetBatch and DeleteBatch: every input position gets
	// an answer; deleting a duplicate counts its presence once.
	if del := c.DeleteBatch([]uint64{77, 77, 1000}); del != 2 {
		t.Fatalf("DeleteBatch removed %d, want 2 (duplicate present once)", del)
	}
	gv2, gok2 := c.GetBatch([]uint64{77, 1000, 5000})
	if gok2[0] || gok2[1] || !gok2[2] {
		t.Fatalf("post-delete presence (%v,%v,%v), want (false,false,true)", gok2[0], gok2[1], gok2[2])
	}
	if gv2[2] != 4 { // written by the duplicate batch above
		t.Fatalf("key 5000 = %d, want 4", gv2[2])
	}
}

// contendedAlgebra hammers a small hot range with Put/Delete from many
// workers and checks set algebra: per key, newly-inserting puts minus
// successful deletes must equal final presence (0 or 1). This requires
// atomic upserts — the fallback's delete-then-insert window breaks the
// accounting — so it runs only on native-upsert stores.
func contendedAlgebra(t *testing.T, f kv.Factory, opt kv.Options) {
	st := kv.New(f, opt)
	const workers = 8
	const hotKeys = 10
	const ops = 1200

	type tally struct{ ins, del [hotKeys + 1]int64 }
	tallies := make([]tally, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := st.Register()
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(w)*457 + 9))
			for i := 0; i < ops; i++ {
				k := uint64(rng.Intn(hotKeys) + 1)
				switch rng.Intn(3) {
				case 0:
					if c.Put(k, uint64(w)+1) {
						tallies[w].ins[k]++
					}
				case 1:
					if c.Delete(k) {
						tallies[w].del[k]++
					}
				case 2:
					c.Get(k)
				}
			}
		}(w)
	}
	wg.Wait()

	c := st.Register()
	defer c.Close()
	for k := uint64(1); k <= hotKeys; k++ {
		var ins, del int64
		for w := 0; w < workers; w++ {
			ins += tallies[w].ins[k]
			del += tallies[w].del[k]
		}
		diff := ins - del
		_, present := c.Get(k)
		if diff != 0 && diff != 1 {
			t.Fatalf("key %d: ins=%d del=%d (diff %d)", k, ins, del, diff)
		}
		if (diff == 1) != present {
			t.Fatalf("key %d: diff=%d but present=%v", k, diff, present)
		}
	}
}

// rmwCounter is the lost-update test: all workers increment a few hot
// keys through ReadModifyWrite; with atomic upserts the final sums must
// equal the exact number of increments.
func rmwCounter(t *testing.T, f kv.Factory, opt kv.Options) {
	st := kv.New(f, opt)
	const workers = 8
	const keys = 4
	const ops = 600
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := st.Register()
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(w)*911 + 2))
			for i := 0; i < ops; i++ {
				k := uint64(rng.Intn(keys) + 1)
				c.ReadModifyWrite(k, func(o uint64, _ bool) uint64 { return o + 1 })
			}
		}(w)
	}
	wg.Wait()
	c := st.Register()
	defer c.Close()
	var total uint64
	for k := uint64(1); k <= keys; k++ {
		v, ok := c.Get(k)
		if !ok {
			t.Fatalf("hot key %d absent after increments", k)
		}
		total += v
	}
	if total != workers*ops {
		t.Fatalf("lost updates: %d increments survived, want %d", total, workers*ops)
	}
}

// linearizable records a contended multi-worker Get/Put/Delete/RMW
// history and verifies a legal sequential witness exists. stallEvery > 0
// additionally injects descheduling inside critical sections so most
// operations complete via helping.
func linearizable(t *testing.T, f kv.Factory, opt kv.Options, stallEvery int) {
	st := kv.New(f, opt)
	st.SetStallInjection(stallEvery)
	const workers = 6
	const keys = 4
	opsPer := 200
	if stallEvery > 0 {
		opsPer = 80
	}

	var clock atomic.Int64
	hists := make([][]lincheck.Op, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := st.Register()
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(w)*1777 + 7))
			rec := func(op lincheck.Op) { hists[w] = append(hists[w], op) }
			for i := 0; i < opsPer; i++ {
				k := uint64(rng.Intn(keys) + 1)
				switch rng.Intn(4) {
				case 0:
					v := uint64(w)*100000 + uint64(i)
					s := clock.Add(1)
					ins := c.Put(k, v)
					e := clock.Add(1)
					rec(lincheck.Op{Kind: lincheck.KPut, Key: k, Arg: v, Ok: !ins, Start: s, End: e, Worker: w})
				case 1:
					s := clock.Add(1)
					ok := c.Delete(k)
					e := clock.Add(1)
					rec(lincheck.Op{Kind: lincheck.KDelete, Key: k, Ok: ok, Start: s, End: e, Worker: w})
				case 2:
					delta := uint64(w)*100000 + 50000 + uint64(i)
					s := clock.Add(1)
					old, present := c.ReadModifyWrite(k, func(o uint64, _ bool) uint64 { return o + delta })
					e := clock.Add(1)
					rec(lincheck.Op{Kind: lincheck.KUpsert, Key: k, Arg: old + delta, Ok: present, Val: old, Start: s, End: e, Worker: w})
				default:
					s := clock.Add(1)
					v, ok := c.Get(k)
					e := clock.Add(1)
					rec(lincheck.Op{Kind: lincheck.KFind, Key: k, Ok: ok, Val: v, Start: s, End: e, Worker: w})
				}
			}
		}(w)
	}
	wg.Wait()
	var all []lincheck.Op
	for _, h := range hists {
		all = append(all, h...)
	}
	if res := lincheck.Check(all); !res.Ok {
		t.Fatalf("history of %d ops: %v", len(all), res)
	}
}

// oversubscribed runs many more clients than GOMAXPROCS over disjoint
// key partitions (RMW counters per key, so the final state is exact for
// fallback stores too), with deschedule injection in lock-free mode.
func oversubscribed(t *testing.T, f kv.Factory, opt kv.Options) {
	st := kv.New(f, opt)
	if !opt.Blocking {
		st.SetStallInjection(50)
	}
	const workers = 24
	const keysPer = 6
	const ops = 300

	counts := make([]map[uint64]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := st.Register()
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(w)*37 + 5))
			mine := map[uint64]uint64{}
			key := func(i int) uint64 { return uint64(w + 1 + i*workers) }
			for i := 0; i < ops; i++ {
				k := key(rng.Intn(keysPer))
				c.ReadModifyWrite(k, func(o uint64, _ bool) uint64 { return o + 1 })
				mine[k]++
			}
			counts[w] = mine
		}(w)
	}
	wg.Wait()

	c := st.Register()
	defer c.Close()
	for w := 0; w < workers; w++ {
		for k, want := range counts[w] {
			v, ok := c.Get(k)
			if !ok || v != want {
				t.Fatalf("key %d (worker %d): got (%d,%v), want %d increments", k, w, v, ok, want)
			}
		}
	}
}
