package kv_test

import (
	"testing"

	flock "flock/internal/core"
	"flock/internal/kv"
	"flock/internal/kv/kvtest"
	"flock/internal/structures/hashtable"
	"flock/internal/structures/lazylist"
	"flock/internal/structures/leaftree"
	"flock/internal/structures/set"
	"flock/internal/workload"
)

func leaftreeFactory(rt *flock.Runtime, _ uint64) set.Set  { return leaftree.New(rt) }
func hashtableFactory(rt *flock.Runtime, r uint64) set.Set { return hashtable.New(rt, int(r)) }
func lazylistFactory(rt *flock.Runtime, _ uint64) set.Set  { return lazylist.New(rt) }

// The two native-upsert structures get the full conformance suite,
// including the atomicity-dependent passes.
func TestConformanceLeaftree(t *testing.T)  { kvtest.Run(t, leaftreeFactory) }
func TestConformanceHashtable(t *testing.T) { kvtest.Run(t, hashtableFactory) }

// lazylist has no native upsert: it exercises the delete-then-insert
// fallback (the suite automatically skips the atomicity passes).
func TestConformanceLazylistFallback(t *testing.T) {
	if testing.Short() {
		t.Skip("lazylist fallback conformance is slow (O(n) lists); covered by the full run")
	}
	kvtest.Run(t, lazylistFactory)
}

func TestNativeUpsertDetection(t *testing.T) {
	if !kv.New(leaftreeFactory, kv.Options{Shards: 2}).NativeUpsert() {
		t.Fatalf("leaftree store should report native upsert")
	}
	if !kv.New(hashtableFactory, kv.Options{Shards: 2}).NativeUpsert() {
		t.Fatalf("hashtable store should report native upsert")
	}
	if kv.New(lazylistFactory, kv.Options{Shards: 2}).NativeUpsert() {
		t.Fatalf("lazylist store should report fallback upsert")
	}
}

func TestShardRouting(t *testing.T) {
	st := kv.New(leaftreeFactory, kv.Options{Shards: 8, KeyRange: 1024})
	if st.NumShards() != 8 {
		t.Fatalf("NumShards = %d, want 8", st.NumShards())
	}
	counts := make([]int, 8)
	for k := uint64(1); k <= 4096; k++ {
		s := st.ShardOf(k)
		if s < 0 || s >= 8 {
			t.Fatalf("key %d routed to out-of-range shard %d", k, s)
		}
		if s != st.ShardOf(k) {
			t.Fatalf("routing not deterministic for key %d", k)
		}
		counts[s]++
	}
	// Hash routing must spread keys roughly evenly (512 expected).
	for s, n := range counts {
		if n < 350 || n > 700 {
			t.Fatalf("shard %d holds %d of 4096 keys; routing badly skewed", s, n)
		}
	}
}

// TestShardRoutingDecorrelatedFromKeyHash guards the bucket-starvation
// trap: hashtable buckets index by Hash64(k) & mask, so if routing used
// the same unsalted hash, all keys in one shard would share their low
// Hash64 bits and reach only 1/shards of each shard's buckets.
func TestShardRoutingDecorrelatedFromKeyHash(t *testing.T) {
	st := kv.New(hashtableFactory, kv.Options{Shards: 8, KeyRange: 4096})
	const lowBits = 6 // well within any per-shard bucket mask
	seen := map[uint64]bool{}
	for k := uint64(1); k <= 8192; k++ {
		if st.ShardOf(k) == 0 {
			seen[workload.Hash64(k)&(1<<lowBits-1)] = true
		}
	}
	// Keys routed to one shard must still cover (essentially) all low
	// bucket-hash bit patterns.
	if len(seen) < 60 {
		t.Fatalf("shard 0's keys cover only %d/64 low bucket-hash patterns; routing correlated with key hash", len(seen))
	}
}

func TestShardsDefaultToOne(t *testing.T) {
	for _, shards := range []int{0, -3} {
		st := kv.New(leaftreeFactory, kv.Options{Shards: shards})
		if st.NumShards() != 1 {
			t.Fatalf("Shards=%d built %d shards, want 1", shards, st.NumShards())
		}
	}
}

// TestUnshardedControlAgrees runs the same deterministic script against
// an 8-shard store and the unsharded control; both must produce
// identical answers for every operation.
func TestUnshardedControlAgrees(t *testing.T) {
	a := kv.New(leaftreeFactory, kv.Options{Shards: 8, KeyRange: 512}).Register()
	b := kv.New(leaftreeFactory, kv.Options{Shards: 1, KeyRange: 512}).Register()
	defer a.Close()
	defer b.Close()
	rng := workload.NewSplitMix64(5)
	for i := 0; i < 3000; i++ {
		k := rng.Next()%256 + 1
		switch rng.Next() % 4 {
		case 0:
			v := rng.Next()
			if x, y := a.Put(k, v), b.Put(k, v); x != y {
				t.Fatalf("op %d: Put(%d) sharded=%v unsharded=%v", i, k, x, y)
			}
		case 1:
			if x, y := a.Delete(k), b.Delete(k); x != y {
				t.Fatalf("op %d: Delete(%d) sharded=%v unsharded=%v", i, k, x, y)
			}
		case 2:
			av, aok := a.Get(k)
			bv, bok := b.Get(k)
			if av != bv || aok != bok {
				t.Fatalf("op %d: Get(%d) sharded=(%d,%v) unsharded=(%d,%v)", i, k, av, aok, bv, bok)
			}
		case 3:
			f := func(o uint64, _ bool) uint64 { return o*3 + 1 }
			ao, ap := a.ReadModifyWrite(k, f)
			bo, bp := b.ReadModifyWrite(k, f)
			if ao != bo || ap != bp {
				t.Fatalf("op %d: RMW(%d) sharded=(%d,%v) unsharded=(%d,%v)", i, k, ao, ap, bo, bp)
			}
		}
	}
}

func TestPutBatchLengthMismatchPanics(t *testing.T) {
	c := kv.New(leaftreeFactory, kv.Options{Shards: 2}).Register()
	defer c.Close()
	defer func() {
		if recover() == nil {
			t.Fatalf("PutBatch with mismatched lengths did not panic")
		}
	}()
	c.PutBatch([]uint64{1, 2}, []uint64{1})
}
