package kv_test

import (
	"math"
	"sort"
	"sync"
	"testing"

	flock "flock/internal/core"
	"flock/internal/kv"
	"flock/internal/kv/kvtest"
	"flock/internal/obs"
	"flock/internal/structures/hashtable"
	"flock/internal/structures/lazylist"
	"flock/internal/structures/leaftree"
	"flock/internal/structures/set"
	"flock/internal/txn"
	"flock/internal/workload"
)

func leaftreeFactory(rt *flock.Runtime, _ uint64) set.Set  { return leaftree.New(rt) }
func hashtableFactory(rt *flock.Runtime, r uint64) set.Set { return hashtable.New(rt, int(r)) }
func lazylistFactory(rt *flock.Runtime, _ uint64) set.Set  { return lazylist.New(rt) }

// The two native-upsert structures get the full conformance suite,
// including the atomicity-dependent passes.
func TestConformanceLeaftree(t *testing.T)  { kvtest.Run(t, leaftreeFactory) }
func TestConformanceHashtable(t *testing.T) { kvtest.Run(t, hashtableFactory) }

// lazylist has no native upsert: it exercises the delete-then-insert
// fallback (the suite automatically skips the atomicity passes).
func TestConformanceLazylistFallback(t *testing.T) {
	if testing.Short() {
		t.Skip("lazylist fallback conformance is slow (O(n) lists); covered by the full run")
	}
	kvtest.Run(t, lazylistFactory)
}

func TestNativeUpsertDetection(t *testing.T) {
	if !kv.New(leaftreeFactory, kv.Options{Shards: 2}).NativeUpsert() {
		t.Fatalf("leaftree store should report native upsert")
	}
	if !kv.New(hashtableFactory, kv.Options{Shards: 2}).NativeUpsert() {
		t.Fatalf("hashtable store should report native upsert")
	}
	if kv.New(lazylistFactory, kv.Options{Shards: 2}).NativeUpsert() {
		t.Fatalf("lazylist store should report fallback upsert")
	}
}

func TestShardRouting(t *testing.T) {
	st := kv.New(leaftreeFactory, kv.Options{Shards: 8, KeyRange: 1024})
	if st.NumShards() != 8 {
		t.Fatalf("NumShards = %d, want 8", st.NumShards())
	}
	counts := make([]int, 8)
	for k := uint64(1); k <= 4096; k++ {
		s := st.ShardOf(k)
		if s < 0 || s >= 8 {
			t.Fatalf("key %d routed to out-of-range shard %d", k, s)
		}
		if s != st.ShardOf(k) {
			t.Fatalf("routing not deterministic for key %d", k)
		}
		counts[s]++
	}
	// Hash routing must spread keys roughly evenly (512 expected).
	for s, n := range counts {
		if n < 350 || n > 700 {
			t.Fatalf("shard %d holds %d of 4096 keys; routing badly skewed", s, n)
		}
	}
}

// TestShardRoutingDecorrelatedFromKeyHash guards the bucket-starvation
// trap: hashtable buckets index by Hash64(k) & mask, so if routing used
// the same unsalted hash, all keys in one shard would share their low
// Hash64 bits and reach only 1/shards of each shard's buckets.
func TestShardRoutingDecorrelatedFromKeyHash(t *testing.T) {
	st := kv.New(hashtableFactory, kv.Options{Shards: 8, KeyRange: 4096})
	const lowBits = 6 // well within any per-shard bucket mask
	seen := map[uint64]bool{}
	for k := uint64(1); k <= 8192; k++ {
		if st.ShardOf(k) == 0 {
			seen[workload.Hash64(k)&(1<<lowBits-1)] = true
		}
	}
	// Keys routed to one shard must still cover (essentially) all low
	// bucket-hash bit patterns.
	if len(seen) < 60 {
		t.Fatalf("shard 0's keys cover only %d/64 low bucket-hash patterns; routing correlated with key hash", len(seen))
	}
}

func TestShardsDefaultToOne(t *testing.T) {
	for _, shards := range []int{0, -3} {
		st := kv.New(leaftreeFactory, kv.Options{Shards: shards})
		if st.NumShards() != 1 {
			t.Fatalf("Shards=%d built %d shards, want 1", shards, st.NumShards())
		}
	}
}

// TestUnshardedControlAgrees runs the same deterministic script against
// an 8-shard store and the unsharded control; both must produce
// identical answers for every operation.
func TestUnshardedControlAgrees(t *testing.T) {
	a := kv.New(leaftreeFactory, kv.Options{Shards: 8, KeyRange: 512}).Register()
	b := kv.New(leaftreeFactory, kv.Options{Shards: 1, KeyRange: 512}).Register()
	defer a.Close()
	defer b.Close()
	rng := workload.NewSplitMix64(5)
	for i := 0; i < 3000; i++ {
		k := rng.Next()%256 + 1
		switch rng.Next() % 4 {
		case 0:
			v := rng.Next()
			if x, y := a.Put(k, v), b.Put(k, v); x != y {
				t.Fatalf("op %d: Put(%d) sharded=%v unsharded=%v", i, k, x, y)
			}
		case 1:
			if x, y := a.Delete(k), b.Delete(k); x != y {
				t.Fatalf("op %d: Delete(%d) sharded=%v unsharded=%v", i, k, x, y)
			}
		case 2:
			av, aok := a.Get(k)
			bv, bok := b.Get(k)
			if av != bv || aok != bok {
				t.Fatalf("op %d: Get(%d) sharded=(%d,%v) unsharded=(%d,%v)", i, k, av, aok, bv, bok)
			}
		case 3:
			f := func(o uint64, _ bool) uint64 { return o*3 + 1 }
			ao, ap := a.ReadModifyWrite(k, f)
			bo, bp := b.ReadModifyWrite(k, f)
			if ao != bo || ap != bp {
				t.Fatalf("op %d: RMW(%d) sharded=(%d,%v) unsharded=(%d,%v)", i, k, ao, ap, bo, bp)
			}
		}
	}
}

// TestScanModelAcrossShards drives random puts/deletes/scans against an
// 8-shard store (and the shared-runtime variant) and compares every
// scan exactly against a map model: hash routing scatters each interval
// over all shards, so this exercises the scatter-gather merge
// end to end. Sequentially a scan must be an exact snapshot.
func TestScanModelAcrossShards(t *testing.T) {
	for _, shared := range []bool{false, true} {
		c := kv.New(leaftreeFactory, kv.Options{Shards: 8, KeyRange: 512, SharedRuntime: shared}).Register()
		model := map[uint64]uint64{}
		rng := workload.NewSplitMix64(17)
		for i := 0; i < 2500; i++ {
			switch rng.Next() % 4 {
			case 0, 1:
				k, v := rng.Next()%256+1, rng.Next()
				c.Put(k, v)
				model[k] = v
			case 2:
				k := rng.Next()%256 + 1
				c.Delete(k)
				delete(model, k)
			default:
				lo := rng.Next() % 300
				hi := lo + rng.Next()%300
				limit := -1
				if rng.Next()%2 == 0 {
					limit = int(rng.Next()%20) + 1
				}
				got := c.Scan(lo, hi, limit)
				var want []set.KV
				for k, v := range model {
					if k >= lo && k <= hi {
						want = append(want, set.KV{Key: k, Value: v})
					}
				}
				sort.Slice(want, func(a, b int) bool { return want[a].Key < want[b].Key })
				if limit > 0 && len(want) > limit {
					want = want[:limit]
				}
				if len(got) != len(want) {
					t.Fatalf("shared=%v op %d: Scan(%d,%d,%d) = %d pairs, want %d", shared, i, lo, hi, limit, len(got), len(want))
				}
				for j := range got {
					if got[j] != want[j] {
						t.Fatalf("shared=%v op %d: Scan(%d,%d,%d)[%d] = %v, want %v", shared, i, lo, hi, limit, j, got[j], want[j])
					}
				}
			}
		}
		c.Close()
	}
}

// TestScanSentinelBoundsAndLimit pins the open-interval sentinels and
// the cross-shard merge order: with keys scattered over 8 shards, a
// limited full-range scan must return the globally smallest keys.
func TestScanSentinelBoundsAndLimit(t *testing.T) {
	c := kv.New(leaftreeFactory, kv.Options{Shards: 8, KeyRange: 256}).Register()
	defer c.Close()
	for k := uint64(1); k <= 100; k++ {
		c.Put(k, k*3)
	}
	got := c.Scan(0, math.MaxUint64, -1)
	if len(got) != 100 {
		t.Fatalf("full scan returned %d pairs, want 100", len(got))
	}
	for i, kv := range got {
		if kv.Key != uint64(i+1) || kv.Value != uint64(i+1)*3 {
			t.Fatalf("full scan[%d] = %v, want key %d", i, kv, i+1)
		}
	}
	ten := c.Scan(0, math.MaxUint64, 10)
	if len(ten) != 10 || ten[0].Key != 1 || ten[9].Key != 10 {
		t.Fatalf("limit-10 scan = %v, want keys 1..10 in order", ten)
	}
	if sub := c.Scan(40, 49, -1); len(sub) != 10 || sub[0].Key != 40 || sub[9].Key != 49 {
		t.Fatalf("sub-range scan = %v, want keys 40..49", sub)
	}
}

// TestScannableDetection: structures with a Scan report Scannable
// (including hashtable, whose sorted bucket sweep implements it);
// structures without one report false and Scan panics.
func TestScannableDetection(t *testing.T) {
	if !kv.New(leaftreeFactory, kv.Options{Shards: 2}).Scannable() {
		t.Fatalf("leaftree store should be scannable")
	}
	if !kv.New(hashtableFactory, kv.Options{Shards: 2}).Scannable() {
		t.Fatalf("hashtable store should be scannable")
	}
	// A capability-stripped wrapper: the embedded interface exposes only
	// set.Set, so the store must detect the missing Scanner.
	bare := func(rt *flock.Runtime, keyRange uint64) set.Set {
		return struct{ set.Set }{leaftree.New(rt)}
	}
	st := kv.New(bare, kv.Options{Shards: 2})
	if st.Scannable() {
		t.Fatalf("capability-stripped store should not be scannable")
	}
	c := st.Register()
	defer c.Close()
	defer func() {
		if recover() == nil {
			t.Fatalf("Scan on a non-scannable store did not panic")
		}
	}()
	c.Scan(1, 10, -1)
}

// TestScanSerializesWithTransactions is the composed-lock atomicity
// check: on a shared-runtime store a scan holds every shard lock at
// once, so concurrent multi-shard Transfers can never tear it — every
// full scan of the account pool must see the conserved total balance.
func TestScanSerializesWithTransactions(t *testing.T) {
	const accounts = 64
	const initial = 100
	st := txn.New(leaftreeFactory, txn.Options{Shards: 4, KeyRange: accounts})
	seed := st.KV().Register()
	for k := uint64(1); k <= accounts; k++ {
		seed.Put(k, initial)
	}
	seed.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := st.Register()
			defer c.Close()
			rng := workload.NewSplitMix64(uint64(w)*77 + 1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				a := rng.Next()%accounts + 1
				b := rng.Next()%accounts + 1
				c.Transfer(a, b, rng.Next()%5)
			}
		}(w)
	}

	scanner := st.KV().Register()
	for i := 0; i < 300; i++ {
		got := scanner.Scan(0, math.MaxUint64, -1)
		if len(got) != accounts {
			t.Errorf("scan %d saw %d accounts, want %d", i, len(got), accounts)
			break
		}
		var sum uint64
		for _, kv := range got {
			sum += kv.Value
		}
		if sum != accounts*initial {
			t.Errorf("scan %d saw torn total %d, want %d", i, sum, accounts*initial)
			break
		}
	}
	scanner.Close()
	close(stop)
	wg.Wait()
}

func TestPutBatchLengthMismatchPanics(t *testing.T) {
	c := kv.New(leaftreeFactory, kv.Options{Shards: 2}).Register()
	defer c.Close()
	defer func() {
		if recover() == nil {
			t.Fatalf("PutBatch with mismatched lengths did not panic")
		}
	}()
	c.PutBatch([]uint64{1, 2}, []uint64{1})
}

// TestMetricsShardOpsFoldOnClose pins the per-shard op accounting
// (DESIGN.md S14): client-local counts accrue only while obs is
// enabled, fold into the store's atomics on Close, and skew toward the
// shards the keys actually route to.
func TestMetricsShardOpsFoldOnClose(t *testing.T) {
	prev := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(prev)

	st := kv.New(leaftreeFactory, kv.Options{Shards: 4, KeyRange: 1 << 10})
	base := st.ShardOps()

	c := st.Register()
	var want [4]uint64
	for k := uint64(0); k < 200; k++ {
		c.Put(k, k)
		c.Get(k)
		want[st.ShardOf(k)] += 2
	}
	// Counts are client-local until Close: the store must not have
	// moved yet (the fold is what keeps the hot path contention-free).
	mid := st.ShardOps()
	for i := range mid {
		if mid[i] != base[i] {
			t.Fatalf("shard %d ops folded before Close: %d -> %d", i, base[i], mid[i])
		}
	}
	c.Close()

	after := st.ShardOps()
	for i := range after {
		if got := after[i] - base[i]; got != want[i] {
			t.Errorf("shard %d ops = %d, want %d", i, got, want[i])
		}
	}

	// With obs disabled, a client's ops must not accrue at all.
	obs.SetEnabled(false)
	c2 := st.Register()
	for k := uint64(0); k < 100; k++ {
		c2.Get(k)
	}
	c2.Close()
	obs.SetEnabled(true)
	final := st.ShardOps()
	for i := range final {
		if final[i] != after[i] {
			t.Errorf("shard %d ops moved while disabled: %d -> %d", i, after[i], final[i])
		}
	}
}
