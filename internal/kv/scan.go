// Range scans over the sharded store. Hash routing scatters every key
// interval across all shards, so a scan is a scatter-gather: each
// shard's ordered structure is scanned under that shard's lock — locks
// acquired in ascending shard order, the transaction layer's nesting
// protocol — and the per-shard sorted runs are merged by key up to the
// limit. The nesting, retry and version-vector machinery lives in
// internal/kv/engine (DESIGN.md S17); this file only routes the scan
// through the engine's arms and merges the runs. See DESIGN.md S12.

package kv

import (
	"fmt"
	"sync/atomic"

	flock "flock/internal/core"
	"flock/internal/kv/engine"
	"flock/internal/obs/trace"
	"flock/internal/structures/set"
)

// Scannable reports whether every shard's structure supports ordered
// range scans (set.Scanner). Scan panics on a non-scannable store.
func (st *Store) Scannable() bool { return st.scan }

// NestShardLocks runs body inside a composed critical section holding
// every listed shard lock, nesting TryLock calls in ascending order —
// the transaction protocol's acquisition step (DESIGN.md S11). It is a
// thin delegate to the store's execution engine (engine.Engine.Nest),
// kept on Store because it is the public composition point callers
// outside the kv/txn pair use.
func (st *Store) NestShardLocks(p *flock.Proc, shards []int, body func(hp *flock.Proc)) bool {
	return st.eng.Nest(p, shards, body)
}

// Scan returns up to limit key-value pairs with lo <= key <= hi, merged
// in ascending key order across every shard (limit < 0 means unbounded,
// limit 0 yields an empty result; 0 and MaxUint64 are the open-interval
// bound sentinels, see set.ClampScanBounds). With
// Options.OptimisticReads (and a capable structure) the scan first runs
// the engine's optimistic arm — unlogged per-shard scans validated
// against a version vector over every shard lock, whole-operation
// restart on any failure — and escalates to the locked arm after
// MaxOptimistic failed attempts. On the locked arm each shard
// contributes a run collected by the structure's scan thunk while that
// shard's lock is held: one composed critical section over all shards
// on a shared-runtime store (so the scan is atomic with respect to
// multi-key transactions — as is a validated optimistic scan, per the
// version-vector argument), ascending one-shard sections on a
// per-shard-runtime store. Plain single-key Client operations never
// take shard locks, so the result is weakly consistent with respect to
// them either way: every returned pair was present, and every missing
// in-range key absent, at some instant during the scan.
//
// Scan panics if the store's structure does not implement set.Scanner
// (see Scannable).
func (c *Client) Scan(lo, hi uint64, limit int) []set.KV {
	st := c.st
	if !st.scan {
		panic(fmt.Sprintf("kv: Scan on a store whose structure (%T) does not implement set.Scanner", st.shards[0].s))
	}
	if limit == 0 {
		return nil
	}
	t0 := traceStart()
	if st.optScan && !c.procs[0].InThunk() {
		parts := make([][]set.KV, len(st.shards))
		ok := st.eng.OptimisticGroup(c.procs, st.eng.AllShards(), func() {
			for i := range st.shards {
				parts[i] = st.shards[i].osc.OptimisticScan(c.procs[i], lo, hi, limit)
			}
		})
		if ok {
			traceOp(c.procs[0], t0, multiShard, trace.KVScan)
			return engine.MergeRuns(parts, limit)
		}
	}
	out := c.scanLocked(lo, hi, limit)
	traceOp(c.procs[0], t0, multiShard, trace.KVScan)
	return out
}

// scanLocked is the logged arm: per-shard scan thunks under the shard
// locks, routed through the engine (see Scan for the composed vs
// per-shard split).
func (c *Client) scanLocked(lo, hi uint64, limit int) []set.KV {
	st := c.st
	parts := make([][]set.KV, len(st.shards))
	st.eng.Locked(c.procs, st.eng.AllShards(), func(s int) engine.Attempt {
		if s < 0 {
			// Composed: one body scans every shard, publishing the runs
			// through a per-attempt buffer (idempotently: every run
			// recomputes identical runs from logged loads).
			buf := &atomic.Pointer[[][]set.KV]{}
			return engine.Attempt{
				Body: func(hp *flock.Proc) {
					out := make([][]set.KV, len(st.shards))
					for i := range st.shards {
						out[i] = st.shards[i].sc.Scan(hp, lo, hi, limit)
					}
					buf.Store(&out)
				},
				Commit: func() { parts = *buf.Load() },
			}
		}
		sh := &st.shards[s]
		buf := &atomic.Pointer[[]set.KV]{}
		return engine.Attempt{
			Body:   func(hp *flock.Proc) { out := sh.sc.Scan(hp, lo, hi, limit); buf.Store(&out) },
			Commit: func() { parts[s] = *buf.Load() },
		}
	})
	return engine.MergeRuns(parts, limit)
}
