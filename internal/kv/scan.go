// Range scans over the sharded store. Hash routing scatters every key
// interval across all shards, so a scan is a scatter-gather: each
// shard's ordered structure is scanned under that shard's lock — locks
// acquired in ascending shard order, the transaction layer's nesting
// protocol — and the per-shard sorted runs are merged by key up to the
// limit. See DESIGN.md S12.

package kv

import (
	"fmt"
	"runtime"
	"sync/atomic"

	flock "flock/internal/core"
	"flock/internal/obs"
	"flock/internal/obs/trace"
	"flock/internal/structures/set"
)

// Scannable reports whether every shard's structure supports ordered
// range scans (set.Scanner). Scan panics on a non-scannable store.
func (st *Store) Scannable() bool { return st.scan }

// NestShardLocks runs body inside a composed critical section holding
// every listed shard lock, nesting TryLock calls in ascending order.
// This is the transaction protocol's acquisition step (DESIGN.md S11),
// owned here so internal/txn and the scan path share one
// implementation: the sort order makes acquisition deadlock-free, and
// in lock-free mode a thread that finds a shard lock held helps the
// holder's entire composed critical section before reporting failure.
// It reports false when any acquisition failed (the caller retries with
// a fresh body); shards must be sorted ascending and duplicate-free.
// body runs on whichever Proc executes the innermost thunk and must
// publish its results idempotently (DESIGN.md S7/S11); p must belong to
// the runtime that owns every listed shard (with Options.SharedRuntime,
// any registered Proc).
func (st *Store) NestShardLocks(p *flock.Proc, shards []int, body func(hp *flock.Proc)) bool {
	p.Begin()
	defer p.End()
	var nest func(hp *flock.Proc, i int) bool
	nest = func(hp *flock.Proc, i int) bool {
		if i == len(shards) {
			body(hp)
			return true
		}
		return st.shards[shards[i]].lck.TryLock(hp, func(hp2 *flock.Proc) bool {
			return nest(hp2, i+1)
		})
	}
	return nest(p, 0)
}

// scanBackoff paces shard-lock retries (helping already happened inside
// the failed TryLock, so a short yield is all that is useful).
func scanBackoff(attempt int) {
	if attempt >= 2 {
		runtime.Gosched()
	}
}

// Scan returns up to limit key-value pairs with lo <= key <= hi, merged
// in ascending key order across every shard (limit < 0 means unbounded,
// limit 0 yields an empty result; 0 and MaxUint64 are the open-interval
// bound sentinels, see set.ClampScanBounds). With
// Options.OptimisticReads (and a capable structure) the scan first runs
// the optimistic arm — unlogged per-shard scans validated against a
// version vector over every shard lock, whole-operation restart on any
// failure (see optimistic.go) — and escalates to the locked path after
// MaxOptimistic failed attempts. On the locked path each shard
// contributes a run collected by the structure's scan thunk while that
// shard's lock is held. On a shared-runtime store all shard locks are
// held at once (one composed critical section, so the scan is atomic
// with respect to multi-key transactions — as is a validated optimistic
// scan, per the version-vector argument); on a per-shard-runtime store
// the locked path scans one shard at a time in ascending order, each
// under its own lock, giving the structures' interval semantics shard
// by shard. Plain single-key Client operations never take shard locks,
// so the result is weakly consistent with respect to them either way:
// every returned pair was present, and every missing in-range key
// absent, at some instant during the scan.
//
// Scan panics if the store's structure does not implement set.Scanner
// (see Scannable).
func (c *Client) Scan(lo, hi uint64, limit int) []set.KV {
	st := c.st
	if !st.scan {
		panic(fmt.Sprintf("kv: Scan on a store whose structure (%T) does not implement set.Scanner", st.shards[0].s))
	}
	if limit == 0 {
		return nil
	}
	t0 := traceStart()
	if st.optScan && !c.procs[0].InThunk() {
		if out, ok := c.scanOptimistic(lo, hi, limit); ok {
			traceOp(c.procs[0], t0, multiShard, trace.KVScan)
			return out
		}
		st.optEscalations.Add(1)
		c.procs[0].Obs().Inc(obs.OptEscalations)
		c.procs[0].Trace(trace.OptEscalate, 0, 0, 0)
	}
	out := c.scanLocked(lo, hi, limit)
	traceOp(c.procs[0], t0, multiShard, trace.KVScan)
	return out
}

// scanOptimistic makes MaxOptimistic unlogged whole-store scan
// attempts; ok=false means every attempt failed validation and the
// caller must escalate to the locked path.
func (c *Client) scanOptimistic(lo, hi uint64, limit int) ([]set.KV, bool) {
	st := c.st
	vers := make([]uint64, len(st.shards))
	parts := make([][]set.KV, len(st.shards))
	max := st.shards[0].rt.MaxOptimistic()
	for attempt := 0; attempt < max; attempt++ {
		if c.scanAttempt(lo, hi, limit, vers, parts) {
			return mergeRuns(parts, limit), true
		}
		st.optRestarts.Add(1)
		c.procs[0].Obs().Inc(obs.OptRestarts)
		c.procs[0].Trace(trace.OptRestart, 0, 0, 0)
	}
	return nil, false
}

// scanAttempt is one optimistic pass: version vector first, unlogged
// per-shard scans second, validation of the whole vector last (see
// optimistic.go's package comment for why this ordering makes a
// validated result atomic with respect to transactions). Partial
// results of a failed attempt are discarded by the caller.
func (c *Client) scanAttempt(lo, hi uint64, limit int, vers []uint64, parts [][]set.KV) bool {
	st := c.st
	c.beginAll()
	defer c.endAll()
	for i := range st.shards {
		v, ok := st.shards[i].lck.ReadVersion()
		if !ok {
			return false
		}
		vers[i] = v
	}
	for i := range st.shards {
		parts[i] = st.shards[i].osc.OptimisticScan(c.procs[i], lo, hi, limit)
	}
	for i := range st.shards {
		if !st.shards[i].lck.Validate(vers[i]) {
			return false
		}
	}
	return true
}

// scanLocked is the logged path: per-shard scan thunks under the shard
// locks (see Scan).
func (c *Client) scanLocked(lo, hi uint64, limit int) []set.KV {
	st := c.st
	parts := make([][]set.KV, len(st.shards))
	if st.rt != nil {
		// Shared runtime: one composed critical section over all shards.
		shards := make([]int, len(st.shards))
		for i := range shards {
			shards[i] = i
		}
		for attempt := 0; ; attempt++ {
			// A fresh buffer per attempt: a straggling helper replaying a
			// failed attempt must publish into that attempt's buffer, not
			// a later one's (DESIGN.md S11).
			buf := &atomic.Pointer[[][]set.KV]{}
			ok := st.NestShardLocks(c.procs[0], shards, func(hp *flock.Proc) {
				// Run-local collection, idempotently published: every run
				// recomputes identical runs from logged loads.
				out := make([][]set.KV, len(st.shards))
				for i := range st.shards {
					out[i] = st.shards[i].sc.Scan(hp, lo, hi, limit)
				}
				buf.Store(&out)
			})
			if ok {
				parts = *buf.Load()
				break
			}
			scanBackoff(attempt)
		}
	} else {
		// Per-shard runtimes: ascending one-shard critical sections.
		for i := range st.shards {
			sh, p := &st.shards[i], c.procs[i]
			for attempt := 0; ; attempt++ {
				buf := &atomic.Pointer[[]set.KV]{}
				ok := st.NestShardLocks(p, []int{i}, func(hp *flock.Proc) {
					out := sh.sc.Scan(hp, lo, hi, limit)
					buf.Store(&out)
				})
				if ok {
					parts[i] = *buf.Load()
					break
				}
				scanBackoff(attempt)
			}
		}
	}
	return mergeRuns(parts, limit)
}

// mergeRuns merges sorted per-shard runs into one ascending result of
// at most limit pairs (limit < 0 unbounded, 0 empty). Shard routing
// partitions the key space, so no key appears in two runs.
func mergeRuns(parts [][]set.KV, limit int) []set.KV {
	if limit == 0 {
		return nil
	}
	total := 0
	nonEmpty := 0
	for _, r := range parts {
		total += len(r)
		if len(r) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty <= 1 {
		for _, r := range parts {
			if len(r) > 0 {
				if limit > 0 && len(r) > limit {
					r = r[:limit]
				}
				return r
			}
		}
		return nil
	}
	if limit < 0 || limit > total {
		limit = total
	}
	out := make([]set.KV, 0, limit)
	idx := make([]int, len(parts))
	for len(out) < limit {
		best := -1
		for i, r := range parts {
			if idx[i] < len(r) && (best == -1 || r[idx[i]].Key < parts[best][idx[best]].Key) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		out = append(out, parts[best][idx[best]])
		idx[best]++
	}
	return out
}
