// Flight-recorder spans for KV client operations (DESIGN.md S16). A
// span is recorded as one event at completion carrying its duration,
// so the hot path adds a single clock read at entry (and nothing at
// all while tracing is off).

package kv

import (
	flock "flock/internal/core"
	"flock/internal/obs/trace"
)

// multiShard marks spans of scatter-gather operations that touch every
// involved shard rather than one routed shard.
const multiShard = ^uint64(0)

// traceStart opens a KV span: the start timestamp when the flight
// recorder is on, 0 (the disabled sentinel) otherwise.
func traceStart() int64 {
	if trace.On() {
		return trace.Now()
	}
	return 0
}

// traceOp closes a KV span opened by traceStart, attributed to p. The
// end-of-span clock read doubles as the record timestamp (TraceAt), so
// a traced KV op pays exactly two clock reads.
func traceOp(p *flock.Proc, t0 int64, shard, op uint64) {
	if t0 != 0 {
		now := trace.Now()
		p.TraceAt(trace.KVOp, now, shard, op, uint64(now-t0))
	}
}
