// Golden regression pin for the multi-shard execution paths: a
// deterministic recorded op sequence is driven through kv.Scan,
// kv.MultiGet, kv.Get and the txn commit paths, and every result is
// folded into one FNV-1a digest. The digest was recorded before the
// internal/kv/engine refactor, so the rehosted paths must reproduce the
// pre-refactor results byte for byte.

package engine_test

import (
	"encoding/binary"
	"hash/fnv"
	"testing"

	flock "flock/internal/core"
	"flock/internal/kv"
	"flock/internal/structures/leaftree"
	"flock/internal/structures/set"
	"flock/internal/txn"
	"flock/internal/workload"
)

// goldenDigest is the pre-refactor digest of goldenSequence's results.
// If a change to the execution paths moves this value, scan/txn results
// changed observably — that is a behaviour change, not a refactor.
const goldenDigest = 0x292bc7ac5460e861

func goldenFactory(rt *flock.Runtime, _ uint64) set.Set { return leaftree.New(rt) }

type digest struct {
	h interface{ Write([]byte) (int, error) }
}

func (d digest) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	d.h.Write(b[:])
}

func (d digest) bool(v bool) {
	if v {
		d.u64(1)
	} else {
		d.u64(0)
	}
}

func (d digest) kvs(pairs []set.KV) {
	d.u64(uint64(len(pairs)))
	for _, kv := range pairs {
		d.u64(kv.Key)
		d.u64(kv.Value)
	}
}

// goldenKV drives one kv.Store configuration through a seeded op mix.
func goldenKV(d digest, shards int, shared, optimistic bool, seed uint64) {
	st := kv.New(goldenFactory, kv.Options{
		Shards: shards, KeyRange: 1 << 10,
		SharedRuntime: shared, OptimisticReads: optimistic,
	})
	c := st.Register()
	defer c.Close()
	rng := workload.NewSplitMix64(seed)
	key := func() uint64 { return rng.Next()%500 + 1 }
	for i := 0; i < 400; i++ {
		switch rng.Next() % 8 {
		case 0, 1:
			d.bool(c.Put(key(), rng.Next()%1000))
		case 2:
			d.bool(c.Delete(key()))
		case 3, 4:
			v, ok := c.Get(key())
			d.u64(v)
			d.bool(ok)
		case 5:
			lo, hi := key(), key()
			if lo > hi {
				lo, hi = hi, lo
			}
			limits := [4]int{-1, 0, 5, 50}
			d.kvs(c.Scan(lo, hi, limits[rng.Next()%4]))
		case 6:
			keys := make([]uint64, 1+rng.Next()%6)
			for j := range keys {
				keys[j] = key()
			}
			vals, oks := c.MultiGet(keys)
			for j := range keys {
				d.u64(vals[j])
				d.bool(oks[j])
			}
		case 7:
			keys := make([]uint64, 1+rng.Next()%4)
			vals := make([]uint64, len(keys))
			for j := range keys {
				keys[j], vals[j] = key(), rng.Next()%1000
			}
			d.u64(uint64(c.PutBatch(keys, vals)))
		}
	}
	d.kvs(c.Scan(0, ^uint64(0), -1))
}

// goldenTxn drives one txn.Store configuration through a seeded
// transaction mix.
func goldenTxn(d digest, mode txn.Mode, optimistic bool, seed uint64) {
	st := txn.New(goldenFactory, txn.Options{
		Shards: 4, Mode: mode, KeyRange: 1 << 10, OptimisticReads: optimistic,
	})
	c := st.Register()
	defer c.Close()
	rng := workload.NewSplitMix64(seed)
	key := func() uint64 { return rng.Next()%64 + 1 }
	for k := uint64(1); k <= 64; k++ {
		c.Put(k, 100)
	}
	for i := 0; i < 300; i++ {
		switch rng.Next() % 6 {
		case 0, 1:
			d.bool(c.Transfer(key(), key(), rng.Next()%40))
		case 2:
			keys := make([]uint64, 1+rng.Next()%5)
			for j := range keys {
				keys[j] = key()
			}
			vals, oks := c.MultiGet(keys)
			for j := range keys {
				d.u64(vals[j])
				d.bool(oks[j])
			}
		case 3:
			keys := make([]uint64, 1+rng.Next()%4)
			vals := make([]uint64, len(keys))
			for j := range keys {
				keys[j], vals[j] = key(), rng.Next()%1000
			}
			d.u64(uint64(c.MultiPut(keys, vals)))
		case 4:
			k := key()
			exp := rng.Next() % 1000
			d.bool(c.MultiCAS([]uint64{k}, []uint64{exp}, []uint64{exp + 1}))
		case 5:
			rk := []uint64{key(), key()}
			wk := []uint64{key()}
			vals, oks, committed := c.Txn(rk, wk, func(vals []uint64, oks []bool) ([]uint64, bool) {
				if !oks[0] {
					return nil, false
				}
				return []uint64{vals[0] + vals[1]}, true
			})
			d.u64(vals[0])
			d.u64(vals[1])
			d.bool(oks[0])
			d.bool(oks[1])
			d.bool(committed)
		}
	}
	kc := st.KV().Register()
	defer kc.Close()
	d.kvs(kc.Scan(0, ^uint64(0), -1))
}

// goldenSequence runs every configuration arm and returns the digest.
func goldenSequence() uint64 {
	h := fnv.New64a()
	d := digest{h}
	goldenKV(d, 1, true, true, 11)
	goldenKV(d, 4, true, true, 12)
	goldenKV(d, 4, true, false, 13)
	goldenKV(d, 4, false, true, 14)
	goldenKV(d, 4, false, false, 15)
	goldenTxn(d, txn.LockFree, true, 21)
	goldenTxn(d, txn.LockFree, false, 22)
	goldenTxn(d, txn.Blocking, false, 23)
	goldenTxn(d, txn.NonAtomic, false, 24)
	return h.Sum64()
}

func TestGoldenOpSequence(t *testing.T) {
	got := goldenSequence()
	if got != goldenDigest {
		t.Fatalf("recorded op sequence digest = %#x, want %#x (scan/txn results diverged from the pre-refactor recording)", got, goldenDigest)
	}
}
