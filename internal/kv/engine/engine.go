// Package engine is the unified shard-group execution layer under the
// sharded KV store and the transaction layer. Every multi-shard
// operation in this repository — range scans, atomic multi-key reads,
// transactions, snapshot activation — reduces to one of three execution
// arms over an ascending, duplicate-free shard group:
//
//   - the composed-thunk arm: per-shard lock-free locks nested by
//     TryLock in ascending shard order (the paper's §4 composition, the
//     transaction protocol of DESIGN.md S11), retried until the whole
//     chain is acquired once;
//   - the per-shard arm: the same logic shard by shard for stores whose
//     shards do not share a runtime (locks cannot compose across epoch
//     managers, so each shard gets its own critical section);
//   - the optimistic arm: unlogged reads bracketed by a version vector
//     over every involved shard lock — vector read before any data
//     load, whole-vector validation after — with bounded restarts and
//     escalation to a locked arm (DESIGN.md S13).
//
// Before this package existed the three arms were triplicated across
// kv/scan.go, kv/optimistic.go and txn/txn.go, each with its own retry
// loop, idempotent-buffer discipline and restart accounting. The engine
// owns them once, and owns the obs counters and flight-recorder spans
// they emit (optimistic restarts/escalations, transaction depth and
// helped flags), so call sites publish results and nothing else.
// DESIGN.md S17 documents the consolidation.
package engine

import (
	"runtime"
	"sync/atomic"

	flock "flock/internal/core"
	"flock/internal/obs"
	"flock/internal/obs/trace"
	"flock/internal/structures/set"
)

// Config wires an Engine to its store's shards.
type Config struct {
	// Locks are the per-shard lock handles, one per shard.
	Locks []*flock.Lock
	// Runtimes are the per-shard runtimes (all identical on a
	// shared-runtime store).
	Runtimes []*flock.Runtime
	// Shared is the store-wide runtime when every shard routes through
	// one (kv.Options.SharedRuntime) and nil otherwise. Non-nil is what
	// enables the composed-thunk arm: cross-shard nesting is only sound
	// under one epoch manager and one mode flag.
	Shared *flock.Runtime
	// Route maps a key to its shard index (the store's ShardOf).
	Route func(uint64) int
	// Restarts and Escalations are the store's always-on optimistic
	// counters; the engine increments them beside the gated obs metrics.
	// Either may be nil.
	Restarts, Escalations *atomic.Uint64
}

// Engine executes shard-group operations for one store. It is
// goroutine-safe: all state is per-call or owned by the shards.
type Engine struct {
	locks       []*flock.Lock
	runtimes    []*flock.Runtime
	shared      *flock.Runtime
	route       func(uint64) int
	restarts    *atomic.Uint64
	escalations *atomic.Uint64
}

// New builds an engine over the given shards.
func New(cfg Config) *Engine {
	return &Engine{
		locks:       cfg.Locks,
		runtimes:    cfg.Runtimes,
		shared:      cfg.Shared,
		route:       cfg.Route,
		restarts:    cfg.Restarts,
		escalations: cfg.Escalations,
	}
}

// Composed reports whether the engine can run composed critical
// sections spanning shards (the store has a shared runtime).
func (e *Engine) Composed() bool { return e.shared != nil }

// NumShards returns the shard count.
func (e *Engine) NumShards() int { return len(e.locks) }

// ---------------------------------------------------------------------
// Planner
// ---------------------------------------------------------------------

// ShardIndices maps keys to their shard indices (one hash per key per
// operation; thunk bodies and helper replays reuse the result instead
// of re-hashing).
func (e *Engine) ShardIndices(keys []uint64) []int {
	out := make([]int, len(keys))
	for i, k := range keys {
		out[i] = e.route(k)
	}
	return out
}

// Group returns the sorted, deduplicated union of the precomputed
// shard-index sets — the lock acquisition order for the operation's
// footprint. A group of length 1 is the planner's single-shard fast
// path: consumers take the one-lock arm (a single validated read, a
// single-lock critical section) with no vector or merge machinery.
// seen is an optional scratch bitmap of length NumShards, reused across
// operations (it is only touched at top level, never captured by thunk
// closures); nil allocates a fresh one. The returned slice is always
// fresh — thunk closures capture it.
func (e *Engine) Group(seen []bool, idxSets ...[]int) []int {
	if seen == nil {
		seen = make([]bool, len(e.locks))
	}
	n := 0
	for _, idxs := range idxSets {
		for _, s := range idxs {
			if !seen[s] {
				seen[s] = true
				n++
			}
		}
	}
	out := make([]int, 0, n)
	for s, hit := range seen {
		if hit {
			out = append(out, s)
			seen[s] = false // reset for the next operation
		}
	}
	return out // ascending by construction
}

// AllShards returns the whole-store group 0..n-1 (scans, snapshots).
func (e *Engine) AllShards() []int {
	out := make([]int, len(e.locks))
	for i := range out {
		out[i] = i
	}
	return out
}

// ---------------------------------------------------------------------
// Composed-thunk arm
// ---------------------------------------------------------------------

// Nest runs body inside a composed critical section holding every
// listed shard lock, nesting TryLock calls in ascending order. This is
// the transaction protocol's acquisition step (DESIGN.md S11): the sort
// order makes acquisition deadlock-free, and in lock-free mode a thread
// that finds a shard lock held helps the holder's entire composed
// critical section before reporting failure. It reports false when any
// acquisition failed (the caller retries with a fresh body); shards
// must be sorted ascending and duplicate-free. body runs on whichever
// Proc executes the innermost thunk and must publish its results
// idempotently (DESIGN.md S7/S11); p must belong to the runtime that
// owns every listed shard (on a composed engine, any registered Proc).
func (e *Engine) Nest(p *flock.Proc, shards []int, body func(hp *flock.Proc)) bool {
	p.Begin()
	defer p.End()
	var nest func(hp *flock.Proc, i int) bool
	nest = func(hp *flock.Proc, i int) bool {
		if i == len(shards) {
			body(hp)
			return true
		}
		return e.locks[shards[i]].TryLock(hp, func(hp2 *flock.Proc) bool {
			return nest(hp2, i+1)
		})
	}
	return nest(p, 0)
}

// pace yields between lock retries on the read arms (helping already
// happened inside the failed TryLock, so a short yield is all that is
// useful).
func pace(attempt int) {
	if attempt >= 2 {
		runtime.Gosched()
	}
}

// backoff spins-then-yields with per-Proc jitter between transactional
// acquisition attempts (shared constants would synchronize contending
// clients' retries).
func backoff(p *flock.Proc, attempt int) {
	if attempt > 8 {
		attempt = 8
	}
	spins := p.Jitter() % (uint64(16) << uint(attempt))
	for i := uint64(0); i < spins; i++ {
		_ = i
	}
	if attempt >= 2 {
		runtime.Gosched()
	}
}

// Atomic retries the composed critical section until the full lock
// chain is acquired once — the transaction commit arm. mkBody returns a
// fresh body per attempt: a straggler replaying a *failed* published
// attempt must find that attempt's buffers, not the next one's
// (DESIGN.md S11) — and the body must publish its results idempotently
// (per-attempt atomics). Acquisition success means the body's effects
// are durably logged, even if the physical completion was a helper's.
//
// With obs metrics enabled it records the committed operation's
// nested-acquire depth (distinct shard locks — len(shards), since the
// chain nests one TryLock per shard) and whether any run of the
// committed attempt executed on a foreign Proc, i.e. a helper carried
// part or all of it (obs.TxnHelped). With the flight recorder on it
// emits a TxnSpan carrying the depth, the attempt count and the
// acquire-to-commit duration. The foreign flag is a per-attempt atomic
// the wrapped body sets idempotently, so helper replays keep the
// thunk-determinism rules.
func (e *Engine) Atomic(p *flock.Proc, shards []int, mkBody func() func(hp *flock.Proc)) {
	track := obs.On()
	var t0 int64
	if trace.On() {
		t0 = trace.Now()
	}
	commit := func(attempt int) {
		if t0 != 0 {
			// TxnSpan packs the lock-chain depth with the attempt count
			// (1-based) and carries the whole acquire-to-commit duration.
			a := uint64(len(shards))&0xffff | uint64(attempt+1)<<16
			now := trace.Now()
			p.TraceAt(trace.TxnSpan, now, 0, a, uint64(now-t0))
		}
	}
	for attempt := 0; ; attempt++ {
		body := mkBody()
		if track {
			foreign := &atomic.Bool{}
			inner := body
			body = func(hp *flock.Proc) {
				if hp != p {
					foreign.Store(true)
				}
				inner(hp)
			}
			if e.Nest(p, shards, body) {
				p.Obs().Inc(obs.DepthCounter(len(shards)))
				if foreign.Load() {
					p.Obs().Inc(obs.TxnHelped)
				}
				commit(attempt)
				return
			}
		} else if e.Nest(p, shards, body) {
			commit(attempt)
			return
		}
		backoff(p, attempt)
	}
}

// Attempt is one locked-arm execution attempt: Body runs inside the
// critical section (idempotent publication through per-attempt
// atomics); Commit runs once, outside any lock, after the attempt's
// chain was acquired — it moves the published results into the caller's
// plain variables.
type Attempt struct {
	Body   func(hp *flock.Proc)
	Commit func()
}

// Locked runs the group's logged read arm to completion. On a composed
// engine the whole group executes as one composed critical section —
// atomic with respect to transactions — and mk is called with shard
// -1 for a body covering every listed shard. On a per-shard engine each
// shard runs its own single-lock critical section in ascending order
// (per-shard atomicity, which is all such stores ever promise — they
// run no transactions), and mk is called with each shard index. Either
// way mk is re-invoked on every retry, so each attempt gets fresh
// buffers, and the successful attempt's Commit runs before Locked
// returns. procs holds one registered Proc per shard (all aliases of
// one Proc on a composed engine).
func (e *Engine) Locked(procs []*flock.Proc, shards []int, mk func(shard int) Attempt) {
	if e.shared != nil {
		for attempt := 0; ; attempt++ {
			a := mk(-1)
			if e.Nest(procs[0], shards, a.Body) {
				a.Commit()
				return
			}
			pace(attempt)
		}
	}
	for _, s := range shards {
		one := []int{s}
		for attempt := 0; ; attempt++ {
			a := mk(s)
			if e.Nest(procs[s], one, a.Body) {
				a.Commit()
				break
			}
			pace(attempt)
		}
	}
}

// ---------------------------------------------------------------------
// Optimistic version-vector arm
// ---------------------------------------------------------------------

// restart records one failed optimistic attempt (lock busy or version
// changed under the read) on the store counter, the obs metrics layer
// and the flight recorder.
func (e *Engine) restart(p *flock.Proc) {
	if e.restarts != nil {
		e.restarts.Add(1)
	}
	p.Obs().Inc(obs.OptRestarts)
	p.Trace(trace.OptRestart, 0, 0, 0)
}

// escalate records the fall back to the logged path after MaxOptimistic
// failed attempts.
func (e *Engine) escalate(p *flock.Proc) {
	if e.escalations != nil {
		e.escalations.Add(1)
	}
	p.Obs().Inc(obs.OptEscalations)
	p.Trace(trace.OptEscalate, 0, 0, 0)
}

// OptimisticFind is the single-shard fast path of the optimistic arm: a
// seqlock-validated unlogged lookup with a hand-rolled retry loop — no
// closures, so the validated hot path stays allocation-free (the
// zero-alloc pins cover it). The epoch guard spans ReadVersion through
// Validate so the lock-word box cannot be recycled mid-inspection.
// validated=false means every attempt failed and the escalation was
// recorded; the caller completes under the shard lock.
func (e *Engine) OptimisticFind(p *flock.Proc, shard int, r set.OptimisticReader, k uint64) (v uint64, found, validated bool) {
	lck := e.locks[shard]
	p.Begin()
	for attempt := e.runtimes[shard].MaxOptimistic(); attempt > 0; attempt-- {
		if ver, ok := lck.ReadVersion(); ok {
			val, present := r.OptimisticFind(p, k)
			if lck.Validate(ver) {
				p.End()
				return val, present, true
			}
		}
		e.restart(p)
	}
	p.End()
	e.escalate(p)
	return 0, false, false
}

// BeginAll enters an epoch guard on every listed shard's runtime (one
// guard on a composed engine); EndAll exits them. The optimistic arm's
// guards span the version reads through validation so no lock-word box
// recycles mid-inspection; they are exported for read paths (snapshot
// chunk reads) that interleave their own loads with the brackets.
func (e *Engine) BeginAll(procs []*flock.Proc, shards []int) {
	if e.shared != nil {
		procs[0].Begin()
		return
	}
	for _, s := range shards {
		procs[s].Begin()
	}
}

// EndAll exits the guards entered by BeginAll.
func (e *Engine) EndAll(procs []*flock.Proc, shards []int) {
	if e.shared != nil {
		procs[0].End()
		return
	}
	for _, s := range shards {
		procs[s].End()
	}
}

// OptimisticGroup makes up to MaxOptimistic unlogged passes over the
// shard group: version vector over every listed shard lock first,
// read's data loads second, whole-vector validation last. That ordering
// is what makes a validated pass a cross-shard atomic snapshot:
// transactions acquire their shard locks in ascending order nested
// (first acquired is last released), so any transaction whose effect a
// pass observed on one shard must still have been holding — or already
// bumped — every earlier shard's lock when the vector was read or
// validated, and a cross-shard torn observation always fails
// validation (DESIGN.md S13).
//
// read runs with epoch guards held on every listed runtime and must
// only perform unlogged loads (set.OptimisticReader /
// set.OptimisticScanner) and run-local accumulation; the caller uses
// its results only when OptimisticGroup returns true. False means every
// attempt failed and the escalation was recorded — the caller completes
// on the locked arm.
func (e *Engine) OptimisticGroup(procs []*flock.Proc, shards []int, read func()) bool {
	vers := make([]uint64, len(shards))
	max := e.runtimes[shards[0]].MaxOptimistic()
attempts:
	for attempt := 0; attempt < max; attempt++ {
		e.BeginAll(procs, shards)
		for j, s := range shards {
			v, ok := e.locks[s].ReadVersion()
			if !ok {
				e.EndAll(procs, shards)
				e.restart(procs[0])
				continue attempts
			}
			vers[j] = v
		}
		read()
		for j, s := range shards {
			if !e.locks[s].Validate(vers[j]) {
				e.EndAll(procs, shards)
				e.restart(procs[0])
				continue attempts
			}
		}
		e.EndAll(procs, shards)
		return true
	}
	e.escalate(procs[0])
	return false
}

// ---------------------------------------------------------------------
// Run merging
// ---------------------------------------------------------------------

// MergeRuns merges sorted per-shard runs into one ascending result of
// at most limit pairs (limit < 0 unbounded, 0 empty). Shard routing
// partitions the key space, so no key appears in two runs. Shared by
// the scan path and the snapshot iterator's scatter-gather.
func MergeRuns(parts [][]set.KV, limit int) []set.KV {
	if limit == 0 {
		return nil
	}
	total := 0
	nonEmpty := 0
	for _, r := range parts {
		total += len(r)
		if len(r) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty <= 1 {
		for _, r := range parts {
			if len(r) > 0 {
				if limit > 0 && len(r) > limit {
					r = r[:limit]
				}
				return r
			}
		}
		return nil
	}
	if limit < 0 || limit > total {
		limit = total
	}
	out := make([]set.KV, 0, limit)
	idx := make([]int, len(parts))
	for len(out) < limit {
		best := -1
		for i, r := range parts {
			if idx[i] < len(r) && (best == -1 || r[idx[i]].Key < parts[best][idx[best]].Key) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		out = append(out, parts[best][idx[best]])
		idx[best]++
	}
	return out
}
