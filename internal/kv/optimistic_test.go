package kv_test

import (
	"math"
	"runtime"
	"sync"
	"testing"

	"flock/internal/kv"
	"flock/internal/txn"
	"flock/internal/workload"

	flock "flock/internal/core"
)

// TestOptimisticCapabilityGate pins the detection rule: OptimisticReads
// takes effect only when every shard's structure implements the
// matching capability interface, and requesting it on an incapable
// structure silently degrades to the logged path.
func TestOptimisticCapabilityGate(t *testing.T) {
	cases := []struct {
		name              string
		f                 kv.Factory
		wantGet, wantScan bool
	}{
		{"leaftree", leaftreeFactory, true, true},
		{"lazylist", lazylistFactory, true, true},
		{"hashtable", hashtableFactory, true, true}, // unordered, but scans via sorted bucket sweep
	}
	for _, tc := range cases {
		st := kv.New(tc.f, kv.Options{Shards: 2, OptimisticReads: true})
		if st.OptimisticReads() != tc.wantGet {
			t.Errorf("%s: OptimisticReads() = %v, want %v", tc.name, st.OptimisticReads(), tc.wantGet)
		}
		if st.OptimisticScans() != tc.wantScan {
			t.Errorf("%s: OptimisticScans() = %v, want %v", tc.name, st.OptimisticScans(), tc.wantScan)
		}
	}
	// Off by default even on a capable structure.
	st := kv.New(leaftreeFactory, kv.Options{Shards: 2})
	if st.OptimisticReads() || st.OptimisticScans() {
		t.Fatalf("optimistic reads enabled without Options.OptimisticReads")
	}
}

// TestOptimisticCountersQuiescent pins that plain single-key traffic
// never invalidates optimistic reads: Put and Get do not take shard
// locks, so shard versions never move and no restart or escalation can
// occur without transactions or locked scans in the mix.
func TestOptimisticCountersQuiescent(t *testing.T) {
	st := kv.New(leaftreeFactory, kv.Options{Shards: 4, OptimisticReads: true})
	c := st.Register()
	defer c.Close()
	for k := uint64(1); k <= 512; k++ {
		c.Put(k, k*7)
	}
	for k := uint64(1); k <= 512; k++ {
		if v, ok := c.Get(k); !ok || v != k*7 {
			t.Fatalf("Get(%d) = (%d,%v), want (%d,true)", k, v, ok, k*7)
		}
	}
	c.Scan(0, math.MaxUint64, -1)
	c.MultiGet([]uint64{1, 99, 200, 511})
	if r, e := st.OptimisticStats(); r != 0 || e != 0 {
		t.Fatalf("quiescent store counted restarts=%d escalations=%d, want 0/0", r, e)
	}
}

// TestOptimisticScanSerializesWithTransactions is the optimistic arm of
// the composed-lock atomicity check: validated optimistic scans and
// MultiGets must see the conserved total balance despite concurrent
// multi-shard Transfers — the version vector is read before, and
// validated after, all data loads, and transactions release their
// ascending-nested shard locks inner-first, so a torn cross-shard
// observation always fails validation (kv/optimistic.go).
func TestOptimisticScanSerializesWithTransactions(t *testing.T) {
	const accounts = 64
	const initial = 100
	st := txn.New(leaftreeFactory, txn.Options{Shards: 4, KeyRange: accounts, OptimisticReads: true})
	if !st.KV().OptimisticReads() || !st.KV().OptimisticScans() {
		t.Fatal("transactional store did not enable optimistic reads")
	}
	seed := st.KV().Register()
	for k := uint64(1); k <= accounts; k++ {
		seed.Put(k, initial)
	}
	seed.Close()

	allKeys := make([]uint64, accounts)
	for i := range allKeys {
		allKeys[i] = uint64(i + 1)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := st.Register()
			defer c.Close()
			rng := workload.NewSplitMix64(uint64(w)*77 + 1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				a := rng.Next()%accounts + 1
				b := rng.Next()%accounts + 1
				c.Transfer(a, b, rng.Next()%5)
			}
		}(w)
	}

	reader := st.KV().Register()
	for i := 0; i < 300; i++ {
		got := reader.Scan(0, math.MaxUint64, -1)
		if len(got) != accounts {
			t.Errorf("scan %d saw %d accounts, want %d", i, len(got), accounts)
			break
		}
		var sum uint64
		for _, kv := range got {
			sum += kv.Value
		}
		if sum != accounts*initial {
			t.Errorf("scan %d saw torn total %d, want %d", i, sum, accounts*initial)
			break
		}
		vals, oks := reader.MultiGet(allKeys)
		sum = 0
		for j, v := range vals {
			if !oks[j] {
				t.Errorf("MultiGet %d: account %d missing", i, allKeys[j])
				break
			}
			sum += v
		}
		if sum != accounts*initial {
			t.Errorf("MultiGet %d saw torn total %d, want %d", i, sum, accounts*initial)
			break
		}
	}
	reader.Close()
	close(stop)
	wg.Wait()
}

// TestOptimisticTxnReadArm pins internal/txn's read routing: with
// OptimisticReads the store still answers Get and read-only MultiGet
// correctly (through the unlogged arm) while Transfers and mixed
// transactions keep committing through the locked path.
func TestOptimisticTxnReadArm(t *testing.T) {
	st := txn.New(leaftreeFactory, txn.Options{Shards: 4, KeyRange: 256, OptimisticReads: true})
	c := st.Register()
	defer c.Close()
	kvc := st.KV().Register()
	defer kvc.Close()
	for k := uint64(1); k <= 128; k++ {
		kvc.Put(k, k)
	}
	if v, ok := c.Get(7); !ok || v != 7 {
		t.Fatalf("txn Get(7) = (%d,%v), want (7,true)", v, ok)
	}
	vals, oks := c.MultiGet([]uint64{1, 64, 128, 129})
	for i, k := range []uint64{1, 64, 128} {
		if !oks[i] || vals[i] != k {
			t.Fatalf("txn MultiGet[%d] = (%d,%v), want (%d,true)", i, vals[i], oks[i], k)
		}
	}
	if oks[3] {
		t.Fatalf("txn MultiGet reported absent key 129 as present")
	}
	if !c.Transfer(1, 64, 1) {
		t.Fatalf("Transfer failed")
	}
	if v, _ := c.Get(1); v != 0 {
		t.Fatalf("post-transfer Get(1) = %d, want 0", v)
	}
	if v, _ := c.Get(64); v != 65 {
		t.Fatalf("post-transfer Get(64) = %d, want 65", v)
	}
}

// TestOptimisticEscalationStorm is the restart-storm guard, made
// deterministic: a writer parks inside the shard-lock critical section
// (blocking mode, so the reader cannot help it to completion), which
// pins ReadVersion to failure for as long as the lock is held. The
// optimistic Get must burn exactly MaxOptimistic restarts, escalate
// once — never spin unboundedly — block on the locked path until the
// writer releases, and still return the correct committed value. The
// counters pin the exact escalation protocol.
func TestOptimisticEscalationStorm(t *testing.T) {
	st := kv.New(leaftreeFactory, kv.Options{Shards: 1, SharedRuntime: true, Blocking: true, OptimisticReads: true})
	c := st.Register()
	defer c.Close()
	const key = 42
	c.Put(key, 1)

	locked := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wc := st.Register()
		defer wc.Close()
		ok := st.NestShardLocks(wc.SharedProc(), []int{0}, func(hp *flock.Proc) {
			close(locked)
			<-release
		})
		if !ok {
			t.Error("writer failed to take the free shard lock")
		}
	}()
	<-locked

	// The lock is held: once the reader has escalated (the counter moves
	// before the locked read blocks), let the writer go.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			if _, e := st.OptimisticStats(); e > 0 {
				close(release)
				return
			}
			runtime.Gosched()
		}
	}()

	if v, ok := c.Get(key); !ok || v != 1 {
		t.Fatalf("Get(%d) under held shard lock = (%d,%v), want (1,true)", key, v, ok)
	}
	wg.Wait()

	restarts, escalations := st.OptimisticStats()
	if want := uint64(3); restarts != want { // flock.New's MaxOptimistic default
		t.Fatalf("held-lock read burned %d restarts, want exactly MaxOptimistic=%d", restarts, want)
	}
	if escalations != 1 {
		t.Fatalf("held-lock read escalated %d times, want exactly 1", escalations)
	}

	// The storm over: subsequent optimistic reads validate cleanly again.
	if v, ok := c.Get(key); !ok || v != 1 {
		t.Fatalf("post-storm Get(%d) = (%d,%v), want (1,true)", key, v, ok)
	}
	if r, _ := st.OptimisticStats(); r != restarts {
		t.Fatalf("post-storm read restarted (%d -> %d): version parity corrupt after escalation", restarts, r)
	}
}
