// Epoch-consistent whole-store snapshots (DESIGN.md S17). A Snapshot is
// a read-only view of the entire store that is atomic with respect to
// every lock-holding writer (transactions, escalated operations) while
// never holding the shard locks for the duration of the iteration. The
// protocol has three parts:
//
//  1. Activation. The registry of live snapshots (Store.snaps) flips
//     inside one brief composed critical section over every shard lock
//     — the only moment a snapshot ever holds them all. Transactions
//     serialize on those locks, so every transactional critical section
//     is strictly before or strictly after the flip: the flip IS the
//     snapshot's logical read point.
//
//  2. Pre-image overlay. After activation, every write path records the
//     overwritten key's current value (or its absence) into the
//     snapshot's per-shard overlay before applying the write, via
//     LoadOrStore — first record wins. Because the first lock-holding
//     writer to touch a key after activation records the key's
//     activation-time state, and later writers' records lose the
//     LoadOrStore, an overlay entry always holds the activation-time
//     state. Inside transactional thunks the registry pointer is read
//     through the thunk log (flock.CommitPtr): a straggling helper
//     replaying a section that committed before activation sees the
//     logged pre-activation registry and records nothing, so stale-era
//     values can never poison the overlay.
//
//  3. Fuzzy iteration with overlay repair. The iterator walks each
//     shard with a resumable chunked cursor (set.Cursor) — validated
//     optimistic chunk reads when the structure supports them, plain
//     top-level scans otherwise — and repairs each chunk against the
//     overlay: recorded pre-images replace read values, keys recorded
//     absent-at-activation are dropped, and overlay-only keys in the
//     chunk's interval (deleted since activation) are merged back in.
//     Because overlay entries always hold activation-time state, the
//     repair is correct no matter how the chunk read interleaved with
//     lock-holding writers; validation only narrows the plain-writer
//     caveat below. Per-shard streams are k-way merged by key (hash
//     routing scatters every interval across all shards).
//
// Plain single-key Client writes never take shard locks, so with
// respect to writes racing the activation instant itself the snapshot
// is weakly consistent (the same caveat as Scan): a plain write in
// flight during activation lands entirely inside or entirely outside
// the view, per key. All transactional traffic — and any store where
// writers go through transactions, like the conserved-sum workloads —
// sees an exact atomic cut.
//
// The snapshot holds an epoch.Pin on every shard runtime for its
// lifetime: the reclamation bound freezes at the pin epoch without
// blocking epoch advance, so chunk traversals stay safe against node
// reuse no matter how long a consumer stalls between chunks, while
// writers keep retiring at full speed.

package kv

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"
	"sync"

	flock "flock/internal/core"
	"flock/internal/epoch"
	"flock/internal/kv/engine"
	"flock/internal/structures/set"
)

// snapList is one immutable version of the live-snapshot registry.
// Transitions install a freshly allocated snapList (never reusing a
// pointer), which makes the activation CAS ABA-free: a straggling
// helper replaying an old transition's CAS can never succeed against a
// registry that has moved on.
type snapList struct {
	snaps []*Snapshot
}

// preImage is one overlay record: key k's state at activation time.
type preImage struct {
	v       uint64
	present bool
}

// Snapshot is a consistent read-only view of the whole store. Iterate,
// Dump and Close must be called from one goroutine at a time; the
// overlay writes from concurrent store writers are synchronized
// internally. Close releases the snapshot's epoch pins and client
// handle; a closed snapshot must not be iterated.
type Snapshot struct {
	st     *Store
	c      *Client    // dedicated handle for iterator reads
	over   []sync.Map // per-shard overlay: uint64 key -> preImage
	pins   []*epoch.Pin
	vers   []uint64 // best-effort activation version vector
	closed bool
}

// snapRecord records key k's pre-image on shard i into every live
// snapshot's overlay. Write paths call it immediately before applying
// a write; record-before-write plus LoadOrStore first-wins is what
// keeps overlay entries at activation-time state (see the package
// comment's part 2). With no live snapshot the cost is one atomic load
// at top level and one committed log slot inside thunks (the commit is
// unconditional there: all runs of a thunk must consume identical log
// positions, so the branch cannot depend on an unlogged load).
func (st *Store) snapRecord(p *flock.Proc, i int, k uint64) {
	reg := st.snaps.Load()
	if !p.InThunk() {
		if reg == nil {
			return
		}
		v, ok := st.shards[i].s.Find(p, k)
		reg.record(i, k, v, ok)
		return
	}
	// Transactional writes: all runs of the thunk must agree on which
	// registry they saw, or a straggler replaying a pre-activation
	// section would pair the new registry with old-era logged values.
	creg, _ := flock.CommitPtr(p, reg)
	if creg == nil {
		return
	}
	// Logged read: every run records the same pre-image, and within the
	// critical section it is the value before this section's write.
	v, ok := st.shards[i].s.Find(p, k)
	creg.record(i, k, v, ok)
}

func (l *snapList) record(i int, k, v uint64, present bool) {
	for _, sn := range l.snaps {
		sn.over[i].LoadOrStore(k, preImage{v: v, present: present})
	}
}

// Snapshot captures a consistent read-only view of the whole store (see
// the package comment in this file for the protocol and its exact
// consistency contract). It panics if the store's structure does not
// implement set.Scanner. The snapshot holds a registered client and an
// epoch pin per runtime until Close; creation cost is one brief
// composed critical section over all shard locks.
func (st *Store) Snapshot() *Snapshot {
	if !st.scan {
		panic(fmt.Sprintf("kv: Snapshot on a store whose structure (%T) does not implement set.Scanner", st.shards[0].s))
	}
	sn := &Snapshot{
		st:   st,
		c:    st.Register(),
		over: make([]sync.Map, len(st.shards)),
	}
	if st.rt != nil {
		sn.pins = []*epoch.Pin{st.rt.Epochs().Pin()}
	} else {
		sn.pins = make([]*epoch.Pin, len(st.shards))
		for i := range st.shards {
			sn.pins[i] = st.shards[i].rt.Epochs().Pin()
		}
	}
	st.snapMu.Lock()
	old := st.snaps.Load()
	var snaps []*Snapshot
	if old != nil {
		snaps = append(snaps, old.snaps...)
	}
	st.installSnaps(sn.c, old, &snapList{snaps: append(snaps, sn)})
	st.snapMu.Unlock()
	sn.vers = st.captureVersions()
	return sn
}

// installSnaps flips the registry from old to next inside one composed
// critical section over every shard lock — the activation cut (on
// per-shard-runtime stores the sections run shard by shard; such stores
// have no cross-shard locked writers to order against). The body's CAS
// is idempotent across helper runs and replay-safe: only the first run
// can move old to next, and a straggler replaying this transition after
// a later one has installed a different (fresh) list fails the CAS.
func (st *Store) installSnaps(c *Client, old, next *snapList) {
	st.eng.Locked(c.procs, st.eng.AllShards(), func(int) engine.Attempt {
		return engine.Attempt{
			Body:   func(*flock.Proc) { st.snaps.CompareAndSwap(old, next) },
			Commit: func() {},
		}
	})
}

// captureVersions samples every shard lock's version just after
// activation, retrying briefly past in-flight critical sections. The
// vector is observability only (Snapshot.Versions) — the iterator's
// correctness never depends on it, because versions cannot be read
// while the activation section itself holds the locks.
func (st *Store) captureVersions() []uint64 {
	out := make([]uint64, len(st.shards))
	for i := range st.shards {
		for a := 0; a < 16; a++ {
			if v, ok := st.shards[i].lck.ReadVersion(); ok {
				out[i] = v
				break
			}
		}
	}
	return out
}

// Versions returns the best-effort per-shard lock version vector
// sampled at activation (a copy; observability only).
func (s *Snapshot) Versions() []uint64 {
	return append([]uint64(nil), s.vers...)
}

// Close deactivates the snapshot: the registry flips past it inside the
// same locked section as activation, its epoch pins release, and its
// client handle closes. Idempotent.
func (s *Snapshot) Close() {
	if s.closed {
		return
	}
	st := s.st
	st.snapMu.Lock()
	old := st.snaps.Load()
	var kept []*Snapshot
	if old != nil {
		for _, sn := range old.snaps {
			if sn != s {
				kept = append(kept, sn)
			}
		}
	}
	var next *snapList
	if len(kept) > 0 {
		next = &snapList{snaps: kept}
	}
	st.installSnaps(s.c, old, next)
	st.snapMu.Unlock()
	for _, pin := range s.pins {
		pin.Release()
	}
	s.c.Close()
	s.closed = true
}

// snapChunk is the per-shard cursor chunk size: large enough to
// amortize the per-chunk overlay sweep, small enough that no chunk read
// pins a shard's optimistic window for long.
const snapChunk = 256

// chunk reads up to snapChunk raw pairs from shard i over [pos, hi]: a
// version-validated optimistic pass when the structure supports it
// (bounded restarts through the engine), falling back to a plain
// top-level scan. The fallback is still correct with respect to
// lock-holding writers — overlay repair reconstructs activation-time
// state whatever the interleaving — validation merely narrows the
// plain-writer fuzz window.
func (s *Snapshot) chunk(i int, pos, hi uint64) []set.KV {
	st := s.st
	sh := &st.shards[i]
	if st.optScan {
		var run []set.KV
		if st.eng.OptimisticGroup(s.c.procs, []int{i}, func() {
			run = sh.osc.OptimisticScan(s.c.procs[i], pos, hi, snapChunk)
		}) {
			return run
		}
	}
	return sh.sc.Scan(s.c.procs[i], pos, hi, snapChunk)
}

// patch repairs one raw chunk covering [pos, end] against shard i's
// overlay: pre-images replace read values, keys recorded absent at
// activation are dropped, and overlay-only keys inside the interval
// (present at activation, deleted since) are merged back in. raw is
// sorted ascending; the result is too.
func (s *Snapshot) patch(i int, raw []set.KV, pos, end uint64) []set.KV {
	over := &s.over[i]
	out := make([]set.KV, 0, len(raw))
	for _, kv := range raw {
		if e, ok := over.Load(kv.Key); ok {
			pi := e.(preImage)
			if pi.present {
				out = append(out, set.KV{Key: kv.Key, Value: pi.v})
			}
			continue
		}
		out = append(out, kv)
	}
	var extra []set.KV
	over.Range(func(key, val any) bool {
		k := key.(uint64)
		if k < pos || k > end {
			return true
		}
		pi := val.(preImage)
		if !pi.present {
			return true
		}
		j := sort.Search(len(raw), func(n int) bool { return raw[n].Key >= k })
		if j < len(raw) && raw[j].Key == k {
			return true // read by the chunk; already patched above
		}
		extra = append(extra, set.KV{Key: k, Value: pi.v})
		return true
	})
	if len(extra) == 0 {
		return out
	}
	sort.Slice(extra, func(a, b int) bool { return extra[a].Key < extra[b].Key })
	return engine.MergeRuns([][]set.KV{out, extra}, -1)
}

// shardSnapIter streams one shard's repaired pairs: a set.Cursor over
// the raw structure (resumption by key, so nothing is pinned between
// chunks) feeding patched, buffered runs.
type shardSnapIter struct {
	s   *Snapshot
	i   int
	cur *set.Cursor
	buf []set.KV
	pos int
}

// head returns the iterator's next pair without consuming it, refilling
// from the cursor as needed (a patched chunk can be empty even when the
// raw read was not — every key dropped as absent-at-activation).
func (it *shardSnapIter) head() (set.KV, bool) {
	for it.pos >= len(it.buf) && !it.cur.Done() {
		pos := it.cur.Pos()
		raw := it.s.chunk(it.i, pos, it.cur.Hi())
		end := it.cur.Hi()
		if len(raw) == snapChunk {
			end = raw[len(raw)-1].Key
		}
		it.cur.Advance(raw, snapChunk)
		it.buf = it.s.patch(it.i, raw, pos, end)
		it.pos = 0
	}
	if it.pos < len(it.buf) {
		return it.buf[it.pos], true
	}
	return set.KV{}, false
}

// Iterate streams the snapshot's pairs with lo <= key <= hi in
// ascending key order, calling fn for each pair until it returns false
// or the interval is exhausted (0 and math.MaxUint64 are the usual
// open-interval sentinels). Hash routing scatters every interval across
// all shards, so the per-shard streams are k-way merged by key.
func (s *Snapshot) Iterate(lo, hi uint64, fn func(k, v uint64) bool) {
	if s.closed {
		panic("kv: Iterate on a closed Snapshot")
	}
	lo, hi = set.ClampScanBounds(lo, hi)
	if lo > hi {
		return
	}
	its := make([]*shardSnapIter, len(s.st.shards))
	for i := range its {
		its[i] = &shardSnapIter{s: s, i: i, cur: set.NewCursor(s.st.shards[i].sc, lo, hi)}
	}
	for {
		best := -1
		var bk set.KV
		for i := range its {
			kv, ok := its[i].head()
			if ok && (best == -1 || kv.Key < bk.Key) {
				best, bk = i, kv
			}
		}
		if best == -1 {
			return
		}
		its[best].pos++
		if !fn(bk.Key, bk.Value) {
			return
		}
	}
}

// Len counts the snapshot's pairs (a full iteration).
func (s *Snapshot) Len() int {
	n := 0
	s.Iterate(0, math.MaxUint64, func(uint64, uint64) bool { n++; return true })
	return n
}

// dumpMagic identifies the streaming dump format: the magic, then
// 16-byte little-endian (key, value) records in ascending key order,
// then a trailer record whose key is math.MaxUint64 (never a real key)
// and whose value is the record count, then the 8-byte FNV-1a checksum
// of all data records.
const dumpMagic = "FLKSNAP1"

// Dump streams the whole snapshot to w in the dumpMagic format. The
// stream is produced by one Iterate pass — bounded memory, no
// whole-store materialization — and carries a count and checksum
// trailer so Restore can verify integrity end to end.
func (s *Snapshot) Dump(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(dumpMagic); err != nil {
		return err
	}
	h := fnv.New64a()
	var rec [16]byte
	var count uint64
	var werr error
	s.Iterate(0, math.MaxUint64, func(k, v uint64) bool {
		binary.LittleEndian.PutUint64(rec[:8], k)
		binary.LittleEndian.PutUint64(rec[8:], v)
		h.Write(rec[:])
		if _, err := bw.Write(rec[:]); err != nil {
			werr = err
			return false
		}
		count++
		return true
	})
	if werr != nil {
		return werr
	}
	binary.LittleEndian.PutUint64(rec[:8], math.MaxUint64)
	binary.LittleEndian.PutUint64(rec[8:], count)
	if _, err := bw.Write(rec[:]); err != nil {
		return err
	}
	var sum [8]byte
	binary.LittleEndian.PutUint64(sum[:], h.Sum64())
	if _, err := bw.Write(sum[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// Restore loads a Dump stream into the store, upserting every record
// (typically into a fresh store), and returns how many pairs were
// applied. Records stream in batches as they are read, so a stream
// whose trailer fails verification can leave a partial restore behind;
// the error reports exactly which check failed (magic, truncation,
// count or checksum).
func (st *Store) Restore(r io.Reader) (int, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(dumpMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return 0, fmt.Errorf("kv: reading dump magic: %w", err)
	}
	if string(magic) != dumpMagic {
		return 0, fmt.Errorf("kv: bad dump magic %q", magic)
	}
	c := st.Register()
	defer c.Close()
	h := fnv.New64a()
	var rec [16]byte
	var count uint64
	keys := make([]uint64, 0, snapChunk)
	vals := make([]uint64, 0, snapChunk)
	flush := func() {
		if len(keys) > 0 {
			c.PutBatch(keys, vals)
			keys, vals = keys[:0], vals[:0]
		}
	}
	for {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return int(count), fmt.Errorf("kv: truncated dump after %d records: %w", count, err)
		}
		k := binary.LittleEndian.Uint64(rec[:8])
		if k == math.MaxUint64 { // trailer
			declared := binary.LittleEndian.Uint64(rec[8:])
			if declared != count {
				return int(count), fmt.Errorf("kv: dump record count %d, trailer declares %d", count, declared)
			}
			var sum [8]byte
			if _, err := io.ReadFull(br, sum[:]); err != nil {
				return int(count), fmt.Errorf("kv: truncated dump checksum: %w", err)
			}
			if got := binary.LittleEndian.Uint64(sum[:]); got != h.Sum64() {
				return int(count), fmt.Errorf("kv: dump checksum mismatch: stream %#x, computed %#x", got, h.Sum64())
			}
			flush()
			return int(count), nil
		}
		h.Write(rec[:])
		count++
		keys = append(keys, k)
		vals = append(vals, binary.LittleEndian.Uint64(rec[8:]))
		if len(keys) == snapChunk {
			flush()
		}
	}
}
