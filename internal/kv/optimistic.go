// Optimistic read arms for the sharded store (DESIGN.md S13). A plain
// Get never takes the shard lock, so its logged cost is only the
// descriptor-free traversal — but under Options.OptimisticReads even
// that traversal runs unlogged, validated against the shard lock's
// version counter: the shard lock is the store's only write-side
// serialization point for lock-holding readers and transactions, so an
// unchanged version across the read window proves no locked critical
// section (a transaction, an escalated scan) overlapped the read.
// Multi-shard operations (MultiGet, Scan) read a version vector over
// every involved shard before touching data and validate the whole
// vector after — the engine's optimistic arm (internal/kv/engine,
// DESIGN.md S17) owns that protocol, the bounded restarts, and the
// escalation to the logged path under the shard locks after
// MaxOptimistic failed attempts; this file only supplies each
// operation's data loads and result publication.

package kv

import (
	"sync/atomic"

	flock "flock/internal/core"
	"flock/internal/kv/engine"
	"flock/internal/obs/trace"
)

// optimisticGet is Get's unlogged arm: the engine's single-shard
// validated lookup (closure-free — the validated hot path stays
// allocation-free), completed under the shard lock when every attempt
// failed validation.
func (c *Client) optimisticGet(sh *shard, p *flock.Proc, i int, k uint64) (uint64, bool) {
	if v, found, validated := c.st.eng.OptimisticFind(p, i, sh.or, k); validated {
		return v, found
	}
	return c.escalatedGet(sh, p, k)
}

// escalatedGet completes a Get under the shard lock with the ordinary
// logged Find. The strict Lock always completes (helping in lock-free
// mode), so a writer storm cannot livelock readers. The thunk's result
// is published through atomics: every run recomputes identical values
// from logged loads, so the stores are idempotent, and a straggling
// helper's store cannot tear the outer read.
func (c *Client) escalatedGet(sh *shard, p *flock.Proc, k uint64) (uint64, bool) {
	var val atomic.Uint64
	var ok atomic.Uint32
	p.Begin()
	defer p.End()
	sh.lck.Lock(p, func(hp *flock.Proc) bool {
		v, found := sh.s.Find(hp, k)
		val.Store(v)
		if found {
			ok.Store(1)
		}
		return true
	})
	return val.Load(), ok.Load() == 1
}

// MultiGet looks up every key, filling vals and oks (freshly allocated,
// len(keys) each). Unlike GetBatch — independent per-key lookups with
// no mutual consistency — MultiGet is an atomic multi-key read on
// stores where the shard locks serialize writers (transactional
// shared-runtime stores): the engine's optimistic arm validates a
// version vector over every involved shard around the reads, and the
// escalated arm takes all involved shard locks in one composed critical
// section. It backs internal/txn's read-only MultiGet fast path.
// Without Options.OptimisticReads (or a capable structure) it degrades
// to GetBatch semantics.
func (c *Client) MultiGet(keys []uint64) (vals []uint64, oks []bool) {
	if !c.st.optGet || c.procs[0].InThunk() {
		return c.GetBatch(keys)
	}
	t0 := traceStart()
	defer traceOp(c.procs[0], t0, multiShard, trace.KVBatch)
	vals = make([]uint64, len(keys))
	oks = make([]bool, len(keys))
	if len(keys) == 0 {
		return vals, oks
	}
	st := c.st
	// The operation's footprint: each key's shard and the involved
	// group, ascending and duplicate-free (the lock-nesting order).
	shardOf := st.eng.ShardIndices(keys)
	involved := st.eng.Group(nil, shardOf)

	ok := st.eng.OptimisticGroup(c.procs, involved, func() {
		for i, k := range keys {
			s := shardOf[i]
			vals[i], oks[i] = st.shards[s].or.OptimisticFind(c.procs[s], k)
		}
	})
	if ok {
		return vals, oks
	}
	return c.escalatedMultiGet(keys, shardOf, involved, vals, oks)
}

// escalatedMultiGet reads every key under the involved shard locks via
// the engine's locked arm: one composed critical section over all
// involved shards on a shared-runtime store (atomic with respect to
// transactions), ascending per-shard sections otherwise (per-shard
// atomicity, which is all such stores ever promise — they run no
// transactions). Results are published through per-attempt atomics:
// helper runs recompute identical values from logged loads, so the
// stores are idempotent.
func (c *Client) escalatedMultiGet(keys []uint64, shardOf, involved []int, vals []uint64, oks []bool) ([]uint64, []bool) {
	st := c.st
	st.eng.Locked(c.procs, involved, func(s int) engine.Attempt {
		bufV := make([]atomic.Uint64, len(keys))
		bufOK := make([]atomic.Uint32, len(keys))
		readShard := func(hp *flock.Proc, s int) {
			for i, k := range keys {
				if shardOf[i] != s {
					continue
				}
				v, found := st.shards[s].s.Find(hp, k)
				bufV[i].Store(v)
				if found {
					bufOK[i].Store(1)
				}
			}
		}
		commit := func(s int) {
			for i := range keys {
				if s >= 0 && shardOf[i] != s {
					continue
				}
				vals[i] = bufV[i].Load()
				oks[i] = bufOK[i].Load() == 1
			}
		}
		if s < 0 {
			return engine.Attempt{
				Body: func(hp *flock.Proc) {
					for _, sh := range involved {
						readShard(hp, sh)
					}
				},
				Commit: func() { commit(-1) },
			}
		}
		return engine.Attempt{
			Body:   func(hp *flock.Proc) { readShard(hp, s) },
			Commit: func() { commit(s) },
		}
	})
	return vals, oks
}
