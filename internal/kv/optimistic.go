// Optimistic read arms for the sharded store (DESIGN.md S13). A plain
// Get never takes the shard lock, so its logged cost is only the
// descriptor-free traversal — but under Options.OptimisticReads even
// that traversal runs unlogged, validated against the shard lock's
// version counter: the shard lock is the store's only write-side
// serialization point for lock-holding readers and transactions, so an
// unchanged version across the read window proves no locked critical
// section (a transaction, an escalated scan) overlapped the read.
// Multi-shard operations (MultiGet, Scan) read a version vector over
// every involved shard before touching data and validate the whole
// vector after: transactions acquire their shard locks in ascending
// order nested (first acquired is last released), so any transaction
// whose effect a read observed on one shard must still have been
// holding — or already bumped — every earlier shard's lock when the
// vector was read or validated, and a cross-shard torn observation
// always fails validation. Whole-operation restart, with escalation to
// the ordinary logged path under the shard locks after MaxOptimistic
// failed attempts, mirrors the core combinator (flock.OptimisticRead)
// and the olcart baseline.

package kv

import (
	"sync/atomic"

	flock "flock/internal/core"
	"flock/internal/obs"
	"flock/internal/obs/trace"
)

// optimisticGet is Get's unlogged arm: seqlock-validated OptimisticFind
// with a hand-rolled retry loop (no closures — the validated hot path
// stays allocation-free). The epoch guard spans ReadVersion through
// Validate so the lock-word box cannot be recycled mid-inspection.
func (c *Client) optimisticGet(sh *shard, p *flock.Proc, k uint64) (uint64, bool) {
	p.Begin()
	for attempt := sh.rt.MaxOptimistic(); attempt > 0; attempt-- {
		if ver, ok := sh.lck.ReadVersion(); ok {
			v, found := sh.or.OptimisticFind(p, k)
			if sh.lck.Validate(ver) {
				p.End()
				return v, found
			}
		}
		// The store counters are always on (the harness diffs them around
		// windows); the obs block mirrors them into the gated metrics
		// layer so snapshots attribute restarts to workers, and the
		// flight recorder mirrors them as timeline events.
		c.st.optRestarts.Add(1)
		p.Obs().Inc(obs.OptRestarts)
		p.Trace(trace.OptRestart, 0, 0, 0)
	}
	p.End()
	c.st.optEscalations.Add(1)
	p.Obs().Inc(obs.OptEscalations)
	p.Trace(trace.OptEscalate, 0, 0, 0)
	return c.escalatedGet(sh, p, k)
}

// escalatedGet completes a Get under the shard lock with the ordinary
// logged Find. The strict Lock always completes (helping in lock-free
// mode), so a writer storm cannot livelock readers. The thunk's result
// is published through atomics: every run recomputes identical values
// from logged loads, so the stores are idempotent, and a straggling
// helper's store cannot tear the outer read.
func (c *Client) escalatedGet(sh *shard, p *flock.Proc, k uint64) (uint64, bool) {
	var val atomic.Uint64
	var ok atomic.Uint32
	p.Begin()
	defer p.End()
	sh.lck.Lock(p, func(hp *flock.Proc) bool {
		v, found := sh.s.Find(hp, k)
		val.Store(v)
		if found {
			ok.Store(1)
		}
		return true
	})
	return val.Load(), ok.Load() == 1
}

// beginAll enters an epoch guard on every runtime the client touches
// (one guard on a shared-runtime store); endAll exits them.
func (c *Client) beginAll() {
	if c.st.rt != nil {
		c.procs[0].Begin()
		return
	}
	for _, p := range c.procs {
		p.Begin()
	}
}

func (c *Client) endAll() {
	if c.st.rt != nil {
		c.procs[0].End()
		return
	}
	for _, p := range c.procs {
		p.End()
	}
}

// MultiGet looks up every key, filling vals and oks (freshly allocated,
// len(keys) each). Unlike GetBatch — independent per-key lookups with
// no mutual consistency — MultiGet is an atomic multi-key read on
// stores where the shard locks serialize writers (transactional
// shared-runtime stores): the optimistic arm validates a version vector
// over every involved shard around the reads, and the escalated arm
// takes all involved shard locks in one composed critical section. It
// backs internal/txn's read-only MultiGet fast path. Without
// Options.OptimisticReads (or a capable structure) it degrades to
// GetBatch semantics.
func (c *Client) MultiGet(keys []uint64) (vals []uint64, oks []bool) {
	if !c.st.optGet || c.procs[0].InThunk() {
		return c.GetBatch(keys)
	}
	t0 := traceStart()
	defer traceOp(c.procs[0], t0, multiShard, trace.KVBatch)
	vals = make([]uint64, len(keys))
	oks = make([]bool, len(keys))
	if len(keys) == 0 {
		return vals, oks
	}
	st := c.st
	// Involved shards, ascending and duplicate-free (the lock-nesting
	// order), and each key's shard.
	shardOf := make([]int, len(keys))
	seen := make([]bool, len(st.shards))
	involved := make([]int, 0, len(st.shards))
	for i, k := range keys {
		s := st.ShardOf(k)
		shardOf[i] = s
		seen[s] = true
	}
	for s := range seen {
		if seen[s] {
			involved = append(involved, s)
		}
	}

	vers := make([]uint64, len(involved))
	max := st.shards[involved[0]].rt.MaxOptimistic()
attempts:
	for attempt := 0; attempt < max; attempt++ {
		c.beginAll()
		// Version vector first, data loads second, validation last: see
		// the package comment for why this ordering (with the
		// transaction layer's ascending-nested locking) makes a
		// validated result a cross-shard atomic snapshot.
		for j, s := range involved {
			v, ok := st.shards[s].lck.ReadVersion()
			if !ok {
				c.endAll()
				st.optRestarts.Add(1)
				c.procs[0].Obs().Inc(obs.OptRestarts)
				c.procs[0].Trace(trace.OptRestart, 0, 0, 0)
				continue attempts
			}
			vers[j] = v
		}
		for i, k := range keys {
			s := shardOf[i]
			vals[i], oks[i] = st.shards[s].or.OptimisticFind(c.procs[s], k)
		}
		for j, s := range involved {
			if !st.shards[s].lck.Validate(vers[j]) {
				c.endAll()
				st.optRestarts.Add(1)
				c.procs[0].Obs().Inc(obs.OptRestarts)
				c.procs[0].Trace(trace.OptRestart, 0, 0, 0)
				continue attempts
			}
		}
		c.endAll()
		return vals, oks
	}
	st.optEscalations.Add(1)
	c.procs[0].Obs().Inc(obs.OptEscalations)
	c.procs[0].Trace(trace.OptEscalate, 0, 0, 0)
	return c.escalatedMultiGet(keys, shardOf, involved, vals, oks)
}

// escalatedMultiGet reads every key under the involved shard locks. On
// a shared-runtime store all locks are taken in one composed critical
// section (atomic with respect to transactions); on a per-shard-runtime
// store locks cannot compose across runtimes, so each shard is read
// under its own lock in ascending order (per-shard atomicity, which is
// all such stores ever promise — they run no transactions). Results are
// published through atomics: helper runs recompute identical values
// from logged loads, so the stores are idempotent.
func (c *Client) escalatedMultiGet(keys []uint64, shardOf, involved []int, vals []uint64, oks []bool) ([]uint64, []bool) {
	st := c.st
	bufV := make([]atomic.Uint64, len(keys))
	bufOK := make([]atomic.Uint32, len(keys))
	readShard := func(hp *flock.Proc, s int) {
		for i, k := range keys {
			if shardOf[i] != s {
				continue
			}
			v, found := st.shards[s].s.Find(hp, k)
			bufV[i].Store(v)
			if found {
				bufOK[i].Store(1)
			}
		}
	}
	if st.rt != nil {
		for attempt := 0; ; attempt++ {
			ok := st.NestShardLocks(c.procs[0], involved, func(hp *flock.Proc) {
				for _, s := range involved {
					readShard(hp, s)
				}
			})
			if ok {
				break
			}
			scanBackoff(attempt)
		}
	} else {
		for _, s := range involved {
			for attempt := 0; ; attempt++ {
				ok := st.NestShardLocks(c.procs[s], []int{s}, func(hp *flock.Proc) {
					readShard(hp, s)
				})
				if ok {
					break
				}
				scanBackoff(attempt)
			}
		}
	}
	for i := range keys {
		vals[i] = bufV[i].Load()
		oks[i] = bufOK[i].Load() == 1
	}
	return vals, oks
}
