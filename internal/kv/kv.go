// Package kv is a sharded concurrent key-value store composed from the
// repository's set structures: N shards, each with its own
// flock.Runtime and structure instance, with keys routed to shards by
// a salted workload.Hash64. It is the first layer of the serving architecture
// the ROADMAP calls for (DESIGN.md S9): sharding multiplies the
// single-structure throughput the paper measures, and the per-shard
// runtimes keep epoch reclamation and helping traffic local.
//
// The store exposes Get, Put (upsert), Delete and ReadModifyWrite plus
// batch variants. Put and ReadModifyWrite are atomic — one
// linearization point, no transient absent window — when the underlying
// structure implements set.Upserter (leaftree and hashtable do); for
// other structures they fall back to delete-then-insert, which is
// documented as non-atomic under contention (NativeUpsert reports which
// regime a store is in).
//
// Two extension points serve the transactional layer (internal/txn):
// Options.SharedRuntime routes every shard through one flock.Runtime so
// cross-shard thunks compose soundly, and each shard carries a
// flock.Lock handle (ShardLock) that transactions acquire — nested, in
// ascending shard order — around the Shard* operations. Plain Client
// operations take neither.
package kv

import (
	"sync"
	"sync/atomic"

	flock "flock/internal/core"
	"flock/internal/kv/engine"
	"flock/internal/obs"
	"flock/internal/obs/trace"
	"flock/internal/structures/set"
	"flock/internal/workload"
)

// Factory builds one shard's structure instance, sized for that shard's
// expected key count. It has the same shape as the harness registry's
// factories.
type Factory func(rt *flock.Runtime, keyRange uint64) set.Set

// Options configures a Store.
type Options struct {
	// Shards is the shard count; values < 1 mean 1 (unsharded).
	Shards int
	// Blocking selects the lock mode of every shard's runtime.
	Blocking bool
	// NoPool disables descriptor/log-block/mbox pooling on every
	// shard's runtime (the GC-fresh ablation arm; see flock.NoPool).
	NoPool bool
	// KeyRange is a sizing hint: the expected total number of distinct
	// keys, split evenly across shards when sizing each structure
	// (hashtable bucket arrays, for example). 0 defaults to 1<<16.
	KeyRange uint64
	// SharedRuntime routes every shard through one flock.Runtime
	// instead of a private runtime per shard. A shared runtime is what
	// makes cross-shard composed critical sections sound: nested
	// TryLock acquisitions spanning shards then share one epoch manager
	// (helpers' guards protect memory retired on any shard) and one
	// mode flag (all runs of a composed thunk agree on lock-free vs
	// blocking). internal/txn requires it; plain KV serving prefers
	// per-shard runtimes, which keep reclamation and helping local.
	SharedRuntime bool
	// OptimisticReads routes Get, Scan and MultiGet through unlogged
	// optimistic reads validated against the shard locks' version
	// counters (flock.Lock.ReadVersion), restarting the whole operation
	// on validation failure and escalating to the ordinary logged path
	// under the shard locks after MaxOptimistic failed attempts. It
	// takes effect only when the structure implements the matching
	// set.OptimisticReader / set.OptimisticScanner capability (see
	// Store.OptimisticReads / OptimisticScans); otherwise the logged
	// path is used unchanged.
	OptimisticReads bool
}

// shard is one partition: a runtime (private, or shared by every shard
// under Options.SharedRuntime), a structure bound to it, and a shard
// lock used by internal/txn to compose cross-shard critical sections.
// Plain single-key and batch operations never touch the shard lock.
type shard struct {
	rt  *flock.Runtime
	s   set.Set
	up  set.Upserter          // nil when s has no native upsert
	sc  set.Scanner           // nil when s is not ordered (no range scans)
	or  set.OptimisticReader  // nil when s has no unlogged Find
	osc set.OptimisticScanner // nil when s has no unlogged Scan
	// lck serializes transactional access to this shard (internal/txn
	// acquires the locks of every touched shard in ascending index
	// order, nested, inside one composed thunk). It lives here, with
	// the shard, so the lock handle and the structure it protects have
	// one owner.
	lck flock.Lock
}

// Store is a sharded concurrent KV store. Create clients with Register;
// all data-path methods live on Client.
type Store struct {
	shards  []shard
	native  bool
	scan    bool           // every shard implements set.Scanner
	optGet  bool           // OptimisticReads requested and Find arm capable
	optScan bool           // OptimisticReads requested and Scan arm capable
	rt      *flock.Runtime // non-nil iff Options.SharedRuntime
	// eng executes every multi-shard operation: lock nesting, retry
	// loops, the optimistic version-vector arm, and their obs/trace
	// accounting all live there (internal/kv/engine, DESIGN.md S17).
	eng *engine.Engine
	// snaps is the live-snapshot registry (snapshot.go): an immutable
	// COW list the write paths consult to record pre-images. nil when no
	// snapshot is active, so the write-side check is one atomic load.
	// Every transition installs a freshly allocated snapList inside a
	// brief all-shard locked section (the activation cut); snapMu
	// serializes the administrative transitions themselves.
	snaps  atomic.Pointer[snapList]
	snapMu sync.Mutex
	// clients counts live handles (monitoring/tests only).
	clients atomic.Int64
	// Optimistic-read counters: failed attempts (lock busy or version
	// changed under the read) and escalations to the logged path. The
	// harness samples them around measured windows (RunStats).
	optRestarts    atomic.Uint64
	optEscalations atomic.Uint64
	// shardOps accumulates per-shard routed-op counts for skew
	// visibility (obs metrics). Clients count locally, with no
	// synchronization, and fold into these atomics on Close; counts only
	// accrue while obs metrics are enabled.
	shardOps []atomic.Uint64
}

// New builds a store whose shards each hold a fresh structure from f.
func New(f Factory, opt Options) *Store {
	n := opt.Shards
	if n < 1 {
		n = 1
	}
	kr := opt.KeyRange
	if kr == 0 {
		kr = 1 << 16
	}
	perShard := kr/uint64(n) + 1
	st := &Store{
		shards: make([]shard, n), native: true, scan: true,
		optGet: opt.OptimisticReads, optScan: opt.OptimisticReads,
		shardOps: make([]atomic.Uint64, n),
	}
	var fopts []flock.Option
	if opt.NoPool {
		fopts = append(fopts, flock.NoPool())
	}
	if opt.SharedRuntime {
		st.rt = flock.New(fopts...)
		st.rt.SetBlocking(opt.Blocking)
	}
	for i := range st.shards {
		rt := st.rt
		if rt == nil {
			rt = flock.New(fopts...)
			rt.SetBlocking(opt.Blocking)
		}
		s := f(rt, perShard)
		up, _ := s.(set.Upserter)
		if up == nil {
			st.native = false
		}
		sc, _ := s.(set.Scanner)
		if sc == nil {
			st.scan = false
		}
		or, _ := s.(set.OptimisticReader)
		if or == nil {
			st.optGet = false
		}
		osc, _ := s.(set.OptimisticScanner)
		if osc == nil {
			st.optScan = false
		}
		st.shards[i] = shard{rt: rt, s: s, up: up, sc: sc, or: or, osc: osc}
	}
	locks := make([]*flock.Lock, n)
	rts := make([]*flock.Runtime, n)
	for i := range st.shards {
		locks[i] = &st.shards[i].lck
		rts[i] = st.shards[i].rt
	}
	st.eng = engine.New(engine.Config{
		Locks: locks, Runtimes: rts, Shared: st.rt, Route: st.ShardOf,
		Restarts: &st.optRestarts, Escalations: &st.optEscalations,
	})
	return st
}

// Engine exposes the store's shard-group execution engine. The
// transaction layer runs its composed commit sections and footprint
// planning through it; most callers want the higher-level Client and
// Store methods instead.
func (st *Store) Engine() *engine.Engine { return st.eng }

// OptimisticReads reports whether Get and MultiGet run the optimistic
// unlogged arm (Options.OptimisticReads was set and the structure
// implements set.OptimisticReader).
func (st *Store) OptimisticReads() bool { return st.optGet }

// OptimisticScans reports whether Scan runs the optimistic unlogged arm
// (Options.OptimisticReads was set and the structure implements
// set.OptimisticScanner).
func (st *Store) OptimisticScans() bool { return st.optScan }

// OptimisticStats returns the cumulative optimistic-read counters:
// restarts (failed attempts across Get, Scan and MultiGet) and
// escalations to the logged path. Monotonic; sample before/after a
// window to attribute counts to it.
func (st *Store) OptimisticStats() (restarts, escalations uint64) {
	return st.optRestarts.Load(), st.optEscalations.Load()
}

// ShardOps returns the cumulative per-shard routed-op counts folded in
// by closed clients (single-key and batch operations; scans excluded).
// Counts accrue only while obs metrics are enabled, and a client's
// contribution lands when it closes — sample after workers have closed
// their clients to see a whole window. Monotonic; diff two samples to
// attribute counts to a window.
func (st *Store) ShardOps() []uint64 {
	out := make([]uint64, len(st.shardOps))
	for i := range st.shardOps {
		out[i] = st.shardOps[i].Load()
	}
	return out
}

// Runtime returns the store-wide runtime when the store was built with
// Options.SharedRuntime, and nil for per-shard-runtime stores.
func (st *Store) Runtime() *flock.Runtime { return st.rt }

// ShardLock returns shard i's lock handle. It is the composition point
// for internal/txn: multi-shard critical sections nest TryLock calls on
// these handles in ascending shard order. Meaningful serialization
// against other lock holders only; plain Client operations do not
// acquire it.
func (st *Store) ShardLock(i int) *flock.Lock { return &st.shards[i].lck }

// NumShards returns the shard count.
func (st *Store) NumShards() int { return len(st.shards) }

// NativeUpsert reports whether every shard supports atomic in-thunk
// upserts (set.Upserter). When false, Put and ReadModifyWrite use the
// non-atomic delete-then-insert fallback.
func (st *Store) NativeUpsert() bool { return st.native }

// SetStallInjection forwards deschedule injection to every shard's
// runtime (see flock.Runtime.SetStallInjection).
func (st *Store) SetStallInjection(n int) {
	for i := range st.shards {
		st.shards[i].rt.SetStallInjection(n)
	}
}

// shardSalt decorrelates shard routing from the structures' own key
// hashing: hashtable buckets index by the *same* splitmix64 finalizer,
// so routing on bare Hash64(k) with a power-of-two shard count would
// pin the low bits of every in-shard bucket index and leave (shards-1)/
// shards of each shard's buckets unreachable.
const shardSalt = 0xd1b54a32d192ed03

// ShardOf returns the shard index key k routes to: a stateless salted
// hash, so every client agrees, the mapping survives restarts, and the
// routing bits are independent of any structure-internal hash of k.
func (st *Store) ShardOf(k uint64) int {
	return int(workload.Hash64(k^shardSalt) % uint64(len(st.shards)))
}

// Client is one goroutine's handle on the store: it holds a registered
// Proc per shard. A Client must only be used by one goroutine at a time;
// Close releases its epoch slots.
type Client struct {
	st    *Store
	procs []*flock.Proc
	// ops counts this client's routed single-key and batch operations
	// per shard (plain increments — the client is single-goroutine);
	// folded into Store.shardOps on Close. Scans are excluded: a
	// scatter-gather scan touches every shard by construction, so it
	// carries no skew signal.
	ops []uint64
}

// Register creates a client, registering a worker context with every
// shard's runtime (one shared Proc when the store has a shared
// runtime).
func (st *Store) Register() *Client {
	c := &Client{
		st:    st,
		procs: make([]*flock.Proc, len(st.shards)),
		ops:   make([]uint64, len(st.shards)),
	}
	if st.rt != nil {
		p := st.rt.Register()
		for i := range c.procs {
			c.procs[i] = p
		}
	} else {
		for i := range st.shards {
			c.procs[i] = st.shards[i].rt.Register()
		}
	}
	st.clients.Add(1)
	return c
}

// SharedProc returns the client's single Proc on a shared-runtime
// store. It panics on per-shard-runtime stores, where no one Proc is
// valid across shards.
func (c *Client) SharedProc() *flock.Proc {
	if c.st.rt == nil {
		panic("kv: SharedProc on a store without Options.SharedRuntime")
	}
	return c.procs[0]
}

// Close unregisters the client from every shard and folds its per-shard
// op counts into the store's skew totals.
func (c *Client) Close() {
	for i, n := range c.ops {
		if n != 0 {
			c.st.shardOps[i].Add(n)
		}
	}
	if c.st.rt != nil {
		c.procs[0].Unregister()
	} else {
		for _, p := range c.procs {
			p.Unregister()
		}
	}
	c.st.clients.Add(-1)
}

// note counts one routed operation against shard i (metrics only).
func (c *Client) note(i int) {
	if obs.On() {
		c.ops[i]++
	}
}

// route returns the shard index, shard and Proc for k.
func (c *Client) route(k uint64) (int, *shard, *flock.Proc) {
	i := c.st.ShardOf(k)
	c.note(i)
	return i, &c.st.shards[i], c.procs[i]
}

// Get returns the value stored under k, if present. With
// Options.OptimisticReads (and a capable structure) the lookup runs as
// an unlogged optimistic read validated against the shard lock's
// version, escalating to a logged read under the shard lock after
// MaxOptimistic failed attempts (optimistic.go).
func (c *Client) Get(k uint64) (uint64, bool) {
	t0 := traceStart()
	i, sh, p := c.route(k)
	var v uint64
	var ok bool
	if c.st.optGet && !p.InThunk() {
		v, ok = c.optimisticGet(sh, p, i, k)
	} else {
		v, ok = sh.s.Find(p, k)
	}
	traceOp(p, t0, uint64(i), trace.KVGet)
	return v, ok
}

// put is the shared upsert path: native single-critical-section upsert
// when available, otherwise delete-then-insert. The fallback has a
// transient absent window under contention and its "newly inserted" bit
// is only a best-effort observation.
func put(sh *shard, p *flock.Proc, k, v uint64) (inserted bool) {
	if sh.up != nil {
		_, present := sh.up.Upsert(p, k, func(uint64, bool) uint64 { return v })
		return !present
	}
	replaced := false
	for {
		if sh.s.Insert(p, k, v) {
			return !replaced
		}
		replaced = true
		sh.s.Delete(p, k)
	}
}

// Put upserts (k, v) and reports whether k was newly inserted (false
// means an existing value was replaced).
func (c *Client) Put(k, v uint64) bool {
	t0 := traceStart()
	i, sh, p := c.route(k)
	c.st.snapRecord(p, i, k)
	r := put(sh, p, k, v)
	traceOp(p, t0, uint64(i), trace.KVPut)
	return r
}

// The Shard* operations run one key's operation on a known shard with
// an explicit Proc. They exist for internal/txn, whose composed
// critical sections execute on whichever Proc is running the thunk (the
// owner's or a helper's) rather than on a registered Client's. The
// caller is responsible for routing (ShardOf) and, in transactional
// use, for holding the relevant shard locks.

// ShardGet looks up k on shard i with Proc p.
func (st *Store) ShardGet(i int, p *flock.Proc, k uint64) (uint64, bool) {
	return st.shards[i].s.Find(p, k)
}

// ShardPut upserts (k, v) on shard i with Proc p, reporting whether k
// was newly inserted. Inside a composed thunk the report is
// deterministic across helper runs (it flows from logged loads), which
// is what lets transactions publish insert counts idempotently.
func (st *Store) ShardPut(i int, p *flock.Proc, k, v uint64) bool {
	st.snapRecord(p, i, k)
	return put(&st.shards[i], p, k, v)
}

// ShardDelete removes k on shard i with Proc p.
func (st *Store) ShardDelete(i int, p *flock.Proc, k uint64) bool {
	st.snapRecord(p, i, k)
	return st.shards[i].s.Delete(p, k)
}

// Delete removes k and reports whether it was present.
func (c *Client) Delete(k uint64) bool {
	t0 := traceStart()
	i, sh, p := c.route(k)
	c.st.snapRecord(p, i, k)
	r := sh.s.Delete(p, k)
	traceOp(p, t0, uint64(i), trace.KVDelete)
	return r
}

// ReadModifyWrite atomically replaces k's value with f(old, present)
// (inserting if absent) and returns the previous value and presence.
// f must be pure: with a native upserter it may run inside a critical
// section that helpers re-execute. Without native upsert the
// read-compute-write sequence is not atomic under contention on k.
func (c *Client) ReadModifyWrite(k uint64, f func(old uint64, present bool) uint64) (uint64, bool) {
	t0 := traceStart()
	i, sh, p := c.route(k)
	c.st.snapRecord(p, i, k)
	v, ok := rmw(sh, p, k, f)
	traceOp(p, t0, uint64(i), trace.KVRMW)
	return v, ok
}

// rmw is ReadModifyWrite's core (see its contract).
func rmw(sh *shard, p *flock.Proc, k uint64, f func(old uint64, present bool) uint64) (uint64, bool) {
	if sh.up != nil {
		return sh.up.Upsert(p, k, f)
	}
	for {
		old, ok := sh.s.Find(p, k)
		nv := f(old, ok)
		if !ok {
			if sh.s.Insert(p, k, nv) {
				return 0, false
			}
			continue // lost an insert race; re-read
		}
		if sh.s.Delete(p, k) {
			for !sh.s.Insert(p, k, nv) {
				sh.s.Delete(p, k)
			}
			return old, true
		}
		// Someone else deleted first; re-read.
	}
}

// byShard visits keys grouped by shard (all of shard 0's keys, then
// shard 1's, ...) so each shard's structure is walked consecutively.
// visit receives the original index of each key and its shard index.
func (c *Client) byShard(keys []uint64, visit func(i, s int, sh *shard, p *flock.Proc)) {
	n := len(c.st.shards)
	if n == 1 {
		sh, p := &c.st.shards[0], c.procs[0]
		if obs.On() {
			c.ops[0] += uint64(len(keys))
		}
		for i := range keys {
			visit(i, 0, sh, p)
		}
		return
	}
	// Two-pass counting sort of key indices by shard.
	counts := make([]int, n+1)
	shardOf := make([]int, len(keys))
	for i, k := range keys {
		s := c.st.ShardOf(k)
		shardOf[i] = s
		counts[s+1]++
	}
	for s := 0; s < n; s++ {
		counts[s+1] += counts[s]
	}
	order := make([]int, len(keys))
	next := counts
	for i := range keys {
		s := shardOf[i]
		order[next[s]] = i
		next[s]++
	}
	track := obs.On()
	for _, i := range order {
		s := shardOf[i]
		if track {
			c.ops[s]++
		}
		visit(i, s, &c.st.shards[s], c.procs[s])
	}
}

// GetBatch looks up every key, filling vals and oks (which it returns;
// both are freshly allocated, len(keys) each).
func (c *Client) GetBatch(keys []uint64) (vals []uint64, oks []bool) {
	t0 := traceStart()
	vals = make([]uint64, len(keys))
	oks = make([]bool, len(keys))
	c.byShard(keys, func(i, _ int, sh *shard, p *flock.Proc) {
		vals[i], oks[i] = sh.s.Find(p, keys[i])
	})
	traceOp(c.procs[0], t0, multiShard, trace.KVGet)
	return vals, oks
}

// PutBatch upserts keys[i] -> vals[i] for every i (len(vals) must equal
// len(keys)) and returns how many keys were newly inserted.
func (c *Client) PutBatch(keys, vals []uint64) int {
	if len(keys) != len(vals) {
		panic("kv: PutBatch length mismatch")
	}
	t0 := traceStart()
	inserted := 0
	c.byShard(keys, func(i, s int, sh *shard, p *flock.Proc) {
		c.st.snapRecord(p, s, keys[i])
		if put(sh, p, keys[i], vals[i]) {
			inserted++
		}
	})
	traceOp(c.procs[0], t0, multiShard, trace.KVPut)
	return inserted
}

// DeleteBatch removes every key and returns how many were present.
func (c *Client) DeleteBatch(keys []uint64) int {
	t0 := traceStart()
	deleted := 0
	c.byShard(keys, func(i, s int, sh *shard, p *flock.Proc) {
		c.st.snapRecord(p, s, keys[i])
		if sh.s.Delete(p, keys[i]) {
			deleted++
		}
	})
	traceOp(c.procs[0], t0, multiShard, trace.KVDelete)
	return deleted
}
