package bench

import (
	"math"
	"testing"
	"time"

	"flock/internal/harness"
)

// TestFigureSpecsSmoke runs one tiny measurement per (figure, series)
// point so that regressions in the figure spec tables — a series naming
// an unregistered structure, an Xs function yielding nothing, a SpecFor
// building an unrunnable spec — fail `go test ./...` instead of only
// surfacing under -bench, where nothing runs them in CI.
func TestFigureSpecsSmoke(t *testing.T) {
	sc := harness.DefaultScale()
	// Shrink everything: correctness of the plumbing is the target, not
	// meaningful throughput numbers. LargeKeys stays at 1000 so fig5h's
	// size sweep (which starts at 1000) is non-empty.
	sc.LargeKeys = 1000
	sc.SmallKeys = 200
	sc.ListKeys = 50
	sc.Duration = 2 * time.Millisecond
	sc.Warmup = 0
	sc.Repeats = 1
	sc.Threads = []int{2}
	sc.Base = 2
	sc.Over = 4
	sc.Shards = 2

	figs := harness.Figures()
	if len(figs) == 0 {
		t.Fatal("no figure specs registered")
	}
	for _, id := range harness.FigureIDs() {
		fs := figs[id]
		xs := fs.Xs(sc)
		if len(xs) == 0 {
			t.Errorf("%s: empty x axis", id)
			continue
		}
		x := xs[0]
		for _, s := range fs.Series {
			spec := fs.SpecFor(sc, s, x)
			res, err := harness.RunTimed(spec)
			if err != nil {
				t.Errorf("%s series %s at x=%s: %v", id, s.Name, x, err)
				continue
			}
			if res.Ops == 0 {
				t.Errorf("%s series %s at x=%s: zero ops", id, s.Name, x)
			}
			// Every path (set mix and KV/YCSB alike) must report
			// per-op latency: one sample per completed operation.
			if res.Hist.Count() != res.Ops {
				t.Errorf("%s series %s at x=%s: %d ops but %d latency samples",
					id, s.Name, x, res.Ops, res.Hist.Count())
			}
			// The allocation metric must be populated (the latency
			// histogram itself allocates nothing inside the window, so
			// a NaN/zero-ops hole here means the MemStats bracketing
			// regressed). The ≥2x pooled-vs-fresh property is pinned
			// precisely by internal/core's AllocsPerRun tests; runs
			// here are too short to assert ratios stably.
			if id == "ext-alloc" && (math.IsNaN(res.AllocsPerOp) || res.AllocsPerOp < 0) {
				t.Errorf("%s series %s at x=%s: bad allocs/op %v",
					id, s.Name, x, res.AllocsPerOp)
			}
			// The ext-snap "+snap" arms must report snapshot-loop
			// progress: the loop completes at least one whole-store
			// iteration even on the shortest window, so zero cycles
			// means the background loop or its plumbing regressed.
			if id == "ext-snap" && s.SnapshotLoop && res.SnapCycles < 1 {
				t.Errorf("%s series %s at x=%s: snapshot loop reported %d cycles, want >= 1",
					id, s.Name, x, res.SnapCycles)
			}
		}
	}
}
