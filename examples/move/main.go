// Move: atomically relocating keys between two concurrent structures.
//
// The paper's introduction motivates lock-free locks with exactly this:
// "If one needs to atomically move data among structures, lock-free
// algorithms become particularly tricky." With fine-grained try-locks it
// is three nested locks and two splices (lazylist.Move); the lock-free
// runtime makes the composite operation non-blocking.
//
// Eight workers shuttle 100 tokens between a "pending" and a "done" list
// for a while; conservation is checked at the end: every token in
// exactly one list, with its original value.
//
//	go run ./examples/move
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	flock "flock/internal/core"
	"flock/internal/structures/lazylist"
)

func main() {
	rt := flock.New()
	pending := lazylist.New(rt)
	done := lazylist.New(rt)

	const tokens = 100
	p0 := rt.Register()
	for k := uint64(1); k <= tokens; k++ {
		pending.Insert(p0, k, k*1000)
	}
	p0.Unregister()

	var moves atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := rt.Register()
			defer p.Unregister()
			rng := rand.New(rand.NewSource(int64(w) + 99))
			for i := 0; i < 20_000; i++ {
				k := uint64(rng.Intn(tokens) + 1)
				var ok bool
				if rng.Intn(2) == 0 {
					ok = lazylist.Move(p, pending, done, k)
				} else {
					ok = lazylist.Move(p, done, pending, k)
				}
				if ok {
					moves.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()

	p := rt.Register()
	defer p.Unregister()
	inPending, inDone, lost, dup, corrupt := 0, 0, 0, 0, 0
	for k := uint64(1); k <= tokens; k++ {
		va, a := pending.Find(p, k)
		vb, b := done.Find(p, k)
		switch {
		case a && b:
			dup++
		case !a && !b:
			lost++
		case a:
			inPending++
			if va != k*1000 {
				corrupt++
			}
		default:
			inDone++
			if vb != k*1000 {
				corrupt++
			}
		}
	}
	fmt.Printf("%d successful moves by 8 workers\n", moves.Load())
	fmt.Printf("final: %d pending + %d done = %d tokens (lost=%d duplicated=%d corrupted=%d)\n",
		inPending, inDone, inPending+inDone, lost, dup, corrupt)
	if lost == 0 && dup == 0 && corrupt == 0 && inPending+inDone == tokens {
		fmt.Println("conservation invariant preserved: every token in exactly one list")
	}
}
