// Quickstart: write ordinary fine-grained-lock code, run it lock-free.
//
// This example builds a tiny concurrent sorted set (a two-node-locking
// linked list — the paper's running example) directly against the flock
// API, runs it from several goroutines in lock-free mode, then flips the
// same structure to blocking mode at runtime.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math"
	"sync"

	flock "flock/internal/core"
)

// link is a list node: constants k/v, shared mutable next and removed,
// and a lock guarding structural changes after it.
type link struct {
	k, v    uint64
	next    flock.Mutable[*link]
	removed flock.UpdateOnce[bool]
	lck     flock.Lock
}

type list struct{ head *link }

func newList() *list {
	tail := &link{k: math.MaxUint64}
	head := &link{}
	head.next.Init(tail)
	return &list{head: head}
}

func (l *list) locate(p *flock.Proc, k uint64) (pred, curr *link) {
	pred = l.head
	curr = pred.next.Load(p) // outside locks: a plain atomic load, no logging
	for curr.k < k {
		pred, curr = curr, curr.next.Load(p)
	}
	return
}

// insert is the paper's Algorithm-1 pattern: optimistic traversal, then
// a try-lock on the predecessor with validation inside. The thunk only
// touches shared state through the hp it receives, and captures pred,
// curr, k, v by value — so any helper can finish it.
func (l *list) insert(p *flock.Proc, k, v uint64) bool {
	p.Begin()
	defer p.End()
	for {
		pred, curr := l.locate(p, k)
		if curr.k == k {
			return false
		}
		ok := pred.lck.TryLock(p, func(hp *flock.Proc) bool {
			if pred.removed.Load(hp) || pred.next.Load(hp) != curr {
				return false // someone changed the neighborhood: retry
			}
			n := flock.Allocate(hp, func() *link {
				n := &link{k: k, v: v}
				n.next.Init(curr)
				return n
			})
			pred.next.Store(hp, n)
			return true
		})
		if ok {
			return true
		}
	}
}

func (l *list) find(p *flock.Proc, k uint64) (uint64, bool) {
	p.Begin()
	defer p.End()
	_, curr := l.locate(p, k)
	if curr.k == k && !curr.removed.Load(p) {
		return curr.v, true
	}
	return 0, false
}

func run(rt *flock.Runtime, label string) {
	l := newList()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := rt.Register() // one Proc per worker goroutine
			defer p.Unregister()
			for i := 0; i < 1000; i++ {
				l.insert(p, uint64(w*1000+i+1), uint64(i))
			}
		}(w)
	}
	wg.Wait()

	p := rt.Register()
	defer p.Unregister()
	n := 0
	for c := l.head.next.Load(p); c.k != math.MaxUint64; c = c.next.Load(p) {
		n++
	}
	v, ok := l.find(p, 4500)
	fmt.Printf("%-9s mode: %d keys inserted concurrently; find(4500) = (%d, %v)\n", label, n, v, ok)
}

func main() {
	rt := flock.New() // lock-free mode is the default
	run(rt, "lock-free")

	rt.SetBlocking(true) // same code, traditional blocking locks, no logging
	run(rt, "blocking")
}
