// Artindex: the lock-free adaptive radix tree as a key-value index.
//
// The paper contributes the first lock-free ART (§7). This example uses
// it the way a database index is used: bulk load, point lookups under a
// skewed access pattern, and churn (delete + reinsert), all concurrent,
// then verifies the index against a reference map.
//
//	go run ./examples/artindex
package main

import (
	"fmt"
	"sync"
	"time"

	flock "flock/internal/core"
	"flock/internal/structures/arttree"
	"flock/internal/workload"
)

func main() {
	rt := flock.New() // lock-free: index survives stalled writers
	idx := arttree.New(rt)

	// Bulk load: 50K sparse 64-bit keys (hashed document ids).
	const n = 50_000
	load := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := rt.Register()
			defer p.Unregister()
			for i := uint64(w); i < n; i += 4 {
				k := workload.Hash64(i) | 1
				idx.Insert(p, k, i)
			}
		}(w)
	}
	wg.Wait()
	fmt.Printf("bulk-loaded %d keys in %v\n", n, time.Since(load).Round(time.Millisecond))

	// Concurrent skewed lookups + churn.
	var lookups, hits, churns int64
	var mu sync.Mutex
	work := time.Now()
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := rt.Register()
			defer p.Unregister()
			zipf := workload.NewZipf(n, 0.99)
			rng := workload.NewSplitMix64(uint64(w) + 7)
			var lk, ht, ch int64
			for i := 0; i < 50_000; i++ {
				doc := zipf.Next(rng) - 1
				k := workload.Hash64(doc) | 1
				if i%10 == 9 { // churn: delete and immediately reinsert
					if idx.Delete(p, k) {
						idx.Insert(p, k, doc)
						ch++
					}
					continue
				}
				lk++
				if v, ok := idx.Find(p, k); ok && v == doc {
					ht++
				}
			}
			mu.Lock()
			lookups += lk
			hits += ht
			churns += ch
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	el := time.Since(work)
	fmt.Printf("workload: %d lookups (%d hits), %d churn cycles in %v (%.2f Mop/s)\n",
		lookups, hits, churns, el.Round(time.Millisecond),
		float64(lookups+2*churns)/el.Seconds()/1e6)

	// Verify against a reference model.
	p := rt.Register()
	defer p.Unregister()
	bad := 0
	for i := uint64(0); i < n; i++ {
		k := workload.Hash64(i) | 1
		if v, ok := idx.Find(p, k); !ok || v != i {
			bad++
		}
	}
	if err := idx.CheckInvariants(p); err != nil {
		fmt.Println("invariant check FAILED:", err)
		return
	}
	fmt.Printf("verification: %d/%d keys intact, radix invariants hold\n", int(n)-bad, n)
}
