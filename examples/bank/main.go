// Bank: composing critical sections with nested try-locks.
//
// Atomically moving data between two places is the classic case where
// hand-rolled lock-free code gets hard and lock-based code is easy (§1).
// Here each account has its own lock; a transfer takes both locks,
// nested in a fixed order, and moves money. Run lock-free, a transfer
// whose owner stalls mid-way is finished by whoever bumps into its lock,
// so the invariant (total balance) holds even with a permanently
// sleeping goroutine inside a critical section.
//
//	go run ./examples/bank
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	flock "flock/internal/core"
)

const nAccounts = 16

type bank struct {
	balance [nAccounts]flock.Mutable[uint64]
	locks   [nAccounts]flock.Lock
}

// transfer moves amount from a to b atomically; false means a lock was
// busy (the caller may retry) or funds were insufficient.
func (bk *bank) transfer(p *flock.Proc, a, b int, amount uint64) bool {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	p.Begin()
	defer p.End()
	return bk.locks[lo].TryLock(p, func(hp *flock.Proc) bool {
		return bk.locks[hi].TryLock(hp, func(hp2 *flock.Proc) bool {
			from := bk.balance[a].Load(hp2)
			if from < amount {
				return false
			}
			to := bk.balance[b].Load(hp2)
			bk.balance[a].Store(hp2, from-amount)
			bk.balance[b].Store(hp2, to+amount)
			return true
		})
	})
}

func (bk *bank) total(p *flock.Proc) uint64 {
	var t uint64
	for i := range bk.balance {
		t += bk.balance[i].Load(p)
	}
	return t
}

func main() {
	rt := flock.New()
	bk := &bank{}
	init := rt.Register()
	for i := range bk.balance {
		bk.balance[i].Init(1000)
	}
	fmt.Printf("initial total: %d\n", bk.total(init))
	init.Unregister()

	// A saboteur acquires a lock and falls asleep inside the critical
	// section (only its own first run sleeps; helpers running the same
	// thunk skip the branch because the CAS below is taken exactly once).
	var stalled atomic.Int32
	release := make(chan struct{})
	go func() {
		p := rt.Register()
		p.Begin()
		bk.locks[0].TryLock(p, func(hp *flock.Proc) bool {
			v := bk.balance[0].Load(hp)
			bk.balance[0].Store(hp, v) // a no-op "audit" of account 0
			if stalled.CompareAndSwap(0, 1) {
				<-release // sleeps forever holding the lock
			}
			return true
		})
		p.End()
	}()
	for stalled.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	fmt.Println("a goroutine is now asleep inside account 0's critical section")

	// Transfers keep flowing — including through account 0 — because
	// helpers complete the sleeper's critical section and release its lock.
	var done atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := rt.Register()
			defer p.Unregister()
			rng := uint64(w)*2654435761 + 1
			for i := 0; i < 5000; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				a := int(rng>>33) % nAccounts
				b := int(rng>>13) % nAccounts
				if a == b {
					continue
				}
				if bk.transfer(p, a, b, 1+rng%10) {
					done.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()

	probe := rt.Register()
	defer probe.Unregister()
	fmt.Printf("completed %d transfers while the sleeper held its lock\n", done.Load())
	fmt.Printf("final total: %d (invariant %s)\n", bk.total(probe),
		map[bool]string{true: "preserved", false: "VIOLATED"}[bk.total(probe) == nAccounts*1000])
	close(release)
}
