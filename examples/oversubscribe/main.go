// Oversubscribe: the paper's headline comparison, reproduced as a demo.
//
// The same leaftree (leaf-oriented BST with fine-grained try-locks) runs
// a 50%-update zipfian workload from many more goroutines than
// GOMAXPROCS, once in blocking mode and once in lock-free mode, with a
// descheduling event injected inside every 200th critical section (the
// event an oversubscribed OS produces naturally; DESIGN.md S3). Blocking
// locks strand every waiter behind the descheduled holder; lock-free
// locks let the first waiter finish the holder's work.
//
//	go run ./examples/oversubscribe
package main

import (
	"fmt"
	"runtime"
	"time"

	"flock/internal/harness"
)

func main() {
	threads := 6 * runtime.GOMAXPROCS(0)
	if threads < 24 {
		threads = 24
	}
	fmt.Printf("GOMAXPROCS=%d, workers=%d (oversubscribed %dx), stall every 200 acquisitions\n\n",
		runtime.GOMAXPROCS(0), threads, threads/runtime.GOMAXPROCS(0))

	var mops [2]float64
	for i, blocking := range []bool{true, false} {
		mode := "lock-free"
		if blocking {
			mode = "blocking"
		}
		mean, std, err := harness.RunAveraged(harness.Spec{
			Structure:  "leaftree",
			Blocking:   blocking,
			Threads:    threads,
			KeyRange:   10_000,
			UpdatePct:  50,
			Alpha:      0.75,
			Duration:   400 * time.Millisecond,
			Seed:       1,
			StallEvery: 200,
		}, 1, 3)
		if err != nil {
			panic(err)
		}
		mops[i] = mean
		fmt.Printf("%-9s: %7.3f Mop/s (±%.3f)\n", mode, mean, std)
	}
	fmt.Printf("\nlock-free / blocking = %.1fx under oversubscription with descheduling\n", mops[1]/mops[0])
	fmt.Println("(the paper's Figure 5d/5g effect: blocking waiters strand behind a " +
		"descheduled lock holder; lock-free helpers complete its critical section)")
}
