// Snapshot: epoch-consistent whole-store snapshots and streaming dumps.
//
// A backup or analytics pass wants one consistent view of the whole
// store — every shard at a single logical instant — without stopping
// the writers. Store.Snapshot() takes that view by installing a
// pre-image overlay inside one composed all-shard critical section
// (a few microseconds), then iterating the shards chunk by chunk while
// transactions keep committing; writes that land mid-iteration are
// repaired back to their activation-time values from the overlay
// (DESIGN.md S17). Here a transfer storm runs throughout: every
// snapshot must still sum to the seeded total, and a streaming
// Dump/Restore round-trip must reproduce it exactly.
//
//	go run ./examples/snapshot
package main

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
	"sync/atomic"

	flock "flock/internal/core"
	"flock/internal/kv"
	"flock/internal/structures/leaftree"
	"flock/internal/structures/set"
	"flock/internal/txn"
	"flock/internal/workload"
)

func factory(rt *flock.Runtime, _ uint64) set.Set { return leaftree.New(rt) }

const (
	accounts = 1000
	initial  = uint64(100)
	total    = uint64(accounts) * initial
)

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "snapshot example:", err)
		os.Exit(1)
	}
}

func run(w io.Writer) error {
	st := txn.New(factory, txn.Options{Shards: 4, KeyRange: 4096})

	seed := st.Register()
	for k := uint64(1); k <= accounts; k++ {
		seed.Put(k, initial)
	}
	seed.Close()

	// The storm: transfer workers move money for the whole run.
	var stop atomic.Bool
	var wg sync.WaitGroup
	for wkr := 0; wkr < 4; wkr++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			c := st.Register()
			defer c.Close()
			rng := workload.NewSplitMix64(seed)
			for !stop.Load() {
				a := rng.Next()%accounts + 1
				b := rng.Next()%accounts + 1
				if a != b {
					c.Transfer(a, b, rng.Next()%5+1)
				}
			}
		}(uint64(wkr)*31 + 7)
	}
	defer func() { stop.Store(true); wg.Wait() }()

	// A consistent view mid-storm: iterate the whole store and the
	// conserved sum must hold, even though transfers commit underneath
	// the iteration the whole time.
	sn := st.KV().Snapshot()
	var sum uint64
	n := 0
	sn.Iterate(0, math.MaxUint64, func(_, v uint64) bool {
		sum += v
		n++
		return true
	})
	if n != accounts || sum != total {
		sn.Close()
		return fmt.Errorf("snapshot saw %d accounts totalling %d, want %d totalling %d", n, sum, accounts, total)
	}
	fmt.Fprintf(w, "snapshot: %d accounts, total %d (conserved)\n", n, sum)

	// Streaming dump of the same view — any io.Writer works; a real
	// backup would hand Dump an *os.File or a network connection.
	var backup bytes.Buffer
	if err := sn.Dump(&backup); err != nil {
		sn.Close()
		return fmt.Errorf("dump: %w", err)
	}
	sn.Close() // releases the epoch pins and the overlay hooks
	fmt.Fprintf(w, "dump: %d bytes (checksummed)\n", backup.Len())

	// Restore into a fresh store (any shard count) and verify the
	// round-trip byte for byte against the snapshot's view.
	fresh := kv.New(factory, kv.Options{Shards: 2, KeyRange: 4096})
	restored, err := fresh.Restore(&backup)
	if err != nil {
		return fmt.Errorf("restore: %w", err)
	}
	c := fresh.Register()
	defer c.Close()
	var rsum uint64
	for _, pair := range c.Scan(0, math.MaxUint64, -1) {
		rsum += pair.Value
	}
	if restored != n || rsum != sum {
		return fmt.Errorf("restore round-trip: %d records totalling %d, want %d totalling %d", restored, rsum, n, sum)
	}
	fmt.Fprintf(w, "restore: %d records, total %d (round-trip exact)\n", restored, rsum)
	return nil
}
