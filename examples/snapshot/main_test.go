package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestSnapshotExample runs the example end to end: the conserved-sum
// snapshot under a live transfer storm and the exact dump/restore
// round-trip both hold, so `go test ./examples/...` exercises the
// snapshot recipe the example documents.
func TestSnapshotExample(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"conserved", "checksummed", "round-trip exact"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("example output missing %q:\n%s", want, out.String())
		}
	}
}
