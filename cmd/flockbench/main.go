// Command flockbench regenerates the paper's evaluation figures (Figures
// 4-7 of "Lock-Free Locks Revisited", PPoPP 2022) on this machine, or
// runs a single custom measurement point.
//
// Regenerate one figure (scaled-down defaults):
//
//	flockbench -figure fig5d
//
// Regenerate everything EXPERIMENTS.md reports:
//
//	flockbench -figure all -repeats 3 -warmup 1
//
// Run only some of a figure's series:
//
//	flockbench -figure ext-ycsb-e -series kv-leaftree-lf,kv-olcart
//
// Full-scale paper parameters (hours, needs a big machine):
//
//	flockbench -figure fig5a -largekeys 100000000 -duration 3s -repeats 3
//
// Single point:
//
//	flockbench -structure leaftree -threads 16 -keys 100000 -update 50 -alpha 0.99 -blocking
//
// Pit the flock ART against the specialized optimistic-lock-coupling
// ART baseline (both use hashed keys, as in Figure 6):
//
//	flockbench -structure arttree -threads 16 -hashkeys
//	flockbench -structure olcart -threads 16 -hashkeys
//
// The descheduling-injection extension (DESIGN.md S3):
//
//	flockbench -structure leaftree -threads 16 -stall 100
//
// The KV-layer YCSB extension (DESIGN.md S9) — sharded kv.Store, with
// p50/p95/p99 latency reported alongside Mop/s. YCSB-E (DESIGN.md S12)
// is the scan-heavy mix; -scanlen bounds its zipf-drawn scan lengths:
//
//	flockbench -figure ext-ycsb-a
//	flockbench -structure leaftree -ycsb f -shards 8 -threads 16
//	flockbench -structure leaftree -ycsb e -scanlen 64 -shards 8
//
// The allocation ablation (DESIGN.md S10) — pooled vs GC-fresh vs
// blocking, with allocs/op reported alongside Mop/s:
//
//	flockbench -figure ext-alloc
//	flockbench -structure leaftree -threads 16 -nopool
//
// The transactional extension (DESIGN.md S11) — multi-key atomic
// operations over the sharded store via composed lock-free locks;
// blocking and non-atomic ablation arms ride the same flags:
//
//	flockbench -figure ext-txn
//	flockbench -structure leaftree -txn transfer -shards 8 -threads 16
//	flockbench -structure leaftree -txn ycsbt -txnsize 8 -nonatomic
//
// The snapshot extension (DESIGN.md S17) — epoch-consistent whole-store
// snapshots iterated by a background loop while the transfer storm
// runs. The "+snap" arms report the loop's cycle count and key rate in
// a dedicated table section (`:snap_*` CSV columns, `snap_*` JSON
// fields); comparing Mop/s against the loop-free arms reads out the
// slowdown concurrent snapshots impose on writers:
//
//	flockbench -figure ext-snap
//
// Enumerate every figure id with its series names (and the structure
// registry) without running anything:
//
//	flockbench -list
//
// An unknown -figure or -series name prints the same catalog and exits
// non-zero.
//
// The observability extension (DESIGN.md S14) — obs runtime metrics
// collected over the measured window: helping/retry/replay rates,
// pool hit rates, epoch reclamation lag, per-shard op skew, per-thread
// fairness and a sampled helps/CAS-fails time series. -metrics adds
// table sections (and `:metrics` CSV columns, and a "metrics" JSON
// object); ext-help is the figure built around them:
//
//	flockbench -figure ext-help
//	flockbench -figure ext-ycsb-a -metrics
//	flockbench -structure leaftree -threads 16 -stall 100 -metrics
//
// The flight-recorder extension (DESIGN.md S16) — per-Proc lock-event
// tracing over the measured window, exported as Chrome trace-event
// JSON (open in https://ui.perfetto.dev or chrome://tracing; one track
// per Proc, helping hand-offs drawn as flow arrows). -tracedump arms
// the anomaly dumper: the first op exceeding -tracedump-mult x the
// running p99 snapshots the rings while the outlier's surroundings are
// still in them:
//
//	flockbench -structure leaftree -threads 8 -stall 50 -trace out.json
//	flockbench -structure leaftree -ycsb a -trace out.json -tracedump slow.json -tracedump-mult 16
//
// Profiling and live scraping — net/http/pprof plus a /metrics JSON
// endpoint (obs counter snapshot, trace drop estimate, goroutine
// count):
//
//	flockbench -figure ext-ycsb-a -pprof :6060
//
// Machine-readable capture (one JSON record per point, JSONL):
//
//	flockbench -figure all -json > BENCH_all.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"flock/internal/harness"
	"flock/internal/obs/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment abstracted, so the CLI's flag
// handling — in particular the unknown-figure/-series paths — is
// testable. It returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("flockbench", flag.ContinueOnError)
	flags.SetOutput(stderr)
	var (
		figure    = flags.String("figure", "", "figure id to regenerate (fig4, fig5a..fig5h, fig6a, fig6b, fig7a, fig7b, ext-stall, ext-alloc, ext-help, ext-snap, ext-txn, ext-txn-keys, ext-ycsb-{a,b,c,e,f,shards}, or 'all')")
		series    = flags.String("series", "", "comma-separated series-name filter for -figure (default: all series)")
		list      = flags.Bool("list", false, "list figure ids with their series names, and structures")
		csv       = flags.Bool("csv", false, "emit CSV instead of a table")
		jsonOut   = flags.Bool("json", false, "emit one JSON record per point (JSONL) with Mops and latency percentiles")
		largeKeys = flags.Uint64("largekeys", 0, "override the 'large' key range (paper: 100M)")
		smallKeys = flags.Uint64("smallkeys", 0, "override the 'small' key range (paper: 100K)")
		duration  = flags.Duration("duration", 0, "per-point run duration (paper: 3s)")
		warmup    = flags.Int("warmup", -1, "warmup runs per point (paper: 1)")
		repeats   = flags.Int("repeats", 0, "measured runs per point (paper: 3)")
		baseTh    = flags.Int("base", 0, "'full subscription' thread count (paper: 144)")
		overTh    = flags.Int("over", 0, "oversubscribed thread count (paper: 216)")
		sweep     = flags.String("sweep", "", "comma-separated thread sweep, e.g. 1,2,4,8,16")

		structure = flags.String("structure", "", "single-point mode: structure name")
		threads   = flags.Int("threads", 8, "single-point: worker goroutines")
		keys      = flags.Uint64("keys", 100_000, "single-point: key range")
		update    = flags.Int("update", 50, "single-point: update percentage")
		alpha     = flags.Float64("alpha", 0.75, "single-point: zipfian parameter")
		blocking  = flags.Bool("blocking", false, "single-point: blocking mode")
		noPool    = flags.Bool("nopool", false, "single-point: disable descriptor/log/mbox pooling (GC-fresh ablation arm)")
		hashKeys  = flags.Bool("hashkeys", false, "single-point: sparsify keys by hashing")
		stall     = flags.Int("stall", 0, "single-point: inject a deschedule every N critical sections")
		ycsb      = flags.String("ycsb", "", "single-point: run a YCSB workload (a, b, c, e, f) against the sharded KV store")
		scanLen   = flags.Int("scanlen", 0, "single-point: max zipf-drawn scan length for scan-bearing YCSB mixes (-ycsb e; 0 = default)")
		optimist  = flags.Bool("optimistic", false, "single-point: route KV reads through the version-validated optimistic arm (-ycsb/-txn)")
		txnMix    = flags.String("txn", "", "single-point: run a transactional workload (transfer, ycsbt) against the txn layer")
		txnSize   = flags.Int("txnsize", 2, "single-point: keys per multi-key transaction (-txn)")
		nonAtomic = flags.Bool("nonatomic", false, "single-point: per-key non-atomic arm of the txn layer (-txn)")
		shards    = flags.Int("shards", 0, "KV shard count (single-point -ycsb/-txn, and the default for ext-ycsb/ext-txn figures)")
		metrics   = flags.Bool("metrics", false, "collect obs runtime metrics over the measured window (helping/retry rates, fairness, time series); adds table sections, :metrics CSV columns and a 'metrics' JSON object")
		tracePath = flags.String("trace", "", "single-point: record the lock-event flight recorder over the measured window and write Chrome trace-event JSON to this file (open in Perfetto / chrome://tracing)")
		traceDump = flags.String("tracedump", "", "single-point: with -trace, also arm the anomaly dumper — the first op exceeding -tracedump-mult x the running p99 dumps the recorder to this file")
		traceMult = flags.Float64("tracedump-mult", 0, "anomaly threshold as a multiple of the running p99 (default 8)")
		pprofAddr = flags.String("pprof", "", "serve net/http/pprof and a /metrics JSON endpoint on this address (e.g. :6060) for the lifetime of the run")
		seed      = flags.Uint64("seed", 42, "workload seed")
	)
	if err := flags.Parse(args); err != nil {
		return 2
	}

	if *list {
		printCatalog(stdout)
		return 0
	}

	if *pprofAddr != "" {
		bound, stopDebug, err := startDebugServer(*pprofAddr)
		if err != nil {
			fmt.Fprintf(stderr, "flockbench: -pprof: %v\n", err)
			return 1
		}
		defer stopDebug()
		fmt.Fprintf(stderr, "flockbench: debug server on http://%s (/debug/pprof/, /metrics)\n", bound)
	}

	sc := harness.DefaultScale()
	sc.Seed = *seed
	if *largeKeys > 0 {
		sc.LargeKeys = *largeKeys
	}
	if *smallKeys > 0 {
		sc.SmallKeys = *smallKeys
	}
	if *duration > 0 {
		sc.Duration = *duration
	}
	if *warmup >= 0 {
		sc.Warmup = *warmup
	}
	if *repeats > 0 {
		sc.Repeats = *repeats
	}
	if *baseTh > 0 {
		sc.Base = *baseTh
	}
	if *overTh > 0 {
		sc.Over = *overTh
	}
	if *shards > 0 {
		sc.Shards = *shards
	}
	sc.Metrics = *metrics
	if *sweep != "" {
		var ts []int
		for _, part := range strings.Split(*sweep, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				fmt.Fprintf(stderr, "flockbench: bad -sweep element %q\n", part)
				return 1
			}
			ts = append(ts, n)
		}
		sc.Threads = ts
	}

	switch {
	case *figure != "":
		if *tracePath != "" || *traceDump != "" {
			fmt.Fprintln(stderr, "flockbench: -trace/-tracedump apply to single-point runs (-structure), not -figure")
			return 1
		}
		ids := []string{*figure}
		if *figure == "all" {
			ids = harness.FigureIDs()
		}
		for _, id := range ids {
			fs, ok := harness.Figures()[id]
			if !ok {
				fmt.Fprintf(stderr, "flockbench: unknown figure %q; valid names:\n", id)
				printCatalog(stderr)
				return 1
			}
			if *series != "" {
				filtered, err := filterSeries(fs, *series)
				if err != nil {
					fmt.Fprintf(stderr, "flockbench: %v\n", err)
					printCatalog(stderr)
					return 1
				}
				fs = filtered
			}
			fig, err := harness.RunFigure(fs, sc)
			if err != nil {
				fmt.Fprintf(stderr, "flockbench: figure %s: %v\n", id, err)
				return 1
			}
			if *jsonOut {
				printFigureJSON(stdout, fig)
			} else {
				printFigure(stdout, fig, *csv)
			}
		}
	case *structure != "":
		spec := harness.Spec{
			Structure:    *structure,
			Blocking:     *blocking,
			Threads:      *threads,
			KeyRange:     *keys,
			UpdatePct:    *update,
			Alpha:        *alpha,
			HashKeys:     *hashKeys,
			NoPool:       *noPool,
			Duration:     orDefault(sc.Duration, 500*time.Millisecond),
			Seed:         *seed,
			StallEvery:   *stall,
			YCSB:         *ycsb,
			ScanLen:      *scanLen,
			Optimistic:   *optimist,
			TxnMix:       *txnMix,
			TxnSize:      *txnSize,
			TxnNonAtomic: *nonAtomic,
			Shards:       *shards,
			Metrics:      *metrics,
			Trace:        *tracePath != "" || *traceDump != "",
			TraceDump:    *traceDump,
		}
		spec.TraceDumpP99Mult = *traceMult
		if (spec.YCSB != "" || spec.TxnMix != "") && spec.Shards < 1 {
			spec.Shards = 1
		}
		st, err := harness.RunStats(spec, sc.Warmup, sc.Repeats)
		if err != nil {
			fmt.Fprintf(stderr, "flockbench: %v\n", err)
			return 1
		}
		if *tracePath != "" {
			if err := writeTrace(*tracePath, st, stderr); err != nil {
				fmt.Fprintf(stderr, "flockbench: -trace: %v\n", err)
				return 1
			}
		}
		if *jsonOut {
			writeJSON(stdout, pointRecord{
				Figure: "custom", Series: *structure, X: fmt.Sprint(*threads),
				Mops: st.Mops, Std: st.Std, AllocsPerOp: st.AllocsPerOp,
				P50ns: st.P50.Nanoseconds(), P95ns: st.P95.Nanoseconds(), P99ns: st.P99.Nanoseconds(),
				OptRestarts: st.OptRestarts, OptEscalations: st.OptEscalations,
				FairMaxMin: st.FairMaxMin, FairCoV: st.FairCoV,
				Metrics: st.PointMetrics(),
			})
			return 0
		}
		mode := ""
		if *ycsb != "" {
			mode = fmt.Sprintf(" ycsb=%s shards=%d", *ycsb, spec.Shards)
			if *scanLen > 0 {
				mode += fmt.Sprintf(" scanlen=%d", *scanLen)
			}
		}
		if *optimist {
			mode += " optimistic"
		}
		if *txnMix != "" {
			mode = fmt.Sprintf(" txn=%s size=%d shards=%d", *txnMix, spec.TxnSize, spec.Shards)
			if *nonAtomic {
				mode += " nonatomic"
			}
		}
		if *noPool {
			mode += " nopool"
		}
		fmt.Fprintf(stdout, "%s threads=%d keys=%d update=%d%% alpha=%.2f blocking=%v stall=%d%s: %.3f Mop/s (±%.3f)  %.2f allocs/op  p50=%s p95=%s p99=%s\n",
			*structure, *threads, *keys, *update, *alpha, *blocking, *stall, mode,
			st.Mops, st.Std, st.AllocsPerOp, fmtLat(st.P50), fmtLat(st.P95), fmtLat(st.P99))
		if pm := st.PointMetrics(); pm != nil {
			fmt.Fprintf(stdout, "  metrics: helps/op=%.4f recv/op=%.4f replays/op=%.4f casfails/op=%.4f spins/op=%.4f poolhit=%.3f fair=%.2f cov=%.3f\n",
				pm.HelpsPerOp, pm.HelpsRecvPerOp, pm.ReplaysPerOp, pm.CASFailsPerOp,
				pm.SpinsPerOp, pm.PoolHitRate, st.FairMaxMin, st.FairCoV)
			if pm.ShardSkew > 0 {
				fmt.Fprintf(stdout, "  shard skew (max/mean)=%.3f ops=%v\n", pm.ShardSkew, pm.ShardOps)
			}
			if len(pm.Samples) > 0 {
				fmt.Fprintf(stdout, "  samples (t_ms: helps casfails):")
				for _, s := range pm.Samples {
					fmt.Fprintf(stdout, " %.0f:%d/%d", s.AtMs, s.Helps, s.CASFails)
				}
				fmt.Fprintln(stdout)
			}
		}
	default:
		flags.Usage()
		return 2
	}
	return 0
}

// printCatalog writes the figure index (ids, series names) and the
// structure registry — the -list output, reused verbatim by the
// unknown -figure/-series error paths.
func printCatalog(w io.Writer) {
	fmt.Fprintln(w, "figures:")
	figs := harness.Figures()
	for _, id := range harness.FigureIDs() {
		fmt.Fprintf(w, "  %-16s %s\n", id, figs[id].Paper)
		for _, s := range figs[id].Series {
			fmt.Fprintf(w, "    %s\n", s.Name)
		}
	}
	fmt.Fprintln(w, "structures:")
	for _, s := range harness.Structures() {
		fmt.Fprintf(w, "  %s\n", s)
	}
}

// filterSeries restricts a figure spec to the comma-separated series
// names, preserving the figure's order; an unknown name is an error
// naming the figure's valid series.
func filterSeries(fs harness.FigureSpec, names string) (harness.FigureSpec, error) {
	want := map[string]bool{}
	for _, n := range strings.Split(names, ",") {
		if n = strings.TrimSpace(n); n != "" {
			want[n] = true
		}
	}
	var valid []string
	var kept []harness.Series
	for _, s := range fs.Series {
		valid = append(valid, s.Name)
		if want[s.Name] {
			kept = append(kept, s)
			delete(want, s.Name)
		}
	}
	if len(want) > 0 {
		var unknown []string
		for n := range want {
			unknown = append(unknown, n)
		}
		return fs, fmt.Errorf("unknown series %q for figure %s (valid: %s)",
			strings.Join(unknown, ","), fs.ID, strings.Join(valid, ", "))
	}
	if len(kept) == 0 {
		return fs, fmt.Errorf("empty -series filter for figure %s (valid: %s)", fs.ID, strings.Join(valid, ", "))
	}
	fs.Series = kept
	return fs, nil
}

// pointRecord is the -json output schema: one record per measured
// (figure, series, x) point, suitable for capture as BENCH_*.json.
type pointRecord struct {
	Figure      string  `json:"figure"`
	Series      string  `json:"series"`
	X           string  `json:"x"`
	Mops        float64 `json:"mops"`
	Std         float64 `json:"std"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	P50ns       int64   `json:"p50_ns"`
	P95ns       int64   `json:"p95_ns"`
	P99ns       int64   `json:"p99_ns"`
	// Optimistic-read counters; omitted for non-optimistic series so
	// existing BENCH_*.json consumers see unchanged records.
	OptRestarts    uint64 `json:"opt_restarts,omitempty"`
	OptEscalations uint64 `json:"opt_escalations,omitempty"`
	// Per-thread op-count fairness (max/min ratio and coefficient of
	// variation), always measured.
	FairMaxMin float64 `json:"fair_maxmin"`
	FairCoV    float64 `json:"fair_cov"`
	// Background snapshot-loop progress (ext-snap's "+snap" arms);
	// omitted for series without the loop.
	SnapCycles     uint64  `json:"snap_cycles,omitempty"`
	SnapKeysPerSec float64 `json:"snap_keys_per_sec,omitempty"`
	// Metrics is the obs runtime-metrics summary, present only when the
	// point was measured with -metrics (or by a figure like ext-help
	// that forces collection).
	Metrics *harness.PointMetrics `json:"metrics,omitempty"`
}

func writeJSON(w io.Writer, rec pointRecord) {
	b, err := json.Marshal(rec)
	if err != nil {
		panic(fmt.Sprintf("flockbench: encoding point: %v", err))
	}
	fmt.Fprintln(w, string(b))
}

func printFigureJSON(w io.Writer, fig harness.Figure) {
	for _, pt := range fig.Points {
		writeJSON(w, pointRecord{
			Figure: fig.ID, Series: pt.Series, X: pt.X,
			Mops: pt.Mops, Std: pt.Std, AllocsPerOp: pt.Allocs,
			P50ns: pt.P50.Nanoseconds(), P95ns: pt.P95.Nanoseconds(), P99ns: pt.P99.Nanoseconds(),
			OptRestarts: pt.OptRestarts, OptEscalations: pt.OptEscalations,
			FairMaxMin: pt.FairMaxMin, FairCoV: pt.FairCoV,
			SnapCycles: pt.SnapCycles, SnapKeysPerSec: pt.SnapKeysPerSec,
			Metrics: pt.Metrics,
		})
	}
}

// writeTrace exports the last measured repetition's flight-recorder
// snapshot as Chrome trace-event JSON (Perfetto-loadable).
func writeTrace(path string, st harness.Stats, stderr io.Writer) error {
	if st.Trace == nil {
		return fmt.Errorf("run produced no trace snapshot")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.ExportChrome(f, *st.Trace); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "flockbench: wrote %d trace events (%d dropped) to %s\n",
		len(st.Trace.Events), st.Trace.Dropped, path)
	return nil
}

// fmtLat renders a latency compactly in microseconds.
func fmtLat(d time.Duration) string {
	return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
}

func orDefault(d, def time.Duration) time.Duration {
	if d > 0 {
		return d
	}
	return def
}

// printFigure renders one figure as rows grouped by x value, one column
// per series — the same rows the paper's plots are drawn from.
func printFigure(w io.Writer, fig harness.Figure, csv bool) {
	fmt.Fprintf(w, "\n== %s: %s ==\n", fig.ID, fig.Paper)
	// Collect series order and x order as first encountered.
	var seriesNames, xs []string
	seenS := map[string]bool{}
	seenX := map[string]bool{}
	vals := map[[2]string]harness.Point{}
	for _, pt := range fig.Points {
		if !seenS[pt.Series] {
			seenS[pt.Series] = true
			seriesNames = append(seriesNames, pt.Series)
		}
		if !seenX[pt.X] {
			seenX[pt.X] = true
			xs = append(xs, pt.X)
		}
		vals[[2]string{pt.Series, pt.X}] = pt
	}

	// Any point carrying a metrics summary turns on the metrics columns
	// and table sections (figure-level Metrics, -metrics, or ext-help).
	haveMetrics := false
	for _, pt := range fig.Points {
		if pt.Metrics != nil {
			haveMetrics = true
			break
		}
	}
	// Any point with snapshot-loop progress turns on the snapshot
	// section (ext-snap's "+snap" arms).
	haveSnaps := false
	for _, pt := range fig.Points {
		if pt.SnapCycles > 0 {
			haveSnaps = true
			break
		}
	}

	if csv {
		// Mops columns first (one per series), then per-series latency
		// percentile columns in microseconds, then per-series
		// allocations per operation, then (with metrics on) the
		// per-series obs rates and fairness.
		header := []string{fig.XLabel}
		header = append(header, seriesNames...)
		for _, s := range seriesNames {
			header = append(header, s+":p50us", s+":p95us", s+":p99us")
		}
		for _, s := range seriesNames {
			header = append(header, s+":allocs")
		}
		if haveSnaps {
			for _, s := range seriesNames {
				header = append(header, s+":snap_cycles", s+":snap_keys_per_sec")
			}
		}
		if haveMetrics {
			for _, s := range seriesNames {
				header = append(header,
					s+":metrics:helps_per_op", s+":metrics:casfails_per_op",
					s+":metrics:replays_per_op", s+":metrics:fair_maxmin")
			}
		}
		fmt.Fprintln(w, strings.Join(header, ","))
		for _, x := range xs {
			row := []string{x}
			for _, s := range seriesNames {
				row = append(row, fmt.Sprintf("%.4f", vals[[2]string{s, x}].Mops))
			}
			for _, s := range seriesNames {
				pt := vals[[2]string{s, x}]
				row = append(row,
					fmt.Sprintf("%.2f", float64(pt.P50.Nanoseconds())/1e3),
					fmt.Sprintf("%.2f", float64(pt.P95.Nanoseconds())/1e3),
					fmt.Sprintf("%.2f", float64(pt.P99.Nanoseconds())/1e3))
			}
			for _, s := range seriesNames {
				row = append(row, fmt.Sprintf("%.2f", vals[[2]string{s, x}].Allocs))
			}
			if haveSnaps {
				for _, s := range seriesNames {
					pt := vals[[2]string{s, x}]
					row = append(row,
						fmt.Sprintf("%d", pt.SnapCycles),
						fmt.Sprintf("%.0f", pt.SnapKeysPerSec))
				}
			}
			if haveMetrics {
				for _, s := range seriesNames {
					pt := vals[[2]string{s, x}]
					if pt.Metrics == nil {
						row = append(row, "", "", "", "")
						continue
					}
					row = append(row,
						fmt.Sprintf("%.4f", pt.Metrics.HelpsPerOp),
						fmt.Sprintf("%.4f", pt.Metrics.CASFailsPerOp),
						fmt.Sprintf("%.4f", pt.Metrics.ReplaysPerOp),
						fmt.Sprintf("%.2f", pt.FairMaxMin))
				}
			}
			fmt.Fprintln(w, strings.Join(row, ","))
		}
		return
	}
	cw := 0
	for _, s := range seriesNames {
		if len(s) > cw {
			cw = len(s)
		}
	}
	if cw < 20 {
		cw = 20 // room for the p50/p95/p99 triples
	}
	fmt.Fprintf(w, "%-12s", fig.XLabel)
	for _, s := range seriesNames {
		fmt.Fprintf(w, " %*s", cw, s)
	}
	fmt.Fprintln(w, " (Mop/s)")
	for _, x := range xs {
		fmt.Fprintf(w, "%-12s", x)
		for _, s := range seriesNames {
			fmt.Fprintf(w, " %*.3f", cw, vals[[2]string{s, x}].Mops)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-12s", "")
	for _, s := range seriesNames {
		fmt.Fprintf(w, " %*s", cw, s)
	}
	fmt.Fprintln(w, " (p50/p95/p99 µs)")
	for _, x := range xs {
		fmt.Fprintf(w, "%-12s", x)
		for _, s := range seriesNames {
			pt := vals[[2]string{s, x}]
			cell := fmt.Sprintf("%.1f/%.1f/%.1f",
				float64(pt.P50.Nanoseconds())/1e3,
				float64(pt.P95.Nanoseconds())/1e3,
				float64(pt.P99.Nanoseconds())/1e3)
			fmt.Fprintf(w, " %*s", cw, cell)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-12s", "")
	for _, s := range seriesNames {
		fmt.Fprintf(w, " %*s", cw, s)
	}
	fmt.Fprintln(w, " (allocs/op)")
	for _, x := range xs {
		fmt.Fprintf(w, "%-12s", x)
		for _, s := range seriesNames {
			fmt.Fprintf(w, " %*.2f", cw, vals[[2]string{s, x}].Allocs)
		}
		fmt.Fprintln(w)
	}
	if haveSnaps {
		// The snapshot loop's progress: series without the loop show "-"
		// (their Mops column is the loop-free control).
		fmt.Fprintf(w, "%-12s", "")
		for _, s := range seriesNames {
			fmt.Fprintf(w, " %*s", cw, s)
		}
		fmt.Fprintln(w, " (snap cycles : keys/s)")
		for _, x := range xs {
			fmt.Fprintf(w, "%-12s", x)
			for _, s := range seriesNames {
				pt := vals[[2]string{s, x}]
				cell := "-"
				if pt.SnapCycles > 0 {
					cell = fmt.Sprintf("%d:%.0f", pt.SnapCycles, pt.SnapKeysPerSec)
				}
				fmt.Fprintf(w, " %*s", cw, cell)
			}
			fmt.Fprintln(w)
		}
	}
	if !haveMetrics {
		return
	}
	// The obs metrics sections: helping and CAS-retry rates per
	// operation (the helping-machinery readout), and per-thread
	// fairness. Blocking series legitimately show 0 helps/op — the
	// blocking mode has no helping to count.
	metricSection := func(label string, cell func(pt harness.Point) string) {
		fmt.Fprintf(w, "%-12s", "")
		for _, s := range seriesNames {
			fmt.Fprintf(w, " %*s", cw, s)
		}
		fmt.Fprintln(w, " "+label)
		for _, x := range xs {
			fmt.Fprintf(w, "%-12s", x)
			for _, s := range seriesNames {
				fmt.Fprintf(w, " %*s", cw, cell(vals[[2]string{s, x}]))
			}
			fmt.Fprintln(w)
		}
	}
	metricSection("(helps/op : casfails/op : replays/op)", func(pt harness.Point) string {
		if pt.Metrics == nil {
			return "-"
		}
		return fmt.Sprintf("%.4f:%.4f:%.4f", pt.Metrics.HelpsPerOp, pt.Metrics.CASFailsPerOp, pt.Metrics.ReplaysPerOp)
	})
	metricSection("(fairness max/min : CoV)", func(pt harness.Point) string {
		return fmt.Sprintf("%.2f:%.3f", pt.FairMaxMin, pt.FairCoV)
	})
}
