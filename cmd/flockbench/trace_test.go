package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTraceFlagEndToEnd runs a tiny heavily-contended point with -trace
// and validates the emitted Chrome trace-event JSON structurally:
// per-Proc thread tracks, critical-section spans, and — because stall
// injection on a single hot lock forces helping — at least one matched
// s/f flow pair for a help hand-off.
func TestTraceFlagEndToEnd(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var out, errb bytes.Buffer
	code := run([]string{
		"-structure", "leaftree", "-threads", "4", "-keys", "64",
		"-stall", "1", "-duration", "100ms", "-repeats", "1", "-warmup", "0",
		"-trace", path,
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "wrote") {
		t.Fatalf("no trace-written notice on stderr:\n%s", errb.String())
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Metadata    map[string]any   `json:"metadata"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("-trace emitted invalid JSON: %v", err)
	}
	if _, ok := doc.Metadata["dropped_records"]; !ok {
		t.Error("metadata missing dropped_records")
	}
	tracks := 0
	phases := map[string]int{}
	flowIDs := map[float64][2]int{} // numeric flow id -> [s count, f count]
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		phases[ph]++
		if ph == "M" && ev["name"] == "thread_name" {
			tracks++
		}
		if ph == "s" || ph == "f" {
			id, ok := ev["id"].(float64)
			if !ok {
				t.Fatalf("flow event missing numeric id: %v", ev)
			}
			c := flowIDs[id]
			if ph == "s" {
				c[0]++
			} else {
				c[1]++
			}
			flowIDs[id] = c
		}
	}
	// 4 workers + the global ring's track.
	if tracks < 4 {
		t.Errorf("only %d thread_name tracks, want >= 4 (one per Proc)", tracks)
	}
	if phases["X"] == 0 {
		t.Error("no complete spans (critical sections) in the trace")
	}
	if phases["s"] == 0 || phases["s"] != phases["f"] {
		t.Fatalf("help hand-off flow events: %d starts, %d finishes; want a matched nonzero set (stall injection must force helping)", phases["s"], phases["f"])
	}
	for id, c := range flowIDs {
		if c[0] != 1 || c[1] != 1 {
			t.Fatalf("flow id %v has %d starts / %d finishes, want exactly 1/1", id, c[0], c[1])
		}
	}
}

// TestTraceFlagRejectedInFigureMode pins the CLI contract: -trace is a
// single-point facility.
func TestTraceFlagRejectedInFigureMode(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-figure", "fig4", "-trace", "x.json"}, &out, &errb)
	if code == 0 {
		t.Fatal("-figure with -trace must fail")
	}
	if !strings.Contains(errb.String(), "single-point") {
		t.Fatalf("unhelpful error:\n%s", errb.String())
	}
}

// TestDebugServerMetricsEndpoint starts the -pprof server on an
// ephemeral port and checks /metrics returns well-formed JSON with the
// obs counter snapshot (sorted keys), trace state and goroutine count,
// and that the pprof index answers.
func TestDebugServerMetricsEndpoint(t *testing.T) {
	bound, stop, err := startDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	resp, err := http.Get("http://" + bound + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics -> %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var payload struct {
		Counters     map[string]uint64 `json:"counters"`
		Nonzero      map[string]uint64 `json:"nonzero"`
		TraceEnabled *bool             `json:"trace_enabled"`
		TraceDropped *uint64           `json:"trace_dropped"`
		Goroutines   int               `json:"goroutines"`
	}
	if err := json.Unmarshal(body, &payload); err != nil {
		t.Fatalf("/metrics emitted invalid JSON: %v\n%s", err, body)
	}
	if len(payload.Counters) == 0 {
		t.Error("counters object empty — obs snapshot not marshalled")
	}
	if payload.TraceEnabled == nil || payload.TraceDropped == nil {
		t.Error("trace fields missing from /metrics")
	}
	if payload.Goroutines <= 0 {
		t.Errorf("goroutines = %d", payload.Goroutines)
	}
	// Sorted-key marshalling: the raw bytes must list counter names in
	// order (obs.Counts.MarshalJSON's contract, so scrapes diff cleanly).
	cs := bytes.Index(body, []byte(`"counters"`))
	if cs < 0 {
		t.Fatal("no counters key in raw body")
	}
	seg := body[cs:]
	end := bytes.IndexByte(seg, '}')
	var names []string
	for _, m := range bytes.Split(seg[:end], []byte(",")) {
		if q := bytes.IndexByte(m, '"'); q >= 0 {
			if q2 := bytes.IndexByte(m[q+1:], '"'); q2 > 0 {
				names = append(names, string(m[q+1:q+1+q2]))
			}
		}
	}
	names = names[1:] // drop the "counters" key itself
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatalf("counter keys not sorted: %q after %q", names[i], names[i-1])
		}
	}

	pp, err := http.Get("http://" + bound + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != 200 {
		t.Errorf("/debug/pprof/ -> %d", pp.StatusCode)
	}
}
