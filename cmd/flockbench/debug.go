package main

// The -pprof debug server: net/http/pprof's profiling handlers plus a
// /metrics JSON endpoint exposing the obs counter snapshot (sorted
// keys, see obs.Counts.MarshalJSON), the flight recorder's drop
// estimate and the process goroutine count — enough for a scrape loop
// to watch a long benchmark run without attaching a profiler.

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"

	"flock/internal/obs"
	"flock/internal/obs/trace"
)

// metricsPayload is the /metrics response schema.
type metricsPayload struct {
	// Counters is the full obs snapshot (all counters, sorted keys).
	Counters obs.Counts `json:"counters"`
	// Nonzero is the compact view (only counters that have moved).
	Nonzero map[string]uint64 `json:"nonzero"`
	// TraceEnabled and TraceDropped describe the flight recorder:
	// whether it is recording, and its cheap estimate of records already
	// lost to overwrite or retired-ring eviction.
	TraceEnabled bool   `json:"trace_enabled"`
	TraceDropped uint64 `json:"trace_dropped"`
	Goroutines   int    `json:"goroutines"`
}

// newDebugMux builds the handler: pprof under /debug/pprof/ (explicitly
// registered — the server uses its own mux, not http.DefaultServeMux)
// and /metrics.
func newDebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		snap := obs.Snapshot()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(metricsPayload{
			Counters:     snap,
			Nonzero:      snap.Nonzero(),
			TraceEnabled: trace.Enabled(),
			TraceDropped: trace.Dropped(),
			Goroutines:   runtime.NumGoroutine(),
		})
	})
	return mux
}

// startDebugServer listens on addr (e.g. ":6060" or "127.0.0.1:0") and
// serves the debug mux in the background. It returns the bound address
// (useful when addr requested port 0) and a shutdown func.
func startDebugServer(addr string) (bound string, stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: newDebugMux()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
