package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestUnknownFigureListsValidNames pins the unknown -figure UX: non-zero
// exit and the -list catalog (every valid figure id) on stderr instead
// of a bare "unknown figure" message.
func TestUnknownFigureListsValidNames(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-figure", "fig99"}, &out, &errb)
	if code == 0 {
		t.Fatalf("unknown figure exited 0")
	}
	msg := errb.String()
	if !strings.Contains(msg, `unknown figure "fig99"`) {
		t.Fatalf("stderr does not name the bad figure:\n%s", msg)
	}
	for _, id := range []string{"fig4", "fig5a", "ext-ycsb-e", "ext-txn"} {
		if !strings.Contains(msg, id) {
			t.Fatalf("stderr does not list valid figure %s:\n%s", id, msg)
		}
	}
}

// TestUnknownSeriesListsValidNames pins the -series path: an unknown
// series name for a valid figure names the offender, the figure's valid
// series, and exits non-zero.
func TestUnknownSeriesListsValidNames(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-figure", "ext-ycsb-e", "-series", "kv-nope"}, &out, &errb)
	if code == 0 {
		t.Fatalf("unknown series exited 0")
	}
	msg := errb.String()
	if !strings.Contains(msg, `unknown series "kv-nope"`) {
		t.Fatalf("stderr does not name the bad series:\n%s", msg)
	}
	if !strings.Contains(msg, "kv-leaftree-lf") || !strings.Contains(msg, "kv-olcart") {
		t.Fatalf("stderr does not list the figure's valid series:\n%s", msg)
	}
}

// TestSeriesFilterRuns runs one tiny filtered figure end to end and
// checks only the requested series appears in the output.
func TestSeriesFilterRuns(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{
		"-figure", "fig7a", "-series", "lazylist-lf",
		"-duration", "2ms", "-smallkeys", "100", "-largekeys", "200",
		"-base", "2", "-over", "2", "-csv",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("filtered run failed (%d): %s", code, errb.String())
	}
	got := out.String()
	if !strings.Contains(got, "lazylist-lf") {
		t.Fatalf("requested series missing from output:\n%s", got)
	}
	if strings.Contains(got, "harris_list") || strings.Contains(got, "dlist-bl") {
		t.Fatalf("filtered-out series still present:\n%s", got)
	}
}

// TestListPrintsCatalog pins -list: zero exit, catalog on stdout.
func TestListPrintsCatalog(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exited %d: %s", code, errb.String())
	}
	for _, want := range []string{"figures:", "structures:", "ext-ycsb-e", "olcart", "leaftree"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("-list output missing %q:\n%s", want, out.String())
		}
	}
}

// TestMetricsFlagEndToEnd runs a tiny single point with -metrics -json
// and checks the record carries the metrics object and fairness fields.
func TestMetricsFlagEndToEnd(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{
		"-structure", "leaftree", "-threads", "2", "-keys", "256",
		"-duration", "5ms", "-metrics", "-json",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("-metrics run failed (%d): %s", code, errb.String())
	}
	var rec map[string]any
	if err := json.Unmarshal(out.Bytes(), &rec); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	m, ok := rec["metrics"].(map[string]any)
	if !ok {
		t.Fatalf("record has no metrics object:\n%s", out.String())
	}
	for _, f := range []string{"helps_per_op", "cas_fails_per_op", "replays_per_op", "samples"} {
		if _, ok := m[f]; !ok {
			t.Errorf("metrics object missing %q:\n%s", f, out.String())
		}
	}
	if _, ok := rec["fair_maxmin"]; !ok {
		t.Errorf("record missing fair_maxmin:\n%s", out.String())
	}
}

// TestExtHelpFigureRuns runs a scaled-down ext-help (the figure that
// forces metrics on) and checks the metrics table sections render.
func TestExtHelpFigureRuns(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{
		"-figure", "ext-help", "-duration", "2ms", "-smallkeys", "128",
		"-base", "2", "-over", "4",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("ext-help failed (%d): %s", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{"helps/op", "fairness max/min", "2@0", "4@20", "leaftree-lf", "leaftree-bl"} {
		if !strings.Contains(got, want) {
			t.Errorf("ext-help output missing %q:\n%s", want, got)
		}
	}
}

// TestMetricsCSVColumns: -figure with -metrics -csv adds the :metrics
// columns.
func TestMetricsCSVColumns(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{
		"-figure", "fig7a", "-series", "lazylist-lf", "-metrics", "-csv",
		"-duration", "2ms", "-smallkeys", "100", "-largekeys", "200",
		"-base", "2", "-over", "2",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("metrics csv run failed (%d): %s", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{"lazylist-lf:metrics:helps_per_op", "lazylist-lf:metrics:fair_maxmin"} {
		if !strings.Contains(got, want) {
			t.Errorf("CSV header missing %q:\n%s", want, got)
		}
	}
}
