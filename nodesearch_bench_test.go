package bench

import (
	"testing"

	"flock/internal/baseline/olcart"
	flock "flock/internal/core"
	"flock/internal/simd"
	"flock/internal/structures/arttree"
	"flock/internal/structures/set"
)

// The node-search microbenchmarks compare the tag-selected simd
// implementations against the pure-Go fallbacks in one binary:
// "selected" is what the trees actually call (SSE2/AVX2 on amd64,
// generic under -tags flock_noasm), "generic" is always the fallback.
// Build with -tags flock_noasm to confirm the two legs coincide.

var (
	sinkInt int
	sinkU16 uint16
)

func BenchmarkNodeSearchFind16(b *testing.B) {
	b.Logf("simd variant: %s", simd.Variant())
	var keys [16]byte
	for i := range keys {
		keys[i] = byte(0x40 + i)
	}
	const valid = 0xFFFF
	// Lane 15 is the scalar worst case; a miss scans all lanes too.
	cases := []struct {
		name string
		b    byte
	}{
		{"Hit", 0x4F},
		{"Miss", 0xEE},
	}
	for _, c := range cases {
		b.Run(c.name+"/selected", func(b *testing.B) {
			acc := 0
			for i := 0; i < b.N; i++ {
				acc += simd.Find16(&keys, c.b, valid)
			}
			sinkInt = acc
		})
		b.Run(c.name+"/generic", func(b *testing.B) {
			acc := 0
			for i := 0; i < b.N; i++ {
				acc += simd.Find16Generic(&keys, c.b, valid)
			}
			sinkInt = acc
		})
	}
	b.Run("Match16/selected", func(b *testing.B) {
		var acc uint16
		for i := 0; i < b.N; i++ {
			acc ^= simd.Match16(&keys, 0x48)
		}
		sinkU16 = acc
	})
	b.Run("Match16/generic", func(b *testing.B) {
		var acc uint16
		for i := 0; i < b.N; i++ {
			acc ^= simd.Match16Generic(&keys, 0x48)
		}
		sinkU16 = acc
	})
}

func BenchmarkNodeSearchMismatch(b *testing.B) {
	b.Logf("simd variant: %s", simd.Variant())
	for _, n := range []int{8, 16, 32, 64, 128, 512} {
		x := make([]byte, n)
		y := make([]byte, n)
		for i := range x {
			x[i] = byte(i * 13)
			y[i] = x[i]
		}
		y[n-1] ^= 0x80 // mismatch at the last byte: full-length scan
		b.Run(benchName("n", n)+"/selected", func(b *testing.B) {
			b.SetBytes(int64(n))
			acc := 0
			for i := 0; i < b.N; i++ {
				acc += simd.Mismatch(x, y)
			}
			sinkInt = acc
		})
		b.Run(benchName("n", n)+"/generic", func(b *testing.B) {
			b.SetBytes(int64(n))
			acc := 0
			for i := 0; i < b.N; i++ {
				acc += simd.MismatchGeneric(x, y)
			}
			sinkInt = acc
		})
	}
}

func benchName(prefix string, n int) string {
	// fmt.Sprintf would be fine; this keeps the names fixed-width-free.
	digits := []byte{}
	for v := n; v > 0; v /= 10 {
		digits = append([]byte{byte('0' + v%10)}, digits...)
	}
	return prefix + "=" + string(digits)
}

// nodeSearchTree measures the end-to-end Find path on a tree whose root
// is a full Node16: 16 top-byte branches times 4 leaves per branch.
func nodeSearchTree(b *testing.B, s set.Set, p *flock.Proc) {
	b.Helper()
	keys := make([]uint64, 0, 64)
	for br := 0; br < 16; br++ {
		for j := 1; j <= 4; j++ {
			k := uint64(br)<<56 | uint64(j)
			if !s.Insert(p, k, k+1) {
				b.Fatalf("prefill Insert(%#x) failed", k)
			}
			keys = append(keys, k)
		}
	}
	b.ResetTimer()
	acc := 0
	for i := 0; i < b.N; i++ {
		k := keys[i&63]
		if _, ok := s.Find(p, k); ok {
			acc++
		}
	}
	sinkInt = acc
}

func BenchmarkNodeSearchTree(b *testing.B) {
	b.Run("arttree", func(b *testing.B) {
		rt := flock.New()
		p := rt.Register()
		defer p.Unregister()
		nodeSearchTree(b, arttree.New(rt), p)
	})
	b.Run("olcart", func(b *testing.B) {
		rt := flock.New()
		p := rt.Register()
		defer p.Unregister()
		nodeSearchTree(b, olcart.New(), p)
	})
}

// TestNodeSearchZeroAlloc pins the acceptance criterion that the simd
// entry points allocate nothing: &keys must not escape through the
// //go:noescape asm declarations, and the Mismatch wrapper must not box
// its slices.
func TestNodeSearchZeroAlloc(t *testing.T) {
	var keys [16]byte
	for i := range keys {
		keys[i] = byte(i)
	}
	x := make([]byte, 256)
	y := make([]byte, 256)
	checks := []struct {
		name string
		fn   func()
	}{
		{"Find16", func() { sinkInt = simd.Find16(&keys, 7, 0xFFFF) }},
		{"Find16Generic", func() { sinkInt = simd.Find16Generic(&keys, 7, 0xFFFF) }},
		{"Match16", func() { sinkU16 = simd.Match16(&keys, 7) }},
		{"Mismatch", func() { sinkInt = simd.Mismatch(x, y) }},
		{"MismatchGeneric", func() { sinkInt = simd.MismatchGeneric(x, y) }},
	}
	for _, c := range checks {
		if n := testing.AllocsPerRun(1000, c.fn); n != 0 {
			t.Errorf("%s: %v allocs/op, want 0", c.name, n)
		}
	}
}
